// Command gengraph generates synthetic graph datasets in the text
// adjacency-list format the gminer command consumes.
//
// Examples:
//
//	gengraph -preset orkut-s -o orkut.graph
//	gengraph -type rmat -scale-exp 12 -edges 50000 -labels 7 -o g.graph
//	gengraph -type community -communities 50 -o attributed.graph
//
// With -deltas N the tool emits, instead of the graph, a seeded mutation
// stream derived from it: N JSON batch documents, one per line, in the
// format POST /graph/mutations (and `gminer mutate`) consume. The stream
// is a pure function of the graph and -delta-seed, so two runs with the
// same flags replay identically.
//
//	gengraph -type er -vertices 2000 -edges 8000 -deltas 5 -o stream.ndjson
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"gminer/internal/gen"
	"gminer/internal/graph"
)

func main() {
	var (
		preset = flag.String("preset", "", "dataset preset (overrides -type)")
		scale  = flag.Float64("scale", 1.0, "preset scale factor")

		typ      = flag.String("type", "rmat", "generator: rmat, er, community, smallworld")
		scaleExp = flag.Int("scale-exp", 10, "rmat: vertices = 2^scale-exp")
		vertices = flag.Int("vertices", 1024, "er: vertex count")
		edges    = flag.Int64("edges", 8192, "rmat/er: edge count")
		seed     = flag.Int64("seed", 1, "random seed")

		communities = flag.Int("communities", 32, "community: number of communities")
		minSize     = flag.Int("min-size", 8, "community: min community size")
		maxSize     = flag.Int("max-size", 24, "community: max community size")
		pIn         = flag.Float64("p-in", 0.4, "community: intra-community edge probability")
		bridges     = flag.Int64("bridges", 1000, "community: inter-community edges")

		labels   = flag.Int("labels", 0, "assign uniform labels from this alphabet (0=none)")
		attrDim  = flag.Int("attr-dim", 0, "assign attribute vectors of this dimension (0=none)")
		attrMax  = flag.Int("attr-max", 10, "attribute value range [1,attr-max]")
		out      = flag.String("o", "", "output file (default stdout)")
		statsFlg = flag.Bool("stats", false, "print Table-2 style statistics to stderr")

		deltas    = flag.Int("deltas", 0, "emit a mutation stream of this many batches instead of the graph (NDJSON, one batch per line)")
		deltaOps  = flag.Int("delta-ops", 32, "mutation ops per batch")
		deltaSeed = flag.Int64("delta-seed", 1, "mutation stream seed (independent of -seed)")
	)
	flag.Parse()

	var g *graph.Graph
	var err error
	switch {
	case *preset != "":
		g, err = gen.Build(gen.Preset(*preset), *scale)
	default:
		switch *typ {
		case "rmat":
			g = gen.RMAT(gen.RMATConfig{Scale: *scaleExp, Edges: *edges, Seed: *seed})
		case "er":
			g = gen.ErdosRenyi(*vertices, *edges, *seed)
		case "smallworld":
			g = gen.SmallWorld(gen.SmallWorldConfig{
				N:    *vertices,
				K:    6,
				Beta: 0.1,
				Seed: *seed,
			})
		case "community":
			g, _ = gen.Community(gen.CommunityConfig{
				Communities: *communities,
				MinSize:     *minSize,
				MaxSize:     *maxSize,
				PIn:         *pIn,
				Bridges:     *bridges,
				Seed:        *seed,
			})
		default:
			err = fmt.Errorf("unknown generator %q", *typ)
		}
	}
	if err != nil {
		fatal(err)
	}

	if *labels > 0 {
		gen.AssignLabels(g, int32(*labels), *seed+1)
	}
	if *attrDim > 0 {
		gen.AssignAttrs(g, *attrDim, int32(*attrMax), *seed+2)
	}

	if *statsFlg {
		fmt.Fprintln(os.Stderr, graph.ComputeStats("generated", g))
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	if *deltas > 0 {
		// Mutation-stream mode: the graph built above is the stream's base;
		// a daemon serving the SAME flags' graph replays these batches to
		// reach the same epochs.
		batches := gen.Deltas(g, gen.DeltasConfig{
			Batches: *deltas,
			Ops:     *deltaOps,
			Seed:    *deltaSeed,
		})
		bw := bufio.NewWriter(w)
		enc := json.NewEncoder(bw)
		for _, b := range batches {
			if err := enc.Encode(b); err != nil {
				fatal(err)
			}
		}
		if err := bw.Flush(); err != nil {
			fatal(err)
		}
		return
	}

	if err := graph.WriteText(w, g); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gengraph:", err)
	os.Exit(1)
}
