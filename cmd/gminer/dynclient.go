package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"gminer/internal/server"
)

// clientMutate streams mutation batches to a dynamic daemon: one JSON
// batch document per input line (the format `gengraph -deltas` emits),
// each POSTed as one epoch. With no -f it reads stdin, so
//
//	gengraph -deltas ... | gminer mutate -addr ...
//
// replays a generated mutation stream against a live daemon.
func clientMutate(args []string) {
	fs := flag.NewFlagSet("gminer mutate", flag.ExitOnError)
	var (
		addr = fs.String("addr", "http://127.0.0.1:7077", "gminerd base URL")
		file = fs.String("f", "-", "batch stream file, one JSON batch per line (\"-\": stdin)")
		raw  = fs.Bool("raw", false, "print each epoch's full MutationResult JSON instead of a summary line")
	)
	_ = fs.Parse(args)

	in := os.Stdin
	if *file != "-" {
		f, err := os.Open(*file)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 8<<20)
	line := 0
	for sc.Scan() {
		line++
		body := bytes.TrimSpace(sc.Bytes())
		if len(body) == 0 {
			continue
		}
		resp, err := http.Post(base(*addr)+"/graph/mutations", "application/json", bytes.NewReader(body))
		if err != nil {
			fatal(err)
		}
		rb := new(bytes.Buffer)
		_, _ = rb.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fatal(fmt.Errorf("batch %d: %s: %s", line, resp.Status, strings.TrimSpace(rb.String())))
		}
		if *raw {
			fmt.Println(strings.TrimSpace(rb.String()))
			continue
		}
		var mr server.MutationResult
		if err := json.Unmarshal(rb.Bytes(), &mr); err != nil {
			fatal(fmt.Errorf("batch %d: bad response: %w", line, err))
		}
		fmt.Printf("epoch %d: +%de -%de +%dv -%dv (%d no-ops) dirty blocks %d moved %d rebuilt workers %v in %.3fs",
			mr.Epoch, mr.Stats.EdgesAdded, mr.Stats.EdgesRemoved,
			mr.Stats.VerticesAdded, mr.Stats.VerticesRemoved, mr.Stats.NoOps,
			mr.DirtyBlocks, mr.MovedBlocks, mr.RebuiltWorkers, mr.ApplySeconds)
		for _, d := range mr.Standing {
			fmt.Printf("  %s: +%d -%d (%d matches", d.JobID, len(d.Added), len(d.Retracted), d.Matches)
			if d.Aggregate != "" {
				fmt.Printf(", aggregate %s", d.Aggregate)
			}
			if d.Incremental {
				fmt.Printf(", incremental")
			}
			fmt.Printf(")")
		}
		fmt.Println()
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
}

// clientWatch follows a standing job's delta stream. The default output
// is one human line per document; -raw passes the NDJSON through
// untouched (for piping into scripts that reconstruct the match set).
func clientWatch(args []string) {
	fs := flag.NewFlagSet("gminer watch", flag.ExitOnError)
	var (
		addr = fs.String("addr", "http://127.0.0.1:7077", "gminerd base URL")
		raw  = fs.Bool("raw", false, "emit the NDJSON stream verbatim")
	)
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("usage: gminer watch [-addr URL] [-raw] JOB_ID"))
	}
	resp, err := http.Get(base(*addr) + "/jobs/" + fs.Arg(0) + "/deltas")
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b := new(bytes.Buffer)
		_, _ = b.ReadFrom(resp.Body)
		fatal(fmt.Errorf("watch %s: %s: %s", fs.Arg(0), resp.Status, strings.TrimSpace(b.String())))
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 8<<20)
	for sc.Scan() {
		if *raw {
			fmt.Println(sc.Text())
			continue
		}
		var head struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &head); err != nil {
			fatal(fmt.Errorf("bad stream document: %w", err))
		}
		switch head.Type {
		case "snapshot":
			var s struct {
				Epoch     int64    `json:"epoch"`
				Records   []string `json:"records"`
				Aggregate string   `json:"aggregate"`
			}
			_ = json.Unmarshal(sc.Bytes(), &s)
			line := fmt.Sprintf("snapshot @ epoch %d: %d matches", s.Epoch, len(s.Records))
			if s.Aggregate != "" {
				line += fmt.Sprintf(", aggregate %s", s.Aggregate)
			}
			fmt.Println(line)
		case "delta":
			var d server.DeltaDoc
			_ = json.Unmarshal(sc.Bytes(), &d)
			line := fmt.Sprintf("epoch %d: +%d -%d -> %d matches", d.Epoch, len(d.Added), len(d.Retracted), d.Matches)
			if d.Aggregate != "" {
				line += fmt.Sprintf(", aggregate %s", d.Aggregate)
			}
			if d.Incremental {
				line += " (incremental)"
			}
			fmt.Println(line)
		default:
			fmt.Println(sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
}
