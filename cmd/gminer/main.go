// Command gminer runs one graph mining application on the G-Miner runtime.
//
// Examples:
//
//	gminer -preset orkut-s -app tc
//	gminer -graph my.graph -app mcf -workers 8 -threads 4
//	gminer -preset skitter-s -app gm -labels 7
//	gminer -preset dblp-s -app cd -minsim 0.6 -minsize 4 -emit
//
// The input is either a text adjacency-list file (-graph) or a generated
// preset (-preset, optionally scaled with -scale).
//
// Against a running gminerd daemon, gminer is also the thin job client:
//
//	gminer submit -addr http://127.0.0.1:7077 -app tc -wait
//	gminer status -addr http://127.0.0.1:7077 job-1
//	gminer result -addr http://127.0.0.1:7077 -out tc.txt job-1
//	gminer cancel -addr http://127.0.0.1:7077 job-1
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gminer"
	"gminer/internal/algo"
	"gminer/internal/chaos"
	"gminer/internal/gen"
	"gminer/internal/graph"
	"gminer/internal/jobspec"
	"gminer/internal/monitor"
	"gminer/internal/partition"
	"gminer/internal/trace"
)

func main() {
	// Subcommand form: thin client against a gminerd daemon. Anything
	// else falls through to the single-shot flag interface, which stays
	// byte-for-byte compatible.
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "submit", "status", "result", "cancel", "mutate", "watch":
			runClient(os.Args[1], os.Args[2:])
			return
		}
	}

	var (
		graphPath = flag.String("graph", "", "input graph file")
		format    = flag.String("format", "adj", "graph file format: adj (adjacency list) or edges (SNAP edge list)")
		preset    = flag.String("preset", "", "generated dataset preset (skitter-s, orkut-s, btc-s, friendster-s, tencent-s, dblp-s)")
		scale     = flag.Float64("scale", 1.0, "preset scale factor")
		app       = flag.String("app", "tc", "application: tc, mcf, gm, cd, gc, gl3, qc, fsm")

		workers = flag.Int("workers", 4, "number of workers")
		threads = flag.Int("threads", 4, "computing threads per worker")
		part    = flag.String("partitioner", "bdg", "partitioner: bdg, hash, skewed, blocked")
		lsh     = flag.Bool("lsh", true, "enable the LSH task priority queue")
		steal   = flag.Bool("steal", true, "enable task stealing")
		useTCP  = flag.Bool("tcp", false, "run over loopback TCP instead of the in-process network")

		latency   = flag.Duration("latency", 0, "simulated network latency")
		bandwidth = flag.Int64("bandwidth", 0, "simulated network bandwidth (bytes/s, 0=unlimited)")
		spillDir  = flag.String("spill", "", "task-store spill directory (default: in-memory)")
		ckptDir   = flag.String("checkpoint-dir", "", "checkpoint directory")
		ckptEvery = flag.Duration("checkpoint-every", 0, "checkpoint interval (0=off)")
		resume    = flag.Bool("resume", false, "resume the job from the newest committed checkpoint in -checkpoint-dir")
		cacheCap  = flag.Int("cache", 8192, "RCV cache capacity (vertices)")
		storeCap  = flag.Int("store-mem", 8192, "in-memory task store capacity (tasks)")

		labels  = flag.Int("labels", 7, "for gm on unlabeled inputs: assign labels from this alphabet")
		pattern = flag.String("pattern", "", "gm pattern as 'labels;parents', e.g. '0,1,2,1,3;-1,0,0,2,2' (default: Figure 1 pattern)")
		minSim  = flag.Float64("minsim", 0.6, "cd/gc attribute similarity threshold")
		minSize = flag.Int("minsize", 4, "cd/gc minimum community/cluster size")
		split   = flag.Int("split", 0, "mcf: recursive task split threshold (0=off)")
		generic = flag.Bool("generic", false, "force the generic exploration path (no compiled plans / intersection kernels)")

		chaosProfile = flag.String("chaos-profile", "", "fault-injection profile: default, heavy, or 'drop=0.05,delay=0.2,delaymax=2ms,crash=1@15ms' (empty=off)")
		chaosSeed    = flag.Uint64("chaos-seed", 1, "chaos RNG seed; same seed, same fault sequence")

		emit      = flag.Bool("emit", false, "print result records")
		outPath   = flag.String("out", "", "write result records (sorted, one per line) to this file")
		timeout   = flag.Duration("timeout", 0, "abort after this duration (0=none)")
		httpAddr  = flag.String("http", "", "serve live job status over HTTP on this address (e.g. 127.0.0.1:8080)")
		tracePath = flag.String("trace", "", "write a Chrome trace-event JSON dump (load in Perfetto) to this file")
	)
	flag.Parse()

	g, err := loadGraph(*graphPath, *format, *preset, *scale)
	if err != nil {
		fatal(err)
	}

	spec := jobspec.Spec{
		App:     *app,
		Labels:  int32(*labels),
		Pattern: *pattern,
		MinSim:  *minSim,
		MinSize: *minSize,
		Split:   *split,
		Generic: *generic,
	}.Normalize()
	jobspec.Prepare(g, spec)
	a, err := jobspec.Build(g, spec)
	if err != nil {
		fatal(err)
	}

	cfg := gminer.Config{
		Workers:          *workers,
		Threads:          *threads,
		CacheCapacity:    *cacheCap,
		StoreMemCapacity: *storeCap,
		UseLSH:           *lsh,
		Stealing:         *steal,
		UseTCP:           *useTCP,
		Latency:          *latency,
		BandwidthBps:     *bandwidth,
		SpillDir:         *spillDir,
		CheckpointDir:    *ckptDir,
		CheckpointEvery:  *ckptEvery,
		Resume:           *resume,
		DisablePlans:     *generic,
	}
	switch *part {
	case "bdg":
		cfg.Partitioner = partition.BDG{}
	case "hash":
		cfg.Partitioner = partition.Hash{}
	case "skewed":
		cfg.Partitioner = partition.Skewed{Bias: 0.6}
	case "blocked":
		cfg.Partitioner = partition.Blocked{}
	default:
		fatal(fmt.Errorf("unknown partitioner %q", *part))
	}

	var chaosCtl *chaos.Controller
	if *chaosProfile != "" {
		p, err := chaos.ParseProfile(*chaosProfile, *chaosSeed)
		if err != nil {
			fatal(err)
		}
		if p.Active() {
			chaosCtl = chaos.New(p)
			cfg.Chaos = chaosCtl
		}
	}

	// Latency histograms are always on for the exit summary; full event
	// capture (ring buffers) only when a trace dump was requested.
	tracer := trace.New(cfg.Workers+1, 0).Enable()
	if *tracePath != "" {
		tracer.EnableEvents()
	}
	cfg.Tracer = tracer

	fmt.Printf("graph: %s\n", graph.ComputeStats(datasetName(*graphPath, *preset), g))
	fmt.Printf("running %s with %d workers x %d threads (%s partitioning, lsh=%v, stealing=%v)\n",
		a.Name(), cfg.Workers, cfg.Threads, *part, *lsh, *steal)
	if chaosCtl != nil {
		fmt.Printf("chaos:        profile %q, seed %d\n", *chaosProfile, *chaosSeed)
	}
	if *resume {
		fmt.Printf("resume:       from newest committed epoch in %s\n", *ckptDir)
	}

	job, err := gminer.Start(g, a, cfg)
	if err != nil {
		fatal(err)
	}
	if *httpAddr != "" {
		mon := monitor.New(job)
		mon.SetTracer(tracer)
		addr, err := mon.Start(*httpAddr)
		if err != nil {
			fatal(err)
		}
		defer mon.Stop()
		fmt.Printf("monitoring:   http://%s/status (metrics at /metrics)\n", addr)
	}
	if *timeout > 0 {
		go func() {
			time.Sleep(*timeout)
			job.Stop()
		}()
	}
	res, err := job.Wait()
	if err != nil {
		fatal(err)
	}

	fmt.Printf("partitioning: %.3fs (edge cut %.1f%%)\n", res.PartitionTime.Seconds(), 100*res.EdgeCut)
	fmt.Printf("mining time:  %.3fs\n", res.Elapsed.Seconds())
	fmt.Printf("cpu util:     %.1f%%\n", 100*res.CPUUtil(cfg))
	fmt.Printf("tasks done:   %d (stolen %d)\n", res.Total.TasksDone, res.Total.Stolen)
	fmt.Printf("network:      %d msgs, %d bytes\n", res.Total.NetMsgs, res.Total.NetBytes)
	fmt.Printf("disk spill:   %d bytes written, %d read\n", res.Total.DiskWrite, res.Total.DiskRead)
	fmt.Printf("cache:        %.1f%% hit rate\n", 100*res.Total.CacheHitRate())
	if res.LastCheckpointErr != nil {
		fmt.Printf("checkpoint:   %d failed attempts, last: %v\n", res.Total.CkptFails, res.LastCheckpointErr)
	}
	if chaosCtl != nil {
		fmt.Printf("chaos:        %s\n", chaosCtl.Stats())
	}
	if res.AggGlobal != nil {
		if pc, ok := res.AggGlobal.(algo.PatternCounts); ok {
			if fsm, ok2 := a.(*algo.FreqSubgraph); ok2 {
				freq := fsm.Frequent(pc)
				fmt.Printf("aggregate:    %d distinct patterns, %d frequent\n", len(pc), len(freq))
				for _, rec := range freq {
					fmt.Println("  " + rec)
				}
			}
		} else {
			fmt.Printf("aggregate:    %v\n", res.AggGlobal)
		}
	}
	fmt.Printf("records:      %d\n", len(res.Records))
	if len(res.Phases) > 0 {
		fmt.Printf("\npipeline latency (per phase):\n%s", trace.FormatSummary(res.Phases))
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		if err := tracer.WriteChrome(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace:        %s (load at https://ui.perfetto.dev)\n", *tracePath)
	}
	if *outPath != "" {
		var sb strings.Builder
		for _, r := range res.Records {
			sb.WriteString(r)
			sb.WriteByte('\n')
		}
		if err := os.WriteFile(*outPath, []byte(sb.String()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("records file: %s\n", *outPath)
	}
	if *emit {
		for _, r := range res.Records {
			fmt.Println(r)
		}
	}
}

func loadGraph(path, format, preset string, scale float64) (*graph.Graph, error) {
	switch {
	case path != "":
		switch format {
		case "adj":
			return graph.LoadFile(path)
		case "edges":
			return graph.LoadEdgeListFile(path)
		default:
			return nil, fmt.Errorf("unknown format %q (want adj or edges)", format)
		}
	case preset != "":
		return gen.Build(gen.Preset(preset), scale)
	default:
		return nil, fmt.Errorf("need -graph or -preset")
	}
}

func datasetName(path, preset string) string {
	if path != "" {
		return path
	}
	return preset
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gminer:", err)
	os.Exit(1)
}
