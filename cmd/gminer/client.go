package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"gminer/internal/jobspec"
	"gminer/internal/server"
)

// runClient dispatches the thin-client subcommands against a running
// gminerd daemon: submit | status | result | cancel.
func runClient(cmd string, args []string) {
	switch cmd {
	case "submit":
		clientSubmit(args)
	case "status":
		clientStatus(args)
	case "result":
		clientResult(args)
	case "cancel":
		clientCancel(args)
	case "mutate":
		clientMutate(args)
	case "watch":
		clientWatch(args)
	default:
		fatal(fmt.Errorf("unknown command %q (want submit, status, result, cancel, mutate or watch)", cmd))
	}
}

func clientSubmit(args []string) {
	fs := flag.NewFlagSet("gminer submit", flag.ExitOnError)
	var (
		addr    = fs.String("addr", "http://127.0.0.1:7077", "gminerd base URL")
		app     = fs.String("app", "tc", "application: tc, mcf, gm, cd, gc, gl3, qc, fsm")
		id      = fs.String("id", "", "job id (empty: server picks one)")
		pattern = fs.String("pattern", "", "gm pattern as 'labels;parents'")
		minSim  = fs.Float64("minsim", 0.6, "cd/gc/qc similarity threshold")
		minSize = fs.Int("minsize", 4, "cd/gc/qc minimum community size")
		split   = fs.Int("split", 0, "mcf recursive task split threshold (0=off)")
		memCap  = fs.Int64("mem-budget", 0, "per-job memory budget in bytes (0: server default)")

		standing = fs.Bool("standing", false, "subscribe to the dynamic graph: after the baseline, the job emits per-epoch match deltas (needs a -dynamic daemon; see 'gminer watch')")
		epoch    = fs.Int64("epoch", 0, "pin the job to this graph epoch; the server rejects the submit with 409 if the graph has moved (0: any)")

		tenant   = fs.String("tenant", "", "tenant this job bills to (empty: \"default\")")
		priority = fs.Int("priority", 0, "scheduling weight within weighted-fair sharing, 1..16 (0: default 1)")
		deadline = fs.Duration("deadline", 0, "queue+run deadline; past it the job is shed or preempted (0: none)")
		budget   = fs.Duration("budget", 0, "compute budget in busy-thread time; over it the job is preempted (0: server default)")
		wait     = fs.Bool("wait", false, "block until the job finishes and print its final state")
		emit     = fs.Bool("emit", false, "with -wait: print result records (implies -wait)")
		outPath  = fs.String("out", "", "with -wait: write result records to this file (implies -wait)")
		poll     = fs.Duration("poll", 50*time.Millisecond, "status poll interval while waiting")
	)
	_ = fs.Parse(args)
	if *emit || *outPath != "" {
		*wait = true
	}

	req := server.JobRequest{
		Spec: jobspec.Spec{
			App:             *app,
			Pattern:         *pattern,
			MinSim:          *minSim,
			MinSize:         *minSize,
			Split:           *split,
			Standing:        *standing,
			Epoch:           *epoch,
			Tenant:          *tenant,
			Priority:        *priority,
			DeadlineSeconds: deadline.Seconds(),
			BudgetSeconds:   budget.Seconds(),
		},
		ID:             *id,
		MemBudgetBytes: *memCap,
	}
	body, err := json.Marshal(req)
	if err != nil {
		fatal(err)
	}
	var st server.JobStatus
	if err := doJSON(http.MethodPost, base(*addr)+"/jobs", body, &st); err != nil {
		fatal(err)
	}
	fmt.Printf("job %s: %s\n", st.ID, st.State)
	if !*wait {
		return
	}

	// A standing job never goes terminal on its own: -wait means "wait for
	// the baseline", i.e. until it parks in the standing state.
	for !terminalState(st.State) && st.State != server.StateStanding {
		time.Sleep(*poll)
		if err := doJSON(http.MethodGet, base(*addr)+"/jobs/"+st.ID, nil, &st); err != nil {
			fatal(err)
		}
	}
	printStatus(st)
	if st.State != server.StateDone && st.State != server.StateStanding {
		os.Exit(1)
	}
	if *emit || *outPath != "" {
		fetchRecords(base(*addr), st.ID, *outPath, *emit)
	}
}

func clientStatus(args []string) {
	fs := flag.NewFlagSet("gminer status", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:7077", "gminerd base URL")
	_ = fs.Parse(args)

	if fs.NArg() == 0 { // no id: list every retained job
		var jobs []server.JobStatus
		if err := doJSON(http.MethodGet, base(*addr)+"/jobs", nil, &jobs); err != nil {
			fatal(err)
		}
		if len(jobs) == 0 {
			fmt.Println("no jobs")
			return
		}
		fmt.Printf("%-16s %-6s %-10s %10s %10s\n", "id", "app", "state", "tasks", "records")
		for _, j := range jobs {
			var tasks, records int64
			if j.Progress != nil {
				tasks, records = j.Progress.TasksDone, j.Progress.Results
			}
			state := j.State
			if j.Cached {
				state += " [cached]"
			}
			fmt.Printf("%-16s %-6s %-10s %10d %10d\n", j.ID, j.App, state, tasks, records)
		}
		return
	}
	var st server.JobStatus
	if err := doJSON(http.MethodGet, base(*addr)+"/jobs/"+fs.Arg(0), nil, &st); err != nil {
		fatal(err)
	}
	printStatus(st)
}

func clientResult(args []string) {
	fs := flag.NewFlagSet("gminer result", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:7077", "gminerd base URL")
	outPath := fs.String("out", "", "write records to this file instead of stdout")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("usage: gminer result [-addr URL] [-out FILE] JOB_ID"))
	}
	fetchRecords(base(*addr), fs.Arg(0), *outPath, *outPath == "")
}

func clientCancel(args []string) {
	fs := flag.NewFlagSet("gminer cancel", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:7077", "gminerd base URL")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("usage: gminer cancel [-addr URL] JOB_ID"))
	}
	var st server.JobStatus
	if err := doJSON(http.MethodDelete, base(*addr)+"/jobs/"+fs.Arg(0), nil, &st); err != nil {
		fatal(err)
	}
	fmt.Printf("job %s: %s\n", st.ID, st.State)
}

// fetchRecords downloads a finished job's record stream (the byte-exact
// equivalent of the single-shot CLI's -out file).
func fetchRecords(baseURL, id, outPath string, emit bool) {
	resp, err := http.Get(baseURL + "/jobs/" + id + "/result?format=text")
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("result %s: %s: %s", id, resp.Status, strings.TrimSpace(string(b))))
	}
	if outPath != "" {
		if err := os.WriteFile(outPath, b, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("records file: %s\n", outPath)
	}
	if emit {
		_, _ = os.Stdout.Write(b)
	}
}

func printStatus(st server.JobStatus) {
	marker := ""
	if st.Cached {
		marker = " [cached]"
	}
	fmt.Printf("job %s (%s): %s%s\n", st.ID, st.App, st.State, marker)
	if st.Error != "" {
		fmt.Printf("  error:   %s\n", st.Error)
	}
	if st.Tenant != "" {
		line := fmt.Sprintf("  tenant:  %s  priority: %d  queue wait: %.3fs", st.Tenant, st.Priority, st.QueueWaitSeconds)
		if st.QueuePosition > 0 {
			line += fmt.Sprintf("  queue position: %d", st.QueuePosition)
		}
		if st.CostSeconds > 0 {
			line += fmt.Sprintf("  cost: %.3fs", st.CostSeconds)
		} else if st.CostEstimateSeconds > 0 {
			line += fmt.Sprintf("  est. cost: %.3fs", st.CostEstimateSeconds)
		}
		fmt.Println(line)
	}
	if st.Progress != nil {
		fmt.Printf("  elapsed: %.3fs  tasks: %d  records: %d  net: %dB  cache hit: %.1f%%\n",
			st.Progress.ElapsedSeconds, st.Progress.TasksDone, st.Progress.Results,
			st.Progress.NetBytes, 100*st.Progress.CacheHitRate)
	}
	for _, p := range st.Phases {
		fmt.Printf("  %-22s n=%-8d p50=%-12s p95=%-12s p99=%s\n",
			p.Component+"/"+p.Metric, p.Count, p.P50, p.P95, p.P99)
	}
}

func terminalState(s string) bool {
	switch s {
	case server.StateDone, server.StateFailed, server.StateCancelled,
		server.StatePreempted, server.StateShed:
		return true
	}
	return false
}

func base(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/")
}

// doJSON performs one API call; non-2xx responses surface the server's
// error body.
func doJSON(method, url string, body []byte, out any) error {
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var eb struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(b, &eb) == nil && eb.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, eb.Error)
		}
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(b)))
	}
	if out != nil {
		return json.Unmarshal(b, out)
	}
	return nil
}
