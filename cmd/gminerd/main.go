// Command gminerd is the long-lived G-Miner job server: it loads and
// BDG-partitions the graph once, keeps the cluster warm (worker vertex
// tables, transport, partition assignment), and serves concurrent mining
// jobs over HTTP/JSON.
//
//	gminerd -preset orkut-s -addr 127.0.0.1:7077 -max-jobs 3
//	curl -s -X POST localhost:7077/jobs -d '{"app":"tc"}'
//	curl -s localhost:7077/jobs/job-1
//	curl -s localhost:7077/jobs/job-1/result?format=text
//
// SIGINT/SIGTERM shut the daemon down gracefully: new submissions are
// refused, running jobs drain (checkpointing as configured), and the
// listen port is released so a restarted daemon can bind it immediately.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gminer/internal/cluster"
	"gminer/internal/gen"
	"gminer/internal/graph"
	"gminer/internal/jobspec"
	"gminer/internal/partition"
	"gminer/internal/server"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "input graph file")
		format    = flag.String("format", "adj", "graph file format: adj (adjacency list) or edges (SNAP edge list)")
		preset    = flag.String("preset", "", "generated dataset preset (skitter-s, orkut-s, btc-s, friendster-s, tencent-s, dblp-s)")
		scale     = flag.Float64("scale", 1.0, "preset scale factor")

		workers  = flag.Int("workers", 4, "number of workers")
		threads  = flag.Int("threads", 4, "computing threads per worker")
		part     = flag.String("partitioner", "bdg", "partitioner: bdg, hash, skewed, blocked")
		dynamic  = flag.Bool("dynamic", false, "accept graph mutations (POST /graph/mutations) and standing queries; forces the blocked partitioner; single-process mode only")
		lsh      = flag.Bool("lsh", true, "enable the LSH task priority queue")
		steal    = flag.Bool("steal", true, "enable task stealing")
		cacheCap = flag.Int("cache", 8192, "RCV cache capacity (vertices) per worker per job")
		storeCap = flag.Int("store-mem", 8192, "in-memory task store capacity (tasks) per worker per job")
		spillDir = flag.String("spill", "", "task-store spill directory; each job gets its own subdirectory")

		ckptDir   = flag.String("checkpoint-dir", "", "checkpoint directory; each job gets its own subdirectory")
		ckptEvery = flag.Duration("checkpoint-every", 0, "default checkpoint interval for served jobs (0=off)")

		labels = flag.Int("labels", 7, "label alphabet assigned at startup when the graph is unlabeled (gm/fsm jobs)")

		clusterListen = flag.String("cluster-listen", "", "run as multi-process coordinator: TCP address worker processes dial (empty = single-process mode)")
		clusterAdv    = flag.String("cluster-advertise", "", "address advertised to worker processes (default: the bound cluster-listen address)")
		joinTimeout   = flag.Duration("join-timeout", 60*time.Second, "coordinator mode: how long to wait for all worker processes to join before serving")
		failTimeout   = flag.Duration("fail-timeout", 2*time.Second, "coordinator mode: silence after which a worker process is considered lost")
		resume        = flag.Bool("resume", false, "coordinator mode: rebuild held jobs from -checkpoint-dir JOBSPEC+MANIFEST files and resume them once all workers rejoin")

		addr         = flag.String("addr", "127.0.0.1:7077", "HTTP listen address")
		maxJobs      = flag.Int("max-jobs", 2, "maximum concurrently mining jobs")
		queueDepth   = flag.Int("queue-depth", 8, "admission queue depth (beyond it, submissions get 429 or shed queued work)")
		jobMem       = flag.Int64("job-mem", 0, "default per-job memory budget in bytes (0=unlimited)")
		jobBudget    = flag.Duration("job-budget", 0, "default per-job compute budget in busy-thread time (0=unlimited); over-budget jobs are preempted at a round boundary")
		resultCache  = flag.Int("result-cache", 256, "result cache entries (repeat queries answered without recompute; 0=disabled)")
		retain       = flag.Int("retain", 64, "finished jobs kept queryable before eviction")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown wait for running jobs before cancelling them")
	)
	flag.Parse()

	g, err := loadGraph(*graphPath, *format, *preset, *scale)
	if err != nil {
		fatal(err)
	}

	// Prepare every annotation family ONCE, before the first job: the
	// resident graph is shared by concurrent jobs and must never be
	// mutated per job. The assignment parameters and seeds match the
	// single-shot CLI's defaults, which is what makes served results
	// byte-identical to `gminer -app ...` on the same input.
	jobspec.Prepare(g, jobspec.Spec{App: "gm", Labels: int32(*labels)}.Normalize())
	jobspec.Prepare(g, jobspec.Spec{App: "cd"}.Normalize())

	ccfg := cluster.Config{
		Workers:          *workers,
		Threads:          *threads,
		CacheCapacity:    *cacheCap,
		StoreMemCapacity: *storeCap,
		UseLSH:           *lsh,
		Stealing:         *steal,
		SpillDir:         *spillDir,
		CheckpointDir:    *ckptDir,
		CheckpointEvery:  *ckptEvery,
	}
	switch *part {
	case "bdg":
		ccfg.Partitioner = partition.BDG{}
	case "hash":
		ccfg.Partitioner = partition.Hash{}
	case "skewed":
		ccfg.Partitioner = partition.Skewed{Bias: 0.6}
	case "blocked":
		ccfg.Partitioner = partition.Blocked{}
	default:
		fatal(fmt.Errorf("unknown partitioner %q", *part))
	}
	if *dynamic {
		// Mutations re-place only dirty blocks, which requires the
		// decomposable block partitioner. Silently upgrading bdg would
		// change results vs a static daemon, so say so.
		if *clusterListen != "" {
			fatal(fmt.Errorf("-dynamic requires single-process mode (the resident graph lives in this process)"))
		}
		if _, ok := ccfg.Partitioner.(partition.Blocked); !ok {
			fmt.Printf("dynamic: overriding -partitioner %s with blocked (incremental re-placement needs decomposable blocks)\n", *part)
			*part = "blocked"
			ccfg.Partitioner = partition.Blocked{}
		}
		ccfg.Dynamic = true
	}

	fmt.Printf("graph: %s\n", graph.ComputeStats(datasetName(*graphPath, *preset), g))
	var sess server.Cluster
	var held []cluster.HeldJob
	if *clusterListen != "" {
		// Multi-process coordinator: the engine's workers live in separate
		// gminer-worker processes dialing in over TCP. Block serving until
		// every slot has joined — a job launched into a half-formed cluster
		// would only stall against the failure detector.
		ccfg.Resume = *resume
		rs, err := cluster.NewRemoteSession(g, ccfg, cluster.RemoteSessionConfig{
			Listen:      *clusterListen,
			Advertise:   *clusterAdv,
			FailTimeout: *failTimeout,
			Logf: func(format string, args ...any) {
				fmt.Printf("cluster: "+format+"\n", args...)
			},
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("coordinator: listening on %s for %d worker processes (fingerprint %x)\n",
			rs.Addr(), *workers, rs.Fingerprint())
		if err := rs.WaitReady(*joinTimeout); err != nil {
			fatal(err)
		}
		held = rs.HeldJobs()
		sess = rs
	} else {
		s, err := cluster.NewSession(g, ccfg)
		if err != nil {
			fatal(err)
		}
		sess = s
	}
	fmt.Printf("warm cluster: %d workers x %d threads, %s partitioning in %.3fs (edge cut %.1f%%)\n",
		*workers, *threads, *part, sess.PartitionTime().Seconds(), 100*sess.EdgeCut())

	cacheEntries := *resultCache
	if cacheEntries <= 0 {
		cacheEntries = -1 // registry treats negative as disabled, 0 as default
	}
	srv := server.New(sess, server.Config{
		MaxConcurrentJobs:     *maxJobs,
		MaxQueueDepth:         *queueDepth,
		DefaultMemBudgetBytes: *jobMem,
		DefaultBudgetSeconds:  jobBudget.Seconds(),
		ResultCacheEntries:    cacheEntries,
		MaxRetainedJobs:       *retain,
		DrainTimeout:          *drainTimeout,
	})
	bound, err := srv.Start(*addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("serving: http://%s (POST /jobs, GET /jobs/{id}, GET /jobs/{id}/result, DELETE /jobs/{id}, /healthz, /metrics)\n", bound)
	if *dynamic {
		fmt.Printf("dynamic: POST /graph/mutations, GET /jobs/{id}/deltas (standing queries) enabled\n")
	}

	// -resume: resubmit every held job under its original ID. The cluster
	// layer matches the ID to its JOBSPEC+MANIFEST directory and restores
	// from the highest epoch all rejoined workers still hold, so the job
	// continues instead of recomputing from scratch.
	for _, hj := range held {
		if err := srv.SubmitJob(server.JobRequest{
			Spec:                   hj.Spec,
			ID:                     hj.ID,
			CheckpointEverySeconds: hj.CheckpointEverySeconds,
		}); err != nil {
			fmt.Printf("resume: job %s not resubmitted: %v\n", hj.ID, err)
		} else {
			fmt.Printf("resume: job %s resubmitted from its checkpoint manifest\n", hj.ID)
		}
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	sig := <-sigs
	fmt.Printf("received %s: draining (up to %s) and shutting down\n", sig, *drainTimeout)
	srv.Shutdown()
	fmt.Println("shutdown complete, port released")
}

func loadGraph(path, format, preset string, scale float64) (*graph.Graph, error) {
	switch {
	case path != "":
		switch format {
		case "adj":
			return graph.LoadFile(path)
		case "edges":
			return graph.LoadEdgeListFile(path)
		default:
			return nil, fmt.Errorf("unknown format %q (want adj or edges)", format)
		}
	case preset != "":
		return gen.Build(gen.Preset(preset), scale)
	default:
		return nil, fmt.Errorf("need -graph or -preset")
	}
}

func datasetName(path, preset string) string {
	if path != "" {
		return path
	}
	return preset
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gminerd:", err)
	os.Exit(1)
}
