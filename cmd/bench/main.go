// Command bench is the reproducible performance harness behind the
// checked-in BENCH_PR3.json. It measures the three optimizations of the
// sharded-cache PR with fixed seeds, so any two runs on the same machine
// and profile are comparable:
//
//   - cache: RCV Acquire/Release throughput swept over shard counts and
//     goroutine counts (the paper's single-lock cache is shards=1);
//   - encode: allocations per operation for the pull-response, task-batch
//     and pull-request wire encodes, fresh wire.Writer vs the pooled
//     GetWriter/PutWriter path the runtime now uses;
//   - workloads: the triangle (TC), graph-match (GM) and community (CD)
//     example workloads on seeded generated graphs, with per-phase
//     p50/p95/p99 latencies from the trace subsystem, task throughput and
//     heap allocations. Each workload runs twice and the two outputs must
//     be byte-identical (the determinism the golden tests pin).
//
// Usage:
//
//	bench                            # small profile, seed 42, BENCH_PR3.json
//	bench -profile ci -out bench.json
//	bench -baseline BENCH_PR3.json -max-regress 0.20
//
// With -baseline, the run exits non-zero if triangle task throughput
// regresses by more than -max-regress versus the baseline file (the CI
// bench job uses this against the checked-in BENCH_PR3.json). With -gate
// (on by default) the run also exits non-zero if the pooled encode paths
// do not show at least a 30% allocation reduction, or — on machines with
// GOMAXPROCS >= 4, where lock contention is physically possible — if the
// sharded cache does not reach 2x single-lock throughput at 8 goroutines.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"gminer/internal/algo"
	"gminer/internal/cache"
	"gminer/internal/cluster"
	"gminer/internal/core"
	"gminer/internal/gen"
	"gminer/internal/graph"
	"gminer/internal/trace"
	"gminer/internal/wire"
)

// Report is the JSON document bench writes. Field names are stable: the
// CI regression check and the README examples parse them.
type Report struct {
	PR         int       `json:"pr"`
	Profile    string    `json:"profile"`
	Seed       int64     `json:"seed"`
	GoVersion  string    `json:"go_version"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	NumCPU     int       `json:"num_cpu"`
	Cache      CacheRep  `json:"cache"`
	Encode     []PathRep `json:"encode"`
	Workloads  []WorkRep `json:"workloads"`
}

type CacheRep struct {
	Capacity   int          `json:"capacity"`
	OpsPerG    int          `json:"ops_per_goroutine"`
	Points     []CachePoint `json:"points"`
	Speedup8G  float64      `json:"speedup_8g_shards16_vs_1"`
	SpeedupMsg string       `json:"speedup_gate"`
}

type CachePoint struct {
	Shards     int     `json:"shards"`
	Goroutines int     `json:"goroutines"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	NsPerOp    float64 `json:"ns_per_op"`
}

// PathRep compares one wire-encode path before (fresh Writer per message,
// the pre-PR shape) and after (pooled writer) in allocations per op.
type PathRep struct {
	Name         string  `json:"name"`
	FreshAllocs  float64 `json:"fresh_allocs_per_op"`
	PooledAllocs float64 `json:"pooled_allocs_per_op"`
	ReductionPct float64 `json:"reduction_pct"`
}

type WorkRep struct {
	Name          string               `json:"name"`
	Vertices      int                  `json:"vertices"`
	Edges         int64                `json:"edges"`
	ElapsedMS     float64              `json:"elapsed_ms"`
	TasksDone     int64                `json:"tasks_done"`
	TasksPerSec   float64              `json:"tasks_per_sec"`
	Records       int                  `json:"records"`
	Agg           string               `json:"agg"`
	AllocsPerTask float64              `json:"allocs_per_task"`
	TotalAllocMB  float64              `json:"total_alloc_mb"`
	RunsIdentical bool                 `json:"runs_identical"`
	Phases        []trace.PhaseSummary `json:"phases"`
}

// profileCfg scales every section. ci keeps the GitHub runner under a few
// seconds; small is the default developer profile; full approaches the
// paper's scaled-down datasets.
type profileCfg struct {
	cacheOps             int
	triScale, matchScale int
	triEdges, matchEdges int64
	communities          int
}

var profiles = map[string]profileCfg{
	"ci":    {cacheOps: 200_000, triScale: 9, triEdges: 5_000, matchScale: 8, matchEdges: 2_500, communities: 16},
	"small": {cacheOps: 400_000, triScale: 10, triEdges: 12_000, matchScale: 9, matchEdges: 6_000, communities: 32},
	"full":  {cacheOps: 1_000_000, triScale: 12, triEdges: 60_000, matchScale: 11, matchEdges: 30_000, communities: 64},
}

func main() {
	var (
		profile    = flag.String("profile", "small", "workload sizes: ci, small or full")
		seed       = flag.Int64("seed", 42, "generator seed (fixed seed => reproducible graphs)")
		out        = flag.String("out", "BENCH_PR3.json", "output JSON path")
		baseline   = flag.String("baseline", "", "baseline JSON to compare against (empty = no check)")
		maxRegress = flag.Float64("max-regress", 0.20, "max allowed triangle throughput regression vs baseline")
		gate       = flag.Bool("gate", true, "enforce the PR acceptance thresholds (encode allocs, cache speedup)")
	)
	flag.Parse()

	pc, ok := profiles[*profile]
	if !ok {
		fatalf("unknown profile %q (want ci, small or full)", *profile)
	}

	rep := Report{
		PR:         3,
		Profile:    *profile,
		Seed:       *seed,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	fmt.Fprintf(os.Stderr, "bench: cache shard sweep (%d ops/goroutine)\n", pc.cacheOps)
	rep.Cache = benchCache(pc.cacheOps)

	fmt.Fprintln(os.Stderr, "bench: encode-path allocations (fresh vs pooled writers)")
	rep.Encode = benchEncode(*seed)

	for _, wl := range []struct {
		name  string
		build func() (*graph.Graph, core.Algorithm)
	}{
		{"triangle", func() (*graph.Graph, core.Algorithm) {
			g := gen.RMAT(gen.RMATConfig{Scale: pc.triScale, Edges: pc.triEdges, Seed: *seed})
			return g, algo.NewTriangleCount()
		}},
		{"match", func() (*graph.Graph, core.Algorithm) {
			g := gen.RMAT(gen.RMATConfig{Scale: pc.matchScale, Edges: pc.matchEdges, Seed: *seed})
			gen.AssignLabels(g, 7, *seed+1)
			return g, algo.NewGraphMatch(algo.FigurePattern())
		}},
		{"community", func() (*graph.Graph, core.Algorithm) {
			g, _ := gen.Community(gen.CommunityConfig{
				Communities: pc.communities,
				MinSize:     8,
				MaxSize:     16,
				PIn:         0.7,
				Bridges:     int64(pc.communities) * 10,
				Seed:        *seed,
			})
			return g, algo.NewCommunityDetect(0.6, 5)
		}},
	} {
		fmt.Fprintf(os.Stderr, "bench: workload %s\n", wl.name)
		g, a := wl.build()
		wr, err := runWorkload(wl.name, g, a)
		if err != nil {
			fatalf("workload %s: %v", wl.name, err)
		}
		rep.Workloads = append(rep.Workloads, wr)
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatalf("write %s: %v", *out, err)
	}
	printSummary(&rep, *out)

	failed := false
	if *gate {
		failed = !checkGates(&rep)
	}
	if *baseline != "" {
		if err := checkBaseline(&rep, *baseline, *maxRegress); err != nil {
			fmt.Fprintf(os.Stderr, "bench: FAIL %v\n", err)
			failed = true
		} else {
			fmt.Fprintf(os.Stderr, "bench: baseline check vs %s passed\n", *baseline)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// benchCache sweeps Acquire/Release throughput on a preloaded hot set.
// shards=1 is the paper's single-lock RCV cache; shards=16 is the PR's
// default. All accesses hit, so the measurement isolates lock and map
// cost, not eviction policy.
func benchCache(opsPerG int) CacheRep {
	const capacity = 4096
	rep := CacheRep{Capacity: capacity, OpsPerG: opsPerG}
	byKey := map[[2]int]float64{}
	for _, shards := range []int{1, 16} {
		for _, goroutines := range []int{1, 8} {
			p := benchCachePoint(shards, goroutines, capacity, opsPerG)
			rep.Points = append(rep.Points, p)
			byKey[[2]int{shards, goroutines}] = p.OpsPerSec
		}
	}
	if base := byKey[[2]int{1, 8}]; base > 0 {
		rep.Speedup8G = byKey[[2]int{16, 8}] / base
	}
	if runtime.GOMAXPROCS(0) >= 4 {
		rep.SpeedupMsg = "enforced: GOMAXPROCS>=4, require >=2x at 8 goroutines"
	} else {
		rep.SpeedupMsg = fmt.Sprintf(
			"skipped: GOMAXPROCS=%d; a single-core runner serializes all goroutines, so shard-count cannot change throughput — run on >=4 cores (or `go test -bench AcquireParallel ./internal/cache`) to exercise lock contention",
			runtime.GOMAXPROCS(0))
	}
	return rep
}

func benchCachePoint(shards, goroutines, capacity, opsPerG int) CachePoint {
	c := cache.NewSharded(capacity, shards, nil)
	adj := []graph.VertexID{1, 2, 3, 4}
	for i := 0; i < capacity; i++ {
		c.Insert(&graph.Vertex{ID: graph.VertexID(i), Adj: adj})
		c.Release(graph.VertexID(i))
	}
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < opsPerG; i++ {
				// Stride by a prime so goroutines spread over the hot set.
				id := graph.VertexID((g*7919 + i) % capacity)
				if _, ok := c.Acquire(id); ok {
					c.Release(id)
				}
			}
		}(g)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)
	total := float64(goroutines * opsPerG)
	return CachePoint{
		Shards:     shards,
		Goroutines: goroutines,
		OpsPerSec:  total / elapsed.Seconds(),
		NsPerOp:    float64(elapsed.Nanoseconds()) / total,
	}
}

// encodeSink keeps the encoded length observable so the compiler cannot
// elide the encode work under testing.AllocsPerRun.
var encodeSink int

// benchEncode measures allocations per message for the three wire paths
// the runtime pools: pull responses (vertex payloads served back to a
// puller), task batches (migration / spill framing) and pull requests
// (ID batches). "fresh" allocates a new wire.Writer per message — the
// shape the code had before pooling; "pooled" round-trips the writer
// through GetWriter/PutWriter exactly like worker.servePull and
// flushPulls do.
func benchEncode(seed int64) []PathRep {
	g := gen.RMAT(gen.RMATConfig{Scale: 8, Edges: 2_000, Seed: seed})
	var verts []*graph.Vertex
	var ids []graph.VertexID
	for i := 0; len(verts) < 64 && i < g.NumVertices(); i++ {
		v := g.VertexAt(i)
		verts = append(verts, v)
		ids = append(ids, v.ID)
	}
	codec := core.NoContext{}
	var tasks []*core.Task
	for i := 0; i < 16; i++ {
		t := &core.Task{ID: uint64(i), Round: 1, Cands: ids[:8]}
		t.Subgraph.AddVertices(ids[i], ids[i+1], ids[i+2])
		t.Subgraph.AddEdge(ids[i], ids[i+1])
		t.Subgraph.AddEdge(ids[i+1], ids[i+2])
		tasks = append(tasks, t)
	}

	paths := []struct {
		name string
		hint int
		fill func(w *wire.Writer)
	}{
		{"pull_resp", 64 + 32*len(verts), func(w *wire.Writer) {
			w.Uvarint(uint64(len(verts)))
			for _, v := range verts {
				wire.EncodeVertex(w, v)
			}
		}},
		{"task_batch", 1 << 12, func(w *wire.Writer) {
			w.Uvarint(uint64(len(tasks)))
			for _, t := range tasks {
				core.EncodeTask(w, t, codec)
			}
		}},
		{"pull_req", 16 + 10*len(ids), func(w *wire.Writer) {
			wire.EncodeIDs(w, ids)
		}},
	}

	var out []PathRep
	for _, p := range paths {
		fill, hint := p.fill, p.hint
		fresh := testing.AllocsPerRun(2_000, func() {
			w := wire.NewWriter(hint)
			fill(w)
			encodeSink += w.Len()
		})
		// Warm the pool so the steady state is measured, as in the worker.
		wire.PutWriter(wire.GetWriter(hint))
		pooled := testing.AllocsPerRun(2_000, func() {
			w := wire.GetWriter(hint)
			fill(w)
			encodeSink += w.Len()
			wire.PutWriter(w)
		})
		r := PathRep{Name: p.name, FreshAllocs: fresh, PooledAllocs: pooled}
		if fresh > 0 {
			r.ReductionPct = (1 - pooled/fresh) * 100
		}
		out = append(out, r)
	}
	return out
}

// runWorkload executes one example workload twice with a tracer attached
// and Stealing disabled (so output is a pure function of graph +
// algorithm + partitioning), verifies the two runs are byte-identical,
// and reports timing, throughput, allocations and per-phase percentiles
// from the warm second run.
func runWorkload(name string, g *graph.Graph, a core.Algorithm) (WorkRep, error) {
	base := cluster.Config{
		Workers:          4,
		Threads:          2,
		CacheCapacity:    2048,
		StoreMemCapacity: 1024,
		UseLSH:           true,
		Stealing:         false,
	}
	run := func() (*cluster.Result, uint64, error) {
		cfg := base
		cfg.Tracer = trace.New(cfg.Workers+1, 0).Enable()
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		res, err := cluster.Run(g, a, cfg)
		runtime.ReadMemStats(&m1)
		return res, m1.Mallocs - m0.Mallocs, err
	}
	first, _, err := run()
	if err != nil {
		return WorkRep{}, err
	}
	second, mallocs, err := run()
	if err != nil {
		return WorkRep{}, err
	}
	identical := golden(first) == golden(second)

	res := second
	wr := WorkRep{
		Name:          name,
		Vertices:      g.NumVertices(),
		Edges:         g.NumEdges(),
		ElapsedMS:     float64(res.Elapsed.Microseconds()) / 1000,
		TasksDone:     res.Total.TasksDone,
		Records:       len(res.Records),
		Agg:           fmt.Sprintf("%v", res.AggGlobal),
		TotalAllocMB:  float64(mallocBytes(res)) / (1 << 20),
		RunsIdentical: identical,
		Phases:        res.Phases,
	}
	if s := res.Elapsed.Seconds(); s > 0 {
		wr.TasksPerSec = float64(res.Total.TasksDone) / s
	}
	if res.Total.TasksDone > 0 {
		wr.AllocsPerTask = float64(mallocs) / float64(res.Total.TasksDone)
	}
	if !identical {
		return wr, fmt.Errorf("two runs of %s diverged — determinism broken", name)
	}
	return wr, nil
}

// mallocBytes approximates the job's heap traffic with the runtime's
// peak-memory counter (bytes held by task stores and caches at peak).
func mallocBytes(res *cluster.Result) int64 { return res.Total.PeakBytes }

func golden(res *cluster.Result) string {
	s := fmt.Sprintf("agg=%v\n", res.AggGlobal)
	for _, r := range res.Records {
		s += r + "\n"
	}
	return s
}

// checkGates enforces the PR's acceptance thresholds and reports pass /
// fail per gate. Returns true when every applicable gate passed.
func checkGates(rep *Report) bool {
	ok := true
	for _, p := range rep.Encode {
		if p.ReductionPct < 30 {
			fmt.Fprintf(os.Stderr, "bench: FAIL encode gate: %s alloc reduction %.1f%% < 30%%\n",
				p.Name, p.ReductionPct)
			ok = false
		} else {
			fmt.Fprintf(os.Stderr, "bench: encode gate %s: %.2f -> %.2f allocs/op (-%.1f%%)\n",
				p.Name, p.FreshAllocs, p.PooledAllocs, p.ReductionPct)
		}
	}
	if rep.GOMAXPROCS >= 4 {
		if rep.Cache.Speedup8G < 2 {
			fmt.Fprintf(os.Stderr, "bench: FAIL cache gate: %.2fx at 8 goroutines (shards 16 vs 1) < 2x\n",
				rep.Cache.Speedup8G)
			ok = false
		} else {
			fmt.Fprintf(os.Stderr, "bench: cache gate: %.2fx at 8 goroutines (shards 16 vs 1)\n",
				rep.Cache.Speedup8G)
		}
	} else {
		fmt.Fprintf(os.Stderr, "bench: cache gate %s\n", rep.Cache.SpeedupMsg)
	}
	for _, w := range rep.Workloads {
		if !w.RunsIdentical {
			fmt.Fprintf(os.Stderr, "bench: FAIL determinism gate: %s runs diverged\n", w.Name)
			ok = false
		}
	}
	return ok
}

// checkBaseline fails when triangle task throughput dropped more than
// maxRegress vs the baseline report. Profiles must match — comparing a
// ci run against a small baseline would be noise.
func checkBaseline(cur *Report, path string, maxRegress float64) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base Report
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	if base.Profile != cur.Profile {
		fmt.Fprintf(os.Stderr, "bench: baseline profile %q != current %q; skipping throughput check\n",
			base.Profile, cur.Profile)
		return nil
	}
	find := func(r *Report) *WorkRep {
		for i := range r.Workloads {
			if r.Workloads[i].Name == "triangle" {
				return &r.Workloads[i]
			}
		}
		return nil
	}
	b, c := find(&base), find(cur)
	if b == nil || c == nil || b.TasksPerSec == 0 {
		return fmt.Errorf("baseline %s: no comparable triangle workload", path)
	}
	floor := (1 - maxRegress) * b.TasksPerSec
	if c.TasksPerSec < floor {
		return fmt.Errorf("triangle throughput regressed: %.0f tasks/s < floor %.0f (baseline %.0f, max regress %.0f%%)",
			c.TasksPerSec, floor, b.TasksPerSec, maxRegress*100)
	}
	fmt.Fprintf(os.Stderr, "bench: triangle throughput %.0f tasks/s vs baseline %.0f (floor %.0f)\n",
		c.TasksPerSec, b.TasksPerSec, floor)
	return nil
}

func printSummary(rep *Report, out string) {
	fmt.Printf("profile=%s seed=%d %s GOMAXPROCS=%d\n",
		rep.Profile, rep.Seed, rep.GoVersion, rep.GOMAXPROCS)
	fmt.Println("\ncache Acquire/Release throughput:")
	for _, p := range rep.Cache.Points {
		fmt.Printf("  shards=%-2d goroutines=%d  %12.0f ops/s  (%.1f ns/op)\n",
			p.Shards, p.Goroutines, p.OpsPerSec, p.NsPerOp)
	}
	fmt.Printf("  speedup at 8 goroutines, shards 16 vs 1: %.2fx\n", rep.Cache.Speedup8G)
	fmt.Println("\nencode allocations per message (fresh writer vs pooled):")
	for _, p := range rep.Encode {
		fmt.Printf("  %-10s %6.2f -> %5.2f allocs/op  (-%.1f%%)\n",
			p.Name, p.FreshAllocs, p.PooledAllocs, p.ReductionPct)
	}
	fmt.Println("\nworkloads (4 workers x 2 threads, stealing off, warm run):")
	for _, w := range rep.Workloads {
		fmt.Printf("  %-10s |V|=%-6d |E|=%-7d %8.1f ms  %6d tasks  %9.0f tasks/s  agg=%s identical=%v\n",
			w.Name, w.Vertices, w.Edges, w.ElapsedMS, w.TasksDone, w.TasksPerSec, w.Agg, w.RunsIdentical)
		fmt.Print(trace.FormatSummary(w.Phases))
	}
	fmt.Printf("\nwrote %s\n", out)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bench: "+format+"\n", args...)
	os.Exit(1)
}
