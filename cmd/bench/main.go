// Command bench is the reproducible performance harness behind the
// checked-in BENCH_*.json reports. It measures with fixed seeds, so any
// two runs on the same machine and profile are comparable:
//
//   - cache: RCV Acquire/Release throughput swept over shard counts and
//     goroutine counts (the paper's single-lock cache is shards=1);
//   - encode: allocations per operation for the pull-response, task-batch
//     and pull-request wire encodes, fresh wire.Writer vs the pooled
//     GetWriter/PutWriter path the runtime now uses;
//   - kernels: intersection strategy sweep (merge vs gallop vs bitset vs
//     the Choose-selected adaptive entry) across operand-size ratios, the
//     selection thresholds DESIGN.md §12 documents;
//   - plans: compiled execution plans (pattern-aware matching order +
//     symmetry breaking + kernel intersections over the degree-ranked CSR)
//     against the generic sequential exploration of the same workload,
//     with the CSR build cost reported separately;
//   - workloads: the triangle (TC), graph-match (GM) and community (CD)
//     example workloads on seeded generated graphs, with per-phase
//     p50/p95/p99 latencies from the trace subsystem, task throughput and
//     heap allocations. Each workload runs twice and the two outputs must
//     be byte-identical (the determinism the golden tests pin).
//
// Usage:
//
//	bench                            # small profile, seed 42, BENCH_PR10.json
//	bench -profile ci -out bench.json
//	bench -baseline BENCH_PR3.json -max-regress 0.20
//
// With -baseline, the run exits non-zero if triangle task throughput
// regresses by more than -max-regress versus the baseline file (the CI
// bench job uses this against the checked-in BENCH_PR3.json). With -gate
// (on by default) the run also exits non-zero if the pooled encode paths
// do not show at least a 30% allocation reduction; if the compiled
// triangle plan does not reach 2x the generic exploration's throughput
// (single-threaded on both sides, so this gate applies on any core
// count); or — on machines with GOMAXPROCS >= 4, where lock contention is
// physically possible — if the sharded cache does not reach 2x
// single-lock throughput at 8 goroutines.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"slices"
	"sync"
	"testing"
	"time"

	"gminer/internal/algo"
	"gminer/internal/cache"
	"gminer/internal/cluster"
	"gminer/internal/core"
	"gminer/internal/dyngraph"
	"gminer/internal/gen"
	"gminer/internal/graph"
	"gminer/internal/kernels"
	"gminer/internal/partition"
	"gminer/internal/plan"
	"gminer/internal/trace"
	"gminer/internal/wire"
)

// Report is the JSON document bench writes. Field names are stable: the
// CI regression check and the README examples parse them.
type Report struct {
	PR         int        `json:"pr"`
	Profile    string     `json:"profile"`
	Seed       int64      `json:"seed"`
	GoVersion  string     `json:"go_version"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	NumCPU     int        `json:"num_cpu"`
	Cache      CacheRep   `json:"cache"`
	Encode     []PathRep  `json:"encode"`
	Kernels    KernelsRep `json:"kernels"`
	Plans      []PlanRep  `json:"plans"`
	Workloads  []WorkRep  `json:"workloads"`
	Dyngraph   DynRep     `json:"dyngraph"`
}

// DynRep compares the dynamic session's incremental epoch apply
// (block-aggregate maintenance + dirty-block re-placement + dirty-worker
// table migration; the kernels CSR rebuilds lazily on the next launch)
// against a full from-scratch prepare of the mutated graph (partition +
// every worker table + CSR). ResultsIdentical confirms a triangle count
// served from the warm mutated session equals one from the from-scratch
// session at the final epoch — the differential gate, sampled.
type DynRep struct {
	Vertices           int     `json:"vertices"`
	Edges              int64   `json:"edges"`
	Workers            int     `json:"workers"`
	Batches            int     `json:"batches"`
	OpsPerBatch        int     `json:"ops_per_batch"`
	IncrementalApplyMS float64 `json:"incremental_apply_ms"` // mean per epoch
	FullPrepareMS      float64 `json:"full_prepare_ms"`      // mean per epoch
	Speedup            float64 `json:"speedup"`
	RebuiltWorkersMean float64 `json:"rebuilt_workers_mean"`
	ResultsIdentical   bool    `json:"results_identical"`
}

// KernelsRep is the intersection-strategy sweep: for each operand-size
// shape, the per-call cost of every strategy plus the adaptive entry
// point, so the Choose thresholds (GallopRatio, BitsetMinLen) are backed
// by a checked-in measurement rather than folklore.
type KernelsRep struct {
	Universe int           `json:"universe"`
	Points   []KernelPoint `json:"points"`
}

type KernelPoint struct {
	LenSmall int     `json:"len_small"`
	LenLarge int     `json:"len_large"`
	Ratio    int     `json:"ratio"`
	Chosen   string  `json:"chosen"`
	MergeNs  float64 `json:"merge_ns_per_op"`
	GallopNs float64 `json:"gallop_ns_per_op"`
	BitsetNs float64 `json:"bitset_ns_per_op"`
	AutoNs   float64 `json:"auto_ns_per_op"`
}

// PlanRep compares compiled-plan execution (CSR + matching order +
// symmetry breaking + kernel intersections) against the generic
// sequential exploration of the same workload. Both sides are
// single-threaded, so the speedup is core-count independent. The CSR
// build cost is reported separately because sessions pay it once per
// resident graph, not per job.
type PlanRep struct {
	Name        string  `json:"name"`
	Vertices    int     `json:"vertices"`
	Edges       int64   `json:"edges"`
	Count       int64   `json:"count"`
	GenericMS   float64 `json:"generic_ms"`
	PlanMS      float64 `json:"plan_ms"`
	CSRBuildMS  float64 `json:"csr_build_ms"`
	Speedup     float64 `json:"speedup"`
	CountsEqual bool    `json:"counts_equal"`
}

type CacheRep struct {
	Capacity   int          `json:"capacity"`
	OpsPerG    int          `json:"ops_per_goroutine"`
	Points     []CachePoint `json:"points"`
	Speedup8G  float64      `json:"speedup_8g_shards16_vs_1"`
	SpeedupMsg string       `json:"speedup_gate"`
}

type CachePoint struct {
	Shards     int     `json:"shards"`
	Goroutines int     `json:"goroutines"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	NsPerOp    float64 `json:"ns_per_op"`
}

// PathRep compares one wire-encode path before (fresh Writer per message,
// the pre-PR shape) and after (pooled writer) in allocations per op.
type PathRep struct {
	Name         string  `json:"name"`
	FreshAllocs  float64 `json:"fresh_allocs_per_op"`
	PooledAllocs float64 `json:"pooled_allocs_per_op"`
	ReductionPct float64 `json:"reduction_pct"`
}

type WorkRep struct {
	Name          string               `json:"name"`
	Vertices      int                  `json:"vertices"`
	Edges         int64                `json:"edges"`
	ElapsedMS     float64              `json:"elapsed_ms"`
	TasksDone     int64                `json:"tasks_done"`
	TasksPerSec   float64              `json:"tasks_per_sec"`
	Records       int                  `json:"records"`
	Agg           string               `json:"agg"`
	AllocsPerTask float64              `json:"allocs_per_task"`
	TotalAllocMB  float64              `json:"total_alloc_mb"`
	RunsIdentical bool                 `json:"runs_identical"`
	Phases        []trace.PhaseSummary `json:"phases"`
}

// profileCfg scales every section. ci keeps the GitHub runner under a few
// seconds; small is the default developer profile; full approaches the
// paper's scaled-down datasets.
type profileCfg struct {
	cacheOps             int
	triScale, matchScale int
	triEdges, matchEdges int64
	communities          int
}

var profiles = map[string]profileCfg{
	"ci":    {cacheOps: 200_000, triScale: 9, triEdges: 5_000, matchScale: 8, matchEdges: 2_500, communities: 16},
	"small": {cacheOps: 400_000, triScale: 10, triEdges: 12_000, matchScale: 9, matchEdges: 6_000, communities: 32},
	"full":  {cacheOps: 1_000_000, triScale: 12, triEdges: 60_000, matchScale: 11, matchEdges: 30_000, communities: 64},
}

func main() {
	var (
		profile    = flag.String("profile", "small", "workload sizes: ci, small or full")
		seed       = flag.Int64("seed", 42, "generator seed (fixed seed => reproducible graphs)")
		out        = flag.String("out", "BENCH_PR10.json", "output JSON path")
		baseline   = flag.String("baseline", "", "baseline JSON to compare against (empty = no check)")
		maxRegress = flag.Float64("max-regress", 0.20, "max allowed triangle throughput regression vs baseline")
		gate       = flag.Bool("gate", true, "enforce the PR acceptance thresholds (encode allocs, cache speedup)")
	)
	flag.Parse()

	pc, ok := profiles[*profile]
	if !ok {
		fatalf("unknown profile %q (want ci, small or full)", *profile)
	}

	rep := Report{
		PR:         10,
		Profile:    *profile,
		Seed:       *seed,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	fmt.Fprintf(os.Stderr, "bench: cache shard sweep (%d ops/goroutine)\n", pc.cacheOps)
	rep.Cache = benchCache(pc.cacheOps)

	fmt.Fprintln(os.Stderr, "bench: encode-path allocations (fresh vs pooled writers)")
	rep.Encode = benchEncode(*seed)

	fmt.Fprintln(os.Stderr, "bench: intersection kernel sweep (merge vs gallop vs bitset vs adaptive)")
	rep.Kernels = benchKernels(*seed)

	fmt.Fprintln(os.Stderr, "bench: compiled plans vs generic exploration")
	rep.Plans = benchPlans(pc, *seed)

	fmt.Fprintln(os.Stderr, "bench: incremental epoch apply vs full re-prepare")
	rep.Dyngraph = benchDyngraph(pc, *seed)

	for _, wl := range []struct {
		name  string
		build func() (*graph.Graph, core.Algorithm)
	}{
		{"triangle", func() (*graph.Graph, core.Algorithm) {
			g := gen.RMAT(gen.RMATConfig{Scale: pc.triScale, Edges: pc.triEdges, Seed: *seed})
			return g, algo.NewTriangleCount()
		}},
		{"match", func() (*graph.Graph, core.Algorithm) {
			g := gen.RMAT(gen.RMATConfig{Scale: pc.matchScale, Edges: pc.matchEdges, Seed: *seed})
			gen.AssignLabels(g, 7, *seed+1)
			return g, algo.NewGraphMatch(algo.FigurePattern())
		}},
		{"community", func() (*graph.Graph, core.Algorithm) {
			g, _ := gen.Community(gen.CommunityConfig{
				Communities: pc.communities,
				MinSize:     8,
				MaxSize:     16,
				PIn:         0.7,
				Bridges:     int64(pc.communities) * 10,
				Seed:        *seed,
			})
			return g, algo.NewCommunityDetect(0.6, 5)
		}},
	} {
		fmt.Fprintf(os.Stderr, "bench: workload %s\n", wl.name)
		g, a := wl.build()
		wr, err := runWorkload(wl.name, g, a)
		if err != nil {
			fatalf("workload %s: %v", wl.name, err)
		}
		rep.Workloads = append(rep.Workloads, wr)
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatalf("write %s: %v", *out, err)
	}
	printSummary(&rep, *out)

	failed := false
	if *gate {
		failed = !checkGates(&rep)
	}
	if *baseline != "" {
		if err := checkBaseline(&rep, *baseline, *maxRegress); err != nil {
			fmt.Fprintf(os.Stderr, "bench: FAIL %v\n", err)
			failed = true
		} else {
			fmt.Fprintf(os.Stderr, "bench: baseline check vs %s passed\n", *baseline)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// benchCache sweeps Acquire/Release throughput on a preloaded hot set.
// shards=1 is the paper's single-lock RCV cache; shards=16 is the PR's
// default. All accesses hit, so the measurement isolates lock and map
// cost, not eviction policy.
func benchCache(opsPerG int) CacheRep {
	const capacity = 4096
	rep := CacheRep{Capacity: capacity, OpsPerG: opsPerG}
	byKey := map[[2]int]float64{}
	for _, shards := range []int{1, 16} {
		for _, goroutines := range []int{1, 8} {
			p := benchCachePoint(shards, goroutines, capacity, opsPerG)
			rep.Points = append(rep.Points, p)
			byKey[[2]int{shards, goroutines}] = p.OpsPerSec
		}
	}
	if base := byKey[[2]int{1, 8}]; base > 0 {
		rep.Speedup8G = byKey[[2]int{16, 8}] / base
	}
	if runtime.GOMAXPROCS(0) >= 4 {
		rep.SpeedupMsg = "enforced: GOMAXPROCS>=4, require >=2x at 8 goroutines"
	} else {
		rep.SpeedupMsg = fmt.Sprintf(
			"skipped: GOMAXPROCS=%d; a single-core runner serializes all goroutines, so shard-count cannot change throughput — run on >=4 cores (or `go test -bench AcquireParallel ./internal/cache`) to exercise lock contention",
			runtime.GOMAXPROCS(0))
	}
	return rep
}

func benchCachePoint(shards, goroutines, capacity, opsPerG int) CachePoint {
	c := cache.NewSharded(capacity, shards, nil)
	adj := []graph.VertexID{1, 2, 3, 4}
	for i := 0; i < capacity; i++ {
		c.Insert(&graph.Vertex{ID: graph.VertexID(i), Adj: adj})
		c.Release(graph.VertexID(i))
	}
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < opsPerG; i++ {
				// Stride by a prime so goroutines spread over the hot set.
				id := graph.VertexID((g*7919 + i) % capacity)
				if _, ok := c.Acquire(id); ok {
					c.Release(id)
				}
			}
		}(g)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)
	total := float64(goroutines * opsPerG)
	return CachePoint{
		Shards:     shards,
		Goroutines: goroutines,
		OpsPerSec:  total / elapsed.Seconds(),
		NsPerOp:    float64(elapsed.Nanoseconds()) / total,
	}
}

// encodeSink keeps the encoded length observable so the compiler cannot
// elide the encode work under testing.AllocsPerRun.
var encodeSink int

// benchEncode measures allocations per message for the three wire paths
// the runtime pools: pull responses (vertex payloads served back to a
// puller), task batches (migration / spill framing) and pull requests
// (ID batches). "fresh" allocates a new wire.Writer per message — the
// shape the code had before pooling; "pooled" round-trips the writer
// through GetWriter/PutWriter exactly like worker.servePull and
// flushPulls do.
func benchEncode(seed int64) []PathRep {
	g := gen.RMAT(gen.RMATConfig{Scale: 8, Edges: 2_000, Seed: seed})
	var verts []*graph.Vertex
	var ids []graph.VertexID
	for i := 0; len(verts) < 64 && i < g.NumVertices(); i++ {
		v := g.VertexAt(i)
		verts = append(verts, v)
		ids = append(ids, v.ID)
	}
	codec := core.NoContext{}
	var tasks []*core.Task
	for i := 0; i < 16; i++ {
		t := &core.Task{ID: uint64(i), Round: 1, Cands: ids[:8]}
		t.Subgraph.AddVertices(ids[i], ids[i+1], ids[i+2])
		t.Subgraph.AddEdge(ids[i], ids[i+1])
		t.Subgraph.AddEdge(ids[i+1], ids[i+2])
		tasks = append(tasks, t)
	}

	paths := []struct {
		name string
		hint int
		fill func(w *wire.Writer)
	}{
		{"pull_resp", 64 + 32*len(verts), func(w *wire.Writer) {
			w.Uvarint(uint64(len(verts)))
			for _, v := range verts {
				wire.EncodeVertex(w, v)
			}
		}},
		{"task_batch", 1 << 12, func(w *wire.Writer) {
			w.Uvarint(uint64(len(tasks)))
			for _, t := range tasks {
				core.EncodeTask(w, t, codec)
			}
		}},
		{"pull_req", 16 + 10*len(ids), func(w *wire.Writer) {
			wire.EncodeIDs(w, ids)
		}},
	}

	var out []PathRep
	for _, p := range paths {
		fill, hint := p.fill, p.hint
		fresh := testing.AllocsPerRun(2_000, func() {
			w := wire.NewWriter(hint)
			fill(w)
			encodeSink += w.Len()
		})
		// Warm the pool so the steady state is measured, as in the worker.
		wire.PutWriter(wire.GetWriter(hint))
		pooled := testing.AllocsPerRun(2_000, func() {
			w := wire.GetWriter(hint)
			fill(w)
			encodeSink += w.Len()
			wire.PutWriter(w)
		})
		r := PathRep{Name: p.name, FreshAllocs: fresh, PooledAllocs: pooled}
		if fresh > 0 {
			r.ReductionPct = (1 - pooled/fresh) * 100
		}
		out = append(out, r)
	}
	return out
}

// kernelSink keeps intersection results observable so the measured loops
// cannot be elided.
var kernelSink int

// measureNs times f with doubling iteration counts until the sample is at
// least 30ms long, returning ns per call. Deterministic inputs + warm-up
// call make repeated runs comparable.
func measureNs(f func()) float64 {
	f() // warm caches and pools
	for iters := 1; ; iters *= 2 {
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			f()
		}
		elapsed := time.Since(t0)
		if elapsed >= 30*time.Millisecond || iters >= 1<<22 {
			return float64(elapsed.Nanoseconds()) / float64(iters)
		}
	}
}

// randomSortedSet draws n distinct uint32 ranks from [0, universe),
// sorted ascending — the operand shape every kernel requires.
func randomSortedSet(rng *rand.Rand, n, universe int) []uint32 {
	seen := make(map[uint32]struct{}, n)
	out := make([]uint32, 0, n)
	for len(out) < n {
		x := uint32(rng.Intn(universe))
		if _, dup := seen[x]; dup {
			continue
		}
		seen[x] = struct{}{}
		out = append(out, x)
	}
	slices.Sort(out)
	return out
}

// benchKernels sweeps the three intersection strategies and the adaptive
// CountScratch entry over operand-size shapes spanning the Choose
// decision boundaries: balanced (merge territory), the GallopRatio
// crossover, heavily skewed (gallop territory) and long-balanced (bitset
// territory when a scratch is available).
func benchKernels(seed int64) KernelsRep {
	const universe = 1 << 17
	rng := rand.New(rand.NewSource(seed))
	sc := kernels.NewScratch(universe)
	rep := KernelsRep{Universe: universe}
	for _, shape := range []struct{ small, large int }{
		{1024, 1024},
		{1024, 4096},
		{1024, 16384},
		{256, 65536},
		{4096, 8192},
	} {
		a := randomSortedSet(rng, shape.small, universe)
		b := randomSortedSet(rng, shape.large, universe)
		p := KernelPoint{
			LenSmall: shape.small,
			LenLarge: shape.large,
			Ratio:    shape.large / shape.small,
			Chosen:   kernels.Choose(len(a), len(b), true).String(),
			MergeNs:  measureNs(func() { kernelSink += kernels.CountMerge(a, b) }),
			GallopNs: measureNs(func() { kernelSink += kernels.CountGallop(a, b) }),
			BitsetNs: measureNs(func() { kernelSink += kernels.CountBitset(sc, a, b) }),
			AutoNs:   measureNs(func() { kernelSink += kernels.CountScratch(sc, a, b) }),
		}
		rep.Points = append(rep.Points, p)
	}
	return rep
}

// benchPlans times compiled-plan execution against the generic sequential
// exploration on the same seeded graphs. "triangle" runs the generic TC
// algorithm (scalar counting, ID-order seeding) against plan.Count of the
// compiled triangle plan; "match" runs the generic GM expansion of the
// Figure 1 pattern against plan.HomCount of its compiled tree plan. Both
// sides must agree on the count — a speedup over a wrong answer is not a
// speedup.
func benchPlans(pc profileCfg, seed int64) []PlanRep {
	var out []PlanRep

	timeMS := func(f func()) float64 { return measureNs(f) / 1e6 }

	// Triangle counting.
	{
		g := gen.RMAT(gen.RMATConfig{Scale: pc.triScale, Edges: pc.triEdges, Seed: seed})
		var genericCount int64
		genericMS := timeMS(func() {
			tc := algo.NewTriangleCount()
			tc.Generic = true
			genericCount = algo.SeqRun(g, tc).AggGlobal.(int64)
		})
		var csr *kernels.CSR
		csrMS := timeMS(func() { csr = kernels.MustBuild(g) })
		tri := plan.Triangle()
		var planCount int64
		planMS := timeMS(func() {
			n, err := plan.Count(csr, tri)
			if err != nil {
				fatalf("plan triangle: %v", err)
			}
			planCount = n
		})
		out = append(out, PlanRep{
			Name: "triangle", Vertices: g.NumVertices(), Edges: g.NumEdges(),
			Count: planCount, GenericMS: genericMS, PlanMS: planMS, CSRBuildMS: csrMS,
			Speedup: genericMS / planMS, CountsEqual: planCount == genericCount,
		})
	}

	// Tree-pattern matching (Figure 1 pattern, homomorphism counts).
	{
		g := gen.RMAT(gen.RMATConfig{Scale: pc.matchScale, Edges: pc.matchEdges, Seed: seed})
		gen.AssignLabels(g, 7, seed+1)
		p := algo.FigurePattern()
		var genericCount int64
		genericMS := timeMS(func() {
			gm := algo.NewGraphMatch(p)
			gm.Generic = true
			genericCount = algo.SeqRun(g, gm).AggGlobal.(int64)
		})
		var csr *kernels.CSR
		csrMS := timeMS(func() { csr = kernels.MustBuild(g) })
		hp, err := plan.Compile(p.Labels, p.Parent)
		if err != nil {
			fatalf("plan match compile: %v", err)
		}
		var planCount int64
		planMS := timeMS(func() {
			n, err := plan.HomCount(csr, hp)
			if err != nil {
				fatalf("plan match: %v", err)
			}
			planCount = n
		})
		out = append(out, PlanRep{
			Name: "match", Vertices: g.NumVertices(), Edges: g.NumEdges(),
			Count: planCount, GenericMS: genericMS, PlanMS: planMS, CSRBuildMS: csrMS,
			Speedup: genericMS / planMS, CountsEqual: planCount == genericCount,
		})
	}
	return out
}

// runWorkload executes one example workload twice with a tracer attached
// and Stealing disabled (so output is a pure function of graph +
// algorithm + partitioning), verifies the two runs are byte-identical,
// and reports timing, throughput, allocations and per-phase percentiles
// from the warm second run.
// benchDyngraph replays a seeded mutation stream two ways: incrementally
// on one warm dynamic session (ApplyMutations per batch), and from
// scratch (a fresh NewSession over the replayed graph per batch, i.e.
// what a static daemon would have to do: re-partition, rebuild every
// worker table, rebuild the CSR). The means are comparable because both
// sides process the identical batch sequence on the identical graph.
func benchDyngraph(pc profileCfg, seed int64) DynRep {
	const workers, batches = 4, 6
	ops := int(pc.triEdges / 100)
	if ops < 32 {
		ops = 32
	}
	mk := func() *graph.Graph {
		return gen.RMAT(gen.RMATConfig{Scale: pc.triScale, Edges: pc.triEdges, Seed: seed})
	}
	g := mk()
	rep := DynRep{
		Vertices:    g.NumVertices(),
		Edges:       g.NumEdges(),
		Workers:     workers,
		Batches:     batches,
		OpsPerBatch: ops,
	}
	dcfg := cluster.Config{Workers: workers, Threads: 2, Dynamic: true, Partitioner: partition.Blocked{}}
	warm, err := cluster.NewSession(g, dcfg)
	if err != nil {
		fatalf("dyngraph: %v", err)
	}
	defer warm.Close()

	stream := gen.Deltas(g, gen.DeltasConfig{Batches: batches, Ops: ops, Seed: seed + 5})
	replay := mk()
	var incTotal, fullTotal time.Duration
	var rebuilt int
	var fresh *cluster.Session
	for _, b := range stream {
		start := time.Now()
		er, err := warm.ApplyMutations(b)
		if err != nil {
			fatalf("dyngraph apply: %v", err)
		}
		incTotal += time.Since(start)
		rebuilt += len(er.RebuiltWorkers)

		dyngraph.ApplyToGraph(replay, b)
		if fresh != nil {
			fresh.Close()
		}
		start = time.Now()
		fresh, err = cluster.NewSession(replay, dcfg)
		if err != nil {
			fatalf("dyngraph fresh prepare: %v", err)
		}
		fullTotal += time.Since(start)
	}
	defer fresh.Close()

	runTC := func(s *cluster.Session) any {
		j, err := s.Launch(algo.NewTriangleCount(), cluster.JobOptions{})
		if err != nil {
			fatalf("dyngraph tc: %v", err)
		}
		res, err := j.Wait()
		if err != nil {
			fatalf("dyngraph tc: %v", err)
		}
		return res.AggGlobal
	}
	rep.ResultsIdentical = fmt.Sprintf("%v", runTC(warm)) == fmt.Sprintf("%v", runTC(fresh))
	rep.IncrementalApplyMS = incTotal.Seconds() * 1000 / float64(batches)
	rep.FullPrepareMS = fullTotal.Seconds() * 1000 / float64(batches)
	if rep.IncrementalApplyMS > 0 {
		rep.Speedup = rep.FullPrepareMS / rep.IncrementalApplyMS
	}
	rep.RebuiltWorkersMean = float64(rebuilt) / float64(batches)
	return rep
}

func runWorkload(name string, g *graph.Graph, a core.Algorithm) (WorkRep, error) {
	base := cluster.Config{
		Workers:          4,
		Threads:          2,
		CacheCapacity:    2048,
		StoreMemCapacity: 1024,
		UseLSH:           true,
		Stealing:         false,
	}
	run := func() (*cluster.Result, uint64, error) {
		cfg := base
		cfg.Tracer = trace.New(cfg.Workers+1, 0).Enable()
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		res, err := cluster.Run(g, a, cfg)
		runtime.ReadMemStats(&m1)
		return res, m1.Mallocs - m0.Mallocs, err
	}
	first, _, err := run()
	if err != nil {
		return WorkRep{}, err
	}
	second, mallocs, err := run()
	if err != nil {
		return WorkRep{}, err
	}
	identical := golden(first) == golden(second)

	res := second
	wr := WorkRep{
		Name:          name,
		Vertices:      g.NumVertices(),
		Edges:         g.NumEdges(),
		ElapsedMS:     float64(res.Elapsed.Microseconds()) / 1000,
		TasksDone:     res.Total.TasksDone,
		Records:       len(res.Records),
		Agg:           fmt.Sprintf("%v", res.AggGlobal),
		TotalAllocMB:  float64(mallocBytes(res)) / (1 << 20),
		RunsIdentical: identical,
		Phases:        res.Phases,
	}
	if s := res.Elapsed.Seconds(); s > 0 {
		wr.TasksPerSec = float64(res.Total.TasksDone) / s
	}
	if res.Total.TasksDone > 0 {
		wr.AllocsPerTask = float64(mallocs) / float64(res.Total.TasksDone)
	}
	if !identical {
		return wr, fmt.Errorf("two runs of %s diverged — determinism broken", name)
	}
	return wr, nil
}

// mallocBytes approximates the job's heap traffic with the runtime's
// peak-memory counter (bytes held by task stores and caches at peak).
func mallocBytes(res *cluster.Result) int64 { return res.Total.PeakBytes }

func golden(res *cluster.Result) string {
	s := fmt.Sprintf("agg=%v\n", res.AggGlobal)
	for _, r := range res.Records {
		s += r + "\n"
	}
	return s
}

// checkGates enforces the PR's acceptance thresholds and reports pass /
// fail per gate. Returns true when every applicable gate passed.
func checkGates(rep *Report) bool {
	ok := true
	for _, p := range rep.Encode {
		if p.ReductionPct < 30 {
			fmt.Fprintf(os.Stderr, "bench: FAIL encode gate: %s alloc reduction %.1f%% < 30%%\n",
				p.Name, p.ReductionPct)
			ok = false
		} else {
			fmt.Fprintf(os.Stderr, "bench: encode gate %s: %.2f -> %.2f allocs/op (-%.1f%%)\n",
				p.Name, p.FreshAllocs, p.PooledAllocs, p.ReductionPct)
		}
	}
	if rep.GOMAXPROCS >= 4 {
		if rep.Cache.Speedup8G < 2 {
			fmt.Fprintf(os.Stderr, "bench: FAIL cache gate: %.2fx at 8 goroutines (shards 16 vs 1) < 2x\n",
				rep.Cache.Speedup8G)
			ok = false
		} else {
			fmt.Fprintf(os.Stderr, "bench: cache gate: %.2fx at 8 goroutines (shards 16 vs 1)\n",
				rep.Cache.Speedup8G)
		}
	} else {
		fmt.Fprintf(os.Stderr, "bench: cache gate %s\n", rep.Cache.SpeedupMsg)
	}
	for _, p := range rep.Plans {
		if !p.CountsEqual {
			fmt.Fprintf(os.Stderr, "bench: FAIL plan gate: %s compiled-plan count diverged from generic exploration\n", p.Name)
			ok = false
		}
		// Both sides of the comparison are single-threaded, so unlike the
		// cache gate this one is meaningful on any core count.
		if p.Name == "triangle" && p.Speedup < 2 {
			fmt.Fprintf(os.Stderr, "bench: FAIL plan gate: triangle compiled plan %.2fx generic < 2x\n", p.Speedup)
			ok = false
		} else {
			fmt.Fprintf(os.Stderr, "bench: plan gate %s: %.1fx generic (%.2f ms -> %.2f ms)\n",
				p.Name, p.Speedup, p.GenericMS, p.PlanMS)
		}
	}
	for _, w := range rep.Workloads {
		if !w.RunsIdentical {
			fmt.Fprintf(os.Stderr, "bench: FAIL determinism gate: %s runs diverged\n", w.Name)
			ok = false
		}
	}
	// Incremental epoch apply must beat a full from-scratch prepare and
	// must not change what the session computes. Both sides run the same
	// batch sequence in-process, so the comparison holds on any core count.
	if !rep.Dyngraph.ResultsIdentical {
		fmt.Fprintln(os.Stderr, "bench: FAIL dyngraph gate: warm mutated session diverged from from-scratch prepare")
		ok = false
	}
	if rep.Dyngraph.Speedup < 1 {
		fmt.Fprintf(os.Stderr, "bench: FAIL dyngraph gate: incremental apply %.2fx full prepare < 1x\n",
			rep.Dyngraph.Speedup)
		ok = false
	} else {
		fmt.Fprintf(os.Stderr, "bench: dyngraph gate: incremental apply %.1fx full prepare (%.2f ms -> %.2f ms per epoch)\n",
			rep.Dyngraph.Speedup, rep.Dyngraph.FullPrepareMS, rep.Dyngraph.IncrementalApplyMS)
	}
	return ok
}

// checkBaseline fails when triangle task throughput dropped more than
// maxRegress vs the baseline report. Profiles must match — comparing a
// ci run against a small baseline would be noise.
func checkBaseline(cur *Report, path string, maxRegress float64) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base Report
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	if base.Profile != cur.Profile {
		fmt.Fprintf(os.Stderr, "bench: baseline profile %q != current %q; skipping throughput check\n",
			base.Profile, cur.Profile)
		return nil
	}
	find := func(r *Report) *WorkRep {
		for i := range r.Workloads {
			if r.Workloads[i].Name == "triangle" {
				return &r.Workloads[i]
			}
		}
		return nil
	}
	b, c := find(&base), find(cur)
	if b == nil || c == nil || b.TasksPerSec == 0 {
		return fmt.Errorf("baseline %s: no comparable triangle workload", path)
	}
	floor := (1 - maxRegress) * b.TasksPerSec
	if c.TasksPerSec < floor {
		return fmt.Errorf("triangle throughput regressed: %.0f tasks/s < floor %.0f (baseline %.0f, max regress %.0f%%)",
			c.TasksPerSec, floor, b.TasksPerSec, maxRegress*100)
	}
	fmt.Fprintf(os.Stderr, "bench: triangle throughput %.0f tasks/s vs baseline %.0f (floor %.0f)\n",
		c.TasksPerSec, b.TasksPerSec, floor)
	return nil
}

func printSummary(rep *Report, out string) {
	fmt.Printf("profile=%s seed=%d %s GOMAXPROCS=%d\n",
		rep.Profile, rep.Seed, rep.GoVersion, rep.GOMAXPROCS)
	fmt.Println("\ncache Acquire/Release throughput:")
	for _, p := range rep.Cache.Points {
		fmt.Printf("  shards=%-2d goroutines=%d  %12.0f ops/s  (%.1f ns/op)\n",
			p.Shards, p.Goroutines, p.OpsPerSec, p.NsPerOp)
	}
	fmt.Printf("  speedup at 8 goroutines, shards 16 vs 1: %.2fx\n", rep.Cache.Speedup8G)
	fmt.Println("\nencode allocations per message (fresh writer vs pooled):")
	for _, p := range rep.Encode {
		fmt.Printf("  %-10s %6.2f -> %5.2f allocs/op  (-%.1f%%)\n",
			p.Name, p.FreshAllocs, p.PooledAllocs, p.ReductionPct)
	}
	fmt.Println("\nintersection kernels (ns/op; * = strategy Choose selects):")
	for _, p := range rep.Kernels.Points {
		mark := func(s string, ns float64) string {
			star := " "
			if s == p.Chosen {
				star = "*"
			}
			return fmt.Sprintf("%s%s=%-9.0f", star, s, ns)
		}
		fmt.Printf("  |a|=%-5d |b|=%-6d (ratio %-3d) %s %s %s auto=%.0f\n",
			p.LenSmall, p.LenLarge, p.Ratio,
			mark("merge", p.MergeNs), mark("gallop", p.GallopNs), mark("bitset", p.BitsetNs), p.AutoNs)
	}
	fmt.Println("\ncompiled plans vs generic exploration (single-threaded):")
	for _, p := range rep.Plans {
		fmt.Printf("  %-10s |V|=%-6d |E|=%-7d generic=%8.2f ms  plan=%7.2f ms  (+csr %5.2f ms)  %6.1fx  count=%d equal=%v\n",
			p.Name, p.Vertices, p.Edges, p.GenericMS, p.PlanMS, p.CSRBuildMS, p.Speedup, p.Count, p.CountsEqual)
	}
	fmt.Println("\nworkloads (4 workers x 2 threads, stealing off, warm run):")
	for _, w := range rep.Workloads {
		fmt.Printf("  %-10s |V|=%-6d |E|=%-7d %8.1f ms  %6d tasks  %9.0f tasks/s  agg=%s identical=%v\n",
			w.Name, w.Vertices, w.Edges, w.ElapsedMS, w.TasksDone, w.TasksPerSec, w.Agg, w.RunsIdentical)
		fmt.Print(trace.FormatSummary(w.Phases))
	}
	d := rep.Dyngraph
	fmt.Println("\ndynamic graph: incremental epoch apply vs full re-prepare:")
	fmt.Printf("  |V|=%-6d |E|=%-7d %d batches x %d ops  apply=%6.2f ms  full=%6.2f ms  %5.1fx  rebuilt workers mean=%.1f identical=%v\n",
		d.Vertices, d.Edges, d.Batches, d.OpsPerBatch, d.IncrementalApplyMS, d.FullPrepareMS, d.Speedup, d.RebuiltWorkersMean, d.ResultsIdentical)
	fmt.Printf("\nwrote %s\n", out)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bench: "+format+"\n", args...)
	os.Exit(1)
}
