// Command gminer-worker hosts one engine worker node of a multi-process
// G-Miner cluster. It loads the SAME graph as the coordinator (the join
// handshake fingerprints graph shape, worker count and partitioner and
// refuses mismatches), dials the coordinator, builds its partition-local
// vertex table, and serves every job the coordinator starts until either
// side exits.
//
//	gminerd       -preset dblp-s -workers 3 -cluster-listen 127.0.0.1:7070 &
//	gminer-worker -preset dblp-s -workers 3 -coordinator 127.0.0.1:7070 &   # x3
//
// A replacement for a crashed worker claims the dead process's slot and
// checkpoint directory explicitly:
//
//	gminer-worker ... -coordinator 127.0.0.1:7070 -node 1 -checkpoint-dir /data/ckpt/node-1
//
// SIGINT/SIGTERM drain the worker before it leaves: it asks the
// coordinator to barrier-checkpoint every live job it participates in,
// waits (up to -drain-timeout) for those epochs to commit, and only then
// detaches — so a rolling restart loses no progress and a replacement
// resumes from the drained epoch. If the drain times out the worker
// leaves anyway and the coordinator's failure detector takes over. The
// process also exits on its own when the coordinator goes away.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gminer/internal/cluster"
	"gminer/internal/gen"
	"gminer/internal/graph"
	"gminer/internal/jobspec"
	"gminer/internal/partition"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "input graph file")
		format    = flag.String("format", "adj", "graph file format: adj (adjacency list) or edges (SNAP edge list)")
		preset    = flag.String("preset", "", "generated dataset preset (skitter-s, orkut-s, btc-s, friendster-s, tencent-s, dblp-s)")
		scale     = flag.Float64("scale", 1.0, "preset scale factor")

		workers  = flag.Int("workers", 4, "number of workers in the cluster (must match the coordinator)")
		threads  = flag.Int("threads", 4, "computing threads in this worker")
		part     = flag.String("partitioner", "bdg", "partitioner: bdg, hash, skewed (must match the coordinator)")
		lsh      = flag.Bool("lsh", true, "enable the LSH task priority queue")
		steal    = flag.Bool("steal", true, "enable task stealing")
		cacheCap = flag.Int("cache", 8192, "RCV cache capacity (vertices) per job")
		storeCap = flag.Int("store-mem", 8192, "in-memory task store capacity (tasks) per job")
		spillDir = flag.String("spill", "", "task-store spill directory; each job gets its own subdirectory")

		labels = flag.Int("labels", 7, "label alphabet assigned at startup when the graph is unlabeled (must match the coordinator)")

		coordinator  = flag.String("coordinator", "", "coordinator cluster address (its -cluster-listen) [required]")
		node         = flag.Int("node", -1, "worker slot to claim: -1 lets the coordinator assign one; an explicit index is how a replacement takes over a crashed worker's slot")
		listen       = flag.String("listen", "127.0.0.1:0", "this worker's TCP listen address")
		advertise    = flag.String("advertise", "", "address peers dial to reach this worker (default: the bound listen address)")
		ckptDir      = flag.String("checkpoint-dir", "", "snapshot directory for this worker's per-job checkpoint files; a replacement must reuse its predecessor's")
		joinTimeout  = flag.Duration("join-timeout", 30*time.Second, "join handshake budget, dial retries included")
		heartbeat    = flag.Duration("heartbeat-every", 250*time.Millisecond, "liveness report period")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "SIGTERM drain budget: how long to wait for a barrier checkpoint of live jobs to commit before detaching anyway")
	)
	flag.Parse()

	if *coordinator == "" {
		fatal(fmt.Errorf("need -coordinator (the gminerd -cluster-listen address)"))
	}

	g, err := loadGraph(*graphPath, *format, *preset, *scale)
	if err != nil {
		fatal(err)
	}
	// Mirror gminerd's startup preparation exactly: labels/attributes feed
	// the join fingerprint (and gm/cd task semantics), so a worker that
	// skipped them would be refused — or worse, silently diverge.
	jobspec.Prepare(g, jobspec.Spec{App: "gm", Labels: int32(*labels)}.Normalize())
	jobspec.Prepare(g, jobspec.Spec{App: "cd"}.Normalize())

	ccfg := cluster.Config{
		Workers:          *workers,
		Threads:          *threads,
		CacheCapacity:    *cacheCap,
		StoreMemCapacity: *storeCap,
		UseLSH:           *lsh,
		Stealing:         *steal,
		SpillDir:         *spillDir,
	}
	switch *part {
	case "bdg":
		ccfg.Partitioner = partition.BDG{}
	case "hash":
		ccfg.Partitioner = partition.Hash{}
	case "skewed":
		ccfg.Partitioner = partition.Skewed{Bias: 0.6}
	default:
		fatal(fmt.Errorf("unknown partitioner %q", *part))
	}

	fmt.Printf("graph: %s\n", graph.ComputeStats(datasetName(*graphPath, *preset), g))
	wp, err := cluster.StartWorkerProcess(g, ccfg, cluster.WorkerOptions{
		Coordinator:    *coordinator,
		Node:           *node,
		Listen:         *listen,
		Advertise:      *advertise,
		CheckpointDir:  *ckptDir,
		JoinTimeout:    *joinTimeout,
		HeartbeatEvery: *heartbeat,
		Logf: func(format string, args ...any) {
			fmt.Printf("worker: "+format+"\n", args...)
		},
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("serving: node %d of %d, listening on %s, coordinator %s\n",
		wp.Node(), *workers, wp.Addr(), *coordinator)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigs:
		fmt.Printf("received %s: draining (barrier checkpoint, up to %s) before leaving\n", sig, *drainTimeout)
		if err := wp.Drain(*drainTimeout); err != nil {
			fmt.Printf("drain: %v (detaching anyway)\n", err)
		} else {
			fmt.Println("drain complete: checkpoints committed, detaching")
		}
	case <-wp.Done():
		fmt.Println("coordinator link closed: exiting")
	}
	wp.Close()
}

func loadGraph(path, format, preset string, scale float64) (*graph.Graph, error) {
	switch {
	case path != "":
		switch format {
		case "adj":
			return graph.LoadFile(path)
		case "edges":
			return graph.LoadEdgeListFile(path)
		default:
			return nil, fmt.Errorf("unknown format %q (want adj or edges)", format)
		}
	case preset != "":
		return gen.Build(gen.Preset(preset), scale)
	default:
		return nil, fmt.Errorf("need -graph or -preset")
	}
}

func datasetName(path, preset string) string {
	if path != "" {
		return path
	}
	return preset
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gminer-worker:", err)
	os.Exit(1)
}
