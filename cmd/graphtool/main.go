// Command graphtool inspects and converts graph datasets.
//
//	graphtool stats -graph g.txt                  # Table-2 style statistics
//	graphtool hist -graph g.txt                   # degree histogram
//	graphtool convert -graph g.snap -in edges -out-format adj -o g.adj
//	graphtool partition -graph g.txt -workers 8   # edge-cut comparison
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gminer/internal/gen"
	"gminer/internal/graph"
	"gminer/internal/partition"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	var (
		graphPath = fs.String("graph", "", "input graph file")
		inFormat  = fs.String("in", "adj", "input format: adj, edges or bin")
		preset    = fs.String("preset", "", "generated preset instead of a file")
		scale     = fs.Float64("scale", 1.0, "preset scale")
		outFormat = fs.String("out-format", "adj", "convert: output format (adj, edges or bin)")
		out       = fs.String("o", "", "convert: output file (default stdout)")
		workers   = fs.Int("workers", 8, "partition: number of parts")
		buckets   = fs.Int("buckets", 20, "hist: histogram rows")
	)
	_ = fs.Parse(os.Args[2:])

	g, err := load(*graphPath, *inFormat, *preset, *scale)
	if err != nil {
		fatal(err)
	}

	switch cmd {
	case "stats":
		fmt.Println(graph.ComputeStats(name(*graphPath, *preset), g))
	case "hist":
		hist(g, *buckets)
	case "convert":
		if err := convert(g, *outFormat, *out); err != nil {
			fatal(err)
		}
	case "partition":
		comparePartitioners(g, *workers)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: graphtool {stats|hist|convert|partition} [flags]")
	os.Exit(2)
}

func load(path, format, preset string, scale float64) (*graph.Graph, error) {
	switch {
	case path != "" && format == "adj":
		return graph.LoadFile(path)
	case path != "" && format == "edges":
		return graph.LoadEdgeListFile(path)
	case path != "" && format == "bin":
		return graph.LoadBinaryFile(path)
	case path != "":
		return nil, fmt.Errorf("unknown input format %q", format)
	case preset != "":
		return gen.Build(gen.Preset(preset), scale)
	default:
		return nil, fmt.Errorf("need -graph or -preset")
	}
}

func name(path, preset string) string {
	if path != "" {
		return path
	}
	return preset
}

func hist(g *graph.Graph, buckets int) {
	h := gen.DegreeHistogram(g)
	if len(h) == 0 {
		return
	}
	maxDeg := h[len(h)-1][0]
	width := (maxDeg / buckets) + 1
	counts := make([]int, buckets+1)
	for _, dc := range h {
		counts[dc[0]/width] += dc[1]
	}
	peak := 0
	for _, c := range counts {
		if c > peak {
			peak = c
		}
	}
	for b, c := range counts {
		if c == 0 {
			continue
		}
		bar := ""
		for i := 0; i < 50*c/peak; i++ {
			bar += "#"
		}
		fmt.Printf("%6d-%-6d %8d %s\n", b*width, (b+1)*width-1, c, bar)
	}
}

func convert(g *graph.Graph, format, out string) error {
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch format {
	case "adj":
		return graph.WriteText(w, g)
	case "edges":
		return graph.WriteEdgeList(w, g)
	case "bin":
		return graph.WriteBinary(w, g)
	default:
		return fmt.Errorf("unknown output format %q", format)
	}
}

func comparePartitioners(g *graph.Graph, k int) {
	for _, p := range []partition.Partitioner{partition.Hash{}, partition.BDG{}} {
		start := time.Now()
		a, err := p.Partition(g, k)
		if err != nil {
			fatal(err)
		}
		elapsed := time.Since(start)
		sizes := a.Sizes()
		min, max := sizes[0], sizes[0]
		for _, s := range sizes {
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		fmt.Printf("%-6s k=%d  edge-cut=%.1f%%  sizes=[%d..%d]  time=%v\n",
			p.Name(), k, 100*a.EdgeCut(g), min, max, elapsed.Round(time.Microsecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphtool:", err)
	os.Exit(1)
}
