// Command experiments regenerates every table and figure of the paper's
// evaluation (§8) on the scaled-down synthetic datasets. Its output is
// the raw material of EXPERIMENTS.md.
//
//	experiments                    # run everything at default scale
//	experiments -only t1,t3,f12    # run a subset
//	experiments -scale 0.25        # quicker, smaller datasets
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gminer/internal/exp"
)

func main() {
	var (
		scale   = flag.Float64("scale", 1.0, "dataset scale factor")
		only    = flag.String("only", "", "comma-separated subset: t1,t2,t3,t4,t5,f56,f7,f8,f9,f10,f11,f12,f13")
		timeout = flag.Duration("timeout", 30*time.Second, "per-engine-run timeout ('-' cells)")
		budget  = flag.Int64("budget", 512<<20, "baseline memory budget in bytes ('x' cells)")
		workers = flag.Int("workers", 4, "workers for comparative tables")
		threads = flag.Int("threads", 2, "threads per worker")
	)
	flag.Parse()

	o := exp.Options{
		Scale:     *scale,
		Out:       os.Stdout,
		Timeout:   *timeout,
		MemBudget: *budget,
		Workers:   *workers,
		Threads:   *threads,
	}

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	run := func(key string) bool { return len(want) == 0 || want[key] }

	type experiment struct {
		key  string
		name string
		fn   func(exp.Options) error
	}
	experiments := []experiment{
		{"t1", "Table 1", func(o exp.Options) error { _, err := exp.Table1(o); return err }},
		{"t2", "Table 2", func(o exp.Options) error { _, err := exp.Table2(o); return err }},
		{"t3", "Table 3", func(o exp.Options) error { _, err := exp.Table3(o); return err }},
		{"t4", "Table 4", func(o exp.Options) error { _, err := exp.Table4(o); return err }},
		{"t5", "Table 5", func(o exp.Options) error { _, err := exp.Table5(o); return err }},
		{"f56", "Figures 5-6", func(o exp.Options) error { _, err := exp.Figure56(o); return err }},
		{"f7", "Figure 7", func(o exp.Options) error { _, err := exp.Figure7(o); return err }},
		{"f8", "Figure 8", func(o exp.Options) error { _, err := exp.Figure8(o); return err }},
		{"f9", "Figure 9", func(o exp.Options) error { _, err := exp.Figure9(o); return err }},
		{"f10", "Figure 10", func(o exp.Options) error { _, err := exp.Figure10(o); return err }},
		{"f11", "Figure 11", func(o exp.Options) error { _, err := exp.Figure11(o); return err }},
		{"f12", "Figure 12", func(o exp.Options) error { _, err := exp.Figure12(o); return err }},
		{"f13", "Figure 13", func(o exp.Options) error { _, err := exp.Figure13(o); return err }},
	}

	failed := 0
	for _, e := range experiments {
		if !run(e.key) {
			continue
		}
		fmt.Printf("\n==== %s (%s) ====\n", e.name, e.key)
		start := time.Now()
		if err := e.fn(o); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", e.name, err)
			failed++
			continue
		}
		fmt.Printf("(%s took %.1fs)\n", e.name, time.Since(start).Seconds())
	}
	if failed > 0 {
		os.Exit(1)
	}
}
