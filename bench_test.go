// Benchmarks regenerating every table and figure of the paper's
// evaluation (§8). Each benchmark runs the corresponding experiment from
// internal/exp once per iteration at a reduced scale, so
//
//	go test -bench=. -benchmem
//
// sweeps the entire evaluation. For the full-scale numbers recorded in
// EXPERIMENTS.md, run `go run ./cmd/experiments` instead.
package gminer_test

import (
	"testing"
	"time"

	"gminer"
	"gminer/internal/algo"
	"gminer/internal/cluster"
	"gminer/internal/exp"
	"gminer/internal/gen"
	"gminer/internal/trace"
)

// benchOptions are reduced-scale settings so the full sweep stays in
// benchmark-friendly time.
func benchOptions() exp.Options {
	return exp.Options{
		Scale:     0.15,
		Timeout:   10 * time.Second,
		MemBudget: 32 << 20,
		Workers:   3,
		Threads:   2,
	}
}

func BenchmarkTable1MCFEngines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table1(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table2(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3TCMCF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table3(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4GM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table4(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5CDGC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table5(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure56Utilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Figure56(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7COST(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Figure7(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8Vertical(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Figure8(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9Horizontal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Figure9(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10Baselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Figure10(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure11BDG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Figure11(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure12LSH(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Figure12(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure13Stealing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Figure13(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Ablation benches for the design choices DESIGN.md calls out, on a single
// fixed workload (MCF on orkut-s) so flags compare like-for-like.

func benchRun(b *testing.B, mutate func(*gminer.Config)) {
	g := gen.MustBuild(gen.Orkut, 0.15)
	cfg := gminer.Config{Workers: 3, Threads: 2, UseLSH: true, Stealing: true}
	if mutate != nil {
		mutate(&cfg)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gminer.Run(g, algo.NewMaxClique(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBaselineConfig(b *testing.B) {
	benchRun(b, nil)
}

func BenchmarkAblationNoLSH(b *testing.B) {
	benchRun(b, func(c *gminer.Config) { c.UseLSH = false })
}

func BenchmarkAblationNoStealing(b *testing.B) {
	benchRun(b, func(c *gminer.Config) { c.Stealing = false })
}

func BenchmarkAblationEagerSeeding(b *testing.B) {
	benchRun(b, func(c *gminer.Config) { c.EagerSeeding = true })
}

func BenchmarkAblationTaskSplitting(b *testing.B) {
	g := gen.MustBuild(gen.Orkut, 0.15)
	mc := algo.NewMaxClique()
	mc.SplitThreshold = 32
	cfg := gminer.Config{Workers: 3, Threads: 2, UseLSH: true, Stealing: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gminer.Run(g, mc, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTinyStoreSpills(b *testing.B) {
	benchRun(b, func(c *gminer.Config) { c.StoreMemCapacity = 32 })
}

func BenchmarkAblationTCPTransport(b *testing.B) {
	benchRun(b, func(c *gminer.Config) { c.UseTCP = true })
}

// BenchmarkAblationProcessLayout compares the paper's two deployment
// modes (§5.1): one worker per node with many threads (process-level
// cache shared by all cores) vs many single-threaded workers (no cache
// sharing). Same total parallelism; the shared-cache layout should pull
// fewer vertices.
func BenchmarkAblationSharedCacheLayout(b *testing.B) {
	benchRun(b, func(c *gminer.Config) { c.Workers = 2; c.Threads = 4 })
}

func BenchmarkAblationPerCoreWorkers(b *testing.B) {
	benchRun(b, func(c *gminer.Config) { c.Workers = 8; c.Threads = 1 })
}

// Cache-capacity sweep: the RCV cache's effect on pull traffic.
func BenchmarkAblationCache64(b *testing.B) {
	benchRun(b, func(c *gminer.Config) { c.CacheCapacity = 64 })
}

func BenchmarkAblationCache4096(b *testing.B) {
	benchRun(b, func(c *gminer.Config) { c.CacheCapacity = 4096 })
}

// Adaptive steal policy vs the fixed Eq. 2/3 thresholds on a skewed load.
func BenchmarkAblationAdaptiveStealPolicy(b *testing.B) {
	g := gen.MustBuild(gen.Orkut, 0.15)
	cfg := gminer.Config{Workers: 3, Threads: 2, UseLSH: true, Stealing: true}
	cfg.StealPolicy = cluster.NewAdaptiveCostPolicy(0.9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gminer.Run(g, algo.NewMaxClique(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceOverhead quantifies what permanently compiled-in tracing
// costs on a TC run (ISSUE acceptance: disabled tracer ≤ 3% overhead).
//
//	absent    — Config.Tracer nil: every probe is one nil check.
//	disabled  — tracer constructed but never enabled: one atomic load.
//	histogram — Enable(): histogram observations, no ring events.
//	events    — EnableEvents(): full ring-buffer event capture.
func BenchmarkTraceOverhead(b *testing.B) {
	g := gen.MustBuild(gen.Orkut, 0.15)
	run := func(b *testing.B, mk func() *trace.Tracer) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			cfg := gminer.Config{Workers: 3, Threads: 2, UseLSH: true, Stealing: true}
			cfg.Tracer = mk()
			if _, err := gminer.Run(g, algo.NewTriangleCount(), cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("absent", func(b *testing.B) {
		run(b, func() *trace.Tracer { return nil })
	})
	b.Run("disabled", func(b *testing.B) {
		run(b, func() *trace.Tracer { return trace.New(4, 1024) })
	})
	b.Run("histograms", func(b *testing.B) {
		run(b, func() *trace.Tracer { return trace.New(4, 1024).Enable() })
	})
	b.Run("events", func(b *testing.B) {
		run(b, func() *trace.Tracer { return trace.New(4, 1024).EnableEvents() })
	})
}
