package exp

import (
	"time"

	"gminer/internal/core"
	"gminer/internal/graph"
	"gminer/internal/wire"
)

// delayCal is a calibrated-delay workload for the task-stealing ablation
// (Figure 13). On a single-core host the OS scheduler is work-conserving,
// so CPU-bound imbalance cannot change wall time; calibrated sleeps
// occupy a worker's computing threads without occupying the core, which
// restores the semantics of "a busy worker" that dynamic load balancing
// is about. Each seed task sleeps for a duration proportional to its
// degree, mirroring the skew of real per-task mining cost. The duration
// is fixed at seed time and carried in the task context, so migration
// does not change a task's cost.
type delayCal struct {
	perNeighbor time.Duration
	base        time.Duration
}

func (*delayCal) Name() string { return "delay-cal" }

func (d *delayCal) Seed(v *graph.Vertex, spawn func(*core.Task)) {
	cost := d.base + time.Duration(v.Degree())*d.perNeighbor
	t := &core.Task{Context: cost}
	t.Subgraph.AddVertex(v.ID)
	// Candidates kept empty: the workload isolates compute-time skew from
	// communication, so stealing effects are unconfounded.
	spawn(t)
}

func (d *delayCal) Update(t *core.Task, cands []*graph.Vertex, env core.Env) {
	if cost, ok := t.Context.(time.Duration); ok {
		time.Sleep(cost)
	}
}

// EncodeContext implements core.ContextCodec.
func (*delayCal) EncodeContext(w *wire.Writer, ctx any) {
	cost, _ := ctx.(time.Duration)
	w.Varint(int64(cost))
}

// DecodeContext implements core.ContextCodec.
func (*delayCal) DecodeContext(r *wire.Reader) any {
	return time.Duration(r.Varint())
}
