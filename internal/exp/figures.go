package exp

import (
	"fmt"
	"text/tabwriter"
	"time"

	"gminer/internal/algo"
	"gminer/internal/baseline"
	"gminer/internal/gen"
	"gminer/internal/metrics"
	"gminer/internal/partition"
)

// ---------------------------------------------------------------------------
// Figures 5 and 6: CPU / network / disk utilization timelines of the
// G-thinker-like engine vs G-Miner, running GM on friendster-s.

// Figure56Result carries both timelines and their average utilizations.
type Figure56Result struct {
	GThinker    []metrics.TimelinePoint
	GMiner      []metrics.TimelinePoint
	GThinkerCPU float64 // average CPU utilization over the run
	GMinerCPU   float64
	// StallFraction: fraction of sampled intervals with <10% compute — the
	// signature of a barrier-stalled engine (what Figure 5's troughs show).
	GThinkerStall float64
	GMinerStall   float64
}

func stallFraction(points []metrics.TimelinePoint) float64 {
	if len(points) == 0 {
		return 0
	}
	stalled := 0
	for _, p := range points {
		if p.CPUUtil < 0.10 {
			stalled++
		}
	}
	return float64(stalled) / float64(len(points))
}

// Figure56 reproduces Figures 5 and 6.
func Figure56(o Options) (*Figure56Result, error) {
	o = o.defaults()
	g := buildLabeled(gen.Friendster, o.Scale)
	p := algo.FigurePattern()
	res := &Figure56Result{}

	// G-thinker-like: sample its counters during the run.
	bcfg := blConfig(o, o.Workers, o.Threads)
	bcfg.SampleEvery = 2 * time.Millisecond
	bres, bs, err := baseline.Batch{}.Run(g, algo.NewGraphMatch(p), bcfg)
	if err != nil {
		return nil, fmt.Errorf("figure56: batch engine: %w", err)
	}
	_ = bres
	res.GThinkerCPU = bs.CPUUtil
	res.GThinker = bs.Timeline

	cfg := gmConfig(o, o.Workers, o.Threads)
	cfg.SampleEvery = 2 * time.Millisecond
	gres, cell := gminerRun(g, algo.NewGraphMatch(p), cfg, o.Timeout)
	if !cell.OK() {
		return nil, fmt.Errorf("figure56: g-miner run failed")
	}
	res.GMiner = gres.Timeline
	res.GMinerCPU = gres.Total.CPUUtil(gres.Elapsed, o.Workers*o.Threads)

	res.GThinkerStall = stallFraction(res.GThinker)
	res.GMinerStall = stallFraction(res.GMiner)

	fmt.Fprintf(o.Out, "Figure 5/6: GM on friendster-s — average CPU utilization: gthinker-like %s, g-miner %s\n",
		fmtPct(res.GThinkerCPU), fmtPct(res.GMinerCPU))
	fmt.Fprintf(o.Out, "stalled intervals (<10%% compute): gthinker-like %s, g-miner %s\n",
		fmtPct(res.GThinkerStall), fmtPct(res.GMinerStall))
	for _, tl := range []struct {
		name   string
		points []metrics.TimelinePoint
	}{{"gthinker-like", res.GThinker}, {"g-miner", res.GMiner}} {
		fmt.Fprintf(o.Out, "%s timeline (t, cpu%%, netB, diskB):\n", tl.name)
		for _, pt := range tl.points {
			fmt.Fprintf(o.Out, "  %8.1fms %6.1f%% %10d %10d\n",
				float64(pt.At)/float64(time.Millisecond), 100*pt.CPUUtil, pt.NetBytes, pt.DiskBytes)
		}
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// Figure 7: the COST of G-Miner — modeled time with 1..24 cores vs the
// single-threaded implementation; COST = min cores beating single-thread.

// Figure7Series is one (app, dataset) curve.
type Figure7Series struct {
	App        string
	Dataset    string
	SingleSecs float64
	Cores      []int
	ModelSecs  []float64
	COST       int // 0 if never beats single-thread in the range
}

// Figure7 reproduces the COST plot for TC and GM on skitter-s/orkut-s.
func Figure7(o Options) ([]Figure7Series, error) {
	o = o.defaults()
	cores := []int{1, 2, 4, 8, 12, 24}
	var out []Figure7Series
	for _, tc := range []bool{true, false} {
		for _, preset := range []gen.Preset{gen.Skitter, gen.Orkut} {
			var series Figure7Series
			series.Cores = cores
			series.Dataset = string(preset)
			if tc {
				series.App = "tc"
				g, err := gen.Build(preset, o.Scale)
				if err != nil {
					return nil, err
				}
				_, st, _ := baseline.Single{}.TC(g, blConfig(o, 1, 1))
				series.SingleSecs = st.Elapsed.Seconds()
				// One instrumented single-node run; the model scales it.
				cfg := gmConfig(o, 1, 1)
				cfg.Stealing = false
				res, cell := gminerRun(g, algo.NewTriangleCount(), cfg, o.Timeout)
				if !cell.OK() {
					return nil, fmt.Errorf("figure7: tc run failed on %s", preset)
				}
				for _, c := range cores {
					series.ModelSecs = append(series.ModelSecs, ModelElapsed(res, c).Seconds())
				}
			} else {
				series.App = "gm"
				g := buildLabeled(preset, o.Scale)
				// COST needs a single-threaded implementation of the SAME
				// computation: the task-style sequential driver. (The
				// bottom-up DP oracle is a different, asymptotically better
				// algorithm — against it no system wins at this scale; see
				// EXPERIMENTS.md.)
				st := time.Now()
				_ = algo.SeqRun(g, algo.NewGraphMatch(algo.FigurePattern()))
				series.SingleSecs = time.Since(st).Seconds()
				cfg := gmConfig(o, 1, 1)
				cfg.Stealing = false
				res, cell := gminerRun(g, algo.NewGraphMatch(algo.FigurePattern()), cfg, o.Timeout)
				if !cell.OK() {
					return nil, fmt.Errorf("figure7: gm run failed on %s", preset)
				}
				for _, c := range cores {
					series.ModelSecs = append(series.ModelSecs, ModelElapsed(res, c).Seconds())
				}
			}
			for i, c := range cores {
				if series.ModelSecs[i] < series.SingleSecs {
					series.COST = c
					break
				}
			}
			out = append(out, series)
		}
	}

	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Figure 7: the COST of g-miner (modeled seconds per core count; * = single-thread)")
	fmt.Fprint(tw, "App\tDataset\tsingle*")
	for _, c := range cores {
		fmt.Fprintf(tw, "\t%dc", c)
	}
	fmt.Fprintln(tw, "\tCOST")
	for _, s := range out {
		fmt.Fprintf(tw, "%s\t%s\t%.3f", s.App, s.Dataset, s.SingleSecs)
		for _, m := range s.ModelSecs {
			fmt.Fprintf(tw, "\t%.3f", m)
		}
		fmt.Fprintf(tw, "\t%d\n", s.COST)
	}
	tw.Flush()
	return out, nil
}

// ---------------------------------------------------------------------------
// Figures 8 and 9: vertical and horizontal scalability on friendster-s.

// ScalabilitySeries is one app's modeled-time curve.
type ScalabilitySeries struct {
	App       string
	X         []int // cores (vertical) or workers (horizontal)
	ModelSecs []float64
}

// Figure8 reproduces vertical scalability: 15 workers, 1..24 threads each
// (modeled via ModelFromShares), for MCF and GM on friendster-s.
func Figure8(o Options) ([]ScalabilitySeries, error) {
	o = o.defaults()
	threads := []int{1, 2, 4, 8, 12, 24}
	workers := 15
	var out []ScalabilitySeries
	for _, app := range []string{"mcf", "gm"} {
		refBusy, err := referenceBusy(o, app)
		if err != nil {
			return nil, err
		}
		series := ScalabilitySeries{App: app, X: threads}
		res, err := runFriendster(o, app, workers, 1)
		if err != nil {
			return nil, err
		}
		for _, c := range threads {
			series.ModelSecs = append(series.ModelSecs, ModelFromShares(refBusy, res, c).Seconds())
		}
		out = append(out, series)
	}
	printScalability(o, "Figure 8: vertical scalability on friendster-s (15 workers, modeled)", "threads/worker", out)
	return out, nil
}

// referenceBusy measures the app's total compute on friendster-s with one
// worker and one thread (no oversubscription inflation).
func referenceBusy(o Options, app string) (time.Duration, error) {
	res, err := runFriendster(o, app, 1, 1)
	if err != nil {
		return 0, err
	}
	return sumBusy(res), nil
}

// Figure9 reproduces horizontal scalability: 10/15/20 workers, for MCF
// and GM on friendster-s. Each worker count is a real run (partitioning
// and load balance change). Two thread counts are modeled: at 4
// threads/worker the jobs are compute-bound and adding workers helps; at
// 24 the scaled-down jobs become communication-bound and extra workers
// stop paying — the flattening the paper observes at its own scale.
func Figure9(o Options) ([]ScalabilitySeries, error) {
	o = o.defaults()
	workerCounts := []int{10, 15, 20}
	var out []ScalabilitySeries
	for _, app := range []string{"mcf", "gm"} {
		refBusy, err := referenceBusy(o, app)
		if err != nil {
			return nil, err
		}
		s4 := ScalabilitySeries{App: app + "@4t", X: workerCounts}
		s24 := ScalabilitySeries{App: app + "@24t", X: workerCounts}
		for _, w := range workerCounts {
			res, err := runFriendster(o, app, w, 1)
			if err != nil {
				return nil, err
			}
			s4.ModelSecs = append(s4.ModelSecs, ModelFromShares(refBusy, res, 4).Seconds())
			s24.ModelSecs = append(s24.ModelSecs, ModelFromShares(refBusy, res, 24).Seconds())
		}
		out = append(out, s4, s24)
	}
	printScalability(o, "Figure 9: horizontal scalability on friendster-s (modeled)", "workers", out)
	return out, nil
}

func runFriendster(o Options, app string, workers, threads int) (*clusterRes, error) {
	cfg := gmConfig(o, workers, threads)
	switch app {
	case "mcf":
		g, err := gen.Build(gen.Friendster, o.Scale)
		if err != nil {
			return nil, err
		}
		res, cell := gminerRun(g, algo.NewMaxClique(), cfg, o.Timeout)
		if !cell.OK() {
			return nil, fmt.Errorf("mcf run failed (workers=%d)", workers)
		}
		return res, nil
	case "gm":
		g := buildLabeled(gen.Friendster, o.Scale)
		res, cell := gminerRun(g, algo.NewGraphMatch(algo.FigurePattern()), cfg, o.Timeout)
		if !cell.OK() {
			return nil, fmt.Errorf("gm run failed (workers=%d)", workers)
		}
		return res, nil
	}
	return nil, fmt.Errorf("unknown app %q", app)
}

func printScalability(o Options, title, xlabel string, series []ScalabilitySeries) {
	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, title)
	fmt.Fprintf(tw, "App\t%s", xlabel)
	fmt.Fprintln(tw)
	for _, s := range series {
		fmt.Fprintf(tw, "%s", s.App)
		for i, x := range s.X {
			fmt.Fprintf(tw, "\t%d:%.3fs", x, s.ModelSecs[i])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// ---------------------------------------------------------------------------
// Figure 10: scalability of the baseline systems (TC on skitter-s/orkut-s).

// Figure10Row is one engine × dataset × worker-count measurement.
type Figure10Row struct {
	Engine  string
	Dataset string
	Workers int
	Time    Cell
}

// Figure10 reproduces the baseline-scalability reference plot.
func Figure10(o Options) ([]Figure10Row, error) {
	o = o.defaults()
	workerCounts := []int{5, 10, 15, 20}
	var rows []Figure10Row
	for _, preset := range []gen.Preset{gen.Skitter, gen.Orkut} {
		g, err := gen.Build(preset, o.Scale)
		if err != nil {
			return nil, err
		}
		for _, w := range workerCounts {
			cfg := blConfig(o, w, o.Threads)
			_, s, errE := baseline.Embed{}.TC(g, cfg)
			rows = append(rows, Figure10Row{baseline.Embed{}.Name(), string(preset), w, cellFor(errE, s.Elapsed)})
			_, s, errG := baseline.BSP{}.TC(g, cfg)
			rows = append(rows, Figure10Row{baseline.BSP{}.Name(), string(preset), w, cellFor(errG, s.Elapsed)})
			_, s, errX := baseline.BSP{Dataflow: true}.TC(g, cfg)
			rows = append(rows, Figure10Row{baseline.BSP{Dataflow: true}.Name(), string(preset), w, cellFor(errX, s.Elapsed)})
			_, s, errB := baseline.Batch{}.Run(g, algo.NewTriangleCount(), cfg)
			rows = append(rows, Figure10Row{baseline.Batch{}.Name(), string(preset), w, cellFor(errB, s.Elapsed)})
		}
	}
	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Figure 10: scalability of baseline systems (TC)")
	fmt.Fprintln(tw, "Engine\tDataset\tWorkers\tTime(s)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\n", r.Engine, r.Dataset, r.Workers, r.Time)
	}
	tw.Flush()
	return rows, nil
}

// ---------------------------------------------------------------------------
// Figure 11: BDG partitioning vs hash partitioning (MCF).

// Figure11Row compares the two partitioners on one dataset.
type Figure11Row struct {
	App           string
	Dataset       string
	Partitioner   string
	PartitionSecs float64
	JobSecs       float64
	MemGB         float64
	NetGB         float64
	EdgeCut       float64
	CacheHit      float64
}

// Figure11 reproduces the BDG ablation on orkut-s and friendster-s. The
// paper runs MCF; parallel branch-and-bound pruning makes MCF wall time
// noisy run-to-run (§3's own superlinear-speedup discussion), so the
// deterministic-work GM rows carry the cleaner signal and MCF rows are
// reported alongside with best-of-5 repetition.
func Figure11(o Options) ([]Figure11Row, error) {
	o = o.defaults()
	var rows []Figure11Row
	for _, preset := range []gen.Preset{gen.Orkut, gen.Friendster} {
		mcfG, err := gen.Build(preset, o.Scale)
		if err != nil {
			return nil, err
		}
		gmG := buildLabeled(preset, o.Scale)
		for _, part := range []partition.Partitioner{partition.Hash{}, partition.BDG{}} {
			cfg := gmConfig(o, o.Workers, o.Threads)
			cfg.Partitioner = part
			cfg.CacheCapacity = 256 // pulls must matter for locality to show

			gmRes, err := bestOf(3, func() (*clusterRes, error) {
				r, cell := gminerRun(gmG, algo.NewGraphMatch(algo.FigurePattern()), cfg, o.Timeout)
				if !cell.OK() {
					return nil, fmt.Errorf("figure11: gm %s/%s run failed", preset, part.Name())
				}
				return r, nil
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, figure11Row("gm", preset, part, gmRes))

			mcfRes, err := bestOf(5, func() (*clusterRes, error) {
				r, cell := gminerRun(mcfG, algo.NewMaxClique(), cfg, o.Timeout)
				if !cell.OK() {
					return nil, fmt.Errorf("figure11: mcf %s/%s run failed", preset, part.Name())
				}
				return r, nil
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, figure11Row("mcf", preset, part, mcfRes))
		}
	}
	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Figure 11: BDG vs hash partitioning")
	fmt.Fprintln(tw, "App\tDataset\tPartitioner\tPartition(s)\tTime(s)\tMem(GB)\tNetwork(GB)\tEdge cut\tCache hit")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.3f\t%.3f\t%.3f\t%.4f\t%.3f\t%s\n",
			r.App, r.Dataset, r.Partitioner, r.PartitionSecs, r.JobSecs, r.MemGB, r.NetGB, r.EdgeCut, fmtPct(r.CacheHit))
	}
	tw.Flush()
	return rows, nil
}

func figure11Row(app string, preset gen.Preset, part partition.Partitioner, res *clusterRes) Figure11Row {
	return Figure11Row{
		App:           app,
		Dataset:       string(preset),
		Partitioner:   part.Name(),
		PartitionSecs: res.PartitionTime.Seconds(),
		JobSecs:       res.Elapsed.Seconds(),
		MemGB:         gb(res.Total.PeakBytes),
		NetGB:         gb(res.Total.NetBytes),
		EdgeCut:       res.EdgeCut,
		CacheHit:      res.Total.CacheHitRate(),
	}
}

// ---------------------------------------------------------------------------
// Figure 12: the LSH-based task priority queue on/off.

// AblationRow is one (app, dataset, enabled/disabled) measurement shared
// by Figures 12 and 13.
type AblationRow struct {
	App       string
	Dataset   string
	Enabled   bool
	JobSecs   float64
	NetGB     float64
	HitRate   float64
	Stolen    int64
	ModelSecs float64
}

// Figure12 reproduces the LSH ablation: GM and MCF on orkut-s and
// friendster-s with the LSH priority queue enabled and disabled.
func Figure12(o Options) ([]AblationRow, error) {
	o = o.defaults()
	var rows []AblationRow
	for _, app := range []string{"gm", "mcf"} {
		for _, preset := range []gen.Preset{gen.Orkut, gen.Friendster} {
			for _, enabled := range []bool{true, false} {
				cfg := gmConfig(o, o.Workers, o.Threads)
				cfg.UseLSH = enabled
				// Hash partitioning maximizes remote pulls, and the cache
				// must be small relative to the remote working set or any
				// ordering hits: the paper's graphs exceed memory, the
				// scaled-down ones must not fit the cache either.
				cfg.Partitioner = partition.Hash{}
				cfg.CacheCapacity = 256
				res, err := bestOf(3, func() (*clusterRes, error) {
					return runApp(o, app, preset, cfg)
				})
				if err != nil {
					return nil, err
				}
				rows = append(rows, AblationRow{
					App: app, Dataset: string(preset), Enabled: enabled,
					JobSecs:   res.Elapsed.Seconds(),
					NetGB:     gb(res.Total.NetBytes),
					HitRate:   res.Total.CacheHitRate(),
					ModelSecs: ModelElapsed(res, o.Threads).Seconds(),
				})
			}
		}
	}
	printAblation(o, "Figure 12: impact of the LSH-based task priority queue (En-LSH vs Dis-LSH)", "LSH", rows)
	return rows, nil
}

// Figure13 reproduces the task-stealing ablation on a skewed
// partitioning. Alongside the paper's GM/MCF runs it includes the
// calibrated-delay workload (delayCal): on a single-core host CPU-bound
// imbalance is hidden by the work-conserving OS scheduler, while
// calibrated sleeps keep the "busy worker" semantics and expose the
// load-balancing speedup directly in wall time.
func Figure13(o Options) ([]AblationRow, error) {
	o = o.defaults()
	var rows []AblationRow
	for _, preset := range []gen.Preset{gen.Orkut, gen.Friendster} {
		g, err := gen.Build(preset, o.Scale)
		if err != nil {
			return nil, err
		}
		for _, enabled := range []bool{true, false} {
			cfg := gmConfig(o, o.Workers, o.Threads)
			cfg.Stealing = enabled
			cfg.Partitioner = partition.Skewed{Bias: 0.7}
			workload := &delayCal{base: 100 * time.Microsecond, perNeighbor: 3 * time.Microsecond}
			res, err := bestOf(3, func() (*clusterRes, error) {
				r, cell := gminerRun(g, workload, cfg, o.Timeout)
				if !cell.OK() {
					return nil, fmt.Errorf("figure13: delay-cal on %s failed", preset)
				}
				return r, nil
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblationRow{
				App: "delay-cal", Dataset: string(preset), Enabled: enabled,
				JobSecs:   res.Elapsed.Seconds(),
				NetGB:     gb(res.Total.NetBytes),
				Stolen:    res.Total.Stolen,
				ModelSecs: ModelElapsed(res, o.Threads).Seconds(),
			})
		}
	}
	for _, app := range []string{"gm", "mcf"} {
		for _, preset := range []gen.Preset{gen.Orkut, gen.Friendster} {
			for _, enabled := range []bool{true, false} {
				cfg := gmConfig(o, o.Workers, o.Threads)
				cfg.Stealing = enabled
				// A skewed partitioning creates the imbalance stealing fixes.
				cfg.Partitioner = partition.Skewed{Bias: 0.55}
				res, err := bestOf(3, func() (*clusterRes, error) {
					return runApp(o, app, preset, cfg)
				})
				if err != nil {
					return nil, err
				}
				rows = append(rows, AblationRow{
					App: app, Dataset: string(preset), Enabled: enabled,
					JobSecs:   res.Elapsed.Seconds(),
					NetGB:     gb(res.Total.NetBytes),
					Stolen:    res.Total.Stolen,
					ModelSecs: ModelElapsed(res, o.Threads).Seconds(),
				})
			}
		}
	}
	printAblation(o, "Figure 13: impact of task stealing (En-Stealing vs Dis-Stealing, skewed partitions)", "stealing", rows)
	return rows, nil
}

// bestOf runs fn n times and keeps the run with the smallest elapsed
// time: single-machine scheduling noise is strictly additive, so the
// minimum is the cleanest estimator for the ablation comparisons.
func bestOf(n int, fn func() (*clusterRes, error)) (*clusterRes, error) {
	var best *clusterRes
	for i := 0; i < n; i++ {
		res, err := fn()
		if err != nil {
			return nil, err
		}
		if best == nil || res.Elapsed < best.Elapsed {
			best = res
		}
	}
	return best, nil
}

func runApp(o Options, app string, preset gen.Preset, cfg clusterConfig) (*clusterRes, error) {
	switch app {
	case "gm":
		g := buildLabeled(preset, o.Scale)
		res, cell := gminerRun(g, algo.NewGraphMatch(algo.FigurePattern()), cfg, o.Timeout)
		if !cell.OK() {
			return nil, fmt.Errorf("%s on %s failed", app, preset)
		}
		return res, nil
	case "mcf":
		g, err := gen.Build(preset, o.Scale)
		if err != nil {
			return nil, err
		}
		res, cell := gminerRun(g, algo.NewMaxClique(), cfg, o.Timeout)
		if !cell.OK() {
			return nil, fmt.Errorf("%s on %s failed", app, preset)
		}
		return res, nil
	}
	return nil, fmt.Errorf("unknown app %q", app)
}

func printAblation(o Options, title, knob string, rows []AblationRow) {
	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, title)
	fmt.Fprintf(tw, "App\tDataset\t%s\tTime(s)\tModel(s)\tNet(GB)\tCache hit\tStolen\n", knob)
	for _, r := range rows {
		state := "off"
		if r.Enabled {
			state = "on"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.3f\t%.3f\t%.4f\t%s\t%d\n",
			r.App, r.Dataset, state, r.JobSecs, r.ModelSecs, r.NetGB, fmtPct(r.HitRate), r.Stolen)
	}
	tw.Flush()
}
