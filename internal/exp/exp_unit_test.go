package exp

import (
	"errors"
	"testing"
	"time"

	"gminer/internal/cluster"
	"gminer/internal/metrics"
)

func TestCellRendering(t *testing.T) {
	if (Cell{Seconds: 1.5}).String() != "1.500" {
		t.Fatal("seconds cell")
	}
	if (Cell{OOM: true}).String() != "x" {
		t.Fatal("oom cell")
	}
	if (Cell{Timeout: true}).String() != "-" {
		t.Fatal("timeout cell")
	}
	if !(Cell{Seconds: 1}).OK() || (Cell{OOM: true}).OK() {
		t.Fatal("OK wrong")
	}
}

func TestCellFor(t *testing.T) {
	if c := cellFor(nil, 2*time.Second); !c.OK() || c.Seconds != 2 {
		t.Fatalf("%+v", c)
	}
	oom := errors.New("memctl: out of memory budget: used 1 of 1")
	if c := cellFor(oom, 0); !c.OOM {
		t.Fatalf("%+v", c)
	}
	if c := cellFor(errors.New("anything else"), 0); !c.Timeout {
		t.Fatalf("%+v", c)
	}
}

func resWithWorkers(ws ...metrics.Snapshot) *cluster.Result {
	return &cluster.Result{PerWorker: ws}
}

func TestModelElapsedOverlap(t *testing.T) {
	// Worker 0: compute-bound; worker 1: comm-bound. The job takes the
	// slower worker's max(compute, comm).
	res := resWithWorkers(
		metrics.Snapshot{Busy: 8 * time.Second, NetBytes: 0},
		metrics.Snapshot{Busy: time.Second, NetBytes: simBandwidth * 3}, // 3s of traffic
	)
	got := ModelElapsed(res, 2)
	if got != 4*time.Second { // max(8/2, 0) vs max(1/2, 3) → 4
		t.Fatalf("got %v want 4s", got)
	}
	got = ModelElapsed(res, 8)
	if got != 3*time.Second { // worker 1's comm now dominates
		t.Fatalf("got %v want 3s", got)
	}
}

func TestModelFromShares(t *testing.T) {
	// Tasks split 75/25; reference work 8s.
	res := resWithWorkers(
		metrics.Snapshot{TasksDone: 75},
		metrics.Snapshot{TasksDone: 25},
	)
	got := ModelFromShares(8*time.Second, res, 2)
	if got != 3*time.Second { // 8 × 0.75 / 2
		t.Fatalf("got %v want 3s", got)
	}
	// Balanced shares halve the critical path.
	res = resWithWorkers(
		metrics.Snapshot{TasksDone: 50},
		metrics.Snapshot{TasksDone: 50},
	)
	if got := ModelFromShares(8*time.Second, res, 2); got != 2*time.Second {
		t.Fatalf("balanced: got %v want 2s", got)
	}
	// No tasks: zero, not a panic.
	if got := ModelFromShares(time.Second, resWithWorkers(metrics.Snapshot{}), 2); got != 0 {
		t.Fatalf("empty: %v", got)
	}
}

func TestStallFraction(t *testing.T) {
	points := []metrics.TimelinePoint{
		{CPUUtil: 0.0}, {CPUUtil: 0.05}, {CPUUtil: 0.5}, {CPUUtil: 1.0},
	}
	if got := stallFraction(points); got != 0.5 {
		t.Fatalf("got %f want 0.5", got)
	}
	if stallFraction(nil) != 0 {
		t.Fatal("empty timeline")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.defaults()
	if o.Scale != 1.0 || o.Timeout <= 0 || o.MemBudget <= 0 ||
		o.Workers <= 0 || o.Threads <= 0 || o.Out == nil {
		t.Fatalf("defaults: %+v", o)
	}
}
