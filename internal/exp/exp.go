// Package exp regenerates every table and figure of the paper's
// evaluation (§8) on the scaled-down synthetic datasets. Each experiment
// prints rows shaped like the paper's and returns the underlying data so
// benchmarks and tests can assert on the qualitative claims (who wins, by
// roughly what factor, where crossovers fall).
//
// Measurement model. The harness runs on whatever machine it is given —
// including single-core CI containers, where wall-clock time cannot show
// parallel speedup. Comparative experiments (Tables 1, 3, 4, 5; Figures
// 5/6, 11, 12, 13) therefore use measured wall-clock, which is fair on
// any core count because every engine serializes equally. Scalability
// experiments (Figures 7–10) additionally report a *modeled* elapsed
// time,
//
//	T(W, c) = max_w max(busy_w / c, net_w / bandwidth),
//
// i.e. each worker overlaps its compute (critical-path work over c
// threads) with its own link's traffic — the overlap is exactly what the
// task pipeline provides — and the job takes as long as its slowest
// worker. The model preserves the effects those figures are about (load
// balance across workers, communication becoming the bottleneck) and is
// computed from the same per-worker counters a real deployment reports.
package exp

import (
	"fmt"
	"io"
	"time"

	"gminer/internal/algo"
	"gminer/internal/baseline"
	"gminer/internal/cluster"
	"gminer/internal/core"
	"gminer/internal/gen"
	"gminer/internal/graph"
	"gminer/internal/metrics"
	"gminer/internal/partition"
)

// Options configures a harness run.
type Options struct {
	// Scale multiplies dataset sizes (1.0 = the default laptop-scale
	// presets; tests use ~0.1).
	Scale float64
	// Out receives the formatted rows; nil discards them.
	Out io.Writer
	// Timeout bounds each engine run; runs exceeding it are reported as
	// the paper's "-" (>24h) cells. Default 20s.
	Timeout time.Duration
	// MemBudget bounds baseline engines (the paper's 48 GB/node scaled
	// down); runs exceeding it are reported as "x" (OOM). Default 512 MB.
	MemBudget int64
	// Workers/Threads for the comparative tables. Defaults 4×2.
	Workers int
	Threads int
}

func (o Options) defaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1.0
	}
	if o.Timeout <= 0 {
		o.Timeout = 20 * time.Second
	}
	if o.MemBudget <= 0 {
		o.MemBudget = 512 << 20
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Threads <= 0 {
		o.Threads = 2
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	return o
}

// Simulated network parameters shared by all engines. The paper's cluster
// had 1 Gbps links; since the datasets here are scaled down ~1000x while
// per-byte software costs (serialization, copies) are not, an unscaled
// network would make communication almost free and hide the
// pipeline-vs-barrier contrast the evaluation is about. The simulated
// link is therefore scaled down with the data so the compute:communication
// ratio of the paper's workloads is preserved. Every engine — G-Miner and
// baselines alike — runs against the same model.
const (
	simLatency   = 500 * time.Microsecond
	simBandwidth = int64(25 << 20) // effective ~25 MB/s per receiver
)

// gmConfig builds the standard G-Miner configuration for experiments.
func gmConfig(o Options, workers, threads int) cluster.Config {
	return cluster.Config{
		Workers:          workers,
		Threads:          threads,
		UseLSH:           true,
		Stealing:         true,
		Latency:          simLatency,
		BandwidthBps:     simBandwidth,
		ProgressInterval: 2 * time.Millisecond,
		Partitioner:      partition.BDG{},
	}
}

// blConfig builds the matching baseline-engine configuration.
func blConfig(o Options, workers, threads int) baseline.Config {
	return baseline.Config{
		Workers:      workers,
		Threads:      threads,
		MemBudget:    o.MemBudget,
		Latency:      simLatency,
		BandwidthBps: simBandwidth,
		Timeout:      o.Timeout,
	}
}

// Cell is one table cell: a value or a failure marker.
type Cell struct {
	Seconds float64
	OOM     bool // "x" in the paper's tables
	Timeout bool // "-" in the paper's tables
}

// String renders the cell the way the paper prints it.
func (c Cell) String() string {
	switch {
	case c.OOM:
		return "x"
	case c.Timeout:
		return "-"
	default:
		return fmt.Sprintf("%.3f", c.Seconds)
	}
}

// OK reports a successful run.
func (c Cell) OK() bool { return !c.OOM && !c.Timeout }

func cellFor(err error, elapsed time.Duration) Cell {
	switch {
	case err == nil:
		return Cell{Seconds: elapsed.Seconds()}
	case isOOM(err):
		return Cell{OOM: true}
	default:
		return Cell{Timeout: true}
	}
}

func isOOM(err error) bool {
	return err != nil && errContains(err, "out of memory")
}

func errContains(err error, sub string) bool {
	s := err.Error()
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Aliases keeping the figure/table code readable.
type (
	clusterRes    = cluster.Result
	clusterConfig = cluster.Config
)

// gminerRun executes a job with the experiment timeout; on timeout the
// job is aborted and a Timeout cell is reported.
func gminerRun(g *graph.Graph, algoImpl core.Algorithm, cfg cluster.Config, timeout time.Duration) (*cluster.Result, Cell) {
	type outcome struct {
		res *cluster.Result
		err error
	}
	job, err := cluster.Start(g, algoImpl, cfg)
	if err != nil {
		return nil, Cell{Timeout: true}
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := job.Wait()
		ch <- outcome{res, err}
	}()
	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case out := <-ch:
		if out.err != nil {
			return nil, Cell{Timeout: true}
		}
		return out.res, Cell{Seconds: out.res.Elapsed.Seconds()}
	case <-timer:
		job.Stop()
		<-ch
		return nil, Cell{Timeout: true}
	}
}

// MaxWorkerBusy returns the busiest worker's compute time — the modeled
// critical path for the scalability figures.
func MaxWorkerBusy(res *cluster.Result) time.Duration {
	var max time.Duration
	for _, w := range res.PerWorker {
		if w.Busy > max {
			max = w.Busy
		}
	}
	return max
}

// ModelElapsed applies the measurement model described in the package
// comment. Per worker, compute (busy/threads) and its own link's traffic
// overlap — that is exactly what the task pipeline buys — so a worker's
// modeled time is max(busy/c, net/bandwidth), and the job takes as long
// as its slowest worker.
func ModelElapsed(res *cluster.Result, threads int) time.Duration {
	var worst time.Duration
	for _, w := range res.PerWorker {
		compute := w.Busy / time.Duration(threads)
		comm := time.Duration(w.NetBytes * int64(time.Second) / simBandwidth)
		t := compute
		if comm > t {
			t = comm
		}
		if t > worst {
			worst = t
		}
	}
	return worst
}

// sumBusy totals compute time across workers.
func sumBusy(res *cluster.Result) time.Duration {
	var total time.Duration
	for _, w := range res.PerWorker {
		total += w.Busy
	}
	return total
}

// ModelFromShares models elapsed time for a W-worker run using a
// reference total-work measurement: refBusy (total compute from a
// 1-worker × 1-thread run, whose timing is not inflated by goroutine
// oversubscription) is distributed across workers by each worker's share
// of completed tasks in the real W-worker run, then each worker overlaps
// compute with its own link traffic:
//
//	T = max_w max(refBusy·share_w / c, net_w / bandwidth)
//
// Task-count shares understate per-task cost skew but are immune to the
// timing inflation that per-worker busy counters suffer when dozens of
// executors share one physical core.
func ModelFromShares(refBusy time.Duration, res *cluster.Result, threads int) time.Duration {
	var totalTasks int64
	for _, w := range res.PerWorker {
		totalTasks += w.TasksDone
	}
	if totalTasks == 0 {
		return 0
	}
	var worst time.Duration
	for _, w := range res.PerWorker {
		share := float64(w.TasksDone) / float64(totalTasks)
		compute := time.Duration(float64(refBusy) * share / float64(threads))
		comm := time.Duration(w.NetBytes * int64(time.Second) / simBandwidth)
		t := compute
		if comm > t {
			t = comm
		}
		if t > worst {
			worst = t
		}
	}
	return worst
}

// fmtBytes renders byte counts like the paper's GB columns.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(b)/float64(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(b)/float64(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2fKB", float64(b)/float64(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

func fmtPct(f float64) string { return fmt.Sprintf("%.2f%%", 100*f) }

// buildLabeled builds the labeled variant of a preset for GM experiments.
func buildLabeled(p gen.Preset, scale float64) *graph.Graph {
	g, err := gen.BuildLabeled(p, scale)
	if err != nil {
		panic(err)
	}
	return g
}

// timelineSummary compresses a utilization timeline into the average CPU
// utilization while the run was active (for assertions on Figures 5/6).
func timelineSummary(points []metrics.TimelinePoint) (avgCPU float64) {
	if len(points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range points {
		sum += p.CPUUtil
	}
	return sum / float64(len(points))
}

var _ = algo.FigurePattern // used by tables.go/figures.go
