package exp

import (
	"os"
	"testing"
	"time"
)

// quick returns options small enough for CI while preserving the
// qualitative shapes the assertions check.
func quick() Options {
	return Options{
		Scale:     0.25,
		Timeout:   8 * time.Second,
		MemBudget: 48 << 20,
		Workers:   3,
		Threads:   2,
		Out:       os.Stderr,
	}
}

func TestTable3Shape(t *testing.T) {
	res, err := Table3(quick())
	if err != nil {
		t.Fatal(err)
	}
	// G-Miner (last engine) must succeed everywhere.
	for app, byDataset := range res.Cells {
		for ds, cells := range byDataset {
			if !cells[len(cells)-1].OK() {
				t.Errorf("%s/%s: g-miner did not succeed", app, ds)
			}
		}
	}
	// The Arabesque-like engine must fail (OOM or timeout) on MCF for the
	// denser datasets, as in the paper.
	mcfOrkut := res.Cells["mcf"]["orkut-s"]
	if mcfOrkut[0].OK() {
		t.Errorf("arabesque-like unexpectedly survived MCF on orkut-s")
	}
}

func TestTable1Shape(t *testing.T) {
	res, err := Table1(quick())
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]Table1Row{}
	for _, r := range res.Rows {
		rows[r.System] = r
	}
	if !rows["single-thread"].Time.OK() {
		t.Fatal("single-thread must succeed")
	}
	if rows["arabesque-like"].Time.OK() {
		t.Error("arabesque-like should fail (OOM/timeout) on MCF, as in Table 1")
	}
	gm := rows["g-miner"]
	if !gm.Time.OK() {
		t.Fatal("g-miner must succeed")
	}
	// G-Miner beats the vertex-centric engines clearly when they finish.
	for _, sys := range []string{"giraph-like", "graphx-like"} {
		if r := rows[sys]; r.Time.OK() && r.Time.Seconds < gm.Time.Seconds {
			t.Errorf("%s (%0.3fs) unexpectedly beat g-miner (%0.3fs)", sys, r.Time.Seconds, gm.Time.Seconds)
		}
	}
}

func TestTable4Shape(t *testing.T) {
	rows, err := Table4(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Both engines agree on counts (checked inside Table4); g-miner must
	// use less network on the heavier datasets (BDG + RCV cache).
	heavy := 0
	gminerLessNet := 0
	for _, r := range rows {
		if !r.GMinerTime.OK() || !r.BatchTime.OK() {
			t.Fatalf("%s: runs failed", r.Dataset)
		}
		if r.Matched == 0 {
			t.Fatalf("%s: no matches", r.Dataset)
		}
		if r.Dataset == "orkut-s" || r.Dataset == "friendster-s" {
			heavy++
			if r.GMinerNetGB < r.BatchNetGB {
				gminerLessNet++
			}
		}
	}
	if gminerLessNet < heavy {
		t.Errorf("g-miner should move fewer bytes than gthinker-like on heavy datasets (%d/%d)", gminerLessNet, heavy)
	}
}

func TestFigure56Shape(t *testing.T) {
	res, err := Figure56(quick())
	if err != nil {
		t.Fatal(err)
	}
	// The pipeline's signature: far fewer stalled intervals than the
	// batch engine's compute/communicate sawtooth.
	if res.GMinerStall >= res.GThinkerStall {
		t.Errorf("g-miner stalls (%.2f) should be below gthinker-like (%.2f)",
			res.GMinerStall, res.GThinkerStall)
	}
}

func TestFigure7Shape(t *testing.T) {
	series, err := Figure7(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		// Modeled time decreases monotonically with cores.
		for i := 1; i < len(s.ModelSecs); i++ {
			if s.ModelSecs[i] > s.ModelSecs[i-1]*1.01 {
				t.Errorf("%s/%s: model not monotone: %v", s.App, s.Dataset, s.ModelSecs)
				break
			}
		}
		if s.COST == 0 {
			t.Errorf("%s/%s: never beats single-thread (COST=0)", s.App, s.Dataset)
		} else if s.COST > 12 {
			t.Errorf("%s/%s: COST=%d far above the paper's 2-3", s.App, s.Dataset, s.COST)
		}
	}
}

func TestFigure13Shape(t *testing.T) {
	rows, err := Figure13(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Tasks must actually migrate on the skewed partitioning, and the
	// calibrated-delay workload must show the load-balancing speedup
	// (the CPU-bound runs cannot, on a work-conserving single core).
	for _, ds := range []string{"orkut-s", "friendster-s"} {
		var on, off float64
		var stolen int64
		for _, r := range rows {
			if r.App != "delay-cal" || r.Dataset != ds {
				continue
			}
			if r.Enabled {
				on, stolen = r.JobSecs, r.Stolen
			} else {
				off = r.JobSecs
			}
		}
		if stolen == 0 {
			t.Errorf("%s: no tasks migrated with stealing enabled", ds)
		}
		if on >= off {
			t.Errorf("%s: stealing did not speed up the calibrated workload: on=%.3f off=%.3f", ds, on, off)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	rows, err := Table2(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("want 6 dataset rows, got %d", len(rows))
	}
	byName := map[string]int{}
	for i, r := range rows {
		byName[r.Name] = i
		if r.V == 0 || r.E == 0 {
			t.Fatalf("%s: empty dataset", r.Name)
		}
	}
	// Table 2's relative ordering.
	if rows[byName["friendster-s"]].E <= rows[byName["orkut-s"]].E {
		t.Error("friendster-s must have the most edges")
	}
	if rows[byName["btc-s"]].V <= rows[byName["orkut-s"]].V {
		t.Error("btc-s must have the most vertices")
	}
	if rows[byName["tencent-s"]].NumAttrs == 0 || rows[byName["dblp-s"]].NumAttrs == 0 {
		t.Error("tencent-s/dblp-s must be attributed")
	}
}

func TestTable5Shape(t *testing.T) {
	rows, err := Table5(quick())
	if err != nil {
		t.Fatal(err)
	}
	cdWork, gcWork := 0, 0
	for _, r := range rows {
		if !r.CDTime.OK() {
			t.Errorf("%s: CD failed", r.Dataset)
		}
		cdWork += r.CDRecords
		if r.Dataset == "tencent-s" {
			if !r.GCSkipped {
				t.Error("tencent-s must be excluded from GC, as in the paper")
			}
			continue
		}
		if !r.GCTime.OK() {
			t.Errorf("%s: GC failed", r.Dataset)
		}
		gcWork += r.GCRecords
	}
	if cdWork == 0 {
		t.Error("CD found nothing anywhere")
	}
	if gcWork == 0 {
		t.Error("GC found nothing anywhere")
	}
}

func TestFigure8Shape(t *testing.T) {
	series, err := Figure8(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		if len(s.ModelSecs) != 6 {
			t.Fatalf("%s: %d points", s.App, len(s.ModelSecs))
		}
		// Monotone non-increasing with threads.
		for i := 1; i < len(s.ModelSecs); i++ {
			if s.ModelSecs[i] > s.ModelSecs[i-1]*1.01 {
				t.Errorf("%s: vertical model not monotone: %v", s.App, s.ModelSecs)
				break
			}
		}
	}
	// The heavy workload (MCF) must show real speedup before saturating.
	for _, s := range series {
		if s.App == "mcf" && s.ModelSecs[0] < 2*s.ModelSecs[len(s.ModelSecs)-1] {
			t.Errorf("mcf vertical speedup too small: %v", s.ModelSecs)
		}
	}
}

func TestFigure9Shape(t *testing.T) {
	series, err := Figure9(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("want 4 series (2 apps × 2 thread counts), got %d", len(series))
	}
	for _, s := range series {
		for _, v := range s.ModelSecs {
			if v <= 0 {
				t.Fatalf("%s: nonpositive model value %v", s.App, s.ModelSecs)
			}
		}
	}
}

func TestFigure10Shape(t *testing.T) {
	rows, err := Figure10(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Each engine × dataset × width present; every successful BSP run is
	// slower than the corresponding batch-engine run (no exceptions seen
	// in the paper's Figure 10 either).
	if len(rows) != 2*4*4 {
		t.Fatalf("rows=%d", len(rows))
	}
	byKey := map[string]Cell{}
	for _, r := range rows {
		byKey[r.Engine+"/"+r.Dataset+"/"+itoa(r.Workers)] = r.Time
	}
	for _, ds := range []string{"skitter-s", "orkut-s"} {
		for _, w := range []int{5, 10, 15, 20} {
			g := byKey["giraph-like/"+ds+"/"+itoa(w)]
			b := byKey["gthinker-like/"+ds+"/"+itoa(w)]
			if g.OK() && b.OK() && g.Seconds < b.Seconds {
				t.Errorf("%s w=%d: giraph-like (%0.3f) beat gthinker-like (%0.3f)", ds, w, g.Seconds, b.Seconds)
			}
		}
	}
}

func itoa(x int) string {
	if x == 0 {
		return "0"
	}
	var b []byte
	for x > 0 {
		b = append([]byte{byte('0' + x%10)}, b...)
		x /= 10
	}
	return string(b)
}

func TestFigure11Shape(t *testing.T) {
	rows, err := Figure11(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Partitioner == "bdg" {
			if r.EdgeCut >= 0.70 {
				t.Errorf("%s/%s: BDG edge cut %.2f not better than hash (~0.75)", r.App, r.Dataset, r.EdgeCut)
			}
			if r.PartitionSecs <= 0 {
				t.Errorf("%s/%s: BDG partitioning time missing", r.App, r.Dataset)
			}
		}
	}
}
