package exp

import (
	"fmt"
	"text/tabwriter"
	"time"

	"gminer/internal/algo"
	"gminer/internal/baseline"
	"gminer/internal/gen"
	"gminer/internal/graph"
)

// ---------------------------------------------------------------------------
// Table 1: performance of maximum clique finding across systems on Orkut.

// Table1Row is one engine's row.
type Table1Row struct {
	System  string
	Cores   int
	MemGB   float64
	NetGB   float64
	CPUUtil float64
	Time    Cell
	Note    string
}

// Table1Result holds the full table.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 reproduces Table 1: MCF on orkut-s across the five engines.
func Table1(o Options) (*Table1Result, error) {
	o = o.defaults()
	g, err := gen.Build(gen.Orkut, o.Scale)
	if err != nil {
		return nil, err
	}
	res := &Table1Result{}
	cores := o.Workers * o.Threads

	// Single-threaded baseline (always succeeds, slowly).
	best, st, _ := baseline.Single{}.MCF(g, blConfig(o, 1, 1))
	res.Rows = append(res.Rows, Table1Row{
		System: "single-thread", Cores: 1,
		MemGB: gb(st.PeakMem), CPUUtil: 1.0,
		Time: Cell{Seconds: st.Elapsed.Seconds()},
		Note: fmt.Sprintf("succeed (max clique %d)", best),
	})

	// Arabesque-like.
	_, sa, errA := baseline.Embed{}.MCF(g, blConfig(o, o.Workers, o.Threads))
	res.Rows = append(res.Rows, Table1Row{
		System: baseline.Embed{}.Name(), Cores: cores,
		MemGB: gb(sa.PeakMem), NetGB: gb(sa.NetBytes), CPUUtil: sa.CPUUtil,
		Time: cellFor(errA, sa.Elapsed), Note: noteFor(errA),
	})

	// Giraph-like.
	_, sg, errG := baseline.BSP{}.MCF(g, blConfig(o, o.Workers, o.Threads))
	res.Rows = append(res.Rows, Table1Row{
		System: baseline.BSP{}.Name(), Cores: cores,
		MemGB: gb(sg.PeakMem), NetGB: gb(sg.NetBytes), CPUUtil: sg.CPUUtil,
		Time: cellFor(errG, sg.Elapsed), Note: noteFor(errG),
	})

	// GraphX-like.
	_, sx, errX := baseline.BSP{Dataflow: true}.MCF(g, blConfig(o, o.Workers, o.Threads))
	res.Rows = append(res.Rows, Table1Row{
		System: baseline.BSP{Dataflow: true}.Name(), Cores: cores,
		MemGB: gb(sx.PeakMem), NetGB: gb(sx.NetBytes), CPUUtil: sx.CPUUtil,
		Time: cellFor(errX, sx.Elapsed), Note: noteFor(errX),
	})

	// G-thinker-like.
	_, sb, errB := baseline.Batch{}.Run(g, algo.NewMaxClique(), blConfig(o, o.Workers, o.Threads))
	res.Rows = append(res.Rows, Table1Row{
		System: baseline.Batch{}.Name(), Cores: cores,
		MemGB: gb(sb.PeakMem), NetGB: gb(sb.NetBytes), CPUUtil: sb.CPUUtil,
		Time: cellFor(errB, sb.Elapsed), Note: noteFor(errB),
	})

	// G-Miner.
	gres, cell := gminerRun(g, algo.NewMaxClique(), gmConfig(o, o.Workers, o.Threads), o.Timeout)
	row := Table1Row{System: "g-miner", Cores: cores, Time: cell, Note: noteForCell(cell)}
	if gres != nil {
		row.MemGB = gb(gres.Total.PeakBytes)
		row.NetGB = gb(gres.Total.NetBytes)
		row.CPUUtil = gres.Total.CPUUtil(gres.Elapsed, cores)
	}
	res.Rows = append(res.Rows, row)

	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Table 1: maximum clique finding on orkut-s")
	fmt.Fprintln(tw, "System\tCores\tMem(GB)\tNet(GB)\tCPU Util\tTime(s)\tNote")
	for _, r := range res.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.3f\t%s\t%s\t%s\n",
			r.System, r.Cores, r.MemGB, r.NetGB, fmtPct(r.CPUUtil), r.Time, r.Note)
	}
	tw.Flush()
	return res, nil
}

func gb(b int64) float64 { return float64(b) / float64(1<<30) }

func noteFor(err error) string {
	switch {
	case err == nil:
		return "succeed"
	case isOOM(err):
		return "OOM"
	default:
		return "timeout"
	}
}

func noteForCell(c Cell) string {
	if c.OK() {
		return "succeed"
	}
	return "timeout"
}

// ---------------------------------------------------------------------------
// Table 2: dataset statistics.

// Table2 prints and returns the Table 2 rows for all six presets.
func Table2(o Options) ([]graph.Stats, error) {
	o = o.defaults()
	var rows []graph.Stats
	for _, p := range gen.Presets() {
		g, err := gen.Build(p, o.Scale)
		if err != nil {
			return nil, err
		}
		rows = append(rows, graph.ComputeStats(string(p), g))
	}
	fmt.Fprintln(o.Out, "Table 2: graph datasets (scaled-down synthetic stand-ins)")
	for _, r := range rows {
		fmt.Fprintln(o.Out, "  "+r.String())
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Table 3: TC and MCF elapsed time across systems and datasets.

// Table3Result maps app → dataset → engine → cell.
type Table3Result struct {
	Engines []string
	// Cells[app][dataset][engineIdx]
	Cells map[string]map[string][]Cell
}

// Table3 reproduces Table 3 over the four non-attributed presets.
func Table3(o Options) (*Table3Result, error) {
	o = o.defaults()
	res := &Table3Result{
		Engines: []string{
			baseline.Embed{}.Name(), baseline.BSP{}.Name(),
			baseline.BSP{Dataflow: true}.Name(), baseline.Batch{}.Name(), "g-miner",
		},
		Cells: map[string]map[string][]Cell{"tc": {}, "mcf": {}},
	}
	for _, p := range gen.NonAttributed() {
		g, err := gen.Build(p, o.Scale)
		if err != nil {
			return nil, err
		}
		bcfg := blConfig(o, o.Workers, o.Threads)

		var tcCells, mcfCells []Cell
		_, s, errE := baseline.Embed{}.TC(g, bcfg)
		tcCells = append(tcCells, cellFor(errE, s.Elapsed))
		_, s, errG := baseline.BSP{}.TC(g, bcfg)
		tcCells = append(tcCells, cellFor(errG, s.Elapsed))
		_, s, errX := baseline.BSP{Dataflow: true}.TC(g, bcfg)
		tcCells = append(tcCells, cellFor(errX, s.Elapsed))
		_, s, errB := baseline.Batch{}.Run(g, algo.NewTriangleCount(), bcfg)
		tcCells = append(tcCells, cellFor(errB, s.Elapsed))
		_, cell := gminerRun(g, algo.NewTriangleCount(), gmConfig(o, o.Workers, o.Threads), o.Timeout)
		tcCells = append(tcCells, cell)
		res.Cells["tc"][string(p)] = tcCells

		_, s, errE = baseline.Embed{}.MCF(g, bcfg)
		mcfCells = append(mcfCells, cellFor(errE, s.Elapsed))
		_, s, errG = baseline.BSP{}.MCF(g, bcfg)
		mcfCells = append(mcfCells, cellFor(errG, s.Elapsed))
		_, s, errX = baseline.BSP{Dataflow: true}.MCF(g, bcfg)
		mcfCells = append(mcfCells, cellFor(errX, s.Elapsed))
		_, s, errB = baseline.Batch{}.Run(g, algo.NewMaxClique(), bcfg)
		mcfCells = append(mcfCells, cellFor(errB, s.Elapsed))
		_, cell = gminerRun(g, algo.NewMaxClique(), gmConfig(o, o.Workers, o.Threads), o.Timeout)
		mcfCells = append(mcfCells, cell)
		res.Cells["mcf"][string(p)] = mcfCells
	}

	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Table 3: elapsed running time in seconds ('-': timeout; 'x': OOM)")
	fmt.Fprint(tw, "App\tDataset")
	for _, e := range res.Engines {
		fmt.Fprintf(tw, "\t%s", e)
	}
	fmt.Fprintln(tw)
	for _, app := range []string{"tc", "mcf"} {
		for _, p := range gen.NonAttributed() {
			fmt.Fprintf(tw, "%s\t%s", app, p)
			for _, c := range res.Cells[app][string(p)] {
				fmt.Fprintf(tw, "\t%s", c)
			}
			fmt.Fprintln(tw)
		}
	}
	tw.Flush()
	return res, nil
}

// ---------------------------------------------------------------------------
// Table 4: GM — G-Miner vs the G-thinker-like engine in detail.

// Table4Row compares the two engines on one dataset.
type Table4Row struct {
	Dataset     string
	Matched     int64
	GMinerTime  Cell
	BatchTime   Cell
	GMinerCPU   float64
	BatchCPU    float64
	GMinerMemGB float64
	BatchMemGB  float64
	GMinerNetGB float64
	BatchNetGB  float64
}

// Table4 reproduces Table 4 on the four labeled presets.
func Table4(o Options) ([]Table4Row, error) {
	o = o.defaults()
	var rows []Table4Row
	p := algo.FigurePattern()
	for _, preset := range gen.NonAttributed() {
		g := buildLabeled(preset, o.Scale)
		row := Table4Row{Dataset: string(preset)}

		gres, cell := gminerRun(g, algo.NewGraphMatch(p), gmConfig(o, o.Workers, o.Threads), o.Timeout)
		row.GMinerTime = cell
		if gres != nil {
			row.Matched, _ = gres.AggGlobal.(int64)
			row.GMinerCPU = gres.Total.CPUUtil(gres.Elapsed, o.Workers*o.Threads)
			row.GMinerMemGB = gb(gres.Total.PeakBytes)
			row.GMinerNetGB = gb(gres.Total.NetBytes)
		}

		bres, bs, errB := baseline.Batch{}.Run(g, algo.NewGraphMatch(p), blConfig(o, o.Workers, o.Threads))
		row.BatchTime = cellFor(errB, bs.Elapsed)
		row.BatchCPU = bs.CPUUtil
		row.BatchMemGB = gb(bs.PeakMem)
		row.BatchNetGB = gb(bs.NetBytes)
		if errB == nil && gres != nil {
			if got, _ := bres.AggGlobal.(int64); got != row.Matched {
				return nil, fmt.Errorf("table4: engines disagree on %s: gminer %d batch %d", preset, row.Matched, got)
			}
		}
		rows = append(rows, row)
	}

	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Table 4: GM — g-miner vs gthinker-like")
	fmt.Fprintln(tw, "Dataset\tMatched\tTime g-miner\tTime gthinker\tCPU g-miner\tCPU gthinker\tMem g-miner\tMem gthinker\tNet g-miner\tNet gthinker")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%s\t%.3fGB\t%.3fGB\t%.4fGB\t%.4fGB\n",
			r.Dataset, r.Matched, r.GMinerTime, r.BatchTime,
			fmtPct(r.GMinerCPU), fmtPct(r.BatchCPU),
			r.GMinerMemGB, r.BatchMemGB, r.GMinerNetGB, r.BatchNetGB)
	}
	tw.Flush()
	return rows, nil
}

// ---------------------------------------------------------------------------
// Table 5: CD and GC on G-Miner (no other engine can run them).

// Table5Row is one dataset's CD/GC outcome.
type Table5Row struct {
	Dataset   string
	CDTime    Cell
	CDMemGB   float64
	CDRecords int
	GCTime    Cell
	GCMemGB   float64
	GCRecords int
	GCSkipped bool // Tencent is excluded from GC, as in the paper
}

// Table5 reproduces Table 5 on the five attributed(-ized) presets.
func Table5(o Options) ([]Table5Row, error) {
	o = o.defaults()
	presets := []gen.Preset{gen.Skitter, gen.Orkut, gen.Friendster, gen.DBLP, gen.Tencent}
	var rows []Table5Row
	for _, preset := range presets {
		g, err := gen.BuildAttributed(preset, o.Scale)
		if err != nil {
			return nil, err
		}
		row := Table5Row{Dataset: string(preset)}

		cd := algo.NewCommunityDetect(0.6, 4)
		cres, cell := gminerRun(g, cd, gmConfig(o, o.Workers, o.Threads), o.Timeout)
		row.CDTime = cell
		if cres != nil {
			row.CDMemGB = gb(cres.Total.PeakBytes)
			row.CDRecords = len(cres.Records)
		}

		if preset == gen.Tencent {
			// "we excluded Tencent for GC because its graph format does
			// not fit the algorithm" — its high-dimensional tag vectors
			// have no shared exemplar dimensioning.
			row.GCSkipped = true
		} else {
			// A softer focus threshold than the defaults: with the
			// synthetic uniform attributes a 0.8 cutoff leaves almost no
			// focus vertices, which would make GC trivially cheap.
			exemplar := g.VertexAt(0).Attrs
			gc := algo.NewGraphCluster([][]int32{exemplar}, 0.55, 0.2, 3)
			gres, cell := gminerRun(g, gc, gmConfig(o, o.Workers, o.Threads), o.Timeout)
			row.GCTime = cell
			if gres != nil {
				row.GCMemGB = gb(gres.Total.PeakBytes)
				row.GCRecords = len(gres.Records)
			}
		}
		rows = append(rows, row)
	}

	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Table 5: CD and GC on g-miner ('~': dataset excluded)")
	fmt.Fprintln(tw, "Dataset\tCD Time(s)\tCD Mem(GB)\tCD results\tGC Time(s)\tGC Mem(GB)\tGC results")
	for _, r := range rows {
		gcTime, gcMem, gcRec := r.GCTime.String(), fmt.Sprintf("%.3f", r.GCMemGB), fmt.Sprintf("%d", r.GCRecords)
		if r.GCSkipped {
			gcTime, gcMem, gcRec = "~", "~", "~"
		}
		fmt.Fprintf(tw, "%s\t%s\t%.3f\t%d\t%s\t%s\t%s\n",
			r.Dataset, r.CDTime, r.CDMemGB, r.CDRecords, gcTime, gcMem, gcRec)
	}
	tw.Flush()
	return rows, nil
}

var _ = time.Second
