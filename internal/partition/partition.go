// Package partition implements static load balancing (§6.1): the default
// hash partitioner and the paper's Block-based Deterministic Greedy (BDG)
// partitioner, which first cuts the graph into locality-preserving blocks
// with a multi-source bounded BFS coloring (plus a Hash-Min connected
// components pass for leftover tiny components) and then assigns blocks to
// workers with the deterministic greedy rule of Eq. (1):
//
//	j = argmax_i |P(i) ∩ Γ(B)| · (1 − |P(i)|/C)
package partition

import (
	"fmt"
	"math/rand"
	"sort"

	"gminer/internal/graph"
	"gminer/internal/lsh"
)

// Assignment maps every vertex to its owning worker in [0, K).
//
// Two representations back it: a per-vertex owner map (Hash, Skewed, BDG)
// or a per-block owner map plus a block shift (Blocked) — the block form is
// O(#blocks) to rebuild, which is what makes incremental repartitioning
// under graph mutations cheap (see internal/dyngraph).
type Assignment struct {
	K     int
	owner map[graph.VertexID]int

	// Block-backed form: owner of block (id >> blockShift). Exactly one of
	// owner / blockOwner is non-nil.
	blockOwner map[int64]int
	blockShift uint
	blockSizes []int // per-worker vertex counts, precomputed by Assign
}

// Owner returns the worker owning id; -1 if unknown.
func (a *Assignment) Owner(id graph.VertexID) int {
	if a.blockOwner != nil {
		if w, ok := a.blockOwner[int64(id)>>a.blockShift]; ok {
			return w
		}
		return -1
	}
	if w, ok := a.owner[id]; ok {
		return w
	}
	return -1
}

// Sizes returns the number of vertices per worker.
func (a *Assignment) Sizes() []int {
	if a.blockSizes != nil {
		return append([]int(nil), a.blockSizes...)
	}
	sizes := make([]int, a.K)
	for _, w := range a.owner {
		sizes[w]++
	}
	return sizes
}

// BlockShift returns the block shift of a block-backed assignment, or
// (0, false) for a vertex-backed one.
func (a *Assignment) BlockShift() (uint, bool) {
	return a.blockShift, a.blockOwner != nil
}

// BlockOwners returns the block→worker map of a block-backed assignment
// (nil for a vertex-backed one). The map is shared, not copied: callers
// must treat it as read-only.
func (a *Assignment) BlockOwners() map[int64]int { return a.blockOwner }

// EdgeCut returns the fraction of edges whose endpoints live on different
// workers — the locality measure BDG optimizes.
func (a *Assignment) EdgeCut(g *graph.Graph) float64 {
	var cut, total int64
	g.ForEach(func(v *graph.Vertex) bool {
		for _, n := range v.Adj {
			if n > v.ID { // count each undirected edge once
				total++
				if a.Owner(v.ID) != a.Owner(n) {
					cut++
				}
			}
		}
		return true
	})
	if total == 0 {
		return 0
	}
	return float64(cut) / float64(total)
}

// Local returns the vertex IDs owned by worker w, in graph order.
func (a *Assignment) Local(g *graph.Graph, w int) []graph.VertexID {
	var out []graph.VertexID
	g.ForEach(func(v *graph.Vertex) bool {
		if a.Owner(v.ID) == w {
			out = append(out, v.ID)
		}
		return true
	})
	return out
}

// Validate checks that every graph vertex is assigned to a valid worker.
func (a *Assignment) Validate(g *graph.Graph) error {
	bad := 0
	g.ForEach(func(v *graph.Vertex) bool {
		if w := a.Owner(v.ID); w < 0 || w >= a.K {
			bad++
		}
		return true
	})
	if bad > 0 {
		return fmt.Errorf("partition: %d vertices unassigned or out of range", bad)
	}
	return nil
}

// Partitioner assigns graph vertices to K workers.
type Partitioner interface {
	Name() string
	Partition(g *graph.Graph, k int) (*Assignment, error)
}

// Hash is the baseline random-hash partitioner ("distributes each vertex
// to workers by hashing the vertex ID", §8.4).
type Hash struct{}

// Name implements Partitioner.
func (Hash) Name() string { return "hash" }

// Partition implements Partitioner.
func (Hash) Partition(g *graph.Graph, k int) (*Assignment, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: k must be >= 1, got %d", k)
	}
	a := &Assignment{K: k, owner: make(map[graph.VertexID]int, g.NumVertices())}
	g.ForEach(func(v *graph.Vertex) bool {
		a.owner[v.ID] = int(lsh.HashID(uint64(v.ID)) % uint64(k))
		return true
	})
	return a, nil
}

// Skewed deliberately imbalances ownership for the task-stealing ablation
// (Figure 13 needs a skewed workload): worker 0 receives `Bias` fraction
// of all vertices, the rest are hashed across the other workers.
type Skewed struct {
	Bias float64 // fraction of vertices forced onto worker 0 (e.g. 0.6)
}

// Name implements Partitioner.
func (s Skewed) Name() string { return fmt.Sprintf("skewed(%.2f)", s.Bias) }

// Partition implements Partitioner.
func (s Skewed) Partition(g *graph.Graph, k int) (*Assignment, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: k must be >= 1, got %d", k)
	}
	a := &Assignment{K: k, owner: make(map[graph.VertexID]int, g.NumVertices())}
	g.ForEach(func(v *graph.Vertex) bool {
		h := lsh.HashID(uint64(v.ID))
		if k == 1 || float64(h%1000)/1000.0 < s.Bias {
			a.owner[v.ID] = 0
		} else {
			a.owner[v.ID] = 1 + int((h>>10)%uint64(k-1))
		}
		return true
	})
	return a, nil
}

// BDG is the Block-based Deterministic Greedy partitioner (§6.1).
type BDG struct {
	// Steps bounds the BFS depth from each source per coloring round
	// ("we set the number of steps taken by BFS from each source to a
	// small value"). Default 3.
	Steps int
	// SourceFrac is the fraction of uncolored vertices sampled as sources
	// per round. Default 0.01 (at least 1).
	SourceFrac float64
	// MaxRounds of BFS coloring before falling back to Hash-Min connected
	// components on the remaining uncolored vertices. Default 8.
	MaxRounds int
	// Seed for source sampling.
	Seed int64
}

// Name implements Partitioner.
func (BDG) Name() string { return "bdg" }

func (b BDG) defaults() BDG {
	if b.Steps <= 0 {
		b.Steps = 3
	}
	if b.SourceFrac <= 0 {
		b.SourceFrac = 0.01
	}
	if b.MaxRounds <= 0 {
		b.MaxRounds = 8
	}
	return b
}

// Partition implements Partitioner.
func (b BDG) Partition(g *graph.Graph, k int) (*Assignment, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: k must be >= 1, got %d", k)
	}
	b = b.defaults()
	color := b.colorBlocks(g)
	blocks := groupBlocks(g, color)
	return b.assignBlocks(g, blocks, color, k)
}

// colorBlocks runs the multi-source bounded BFS coloring; any vertices
// still uncolored after MaxRounds are grouped into connected components by
// Hash-Min, "and then simply consider each CC as a block".
func (b BDG) colorBlocks(g *graph.Graph) map[graph.VertexID]int32 {
	rng := rand.New(rand.NewSource(b.Seed))
	n := g.NumVertices()
	color := make(map[graph.VertexID]int32, n)
	var nextColor int32

	uncolored := make([]graph.VertexID, 0, n)
	g.ForEach(func(v *graph.Vertex) bool {
		uncolored = append(uncolored, v.ID)
		return true
	})

	for round := 0; round < b.MaxRounds && len(uncolored) > 0; round++ {
		// Sample sources from the uncolored set.
		numSources := int(float64(len(uncolored)) * b.SourceFrac)
		if numSources < 1 {
			numSources = 1
		}
		rng.Shuffle(len(uncolored), func(i, j int) {
			uncolored[i], uncolored[j] = uncolored[j], uncolored[i]
		})
		frontier := make([]graph.VertexID, 0, numSources)
		for _, id := range uncolored[:numSources] {
			if _, ok := color[id]; ok {
				continue
			}
			color[id] = nextColor
			nextColor++
			frontier = append(frontier, id)
		}
		// Bounded-step synchronous BFS: colored frontier vertices
		// broadcast their color; uncolored receivers adopt one.
		for step := 0; step < b.Steps && len(frontier) > 0; step++ {
			var next []graph.VertexID
			for _, id := range frontier {
				c := color[id]
				for _, nb := range g.Vertex(id).Adj {
					if _, ok := color[nb]; !ok {
						color[nb] = c
						next = append(next, nb)
					}
				}
			}
			frontier = next
		}
		// Compact the uncolored list.
		out := uncolored[:0]
		for _, id := range uncolored {
			if _, ok := color[id]; !ok {
				out = append(out, id)
			}
		}
		uncolored = out
	}

	if len(uncolored) > 0 {
		b.hashMinCC(g, color, uncolored, &nextColor)
	}
	return color
}

// hashMinCC assigns each remaining connected component (within the
// uncolored subgraph) a fresh color via min-ID label propagation
// (Hash-Min [39]).
func (b BDG) hashMinCC(g *graph.Graph, color map[graph.VertexID]int32, uncolored []graph.VertexID, nextColor *int32) {
	label := make(map[graph.VertexID]graph.VertexID, len(uncolored))
	for _, id := range uncolored {
		label[id] = id
	}
	changed := true
	for changed {
		changed = false
		for _, id := range uncolored {
			min := label[id]
			for _, nb := range g.Vertex(id).Adj {
				if l, ok := label[nb]; ok && l < min {
					min = l
				}
			}
			if min < label[id] {
				label[id] = min
				changed = true
			}
		}
	}
	ccColor := make(map[graph.VertexID]int32)
	for _, id := range uncolored {
		root := label[id]
		c, ok := ccColor[root]
		if !ok {
			c = *nextColor
			*nextColor++
			ccColor[root] = c
		}
		color[id] = c
	}
}

// groupBlocks collects block membership from the coloring.
func groupBlocks(g *graph.Graph, color map[graph.VertexID]int32) [][]graph.VertexID {
	byColor := make(map[int32][]graph.VertexID)
	g.ForEach(func(v *graph.Vertex) bool {
		c := color[v.ID]
		byColor[c] = append(byColor[c], v.ID)
		return true
	})
	blocks := make([][]graph.VertexID, 0, len(byColor))
	for _, members := range byColor {
		blocks = append(blocks, members)
	}
	// "We sort the blocks in descending order of their sizes and then
	// start the assignment from the largest block." Ties broken by first
	// member ID for determinism.
	sort.Slice(blocks, func(i, j int) bool {
		if len(blocks[i]) != len(blocks[j]) {
			return len(blocks[i]) > len(blocks[j])
		}
		return blocks[i][0] < blocks[j][0]
	})
	return blocks
}

// assignBlocks applies the deterministic greedy rule (Eq. 1).
func (b BDG) assignBlocks(g *graph.Graph, blocks [][]graph.VertexID, color map[graph.VertexID]int32, k int) (*Assignment, error) {
	a := &Assignment{K: k, owner: make(map[graph.VertexID]int, g.NumVertices())}
	partSize := make([]int, k)
	capacity := float64(g.NumVertices()) / float64(k)
	if capacity < 1 {
		capacity = 1
	}
	for _, members := range blocks {
		// overlap[i] = |P(i) ∩ Γ(B)|: neighbors of B already on worker i.
		overlap := make([]float64, k)
		for _, id := range members {
			for _, nb := range g.Vertex(id).Adj {
				if w, ok := a.owner[nb]; ok {
					overlap[w]++
				}
			}
		}
		best, bestScore := 0, -1.0
		for i := 0; i < k; i++ {
			score := overlap[i] * (1 - float64(partSize[i])/capacity)
			// With zero overlap everywhere the score ties at 0; prefer
			// the emptiest worker so sizes stay balanced.
			if score > bestScore || (score == bestScore && partSize[i] < partSize[best]) {
				best, bestScore = i, score
			}
		}
		// A full worker must not keep absorbing blocks on stale overlap:
		// if the chosen worker is already over capacity, fall back to the
		// least loaded one.
		if float64(partSize[best]) >= capacity {
			least := 0
			for i := 1; i < k; i++ {
				if partSize[i] < partSize[least] {
					least = i
				}
			}
			best = least
		}
		for _, id := range members {
			a.owner[id] = best
		}
		partSize[best] += len(members)
	}
	return a, nil
}
