package partition_test

import (
	"testing"
	"testing/quick"

	"gminer/internal/gen"
	"gminer/internal/graph"
	"gminer/internal/partition"
)

func testGraph() *graph.Graph {
	return gen.RMAT(gen.RMATConfig{Scale: 9, Edges: 4000, Seed: 3})
}

func TestHashCoversAllVertices(t *testing.T) {
	g := testGraph()
	a, err := partition.Hash{}.Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestHashBalance(t *testing.T) {
	g := testGraph()
	a, _ := partition.Hash{}.Partition(g, 4)
	sizes := a.Sizes()
	fair := g.NumVertices() / 4
	for i, s := range sizes {
		if s < fair/2 || s > fair*2 {
			t.Fatalf("partition %d badly balanced: %d (fair %d)", i, s, fair)
		}
	}
}

func TestBDGCoversAllVertices(t *testing.T) {
	g := testGraph()
	a, err := partition.BDG{Seed: 1}.Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestBDGBalance(t *testing.T) {
	g := testGraph()
	a, _ := partition.BDG{Seed: 1}.Partition(g, 4)
	sizes := a.Sizes()
	fair := g.NumVertices() / 4
	for i, s := range sizes {
		// partition.BDG trades some balance for locality; allow 3x fair share.
		if s > 3*fair {
			t.Fatalf("partition %d holds %d of fair %d", i, s, fair)
		}
	}
}

func TestBDGBeatsHashOnEdgeCut(t *testing.T) {
	// The point of §6.1: block-preserving assignment cuts fewer edges
	// than random hashing, which is what reduces remote pulls (Fig. 11).
	g := testGraph()
	hashA, _ := partition.Hash{}.Partition(g, 4)
	bdgA, _ := partition.BDG{Seed: 1}.Partition(g, 4)
	hc := hashA.EdgeCut(g)
	bc := bdgA.EdgeCut(g)
	if bc >= hc {
		t.Fatalf("partition.BDG cut %.3f not better than hash cut %.3f", bc, hc)
	}
}

func TestBDGHandlesDisconnectedComponents(t *testing.T) {
	// Many tiny components exercise the partition.Hash-Min CC fallback.
	g := graph.New(300)
	for i := 0; i < 100; i++ {
		base := graph.VertexID(i * 3)
		g.AddEdge(base, base+1)
		g.AddEdge(base+1, base+2)
	}
	g.Freeze()
	a, err := partition.BDG{Steps: 1, SourceFrac: 0.001, MaxRounds: 2, Seed: 5}.Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Components are blocks: no triple should be split.
	for i := 0; i < 100; i++ {
		base := graph.VertexID(i * 3)
		w := a.Owner(base)
		if a.Owner(base+1) != w || a.Owner(base+2) != w {
			t.Fatalf("component %d split across workers", i)
		}
	}
}

func TestSkewedBias(t *testing.T) {
	g := testGraph()
	a, err := partition.Skewed{Bias: 0.7}.Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	sizes := a.Sizes()
	if float64(sizes[0]) < 0.55*float64(g.NumVertices()) {
		t.Fatalf("worker 0 got %d of %d; bias not applied", sizes[0], g.NumVertices())
	}
}

func TestSingleWorker(t *testing.T) {
	g := testGraph()
	for _, p := range []partition.Partitioner{partition.Hash{}, partition.BDG{Seed: 2}, partition.Skewed{Bias: 0.5}} {
		a, err := p.Partition(g, 1)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if a.EdgeCut(g) != 0 {
			t.Fatalf("%s: nonzero edge cut with one worker", p.Name())
		}
	}
}

func TestInvalidK(t *testing.T) {
	g := testGraph()
	for _, p := range []partition.Partitioner{partition.Hash{}, partition.BDG{}, partition.Skewed{}} {
		if _, err := p.Partition(g, 0); err == nil {
			t.Fatalf("%s: expected error for k=0", p.Name())
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.New(0)
	g.Freeze()
	a, err := partition.BDG{}.Partition(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestOwnerUnknown(t *testing.T) {
	g := testGraph()
	a, _ := partition.Hash{}.Partition(g, 2)
	if a.Owner(graph.VertexID(1<<40)) != -1 {
		t.Fatal("unknown vertex should map to -1")
	}
}

// Property: every partitioner assigns every vertex to a worker in range,
// for arbitrary graphs and worker counts.
func TestQuickAssignmentsComplete(t *testing.T) {
	f := func(edges []uint16, k8 uint8) bool {
		k := int(k8%7) + 1
		g := graph.New(64)
		for i := 0; i+1 < len(edges); i += 2 {
			g.AddEdge(graph.VertexID(edges[i]%128), graph.VertexID(edges[i+1]%128))
		}
		g.AddVertex(200) // isolated
		g.Freeze()
		for _, p := range []partition.Partitioner{partition.Hash{}, partition.BDG{Seed: int64(k8)}} {
			a, err := p.Partition(g, k)
			if err != nil || a.Validate(g) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
