package partition

import (
	"fmt"
	"sort"

	"gminer/internal/graph"
)

// Blocked is a block-decomposable deterministic greedy partitioner built
// for dynamic graphs. Blocks are fixed ID ranges (block = id >> Shift)
// instead of BDG's BFS coloring, so block membership of a vertex never
// depends on the rest of the graph; the per-block aggregates (sizes and
// cross-block edge counts) that drive the greedy placement are maintainable
// in O(ops) under mutation. Placement itself is the same Eq. (1) rule as
// BDG — j = argmax_i |P(i) ∩ Γ(B)| · (1 − |P(i)|/C) — evaluated on block
// aggregates, so re-running it after a mutation batch costs O(#blocks ·
// k + #cross-block-pairs), independent of |V|.
//
// The crucial property for the dynamic path: Partition from scratch and an
// incrementally maintained BlockAgg produce *identical* assignments for
// the same graph, because both reduce to Assign on the same aggregate
// values (all-integer accumulation, no iteration-order-dependent float
// sums).
type Blocked struct {
	// Shift selects the block granularity: vertices u and w share a block
	// iff u>>Shift == w>>Shift. Default 8 (256-ID ranges).
	Shift uint
}

// DefaultBlockShift is the block granularity used when Blocked.Shift is 0.
const DefaultBlockShift uint = 8

func (b Blocked) shift() uint {
	if b.Shift == 0 {
		return DefaultBlockShift
	}
	return b.Shift
}

// Name implements Partitioner.
func (Blocked) Name() string { return "blocked" }

// Partition implements Partitioner.
func (b Blocked) Partition(g *graph.Graph, k int) (*Assignment, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: k must be >= 1, got %d", k)
	}
	return CollectBlocks(g, b.shift()).Assign(k), nil
}

// BlockAgg holds the per-block aggregates the Blocked greedy needs: block
// sizes and symmetric cross-block edge counts. It is a pure function of
// the graph (CollectBlocks) and is incrementally maintainable: apply
// AddVertex/DelVertex/AddEdge/DelEdge mirroring each graph mutation and
// the aggregate stays equal to a from-scratch CollectBlocks of the mutated
// graph. Entries that reach zero are deleted so the map *contents* match
// exactly, not just the values.
type BlockAgg struct {
	Shift uint
	Size  map[int64]int             // block → #vertices (no zero entries)
	Edges map[int64]map[int64]int64 // block → neighbor block → edge count, stored both directions
}

// NewBlockAgg returns an empty aggregate with the given shift.
func NewBlockAgg(shift uint) *BlockAgg {
	return &BlockAgg{
		Shift: shift,
		Size:  make(map[int64]int),
		Edges: make(map[int64]map[int64]int64),
	}
}

// CollectBlocks computes the aggregate of g from scratch.
func CollectBlocks(g *graph.Graph, shift uint) *BlockAgg {
	a := NewBlockAgg(shift)
	g.ForEach(func(v *graph.Vertex) bool {
		a.AddVertex(v.ID)
		for _, nb := range v.Adj {
			if nb > v.ID { // each undirected edge once
				a.AddEdge(v.ID, nb)
			}
		}
		return true
	})
	return a
}

// Block returns the block of vertex id.
func (a *BlockAgg) Block(id graph.VertexID) int64 { return int64(id) >> a.Shift }

// AddVertex records vertex id joining the graph.
func (a *BlockAgg) AddVertex(id graph.VertexID) { a.Size[a.Block(id)]++ }

// DelVertex records vertex id leaving the graph (its incident edges must
// be removed separately via DelEdge).
func (a *BlockAgg) DelVertex(id graph.VertexID) {
	b := a.Block(id)
	if a.Size[b] <= 1 {
		delete(a.Size, b)
	} else {
		a.Size[b]--
	}
}

// AddEdge records the undirected edge {u, w} joining the graph.
func (a *BlockAgg) AddEdge(u, w graph.VertexID) { a.bumpEdge(a.Block(u), a.Block(w), 1) }

// DelEdge records the undirected edge {u, w} leaving the graph.
func (a *BlockAgg) DelEdge(u, w graph.VertexID) { a.bumpEdge(a.Block(u), a.Block(w), -1) }

func (a *BlockAgg) bumpEdge(bu, bw int64, d int64) {
	if bu == bw {
		return // intra-block edges never contribute to Eq. (1) overlap
	}
	a.bumpDir(bu, bw, d)
	a.bumpDir(bw, bu, d)
}

func (a *BlockAgg) bumpDir(from, to int64, d int64) {
	m := a.Edges[from]
	if m == nil {
		m = make(map[int64]int64)
		a.Edges[from] = m
	}
	if m[to] += d; m[to] <= 0 {
		delete(m, to)
		if len(m) == 0 {
			delete(a.Edges, from)
		}
	}
}

// NumVertices returns the total vertex count across all blocks.
func (a *BlockAgg) NumVertices() int {
	total := 0
	for _, s := range a.Size {
		total += s
	}
	return total
}

// Assign places every block on a worker with the deterministic greedy rule
// of Eq. (1) and returns the block-backed Assignment. The result is a pure
// function of the aggregate values and k: block order is (size desc, block
// ID asc) and overlap accumulates in integers, so map iteration order
// cannot leak into the placement.
func (a *BlockAgg) Assign(k int) *Assignment {
	type blk struct {
		id   int64
		size int
	}
	blocks := make([]blk, 0, len(a.Size))
	total := 0
	for id, size := range a.Size {
		blocks = append(blocks, blk{id, size})
		total += size
	}
	sort.Slice(blocks, func(i, j int) bool {
		if blocks[i].size != blocks[j].size {
			return blocks[i].size > blocks[j].size
		}
		return blocks[i].id < blocks[j].id
	})

	owner := make(map[int64]int, len(blocks))
	partSize := make([]int, k)
	capacity := float64(total) / float64(k)
	if capacity < 1 {
		capacity = 1
	}
	overlap := make([]int64, k)
	for _, b := range blocks {
		// overlap[i] = |P(i) ∩ Γ(B)| over already-placed blocks, counted
		// as cross-block edge multiplicity exactly like BDG counts
		// per-member neighbor occurrences.
		for i := range overlap {
			overlap[i] = 0
		}
		for nb, cnt := range a.Edges[b.id] {
			if w, ok := owner[nb]; ok {
				overlap[w] += cnt
			}
		}
		best, bestScore := 0, -1.0
		for i := 0; i < k; i++ {
			score := float64(overlap[i]) * (1 - float64(partSize[i])/capacity)
			if score > bestScore || (score == bestScore && partSize[i] < partSize[best]) {
				best, bestScore = i, score
			}
		}
		if float64(partSize[best]) >= capacity {
			least := 0
			for i := 1; i < k; i++ {
				if partSize[i] < partSize[least] {
					least = i
				}
			}
			best = least
		}
		owner[b.id] = best
		partSize[best] += b.size
	}
	return &Assignment{
		K:          k,
		blockOwner: owner,
		blockShift: a.Shift,
		blockSizes: partSize,
	}
}
