// External test package: gen now (transitively, via dyngraph's mutation
// batches) depends on partition, so an in-package test importing gen
// would be an import cycle.
package partition_test

import (
	"testing"

	"gminer/internal/gen"
	"gminer/internal/partition"
)

func BenchmarkHashPartition(b *testing.B) {
	g := gen.RMAT(gen.RMATConfig{Scale: 12, Edges: 40000, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (partition.Hash{}).Partition(g, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBDGPartition(b *testing.B) {
	g := gen.RMAT(gen.RMATConfig{Scale: 12, Edges: 40000, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (partition.BDG{Seed: int64(i)}).Partition(g, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEdgeCut(b *testing.B) {
	g := gen.RMAT(gen.RMATConfig{Scale: 12, Edges: 40000, Seed: 1})
	a, _ := partition.BDG{}.Partition(g, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.EdgeCut(g)
	}
}
