package partition

import (
	"testing"

	"gminer/internal/gen"
)

func BenchmarkHashPartition(b *testing.B) {
	g := gen.RMAT(gen.RMATConfig{Scale: 12, Edges: 40000, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Hash{}).Partition(g, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBDGPartition(b *testing.B) {
	g := gen.RMAT(gen.RMATConfig{Scale: 12, Edges: 40000, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (BDG{Seed: int64(i)}).Partition(g, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEdgeCut(b *testing.B) {
	g := gen.RMAT(gen.RMATConfig{Scale: 12, Edges: 40000, Seed: 1})
	a, _ := BDG{}.Partition(g, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.EdgeCut(g)
	}
}
