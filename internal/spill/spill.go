// Package spill writes and reads the task-store blocks that bound memory
// consumption (§4.3: "the task store keeps a subset of higher-priority
// tasks in memory, while the remaining tasks are kept on local disk").
//
// A Spiller hands out numbered blocks; each block is one file under the
// spill directory (or an in-memory byte buffer when no directory is
// configured, which tests and micro-benchmarks use). All traffic is
// charged to the metrics counters so disk I/O shows up on the Figure 5/6
// timelines.
package spill

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"gminer/internal/metrics"
	"gminer/internal/trace"
	"time"
)

// Spiller allocates, writes, reads and frees blocks of encoded bytes.
type Spiller struct {
	dir      string // empty → in-memory
	counters *metrics.Counters
	tr       trace.Handle

	mu     sync.Mutex
	nextID int
	mem    map[int][]byte // in-memory mode
}

// New returns a Spiller writing under dir; if dir is empty, blocks live in
// memory (still charged as "disk" traffic for accounting symmetry).
// counters may be nil.
func New(dir string, counters *metrics.Counters) (*Spiller, error) {
	s := &Spiller{dir: dir, counters: counters}
	if dir == "" {
		s.mem = make(map[int][]byte)
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("spill: %w", err)
	}
	return s, nil
}

// SetTrace attaches a trace handle for spill I/O spans and the spill
// latency histogram; call before the spiller is shared.
func (s *Spiller) SetTrace(h trace.Handle) { s.tr = h }

// Write stores data as a new block and returns its ID.
func (s *Spiller) Write(data []byte) (int, error) {
	s.mu.Lock()
	id := s.nextID
	s.nextID++
	s.mu.Unlock()

	var start time.Time
	if s.tr.Active() {
		start = time.Now()
	}
	if s.counters != nil {
		s.counters.AddDiskWrite(int64(len(data)))
	}
	if s.mem != nil {
		cp := append([]byte(nil), data...)
		s.mu.Lock()
		s.mem[id] = cp
		s.mu.Unlock()
		s.tr.ObserveSpan(trace.MetricSpillIO, trace.EvSpillWrite, start, uint64(len(data)))
		return id, nil
	}
	if err := os.WriteFile(s.path(id), data, 0o644); err != nil {
		return 0, fmt.Errorf("spill: write block %d: %w", id, err)
	}
	s.tr.ObserveSpan(trace.MetricSpillIO, trace.EvSpillWrite, start, uint64(len(data)))
	return id, nil
}

// Read loads a block's bytes.
func (s *Spiller) Read(id int) ([]byte, error) {
	var start time.Time
	if s.tr.Active() {
		start = time.Now()
	}
	var data []byte
	if s.mem != nil {
		s.mu.Lock()
		data = s.mem[id]
		s.mu.Unlock()
		if data == nil {
			return nil, fmt.Errorf("spill: block %d not found", id)
		}
	} else {
		var err error
		data, err = os.ReadFile(s.path(id))
		if err != nil {
			return nil, fmt.Errorf("spill: read block %d: %w", id, err)
		}
	}
	if s.counters != nil {
		s.counters.AddDiskRead(int64(len(data)))
	}
	s.tr.ObserveSpan(trace.MetricSpillIO, trace.EvSpillLoad, start, uint64(len(data)))
	return data, nil
}

// Free releases a block after it has been consumed.
func (s *Spiller) Free(id int) {
	if s.mem != nil {
		s.mu.Lock()
		delete(s.mem, id)
		s.mu.Unlock()
		return
	}
	_ = os.Remove(s.path(id))
}

// Close removes all remaining blocks.
func (s *Spiller) Close() {
	if s.mem != nil {
		s.mu.Lock()
		s.mem = make(map[int][]byte)
		s.mu.Unlock()
		return
	}
	matches, _ := filepath.Glob(filepath.Join(s.dir, "block-*.bin"))
	for _, m := range matches {
		_ = os.Remove(m)
	}
}

func (s *Spiller) path(id int) string {
	return filepath.Join(s.dir, fmt.Sprintf("block-%d.bin", id))
}
