package spill

import (
	"bytes"
	"testing"

	"gminer/internal/metrics"
)

func TestMemoryModeRoundTrip(t *testing.T) {
	s, err := New("", nil)
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.Write([]byte("block data"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(id)
	if err != nil || string(got) != "block data" {
		t.Fatalf("got %q err %v", got, err)
	}
	s.Free(id)
	if _, err := s.Read(id); err == nil {
		t.Fatal("read after free should fail")
	}
}

func TestFileModeRoundTrip(t *testing.T) {
	s, err := New(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xAB}, 4096)
	id, err := s.Write(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(id)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("file round trip broken: %v", err)
	}
	s.Free(id)
	if _, err := s.Read(id); err == nil {
		t.Fatal("read after free should fail")
	}
}

func TestDistinctIDs(t *testing.T) {
	s, _ := New("", nil)
	a, _ := s.Write([]byte("a"))
	b, _ := s.Write([]byte("b"))
	if a == b {
		t.Fatal("ids collide")
	}
	ga, _ := s.Read(a)
	gb, _ := s.Read(b)
	if string(ga) != "a" || string(gb) != "b" {
		t.Fatal("contents crossed")
	}
}

func TestWriteDoesNotAliasCaller(t *testing.T) {
	s, _ := New("", nil)
	buf := []byte("mutable")
	id, _ := s.Write(buf)
	buf[0] = 'X'
	got, _ := s.Read(id)
	if string(got) != "mutable" {
		t.Fatal("spiller aliased caller buffer")
	}
}

func TestAccounting(t *testing.T) {
	c := &metrics.Counters{}
	s, _ := New("", c)
	id, _ := s.Write(make([]byte, 100))
	_, _ = s.Read(id)
	snap := c.Snapshot()
	if snap.DiskWrite != 100 || snap.DiskRead != 100 {
		t.Fatalf("accounting: %+v", snap)
	}
}

func TestClose(t *testing.T) {
	dir := t.TempDir()
	s, _ := New(dir, nil)
	id, _ := s.Write([]byte("x"))
	s.Close()
	if _, err := s.Read(id); err == nil {
		t.Fatal("read after close should fail")
	}
}
