package jobspec_test

import (
	"strings"
	"testing"

	"gminer/internal/gen"
	"gminer/internal/graph"
	"gminer/internal/jobspec"
)

func testGraph() *graph.Graph {
	return gen.RMAT(gen.RMATConfig{Scale: 6, Edges: 300, Seed: 3})
}

func TestBuildAllApps(t *testing.T) {
	g := testGraph()
	for _, app := range jobspec.Apps() {
		spec := jobspec.Spec{App: app}.Normalize()
		jobspec.Prepare(g, spec)
		a, err := jobspec.Build(g, spec)
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		if a.Name() == "" {
			t.Fatalf("%s: empty algorithm name", app)
		}
	}
}

func TestBuildDoesNotMutate(t *testing.T) {
	g := testGraph() // no labels, no attrs
	if _, err := jobspec.Build(g, jobspec.Spec{App: "gm"}.Normalize()); err == nil {
		t.Fatal("gm on unlabeled graph must fail without Prepare")
	}
	if g.Labeled() {
		t.Fatal("Build mutated the graph (assigned labels)")
	}
	if _, err := jobspec.Build(g, jobspec.Spec{App: "cd"}.Normalize()); err == nil {
		t.Fatal("cd on unattributed graph must fail without Prepare")
	}
	if g.Attributed() {
		t.Fatal("Build mutated the graph (assigned attrs)")
	}
}

func TestValidate(t *testing.T) {
	bad := []jobspec.Spec{
		{App: "nope"},
		{App: "tc", MinSim: 1.5},
		{App: "tc", Pattern: "0,1;-1,0"},   // pattern on non-gm app
		{App: "gm", Pattern: "not-a-spec"}, // malformed
		{App: "tc", Split: -1},
	}
	for _, s := range bad {
		if err := s.Normalize().Validate(); err == nil {
			t.Errorf("spec %+v: expected validation error", s)
		}
	}
	good := jobspec.Spec{App: " TC "}.Normalize()
	if err := good.Validate(); err != nil {
		t.Errorf("normalised tc spec rejected: %v", err)
	}
	if good.App != "tc" {
		t.Errorf("Normalize did not canonicalise App: %q", good.App)
	}
}

func TestParsePattern(t *testing.T) {
	p, err := jobspec.ParsePattern("0,1,2,1,3;-1,0,0,2,2")
	if err != nil {
		t.Fatal(err)
	}
	if p == nil {
		t.Fatal("nil pattern")
	}
	for _, bad := range []string{"", "0,1", "a,b;-1,0", "0,1;-1,x"} {
		if _, err := jobspec.ParsePattern(bad); err == nil {
			t.Errorf("pattern %q: expected error", bad)
		}
	}
}

func TestUnknownAppErrorListsApps(t *testing.T) {
	err := jobspec.Spec{App: "bogus"}.Normalize().Validate()
	if err == nil || !strings.Contains(err.Error(), "tc") {
		t.Fatalf("error should list valid apps, got: %v", err)
	}
}
