// Package jobspec translates a serialisable job specification (algorithm
// name plus parameters) into a runnable core.Algorithm. The single-shot
// CLI and the job server share it, so a job submitted over HTTP runs
// exactly the algorithm the equivalent command line would — which is what
// makes the serving-mode byte-identical guarantee checkable.
package jobspec

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"gminer/internal/algo"
	"gminer/internal/core"
	"gminer/internal/gen"
	"gminer/internal/graph"
)

// Spec names one mining workload. It is the JSON body of POST /jobs and
// the distilled form of the CLI's algorithm flags.
type Spec struct {
	// App selects the application: tc, mcf, gm, cd, gc, gl3, qc, fsm.
	App string `json:"app"`
	// Labels is the label alphabet size used when Prepare must assign
	// labels to an unlabeled graph (gm, fsm). Default 7.
	Labels int32 `json:"labels,omitempty"`
	// Pattern is the gm pattern as "labels;parents", e.g.
	// "0,1,2,1,3;-1,0,0,2,2". Empty selects the paper's Figure 1 pattern.
	Pattern string `json:"pattern,omitempty"`
	// MinSim is the cd/gc/qc similarity or density threshold. Default 0.6.
	MinSim float64 `json:"minsim,omitempty"`
	// MinSize is the cd/gc/qc minimum community size. Default 4.
	MinSize int `json:"minsize,omitempty"`
	// Split is the mcf recursive task-split threshold; 0 disables.
	Split int `json:"split,omitempty"`
	// Seed overrides the label/attribute assignment seed used by Prepare
	// on graphs that lack them; 0 keeps the CLI defaults (labels: 1,
	// attrs: 2). It never affects an already-labeled graph, so jobs on a
	// serving daemon's resident graph ignore it.
	Seed int64 `json:"seed,omitempty"`
	// Generic forces the generic exploration path instead of compiled
	// execution plans + intersection kernels — the differential baseline.
	// Results are byte-identical by contract, but CacheKey still includes
	// it: a differential comparison driven through the serving layer must
	// observe two real executions, not one execution and a cache hit.
	Generic bool `json:"generic,omitempty"`
	// Standing subscribes the job to the dynamic graph: after the baseline
	// run, the job stays resident and emits a delta (new/retracted
	// matches) per graph epoch on GET /jobs/{id}/deltas. Requires a
	// dynamic-enabled daemon. Standing results are never cache-served.
	Standing bool `json:"standing,omitempty"`
	// Epoch pins the job to a graph epoch: if > 0, the server rejects the
	// submission unless the resident graph is at exactly this epoch — the
	// optimistic-concurrency guard for clients that must not compute
	// against a graph that mutated since they last looked. 0 accepts any.
	Epoch int64 `json:"epoch,omitempty"`

	// Serving-side QoS hints (internal/qos). They shape when and whether
	// a job runs — never what it computes — so CacheKey excludes them.

	// Tenant attributes the job to one tenant for weighted-fair
	// scheduling, spend metering and per-tenant metrics. Empty
	// normalizes to "default". Same charset as job IDs.
	Tenant string `json:"tenant,omitempty"`
	// Priority is the tenant-share weight of this job in the admission
	// queue: a tenant dequeues at Priority× the rate of priority-1 work
	// at equal cost. Normalized into [1, MaxPriority].
	Priority int `json:"priority,omitempty"`
	// DeadlineSeconds is a completion deadline measured from submission:
	// a job still queued past it is shed; a running one is stopped at
	// the next round boundary. 0 means none.
	DeadlineSeconds float64 `json:"deadline_seconds,omitempty"`
	// BudgetSeconds caps the job's compute spend (busy thread-seconds
	// summed over workers); an over-budget job is preempted at the next
	// round boundary. 0 inherits the server default (possibly unlimited).
	BudgetSeconds float64 `json:"budget_seconds,omitempty"`
}

// MaxPriority bounds the Priority weight so one tenant cannot claim an
// effectively infinite share.
const MaxPriority = 16

// Apps lists the valid App values.
func Apps() []string { return []string{"tc", "mcf", "gm", "cd", "gc", "gl3", "qc", "fsm"} }

// Normalize fills defaulted fields and canonicalises App. It is
// idempotent and deterministic (FuzzNormalizeStable): two specs that
// differ only in default-vs-explicit values normalize identically, which
// is what makes the normalized spec usable as a cache key.
func (s Spec) Normalize() Spec {
	s.App = strings.ToLower(strings.TrimSpace(s.App))
	if s.Labels <= 0 {
		s.Labels = 7
	}
	if s.MinSim <= 0 || math.IsNaN(s.MinSim) {
		s.MinSim = 0.6
	}
	if s.MinSize <= 0 {
		s.MinSize = 4
	}
	s.Tenant = strings.TrimSpace(s.Tenant)
	if s.Tenant == "" {
		s.Tenant = "default"
	}
	if s.Priority <= 0 {
		s.Priority = 1
	}
	if s.Priority > MaxPriority {
		s.Priority = MaxPriority
	}
	if math.IsNaN(s.DeadlineSeconds) {
		s.DeadlineSeconds = 0
	}
	if math.IsNaN(s.BudgetSeconds) {
		s.BudgetSeconds = 0
	}
	return s
}

// CacheKey is the canonical identity of the workload for result caching:
// every field that changes what is computed, and none that only changes
// when or for whom it runs (tenant, priority, deadline, budget). Two
// specs with equal CacheKeys on the same resident graph produce
// byte-identical results.
func (s Spec) CacheKey() string {
	n := s.Normalize()
	return fmt.Sprintf("app=%s|labels=%d|pattern=%s|minsim=%g|minsize=%d|split=%d|seed=%d|generic=%t|standing=%t|epoch=%d",
		n.App, n.Labels, n.Pattern, n.MinSim, n.MinSize, n.Split, n.Seed, n.Generic, n.Standing, n.Epoch)
}

// Validate checks the normalised spec without needing a graph.
func (s Spec) Validate() error {
	ok := false
	for _, a := range Apps() {
		if s.App == a {
			ok = true
			break
		}
	}
	if !ok {
		return fmt.Errorf("jobspec: unknown app %q (want one of %s)", s.App, strings.Join(Apps(), ", "))
	}
	if s.MinSim < 0 || s.MinSim > 1 {
		return fmt.Errorf("jobspec: minsim %v outside [0,1]", s.MinSim)
	}
	if s.MinSize < 1 {
		return fmt.Errorf("jobspec: minsize %d < 1", s.MinSize)
	}
	if s.Split < 0 {
		return fmt.Errorf("jobspec: split %d < 0", s.Split)
	}
	if s.Pattern != "" {
		if s.App != "gm" {
			return fmt.Errorf("jobspec: pattern is only valid for app gm")
		}
		if _, err := ParsePattern(s.Pattern); err != nil {
			return err
		}
	}
	if len(s.Tenant) > 64 {
		return fmt.Errorf("jobspec: tenant longer than 64 bytes")
	}
	for _, r := range s.Tenant {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' ||
			r == '-' || r == '_' || r == '.' {
			continue
		}
		// The tenant becomes a Prometheus label and a log token; keep it
		// to the same safe charset as job IDs.
		return fmt.Errorf("jobspec: tenant may only contain [a-zA-Z0-9._-], got %q", s.Tenant)
	}
	if s.Priority < 0 {
		return fmt.Errorf("jobspec: priority %d < 0", s.Priority)
	}
	if s.DeadlineSeconds < 0 || math.IsInf(s.DeadlineSeconds, 0) {
		return fmt.Errorf("jobspec: deadline_seconds %v outside [0, +inf)", s.DeadlineSeconds)
	}
	if s.BudgetSeconds < 0 || math.IsInf(s.BudgetSeconds, 0) {
		return fmt.Errorf("jobspec: budget_seconds %v outside [0, +inf)", s.BudgetSeconds)
	}
	if s.Epoch < 0 {
		return fmt.Errorf("jobspec: epoch %d < 0", s.Epoch)
	}
	return nil
}

// needsLabels/needsAttrs: which vertex annotations the app consumes.
func (s Spec) needsLabels() bool { return s.App == "gm" || s.App == "fsm" }
func (s Spec) needsAttrs() bool  { return s.App == "cd" || s.App == "gc" }

// Prepare mutates g so Build can succeed: it assigns labels or attributes
// when the app needs them and the graph has none, reproducing the CLI's
// historical defaults. A long-lived server must call Prepare for every
// app family ONCE at startup (the graph is shared by concurrent jobs and
// must never be mutated per job); per-job paths use Build alone.
func Prepare(g *graph.Graph, s Spec) {
	s = s.Normalize()
	if s.needsLabels() && !g.Labeled() {
		seed := s.Seed
		if seed == 0 {
			seed = 1
		}
		gen.AssignLabels(g, s.Labels, seed)
	}
	if s.needsAttrs() && !g.Attributed() {
		seed := s.Seed
		if seed == 0 {
			seed = 2
		}
		gen.AssignAttrs(g, 5, 10, seed)
	}
}

// Build constructs the algorithm for a normalised, validated spec. It
// never mutates g: a graph missing required labels or attributes is an
// error here (Prepare, on a path that owns the graph, fixes that).
func Build(g *graph.Graph, s Spec) (core.Algorithm, error) {
	s = s.Normalize()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.needsLabels() && !g.Labeled() {
		return nil, fmt.Errorf("jobspec: app %s needs a labeled graph (serving graph was loaded without labels)", s.App)
	}
	if s.needsAttrs() && !g.Attributed() {
		return nil, fmt.Errorf("jobspec: app %s needs an attributed graph (serving graph was loaded without attributes)", s.App)
	}
	switch s.App {
	case "tc":
		tc := algo.NewTriangleCount()
		tc.Generic = s.Generic
		return tc, nil
	case "mcf":
		mc := algo.NewMaxClique()
		mc.SplitThreshold = s.Split
		return mc, nil
	case "gm":
		p := algo.FigurePattern()
		if s.Pattern != "" {
			var err error
			p, err = ParsePattern(s.Pattern)
			if err != nil {
				return nil, err
			}
		}
		gm := algo.NewGraphMatch(p)
		gm.Generic = s.Generic
		return gm, nil
	case "gl3":
		return algo.NewGraphletCensus(), nil
	case "qc":
		return algo.NewQuasiClique(s.MinSim, s.MinSize), nil
	case "fsm":
		return algo.NewFreqSubgraph(int64(s.MinSize) * 25), nil
	case "cd":
		return algo.NewCommunityDetect(s.MinSim, s.MinSize), nil
	case "gc":
		exemplar := g.VertexAt(0).Attrs
		return algo.NewGraphCluster([][]int32{exemplar}, 0.8, 0.3, s.MinSize), nil
	}
	return nil, fmt.Errorf("jobspec: unknown app %q", s.App) // unreachable after Validate
}

// ParsePattern parses a gm pattern "l0,l1,...;p0,p1,...".
func ParsePattern(spec string) (*algo.Pattern, error) {
	parts := strings.SplitN(spec, ";", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("jobspec: pattern must be 'labels;parents'")
	}
	var labels []int32
	for _, s := range strings.Split(parts[0], ",") {
		x, err := strconv.ParseInt(strings.TrimSpace(s), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("jobspec: pattern label: %w", err)
		}
		labels = append(labels, int32(x))
	}
	var parents []int
	for _, s := range strings.Split(parts[1], ",") {
		x, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return nil, fmt.Errorf("jobspec: pattern parent: %w", err)
		}
		parents = append(parents, x)
	}
	return algo.NewPattern(labels, parents)
}
