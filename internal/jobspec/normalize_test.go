package jobspec_test

import (
	"encoding/json"
	"math"
	"testing"

	"gminer/internal/jobspec"
)

// TestNormalizeCacheIdentity: specs that differ only in JSON field order
// or in default-vs-explicit values must normalize to the same spec and
// the same cache key — the property the serving layer's result cache
// depends on.
func TestNormalizeCacheIdentity(t *testing.T) {
	cases := []struct {
		name string
		a, b string // JSON bodies
	}{
		{
			"field order",
			`{"app":"gm","pattern":"0,1,2,1,3;-1,0,0,2,2","minsize":4}`,
			`{"minsize":4,"pattern":"0,1,2,1,3;-1,0,0,2,2","app":"gm"}`,
		},
		{
			"default vs explicit labels",
			`{"app":"gm"}`,
			`{"app":"gm","labels":7}`,
		},
		{
			"default vs explicit minsim/minsize",
			`{"app":"cd"}`,
			`{"app":"cd","minsim":0.6,"minsize":4}`,
		},
		{
			"app case and whitespace",
			`{"app":" TC "}`,
			`{"app":"tc"}`,
		},
		{
			"default vs explicit tenant and priority",
			`{"app":"tc"}`,
			`{"app":"tc","tenant":"default","priority":1}`,
		},
		{
			"zero vs omitted split",
			`{"app":"mcf","split":0}`,
			`{"app":"mcf"}`,
		},
	}
	for _, tc := range cases {
		var sa, sb jobspec.Spec
		if err := json.Unmarshal([]byte(tc.a), &sa); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if err := json.Unmarshal([]byte(tc.b), &sb); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		na, nb := sa.Normalize(), sb.Normalize()
		if na != nb {
			t.Errorf("%s: normalized specs differ:\n%+v\n%+v", tc.name, na, nb)
		}
		if na.CacheKey() != nb.CacheKey() {
			t.Errorf("%s: cache keys differ:\n%s\n%s", tc.name, na.CacheKey(), nb.CacheKey())
		}
	}
}

// TestCacheKeyExcludesQoSHints: tenant, priority, deadline and budget
// must not change the cache key (they change when a job runs, not what
// it computes), while every workload field must.
func TestCacheKeyExcludesQoSHints(t *testing.T) {
	base := jobspec.Spec{App: "gm"}
	for _, qosVariant := range []jobspec.Spec{
		{App: "gm", Tenant: "alice"},
		{App: "gm", Priority: 9},
		{App: "gm", DeadlineSeconds: 30},
		{App: "gm", BudgetSeconds: 5},
		{App: "gm", Tenant: "bob", Priority: 3, DeadlineSeconds: 1, BudgetSeconds: 2},
	} {
		if qosVariant.CacheKey() != base.CacheKey() {
			t.Errorf("QoS hint changed the cache key: %+v", qosVariant)
		}
	}
	for _, workloadVariant := range []jobspec.Spec{
		{App: "tc"},
		{App: "gm", Labels: 5},
		{App: "gm", Pattern: "0,1;-1,0"},
		{App: "gm", MinSim: 0.9},
		{App: "gm", MinSize: 6},
		{App: "gm", Split: 10},
		{App: "gm", Seed: 42},
	} {
		if workloadVariant.CacheKey() == base.CacheKey() {
			t.Errorf("workload field did not change the cache key: %+v", workloadVariant)
		}
	}
}

func TestNormalizeQoSFields(t *testing.T) {
	n := jobspec.Spec{App: "tc"}.Normalize()
	if n.Tenant != "default" || n.Priority != 1 {
		t.Fatalf("QoS defaults: tenant=%q priority=%d", n.Tenant, n.Priority)
	}
	n = jobspec.Spec{App: "tc", Tenant: "  alice ", Priority: 999}.Normalize()
	if n.Tenant != "alice" {
		t.Fatalf("tenant not trimmed: %q", n.Tenant)
	}
	if n.Priority != jobspec.MaxPriority {
		t.Fatalf("priority not clamped: %d", n.Priority)
	}
	n = jobspec.Spec{App: "tc", MinSim: math.NaN(), DeadlineSeconds: math.NaN(), BudgetSeconds: math.NaN()}.Normalize()
	if n.MinSim != 0.6 || n.DeadlineSeconds != 0 || n.BudgetSeconds != 0 {
		t.Fatalf("NaN not sanitized: %+v", n)
	}
	for _, bad := range []jobspec.Spec{
		{App: "tc", Tenant: "no spaces"},
		{App: "tc", Tenant: `evil"}`},
		{App: "tc", DeadlineSeconds: -1},
		{App: "tc", BudgetSeconds: math.Inf(1)},
	} {
		if err := bad.Normalize().Validate(); err == nil {
			t.Errorf("spec %+v: expected validation error", bad)
		}
	}
}

// FuzzNormalizeStable asserts Normalize is idempotent and deterministic
// over arbitrary field values — the contract that makes the normalized
// spec a safe cache key.
func FuzzNormalizeStable(f *testing.F) {
	f.Add("tc", int32(7), "", 0.6, 4, 0, int64(0), "default", 1, 0.0, 0.0)
	f.Add(" GM ", int32(-3), "0,1;-1,0", math.NaN(), -1, 5, int64(9), "  alice ", 999, -4.5, math.Inf(1))
	f.Add("", int32(0), "x", -0.0, 0, -2, int64(-1), "", -7, math.NaN(), 1e300)
	f.Fuzz(func(t *testing.T, app string, labels int32, pattern string,
		minsim float64, minsize, split int, seed int64,
		tenant string, priority int, deadline, budget float64) {
		s := jobspec.Spec{
			App: app, Labels: labels, Pattern: pattern, MinSim: minsim,
			MinSize: minsize, Split: split, Seed: seed,
			Tenant: tenant, Priority: priority,
			DeadlineSeconds: deadline, BudgetSeconds: budget,
		}
		n1 := s.Normalize()
		n2 := n1.Normalize()
		if n1 != n2 {
			t.Fatalf("Normalize not idempotent:\nonce:  %+v\ntwice: %+v", n1, n2)
		}
		if again := s.Normalize(); again != n1 {
			t.Fatalf("Normalize not deterministic:\nfirst:  %+v\nsecond: %+v", n1, again)
		}
		if k1, k2 := s.CacheKey(), n1.CacheKey(); k1 != k2 {
			t.Fatalf("CacheKey differs before/after Normalize:\n%s\n%s", k1, k2)
		}
		if n1.Priority < 1 || n1.Priority > jobspec.MaxPriority {
			t.Fatalf("normalized priority out of range: %d", n1.Priority)
		}
		if n1.Tenant == "" {
			t.Fatal("normalized tenant empty")
		}
		if math.IsNaN(n1.MinSim) || math.IsNaN(n1.DeadlineSeconds) || math.IsNaN(n1.BudgetSeconds) {
			t.Fatalf("normalized spec carries NaN: %+v", n1)
		}
	})
}
