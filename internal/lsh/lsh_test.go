package lsh

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestSignDeterministic(t *testing.T) {
	s := NewSigner(4, 42)
	set := []uint64{1, 2, 3, 100}
	a := s.Sign(set)
	b := s.Sign(set)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("signatures differ across calls")
	}
}

func TestSignOrderInvariant(t *testing.T) {
	s := NewSigner(4, 42)
	a := s.Sign([]uint64{5, 9, 1})
	b := s.Sign([]uint64{1, 5, 9})
	if a.Compare(b) != 0 {
		t.Fatal("signature depends on element order")
	}
}

func TestEmptySetSortsLast(t *testing.T) {
	s := NewSigner(4, 1)
	empty := s.Sign(nil)
	some := s.Sign([]uint64{7})
	if !some.Less(empty) {
		t.Fatal("empty set should sort after non-empty")
	}
}

func TestCompareLexicographic(t *testing.T) {
	a := Signature{1, 2, 3}
	b := Signature{1, 2, 4}
	c := Signature{1, 2}
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Fatal("compare wrong")
	}
	if c.Compare(a) != -1 {
		t.Fatal("shorter prefix should sort first")
	}
}

func TestBytesPreservesOrder(t *testing.T) {
	s := NewSigner(3, 9)
	rng := rand.New(rand.NewSource(1))
	var sigs []Signature
	for i := 0; i < 64; i++ {
		set := make([]uint64, 1+rng.Intn(8))
		for j := range set {
			set[j] = rng.Uint64() % 512
		}
		sigs = append(sigs, s.Sign(set))
	}
	bySig := append([]Signature(nil), sigs...)
	sort.Slice(bySig, func(i, j int) bool { return bySig[i].Less(bySig[j]) })
	byBytes := append([]Signature(nil), sigs...)
	sort.Slice(byBytes, func(i, j int) bool {
		return string(byBytes[i].Bytes()) < string(byBytes[j].Bytes())
	})
	for i := range bySig {
		if bySig[i].Compare(byBytes[i]) != 0 {
			t.Fatal("byte order differs from Compare order")
		}
	}
}

func TestSignatureBytesRoundTrip(t *testing.T) {
	s := NewSigner(5, 77)
	sig := s.Sign([]uint64{3, 1, 4, 1, 5})
	got := SignatureFromBytes(sig.Bytes())
	if sig.Compare(got) != 0 {
		t.Fatal("bytes round trip changed signature")
	}
}

// TestSimilarSetsGetCloserKeys is the property the task priority queue
// depends on (Figure 3): sets with high Jaccard similarity agree on more
// signature components than disjoint sets.
func TestSimilarSetsGetCloserKeys(t *testing.T) {
	s := NewSigner(16, 4242)
	rng := rand.New(rand.NewSource(5))
	var simAgree, disAgree float64
	const trials = 200
	for i := 0; i < trials; i++ {
		base := make([]uint64, 32)
		for j := range base {
			base[j] = rng.Uint64() % 10000
		}
		// similar: share 75% of elements
		similar := append([]uint64(nil), base[:24]...)
		for j := 0; j < 8; j++ {
			similar = append(similar, rng.Uint64()%10000)
		}
		// disjoint
		disjoint := make([]uint64, 32)
		for j := range disjoint {
			disjoint[j] = 20000 + rng.Uint64()%10000
		}
		sb := s.Sign(base)
		simAgree += Similarity(sb, s.Sign(similar))
		disAgree += Similarity(sb, s.Sign(disjoint))
	}
	simAgree /= trials
	disAgree /= trials
	if simAgree <= disAgree+0.2 {
		t.Fatalf("minhash not locality sensitive: similar=%.3f disjoint=%.3f", simAgree, disAgree)
	}
}

func TestHashIDDistribution(t *testing.T) {
	// Consecutive IDs must spread across buckets (used by the hash
	// partitioner): no bucket of 8 should exceed 3x the fair share.
	const n, k = 8000, 8
	counts := make([]int, k)
	for i := 0; i < n; i++ {
		counts[HashID(uint64(i))%k]++
	}
	for b, c := range counts {
		if c > 3*n/k {
			t.Fatalf("bucket %d overloaded: %d of %d", b, c, n)
		}
	}
}

func TestHash64(t *testing.T) {
	a := Hash64([]byte("hello"))
	b := Hash64([]byte("hello"))
	c := Hash64([]byte("hellp"))
	if a != b || a == c {
		t.Fatalf("hash64: %x %x %x", a, b, c)
	}
}

func TestQuickCompareIsTotalOrder(t *testing.T) {
	f := func(a, b, c []uint64) bool {
		s := NewSigner(4, 1)
		sa, sb, sc := s.Sign(a), s.Sign(b), s.Sign(c)
		// antisymmetry
		if sa.Compare(sb) != -sb.Compare(sa) {
			return false
		}
		// transitivity (only check the ordered case)
		if sa.Compare(sb) <= 0 && sb.Compare(sc) <= 0 && sa.Compare(sc) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
