// Package lsh implements the locality-sensitive hashing used by the task
// priority queue (§7 of the paper): each inactive task's remote-candidate
// set to_pull is reduced to a low-dimensional minhash signature, and tasks
// are ordered by signature so that successively dequeued tasks share
// remote candidates, which raises the RCV cache hit rate (Figure 3).
package lsh

import (
	"encoding/binary"
)

// Signer computes k-dimensional minhash signatures over sets of uint64
// elements. A Signer is immutable and safe for concurrent use.
type Signer struct {
	k     int
	seeds []uint64
}

// NewSigner returns a Signer producing k-dimensional signatures. k must be
// >= 1; the paper uses a small k ("low k-dimension vector key").
func NewSigner(k int, seed uint64) *Signer {
	if k < 1 {
		k = 1
	}
	s := &Signer{k: k, seeds: make([]uint64, k)}
	x := seed | 1
	for i := range s.seeds {
		// SplitMix64 sequence gives well-distributed, odd multipliers.
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		s.seeds[i] = (z ^ (z >> 31)) | 1
	}
	return s
}

// K returns the signature dimension.
func (s *Signer) K() int { return s.k }

// Sign computes the minhash signature of the element set. An empty set
// yields the all-max signature, which sorts last.
func (s *Signer) Sign(set []uint64) Signature {
	sig := make(Signature, s.k)
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	for _, e := range set {
		for i, m := range s.seeds {
			h := mix(e * m)
			if h < sig[i] {
				sig[i] = h
			}
		}
	}
	return sig
}

func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Signature is a k-dimensional minhash key. Signatures compare
// lexicographically; similar to_pull sets yield equal or nearby keys.
type Signature []uint64

// Compare returns -1, 0 or 1 for lexicographic order. Shorter signatures
// sort before longer ones with equal prefixes.
func (a Signature) Compare(b Signature) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// Less reports a < b lexicographically.
func (a Signature) Less(b Signature) bool { return a.Compare(b) < 0 }

// Bytes serializes the signature (big-endian, fixed width) so byte-wise
// comparison matches Compare. Used by the disk-spilled task store index.
func (a Signature) Bytes() []byte {
	out := make([]byte, 8*len(a))
	for i, x := range a {
		binary.BigEndian.PutUint64(out[8*i:], x)
	}
	return out
}

// SignatureFromBytes parses a signature serialized by Bytes.
func SignatureFromBytes(b []byte) Signature {
	sig := make(Signature, len(b)/8)
	for i := range sig {
		sig[i] = binary.BigEndian.Uint64(b[8*i:])
	}
	return sig
}

// Similarity estimates the Jaccard similarity of the sets underlying two
// signatures: the fraction of agreeing components. Used in tests.
func Similarity(a, b Signature) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return 0
	}
	eq := 0
	for i := range a {
		if a[i] == b[i] {
			eq++
		}
	}
	return float64(eq) / float64(len(a))
}

// HashID is a convenience 64-bit hash for a single ID, used where a cheap
// stable hash is needed (hash partitioner, steal victim choice).
func HashID(x uint64) uint64 {
	return mix(x * 0x9e3779b97f4a7c15)
}

// Hash64 hashes a byte slice with FNV-1a folded through mix; stable across
// runs, used for checkpoint integrity checks.
func Hash64(b []byte) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return mix(h)
}
