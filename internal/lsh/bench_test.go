package lsh

import "testing"

func benchSign(b *testing.B, k, setSize int) {
	s := NewSigner(k, 42)
	set := make([]uint64, setSize)
	for i := range set {
		set[i] = uint64(i * 2654435761)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Sign(set)
	}
}

func BenchmarkSignK4Set16(b *testing.B)   { benchSign(b, 4, 16) }
func BenchmarkSignK4Set256(b *testing.B)  { benchSign(b, 4, 256) }
func BenchmarkSignK16Set256(b *testing.B) { benchSign(b, 16, 256) }

func BenchmarkCompare(b *testing.B) {
	s := NewSigner(4, 1)
	x := s.Sign([]uint64{1, 2, 3})
	y := s.Sign([]uint64{2, 3, 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Compare(y)
	}
}
