// Package cache implements the Reference-Counting Vertex (RCV) cache of
// §4.3/§7: remote vertices pulled by the candidate retriever are cached
// with a reference count of the ready/active tasks referring to them.
// Eviction is lazy — a vertex whose count drops to zero moves to the tail
// of an eviction list but is only replaced when the cache is full, because
// "even a vertex with r = 0 could be referred again by a subsequent task".
// If the cache is full and every entry is referenced, the retriever goes
// to sleep until some task finishes a round and releases its references.
package cache

import (
	"sync"

	"gminer/internal/graph"
	"gminer/internal/metrics"
	"gminer/internal/trace"
)

type entry struct {
	v   *graph.Vertex
	ref int
	// position in the zero-ref eviction list; nil while referenced.
	prev, next *entry
}

// RCV is the reference-counting vertex cache. Safe for concurrent use.
type RCV struct {
	mu       sync.Mutex
	cond     *sync.Cond
	capacity int
	entries  map[graph.VertexID]*entry
	// zeroHead/zeroTail: intrusive FIFO of zero-ref entries; evict from
	// head (oldest zero-ref), insert at tail.
	zeroHead, zeroTail *entry
	closed             bool
	counters           *metrics.Counters
	tr                 trace.Handle
	bytes              int64
}

// New returns an RCV cache holding up to capacity vertices. counters may
// be nil.
func New(capacity int, counters *metrics.Counters) *RCV {
	if capacity < 1 {
		capacity = 1
	}
	c := &RCV{
		capacity: capacity,
		entries:  make(map[graph.VertexID]*entry, capacity),
		counters: counters,
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// SetTrace attaches a trace handle; call before the cache is shared.
func (c *RCV) SetTrace(h trace.Handle) { c.tr = h }

// Capacity returns the configured capacity.
func (c *RCV) Capacity() int { return c.capacity }

// Bytes returns the estimated memory footprint of cached vertices.
func (c *RCV) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Len returns the current number of cached vertices.
func (c *RCV) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Acquire looks up id and, if present, increments its reference count and
// returns the vertex. Records a cache hit or miss.
func (c *RCV) Acquire(id graph.VertexID) (*graph.Vertex, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok {
		if c.counters != nil {
			c.counters.CacheMiss()
		}
		c.tr.Event(trace.EvCacheMiss, uint64(id))
		return nil, false
	}
	if c.counters != nil {
		c.counters.CacheHit()
	}
	c.tr.Event(trace.EvCacheHit, uint64(id))
	c.refLocked(e)
	return e.v, true
}

func (c *RCV) refLocked(e *entry) {
	if e.ref == 0 {
		c.zeroRemove(e)
	}
	e.ref++
}

// Insert adds a pulled vertex with one reference held by the inserting
// task. If the vertex is already cached (a concurrent pull landed first),
// the existing entry gains a reference instead. Insert blocks while the
// cache is full of referenced vertices; it returns false if the cache is
// closed while waiting.
func (c *RCV) Insert(v *graph.Vertex) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.closed {
			return false
		}
		if e, ok := c.entries[v.ID]; ok {
			c.refLocked(e)
			return true
		}
		if len(c.entries) < c.capacity {
			break
		}
		// Full: replace the oldest zero-referenced vertex (lazy model).
		if c.zeroHead != nil {
			victim := c.zeroHead
			c.zeroRemove(victim)
			delete(c.entries, victim.v.ID)
			c.bytes -= victim.v.FootprintBytes()
			c.tr.Event(trace.EvCacheEvict, uint64(victim.v.ID))
			break
		}
		// "if there is no vertex with r = 0 ... go to sleep until some
		// tasks finish their computation and release the referred
		// vertices" (§7).
		c.cond.Wait()
	}
	e := &entry{v: v, ref: 1}
	c.entries[v.ID] = e
	c.bytes += v.FootprintBytes()
	return true
}

// TryInsert is a non-blocking Insert: it returns false when the cache is
// full of referenced vertices instead of sleeping. Used by the pull
// response path, which must not block the worker's communication loop.
func (c *RCV) TryInsert(v *graph.Vertex) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false
	}
	if e, ok := c.entries[v.ID]; ok {
		c.refLocked(e)
		return true
	}
	if len(c.entries) >= c.capacity {
		if c.zeroHead == nil {
			return false
		}
		victim := c.zeroHead
		c.zeroRemove(victim)
		delete(c.entries, victim.v.ID)
		c.bytes -= victim.v.FootprintBytes()
		c.tr.Event(trace.EvCacheEvict, uint64(victim.v.ID))
	}
	c.entries[v.ID] = &entry{v: v, ref: 1}
	c.bytes += v.FootprintBytes()
	return true
}

// ForceInsert inserts v even beyond capacity. The runtime uses it as a
// last resort when a pull response lands while every cached vertex is
// referenced: blocking there (the paper's sleep) could deadlock the
// communication loop, so we overflow instead and shed the excess as
// references drain. Overflow entries are evicted by later TryInserts the
// same way as ordinary zero-ref entries.
func (c *RCV) ForceInsert(v *graph.Vertex) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	if e, ok := c.entries[v.ID]; ok {
		c.refLocked(e)
		return
	}
	c.entries[v.ID] = &entry{v: v, ref: 1}
	c.bytes += v.FootprintBytes()
}

// Release decrements the reference counts of the given vertices, called
// when a task referring to them completes a round of computation. IDs not
// present are ignored (they were local-partition vertices).
func (c *RCV) Release(ids ...graph.VertexID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	released := false
	for _, id := range ids {
		e, ok := c.entries[id]
		if !ok || e.ref == 0 {
			continue
		}
		e.ref--
		if e.ref == 0 {
			c.zeroAppend(e)
			released = true
		}
	}
	// Shed ForceInsert overflow now that references drained.
	for len(c.entries) > c.capacity && c.zeroHead != nil {
		victim := c.zeroHead
		c.zeroRemove(victim)
		delete(c.entries, victim.v.ID)
		c.bytes -= victim.v.FootprintBytes()
		c.tr.Event(trace.EvCacheEvict, uint64(victim.v.ID))
	}
	if released {
		c.cond.Broadcast()
	}
}

// Peek returns the cached vertex without touching reference counts; used
// by the executor to resolve a ready task's remote candidates (whose
// references are already held).
func (c *RCV) Peek(id graph.VertexID) (*graph.Vertex, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok {
		return nil, false
	}
	return e.v, true
}

// Refs returns the current reference count of id (testing/introspection).
func (c *RCV) Refs(id graph.VertexID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[id]; ok {
		return e.ref
	}
	return -1
}

// Close unblocks any waiting Insert calls; subsequent Inserts fail.
func (c *RCV) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	c.cond.Broadcast()
}

// zeroAppend pushes e at the tail of the zero-ref list.
func (c *RCV) zeroAppend(e *entry) {
	e.prev, e.next = c.zeroTail, nil
	if c.zeroTail != nil {
		c.zeroTail.next = e
	} else {
		c.zeroHead = e
	}
	c.zeroTail = e
}

// zeroRemove unlinks e from the zero-ref list.
func (c *RCV) zeroRemove(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.zeroHead = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.zeroTail = e.prev
	}
	e.prev, e.next = nil, nil
}
