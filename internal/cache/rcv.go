// Package cache implements the Reference-Counting Vertex (RCV) cache of
// §4.3/§7: remote vertices pulled by the candidate retriever are cached
// with a reference count of the ready/active tasks referring to them.
// Eviction is lazy — a vertex whose count drops to zero moves to the tail
// of an eviction list but is only replaced when the cache is full, because
// "even a vertex with r = 0 could be referred again by a subsequent task".
// If the cache is full and every entry is referenced, the retriever goes
// to sleep until some task finishes a round and releases its references.
//
// The paper describes one cache per worker guarded by one lock; here the
// cache is split into power-of-two shards keyed by a hash of the vertex
// ID, so executor threads and the pull-response path do not serialize on
// a single mutex. Each shard is an independent RCV cache with its own
// capacity slice, zero-ref eviction list and full-of-referenced sleep:
// an Insert of vertex v can only be satisfied by space in shard(v), so
// waiting on that shard's condition variable preserves the paper's sleep
// semantics exactly, per shard. Close wakes every shard (the global
// wakeup). See DESIGN.md §5 for why per-shard lazy eviction preserves
// the paper's reference-counting semantics.
package cache

import (
	"sync"

	"gminer/internal/graph"
	"gminer/internal/metrics"
	"gminer/internal/trace"
)

type entry struct {
	v   *graph.Vertex
	ref int
	// position in the zero-ref eviction list; nil while referenced.
	prev, next *entry
}

// shard is one independent slice of the cache: the original single-lock
// RCV structure, with its own capacity and sleep.
type shard struct {
	mu       sync.Mutex
	cond     *sync.Cond
	capacity int
	entries  map[graph.VertexID]*entry
	// zeroHead/zeroTail: intrusive FIFO of zero-ref entries; evict from
	// head (oldest zero-ref), insert at tail.
	zeroHead, zeroTail *entry
	closed             bool
	bytes              int64
}

// RCV is the reference-counting vertex cache. Safe for concurrent use.
type RCV struct {
	shards   []*shard
	mask     uint64
	capacity int
	counters *metrics.Counters
	tr       trace.Handle
}

// DefaultShards is the shard count used by cluster configurations that
// leave it unset. Power of two; sized so 8–16 executor threads plus the
// pull-response path rarely collide on one shard lock.
const DefaultShards = 16

// New returns a single-shard RCV cache holding up to capacity vertices —
// the paper's original structure, and the reference semantics the sharded
// variant must preserve. counters may be nil.
func New(capacity int, counters *metrics.Counters) *RCV {
	return NewSharded(capacity, 1, counters)
}

// NewSharded returns an RCV cache of `shards` independent shards (rounded
// down to a power of two, clamped to [1, capacity]) holding up to
// capacity vertices in total. Capacity is split evenly across shards,
// with the remainder spread over the first shards so every shard holds at
// least one vertex.
func NewSharded(capacity, shards int, counters *metrics.Counters) *RCV {
	if capacity < 1 {
		capacity = 1
	}
	if shards < 1 {
		shards = 1
	}
	if shards > capacity {
		shards = capacity
	}
	// Round down to a power of two so shardFor can mask instead of mod.
	n := 1
	for n*2 <= shards {
		n *= 2
	}
	c := &RCV{
		shards:   make([]*shard, n),
		mask:     uint64(n - 1),
		capacity: capacity,
		counters: counters,
	}
	base, rem := capacity/n, capacity%n
	for i := range c.shards {
		sc := base
		if i < rem {
			sc++
		}
		s := &shard{capacity: sc, entries: make(map[graph.VertexID]*entry, sc)}
		s.cond = sync.NewCond(&s.mu)
		c.shards[i] = s
	}
	return c
}

// shardFor maps a vertex ID to its shard. The multiplier is the 64-bit
// Fibonacci hashing constant (2^64/φ); using the top bits decorrelates
// the sequential IDs synthetic graphs produce.
func (c *RCV) shardFor(id graph.VertexID) *shard {
	h := uint64(id) * 0x9e3779b97f4a7c15
	return c.shards[(h>>48)&c.mask]
}

// SetTrace attaches a trace handle; call before the cache is shared.
func (c *RCV) SetTrace(h trace.Handle) { c.tr = h }

// Capacity returns the configured total capacity.
func (c *RCV) Capacity() int { return c.capacity }

// Shards returns the shard count (introspection/tests).
func (c *RCV) Shards() int { return len(c.shards) }

// Bytes returns the estimated memory footprint of cached vertices.
func (c *RCV) Bytes() int64 {
	var total int64
	for _, s := range c.shards {
		s.mu.Lock()
		total += s.bytes
		s.mu.Unlock()
	}
	return total
}

// Len returns the current number of cached vertices.
func (c *RCV) Len() int {
	total := 0
	for _, s := range c.shards {
		s.mu.Lock()
		total += len(s.entries)
		s.mu.Unlock()
	}
	return total
}

// Acquire looks up id and, if present, increments its reference count and
// returns the vertex. Records a cache hit or miss.
func (c *RCV) Acquire(id graph.VertexID) (*graph.Vertex, bool) {
	s := c.shardFor(id)
	s.mu.Lock()
	e, ok := s.entries[id]
	if !ok {
		s.mu.Unlock()
		if c.counters != nil {
			c.counters.CacheMiss()
		}
		c.tr.Event(trace.EvCacheMiss, uint64(id))
		return nil, false
	}
	s.refLocked(e)
	v := e.v
	s.mu.Unlock()
	if c.counters != nil {
		c.counters.CacheHit()
	}
	c.tr.Event(trace.EvCacheHit, uint64(id))
	return v, true
}

func (s *shard) refLocked(e *entry) {
	if e.ref == 0 {
		s.zeroRemove(e)
	}
	e.ref++
}

// evictLocked removes the oldest zero-ref entry of the shard.
func (s *shard) evictLocked(c *RCV) {
	victim := s.zeroHead
	s.zeroRemove(victim)
	delete(s.entries, victim.v.ID)
	s.bytes -= victim.v.FootprintBytes()
	c.tr.Event(trace.EvCacheEvict, uint64(victim.v.ID))
}

// Insert adds a pulled vertex with one reference held by the inserting
// task. If the vertex is already cached (a concurrent pull landed first),
// the existing entry gains a reference instead. Insert blocks while the
// vertex's shard is full of referenced vertices; it returns false if the
// cache is closed while waiting.
func (c *RCV) Insert(v *graph.Vertex) bool {
	s := c.shardFor(v.ID)
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return false
		}
		if e, ok := s.entries[v.ID]; ok {
			s.refLocked(e)
			return true
		}
		if len(s.entries) < s.capacity {
			break
		}
		// Full: replace the oldest zero-referenced vertex (lazy model).
		if s.zeroHead != nil {
			s.evictLocked(c)
			break
		}
		// "if there is no vertex with r = 0 ... go to sleep until some
		// tasks finish their computation and release the referred
		// vertices" (§7).
		s.cond.Wait()
	}
	e := &entry{v: v, ref: 1}
	s.entries[v.ID] = e
	s.bytes += v.FootprintBytes()
	return true
}

// TryInsert is a non-blocking Insert: it returns false when the vertex's
// shard is full of referenced vertices instead of sleeping. Used by the
// pull response path, which must not block the worker's communication
// loop.
func (c *RCV) TryInsert(v *graph.Vertex) bool {
	s := c.shardFor(v.ID)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	if e, ok := s.entries[v.ID]; ok {
		s.refLocked(e)
		return true
	}
	if len(s.entries) >= s.capacity {
		if s.zeroHead == nil {
			return false
		}
		s.evictLocked(c)
	}
	s.entries[v.ID] = &entry{v: v, ref: 1}
	s.bytes += v.FootprintBytes()
	return true
}

// ForceInsert inserts v even beyond capacity. The runtime uses it as a
// last resort when a pull response lands while every cached vertex is
// referenced: blocking there (the paper's sleep) could deadlock the
// communication loop, so we overflow instead and shed the excess as
// references drain. Overflow entries are evicted by later TryInserts the
// same way as ordinary zero-ref entries.
func (c *RCV) ForceInsert(v *graph.Vertex) {
	s := c.shardFor(v.ID)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if e, ok := s.entries[v.ID]; ok {
		s.refLocked(e)
		return
	}
	s.entries[v.ID] = &entry{v: v, ref: 1}
	s.bytes += v.FootprintBytes()
}

// Release decrements the reference counts of the given vertices, called
// when a task referring to them completes a round of computation. IDs not
// present are ignored (they were local-partition vertices).
func (c *RCV) Release(ids ...graph.VertexID) {
	for _, id := range ids {
		s := c.shardFor(id)
		s.mu.Lock()
		e, ok := s.entries[id]
		if !ok || e.ref == 0 {
			s.mu.Unlock()
			continue
		}
		e.ref--
		released := false
		if e.ref == 0 {
			s.zeroAppend(e)
			released = true
		}
		// Shed ForceInsert overflow now that references drained.
		for len(s.entries) > s.capacity && s.zeroHead != nil {
			s.evictLocked(c)
		}
		if released {
			s.cond.Broadcast()
		}
		s.mu.Unlock()
	}
}

// Peek returns the cached vertex without touching reference counts; used
// by the executor to resolve a ready task's remote candidates (whose
// references are already held).
func (c *RCV) Peek(id graph.VertexID) (*graph.Vertex, bool) {
	s := c.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[id]
	if !ok {
		return nil, false
	}
	return e.v, true
}

// Refs returns the current reference count of id (testing/introspection).
func (c *RCV) Refs(id graph.VertexID) int {
	s := c.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[id]; ok {
		return e.ref
	}
	return -1
}

// Close unblocks any waiting Insert calls on every shard; subsequent
// Inserts fail.
func (c *RCV) Close() {
	for _, s := range c.shards {
		s.mu.Lock()
		s.closed = true
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// zeroAppend pushes e at the tail of the zero-ref list.
func (s *shard) zeroAppend(e *entry) {
	e.prev, e.next = s.zeroTail, nil
	if s.zeroTail != nil {
		s.zeroTail.next = e
	} else {
		s.zeroHead = e
	}
	s.zeroTail = e
}

// zeroRemove unlinks e from the zero-ref list.
func (s *shard) zeroRemove(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.zeroHead = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.zeroTail = e.prev
	}
	e.prev, e.next = nil, nil
}
