package cache

import (
	"sync"
	"testing"
	"time"

	"gminer/internal/graph"
	"gminer/internal/metrics"
)

func v(id graph.VertexID) *graph.Vertex {
	return &graph.Vertex{ID: id, Adj: []graph.VertexID{id + 1}}
}

func TestAcquireMissThenInsertHit(t *testing.T) {
	c := New(4, nil)
	if _, ok := c.Acquire(1); ok {
		t.Fatal("unexpected hit")
	}
	if !c.Insert(v(1)) {
		t.Fatal("insert failed")
	}
	got, ok := c.Acquire(1)
	if !ok || got.ID != 1 {
		t.Fatal("expected hit after insert")
	}
	if c.Refs(1) != 2 { // insert ref + acquire ref
		t.Fatalf("refs=%d want 2", c.Refs(1))
	}
}

func TestLazyEviction(t *testing.T) {
	// The paper's Figure 3 scenario: zero-ref vertices stay cached and can
	// be re-referenced until capacity forces replacement.
	c := New(2, nil)
	c.Insert(v(1))
	c.Insert(v(2))
	c.Release(1, 2)
	// Both at ref 0; both still resident.
	if _, ok := c.Acquire(1); !ok {
		t.Fatal("zero-ref vertex evicted eagerly")
	}
	c.Release(1)
	// Cache full; inserting 3 must evict the oldest zero-ref (2).
	c.Insert(v(3))
	if _, ok := c.Peek(2); ok {
		t.Fatal("expected 2 to be evicted (oldest zero-ref)")
	}
	if _, ok := c.Peek(1); !ok {
		t.Fatal("1 should survive (re-referenced more recently)")
	}
}

func TestReferencedNeverEvicted(t *testing.T) {
	c := New(2, nil)
	c.Insert(v(1)) // ref 1
	c.Insert(v(2)) // ref 1
	if c.TryInsert(v(3)) {
		t.Fatal("TryInsert must fail when everything is referenced")
	}
	c.Release(1)
	if !c.TryInsert(v(3)) {
		t.Fatal("TryInsert should succeed after a release")
	}
	if _, ok := c.Peek(1); ok {
		t.Fatal("1 should have been evicted")
	}
	if _, ok := c.Peek(2); !ok {
		t.Fatal("2 is referenced and must stay")
	}
}

func TestInsertBlocksUntilRelease(t *testing.T) {
	c := New(1, nil)
	c.Insert(v(1))
	done := make(chan bool)
	go func() {
		done <- c.Insert(v(2)) // blocks: cache full of referenced vertices
	}()
	select {
	case <-done:
		t.Fatal("Insert should have blocked")
	case <-time.After(10 * time.Millisecond):
	}
	c.Release(1)
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("insert failed after release")
		}
	case <-time.After(time.Second):
		t.Fatal("Insert never unblocked")
	}
}

func TestCloseUnblocksInsert(t *testing.T) {
	c := New(1, nil)
	c.Insert(v(1))
	done := make(chan bool)
	go func() { done <- c.Insert(v(2)) }()
	time.Sleep(5 * time.Millisecond)
	c.Close()
	if ok := <-done; ok {
		t.Fatal("Insert should fail after Close")
	}
}

func TestForceInsertOverflowAndShed(t *testing.T) {
	c := New(2, nil)
	c.Insert(v(1))
	c.Insert(v(2))
	c.ForceInsert(v(3)) // over capacity
	if c.Len() != 3 {
		t.Fatalf("len=%d want 3", c.Len())
	}
	c.Release(3) // zero-ref overflow entry sheds immediately
	if c.Len() != 2 {
		t.Fatalf("overflow not shed: len=%d", c.Len())
	}
}

func TestDuplicateInsertAddsReference(t *testing.T) {
	c := New(4, nil)
	c.Insert(v(1))
	c.Insert(v(1))
	if c.Refs(1) != 2 {
		t.Fatalf("refs=%d want 2", c.Refs(1))
	}
	c.Release(1)
	if c.Refs(1) != 1 {
		t.Fatalf("refs=%d want 1", c.Refs(1))
	}
}

func TestReleaseUnknownIsNoop(t *testing.T) {
	c := New(2, nil)
	c.Release(99) // must not panic or corrupt
	c.Insert(v(1))
	c.Release(1)
	c.Release(1) // second release of a zero-ref entry is ignored
	if c.Refs(1) != 0 {
		t.Fatalf("refs=%d want 0", c.Refs(1))
	}
}

func TestHitMissCounters(t *testing.T) {
	m := &metrics.Counters{}
	c := New(2, m)
	c.Acquire(1)
	c.Insert(v(1))
	c.Acquire(1)
	snap := m.Snapshot()
	if snap.CacheHits != 1 || snap.CacheMisses != 1 {
		t.Fatalf("hits=%d misses=%d", snap.CacheHits, snap.CacheMisses)
	}
}

func TestBytesTracking(t *testing.T) {
	c := New(2, nil)
	c.Insert(v(1))
	if c.Bytes() <= 0 {
		t.Fatal("bytes not tracked")
	}
	before := c.Bytes()
	c.Insert(v(2))
	c.Release(1, 2)
	c.TryInsert(v(3)) // evicts 1
	if c.Bytes() <= 0 || c.Bytes() > 3*before {
		t.Fatalf("bytes accounting off: %d", c.Bytes())
	}
}

func TestConcurrentChurn(t *testing.T) {
	c := New(64, &metrics.Counters{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := graph.VertexID((w*500 + i) % 128)
				if _, ok := c.Acquire(id); !ok {
					if !c.TryInsert(v(id)) {
						c.ForceInsert(v(id))
					}
				}
				c.Release(id)
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 65 {
		t.Fatalf("cache exceeded capacity bound after churn: %d", c.Len())
	}
}
