package cache

import (
	"fmt"
	"testing"

	"gminer/internal/graph"
)

func BenchmarkAcquireHit(b *testing.B) {
	c := New(1024, nil)
	for i := 0; i < 1024; i++ {
		c.Insert(v(graph.VertexID(i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Acquire(graph.VertexID(i % 1024))
		c.Release(graph.VertexID(i % 1024))
	}
}

func BenchmarkAcquireMiss(b *testing.B) {
	c := New(64, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Acquire(graph.VertexID(1 << 40)) // never present
	}
}

func BenchmarkInsertEvictCycle(b *testing.B) {
	c := New(128, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := graph.VertexID(i)
		c.TryInsert(v(id))
		c.Release(id)
	}
}

// BenchmarkAcquireParallel is the contention benchmark behind the shard
// design: GOMAXPROCS goroutines hammering Acquire/Release on a hot set,
// at the paper's single-lock configuration (shards=1) and sharded.
// cmd/bench runs the same loop standalone to produce BENCH_PR3.json.
func BenchmarkAcquireParallel(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c := NewSharded(4096, shards, nil)
			for i := 0; i < 4096; i++ {
				c.Insert(v(graph.VertexID(i)))
				c.Release(graph.VertexID(i))
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					id := graph.VertexID(i % 4096)
					i++
					c.Acquire(id)
					c.Release(id)
				}
			})
		})
	}
}

func BenchmarkMixedWorkload(b *testing.B) {
	// 80% hits over a hot set, 20% insert+evict churn: the retriever's
	// steady-state pattern.
	c := New(256, nil)
	for i := 0; i < 200; i++ {
		c.Insert(v(graph.VertexID(i)))
		c.Release(graph.VertexID(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%5 == 0 {
			id := graph.VertexID(1000 + i)
			c.TryInsert(v(id))
			c.Release(id)
		} else {
			id := graph.VertexID(i % 200)
			c.Acquire(id)
			c.Release(id)
		}
	}
}
