package cache

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"gminer/internal/graph"
	"gminer/internal/metrics"
)

// shardCounts is the sweep every semantics test runs at: 1 pins the
// paper's original single-lock behavior, 4 and 16 exercise the sharded
// variants with and without capacity remainders.
var shardCounts = []int{1, 4, 16}

// sameShardIDs returns n distinct vertex IDs that all map to the shard
// of seed, so tests can reason about per-shard eviction order and
// blocking regardless of the shard count.
func sameShardIDs(c *RCV, seed graph.VertexID, n int) []graph.VertexID {
	target := c.shardFor(seed)
	out := make([]graph.VertexID, 0, n)
	for id := seed; len(out) < n; id++ {
		if c.shardFor(id) == target {
			out = append(out, id)
		}
	}
	return out
}

func TestNewShardedShardAndCapacitySplit(t *testing.T) {
	cases := []struct {
		capacity, shards, wantShards int
	}{
		{16, 1, 1},
		{16, 4, 4},
		{16, 5, 4}, // rounded down to a power of two
		{16, 16, 16},
		{2, 16, 2}, // shards clamped to capacity
		{0, 0, 1},  // degenerate inputs clamp to 1/1
		{10, 4, 4}, // capacity remainder spread over first shards
	}
	for _, tc := range cases {
		c := NewSharded(tc.capacity, tc.shards, nil)
		if c.Shards() != tc.wantShards {
			t.Errorf("NewSharded(%d,%d): shards=%d want %d",
				tc.capacity, tc.shards, c.Shards(), tc.wantShards)
		}
		wantCap := tc.capacity
		if wantCap < 1 {
			wantCap = 1
		}
		if c.Capacity() != wantCap {
			t.Errorf("NewSharded(%d,%d): capacity=%d want %d",
				tc.capacity, tc.shards, c.Capacity(), wantCap)
		}
		sum := 0
		for _, s := range c.shards {
			if s.capacity < 1 {
				t.Errorf("NewSharded(%d,%d): shard capacity %d < 1",
					tc.capacity, tc.shards, s.capacity)
			}
			sum += s.capacity
		}
		if sum != wantCap {
			t.Errorf("NewSharded(%d,%d): shard capacities sum to %d want %d",
				tc.capacity, tc.shards, sum, wantCap)
		}
	}
}

// TestShardedRefcountInvariants: Acquire/Release reference counting must
// behave identically at every shard count.
func TestShardedRefcountInvariants(t *testing.T) {
	for _, n := range shardCounts {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			c := NewSharded(16*n, n, nil)
			steps := []struct {
				op   string
				id   graph.VertexID
				want int // refcount after the step; -1 = not cached
			}{
				{"insert", 1, 1},
				{"acquire", 1, 2},
				{"insert", 1, 3}, // duplicate insert adds a reference
				{"release", 1, 2},
				{"release", 1, 1},
				{"release", 1, 0},
				{"release", 1, 0},   // over-release of a zero-ref entry is ignored
				{"release", 99, -1}, // unknown id is a no-op
				{"acquire", 1, 1},   // zero-ref entry is re-referenced, not gone
			}
			for i, st := range steps {
				switch st.op {
				case "insert":
					if !c.Insert(v(st.id)) {
						t.Fatalf("step %d: insert failed", i)
					}
				case "acquire":
					if _, ok := c.Acquire(st.id); !ok {
						t.Fatalf("step %d: acquire missed", i)
					}
				case "release":
					c.Release(st.id)
				}
				if got := c.Refs(st.id); got != st.want {
					t.Fatalf("step %d (%s %d): refs=%d want %d", i, st.op, st.id, got, st.want)
				}
			}
		})
	}
}

// TestShardedLazyEvictionOrderWithinShard: within one shard, eviction
// must replace the oldest zero-referenced vertex, in Release order, and
// never a referenced one — the paper's lazy model, per shard.
func TestShardedLazyEvictionOrderWithinShard(t *testing.T) {
	for _, n := range shardCounts {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			// Every shard gets capacity 4.
			c := NewSharded(4*n, n, nil)
			ids := sameShardIDs(c, 0, 7)
			a, b, x, y, e, f, extra := ids[0], ids[1], ids[2], ids[3], ids[4], ids[5], ids[6]
			for _, id := range []graph.VertexID{a, b, x, y} {
				if !c.Insert(v(id)) {
					t.Fatal("insert failed")
				}
			}
			// Release in order b, a: zero-ref FIFO is [b, a]; x, y stay
			// referenced.
			c.Release(b)
			c.Release(a)
			// Shard full: inserting e evicts b (oldest zero-ref), not a.
			if !c.TryInsert(v(e)) {
				t.Fatal("TryInsert should evict a zero-ref entry")
			}
			if _, ok := c.Peek(b); ok {
				t.Fatal("b should have been evicted first (oldest zero-ref)")
			}
			if _, ok := c.Peek(a); !ok {
				t.Fatal("a released later must survive b's eviction")
			}
			// Next insert evicts a; the referenced x and y must survive.
			if !c.TryInsert(v(f)) {
				t.Fatal("TryInsert should evict the remaining zero-ref entry")
			}
			if _, ok := c.Peek(a); ok {
				t.Fatal("a should be evicted second")
			}
			for _, id := range []graph.VertexID{x, y, e, f} {
				if _, ok := c.Peek(id); !ok {
					t.Fatalf("referenced vertex %d evicted", id)
				}
			}
			// Everything referenced: a same-shard TryInsert must fail.
			if c.TryInsert(v(extra)) {
				t.Fatal("TryInsert must fail when the shard is full of referenced vertices")
			}
		})
	}
}

// TestShardedFullOfReferencedBlocksAndWakes: Insert into a shard full of
// referenced vertices sleeps until a Release in that shard; Releases in
// other shards must not produce space (per-shard capacity), and Close
// must wake the sleeper.
func TestShardedFullOfReferencedBlocksAndWakes(t *testing.T) {
	for _, n := range shardCounts {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			c := NewSharded(n, n, nil) // every shard: capacity 1
			ids := sameShardIDs(c, 0, 3)
			held, blocked, third := ids[0], ids[1], ids[2]
			if !c.Insert(v(held)) {
				t.Fatal("insert failed")
			}
			done := make(chan bool, 1)
			go func() { done <- c.Insert(v(blocked)) }()
			select {
			case <-done:
				t.Fatal("Insert should block: shard full of referenced vertices")
			case <-time.After(10 * time.Millisecond):
			}
			if n > 1 {
				// A release in a different shard frees no space here.
				other := graph.VertexID(0)
				for c.shardFor(other) == c.shardFor(held) {
					other++
				}
				c.Insert(v(other))
				c.Release(other)
				select {
				case <-done:
					t.Fatal("Insert woke on a foreign shard's release")
				case <-time.After(10 * time.Millisecond):
				}
			}
			c.Release(held)
			select {
			case ok := <-done:
				if !ok {
					t.Fatal("insert failed after release")
				}
			case <-time.After(time.Second):
				t.Fatal("Insert never unblocked after same-shard release")
			}
			// Close wakes a fresh sleeper (the global wakeup). third is in
			// the same (full, referenced) shard, so this Insert sleeps too.
			go func() { done <- c.Insert(v(third)) }()
			time.Sleep(5 * time.Millisecond)
			c.Close()
			select {
			case ok := <-done:
				if ok {
					t.Fatal("Insert should fail after Close")
				}
			case <-time.After(time.Second):
				t.Fatal("Close did not wake the blocked Insert")
			}
		})
	}
}

// TestShardedCapacityBound: under churn the cache never exceeds its total
// capacity (modulo ForceInsert overflow, which must shed on release).
func TestShardedCapacityBound(t *testing.T) {
	for _, n := range shardCounts {
		c := NewSharded(64, n, nil)
		for i := 0; i < 1000; i++ {
			id := graph.VertexID(i)
			if !c.TryInsert(v(id)) {
				c.ForceInsert(v(id))
			}
			c.Release(id)
		}
		if c.Len() > 64 {
			t.Fatalf("shards=%d: len=%d exceeds capacity 64 after churn", n, c.Len())
		}
		if c.Bytes() <= 0 {
			t.Fatalf("shards=%d: bytes accounting broken: %d", n, c.Bytes())
		}
	}
}

// TestShardedConcurrentStress is the -race stress test: concurrent
// Acquire/Insert/TryInsert/ForceInsert/Release/Peek across shards, with
// blocking Inserts kept live by a releaser, at every shard count.
func TestShardedConcurrentStress(t *testing.T) {
	for _, n := range shardCounts {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			c := NewSharded(128, n, &metrics.Counters{})
			const goroutines = 8
			const iters = 2000
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						id := graph.VertexID((g*iters + i) % 256)
						switch i % 4 {
						case 0:
							if _, ok := c.Acquire(id); !ok {
								if !c.TryInsert(v(id)) {
									c.ForceInsert(v(id))
								}
							}
							c.Release(id)
						case 1:
							if !c.TryInsert(v(id)) {
								c.ForceInsert(v(id))
							}
							c.Release(id)
						case 2:
							c.Peek(id)
							c.Refs(id)
						case 3:
							_ = c.Len()
							_ = c.Bytes()
						}
					}
				}(g)
			}
			wg.Wait()
			if c.Len() > 129 {
				t.Fatalf("cache exceeded capacity bound after stress: %d", c.Len())
			}
		})
	}
}
