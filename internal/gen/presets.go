package gen

import (
	"fmt"
	"sort"

	"gminer/internal/graph"
)

// Preset names the six scaled-down synthetic stand-ins for the paper's
// Table 2 datasets. Sizes are scaled down by roughly 1000x so the full
// evaluation harness runs on one machine, but the *relative* ordering of
// |V|, |E| and skew between datasets follows Table 2:
//
//	Skitter    1.7M /  11M   -> skitter-s     power-law, sparse
//	Orkut      3.1M / 117M   -> orkut-s       power-law, dense (avg deg ~76)
//	BTC        165M / 773M   -> btc-s         huge, very sparse (avg deg ~4.7)
//	Friendster  66M / 1.8B   -> friendster-s  largest edge count
//	Tencent    1.9M /  50M   -> tencent-s     attributed, high-dim tags
//	DBLP       1.8M / 8.4M   -> dblp-s        attributed co-authorship
type Preset string

const (
	Skitter    Preset = "skitter-s"
	Orkut      Preset = "orkut-s"
	BTC        Preset = "btc-s"
	Friendster Preset = "friendster-s"
	Tencent    Preset = "tencent-s"
	DBLP       Preset = "dblp-s"
)

// Presets lists all dataset presets in Table 2 order.
func Presets() []Preset {
	return []Preset{Skitter, Orkut, BTC, Friendster, Tencent, DBLP}
}

// NonAttributed lists the four non-attributed presets used by TC/MCF
// (Table 3) in size order.
func NonAttributed() []Preset {
	return []Preset{Skitter, Orkut, BTC, Friendster}
}

// Scale multiplies preset sizes; 1.0 is the default laptop-scale setting.
// Tests use smaller scales via Build's scale parameter.

// Build generates the preset dataset at the given scale in (0, 1].
// Generation is deterministic for a given (preset, scale).
func Build(p Preset, scale float64) (*graph.Graph, error) {
	if scale <= 0 {
		scale = 1.0
	}
	sc := func(x int) int {
		v := int(float64(x) * scale)
		if v < 16 {
			v = 16
		}
		return v
	}
	sce := func(x int64) int64 {
		v := int64(float64(x) * scale)
		if v < 64 {
			v = 64
		}
		return v
	}
	switch p {
	case Skitter:
		// Sparse power-law: ~2k vertices, ~11k edges, high max degree.
		g := RMAT(RMATConfig{Scale: log2(sc(2048)), Edges: sce(11000), Seed: 101})
		return g, nil
	case Orkut:
		// Dense power-law: ~4k vertices, ~120k edges (avg deg ~60).
		g := RMAT(RMATConfig{Scale: log2(sc(4096)), Edges: sce(120000), Seed: 102})
		return g, nil
	case BTC:
		// Very sparse, larger vertex count: ~16k vertices, ~40k edges.
		g := RMAT(RMATConfig{Scale: log2(sc(16384)), Edges: sce(40000), A: 0.45, B: 0.25, C: 0.25, Seed: 103})
		return g, nil
	case Friendster:
		// Largest edge count: ~8k vertices, ~220k edges.
		g := RMAT(RMATConfig{Scale: log2(sc(8192)), Edges: sce(220000), Seed: 104})
		return g, nil
	case Tencent:
		// Attributed social graph: ~2k vertices, ~50k edges, 16-dim tags.
		g := RMAT(RMATConfig{Scale: log2(sc(2048)), Edges: sce(50000), Seed: 105})
		AssignAttrs(g, 16, 30, 1105)
		return g, nil
	case DBLP:
		// Attributed co-authorship with community structure.
		g, _ := Community(CommunityConfig{
			Communities: sc(120),
			MinSize:     8,
			MaxSize:     24,
			PIn:         0.35,
			Bridges:     sce(3000),
			AttrDim:     5,
			AttrRange:   10,
			Seed:        106,
		})
		return g, nil
	default:
		return nil, fmt.Errorf("gen: unknown preset %q", p)
	}
}

// MustBuild is Build that panics on error, for tests and benchmarks.
func MustBuild(p Preset, scale float64) *graph.Graph {
	g, err := Build(p, scale)
	if err != nil {
		panic(err)
	}
	return g
}

// BuildLabeled builds the preset and assigns uniform labels from the
// 7-letter alphabet used by the paper's GM experiments.
func BuildLabeled(p Preset, scale float64) (*graph.Graph, error) {
	g, err := Build(p, scale)
	if err != nil {
		return nil, err
	}
	AssignLabels(g, 7, int64(1000)+int64(len(p)))
	return g, nil
}

// BuildAttributed builds the preset; if it is non-attributed, assigns the
// paper's 5-dim [1,10] uniform attribute vectors (footnote 7).
func BuildAttributed(p Preset, scale float64) (*graph.Graph, error) {
	g, err := Build(p, scale)
	if err != nil {
		return nil, err
	}
	if !g.Attributed() {
		AssignAttrs(g, 5, 10, int64(2000)+int64(len(p)))
	}
	return g, nil
}

// log2 returns ceil(log2(n)) for n >= 1.
func log2(n int) int {
	s := 0
	for (1 << s) < n {
		s++
	}
	return s
}

// DegreeHistogram returns the sorted (degree, count) pairs of g, used by
// generator tests to check for heavy tails.
func DegreeHistogram(g *graph.Graph) [][2]int {
	counts := make(map[int]int)
	g.ForEach(func(v *graph.Vertex) bool {
		counts[v.Degree()]++
		return true
	})
	out := make([][2]int, 0, len(counts))
	for d, c := range counts {
		out = append(out, [2]int{d, c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
