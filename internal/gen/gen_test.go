package gen

import (
	"testing"

	"gminer/internal/graph"
)

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(100, 300, 1)
	if g.NumVertices() != 100 {
		t.Fatalf("V=%d", g.NumVertices())
	}
	if g.NumEdges() == 0 || g.NumEdges() > 300 {
		t.Fatalf("E=%d", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRMATDeterministic(t *testing.T) {
	a := RMAT(RMATConfig{Scale: 8, Edges: 1000, Seed: 5})
	b := RMAT(RMATConfig{Scale: 8, Edges: 1000, Seed: 5})
	if a.NumEdges() != b.NumEdges() || a.MaxDegree() != b.MaxDegree() {
		t.Fatal("RMAT not deterministic")
	}
	c := RMAT(RMATConfig{Scale: 8, Edges: 1000, Seed: 6})
	if a.NumEdges() == c.NumEdges() && a.MaxDegree() == c.MaxDegree() &&
		a.AvgDegree() == c.AvgDegree() {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestRMATHeavyTail(t *testing.T) {
	g := RMAT(RMATConfig{Scale: 11, Edges: 20000, Seed: 7})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Power-law-ish: max degree far above average.
	if float64(g.MaxDegree()) < 8*g.AvgDegree() {
		t.Fatalf("no heavy tail: max %d avg %.1f", g.MaxDegree(), g.AvgDegree())
	}
}

func TestCommunityStructure(t *testing.T) {
	g, truth := Community(CommunityConfig{
		Communities: 10, MinSize: 8, MaxSize: 12, PIn: 0.6, Bridges: 50, Seed: 9,
	})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.Attributed() {
		t.Fatal("community graph must be attributed")
	}
	// Most edges must be intra-community.
	var intra, inter int
	g.ForEach(func(v *graph.Vertex) bool {
		for _, u := range v.Adj {
			if u > v.ID {
				if truth[v.ID] == truth[u] {
					intra++
				} else {
					inter++
				}
			}
		}
		return true
	})
	if intra <= 2*inter {
		t.Fatalf("weak communities: intra=%d inter=%d", intra, inter)
	}
}

func TestAssignLabelsUniform(t *testing.T) {
	g := RMAT(RMATConfig{Scale: 10, Edges: 3000, Seed: 11})
	AssignLabels(g, 7, 13)
	counts := make(map[int32]int)
	g.ForEach(func(v *graph.Vertex) bool {
		if v.Label < 0 || v.Label >= 7 {
			t.Fatalf("label out of range: %d", v.Label)
		}
		counts[v.Label]++
		return true
	})
	fair := g.NumVertices() / 7
	for l, c := range counts {
		if c < fair/2 || c > 2*fair {
			t.Fatalf("label %d skewed: %d (fair %d)", l, c, fair)
		}
	}
}

func TestAssignAttrsRange(t *testing.T) {
	g := RMAT(RMATConfig{Scale: 7, Edges: 300, Seed: 13})
	AssignAttrs(g, 5, 10, 17)
	g.ForEach(func(v *graph.Vertex) bool {
		if len(v.Attrs) != 5 {
			t.Fatalf("dim=%d", len(v.Attrs))
		}
		for _, a := range v.Attrs {
			if a < 1 || a > 10 {
				t.Fatalf("attr out of range: %d", a)
			}
		}
		return true
	})
}

func TestPresetsBuild(t *testing.T) {
	for _, p := range Presets() {
		g, err := Build(p, 0.05)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Fatalf("%s: empty", p)
		}
	}
}

func TestPresetRelativeOrdering(t *testing.T) {
	// Table 2's relative shape: friendster has the most edges of the
	// non-attributed set; btc has the most vertices and smallest avg deg.
	sizes := map[Preset]graph.Stats{}
	for _, p := range NonAttributed() {
		g := MustBuild(p, 0.25)
		sizes[p] = graph.ComputeStats(string(p), g)
	}
	if sizes[Friendster].E <= sizes[Orkut].E || sizes[Orkut].E <= sizes[Skitter].E {
		t.Fatalf("edge ordering wrong: %v", sizes)
	}
	if sizes[BTC].V <= sizes[Orkut].V {
		t.Fatalf("btc should have most vertices: %v", sizes)
	}
	if sizes[BTC].AvgDeg >= sizes[Orkut].AvgDeg {
		t.Fatalf("btc should be sparsest: %v", sizes)
	}
}

func TestPresetAttribution(t *testing.T) {
	ten := MustBuild(Tencent, 0.1)
	if !ten.Attributed() {
		t.Fatal("tencent-s must be attributed")
	}
	dblp := MustBuild(DBLP, 0.1)
	if !dblp.Attributed() {
		t.Fatal("dblp-s must be attributed")
	}
	g, err := BuildLabeled(Skitter, 0.1)
	if err != nil || !g.Labeled() {
		t.Fatal("BuildLabeled failed")
	}
	g2, err := BuildAttributed(Orkut, 0.1)
	if err != nil || !g2.Attributed() {
		t.Fatal("BuildAttributed failed")
	}
}

func TestUnknownPreset(t *testing.T) {
	if _, err := Build(Preset("nope"), 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := RMAT(RMATConfig{Scale: 8, Edges: 1000, Seed: 19})
	h := DegreeHistogram(g)
	total := 0
	prev := -1
	for _, dc := range h {
		if dc[0] <= prev {
			t.Fatal("histogram not sorted")
		}
		prev = dc[0]
		total += dc[1]
	}
	if total != g.NumVertices() {
		t.Fatalf("histogram covers %d of %d", total, g.NumVertices())
	}
}

func TestSmallWorld(t *testing.T) {
	g := SmallWorld(SmallWorldConfig{N: 200, K: 6, Beta: 0.1, Seed: 21})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 200 {
		t.Fatalf("V=%d", g.NumVertices())
	}
	// Ring lattice degree ~K with small variance from rewiring.
	if g.AvgDegree() < 4 || g.AvgDegree() > 7 {
		t.Fatalf("avg degree %.2f not near K=6", g.AvgDegree())
	}
	// Small-world: max degree stays modest (no power-law hubs).
	if g.MaxDegree() > 20 {
		t.Fatalf("unexpected hub: max degree %d", g.MaxDegree())
	}
}

func TestSmallWorldDegenerateParams(t *testing.T) {
	g := SmallWorld(SmallWorldConfig{N: 2, K: 0, Beta: 2.0, Seed: 1})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() < 4 {
		t.Fatal("minimum size not enforced")
	}
}
