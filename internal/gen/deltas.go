package gen

import (
	"math/rand"

	"gminer/internal/dyngraph"
	"gminer/internal/graph"
)

// DeltasConfig parameterizes a generated mutation stream.
type DeltasConfig struct {
	Batches int   // number of batches (default 4)
	Ops     int   // ops per batch (default 32)
	Seed    int64 // stream seed
}

func (c *DeltasConfig) defaults() {
	if c.Batches <= 0 {
		c.Batches = 4
	}
	if c.Ops <= 0 {
		c.Ops = 32
	}
}

// Deltas generates a seeded, replayable mutation stream for g: a mix of
// edge insertions (between existing vertices), edge deletions (sampled
// from g's initial adjacency), fresh-vertex insertions (annotated to match
// g: labeled iff g is labeled, attributed iff g is attributed) immediately
// wired into the graph, and vertex deletions.
//
// The stream is a pure function of (g's initial vertex set and adjacency,
// cfg): it never consults the evolving graph, so the same call on an
// identically built graph yields the same batches — ops that turn out to
// be no-ops at apply time (deleting an already-deleted edge) are counted
// but harmless, which is what makes the stream replayable.
func Deltas(g *graph.Graph, cfg DeltasConfig) []dyngraph.Batch {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	ids := g.IDs()
	if len(ids) == 0 {
		return nil
	}
	var maxID graph.VertexID
	for _, id := range ids {
		if id > maxID {
			maxID = id
		}
	}
	nextID := maxID + 1
	labels := int32(0)
	if g.Labeled() {
		g.ForEach(func(v *graph.Vertex) bool {
			if v.Label >= labels {
				labels = v.Label + 1
			}
			return true
		})
	}
	attrDim, attrMax := 0, int32(0)
	if g.Attributed() {
		g.ForEach(func(v *graph.Vertex) bool {
			if len(v.Attrs) > attrDim {
				attrDim = len(v.Attrs)
			}
			for _, a := range v.Attrs {
				if a >= attrMax {
					attrMax = a + 1
				}
			}
			return true
		})
	}

	pick := func() graph.VertexID { return ids[rng.Intn(len(ids))] }
	// born tracks stream-created vertices so edge ops can target them too.
	var born []graph.VertexID
	pickAny := func() graph.VertexID {
		if len(born) > 0 && rng.Float64() < 0.25 {
			return born[rng.Intn(len(born))]
		}
		return pick()
	}

	batches := make([]dyngraph.Batch, 0, cfg.Batches)
	for bi := 0; bi < cfg.Batches; bi++ {
		var ops []dyngraph.Mutation
		for len(ops) < cfg.Ops {
			switch r := rng.Float64(); {
			case r < 0.40: // edge insertion
				u, w := pickAny(), pickAny()
				if u == w {
					continue
				}
				ops = append(ops, dyngraph.Mutation{Op: dyngraph.OpAddEdge, U: u, W: w})
			case r < 0.75: // edge deletion, sampled from initial adjacency
				u := pick()
				adj := g.Vertex(u).Adj
				if len(adj) == 0 {
					continue
				}
				ops = append(ops, dyngraph.Mutation{Op: dyngraph.OpDelEdge, U: u, W: adj[rng.Intn(len(adj))]})
			case r < 0.92: // fresh vertex, immediately wired in
				id := nextID
				nextID++
				m := dyngraph.Mutation{Op: dyngraph.OpAddVertex, ID: id}
				if labels > 0 {
					l := rng.Int31n(labels)
					m.Label = &l
				}
				if attrDim > 0 {
					m.Attrs = make([]int32, 1+rng.Intn(attrDim))
					for i := range m.Attrs {
						m.Attrs[i] = rng.Int31n(attrMax)
					}
				}
				ops = append(ops, m, dyngraph.Mutation{Op: dyngraph.OpAddEdge, U: id, W: pick()})
				born = append(born, id)
			default: // vertex deletion
				ops = append(ops, dyngraph.Mutation{Op: dyngraph.OpDelVertex, ID: pick()})
			}
		}
		batches = append(batches, dyngraph.Batch{Ops: ops})
	}
	return batches
}
