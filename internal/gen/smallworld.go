package gen

import (
	"math/rand"

	"gminer/internal/graph"
)

// SmallWorldConfig controls the Watts–Strogatz small-world generator:
// a ring lattice of n vertices each wired to its K nearest neighbors,
// with every edge rewired to a random endpoint with probability Beta.
// Small-world graphs stress the BDG partitioner differently from
// power-law graphs: blocks are long arcs of the ring, and rewired edges
// are the (rare) cut edges — a useful extra regime for partitioning and
// cache experiments.
type SmallWorldConfig struct {
	N    int
	K    int     // even; each vertex connects to K nearest ring neighbors
	Beta float64 // rewiring probability
	Seed int64
}

// SmallWorld generates a Watts–Strogatz graph.
func SmallWorld(cfg SmallWorldConfig) *graph.Graph {
	if cfg.N < 4 {
		cfg.N = 4
	}
	if cfg.K < 2 {
		cfg.K = 2
	}
	if cfg.K >= cfg.N {
		cfg.K = cfg.N - 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.New(cfg.N)
	for i := 0; i < cfg.N; i++ {
		g.AddVertex(graph.VertexID(i))
	}
	for i := 0; i < cfg.N; i++ {
		for j := 1; j <= cfg.K/2; j++ {
			target := (i + j) % cfg.N
			if rng.Float64() < cfg.Beta {
				// Rewire to a uniform random endpoint (avoid self loops;
				// duplicate edges are deduplicated by Freeze).
				target = rng.Intn(cfg.N)
				if target == i {
					target = (i + 1) % cfg.N
				}
			}
			g.AddEdge(graph.VertexID(i), graph.VertexID(target))
		}
	}
	g.Freeze()
	return g
}
