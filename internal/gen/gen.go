// Package gen generates the synthetic datasets used by the evaluation.
//
// The paper evaluates on six real-world graphs (Table 2): Skitter, Orkut,
// BTC, Friendster (non-attributed) and Tencent, DBLP (attributed). Those
// inputs are not available here, so gen provides deterministic synthetic
// generators whose outputs preserve the properties the evaluation depends
// on: heavy-tailed degree distributions (power-law / RMAT-style), community
// structure (planted partition), label assignment with a uniform alphabet
// (the paper assigns labels {a..g} uniformly for GM), and 5-dimensional
// attribute vectors drawn uniformly from [1,10] (the paper's footnote 7).
package gen

import (
	"math/rand"

	"gminer/internal/graph"
)

// ErdosRenyi returns G(n, m): n vertices, m random undirected edges.
func ErdosRenyi(n int, m int64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddVertex(graph.VertexID(i))
	}
	for e := int64(0); e < m; e++ {
		u := graph.VertexID(rng.Intn(n))
		w := graph.VertexID(rng.Intn(n))
		if u != w {
			g.AddEdge(u, w)
		}
	}
	g.Freeze()
	return g
}

// RMATConfig controls the RMAT recursive-matrix generator, the standard
// way to synthesize power-law graphs resembling social networks.
type RMATConfig struct {
	Scale int     // number of vertices = 2^Scale
	Edges int64   // number of (pre-dedup) undirected edges
	A     float64 // RMAT quadrant probabilities; defaults 0.57/0.19/0.19/0.05
	B     float64
	C     float64
	Seed  int64
}

func (c *RMATConfig) defaults() {
	if c.A == 0 && c.B == 0 && c.C == 0 {
		c.A, c.B, c.C = 0.57, 0.19, 0.19
	}
}

// RMAT generates a power-law graph. Vertices are labeled 0..2^Scale-1;
// isolated vertices are kept so |V| is exact.
func RMAT(cfg RMATConfig) *graph.Graph {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := 1 << cfg.Scale
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddVertex(graph.VertexID(i))
	}
	for e := int64(0); e < cfg.Edges; e++ {
		u, w := rmatEdge(rng, cfg)
		if u != w {
			g.AddEdge(u, w)
		}
	}
	g.Freeze()
	return g
}

func rmatEdge(rng *rand.Rand, cfg RMATConfig) (graph.VertexID, graph.VertexID) {
	var u, w int
	for bit := cfg.Scale - 1; bit >= 0; bit-- {
		r := rng.Float64()
		switch {
		case r < cfg.A:
			// top-left: no bits set
		case r < cfg.A+cfg.B:
			w |= 1 << bit
		case r < cfg.A+cfg.B+cfg.C:
			u |= 1 << bit
		default:
			u |= 1 << bit
			w |= 1 << bit
		}
	}
	return graph.VertexID(u), graph.VertexID(w)
}

// CommunityConfig controls the planted-partition generator used for the
// attributed-graph applications (CD, GC): k communities of size within
// [MinSize, MaxSize], intra-community edge probability PIn, plus Bridge
// random inter-community edges. Vertices of the same community share a
// dominant attribute pattern so that attribute-based filters align with
// the topology, as in real attributed communities.
type CommunityConfig struct {
	Communities int
	MinSize     int
	MaxSize     int
	PIn         float64
	Bridges     int64
	AttrDim     int   // attributes per vertex (paper footnote 7 uses 5)
	AttrRange   int32 // attribute values drawn from [1, AttrRange]
	Seed        int64
}

// Community generates a planted-partition attributed graph and returns the
// graph plus the ground-truth community assignment (vertex → community).
func Community(cfg CommunityConfig) (*graph.Graph, map[graph.VertexID]int) {
	if cfg.AttrDim == 0 {
		cfg.AttrDim = 5
	}
	if cfg.AttrRange == 0 {
		cfg.AttrRange = 10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.New(cfg.Communities * cfg.MaxSize)
	truth := make(map[graph.VertexID]int)

	var next graph.VertexID
	members := make([][]graph.VertexID, cfg.Communities)
	// Each community has a "home" attribute vector; members copy it with a
	// little per-vertex noise in one dimension, so intra-community attribute
	// similarity is high and inter-community similarity is low.
	for c := 0; c < cfg.Communities; c++ {
		size := cfg.MinSize
		if cfg.MaxSize > cfg.MinSize {
			size += rng.Intn(cfg.MaxSize - cfg.MinSize + 1)
		}
		home := make([]int32, cfg.AttrDim)
		for d := range home {
			home[d] = 1 + rng.Int31n(cfg.AttrRange)
		}
		for i := 0; i < size; i++ {
			id := next
			next++
			v := g.AddVertex(id)
			attrs := append([]int32(nil), home...)
			if rng.Float64() < 0.5 {
				d := rng.Intn(cfg.AttrDim)
				attrs[d] = 1 + rng.Int31n(cfg.AttrRange)
			}
			v.Attrs = attrs
			truth[id] = c
			members[c] = append(members[c], id)
		}
		// Intra-community edges.
		m := members[c]
		for i := 0; i < len(m); i++ {
			for j := i + 1; j < len(m); j++ {
				if rng.Float64() < cfg.PIn {
					g.AddEdge(m[i], m[j])
				}
			}
		}
	}
	// Inter-community bridges.
	for b := int64(0); b < cfg.Bridges; b++ {
		c1 := rng.Intn(cfg.Communities)
		c2 := rng.Intn(cfg.Communities)
		if c1 == c2 || len(members[c1]) == 0 || len(members[c2]) == 0 {
			continue
		}
		u := members[c1][rng.Intn(len(members[c1]))]
		w := members[c2][rng.Intn(len(members[c2]))]
		g.AddEdge(u, w)
	}
	g.Freeze()
	return g, truth
}

// AssignLabels assigns each vertex a label drawn uniformly from
// [0, alphabet), as the paper does for GM ("randomly assigned a label from
// {a,b,c,d,e,f,g} ... with a uniform distribution").
func AssignLabels(g *graph.Graph, alphabet int32, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	g.ForEach(func(v *graph.Vertex) bool {
		v.Label = rng.Int31n(alphabet)
		return true
	})
}

// AssignAttrs assigns each vertex a dim-dimensional attribute vector with
// values drawn uniformly from [1, rangeMax], matching the paper's
// footnote 7 ("5-dimension uniform distribution from [1-10]").
func AssignAttrs(g *graph.Graph, dim int, rangeMax int32, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	g.ForEach(func(v *graph.Vertex) bool {
		attrs := make([]int32, dim)
		for d := range attrs {
			attrs[d] = 1 + rng.Int31n(rangeMax)
		}
		v.Attrs = attrs
		return true
	})
}
