package store

import (
	"testing"

	"gminer/internal/core"
	"gminer/internal/graph"
	"gminer/internal/spill"
)

func benchTasks(n int) []*core.Task {
	tasks := make([]*core.Task, n)
	for i := range tasks {
		t := &core.Task{ID: uint64(i)}
		t.Subgraph.AddVertex(graph.VertexID(i))
		for j := 0; j < 8; j++ {
			t.Cands = append(t.Cands, graph.VertexID((i*7+j*13)%512))
		}
		t.ToPull = t.Cands
		tasks[i] = t
	}
	return tasks
}

func benchStore(b *testing.B, cfg Config) {
	sp, _ := spill.New("", nil)
	s := New(cfg, core.NoContext{}, sp, nil)
	tasks := benchTasks(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Insert(tasks); err != nil {
			b.Fatal(err)
		}
		for range tasks {
			if _, ok := s.TryPop(); !ok {
				b.Fatal("pop failed")
			}
		}
	}
}

func BenchmarkInsertPopLSH(b *testing.B) {
	benchStore(b, Config{MemCapacity: 2048, LSHDims: 4})
}

func BenchmarkInsertPopFIFO(b *testing.B) {
	benchStore(b, Config{MemCapacity: 2048, LSHDims: 0})
}

func BenchmarkInsertPopSpilling(b *testing.B) {
	benchStore(b, Config{MemCapacity: 64, BlockCapacity: 32, LSHDims: 4})
}

func BenchmarkSnapshot(b *testing.B) {
	sp, _ := spill.New("", nil)
	s := New(Config{MemCapacity: 256, BlockCapacity: 128, LSHDims: 4}, core.NoContext{}, sp, nil)
	_ = s.Insert(benchTasks(1024))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Snapshot(); err != nil {
			b.Fatal(err)
		}
	}
}
