package store

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"gminer/internal/core"
	"gminer/internal/graph"
	"gminer/internal/metrics"
	"gminer/internal/spill"
)

func newStore(t *testing.T, cfg Config, dir string) *Store {
	t.Helper()
	sp, err := spill.New(dir, &metrics.Counters{})
	if err != nil {
		t.Fatal(err)
	}
	return New(cfg, core.NoContext{}, sp, &metrics.Counters{})
}

func mkTask(id uint64, pulls ...graph.VertexID) *core.Task {
	t := &core.Task{ID: id}
	t.Subgraph.AddVertex(graph.VertexID(id))
	t.Cands = pulls
	t.ToPull = pulls
	return t
}

func TestInsertPopFIFOWithoutLSH(t *testing.T) {
	s := newStore(t, Config{MemCapacity: 100, LSHDims: 0}, "")
	for i := uint64(1); i <= 5; i++ {
		if err := s.Insert([]*core.Task{mkTask(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= 5; i++ {
		task, ok := s.TryPop()
		if !ok || task.ID != i {
			t.Fatalf("pop %d: got %+v ok=%v", i, task, ok)
		}
	}
	if _, ok := s.TryPop(); ok {
		t.Fatal("store should be empty")
	}
}

func TestLSHGroupsSimilarTasks(t *testing.T) {
	// The Figure 3 property: tasks sharing remote candidates come out
	// adjacent. Two families of tasks with disjoint to_pull sets must not
	// interleave more than a few times.
	s := newStore(t, Config{MemCapacity: 1000, LSHDims: 4, Seed: 7}, "")
	famA := []graph.VertexID{1000, 1001, 1002, 1003}
	famB := []graph.VertexID{2000, 2001, 2002, 2003}
	var tasks []*core.Task
	for i := 0; i < 40; i++ {
		if i%2 == 0 {
			tasks = append(tasks, mkTask(uint64(i), famA...))
		} else {
			tasks = append(tasks, mkTask(uint64(i), famB...))
		}
	}
	rand.New(rand.NewSource(1)).Shuffle(len(tasks), func(i, j int) {
		tasks[i], tasks[j] = tasks[j], tasks[i]
	})
	if err := s.Insert(tasks); err != nil {
		t.Fatal(err)
	}
	switches := 0
	var prev graph.VertexID = -1
	for {
		task, ok := s.TryPop()
		if !ok {
			break
		}
		fam := task.ToPull[0]
		if prev != -1 && fam != prev {
			switches++
		}
		prev = fam
	}
	if switches > 1 {
		t.Fatalf("families interleaved %d times; LSH ordering broken", switches)
	}
}

func TestSpillAndReload(t *testing.T) {
	s := newStore(t, Config{MemCapacity: 8, BlockCapacity: 4, LSHDims: 4}, t.TempDir())
	var want []uint64
	var batch []*core.Task
	for i := uint64(0); i < 50; i++ {
		batch = append(batch, mkTask(i, graph.VertexID(i%7+100)))
		want = append(want, i)
	}
	if err := s.Insert(batch); err != nil {
		t.Fatal(err)
	}
	if s.SpilledBlocks() == 0 {
		t.Fatal("expected disk blocks")
	}
	if s.Size() != 50 {
		t.Fatalf("size=%d", s.Size())
	}
	var got []uint64
	for {
		task, ok := s.TryPop()
		if !ok {
			break
		}
		got = append(got, task.ID)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != len(want) {
		t.Fatalf("lost tasks: got %d want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("task set mismatch at %d: %d vs %d", i, got[i], want[i])
		}
	}
}

func TestMemoryBounded(t *testing.T) {
	s := newStore(t, Config{MemCapacity: 16, BlockCapacity: 8, LSHDims: 4}, "")
	var batch []*core.Task
	for i := uint64(0); i < 500; i++ {
		batch = append(batch, mkTask(i, graph.VertexID(i)))
	}
	if err := s.Insert(batch); err != nil {
		t.Fatal(err)
	}
	// In-memory head must stay within ~MemCapacity tasks.
	perTask := mkTask(0, 1).FootprintBytes()
	if s.MemBytes() > 20*perTask {
		t.Fatalf("head not bounded: %d bytes (%d/task)", s.MemBytes(), perTask)
	}
}

func TestStealTakesFromTail(t *testing.T) {
	s := newStore(t, Config{MemCapacity: 100, LSHDims: 0}, "")
	for i := uint64(0); i < 10; i++ {
		_ = s.Insert([]*core.Task{mkTask(i)})
	}
	stolen := s.Steal(3, nil)
	if len(stolen) != 3 {
		t.Fatalf("stole %d", len(stolen))
	}
	// FIFO keys: the tail holds the newest tasks.
	for _, task := range stolen {
		if task.ID < 7 {
			t.Fatalf("stole from head: task %d", task.ID)
		}
	}
	if s.Size() != 7 {
		t.Fatalf("size=%d", s.Size())
	}
}

func TestStealRespectsEligibility(t *testing.T) {
	s := newStore(t, Config{MemCapacity: 100, LSHDims: 0}, "")
	for i := uint64(0); i < 10; i++ {
		_ = s.Insert([]*core.Task{mkTask(i)})
	}
	stolen := s.Steal(10, func(t *core.Task) bool { return t.ID%2 == 0 })
	if len(stolen) != 5 {
		t.Fatalf("stole %d, want 5", len(stolen))
	}
	for _, task := range stolen {
		if task.ID%2 != 0 {
			t.Fatalf("ineligible task stolen: %d", task.ID)
		}
	}
}

func TestSnapshotRestore(t *testing.T) {
	s := newStore(t, Config{MemCapacity: 4, BlockCapacity: 2, LSHDims: 4}, t.TempDir())
	var batch []*core.Task
	for i := uint64(0); i < 20; i++ {
		batch = append(batch, mkTask(i, graph.VertexID(300+i%5)))
	}
	_ = s.Insert(batch)
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot must not consume the store.
	if s.Size() != 20 {
		t.Fatalf("snapshot drained the store: %d", s.Size())
	}
	tasks, err := DecodeSnapshot(snap, core.NoContext{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 20 {
		t.Fatalf("restored %d tasks", len(tasks))
	}
	seen := map[uint64]bool{}
	for _, task := range tasks {
		seen[task.ID] = true
	}
	for i := uint64(0); i < 20; i++ {
		if !seen[i] {
			t.Fatalf("task %d missing from snapshot", i)
		}
	}
}

func TestPopWaitBlocksAndCloseReleases(t *testing.T) {
	s := newStore(t, Config{MemCapacity: 4}, "")
	done := make(chan bool)
	go func() {
		_, ok := s.PopWait()
		done <- ok
	}()
	s.Close()
	if ok := <-done; ok {
		t.Fatal("PopWait should return false after Close")
	}
}

func TestConcurrentInsertPop(t *testing.T) {
	s := newStore(t, Config{MemCapacity: 32, BlockCapacity: 16, LSHDims: 4}, "")
	const n = 400
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < n; i++ {
			_ = s.Insert([]*core.Task{mkTask(i, graph.VertexID(i%13))})
		}
	}()
	got := 0
	for got < n {
		if _, ok := s.TryPop(); ok {
			got++
		}
	}
	wg.Wait()
	if s.Size() != 0 {
		t.Fatalf("leftover %d", s.Size())
	}
}

// Property: insert-then-drain preserves the multiset of task IDs for any
// batch structure and any spill pressure.
func TestQuickNoTaskLoss(t *testing.T) {
	f := func(seeds []uint16, memCap8 uint8) bool {
		if len(seeds) == 0 {
			return true
		}
		cfg := Config{MemCapacity: int(memCap8%16) + 2, BlockCapacity: 2, LSHDims: 4}
		sp, _ := spill.New("", nil)
		s := New(cfg, core.NoContext{}, sp, nil)
		want := map[uint64]int{}
		for i, x := range seeds {
			task := mkTask(uint64(i), graph.VertexID(x%97))
			want[task.ID]++
			if s.Insert([]*core.Task{task}) != nil {
				return false
			}
		}
		tasks, err := s.Drain()
		if err != nil || len(tasks) != len(seeds) {
			return false
		}
		for _, task := range tasks {
			want[task.ID]--
		}
		for _, c := range want {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
