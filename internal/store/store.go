// Package store implements the task store of the task-pipeline (§4.3,
// §7): all inactive tasks of a worker, held in a priority queue keyed by
// LSH signatures of their to_pull sets so that successively dequeued tasks
// share remote candidates (Figure 3). Only a bounded number of tasks stay
// in memory; the rest are spilled to fixed-capacity disk blocks, each with
// a key-range index, and loaded back when the in-memory head drains.
package store

import (
	"fmt"
	"sort"
	"sync"

	"gminer/internal/core"
	"gminer/internal/lsh"
	"gminer/internal/metrics"
	"gminer/internal/spill"
	"gminer/internal/wire"
)

type item struct {
	key lsh.Signature
	t   *core.Task
}

type diskBlock struct {
	id     int
	minKey lsh.Signature
	count  int
	bytes  int
}

// Config configures a task store.
type Config struct {
	// MemCapacity is the maximum number of inactive tasks kept in memory
	// before spilling (the "head block" plus insertion slack).
	MemCapacity int
	// BlockCapacity is the number of tasks per spilled block.
	BlockCapacity int
	// LSHDims is the minhash signature dimension; 0 disables LSH ordering
	// entirely (tasks are processed in insertion order), reproducing the
	// Dis-LSH configuration of Figure 12.
	LSHDims int
	// Seed seeds the LSH hash family.
	Seed uint64
}

func (c *Config) defaults() {
	if c.MemCapacity <= 0 {
		c.MemCapacity = 4096
	}
	if c.BlockCapacity <= 0 {
		c.BlockCapacity = c.MemCapacity / 2
	}
	if c.BlockCapacity <= 0 {
		c.BlockCapacity = 1
	}
}

// Store is the task store. Safe for concurrent use: executors insert
// batches, the candidate retriever pops.
type Store struct {
	cfg     Config
	signer  *lsh.Signer // nil when LSH disabled
	codec   core.ContextCodec
	spiller *spill.Spiller

	mu     sync.Mutex
	cond   *sync.Cond
	head   []item // sorted ascending by key
	blocks []diskBlock
	seq    uint64 // FIFO tiebreaker / key source when LSH disabled
	size   int
	closed bool

	counters *metrics.Counters
	memBytes int64
}

// New creates a task store spilling through sp.
func New(cfg Config, codec core.ContextCodec, sp *spill.Spiller, counters *metrics.Counters) *Store {
	cfg.defaults()
	s := &Store{cfg: cfg, codec: codec, spiller: sp, counters: counters}
	if cfg.LSHDims > 0 {
		s.signer = lsh.NewSigner(cfg.LSHDims, cfg.Seed)
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// keyFor computes the priority key of a task: the LSH signature of its
// to_pull set, or a FIFO sequence number when LSH is disabled. Tasks with
// nothing to pull get the zero signature and sort first — they are ready
// to run immediately.
func (s *Store) keyFor(t *core.Task) lsh.Signature {
	if s.signer == nil {
		s.seq++
		return lsh.Signature{s.seq}
	}
	if len(t.ToPull) == 0 {
		return make(lsh.Signature, s.signer.K())
	}
	set := make([]uint64, len(t.ToPull))
	for i, id := range t.ToPull {
		set[i] = uint64(id)
	}
	return s.signer.Sign(set)
}

// Insert adds a batch of inactive tasks ("the tasks in this buffer are
// inserted into the task store in batches", §4.3). Spills to disk when
// the in-memory head exceeds its capacity.
func (s *Store) Insert(tasks []*core.Task) error {
	if len(tasks) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	// Sort the batch once and merge with the (sorted) head: O((n+m)·k)
	// instead of n sorted insertions with O(m) memmoves each.
	batch := make([]item, 0, len(tasks))
	for _, t := range tasks {
		t.SetStatus(core.StatusInactive)
		batch = append(batch, item{key: s.keyFor(t), t: t})
		s.size++
		s.memBytes += t.FootprintBytes()
	}
	sort.SliceStable(batch, func(i, j int) bool { return batch[i].key.Less(batch[j].key) })
	merged := make([]item, 0, len(s.head)+len(batch))
	i, j := 0, 0
	for i < len(s.head) && j < len(batch) {
		if !batch[j].key.Less(s.head[i].key) {
			merged = append(merged, s.head[i])
			i++
		} else {
			merged = append(merged, batch[j])
			j++
		}
	}
	merged = append(merged, s.head[i:]...)
	merged = append(merged, batch[j:]...)
	s.head = merged
	if err := s.maybeSpillLocked(); err != nil {
		return err
	}
	s.cond.Broadcast()
	return nil
}

// maybeSpillLocked spills the largest-key suffix of the head into disk
// blocks until the head fits in memory again.
func (s *Store) maybeSpillLocked() error {
	for len(s.head) > s.cfg.MemCapacity {
		n := s.cfg.BlockCapacity
		if n > len(s.head)-s.cfg.MemCapacity/2 {
			n = len(s.head) - s.cfg.MemCapacity/2
		}
		if n <= 0 {
			return nil
		}
		chunk := s.head[len(s.head)-n:]
		s.head = s.head[:len(s.head)-n]
		if err := s.spillChunkLocked(chunk); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) spillChunkLocked(chunk []item) error {
	// Pooled buffers: the spiller copies (or writes out) the block during
	// Write, and one scratch writer per chunk replaces the per-task
	// writer the encode loop used to allocate.
	w := wire.GetWriter(1024 * len(chunk))
	defer wire.PutWriter(w)
	tw := wire.GetWriter(256)
	defer wire.PutWriter(tw)
	w.Uvarint(uint64(len(chunk)))
	for _, it := range chunk {
		w.BytesField(it.key.Bytes())
		tw.Reset()
		core.EncodeTask(tw, it.t, s.codec)
		w.BytesField(tw.Bytes())
		s.memBytes -= it.t.FootprintBytes()
	}
	id, err := s.spiller.Write(w.Bytes())
	if err != nil {
		return err
	}
	s.blocks = append(s.blocks, diskBlock{
		id:     id,
		minKey: append(lsh.Signature(nil), chunk[0].key...),
		count:  len(chunk),
		bytes:  w.Len(),
	})
	return nil
}

// loadBlockLocked reads the spilled block with the smallest minKey back
// into the in-memory head.
func (s *Store) loadBlockLocked() error {
	best := -1
	for i := range s.blocks {
		if best < 0 || s.blocks[i].minKey.Less(s.blocks[best].minKey) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	blk := s.blocks[best]
	s.blocks = append(s.blocks[:best], s.blocks[best+1:]...)
	data, err := s.spiller.Read(blk.id)
	if err != nil {
		return err
	}
	s.spiller.Free(blk.id)
	r := wire.NewReader(data)
	n := r.Uvarint()
	items := make([]item, 0, n)
	for i := uint64(0); i < n; i++ {
		key := lsh.SignatureFromBytes(r.BytesField())
		t, err := core.DecodeTask(wire.NewReader(r.BytesField()), s.codec)
		if err != nil {
			return fmt.Errorf("store: decode spilled task: %w", err)
		}
		items = append(items, item{key: key, t: t})
		s.memBytes += t.FootprintBytes()
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("store: block %d: %w", blk.id, err)
	}
	// Merge (both sorted).
	merged := make([]item, 0, len(s.head)+len(items))
	i, j := 0, 0
	for i < len(s.head) && j < len(items) {
		if s.head[i].key.Less(items[j].key) {
			merged = append(merged, s.head[i])
			i++
		} else {
			merged = append(merged, items[j])
			j++
		}
	}
	merged = append(merged, s.head[i:]...)
	merged = append(merged, items[j:]...)
	s.head = merged
	return nil
}

// PopWait removes and returns the lowest-key task, blocking until one is
// available. Returns nil, false after Close with the store drained or
// closed.
func (s *Store) PopWait() (*core.Task, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.size > 0 {
			t, err := s.popLocked()
			if err == nil && t != nil {
				return t, true
			}
			if err != nil {
				// Spill corruption is unrecoverable for this store.
				s.closed = true
				return nil, false
			}
			continue
		}
		if s.closed {
			return nil, false
		}
		s.cond.Wait()
	}
}

// TryPop removes the lowest-key task without blocking.
func (s *Store) TryPop() (*core.Task, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.size == 0 {
		return nil, false
	}
	t, err := s.popLocked()
	if err != nil || t == nil {
		return nil, false
	}
	return t, true
}

func (s *Store) popLocked() (*core.Task, error) {
	// If a spilled block may contain a smaller key than the head (or the
	// head is empty), load it first.
	for {
		needLoad := false
		if len(s.head) == 0 && len(s.blocks) > 0 {
			needLoad = true
		} else if len(s.blocks) > 0 {
			for i := range s.blocks {
				if s.blocks[i].minKey.Less(s.head[0].key) {
					needLoad = true
					break
				}
			}
		}
		if !needLoad {
			break
		}
		if err := s.loadBlockLocked(); err != nil {
			return nil, err
		}
	}
	if len(s.head) == 0 {
		return nil, nil
	}
	it := s.head[0]
	s.head = s.head[1:]
	s.size--
	s.memBytes -= it.t.FootprintBytes()
	return it.t, nil
}

// Steal removes up to n tasks for migration, preferring the tail of the
// priority queue (the tasks the local worker would process last), subject
// to the eligibility filter (Eq. 2/3 thresholds). Only in-memory tasks are
// candidates: migrating spilled tasks would pay disk I/O on top of network.
func (s *Store) Steal(n int, eligible func(*core.Task) bool) []*core.Task {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*core.Task
	for i := len(s.head) - 1; i >= 0 && len(out) < n; i-- {
		if eligible == nil || eligible(s.head[i].t) {
			out = append(out, s.head[i].t)
			s.memBytes -= s.head[i].t.FootprintBytes()
			s.head = append(s.head[:i], s.head[i+1:]...)
			s.size--
		}
	}
	return out
}

// Drain removes and returns every task currently in the store (used by
// checkpointing). Spilled blocks are loaded as needed.
func (s *Store) Drain() ([]*core.Task, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*core.Task
	for s.size > 0 {
		t, err := s.popLocked()
		if err != nil {
			return out, err
		}
		if t == nil {
			break
		}
		out = append(out, t)
	}
	return out, nil
}

// Size returns the number of stored tasks (memory + disk).
func (s *Store) Size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// MemBytes returns the estimated bytes of in-memory tasks.
func (s *Store) MemBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.memBytes
}

// SpilledBlocks returns the number of on-disk blocks (introspection).
func (s *Store) SpilledBlocks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.blocks)
}

// Snapshot encodes every stored task (memory and disk) without removing
// anything; the format is count + length-prefixed EncodeTask payloads.
// Used by checkpointing (§7: "dump the state of its partition ... where
// the state includes the inactive tasks on disk" and in memory).
func (s *Store) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// w is returned to the caller and must not come from the pool; the
	// per-task scratch writer is pooled and reused across tasks.
	w := wire.NewWriter(256 * s.size)
	w.Uvarint(uint64(s.size))
	tw := wire.GetWriter(256)
	defer wire.PutWriter(tw)
	for _, it := range s.head {
		tw.Reset()
		core.EncodeTask(tw, it.t, s.codec)
		w.BytesField(tw.Bytes())
	}
	for _, blk := range s.blocks {
		data, err := s.spiller.Read(blk.id)
		if err != nil {
			return nil, err
		}
		r := wire.NewReader(data)
		n := r.Uvarint()
		for i := uint64(0); i < n; i++ {
			_ = r.BytesField() // key, recomputed on restore
			w.BytesField(r.BytesField())
		}
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("store: snapshot block %d: %w", blk.id, err)
		}
	}
	return w.Bytes(), nil
}

// DecodeSnapshot parses tasks from a Snapshot payload.
func DecodeSnapshot(data []byte, codec core.ContextCodec) ([]*core.Task, error) {
	r := wire.NewReader(data)
	n := r.Count(1)
	tasks := make([]*core.Task, 0, n)
	for i := 0; i < n; i++ {
		t, err := core.DecodeTask(wire.NewReader(r.BytesField()), codec)
		if err != nil {
			return nil, err
		}
		tasks = append(tasks, t)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		// A checkpoint payload is exactly its task list; trailing bytes mean
		// the count lied (truncation or corruption the CRC layer missed).
		return nil, fmt.Errorf("store: %d trailing snapshot bytes", r.Remaining())
	}
	return tasks, nil
}

// Close wakes any blocked PopWait callers; the store can still be drained
// by TryPop but accepts no further inserts.
func (s *Store) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.cond.Broadcast()
}
