package plan

import (
	"testing"
)

// FuzzCompile feeds arbitrary byte-derived label/parent arrays to the
// tree compiler and arbitrary edge soups to the graph compiler. The
// contract under fuzz: compile or reject with an error — never panic —
// and every accepted plan is structurally sound (each node scheduled
// exactly once, every non-root step connected to an earlier one).
func FuzzCompile(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{0, 1, 1, 2})
	f.Add([]byte{5, 0, 0, 1, 1, 2, 2, 3})
	f.Add([]byte{255, 254, 253, 252, 251})
	f.Fuzz(func(t *testing.T, raw []byte) {
		// Tree form: byte i is node i's parent (i-1 biased so byte 0 can
		// reach parent -1 for the root); labels cycle over a small range.
		labels := make([]int32, len(raw))
		parent := make([]int, len(raw))
		for i, b := range raw {
			labels[i] = int32(b % 5)
			parent[i] = int(b) - 1
		}
		p, err := Compile(labels, parent)
		if err == nil {
			scheduled := 0
			for _, lvl := range p.TreeLevels {
				scheduled += len(lvl)
			}
			if scheduled != p.Nodes {
				t.Fatalf("tree plan schedules %d of %d nodes", scheduled, p.Nodes)
			}
		}

		// Graph form: bytes pair up into an edge soup over a node count
		// derived from the first byte.
		if len(raw) == 0 {
			return
		}
		n := int(raw[0]%uint8(MaxEmbedNodes)) + 1
		var edges [][2]int
		for i := 1; i+1 < len(raw); i += 2 {
			edges = append(edges, [2]int{int(raw[i]) - 1, int(raw[i+1]) - 1})
		}
		gp, err := CompileGraph(n, edges, nil)
		if err != nil {
			return
		}
		if len(gp.Steps) != n || len(gp.Order) != n {
			t.Fatalf("graph plan has %d steps / %d order for %d nodes", len(gp.Steps), len(gp.Order), n)
		}
		seen := make(map[int]bool, n)
		for s, st := range gp.Steps {
			if st.Node != gp.Order[s] {
				t.Fatalf("step %d node %d disagrees with order %d", s, st.Node, gp.Order[s])
			}
			if seen[st.Node] {
				t.Fatalf("node %d scheduled twice", st.Node)
			}
			seen[st.Node] = true
			if s > 0 && len(st.Connect) == 0 {
				t.Fatalf("step %d has no connection to earlier steps (pattern should be connected)", s)
			}
			for _, lst := range [][]int{st.Connect, st.After, st.Before, st.Distinct} {
				for _, e := range lst {
					if e < 0 || e >= s {
						t.Fatalf("step %d references step %d (out of range)", s, e)
					}
				}
			}
		}
	})
}
