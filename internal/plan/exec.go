package plan

import (
	"fmt"

	"gminer/internal/kernels"
)

// Count executes a ModeEmbed plan against a CSR index and returns the
// number of distinct embeddings of the pattern in the graph. Each
// embedding is generated exactly once: the plan's After/Before
// constraints keep one representative per automorphism class, so no
// post-hoc division or deduplication happens. The walk is a DFS over
// matching steps; each step's candidate set is the intersection of the
// adjacency rows named by Connect, computed by the strategy-selected
// kernels, then narrowed to the rank window the order constraints allow.
func Count(c *kernels.CSR, p *Plan) (int64, error) {
	if p.Mode != ModeEmbed {
		return 0, fmt.Errorf("plan: Count needs a ModeEmbed plan (got %s)", p.Mode)
	}
	k := len(p.Steps)
	n := c.N()
	if n == 0 || k == 0 {
		return 0, nil
	}
	sc := c.GetScratch()
	defer c.PutScratch(sc)

	matched := make([]uint32, k)
	// One candidate buffer per depth ≥ 1, reused across the whole walk.
	bufs := make([][]uint32, k)
	var total int64
	for r := uint32(0); r < uint32(n); r++ {
		if p.Steps[0].Label != noLabel && c.Label(r) != p.Steps[0].Label {
			continue
		}
		if k == 1 {
			total++
			continue
		}
		matched[0] = r
		total += countRec(c, p, sc, matched, bufs, 1)
	}
	return total, nil
}

// CountFrom executes the tail of a ModeEmbed plan with step 0 pinned to
// the vertex ranked r — the per-seed form the task-parallel executors
// use (one G-Miner task per DAG seed). Constraint and candidate handling
// are identical to Count.
func CountFrom(c *kernels.CSR, p *Plan, r uint32) (int64, error) {
	if p.Mode != ModeEmbed {
		return 0, fmt.Errorf("plan: CountFrom needs a ModeEmbed plan (got %s)", p.Mode)
	}
	if int(r) >= c.N() {
		return 0, fmt.Errorf("plan: rank %d outside universe [0,%d)", r, c.N())
	}
	if p.Steps[0].Label != noLabel && c.Label(r) != p.Steps[0].Label {
		return 0, nil
	}
	if len(p.Steps) == 1 {
		return 1, nil
	}
	sc := c.GetScratch()
	defer c.PutScratch(sc)
	matched := make([]uint32, len(p.Steps))
	bufs := make([][]uint32, len(p.Steps))
	matched[0] = r
	return countRec(c, p, sc, matched, bufs, 1), nil
}

func countRec(c *kernels.CSR, p *Plan, sc *kernels.Scratch, matched []uint32, bufs [][]uint32, depth int) int64 {
	st := &p.Steps[depth]
	lo, hi := uint32(0), uint32(c.N())
	for _, s := range st.After {
		if m := matched[s] + 1; m > lo {
			lo = m
		}
	}
	for _, s := range st.Before {
		if m := matched[s]; m < hi {
			hi = m
		}
	}
	if lo >= hi {
		return 0
	}
	last := depth == len(p.Steps)-1
	// A last step with no label or distinctness filter contributes exactly
	// |candidates|, so the final intersection can run as a counting kernel
	// with nothing materialized.
	countOnly := last && st.Label == noLabel && len(st.Distinct) == 0

	// Order constraints only shrink operands, so narrowing every Connect
	// row to the [lo, hi) rank window *before* intersecting makes the
	// intersection cost proportional to the window, not the full rows —
	// for the symmetry-broken triangle this is the difference between
	// Row(a) ∩ Row(b) and the suffix intersection above b.
	cands := window(c.Row(matched[st.Connect[0]]), lo, hi)
	for i, s := range st.Connect[1:] {
		row := window(c.Row(matched[s]), lo, hi)
		if countOnly && i == len(st.Connect)-2 {
			return int64(kernels.CountScratch(sc, cands, row))
		}
		bufs[depth] = kernels.IntersectScratch(sc, bufs[depth][:0], cands, row)
		cands = bufs[depth]
	}
	if countOnly {
		return int64(len(cands))
	}

	var total int64
	for _, r := range cands {
		if st.Label != noLabel && c.Label(r) != st.Label {
			continue
		}
		ok := true
		for _, s := range st.Distinct {
			if matched[s] == r {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if last {
			total++
			continue
		}
		matched[depth] = r
		total += countRec(c, p, sc, matched, bufs, depth+1)
	}
	return total
}

// window returns the slice of sorted s falling in the rank window
// [lo, hi).
func window(s []uint32, lo, hi uint32) []uint32 {
	s = s[kernels.SearchSorted(s, lo):]
	return s[:kernels.SearchSorted(s, hi)]
}

// HomCount executes a ModeHom plan: the number of homomorphisms of the
// rooted labeled tree into the graph, by the same bottom-up dynamic
// program as the sequential reference (algo.RefMatchCount) — h(p, v) is
// the number of ways to map the subtree rooted at pattern node p with p
// on vertex v, h(leaf, v) = 1 on label match, h(p, v) = ∏_children Σ_{w
// ∈ Γ(v)} h(child, w). Arithmetic is int64 throughout, so results are
// numerically identical to the reference.
func HomCount(c *kernels.CSR, p *Plan) (int64, error) {
	if p.Mode != ModeHom {
		return 0, fmt.Errorf("plan: HomCount needs a ModeHom plan (got %s)", p.Mode)
	}
	n := c.N()
	if n == 0 {
		return 0, nil
	}
	children := make([][]int, p.Nodes)
	for i := 1; i < p.Nodes; i++ {
		children[p.TreeParent[i]] = append(children[p.TreeParent[i]], i)
	}
	h := make([][]int64, p.Nodes)
	// Deepest level first; a level's tables free once its parents consume
	// them.
	for d := len(p.TreeLevels) - 1; d >= 0; d-- {
		for _, ts := range p.TreeLevels[d] {
			tab := make([]int64, n)
			for r := uint32(0); r < uint32(n); r++ {
				if c.Label(r) != ts.Label {
					continue
				}
				out := int64(1)
				for _, ch := range children[ts.Node] {
					var sum int64
					for _, nb := range c.Row(r) {
						sum += h[ch][nb]
					}
					out *= sum
					if out == 0 {
						break
					}
				}
				tab[r] = out
			}
			h[ts.Node] = tab
		}
		if d+1 < len(p.TreeLevels) {
			for _, ts := range p.TreeLevels[d+1] {
				h[ts.Node] = nil
			}
		}
	}
	var total int64
	for r := 0; r < n; r++ {
		total += h[0][r]
	}
	return total, nil
}
