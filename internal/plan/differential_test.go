package plan_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"gminer/internal/algo"
	"gminer/internal/cluster"
	"gminer/internal/gen"
	"gminer/internal/graph"
	"gminer/internal/jobspec"
	"gminer/internal/kernels"
	"gminer/internal/plan"
)

// This file is the differential suite gating the plan/kernel layer: on
// seeded random graphs, across pattern shapes and shard (worker) counts,
// a job run with compiled plans must produce output byte-identical to the
// same job run generic, and both must equal the independent sequential
// references. It runs under -race in the chaos CI lane.

// diffGraphs is the seeded random-graph corpus. Labels are always
// assigned (TC ignores them; GM needs them).
func diffGraphs(t testing.TB) map[string]*graph.Graph {
	t.Helper()
	out := make(map[string]*graph.Graph)
	for _, seed := range []int64{1, 42} {
		g := gen.ErdosRenyi(150, 900, seed)
		gen.AssignLabels(g, 4, seed+100)
		out[fmt.Sprintf("er-%d", seed)] = g
	}
	g := gen.RMAT(gen.RMATConfig{Scale: 7, Edges: 1024, Seed: 9})
	gen.AssignLabels(g, 4, 909)
	out["rmat-9"] = g
	return out
}

// randomTreePattern builds a deterministic random labeled tree with n
// nodes from the seed: parent[i] uniform in [0, i), labels uniform over a
// small alphabet.
func randomTreePattern(n int, seed int64) *algo.Pattern {
	rng := rand.New(rand.NewSource(seed))
	labels := make([]int32, n)
	parent := make([]int, n)
	parent[0] = -1
	for i := 0; i < n; i++ {
		labels[i] = rng.Int31n(4)
		if i > 0 {
			parent[i] = rng.Intn(i)
		}
	}
	return algo.MustPattern(labels, parent)
}

// jobspecSpec is the serving-layer spec for a TC job with the generic
// flag toggled.
func jobspecSpec(generic bool) jobspec.Spec {
	return jobspec.Spec{App: "tc", Generic: generic}.Normalize()
}

func TestDifferentialTC(t *testing.T) {
	for gname, g := range diffGraphs(t) {
		want := algo.RefTriangles(g)
		for _, workers := range []int{1, 2, 4} {
			var baseline []string
			for _, generic := range []bool{true, false} {
				tc := algo.NewTriangleCount()
				res, err := cluster.Run(g, tc, cluster.Config{
					Workers:      workers,
					Threads:      2,
					DisablePlans: generic,
				})
				if err != nil {
					t.Fatalf("%s w=%d generic=%v: %v", gname, workers, generic, err)
				}
				if got := res.AggGlobal.(int64); got != want {
					t.Errorf("%s w=%d generic=%v: tc=%d ref=%d", gname, workers, generic, got, want)
				}
				if generic {
					baseline = res.Records
				} else if !reflect.DeepEqual(baseline, res.Records) {
					t.Errorf("%s w=%d: records differ between generic and plan runs", gname, workers)
				}
			}
		}
		// The compiled plan executed directly over the CSR must agree too.
		csr := kernels.MustBuild(g)
		if got, err := plan.Count(csr, plan.Triangle()); err != nil || got != want {
			t.Errorf("%s: plan.Count=%d (err=%v), ref=%d", gname, got, err, want)
		}
	}
}

func TestDifferentialGM(t *testing.T) {
	patterns := map[string]*algo.Pattern{
		"figure":   algo.FigurePattern(),
		"path3":    algo.PathPattern(0, 1, 2),
		"path4":    algo.PathPattern(1, 2, 3, 0),
		"rtree5-3": randomTreePattern(5, 3),
		"rtree6-8": randomTreePattern(6, 8),
		"rtree7-5": randomTreePattern(7, 5),
	}
	for gname, g := range diffGraphs(t) {
		for pname, p := range patterns {
			want := algo.RefMatchCount(g, p)
			for _, workers := range []int{1, 3} {
				var baseline []string
				var baselineAgg int64
				for _, generic := range []bool{true, false} {
					gm := algo.NewGraphMatch(p)
					res, err := cluster.Run(g, gm, cluster.Config{
						Workers:      workers,
						Threads:      2,
						DisablePlans: generic,
					})
					if err != nil {
						t.Fatalf("%s/%s w=%d generic=%v: %v", gname, pname, workers, generic, err)
					}
					got := res.AggGlobal.(int64)
					if got != want {
						t.Errorf("%s/%s w=%d generic=%v: gm=%d ref=%d", gname, pname, workers, generic, got, want)
					}
					if generic {
						baseline, baselineAgg = res.Records, got
						continue
					}
					if !reflect.DeepEqual(baseline, res.Records) || got != baselineAgg {
						t.Errorf("%s/%s w=%d: plan output differs from generic baseline", gname, pname, workers)
					}
				}
			}
			// The ModeHom plan executed directly must agree as well.
			csr := kernels.MustBuild(g)
			hp, err := plan.Compile(p.Labels, p.Parent)
			if err != nil {
				t.Fatalf("%s: Compile: %v", pname, err)
			}
			if got, err := plan.HomCount(csr, hp); err != nil || got != want {
				t.Errorf("%s/%s: plan.HomCount=%d (err=%v), ref=%d", gname, pname, got, err, want)
			}
		}
	}
}

// TestDifferentialSessionLaunch pins the serving path: a session-launched
// job with Spec.Generic toggled produces identical results, exercising
// the Session-held CSR and the Spec→DisablePlans mapping.
func TestDifferentialSessionLaunch(t *testing.T) {
	g := gen.ErdosRenyi(120, 700, 5)
	gen.AssignLabels(g, 4, 105)
	want := algo.RefTriangles(g)

	sess, err := cluster.NewSession(g, cluster.Config{Workers: 2, Threads: 2})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	defer sess.Close()

	run := func(generic bool) int64 {
		spec := jobspecSpec(generic)
		j, err := sess.Launch(algo.NewTriangleCount(), cluster.JobOptions{Spec: &spec})
		if err != nil {
			t.Fatalf("Launch(generic=%v): %v", generic, err)
		}
		res, err := j.Wait()
		if err != nil {
			t.Fatalf("Wait(generic=%v): %v", generic, err)
		}
		return res.AggGlobal.(int64)
	}
	if got := run(false); got != want {
		t.Errorf("plan session job = %d, ref = %d", got, want)
	}
	if got := run(true); got != want {
		t.Errorf("generic session job = %d, ref = %d", got, want)
	}
}
