package plan

import (
	"testing"

	"gminer/internal/graph"
	"gminer/internal/kernels"
)

// buildGraph freezes a small test graph from an edge list; labels maps
// vertex ID → label for labeled tests (absent IDs stay unlabeled).
func buildGraph(t testing.TB, n int, edges [][2]int64, labels map[int64]int32) *graph.Graph {
	t.Helper()
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddVertex(graph.VertexID(i))
	}
	for _, e := range edges {
		g.AddEdge(graph.VertexID(e[0]), graph.VertexID(e[1]))
	}
	for id, l := range labels {
		g.SetLabel(graph.VertexID(id), l)
	}
	g.Freeze()
	if err := g.Validate(); err != nil {
		t.Fatalf("test graph invalid: %v", err)
	}
	return g
}

// bruteEmbeddings counts distinct embeddings of a pattern by exhaustive
// injective backtracking in ID space, divided by the automorphism count —
// the slow oracle the plan executor must agree with.
func bruteEmbeddings(g *graph.Graph, n int, edges [][2]int, labels []int32, aut int) int64 {
	padj := make([][]bool, n)
	for i := range padj {
		padj[i] = make([]bool, n)
	}
	for _, e := range edges {
		padj[e[0]][e[1]], padj[e[1]][e[0]] = true, true
	}
	ids := g.IDs()
	assigned := make([]graph.VertexID, n)
	var maps int64
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			maps++
			return
		}
	next:
		for _, v := range ids {
			if labels != nil && labels[i] != graph.NoLabel && g.Vertex(v).Label != labels[i] {
				continue
			}
			for j := 0; j < i; j++ {
				if assigned[j] == v {
					continue next
				}
				if padj[i][j] && !g.Vertex(v).HasNeighbor(assigned[j]) {
					continue next
				}
			}
			assigned[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return maps / int64(aut)
}

func TestCompileValidation(t *testing.T) {
	cases := []struct {
		name   string
		labels []int32
		parent []int
	}{
		{"empty", nil, nil},
		{"len_mismatch", []int32{0, 1}, []int{-1}},
		{"bad_root", []int32{0}, []int{0}},
		{"parent_after_child", []int32{0, 1, 2}, []int{-1, 2, 0}},
		{"parent_negative", []int32{0, 1}, []int{-1, -2}},
		{"parent_self", []int32{0, 1}, []int{-1, 1}},
	}
	for _, c := range cases {
		if _, err := Compile(c.labels, c.parent); err == nil {
			t.Errorf("%s: Compile accepted invalid pattern", c.name)
		}
	}
	big := make([]int32, MaxTreeNodes+1)
	bigP := make([]int, MaxTreeNodes+1)
	bigP[0] = -1
	for i := 1; i < len(bigP); i++ {
		bigP[i] = i - 1
	}
	if _, err := Compile(big, bigP); err == nil {
		t.Errorf("Compile accepted oversize pattern")
	}
}

func TestCompileLevels(t *testing.T) {
	// The paper's Figure 6 pattern: root 0, children 1 and 2, 2's children
	// 3 and 4.
	p, err := Compile([]int32{0, 1, 2, 1, 3}, []int{-1, 0, 0, 2, 2})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if p.Mode != ModeHom || p.Depth() != 2 {
		t.Fatalf("mode=%v depth=%d, want hom/2", p.Mode, p.Depth())
	}
	wantLevels := [][]int{{0}, {1, 2}, {3, 4}}
	for d, want := range wantLevels {
		got := p.Level(d)
		if len(got) != len(want) {
			t.Fatalf("level %d has %d steps, want %d", d, len(got), len(want))
		}
		for i, ts := range got {
			if ts.Node != want[i] {
				t.Errorf("level %d step %d = node %d, want %d", d, i, ts.Node, want[i])
			}
			if ts.Node > 0 && ts.Parent != []int{-1, 0, 0, 2, 2}[ts.Node] {
				t.Errorf("node %d parent %d wrong", ts.Node, ts.Parent)
			}
		}
	}
}

func TestTrianglePlan(t *testing.T) {
	p := Triangle()
	if p.Aut != 6 {
		t.Fatalf("triangle Aut = %d, want 6", p.Aut)
	}
	// Symmetry breaking over K3 must totally order the three steps:
	// steps 1 and 2 together carry 3 order constraints' worth of pruning —
	// concretely every step after the first is constrained below/above all
	// prior steps.
	for s := 1; s < 3; s++ {
		if len(p.Steps[s].Connect) != s {
			t.Errorf("step %d Connect=%v, want all %d prior steps", s, p.Steps[s].Connect, s)
		}
		if len(p.Steps[s].After)+len(p.Steps[s].Before) == 0 {
			t.Errorf("step %d has no order constraint; duplicates would be generated", s)
		}
		if len(p.Steps[s].Distinct) != 0 {
			t.Errorf("step %d Distinct=%v, want none (fully connected)", s, p.Steps[s].Distinct)
		}
	}
}

func TestCliquePlan(t *testing.T) {
	for k, wantAut := range map[int]int{2: 2, 3: 6, 4: 24, 5: 120} {
		p, err := Clique(k)
		if err != nil {
			t.Fatalf("Clique(%d): %v", k, err)
		}
		if p.Aut != wantAut {
			t.Errorf("Clique(%d).Aut = %d, want %d", k, p.Aut, wantAut)
		}
	}
}

func TestCompileGraphValidation(t *testing.T) {
	cases := []struct {
		name   string
		n      int
		edges  [][2]int
		labels []int32
	}{
		{"zero_nodes", 0, nil, nil},
		{"oversize", MaxEmbedNodes + 1, [][2]int{{0, 1}}, nil},
		{"self_loop", 2, [][2]int{{0, 0}, {0, 1}}, nil},
		{"edge_out_of_range", 2, [][2]int{{0, 2}}, nil},
		{"edge_negative", 2, [][2]int{{-1, 0}}, nil},
		{"disconnected", 4, [][2]int{{0, 1}, {2, 3}}, nil},
		{"isolated_node", 3, [][2]int{{0, 1}}, nil},
		{"label_mismatch", 2, [][2]int{{0, 1}}, []int32{1}},
	}
	for _, c := range cases {
		if _, err := CompileGraph(c.n, c.edges, c.labels); err == nil {
			t.Errorf("%s: CompileGraph accepted invalid pattern", c.name)
		}
	}
}

func TestCountTriangleSmall(t *testing.T) {
	// Two triangles sharing edge 1-2, plus a pendant: {0,1,2}, {1,2,3}.
	g := buildGraph(t, 5, [][2]int64{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {3, 4}}, nil)
	c := kernels.MustBuild(g)
	got, err := Count(c, Triangle())
	if err != nil {
		t.Fatalf("Count: %v", err)
	}
	if got != 2 {
		t.Fatalf("triangles = %d, want 2", got)
	}
	// Per-seed decomposition must cover the same total exactly once.
	var sum int64
	for r := uint32(0); r < uint32(c.N()); r++ {
		n, err := CountFrom(c, Triangle(), r)
		if err != nil {
			t.Fatalf("CountFrom(%d): %v", r, err)
		}
		sum += n
	}
	if sum != got {
		t.Fatalf("per-seed sum %d != whole-graph count %d", sum, got)
	}
}

func TestCountAgainstOracle(t *testing.T) {
	patterns := []struct {
		name   string
		n      int
		edges  [][2]int
		labels []int32
	}{
		{"edge", 2, [][2]int{{0, 1}}, nil},
		{"triangle", 3, [][2]int{{0, 1}, {0, 2}, {1, 2}}, nil},
		{"path3", 3, [][2]int{{0, 1}, {1, 2}}, nil},
		{"square", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, nil},
		{"k4", 4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}, nil},
		{"tailed_triangle", 4, [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 3}}, nil},
		{"star3", 4, [][2]int{{0, 1}, {0, 2}, {0, 3}}, nil},
		{"labeled_edge", 2, [][2]int{{0, 1}}, []int32{7, 9}},
		{"labeled_triangle", 3, [][2]int{{0, 1}, {0, 2}, {1, 2}}, []int32{7, 9, 9}},
	}
	graphs := []struct {
		name   string
		n      int
		edges  [][2]int64
		labels map[int64]int32
	}{
		{"two_triangles", 5, [][2]int64{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {3, 4}}, nil},
		{"k5", 5, [][2]int64{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 4}}, nil},
		{"cycle6", 6, [][2]int64{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}}, nil},
		{"wheel", 7, [][2]int64{{6, 0}, {6, 1}, {6, 2}, {6, 3}, {6, 4}, {6, 5}, {0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}}, nil},
		{"labeled", 6, [][2]int64{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {3, 5}},
			map[int64]int32{0: 7, 1: 9, 2: 9, 3: 7, 4: 9, 5: 9}},
	}
	for _, pc := range patterns {
		p, err := CompileGraph(pc.n, pc.edges, pc.labels)
		if err != nil {
			t.Fatalf("%s: CompileGraph: %v", pc.name, err)
		}
		for _, gc := range graphs {
			g := buildGraph(t, gc.n, gc.edges, gc.labels)
			c := kernels.MustBuild(g)
			got, err := Count(c, p)
			if err != nil {
				t.Fatalf("%s/%s: Count: %v", pc.name, gc.name, err)
			}
			want := bruteEmbeddings(g, pc.n, pc.edges, pc.labels, p.Aut)
			if got != want {
				t.Errorf("%s on %s: plan=%d oracle=%d", pc.name, gc.name, got, want)
			}
		}
	}
}

func TestHomCountMatchesBruteForce(t *testing.T) {
	// Brute-force tree homomorphism count in ID space.
	brute := func(g *graph.Graph, labels []int32, parent []int) int64 {
		ids := g.IDs()
		assigned := make([]graph.VertexID, len(labels))
		var total int64
		var rec func(i int)
		rec = func(i int) {
			if i == len(labels) {
				total++
				return
			}
			for _, v := range ids {
				if g.Vertex(v).Label != labels[i] {
					continue
				}
				if parent[i] >= 0 && !g.Vertex(v).HasNeighbor(assigned[parent[i]]) {
					continue
				}
				assigned[i] = v
				rec(i + 1)
			}
		}
		rec(0)
		return total
	}
	labels := []int32{0, 1, 2, 1, 3}
	parent := []int{-1, 0, 0, 2, 2}
	g := buildGraph(t, 8,
		[][2]int64{{0, 1}, {0, 2}, {2, 3}, {2, 4}, {0, 5}, {5, 6}, {5, 7}, {1, 3}},
		map[int64]int32{0: 0, 1: 1, 2: 2, 3: 1, 4: 3, 5: 2, 6: 1, 7: 3})
	p, err := Compile(labels, parent)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	c := kernels.MustBuild(g)
	got, err := HomCount(c, p)
	if err != nil {
		t.Fatalf("HomCount: %v", err)
	}
	if want := brute(g, labels, parent); got != want {
		t.Fatalf("HomCount=%d brute=%d", got, want)
	}
}

func TestModeMismatch(t *testing.T) {
	g := buildGraph(t, 3, [][2]int64{{0, 1}, {1, 2}, {2, 0}}, nil)
	c := kernels.MustBuild(g)
	tree, _ := Compile([]int32{0, 1}, []int{-1, 0})
	if _, err := Count(c, tree); err == nil {
		t.Errorf("Count accepted a hom plan")
	}
	if _, err := HomCount(c, Triangle()); err == nil {
		t.Errorf("HomCount accepted an embed plan")
	}
	if _, err := CountFrom(c, tree, 0); err == nil {
		t.Errorf("CountFrom accepted a hom plan")
	}
	if _, err := CountFrom(c, Triangle(), 99); err == nil {
		t.Errorf("CountFrom accepted an out-of-range rank")
	}
}

func TestSymmetryCondsLeaveIdentityOnly(t *testing.T) {
	// For each pattern: applying the derived conds as a filter over all
	// automorphism images of a canonical tuple must keep exactly one.
	for _, pc := range []struct {
		n     int
		edges [][2]int
	}{
		{3, [][2]int{{0, 1}, {0, 2}, {1, 2}}},
		{4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}},
		{4, [][2]int{{0, 1}, {0, 2}, {0, 3}}},
		{5, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 4}}},
	} {
		adj := make([][]bool, pc.n)
		deg := make([]int, pc.n)
		for i := range adj {
			adj[i] = make([]bool, pc.n)
		}
		for _, e := range pc.edges {
			adj[e[0]][e[1]], adj[e[1]][e[0]] = true, true
			deg[e[0]]++
			deg[e[1]]++
		}
		labels := make([]int32, pc.n)
		for i := range labels {
			labels[i] = graph.NoLabel
		}
		auts := automorphisms(pc.n, adj, labels, deg)
		conds := symmetryConds(pc.n, auts)
		// Assign distinct values 0..n-1 to pattern nodes; each automorphism
		// permutes them. Exactly one permuted assignment may satisfy all
		// conds.
		kept := 0
		for _, sigma := range auts {
			ok := true
			// assignment: node i holds value pos(i) where sigma maps the
			// canonical tuple; value at node sigma[i] is i.
			val := make([]int, pc.n)
			for i, s := range sigma {
				val[s] = i
			}
			for _, cnd := range conds {
				if !(val[cnd[0]] < val[cnd[1]]) {
					ok = false
					break
				}
			}
			if ok {
				kept++
			}
		}
		if kept != 1 {
			t.Errorf("pattern n=%d edges=%v: %d of %d automorphic images satisfy conds, want exactly 1",
				pc.n, pc.edges, kept, len(auts))
		}
	}
}
