// Package plan compiles mining patterns into execution plans, the
// pattern-aware layer ROADMAP item 1 calls for (Peregrine's core idea):
// instead of exploring generically and filtering, a compiled plan fixes a
// vertex matching order, derives symmetry-breaking order constraints from
// the pattern's automorphisms so equivalent matches are never generated,
// and lowers each expansion step to an intersection program executed by
// the internal/kernels strategy-selected set kernels.
//
// Two plan modes cover the system's workloads:
//
//   - ModeHom: rooted labeled tree patterns under the paper's GM
//     semantics — homomorphism counting, matched level by level. The plan
//     is the level schedule (node, parent, label per step); symmetry
//     breaking does not apply because homomorphisms are counted, not
//     deduplicated.
//   - ModeEmbed: arbitrary small connected patterns (triangle and clique
//     cores: TC, and MCF's per-seed triangle/clique expansion) counted as
//     distinct embeddings, exactly once each, via automorphism-derived
//     order constraints.
//
// Compile and CompileGraph validate untrusted input and reject instead of
// panicking (FuzzCompile pins this), so a plan request can come straight
// from a jobspec.
package plan

import (
	"fmt"
	"sort"

	"gminer/internal/graph"
)

// Mode selects the execution semantics of a plan.
type Mode uint8

const (
	// ModeHom counts tree-pattern homomorphisms (GM semantics).
	ModeHom Mode = iota
	// ModeEmbed counts distinct embeddings with symmetry breaking.
	ModeEmbed
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == ModeHom {
		return "hom"
	}
	return "embed"
}

// noLabel aliases the graph's wildcard label for the executors.
const noLabel = graph.NoLabel

// MaxTreeNodes bounds tree-pattern size: large enough for any realistic
// query, small enough that compilation cost is trivially bounded on
// untrusted input.
const MaxTreeNodes = 64

// MaxEmbedNodes bounds embedding-mode pattern size; the automorphism
// search is factorial in the worst case, so it stays small.
const MaxEmbedNodes = 8

// TreeStep is one node of a ModeHom level schedule.
type TreeStep struct {
	// Node is the pattern node index matched at this step.
	Node int
	// Parent is the pattern parent node (already matched one level up).
	Parent int
	// Label is the required vertex label.
	Label int32
}

// Step is one expansion step of a ModeEmbed plan. The matched data vertex
// for step s must be adjacent to every vertex matched at the Connect
// steps (the step's intersection program), carry Label (graph.NoLabel
// matches anything), and respect the symmetry-breaking order constraints:
// strictly greater rank than every After step's vertex and strictly
// smaller than every Before step's vertex.
type Step struct {
	// Node is the original pattern node matched at this step.
	Node int
	// Label is the required label; graph.NoLabel matches any vertex.
	Label int32
	// Connect lists earlier step indices whose adjacency rows are
	// intersected to form this step's candidate set. Non-empty for every
	// step after the first (patterns are connected).
	Connect []int
	// After lists earlier steps whose matched rank this step's candidate
	// must exceed (symmetry breaking: cand > matched[s]).
	After []int
	// Before lists earlier steps whose matched rank bounds this step's
	// candidate from above (cand < matched[s]).
	Before []int
	// Distinct lists earlier steps the candidate must additionally differ
	// from: steps not already distinct by adjacency (Connect — no self
	// loops) or by order (After/Before). Injectivity check.
	Distinct []int
}

// Plan is a compiled pattern execution plan.
type Plan struct {
	// Mode selects the executor (HomCount vs Count).
	Mode Mode
	// Nodes is the pattern size.
	Nodes int
	// Labels[i] is the label of pattern node i (node space).
	Labels []int32

	// TreeParent / TreeLevels are the ModeHom schedule: TreeLevels[d]
	// lists the steps of depth d in node order (the paper's level-by-level
	// matching order, which the GM executor follows exactly).
	TreeParent []int
	TreeLevels [][]TreeStep

	// Order / Steps are the ModeEmbed schedule: Order[s] is the pattern
	// node matched at step s, Steps[s] its constraints.
	Order []int
	Steps []Step
	// Aut is |Aut(pattern)| — how many automorphic duplicates the symmetry
	// constraints eliminate per embedding.
	Aut int
}

// Depth returns the number of levels below the root of a ModeHom plan.
func (p *Plan) Depth() int { return len(p.TreeLevels) - 1 }

// Level returns the ModeHom schedule for depth d.
func (p *Plan) Level(d int) []TreeStep { return p.TreeLevels[d] }

// Compile compiles a rooted labeled tree pattern (the algo.Pattern form:
// node 0 is the root, every node's parent precedes it) into a ModeHom
// plan. Invalid input returns an error; Compile never panics.
func Compile(labels []int32, parent []int) (*Plan, error) {
	n := len(labels)
	if n == 0 || n != len(parent) {
		return nil, fmt.Errorf("plan: pattern needs equal, non-empty labels/parent (got %d labels, %d parents)", n, len(parent))
	}
	if n > MaxTreeNodes {
		return nil, fmt.Errorf("plan: pattern has %d nodes, max %d", n, MaxTreeNodes)
	}
	if parent[0] != -1 {
		return nil, fmt.Errorf("plan: node 0 must be the root (parent -1, got %d)", parent[0])
	}
	depth := make([]int, n)
	for i := 1; i < n; i++ {
		if parent[i] < 0 || parent[i] >= i {
			return nil, fmt.Errorf("plan: node %d: parent %d must precede it (BFS order)", i, parent[i])
		}
		depth[i] = depth[parent[i]] + 1
	}
	maxDepth := 0
	for _, d := range depth {
		if d > maxDepth {
			maxDepth = d
		}
	}
	p := &Plan{
		Mode:       ModeHom,
		Nodes:      n,
		Labels:     append([]int32(nil), labels...),
		TreeParent: append([]int(nil), parent...),
		TreeLevels: make([][]TreeStep, maxDepth+1),
	}
	for i := 0; i < n; i++ {
		p.TreeLevels[depth[i]] = append(p.TreeLevels[depth[i]], TreeStep{
			Node:   i,
			Parent: parent[i],
			Label:  labels[i],
		})
	}
	return p, nil
}

// CompileGraph compiles a small connected pattern graph into a ModeEmbed
// plan: matching order by greedy connectivity, symmetry-breaking order
// constraints from the automorphism group, per-step intersection
// programs. labels may be nil (all wildcard). Invalid input returns an
// error; CompileGraph never panics.
func CompileGraph(n int, edges [][2]int, labels []int32) (*Plan, error) {
	if n < 1 {
		return nil, fmt.Errorf("plan: pattern needs at least one node")
	}
	if n > MaxEmbedNodes {
		return nil, fmt.Errorf("plan: embedding pattern has %d nodes, max %d", n, MaxEmbedNodes)
	}
	if labels == nil {
		labels = make([]int32, n)
		for i := range labels {
			labels[i] = graph.NoLabel
		}
	}
	if len(labels) != n {
		return nil, fmt.Errorf("plan: %d labels for %d nodes", len(labels), n)
	}
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	deg := make([]int, n)
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("plan: edge {%d,%d} outside [0,%d)", u, v, n)
		}
		if u == v {
			return nil, fmt.Errorf("plan: self loop on node %d", u)
		}
		if !adj[u][v] {
			adj[u][v], adj[v][u] = true, true
			deg[u]++
			deg[v]++
		}
	}
	if !connected(n, adj) {
		return nil, fmt.Errorf("plan: pattern must be connected")
	}

	auts := automorphisms(n, adj, labels, deg)
	conds := symmetryConds(n, auts)
	order := matchingOrder(n, adj, deg)

	stepOf := make([]int, n)
	for s, node := range order {
		stepOf[node] = s
	}
	p := &Plan{
		Mode:   ModeEmbed,
		Nodes:  n,
		Labels: append([]int32(nil), labels...),
		Order:  order,
		Aut:    len(auts),
		Steps:  make([]Step, n),
	}
	for s, node := range order {
		st := &p.Steps[s]
		st.Node = node
		st.Label = labels[node]
		for e := 0; e < s; e++ {
			if adj[node][order[e]] {
				st.Connect = append(st.Connect, e)
			}
		}
	}
	for _, c := range conds {
		sa, sb := stepOf[c[0]], stepOf[c[1]]
		// The later-matched endpoint carries the constraint.
		if sa < sb {
			p.Steps[sb].After = append(p.Steps[sb].After, sa)
		} else {
			p.Steps[sa].Before = append(p.Steps[sa].Before, sb)
		}
	}
	// Injectivity: a candidate differs automatically from steps it is
	// adjacent to (no self loops) or ordered against; everything else
	// needs an explicit distinctness check.
	for s := range p.Steps {
		st := &p.Steps[s]
		covered := make(map[int]bool, s)
		for _, e := range st.Connect {
			covered[e] = true
		}
		for _, e := range st.After {
			covered[e] = true
		}
		for _, e := range st.Before {
			covered[e] = true
		}
		for e := 0; e < s; e++ {
			if !covered[e] {
				st.Distinct = append(st.Distinct, e)
			}
		}
		sort.Ints(st.After)
		sort.Ints(st.Before)
	}
	return p, nil
}

// Triangle returns the compiled triangle plan — the TC core: matching
// order v0 < v1 < v2 in rank space, each triangle generated exactly once
// (Aut = 6 duplicates eliminated).
func Triangle() *Plan {
	p, err := CompileGraph(3, [][2]int{{0, 1}, {0, 2}, {1, 2}}, nil)
	if err != nil {
		panic(err) // static input; cannot fail
	}
	return p
}

// Clique returns the compiled K_k plan — the MCF per-seed core: a total
// order over all k vertices (Aut = k!), so each clique is generated once.
func Clique(k int) (*Plan, error) {
	var edges [][2]int
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	return CompileGraph(k, edges, nil)
}

// connected reports whether the pattern graph is connected (single
// isolated node counts as connected).
func connected(n int, adj [][]bool) bool {
	if n <= 1 {
		return true
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for v := 0; v < n; v++ {
			if adj[u][v] && !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == n
}

// automorphisms enumerates Aut(pattern): all label- and
// adjacency-preserving permutations, by pruned backtracking (patterns
// have at most MaxEmbedNodes vertices).
func automorphisms(n int, adj [][]bool, labels []int32, deg []int) [][]int {
	perm := make([]int, n)
	used := make([]bool, n)
	var out [][]int
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			out = append(out, append([]int(nil), perm...))
			return
		}
		for v := 0; v < n; v++ {
			if used[v] || labels[v] != labels[i] || deg[v] != deg[i] {
				continue
			}
			ok := true
			for j := 0; j < i; j++ {
				if adj[i][j] != adj[v][perm[j]] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			perm[i] = v
			used[v] = true
			rec(i + 1)
			used[v] = false
		}
	}
	rec(0)
	return out
}

// symmetryConds derives the order constraints that leave exactly one
// representative per automorphism class valid: repeatedly take the
// smallest node moved by the remaining group, constrain it below every
// image it can be sent to, then descend into the stabilizer (the
// GraphZero/Peregrine construction).
func symmetryConds(n int, auts [][]int) [][2]int {
	var conds [][2]int
	group := auts
	for len(group) > 1 {
		v := -1
		for i := 0; i < n && v < 0; i++ {
			for _, sigma := range group {
				if sigma[i] != i {
					v = i
					break
				}
			}
		}
		if v < 0 {
			break // only the identity remains
		}
		seen := make(map[int]bool)
		var stab [][]int
		for _, sigma := range group {
			if sigma[v] == v {
				stab = append(stab, sigma)
			} else if !seen[sigma[v]] {
				seen[sigma[v]] = true
				conds = append(conds, [2]int{v, sigma[v]})
			}
		}
		group = stab
	}
	return conds
}

// matchingOrder picks the exploration order: start at the highest-degree
// node, then greedily take the node with the most already-ordered
// neighbors (ties: higher degree, then smaller index) — maximizing how
// constrained each step's candidate set is, which is what makes the
// intersection programs shrink fastest.
func matchingOrder(n int, adj [][]bool, deg []int) []int {
	order := make([]int, 0, n)
	placed := make([]bool, n)
	start := 0
	for v := 1; v < n; v++ {
		if deg[v] > deg[start] {
			start = v
		}
	}
	order = append(order, start)
	placed[start] = true
	for len(order) < n {
		best, bestConn := -1, -1
		for v := 0; v < n; v++ {
			if placed[v] {
				continue
			}
			conn := 0
			for _, u := range order {
				if adj[v][u] {
					conn++
				}
			}
			if conn > bestConn || (conn == bestConn && best >= 0 && deg[v] > deg[best]) {
				best, bestConn = v, conn
			}
		}
		order = append(order, best)
		placed[best] = true
	}
	return order
}
