// Package memctl enforces a memory budget on an engine run.
//
// The paper's Table 1 shows Giraph failing with OOM on maximum clique
// finding because vertex-centric engines materialize all 1-hop
// neighborhood subgraphs up front, and §3 lists "bounded memory
// consumption to avoid OOM" as a G-Miner design goal. To reproduce both
// sides, every engine in this repository charges its major allocations
// (materialized subgraphs, message queues, embeddings, cached vertices)
// against a Budget; baseline engines abort with ErrOOM when they exceed
// it, while G-Miner's task store spills to disk instead.
package memctl

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrOOM is returned when an engine exceeds its memory budget.
var ErrOOM = errors.New("memctl: out of memory budget")

// Budget tracks charged bytes against a limit. A zero limit means
// unlimited. Budget is safe for concurrent use.
type Budget struct {
	limit int64
	used  atomic.Int64
	peak  atomic.Int64
}

// NewBudget returns a budget of limit bytes; limit <= 0 means unlimited.
func NewBudget(limit int64) *Budget {
	return &Budget{limit: limit}
}

// Limit returns the configured limit (0 = unlimited).
func (b *Budget) Limit() int64 { return b.limit }

// Charge adds n bytes, returning ErrOOM (with usage detail) if the budget
// is exceeded. The charge is kept even on failure so callers can report
// how far over they went.
func (b *Budget) Charge(n int64) error {
	v := b.used.Add(n)
	for {
		p := b.peak.Load()
		if v <= p || b.peak.CompareAndSwap(p, v) {
			break
		}
	}
	if b.limit > 0 && v > b.limit {
		return fmt.Errorf("%w: used %d of %d bytes", ErrOOM, v, b.limit)
	}
	return nil
}

// Release returns n bytes to the budget.
func (b *Budget) Release(n int64) { b.used.Add(-n) }

// Used returns the current charged bytes.
func (b *Budget) Used() int64 { return b.used.Load() }

// Peak returns the maximum charged bytes observed.
func (b *Budget) Peak() int64 { return b.peak.Load() }
