package memctl

import (
	"errors"
	"sync"
	"testing"
)

func TestUnlimited(t *testing.T) {
	b := NewBudget(0)
	if err := b.Charge(1 << 40); err != nil {
		t.Fatal(err)
	}
	if b.Used() != 1<<40 || b.Peak() != 1<<40 {
		t.Fatalf("used=%d peak=%d", b.Used(), b.Peak())
	}
}

func TestOOM(t *testing.T) {
	b := NewBudget(100)
	if err := b.Charge(60); err != nil {
		t.Fatal(err)
	}
	err := b.Charge(60)
	if !errors.Is(err, ErrOOM) {
		t.Fatalf("expected OOM, got %v", err)
	}
}

func TestReleaseRestores(t *testing.T) {
	b := NewBudget(100)
	_ = b.Charge(90)
	b.Release(50)
	if err := b.Charge(50); err != nil {
		t.Fatalf("charge after release failed: %v", err)
	}
	if b.Peak() != 90 {
		t.Fatalf("peak=%d", b.Peak())
	}
}

func TestConcurrentCharges(t *testing.T) {
	b := NewBudget(0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				_ = b.Charge(3)
				b.Release(3)
			}
		}()
	}
	wg.Wait()
	if b.Used() != 0 {
		t.Fatalf("used=%d", b.Used())
	}
	if b.Peak() < 3 {
		t.Fatalf("peak=%d", b.Peak())
	}
}
