// Package trace is the structured event tracer of the task pipeline: a
// lock-cheap, per-worker ring-buffer recorder with typed events for the
// full task lifecycle (seed, active→inactive→ready→dead, split), the
// pipeline stages of Figure 2 (pull issued/answered, RCV cache
// hit/miss/evict, CMQ parking, spill write/load, steal REQ/MIGRATE/
// No_Task, checkpoint begin/end) and power-of-two-bucket latency
// histograms (task round time, pull RTT, spill I/O, migration,
// checkpoint) with percentile extraction.
//
// The tracer is designed so that instrumentation can stay compiled into
// every hot path permanently:
//
//   - A nil *Tracer (the default — Config.Tracer unset) reduces every
//     call to a nil check on a value-type Handle.
//   - A constructed but disabled tracer reduces every call to one atomic
//     load (the enabled flag), so "tracer shipped but off" costs nothing
//     measurable (see BenchmarkTraceOverhead).
//   - Enabled, histogram observations are a few atomic adds; ring events
//     take one short per-worker mutex, so workers never contend with each
//     other.
//
// Three sinks consume a tracer: a Chrome trace-event JSON dump loadable
// in Perfetto (chrome.go), a Prometheus text exposition (prom.go), and a
// per-phase percentile summary (hist.go) attached to cluster.Result.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// EventType identifies one kind of pipeline event.
type EventType uint8

const (
	evInvalid EventType = iota

	// Task lifecycle (§4.2 status transitions).
	EvTaskSeed     // a seed task entered the pipeline; Arg = task ID
	EvTaskActive   // an update round ran; Dur = round time; Arg = task ID
	EvTaskInactive // task parked back into the task store; Arg = task ID
	EvTaskReady    // task entered the CPQ; Arg = task ID
	EvTaskDead     // task completed; Arg = task ID
	EvTaskSplit    // task split; Arg = number of children

	// Candidate retrieval (Figure 2).
	EvPullIssued   // one batched pull request sent; Arg = vertex count
	EvPullAnswered // one pull response resolved; Arg = vertex count
	EvCMQBatch     // task parked in the CMQ; Arg = pulls outstanding

	// RCV cache (§7).
	EvCacheHit   // Arg = vertex ID
	EvCacheMiss  // Arg = vertex ID
	EvCacheEvict // Arg = vertex ID

	// Task-store spilling (§4.3). Dur = I/O time; Arg = bytes.
	EvSpillWrite
	EvSpillLoad

	// Task stealing (§6.2).
	EvStealReq     // idle worker sent REQ to the master
	EvStealMigrate // victim shipped a batch; Arg = task count
	EvStealNoTask  // victim (or master) had nothing to give

	// Checkpointing (§7). Arg = epoch.
	EvCheckpointBegin
	EvCheckpointEnd

	// Transport. Arg = frame bytes.
	EvNetSend

	// Fault injection (internal/chaos). Arg = fault kind << 8 | message
	// type, so a trace dump shows both what was injected and on which
	// protocol message.
	EvFaultInjected
	// Pull retry/backoff: a stale pull was re-issued. Arg = vertex count.
	EvPullRetry

	// Durable checkpointing (§7 hardening). Arg = epoch.
	EvCheckpointFail // snapshot or persist failed; the epoch was abandoned
	EvCheckpointSkip // the pipeline would not quiesce before the deadline
	EvRestoreFail    // a committed snapshot failed verification on restore

	// Fencing (multi-process clusters). A message bearing a stale slot
	// generation was refused — a zombie worker raced its replacement and
	// lost. Arg = fenced generation << 8 | message type.
	EvFenced

	numEventTypes
)

// String returns the snake_case event name used by every sink.
func (e EventType) String() string {
	if int(e) < len(eventNames) {
		if n := eventNames[e]; n != "" {
			return n
		}
	}
	return "unknown"
}

var eventNames = [numEventTypes]string{
	EvTaskSeed:        "task_seed",
	EvTaskActive:      "task_active",
	EvTaskInactive:    "task_inactive",
	EvTaskReady:       "task_ready",
	EvTaskDead:        "task_dead",
	EvTaskSplit:       "task_split",
	EvPullIssued:      "pull_issued",
	EvPullAnswered:    "pull_answered",
	EvCMQBatch:        "cmq_batch",
	EvCacheHit:        "cache_hit",
	EvCacheMiss:       "cache_miss",
	EvCacheEvict:      "cache_evict",
	EvSpillWrite:      "spill_write",
	EvSpillLoad:       "spill_load",
	EvStealReq:        "steal_req",
	EvStealMigrate:    "steal_migrate",
	EvStealNoTask:     "steal_no_task",
	EvCheckpointBegin: "checkpoint_begin",
	EvCheckpointEnd:   "checkpoint_end",
	EvNetSend:         "net_send",
	EvFaultInjected:   "fault_injected",
	EvPullRetry:       "pull_retry",
	EvCheckpointFail:  "checkpoint_fail",
	EvCheckpointSkip:  "checkpoint_skip",
	EvRestoreFail:     "restore_fail",
	EvFenced:          "fenced",
}

// Component is the pipeline component an event belongs to; it becomes the
// per-worker track (thread) in the Chrome trace.
type Component uint8

const (
	CompSeeder     Component = iota // task generator
	CompStore                       // task store
	CompRetriever                   // candidate retriever + CMQ
	CompExecutor                    // task executor threads
	CompCache                       // RCV cache
	CompSpill                       // spill I/O
	CompSteal                       // task stealing
	CompCheckpoint                  // checkpointing
	CompNet                         // transport sends

	numComponents
)

// String returns the component track name.
func (c Component) String() string {
	if int(c) < len(componentNames) {
		return componentNames[c]
	}
	return "unknown"
}

var componentNames = [numComponents]string{
	CompSeeder:     "seeder",
	CompStore:      "task-store",
	CompRetriever:  "retriever",
	CompExecutor:   "executor",
	CompCache:      "rcv-cache",
	CompSpill:      "spill",
	CompSteal:      "steal",
	CompCheckpoint: "checkpoint",
	CompNet:        "net",
}

// Event is one recorded pipeline event. TS and Dur are nanoseconds; TS is
// relative to the tracer's start so events across workers share a clock.
type Event struct {
	TS     int64
	Dur    int64
	Arg    uint64
	Worker int32
	Type   EventType
	Comp   Component
}

// ring is a fixed-capacity overwrite-oldest event buffer. One ring per
// worker keeps lock traffic local: a worker's goroutines only ever touch
// their own ring.
type ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	count int64 // total pushed (may exceed len(buf))
}

func (r *ring) push(e Event) {
	r.mu.Lock()
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
	}
	r.count++
	r.mu.Unlock()
}

// snapshot returns the buffered events oldest-first.
func (r *ring) snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.count >= int64(len(r.buf)) {
		out := make([]Event, 0, len(r.buf))
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
		return out
	}
	return append([]Event(nil), r.buf[:r.next]...)
}

// DefaultRingCapacity is the per-worker event capacity used when the
// caller passes 0.
const DefaultRingCapacity = 1 << 16

// Tracer records events and latency histograms for one job.
type Tracer struct {
	// enabled is the master switch: histograms and event counters record
	// only while set. events additionally gates the ring buffers (they
	// are only worth paying for when a trace dump was requested).
	enabled atomic.Bool
	events  atomic.Bool

	start time.Time
	rings []*ring
	hists [numMetrics]Histogram
	// eventCounts survive ring overwrites; they feed the Prometheus sink.
	eventCounts [numEventTypes]atomic.Int64
}

// New returns a disabled tracer for `nodes` nodes (workers + master) with
// the given per-node ring capacity (0 = DefaultRingCapacity). Call Enable
// (histograms + counters) and EnableEvents (ring buffers) to turn it on.
func New(nodes, ringCap int) *Tracer {
	if nodes < 1 {
		nodes = 1
	}
	if ringCap <= 0 {
		ringCap = DefaultRingCapacity
	}
	t := &Tracer{start: time.Now(), rings: make([]*ring, nodes)}
	for i := range t.rings {
		t.rings[i] = &ring{buf: make([]Event, ringCap)}
	}
	return t
}

// Enable turns on histogram and event-counter recording.
func (t *Tracer) Enable() *Tracer {
	t.enabled.Store(true)
	return t
}

// EnableEvents turns on ring-buffer event capture (implies Enable).
func (t *Tracer) EnableEvents() *Tracer {
	t.enabled.Store(true)
	t.events.Store(true)
	return t
}

// Disable turns all recording off; already-recorded data is kept.
func (t *Tracer) Disable() {
	t.enabled.Store(false)
	t.events.Store(false)
}

// Enabled reports whether the tracer records anything. Nil-safe.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// EventsEnabled reports whether ring-buffer capture is on. Nil-safe.
func (t *Tracer) EventsEnabled() bool { return t != nil && t.events.Load() }

// Start returns the tracer's epoch (event timestamps are relative to it).
func (t *Tracer) Start() time.Time { return t.start }

// Handle returns a recording handle bound to (worker, component). Safe to
// call on a nil tracer: the returned handle drops everything. Out-of-range
// workers clamp to the last ring so foreign events are never lost.
func (t *Tracer) Handle(worker int, comp Component) Handle {
	if t != nil {
		if worker < 0 {
			worker = 0
		}
		if worker >= len(t.rings) {
			worker = len(t.rings) - 1
		}
	}
	return Handle{t: t, worker: int32(worker), comp: comp}
}

// Events returns every buffered event, worker by worker, oldest-first
// within each worker.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	var out []Event
	for _, r := range t.rings {
		out = append(out, r.snapshot()...)
	}
	return out
}

// EventCount returns the total number of events of the given type
// recorded since Enable, regardless of ring overwrites.
func (t *Tracer) EventCount(typ EventType) int64 {
	if t == nil || int(typ) >= int(numEventTypes) {
		return 0
	}
	return t.eventCounts[typ].Load()
}

// Histogram returns the histogram for m (read-only use).
func (t *Tracer) Histogram(m Metric) *Histogram {
	if t == nil || m >= numMetrics {
		return nil
	}
	return &t.hists[m]
}

// Nodes returns the number of per-node rings.
func (t *Tracer) Nodes() int {
	if t == nil {
		return 0
	}
	return len(t.rings)
}

func (t *Tracer) record(worker int32, comp Component, typ EventType, dur time.Duration, arg uint64) {
	t.eventCounts[typ].Add(1)
	if !t.events.Load() {
		return
	}
	t.rings[worker].push(Event{
		TS:     int64(time.Since(t.start)),
		Dur:    int64(dur),
		Arg:    arg,
		Worker: worker,
		Type:   typ,
		Comp:   comp,
	})
}

// Handle is a value-type recording handle bound to one (worker,
// component) pair. The zero Handle (and any handle from a nil Tracer)
// drops every call after a single nil check, so instrumented components
// need no conditional wiring.
type Handle struct {
	t      *Tracer
	worker int32
	comp   Component
}

// Active reports whether recording is on; use it to gate the cost of
// gathering event arguments (e.g. a time.Now() for a span).
func (h Handle) Active() bool { return h.t != nil && h.t.enabled.Load() }

// Event records an instantaneous event.
func (h Handle) Event(typ EventType, arg uint64) {
	if h.t == nil || !h.t.enabled.Load() {
		return
	}
	h.t.record(h.worker, h.comp, typ, 0, arg)
}

// Span records an event that began at start and just finished.
func (h Handle) Span(typ EventType, start time.Time, arg uint64) {
	if h.t == nil || !h.t.enabled.Load() || start.IsZero() {
		return
	}
	h.t.record(h.worker, h.comp, typ, time.Since(start), arg)
}

// Observe adds one latency sample to metric m.
func (h Handle) Observe(m Metric, d time.Duration) {
	if h.t == nil || !h.t.enabled.Load() || m >= numMetrics {
		return
	}
	h.t.hists[m].Observe(d)
}

// ObserveSpan records both a histogram sample and a span event for a
// phase that began at start: the common pattern for timed pipeline
// stages (update rounds, spill I/O, checkpoints).
func (h Handle) ObserveSpan(m Metric, typ EventType, start time.Time, arg uint64) {
	if h.t == nil || !h.t.enabled.Load() || start.IsZero() {
		return
	}
	d := time.Since(start)
	if m < numMetrics {
		h.t.hists[m].Observe(d)
	}
	h.t.record(h.worker, h.comp, typ, d, arg)
}
