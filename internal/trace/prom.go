package trace

import (
	"fmt"
	"io"
	"strconv"
)

// Prometheus text-exposition sink (version 0.0.4 of the format): the
// tracer's latency histograms become native Prometheus histograms
// (cumulative `_bucket{le=...}` series plus `_sum`/`_count`) and the
// event counters become one counter family with an `event` label.
// internal/monitor composes this with the per-worker resource counters
// into the full /metrics endpoint.

var metricHelp = [numMetrics]string{
	MetricTaskRound:  "Latency of one task executor update round.",
	MetricPullRTT:    "Request-to-response latency of one pulled vertex.",
	MetricSpillIO:    "Latency of one task-store spill block write or load.",
	MetricMigration:  "Thief-side task stealing latency (REQ sent to batch received).",
	MetricCheckpoint: "Duration of one worker checkpoint (quiesce and dump).",
}

// WritePrometheus writes the tracer's histograms and event counters in
// Prometheus text exposition format. Nil-safe (writes nothing).
func (t *Tracer) WritePrometheus(w io.Writer) error {
	if t == nil {
		return nil
	}
	for m := Metric(0); m < numMetrics; m++ {
		h := &t.hists[m]
		name := "gminer_" + m.String() + "_seconds"
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, metricHelp[m], name); err != nil {
			return err
		}
		buckets := h.Buckets()
		var cum int64
		for b := 0; b < histBuckets; b++ {
			cum += buckets[b]
			if buckets[b] == 0 && b != histBuckets-1 {
				continue // sparse: cumulative values stay correct
			}
			_, hi := bucketBounds(b)
			le := strconv.FormatFloat(float64(hi)/1e9, 'g', -1, 64)
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count()); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name,
			strconv.FormatFloat(h.Sum().Seconds(), 'g', -1, 64), name, h.Count()); err != nil {
			return err
		}
	}

	if _, err := fmt.Fprintf(w, "# HELP gminer_trace_events_total Pipeline events recorded by the tracer.\n# TYPE gminer_trace_events_total counter\n"); err != nil {
		return err
	}
	for typ := EventType(1); typ < numEventTypes; typ++ {
		if _, err := fmt.Fprintf(w, "gminer_trace_events_total{event=%q} %d\n",
			typ.String(), t.EventCount(typ)); err != nil {
			return err
		}
	}
	return nil
}
