package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event sink: renders the ring buffers in the Chrome
// trace-event JSON format (the "JSON Array Format" wrapped in an object),
// which chrome://tracing and https://ui.perfetto.dev load directly.
//
// Mapping: one process (pid) per worker, one thread (tid) per pipeline
// component, so Perfetto shows a track per worker×component. Events with
// a duration become complete events ("ph":"X"); instantaneous ones become
// thread-scoped instant events ("ph":"i").

// chromeEvent is one trace-event object. Fields follow the Trace Event
// Format spec; Ts and Dur are microseconds.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Cat   string         `json:"cat,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome dumps every buffered event as Chrome trace-event JSON.
func (t *Tracer) WriteChrome(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`)
		return err
	}
	events := t.Events()
	sort.SliceStable(events, func(i, j int) bool { return events[i].TS < events[j].TS })

	doc := chromeDoc{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(events)+2*len(t.rings))}

	// Metadata: name each worker process and component thread once.
	type track struct{ pid, tid int }
	seen := make(map[track]bool)
	for _, e := range events {
		tr := track{pid: int(e.Worker), tid: int(e.Comp)}
		if seen[tr] {
			continue
		}
		seen[tr] = true
		doc.TraceEvents = append(doc.TraceEvents,
			chromeEvent{Name: "process_name", Phase: "M", Pid: tr.pid, Tid: tr.tid,
				Args: map[string]any{"name": fmt.Sprintf("worker %d", tr.pid)}},
			chromeEvent{Name: "thread_name", Phase: "M", Pid: tr.pid, Tid: tr.tid,
				Args: map[string]any{"name": Component(tr.tid).String()}},
		)
	}

	for _, e := range events {
		ce := chromeEvent{
			Name: e.Type.String(),
			Ts:   float64(e.TS) / 1e3,
			Pid:  int(e.Worker),
			Tid:  int(e.Comp),
			Cat:  e.Comp.String(),
			Args: map[string]any{"arg": e.Arg},
		}
		if e.Dur > 0 {
			ce.Phase = "X"
			dur := float64(e.Dur) / 1e3
			ce.Dur = &dur
		} else {
			ce.Phase = "i"
			ce.Scope = "t"
		}
		doc.TraceEvents = append(doc.TraceEvents, ce)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
