package trace

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"
)

// Metric names one latency histogram the tracer maintains.
type Metric uint8

const (
	// MetricTaskRound is one executor update round (§4.3 compute stage).
	MetricTaskRound Metric = iota
	// MetricPullRTT is request-to-response latency of one pulled vertex.
	MetricPullRTT
	// MetricSpillIO is one task-store block write or load.
	MetricSpillIO
	// MetricMigration is thief-side steal latency: REQ sent → batch recv.
	MetricMigration
	// MetricCheckpoint is one worker checkpoint (quiesce + dump).
	MetricCheckpoint

	numMetrics
)

// String returns the metric's snake_case name.
func (m Metric) String() string {
	if int(m) < len(metricNames) {
		return metricNames[m]
	}
	return "unknown"
}

var metricNames = [numMetrics]string{
	MetricTaskRound:  "task_round",
	MetricPullRTT:    "pull_rtt",
	MetricSpillIO:    "spill_io",
	MetricMigration:  "migration",
	MetricCheckpoint: "checkpoint",
}

// metricComponents maps each metric to the pipeline component it measures
// (the "component" column of the CLI summary and DESIGN.md's §4.3 map).
var metricComponents = [numMetrics]Component{
	MetricTaskRound:  CompExecutor,
	MetricPullRTT:    CompRetriever,
	MetricSpillIO:    CompSpill,
	MetricMigration:  CompSteal,
	MetricCheckpoint: CompCheckpoint,
}

// histBuckets covers 1ns .. ~9min in power-of-two buckets: bucket b holds
// samples whose nanosecond value has bit length b, i.e. [2^(b-1), 2^b).
// Bucket 0 holds zero-duration samples; the last bucket is a catch-all.
const histBuckets = 40

// Histogram is a lock-free power-of-two-bucket latency histogram. The
// zero value is ready to use.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

// Observe adds one sample.
func (h *Histogram) Observe(d time.Duration) {
	n := int64(d)
	if n < 0 {
		n = 0
	}
	b := bits.Len64(uint64(n))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(n)
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the summed duration of all samples.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Buckets returns a copy of the raw bucket counts.
func (h *Histogram) Buckets() [histBuckets]int64 {
	var out [histBuckets]int64
	for i := range out {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// bucketBounds returns the value range [lo, hi) of bucket b.
func bucketBounds(b int) (lo, hi int64) {
	if b == 0 {
		return 0, 1
	}
	return 1 << (b - 1), 1 << b
}

// Quantile returns the q-quantile (q in [0,1]) with linear interpolation
// inside the winning bucket. With no samples it returns 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var seen float64
	for b := 0; b < histBuckets; b++ {
		n := float64(h.buckets[b].Load())
		if n == 0 {
			continue
		}
		if seen+n >= rank {
			lo, hi := bucketBounds(b)
			frac := (rank - seen) / n
			return time.Duration(float64(lo) + frac*float64(hi-lo))
		}
		seen += n
	}
	lo, _ := bucketBounds(histBuckets - 1)
	return time.Duration(lo)
}

// PhaseSummary is the percentile digest of one pipeline phase; a slice of
// these rides on cluster.Result and is printed by the CLI on exit.
type PhaseSummary struct {
	Metric    string        `json:"metric"`
	Component string        `json:"component"`
	Count     int64         `json:"count"`
	P50       time.Duration `json:"p50"`
	P95       time.Duration `json:"p95"`
	P99       time.Duration `json:"p99"`
	Total     time.Duration `json:"total"`
}

// Summary digests every non-empty histogram into per-phase percentiles.
func (t *Tracer) Summary() []PhaseSummary {
	if t == nil {
		return nil
	}
	var out []PhaseSummary
	for m := Metric(0); m < numMetrics; m++ {
		h := &t.hists[m]
		if h.Count() == 0 {
			continue
		}
		out = append(out, PhaseSummary{
			Metric:    m.String(),
			Component: metricComponents[m].String(),
			Count:     h.Count(),
			P50:       h.Quantile(0.50),
			P95:       h.Quantile(0.95),
			P99:       h.Quantile(0.99),
			Total:     h.Sum(),
		})
	}
	return out
}

// FormatSummary renders phase summaries as an aligned text table.
func FormatSummary(phases []PhaseSummary) string {
	if len(phases) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-11s %10s %12s %12s %12s %12s\n",
		"phase", "component", "count", "p50", "p95", "p99", "total")
	for _, p := range phases {
		fmt.Fprintf(&b, "%-12s %-11s %10d %12s %12s %12s %12s\n",
			p.Metric, p.Component, p.Count,
			fmtDur(p.P50), fmtDur(p.P95), fmtDur(p.P99), fmtDur(p.Total))
	}
	return b.String()
}

// fmtDur rounds a duration to a readable precision for the table.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	case d >= time.Microsecond:
		return d.Round(100 * time.Nanosecond).String()
	default:
		return d.String()
	}
}
