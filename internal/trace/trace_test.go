package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() || tr.EventsEnabled() {
		t.Fatal("nil tracer reports enabled")
	}
	h := tr.Handle(3, CompExecutor)
	h.Event(EvTaskSeed, 1)
	h.Span(EvTaskActive, time.Now(), 1)
	h.Observe(MetricTaskRound, time.Millisecond)
	h.ObserveSpan(MetricTaskRound, EvTaskActive, time.Now(), 1)
	if h.Active() {
		t.Fatal("nil-backed handle reports active")
	}
	if got := tr.Events(); got != nil {
		t.Fatalf("nil tracer events: %v", got)
	}
	if tr.Summary() != nil {
		t.Fatal("nil tracer summary non-nil")
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if err := tr.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestDisabledTracerRecordsNothing(t *testing.T) {
	tr := New(2, 16)
	h := tr.Handle(0, CompCache)
	h.Event(EvCacheHit, 7)
	h.Observe(MetricPullRTT, time.Millisecond)
	if n := len(tr.Events()); n != 0 {
		t.Fatalf("disabled tracer recorded %d events", n)
	}
	if tr.EventCount(EvCacheHit) != 0 {
		t.Fatal("disabled tracer counted an event")
	}
	if tr.Histogram(MetricPullRTT).Count() != 0 {
		t.Fatal("disabled tracer recorded a sample")
	}
}

func TestEnabledWithoutEventsCountsButNoRing(t *testing.T) {
	tr := New(2, 16).Enable()
	h := tr.Handle(1, CompCache)
	h.Event(EvCacheMiss, 9)
	h.Observe(MetricPullRTT, 2*time.Millisecond)
	if n := len(tr.Events()); n != 0 {
		t.Fatalf("events recorded without EnableEvents: %d", n)
	}
	if tr.EventCount(EvCacheMiss) != 1 {
		t.Fatalf("event count = %d, want 1", tr.EventCount(EvCacheMiss))
	}
	if tr.Histogram(MetricPullRTT).Count() != 1 {
		t.Fatal("histogram sample missing")
	}
}

func TestEventCaptureAndAttribution(t *testing.T) {
	tr := New(3, 64).EnableEvents()
	tr.Handle(0, CompSeeder).Event(EvTaskSeed, 42)
	tr.Handle(2, CompExecutor).Span(EvTaskActive, time.Now().Add(-time.Millisecond), 42)
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Worker != 0 || evs[0].Comp != CompSeeder || evs[0].Type != EvTaskSeed || evs[0].Arg != 42 {
		t.Fatalf("event 0: %+v", evs[0])
	}
	if evs[1].Worker != 2 || evs[1].Dur <= 0 {
		t.Fatalf("span event: %+v", evs[1])
	}
}

func TestRingOverwriteKeepsNewest(t *testing.T) {
	tr := New(1, 8).EnableEvents()
	h := tr.Handle(0, CompNet)
	for i := 0; i < 20; i++ {
		h.Event(EvNetSend, uint64(i))
	}
	evs := tr.Events()
	if len(evs) != 8 {
		t.Fatalf("ring kept %d events, want 8", len(evs))
	}
	for i, e := range evs {
		if want := uint64(12 + i); e.Arg != want {
			t.Fatalf("event %d arg = %d, want %d (oldest-first order)", i, e.Arg, want)
		}
	}
	if tr.EventCount(EvNetSend) != 20 {
		t.Fatalf("event counter = %d, want 20 despite overwrite", tr.EventCount(EvNetSend))
	}
}

func TestHandleWorkerClamping(t *testing.T) {
	tr := New(2, 8).EnableEvents()
	tr.Handle(-5, CompNet).Event(EvNetSend, 1)
	tr.Handle(99, CompNet).Event(EvNetSend, 2)
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[0].Worker != 0 || evs[1].Worker != 1 {
		t.Fatalf("clamping failed: %+v", evs)
	}
}

func TestConcurrentEmission(t *testing.T) {
	tr := New(4, 1024).EnableEvents()
	var wg sync.WaitGroup
	const perWorker = 500
	for w := 0; w < 4; w++ {
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				h := tr.Handle(w, CompExecutor)
				for i := 0; i < perWorker; i++ {
					h.Event(EvTaskDead, uint64(i))
					h.Observe(MetricTaskRound, time.Duration(i)*time.Microsecond)
				}
			}(w)
		}
	}
	wg.Wait()
	if got := tr.EventCount(EvTaskDead); got != 4*3*perWorker {
		t.Fatalf("event count = %d, want %d", got, 4*3*perWorker)
	}
	if got := tr.Histogram(MetricTaskRound).Count(); got != 4*3*perWorker {
		t.Fatalf("histogram count = %d", got)
	}
	if got := len(tr.Events()); got != 4*1024 {
		t.Fatalf("ring snapshot = %d events, want full rings (%d)", got, 4*1024)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile not 0")
	}
	// 1000 samples uniform on [1ms, 1000ms]: p50 ≈ 500ms within one
	// power-of-two bucket (coarse by design).
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if got := h.Count(); got != 1000 {
		t.Fatalf("count %d", got)
	}
	p50 := h.Quantile(0.5)
	if p50 < 250*time.Millisecond || p50 > time.Second {
		t.Fatalf("p50 = %v, want within bucket of 500ms", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < p50 || p99 > 2*time.Second {
		t.Fatalf("p99 = %v", p99)
	}
	if h.Quantile(1) < h.Quantile(0) {
		t.Fatal("quantiles not monotone")
	}
	if h.Sum() <= 0 {
		t.Fatal("sum not recorded")
	}
}

func TestHistogramNegativeAndHugeSamples(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second) // clamps to 0
	h.Observe(1 << 62)      // beyond last bucket: catch-all
	h.Observe(0)            // zero bucket
	if h.Count() != 3 {
		t.Fatalf("count %d", h.Count())
	}
	if q := h.Quantile(0.99); q <= 0 {
		t.Fatalf("catch-all quantile = %v", q)
	}
}

func TestSummaryAndFormat(t *testing.T) {
	tr := New(1, 8).Enable()
	h := tr.Handle(0, CompExecutor)
	for i := 0; i < 100; i++ {
		h.Observe(MetricTaskRound, time.Millisecond)
	}
	h.Observe(MetricSpillIO, 3*time.Millisecond)
	sum := tr.Summary()
	if len(sum) != 2 {
		t.Fatalf("summary has %d phases, want 2 (empty histograms skipped): %+v", len(sum), sum)
	}
	if sum[0].Metric != "task_round" || sum[0].Component != "executor" || sum[0].Count != 100 {
		t.Fatalf("phase 0: %+v", sum[0])
	}
	if sum[0].P50 <= 0 || sum[0].P95 < sum[0].P50 || sum[0].P99 < sum[0].P95 {
		t.Fatalf("percentiles not ordered: %+v", sum[0])
	}
	table := FormatSummary(sum)
	for _, want := range []string{"phase", "task_round", "spill_io", "p50", "p99"} {
		if !strings.Contains(table, want) {
			t.Fatalf("summary table missing %q:\n%s", want, table)
		}
	}
	if FormatSummary(nil) != "" {
		t.Fatal("empty summary should format to empty string")
	}
}

// TestChromeTraceSchema checks the dump is valid JSON in the Chrome
// trace-event format: a traceEvents array whose entries carry the
// required name/ph/ts/pid/tid fields, with metadata naming every track —
// the invariants Perfetto's importer needs.
func TestChromeTraceSchema(t *testing.T) {
	tr := New(2, 64).EnableEvents()
	tr.Handle(0, CompSeeder).Event(EvTaskSeed, 1)
	tr.Handle(0, CompExecutor).Span(EvTaskActive, time.Now().Add(-2*time.Millisecond), 1)
	tr.Handle(1, CompCache).Event(EvCacheHit, 5)

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.Unit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.Unit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	var sawMeta, sawInstant, sawComplete bool
	for _, e := range doc.TraceEvents {
		for _, k := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := e[k]; !ok {
				t.Fatalf("event missing %q: %v", k, e)
			}
		}
		switch e["ph"] {
		case "M":
			sawMeta = true
		case "i":
			sawInstant = true
			if e["s"] != "t" {
				t.Fatalf("instant event missing thread scope: %v", e)
			}
		case "X":
			sawComplete = true
			if _, ok := e["dur"]; !ok {
				t.Fatalf("complete event missing dur: %v", e)
			}
			if ts, ok := e["ts"].(float64); !ok || ts < 0 {
				t.Fatalf("complete event bad ts: %v", e)
			}
		default:
			t.Fatalf("unexpected phase %v", e["ph"])
		}
	}
	if !sawMeta || !sawInstant || !sawComplete {
		t.Fatalf("missing event kinds: meta=%v instant=%v complete=%v", sawMeta, sawInstant, sawComplete)
	}
}

// TestPrometheusExposition validates the exposition against the text
// format rules: every line is a comment or `name{labels} value`, HELP/
// TYPE precede samples, histogram buckets are cumulative and end at +Inf,
// and _count equals the +Inf bucket.
func TestPrometheusExposition(t *testing.T) {
	tr := New(1, 8).Enable()
	h := tr.Handle(0, CompExecutor)
	for i := 0; i < 50; i++ {
		h.Observe(MetricTaskRound, time.Duration(i+1)*time.Millisecond)
		h.Event(EvCacheHit, 1)
	}
	var buf bytes.Buffer
	if err := tr.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	stats := ValidatePrometheusText(t, buf.String())
	if stats["gminer_task_round_seconds_count"] != 50 {
		t.Fatalf("task_round count = %v", stats["gminer_task_round_seconds_count"])
	}
	if stats["gminer_trace_events_total{event=\"cache_hit\"}"] != 50 {
		t.Fatalf("cache_hit counter = %v", stats["gminer_trace_events_total{event=\"cache_hit\"}"])
	}
}

// ValidatePrometheusText is a strict line-oriented validator for the
// Prometheus text exposition format (version 0.0.4). It fails the test on
// any malformed line and returns the parsed samples keyed by series name.
// Shared with internal/monitor's /metrics test via a tiny reimplementation
// there (the packages must not depend on each other's test code).
func ValidatePrometheusText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	var lastInfBucket string
	bucketCum := make(map[string]float64)
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) < 4 {
				t.Fatalf("line %d: malformed comment %q", ln+1, line)
			}
			if parts[1] == "TYPE" {
				switch parts[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					t.Fatalf("line %d: bad metric type %q", ln+1, parts[3])
				}
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: bare comment %q not HELP/TYPE", ln+1, line)
		}
		idx := strings.LastIndex(line, " ")
		if idx < 0 {
			t.Fatalf("line %d: no value separator in %q", ln+1, line)
		}
		series, valStr := line[:idx], line[idx+1:]
		var val float64
		if _, err := fmt.Sscanf(valStr, "%g", &val); err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
		}
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			name = series[:i]
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("line %d: unterminated label set %q", ln+1, series)
			}
		}
		for _, r := range name {
			if !(r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')) {
				t.Fatalf("line %d: bad metric name %q", ln+1, name)
			}
		}
		if strings.HasSuffix(name, "_bucket") {
			if val < bucketCum[name] {
				t.Fatalf("line %d: histogram %s buckets not cumulative", ln+1, name)
			}
			bucketCum[name] = val
			if strings.Contains(series, `le="+Inf"`) {
				lastInfBucket = name
				samples[strings.TrimSuffix(name, "_bucket")+"_inf"] = val
			}
			continue
		}
		samples[series] = val
	}
	if lastInfBucket == "" {
		t.Fatal("no +Inf bucket found in exposition")
	}
	for k, v := range samples {
		if strings.HasSuffix(k, "_inf") {
			count := samples[strings.TrimSuffix(k, "_inf")+"_count"]
			if count != v {
				t.Fatalf("histogram %s: _count %v != +Inf bucket %v", k, count, v)
			}
		}
	}
	return samples
}
