package core

import (
	"gminer/internal/graph"
	"gminer/internal/kernels"
	"gminer/internal/wire"
)

// Algorithm is the user-facing programming framework (§5.2, Listing 1).
// The paper's C++ API asks users to subclass Task (update) and Worker
// (vtxParser, init, output); in Go the same contract is one interface plus
// the ContextCodec for task serialization.
type Algorithm interface {
	ContextCodec

	// Name identifies the algorithm in logs and checkpoints.
	Name() string

	// Seed implements init(v): inspect one vertex of the local partition
	// and produce zero or more tasks rooted at it. The runtime streams
	// seeds through the pipeline, so Seed must not retain v.
	Seed(v *graph.Vertex, spawn func(*Task))

	// Update implements the per-round update operation: cands[i] is the
	// vertex object for t.Cands[i] (nil if the vertex does not exist in
	// the graph — algorithms must tolerate dangling candidates). Update
	// mutates t.Subgraph / t.Context, emits results via env, and calls
	// t.Pull to continue into the next round; returning without Pull ends
	// the task.
	Update(t *Task, cands []*graph.Vertex, env Env)
}

// KernelConfigurable is implemented by algorithms that can execute
// compiled plans against a prebuilt kernels.CSR index (degree-ranked
// packed adjacency). The runtime calls ConfigureKernels exactly once per
// job, after graph validation and before seeding; csr may be nil when no
// index is available (the algorithm must fall back to its generic path).
// generic forces the generic path even with an index present — the
// differential baseline the plan-vs-generic test suite compares against.
//
// Contract: plans change where exploration starts and how intersections
// run, never what a job outputs. An algorithm's results (aggregate and
// emitted records) must be byte-identical with and without kernels.
type KernelConfigurable interface {
	ConfigureKernels(csr *kernels.CSR, generic bool)
}

// AggregatorProvider is implemented by algorithms that use global
// aggregation (e.g. MCF's global currently-maximum clique size, §5.1).
type AggregatorProvider interface {
	Aggregator() Aggregator
}

// Aggregator mirrors the paper's Aggregator class: workers fold local task
// context into a partial value; the master periodically merges partials
// and broadcasts the global value back, which Update can read for pruning.
// Implementations must be safe for use from a single worker goroutine at a
// time; the runtime serializes calls per worker instance.
type Aggregator interface {
	// Zero returns the identity partial value.
	Zero() any
	// Add folds a value reported by a task into a partial.
	Add(partial, v any) any
	// Merge combines two partials (also used master-side across workers).
	Merge(a, b any) any
	// Encode / Decode serialize values for aggregator sync messages.
	Encode(w *wire.Writer, v any)
	Decode(r *wire.Reader) any
}

// Env is the runtime interface available to Seed/Update (the paper's
// Worker facilities: output collector, aggregator, local vertex table).
type Env interface {
	// WorkerID returns the executing worker's index in [0, NumWorkers).
	WorkerID() int
	// NumWorkers returns the cluster size (workers, excluding master).
	NumWorkers() int
	// Emit appends a result record to the job output (Worker::output).
	Emit(record string)
	// AggUpdate folds v into the worker's local aggregator partial.
	AggUpdate(v any)
	// AggGlobal returns the last globally synced aggregator value, or the
	// aggregator's zero if no sync has happened yet. The value may lag the
	// true global state — aggregation is periodic, not transactional.
	AggGlobal() any
	// LocalVertex returns the vertex from the worker's local partition
	// (not the cache), or nil — used by algorithms that need extra
	// neighborhood probes beyond the candidate mechanism.
	LocalVertex(id graph.VertexID) *graph.Vertex
}

// MaxIntAggregator is the "maximum aggregator" the paper describes for
// maximum clique finding: tracks the globally largest int reported.
type MaxIntAggregator struct{}

// Zero implements Aggregator.
func (MaxIntAggregator) Zero() any { return 0 }

// Add implements Aggregator.
func (MaxIntAggregator) Add(partial, v any) any {
	if v.(int) > partial.(int) {
		return v
	}
	return partial
}

// Merge implements Aggregator.
func (a MaxIntAggregator) Merge(x, y any) any { return a.Add(x, y) }

// Encode implements Aggregator.
func (MaxIntAggregator) Encode(w *wire.Writer, v any) { w.Int(v.(int)) }

// Decode implements Aggregator.
func (MaxIntAggregator) Decode(r *wire.Reader) any { return r.Int() }

// SumInt64Aggregator sums int64 values reported by tasks (e.g. the global
// count of matched subgraphs in GM, §5.3).
type SumInt64Aggregator struct{}

// Zero implements Aggregator.
func (SumInt64Aggregator) Zero() any { return int64(0) }

// Add implements Aggregator.
func (SumInt64Aggregator) Add(partial, v any) any { return partial.(int64) + v.(int64) }

// Merge implements Aggregator.
func (SumInt64Aggregator) Merge(x, y any) any { return x.(int64) + y.(int64) }

// Encode implements Aggregator.
func (SumInt64Aggregator) Encode(w *wire.Writer, v any) { w.Varint(v.(int64)) }

// Decode implements Aggregator.
func (SumInt64Aggregator) Decode(r *wire.Reader) any { return r.Varint() }
