// Package core defines the task model at the heart of G-Miner (§4.2 of
// the paper): a graph mining job is decomposed into independent tasks,
// each holding an intermediate subgraph g, the candidate vertex IDs for
// the next round, and algorithm-specific context. Tasks move through the
// statuses active → inactive → ready → … → dead as the task pipeline
// (internal/pipeline) executes them.
package core

import (
	"sort"

	"gminer/internal/graph"
	"gminer/internal/wire"
)

// Subgraph is the intermediate subgraph g carried by a task. It stores a
// sorted vertex set plus an optional explicit edge set; most algorithms
// (TC, MCF) only need the vertex set, while GM/CD record matched edges.
type Subgraph struct {
	verts []graph.VertexID // sorted, unique
	edges [][2]graph.VertexID
}

// Len returns |V(g)|.
func (s *Subgraph) Len() int { return len(s.verts) }

// NumEdges returns the number of explicitly recorded edges.
func (s *Subgraph) NumEdges() int { return len(s.edges) }

// Vertices returns the sorted vertex set. The slice aliases internal
// storage; callers must not mutate it.
func (s *Subgraph) Vertices() []graph.VertexID { return s.verts }

// Edges returns the recorded edge list (aliases internal storage).
func (s *Subgraph) Edges() [][2]graph.VertexID { return s.edges }

// Has reports whether id is in the subgraph.
func (s *Subgraph) Has(id graph.VertexID) bool {
	i := sort.Search(len(s.verts), func(i int) bool { return s.verts[i] >= id })
	return i < len(s.verts) && s.verts[i] == id
}

// AddVertex inserts id, keeping the set sorted; duplicates are ignored.
func (s *Subgraph) AddVertex(id graph.VertexID) {
	i := sort.Search(len(s.verts), func(i int) bool { return s.verts[i] >= id })
	if i < len(s.verts) && s.verts[i] == id {
		return
	}
	s.verts = append(s.verts, 0)
	copy(s.verts[i+1:], s.verts[i:])
	s.verts[i] = id
}

// AddVertices inserts several IDs ("subG.addNodes(S)" in Listing 2).
func (s *Subgraph) AddVertices(ids ...graph.VertexID) {
	for _, id := range ids {
		s.AddVertex(id)
	}
}

// RemoveVertex deletes id and any recorded edges touching it (the "shrink"
// operation of the general mining schema, §4.1).
func (s *Subgraph) RemoveVertex(id graph.VertexID) {
	i := sort.Search(len(s.verts), func(i int) bool { return s.verts[i] >= id })
	if i >= len(s.verts) || s.verts[i] != id {
		return
	}
	s.verts = append(s.verts[:i], s.verts[i+1:]...)
	out := s.edges[:0]
	for _, e := range s.edges {
		if e[0] != id && e[1] != id {
			out = append(out, e)
		}
	}
	s.edges = out
}

// AddEdge records the edge {u, w}, inserting both endpoints.
func (s *Subgraph) AddEdge(u, w graph.VertexID) {
	if u > w {
		u, w = w, u
	}
	s.AddVertex(u)
	s.AddVertex(w)
	for _, e := range s.edges {
		if e[0] == u && e[1] == w {
			return
		}
	}
	s.edges = append(s.edges, [2]graph.VertexID{u, w})
}

// Clone returns a deep copy — used by task splitting, where children start
// from the parent's subgraph.
func (s *Subgraph) Clone() Subgraph {
	c := Subgraph{}
	c.verts = append([]graph.VertexID(nil), s.verts...)
	if s.edges != nil {
		c.edges = append([][2]graph.VertexID(nil), s.edges...)
	}
	return c
}

// FootprintBytes estimates the in-memory size, used for memory accounting
// and the migration cost function.
func (s *Subgraph) FootprintBytes() int64 {
	return int64(8*len(s.verts) + 16*len(s.edges) + 48)
}

func encodeSubgraph(w *wire.Writer, s *Subgraph) {
	wire.EncodeIDs(w, s.verts)
	w.Uvarint(uint64(len(s.edges)))
	for _, e := range s.edges {
		w.Varint(int64(e[0]))
		w.Varint(int64(e[1]))
	}
}

func decodeSubgraph(r *wire.Reader) Subgraph {
	var s Subgraph
	s.verts = wire.DecodeIDs(r)
	// Each edge is two varints, ≥2 bytes; Count bounds the allocation
	// against the bytes actually present (fuzz hardening).
	n := r.Count(2)
	if n > 0 {
		s.edges = make([][2]graph.VertexID, 0, n)
		for i := 0; i < n; i++ {
			u := graph.VertexID(r.Varint())
			v := graph.VertexID(r.Varint())
			s.edges = append(s.edges, [2]graph.VertexID{u, v})
		}
	}
	return s
}
