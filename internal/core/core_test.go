package core

import (
	"sort"
	"testing"
	"testing/quick"

	"gminer/internal/graph"
	"gminer/internal/wire"
)

func TestSubgraphAddHasRemove(t *testing.T) {
	var s Subgraph
	s.AddVertices(5, 3, 9, 3)
	if s.Len() != 3 || !s.Has(3) || !s.Has(5) || !s.Has(9) || s.Has(4) {
		t.Fatalf("subgraph wrong: %v", s.Vertices())
	}
	// Sorted invariant.
	vs := s.Vertices()
	if !sort.SliceIsSorted(vs, func(i, j int) bool { return vs[i] < vs[j] }) {
		t.Fatalf("not sorted: %v", vs)
	}
	s.RemoveVertex(5)
	if s.Len() != 2 || s.Has(5) {
		t.Fatalf("remove failed: %v", s.Vertices())
	}
}

func TestSubgraphEdges(t *testing.T) {
	var s Subgraph
	s.AddEdge(2, 1)
	s.AddEdge(1, 2) // dedup (normalized order)
	s.AddEdge(2, 3)
	if s.NumEdges() != 2 || s.Len() != 3 {
		t.Fatalf("edges=%d verts=%d", s.NumEdges(), s.Len())
	}
	s.RemoveVertex(2)
	if s.NumEdges() != 0 {
		t.Fatalf("edges touching removed vertex survive: %v", s.Edges())
	}
}

func TestSubgraphCloneIndependence(t *testing.T) {
	var s Subgraph
	s.AddEdge(1, 2)
	c := s.Clone()
	c.AddVertex(99)
	c.AddEdge(1, 99)
	if s.Has(99) || s.NumEdges() != 1 {
		t.Fatal("clone aliases parent")
	}
}

func TestTaskTransition(t *testing.T) {
	task := &Task{}
	task.Pull(1, 2)
	task.Pull(3)
	child := &Task{}
	task.Spawn(child)
	next, children := task.TakeTransition()
	if len(next) != 3 || len(children) != 1 {
		t.Fatalf("next=%v children=%d", next, len(children))
	}
	// Second take is empty (consumed).
	next, children = task.TakeTransition()
	if next != nil || children != nil {
		t.Fatal("transition not consumed")
	}
	task.Advance([]graph.VertexID{7})
	if task.Round != 1 || len(task.Cands) != 1 {
		t.Fatalf("advance: round=%d cands=%v", task.Round, task.Cands)
	}
}

func TestCostAndLocalRate(t *testing.T) {
	task := &Task{}
	task.Subgraph.AddVertices(1, 2)
	task.Cands = []graph.VertexID{3, 4, 5, 6}
	task.ToPull = []graph.VertexID{5, 6}
	if task.CostC() != 6 {
		t.Fatalf("c(t)=%d want 6", task.CostC())
	}
	if lr := task.LocalRate(); lr != 0.5 {
		t.Fatalf("lr(t)=%f want 0.5", lr)
	}
	empty := &Task{}
	if empty.LocalRate() != 0 {
		t.Fatal("empty task lr should be 0")
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		StatusActive: "active", StatusInactive: "inactive",
		StatusReady: "ready", StatusDead: "dead",
	} {
		if s.String() != want {
			t.Fatalf("%d -> %q", s, s.String())
		}
	}
}

func TestTaskCodecRoundTrip(t *testing.T) {
	task := &Task{ID: 42, Round: 3}
	task.Subgraph.AddVertices(1, 5, 9)
	task.Subgraph.AddEdge(1, 5)
	task.Cands = []graph.VertexID{10, 11}
	w := wire.NewWriter(64)
	EncodeTask(w, task, NoContext{})
	got, err := DecodeTask(wire.NewReader(w.Bytes()), NoContext{})
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 42 || got.Round != 3 || got.Subgraph.Len() != 3 ||
		got.Subgraph.NumEdges() != 1 || len(got.Cands) != 2 {
		t.Fatalf("round trip mangled: %+v", got)
	}
	if got.Status() != StatusInactive {
		t.Fatalf("decoded status %v, want inactive", got.Status())
	}
}

func TestTaskCodecCorrupt(t *testing.T) {
	task := &Task{ID: 1}
	task.Subgraph.AddVertex(2)
	w := wire.NewWriter(32)
	EncodeTask(w, task, NoContext{})
	full := w.Bytes()
	for cut := 0; cut < len(full)-1; cut++ {
		if _, err := DecodeTask(wire.NewReader(full[:cut]), NoContext{}); err == nil {
			// Some prefixes decode "successfully" into an empty-but-valid
			// task only if all fields happen to be consumed; with a
			// nonempty subgraph any strict prefix must fail.
			t.Fatalf("cut=%d: expected decode error", cut)
		}
	}
}

func TestAggregators(t *testing.T) {
	max := MaxIntAggregator{}
	p := max.Zero()
	p = max.Add(p, 5)
	p = max.Add(p, 3)
	if p.(int) != 5 {
		t.Fatalf("max=%v", p)
	}
	if max.Merge(7, p).(int) != 7 {
		t.Fatal("merge")
	}
	w := wire.NewWriter(8)
	max.Encode(w, 9)
	if max.Decode(wire.NewReader(w.Bytes())).(int) != 9 {
		t.Fatal("max codec")
	}

	sum := SumInt64Aggregator{}
	s := sum.Zero()
	s = sum.Add(s, int64(4))
	s = sum.Add(s, int64(6))
	if s.(int64) != 10 {
		t.Fatalf("sum=%v", s)
	}
	w2 := wire.NewWriter(8)
	sum.Encode(w2, int64(-3))
	if sum.Decode(wire.NewReader(w2.Bytes())).(int64) != -3 {
		t.Fatal("sum codec")
	}
}

// Property: Subgraph behaves as a sorted set for arbitrary operations.
func TestQuickSubgraphSetSemantics(t *testing.T) {
	f := func(ops []int16) bool {
		var s Subgraph
		ref := map[graph.VertexID]bool{}
		for _, op := range ops {
			id := graph.VertexID(op & 0x3F)
			if op < 0 {
				s.RemoveVertex(id)
				delete(ref, id)
			} else {
				s.AddVertex(id)
				ref[id] = true
			}
		}
		if s.Len() != len(ref) {
			return false
		}
		vs := s.Vertices()
		if !sort.SliceIsSorted(vs, func(i, j int) bool { return vs[i] < vs[j] }) {
			return false
		}
		for _, v := range vs {
			if !ref[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: task codec round-trips arbitrary tasks.
func TestQuickTaskCodec(t *testing.T) {
	f := func(id uint64, round uint8, verts []int16, cands []int16) bool {
		task := &Task{ID: id, Round: int(round)}
		for _, v := range verts {
			task.Subgraph.AddVertex(graph.VertexID(v))
		}
		for _, c := range cands {
			task.Cands = append(task.Cands, graph.VertexID(c))
		}
		w := wire.NewWriter(64)
		EncodeTask(w, task, NoContext{})
		got, err := DecodeTask(wire.NewReader(w.Bytes()), NoContext{})
		if err != nil {
			return false
		}
		if got.ID != id || got.Round != int(round) || got.Subgraph.Len() != task.Subgraph.Len() {
			return false
		}
		for i, c := range task.Cands {
			if got.Cands[i] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
