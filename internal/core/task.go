package core

import (
	"fmt"

	"gminer/internal/graph"
	"gminer/internal/wire"
)

// Status is the lifetime state of a task (§4.2, "Task lifetime").
type Status uint8

const (
	// StatusActive: currently being processed by update, or eligible to be
	// because all its candidates are local/cached.
	StatusActive Status = iota
	// StatusInactive: waiting in the task store; at least one candidate
	// must be pulled from a remote worker.
	StatusInactive
	// StatusReady: all remote candidates pulled; queued in the CPQ.
	StatusReady
	// StatusDead: finished (reported or confirmed fruitless).
	StatusDead
)

func (s Status) String() string {
	switch s {
	case StatusActive:
		return "active"
	case StatusInactive:
		return "inactive"
	case StatusReady:
		return "ready"
	case StatusDead:
		return "dead"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Task is one independent unit of mining work: the intermediate subgraph
// g, the candidate vertex IDs used to update g in the next round, and the
// algorithm-defined context (§4.2).
type Task struct {
	// ID is unique within a job (high bits: origin worker).
	ID uint64
	// Round is the current update round, starting at 1 for the first
	// Update call after seeding.
	Round int
	// Subgraph is the intermediate subgraph g.
	Subgraph Subgraph
	// Cands holds the candidate vertex IDs for the current round
	// (candVtxs in Listing 1).
	Cands []graph.VertexID
	// Context holds algorithm state (e.g. GM's (round, count) pair). It is
	// serialized by the algorithm's context codec when the task crosses
	// the wire or is spilled.
	Context any

	// status tracks the lifetime state; maintained by the runtime.
	status Status

	// pull accumulates the next round's candidates requested by Update.
	pull []graph.VertexID

	// ToPull is the subset of Cands that must be fetched from remote
	// workers; computed by the candidate retriever and consumed for LSH
	// signing and the locality rate lr(t) of task stealing.
	ToPull []graph.VertexID

	// spawned collects child tasks created during Update (recursive task
	// splitting, §9 future work).
	spawned []*Task
}

// Status returns the task's lifetime state.
func (t *Task) Status() Status { return t.status }

// SetStatus is used by the runtime to advance the lifetime state.
func (t *Task) SetStatus(s Status) { t.status = s }

// Pull requests the given candidates for the next round ("reset it through
// pull() for the next round", §5.2). Calling Pull at least once during
// Update keeps the task alive; not calling it lets the task die after the
// current round.
func (t *Task) Pull(ids ...graph.VertexID) {
	t.pull = append(t.pull, ids...)
}

// Spawn schedules a child task for execution. The child inherits nothing
// implicitly; callers typically Clone the parent subgraph.
func (t *Task) Spawn(child *Task) {
	t.spawned = append(t.spawned, child)
}

// TakeTransition consumes the results of one Update call: the requested
// next-round candidates (nil means the task dies) and any spawned
// children. The runtime advances Round and replaces Cands when the task
// survives.
func (t *Task) TakeTransition() (next []graph.VertexID, children []*Task) {
	next, children = t.pull, t.spawned
	t.pull, t.spawned = nil, nil
	return next, children
}

// Advance moves the task into its next round with the given candidates.
func (t *Task) Advance(next []graph.VertexID) {
	t.Cands = next
	t.Round++
}

// CostC is the migration cost c(t) = |t.subG| + |t.candVtxs| (Eq. 2).
func (t *Task) CostC() int { return t.Subgraph.Len() + len(t.Cands) }

// LocalRate is lr(t) = (|cand| - |to_pull|) / |cand| (Eq. 3), the task's
// dependency on its current local partition. A task with no candidates has
// lr = 0 (fully migratable).
func (t *Task) LocalRate() float64 {
	if len(t.Cands) == 0 {
		return 0
	}
	return float64(len(t.Cands)-len(t.ToPull)) / float64(len(t.Cands))
}

// FootprintBytes estimates in-memory size for memory accounting.
func (t *Task) FootprintBytes() int64 {
	return 96 + t.Subgraph.FootprintBytes() + int64(8*(len(t.Cands)+len(t.ToPull)))
}

// ContextCodec serializes algorithm contexts. Algorithms with no context
// can embed NoContext.
type ContextCodec interface {
	EncodeContext(w *wire.Writer, ctx any)
	DecodeContext(r *wire.Reader) any
}

// EncodeTask serializes a task (for migration, spilling or checkpointing)
// using the algorithm's context codec. ToPull is carried along: a task
// reloaded from a spill block on the same worker must still know which
// candidates to pull (a migrated task's receiver recomputes it against
// its own partition instead).
func EncodeTask(w *wire.Writer, t *Task, codec ContextCodec) {
	w.Uvarint(t.ID)
	w.Int(t.Round)
	encodeSubgraph(w, &t.Subgraph)
	wire.EncodeIDs(w, t.Cands)
	wire.EncodeIDs(w, t.ToPull)
	codec.EncodeContext(w, t.Context)
}

// DecodeTask reads a task serialized by EncodeTask. Status is reset to
// inactive: a deserialized task always re-enters via the task store.
func DecodeTask(r *wire.Reader, codec ContextCodec) (*Task, error) {
	t := &Task{}
	t.ID = r.Uvarint()
	t.Round = r.Int()
	t.Subgraph = decodeSubgraph(r)
	t.Cands = wire.DecodeIDs(r)
	t.ToPull = wire.DecodeIDs(r)
	t.Context = codec.DecodeContext(r)
	if err := r.Err(); err != nil {
		return nil, err
	}
	t.status = StatusInactive
	return t, nil
}

// NoContext is a ContextCodec for algorithms whose tasks carry no context.
type NoContext struct{}

// EncodeContext implements ContextCodec.
func (NoContext) EncodeContext(w *wire.Writer, ctx any) {}

// DecodeContext implements ContextCodec.
func (NoContext) DecodeContext(r *wire.Reader) any { return nil }
