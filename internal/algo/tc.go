package algo

import (
	"gminer/internal/core"
	"gminer/internal/graph"
)

// TriangleCount implements TC (§8.1): a light workload using only 1-hop
// neighborhoods. Each vertex v seeds one task whose candidates are the
// neighbors u > v; one update round intersects each candidate's adjacency
// with the candidate set to count triangles {v, u, w} with v < u < w
// exactly once. The global count accumulates through a sum aggregator.
type TriangleCount struct {
	core.NoContext
}

// NewTriangleCount returns the TC application.
func NewTriangleCount() *TriangleCount { return &TriangleCount{} }

// Name implements core.Algorithm.
func (*TriangleCount) Name() string { return "tc" }

// Aggregator implements core.AggregatorProvider.
func (*TriangleCount) Aggregator() core.Aggregator { return core.SumInt64Aggregator{} }

// Seed implements core.Algorithm: one task per vertex with at least two
// higher neighbors.
func (*TriangleCount) Seed(v *graph.Vertex, spawn func(*core.Task)) {
	var cands []graph.VertexID
	for _, u := range v.Adj {
		if u > v.ID {
			cands = append(cands, u)
		}
	}
	if len(cands) < 2 {
		return
	}
	t := &core.Task{}
	t.Subgraph.AddVertex(v.ID)
	t.Cands = cands
	spawn(t)
}

// Update implements core.Algorithm: count pairs (u, w) of candidates with
// u < w and w ∈ Γ(u). t.Cands is sorted ascending (a suffix of the seed's
// sorted adjacency), so the candidate set doubles as the Γ(v) filter.
func (*TriangleCount) Update(t *core.Task, cands []*graph.Vertex, env core.Env) {
	var count int64
	set := t.Cands
	for i, u := range cands {
		if u == nil {
			continue
		}
		uid := t.Cands[i]
		// w must be a candidate (w ∈ Γ(v)), a neighbor of u, and > u.
		for _, w := range u.Adj {
			if w <= uid {
				continue
			}
			if containsSorted(set, w) {
				count++
			}
		}
	}
	if count > 0 {
		env.AggUpdate(count)
	}
	// No Pull: the task dies after one round.
}

// containsSorted reports whether sorted ids contains x.
func containsSorted(ids []graph.VertexID, x graph.VertexID) bool {
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case ids[mid] < x:
			lo = mid + 1
		case ids[mid] > x:
			hi = mid
		default:
			return true
		}
	}
	return false
}
