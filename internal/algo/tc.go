package algo

import (
	"gminer/internal/core"
	"gminer/internal/graph"
	"gminer/internal/kernels"
)

// TriangleCount implements TC (§8.1): a light workload using only 1-hop
// neighborhoods. Each vertex v seeds one task whose candidates are a set
// of neighbors guaranteed to cover each triangle exactly once; one update
// round intersects each candidate's adjacency with the candidate set to
// count the triangles through the seed. The global count accumulates
// through a sum aggregator.
//
// Two seeding orders produce the same total:
//
//   - generic: candidates are the neighbors u > v (ID order) — each
//     triangle is counted at its minimum-ID vertex;
//   - planned (CSR present, generic off): candidates are the neighbors
//     with higher (degree, ID) rank — the degree-oriented DAG of the
//     compiled triangle plan. Each triangle is counted at its
//     minimum-rank vertex, and the heaviest vertices stop seeding the
//     largest candidate sets: per-seed work drops from O(Δ²) to
//     O(arboricity²), the integer-factor win on skewed graphs.
//
// Within a task both paths count candidate pairs in ID order with the
// same intersection semantics, so results are byte-identical (TC emits no
// records; the sum aggregate is order-independent).
type TriangleCount struct {
	core.NoContext
	// Generic forces ID-order seeding and scalar intersection even when a
	// CSR index is configured (the differential baseline).
	Generic bool

	csr *kernels.CSR
}

// NewTriangleCount returns the TC application.
func NewTriangleCount() *TriangleCount { return &TriangleCount{} }

// Name implements core.Algorithm.
func (*TriangleCount) Name() string { return "tc" }

// Aggregator implements core.AggregatorProvider.
func (*TriangleCount) Aggregator() core.Aggregator { return core.SumInt64Aggregator{} }

// ConfigureKernels implements core.KernelConfigurable.
func (a *TriangleCount) ConfigureKernels(csr *kernels.CSR, generic bool) {
	a.csr = csr
	a.Generic = a.Generic || generic
}

// Seed implements core.Algorithm: one task per vertex with at least two
// candidates (fewer cannot close a triangle).
func (a *TriangleCount) Seed(v *graph.Vertex, spawn func(*core.Task)) {
	var cands []graph.VertexID
	if a.csr != nil && !a.Generic {
		cands = a.csr.AppendDagNeighborIDs(nil, v.ID)
	} else {
		for _, u := range v.Adj {
			if u > v.ID {
				cands = append(cands, u)
			}
		}
	}
	if len(cands) < 2 {
		return
	}
	t := &core.Task{}
	t.Subgraph.AddVertex(v.ID)
	t.Cands = cands
	spawn(t)
}

// Update implements core.Algorithm: count pairs (u, w) of candidates with
// u < w and w ∈ Γ(u). t.Cands is sorted ascending under both seeding
// orders, so the candidate set doubles as the Γ(v) filter.
func (a *TriangleCount) Update(t *core.Task, cands []*graph.Vertex, env core.Env) {
	var count int64
	set := t.Cands
	for i, u := range cands {
		if u == nil {
			continue
		}
		uid := t.Cands[i]
		if a.Generic {
			// Scalar baseline: probe each neighbor above uid against the set.
			for _, w := range u.Adj {
				if w <= uid {
					continue
				}
				if containsSorted(set, w) {
					count++
				}
			}
			continue
		}
		// Kernel path: branch-free suffix intersection, strategy selected
		// by operand size.
		count += int64(kernels.CountAbove(u.Adj, set, uid))
	}
	if count > 0 {
		env.AggUpdate(count)
	}
	// No Pull: the task dies after one round.
}

// containsSorted reports whether sorted ids contains x.
func containsSorted(ids []graph.VertexID, x graph.VertexID) bool {
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case ids[mid] < x:
			lo = mid + 1
		case ids[mid] > x:
			hi = mid
		default:
			return true
		}
	}
	return false
}
