// Package algo implements the five graph mining applications evaluated in
// the paper (§8.1) on top of the G-Miner programming framework
// (core.Algorithm): triangle counting (TC), maximum clique finding (MCF),
// graph matching (GM), community detection (CD) and graph clustering
// (GC), plus sequential reference implementations used as correctness
// oracles and as the single-threaded baseline of Table 1 / Figure 7.
package algo

import (
	"fmt"

	"gminer/internal/graph"
	"gminer/internal/kernels"
)

// Pattern is a rooted, labeled tree pattern for graph matching, matched
// level by level as in Figure 1 of the paper. Node 0 is the root; nodes
// must be listed in BFS order (every node's parent precedes it).
type Pattern struct {
	// Labels[i] is the required label of pattern node i.
	Labels []int32
	// Parent[i] is the parent node of i; Parent[0] = -1.
	Parent []int

	levels   [][]int // nodes per depth
	children [][]int
	depth    []int
}

// NewPattern validates and prepares a pattern.
func NewPattern(labels []int32, parent []int) (*Pattern, error) {
	if len(labels) == 0 || len(labels) != len(parent) {
		return nil, fmt.Errorf("algo: pattern needs equal, non-empty labels/parent")
	}
	if parent[0] != -1 {
		return nil, fmt.Errorf("algo: pattern node 0 must be the root (parent -1)")
	}
	p := &Pattern{Labels: labels, Parent: parent}
	p.depth = make([]int, len(labels))
	p.children = make([][]int, len(labels))
	for i := 1; i < len(labels); i++ {
		if parent[i] < 0 || parent[i] >= i {
			return nil, fmt.Errorf("algo: pattern node %d: parent %d must precede it (BFS order)", i, parent[i])
		}
		p.depth[i] = p.depth[parent[i]] + 1
		p.children[parent[i]] = append(p.children[parent[i]], i)
	}
	maxDepth := 0
	for _, d := range p.depth {
		if d > maxDepth {
			maxDepth = d
		}
	}
	p.levels = make([][]int, maxDepth+1)
	for i, d := range p.depth {
		p.levels[d] = append(p.levels[d], i)
	}
	return p, nil
}

// MustPattern is NewPattern that panics on error.
func MustPattern(labels []int32, parent []int) *Pattern {
	p, err := NewPattern(labels, parent)
	if err != nil {
		panic(err)
	}
	return p
}

// FigurePattern returns the query pattern of Figure 1: a root 'a' with
// children 'b' and 'c', where 'c' has children 'b' and 'd'. With the
// 7-letter alphabet {a..g} mapped to {0..6}.
func FigurePattern() *Pattern {
	return MustPattern(
		[]int32{0, 1, 2, 1, 3},
		[]int{-1, 0, 0, 2, 2},
	)
}

// PathPattern returns a simple path pattern with the given labels.
func PathPattern(labels ...int32) *Pattern {
	parent := make([]int, len(labels))
	for i := range parent {
		parent[i] = i - 1
	}
	return MustPattern(labels, parent)
}

// Depth returns the number of levels below the root.
func (p *Pattern) Depth() int { return len(p.levels) - 1 }

// Levels returns pattern node indices grouped by depth.
func (p *Pattern) Levels() [][]int { return p.levels }

// Children returns the child nodes of pattern node i.
func (p *Pattern) Children(i int) []int { return p.children[i] }

// attrSimilarity returns the fraction of equal dimensions between two
// attribute vectors (the categorical similarity the generators produce).
// Vectors of different lengths compare over the shorter prefix.
func attrSimilarity(a, b []int32) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	eq := 0
	for i := 0; i < n; i++ {
		if a[i] == b[i] {
			eq++
		}
	}
	return float64(eq) / float64(n)
}

// weightedSimilarity scores attribute vector a against an exemplar with
// per-dimension weights (FocusCO-style focus attributes): the weighted
// fraction of matching dimensions.
func weightedSimilarity(a, exemplar []int32, weights []float64) float64 {
	n := len(a)
	if len(exemplar) < n {
		n = len(exemplar)
	}
	if len(weights) < n {
		n = len(weights)
	}
	var total, match float64
	for i := 0; i < n; i++ {
		total += weights[i]
		if a[i] == exemplar[i] {
			match += weights[i]
		}
	}
	if total == 0 {
		return 0
	}
	return match / total
}

// intersectSorted returns |a ∩ b| for sorted ID slices. It is a thin
// front for the kernel layer's adaptive merge/gallop counting, kept so
// call sites read in set language.
func intersectSorted(a, b []graph.VertexID) int {
	return kernels.Count(a, b)
}

// formatIDs renders a sorted vertex set as a stable record string.
func formatIDs(ids []graph.VertexID) string {
	out := ""
	for i, id := range ids {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%d", id)
	}
	return out
}
