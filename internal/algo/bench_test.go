package algo

import (
	"testing"

	"gminer/internal/gen"
)

func BenchmarkRefTriangles(b *testing.B) {
	g := gen.MustBuild(gen.Orkut, 0.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = RefTriangles(g)
	}
}

func BenchmarkRefMaxClique(b *testing.B) {
	g := gen.MustBuild(gen.Orkut, 0.15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = RefMaxClique(g)
	}
}

func BenchmarkRefMatchCountDP(b *testing.B) {
	g, _ := gen.BuildLabeled(gen.Orkut, 0.25)
	p := FigurePattern()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = RefMatchCount(g, p)
	}
}

func BenchmarkSeqRunGM(b *testing.B) {
	// The task-style sequential execution of GM — the COST baseline.
	g, _ := gen.BuildLabeled(gen.Orkut, 0.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SeqRun(g, NewGraphMatch(FigurePattern()))
	}
}

func BenchmarkSeqRunTC(b *testing.B) {
	g := gen.MustBuild(gen.Orkut, 0.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SeqRun(g, NewTriangleCount())
	}
}

func BenchmarkRefCensus(b *testing.B) {
	g := gen.MustBuild(gen.Orkut, 0.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = RefCensus(g)
	}
}
