package algo

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"gminer/internal/gen"
	"gminer/internal/graph"
	"gminer/internal/wire"
)

func TestRefCensusAgainstBruteForce(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		g := randomGraph(seed, 12, 30)
		got := RefCensus(g)
		wantTri := bruteTriangles(g)
		// Brute wedges: ordered center counting.
		var wedges int64
		g.ForEach(func(v *graph.Vertex) bool {
			d := int64(v.Degree())
			wedges += d * (d - 1) / 2
			return true
		})
		if got.Triangles != wantTri || got.OpenWedges != wedges-3*wantTri {
			t.Fatalf("seed %d: got %+v want tri=%d open=%d", seed, got, wantTri, wedges-3*wantTri)
		}
		if got.OpenWedges < 0 {
			t.Fatalf("negative open wedges: %+v", got)
		}
	}
}

func TestQuasiCliqueGammaOneIsClique(t *testing.T) {
	// With γ=1 every grown set must be a clique.
	for seed := int64(0); seed < 10; seed++ {
		g := randomGraph(seed, 15, 60)
		qc := NewQuasiClique(1.0, 3)
		for _, rec := range RefQuasiCliques(g, qc) {
			members := parseRecordIDs(t, rec)
			for i := 0; i < len(members); i++ {
				for j := i + 1; j < len(members); j++ {
					if !g.Vertex(members[i]).HasNeighbor(members[j]) {
						t.Fatalf("seed %d: %q is not a clique", seed, rec)
					}
				}
			}
		}
	}
}

func TestQuasiCliqueSatisfiesGamma(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := randomGraph(seed, 20, 90)
		qc := NewQuasiClique(0.6, 4)
		for _, rec := range RefQuasiCliques(g, qc) {
			members := parseRecordIDs(t, rec)
			need := int(math.Ceil(0.6 * float64(len(members)-1)))
			for _, m := range members {
				conn := 0
				for _, o := range members {
					if o != m && g.Vertex(m).HasNeighbor(o) {
						conn++
					}
				}
				if conn < need {
					t.Fatalf("seed %d: member %d has %d < %d internal edges in %q",
						seed, m, conn, need, rec)
				}
			}
		}
	}
}

func TestQuasiCliqueFindsPlantedClique(t *testing.T) {
	// A planted K6 must be discovered at γ=0.8.
	g := graph.New(20)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			g.AddEdge(graph.VertexID(i), graph.VertexID(j))
		}
	}
	for i := 6; i < 18; i++ {
		g.AddEdge(graph.VertexID(i), graph.VertexID(i-6))
	}
	g.Freeze()
	out := RefQuasiCliques(g, NewQuasiClique(0.8, 5))
	found := false
	for _, rec := range out {
		if strings.Contains(rec, "0 1 2 3 4 5") {
			found = true
		}
	}
	if !found {
		t.Fatalf("planted K6 not found: %v", out)
	}
}

func parseRecordIDs(t *testing.T, rec string) []graph.VertexID {
	t.Helper()
	colon := strings.Index(rec, ": ")
	if colon < 0 {
		t.Fatalf("bad record %q", rec)
	}
	var out []graph.VertexID
	for _, f := range strings.Fields(rec[colon+2:]) {
		var x int64
		if _, err := fmtSscan(f, &x); err != nil {
			t.Fatalf("bad id %q in %q", f, rec)
		}
		out = append(out, graph.VertexID(x))
	}
	return out
}

func fmtSscan(s string, x *int64) (int, error) {
	var v int64
	neg := false
	i := 0
	if i < len(s) && s[i] == '-' {
		neg = true
		i++
	}
	for ; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, errBadInt
		}
		v = v*10 + int64(s[i]-'0')
	}
	if neg {
		v = -v
	}
	*x = v
	return 1, nil
}

var errBadInt = errString("bad int")

type errString string

func (e errString) Error() string { return string(e) }

// Property: open wedge counts are never negative and census components
// are consistent with degree sums for arbitrary graphs.
func TestQuickCensusInvariants(t *testing.T) {
	f := func(edges []uint8) bool {
		g := graph.New(12)
		for i := 0; i < 12; i++ {
			g.AddVertex(graph.VertexID(i))
		}
		for i := 0; i+1 < len(edges); i += 2 {
			g.AddEdge(graph.VertexID(edges[i]%12), graph.VertexID(edges[i+1]%12))
		}
		g.Freeze()
		c := RefCensus(g)
		if c.OpenWedges < 0 || c.Triangles < 0 {
			return false
		}
		var wedges int64
		g.ForEach(func(v *graph.Vertex) bool {
			d := int64(v.Degree())
			wedges += d * (d - 1) / 2
			return true
		})
		return c.OpenWedges+3*c.Triangles == wedges
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: quasi-clique growth is deterministic (same inputs, same set).
func TestQuickQuasiCliqueDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 16, 60)
		qc := NewQuasiClique(0.7, 3)
		a := RefQuasiCliques(g, qc)
		b := RefQuasiCliques(g, qc)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCensusOnPreset(t *testing.T) {
	g := gen.MustBuild(gen.Skitter, 0.1)
	c := RefCensus(g)
	if c.Triangles == 0 || c.OpenWedges == 0 {
		t.Fatalf("degenerate census on skitter-s: %+v", c)
	}
}

func TestRefFreqSubgraphAgainstBruteForce(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := randomGraph(seed, 14, 40)
		gen.AssignLabels(g, 3, seed)
		got := RefFreqSubgraph(g)
		// Brute force: enumerate all center/endpoint-pair triples.
		want := PatternCounts{}
		g.ForEach(func(v *graph.Vertex) bool {
			for i := 0; i < len(v.Adj); i++ {
				for j := i + 1; j < len(v.Adj); j++ {
					a, b := g.Vertex(v.Adj[i]), g.Vertex(v.Adj[j])
					l1, l2 := a.Label, b.Label
					if l1 > l2 {
						l1, l2 = l2, l1
					}
					want[PatternKey{End1: l1, Center: v.Label, End2: l2}]++
				}
			}
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d patterns vs %d", seed, len(got), len(want))
		}
		for k, c := range want {
			if got[k] != c {
				t.Fatalf("seed %d: pattern %v: %d vs %d", seed, k, got[k], c)
			}
		}
	}
}

func TestFreqSubgraphTotalIsWedgeCount(t *testing.T) {
	// Σ pattern counts = number of wedges (every wedge has one pattern).
	g := randomGraph(3, 20, 80)
	gen.AssignLabels(g, 4, 3)
	var total int64
	for _, c := range RefFreqSubgraph(g) {
		total += c
	}
	census := RefCensus(g)
	if wedges := census.OpenWedges + 3*census.Triangles; total != wedges {
		t.Fatalf("pattern total %d != wedge count %d", total, wedges)
	}
}

func newTestWireWriter() *wire.Writer { return wire.NewWriter(64) }

func newTestWireReader(w *wire.Writer) *wire.Reader { return wire.NewReader(w.Bytes()) }

func TestPatternAggregatorCodec(t *testing.T) {
	agg := patternAggregator{}
	pc := PatternCounts{
		{End1: 1, Center: 2, End2: 3}: 10,
		{End1: 0, Center: 0, End2: 5}: 7,
	}
	w := newTestWireWriter()
	agg.Encode(w, pc)
	got := agg.Decode(newTestWireReader(w)).(PatternCounts)
	if len(got) != 2 || got[PatternKey{1, 2, 3}] != 10 || got[PatternKey{0, 0, 5}] != 7 {
		t.Fatalf("codec: %v", got)
	}
	merged := agg.Merge(pc, got).(PatternCounts)
	if merged[PatternKey{1, 2, 3}] != 20 {
		t.Fatalf("merge: %v", merged)
	}
	// Merge must not alias its inputs.
	merged[PatternKey{1, 2, 3}] = 999
	if pc[PatternKey{1, 2, 3}] != 10 {
		t.Fatal("merge aliased input map")
	}
}

func TestFreqSubgraphFrequentFilter(t *testing.T) {
	fsm := NewFreqSubgraph(5)
	out := fsm.Frequent(PatternCounts{
		{End1: 1, Center: 1, End2: 1}: 9,
		{End1: 0, Center: 1, End2: 2}: 4,
	})
	if len(out) != 1 || out[0] != "pattern 1-1-1 support=9" {
		t.Fatalf("frequent: %v", out)
	}
}
