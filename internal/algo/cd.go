package algo

import (
	"fmt"

	"gminer/internal/core"
	"gminer/internal/graph"
	"gminer/internal/wire"
)

// CommunityDetect implements CD (§8.1): find all communities — vertex
// sets that share common attributes and together form a dense subgraph —
// in an attributed graph. Following the paper, the dense-subgraph topology
// is mined with the branch-and-bound clique machinery of Tomita & Seki
// [33], and attribute coherence is enforced by a filtering condition on
// newly added vertex candidates: only neighbors whose attribute
// similarity to the seed reaches MinSim join the candidate set.
//
// Each vertex v seeds a task over P = {u ∈ Γ(v) : u > v, sim(u,v) ≥
// MinSim}; the task pulls P and finds the maximum clique of the induced
// subgraph. Communities of at least MinSize vertices are reported. The
// u > v ordering dedups: a community is reported by its smallest member.
type CommunityDetect struct {
	// MinSim is the attribute-similarity threshold for community
	// membership (fraction of equal attribute dimensions with the seed).
	MinSim float64
	// MinSize is the smallest community size to report (incl. the seed).
	MinSize int
}

// NewCommunityDetect returns CD with the given thresholds (defaults:
// MinSim 0.6, MinSize 4).
func NewCommunityDetect(minSim float64, minSize int) *CommunityDetect {
	if minSim <= 0 {
		minSim = 0.6
	}
	if minSize <= 0 {
		minSize = 4
	}
	return &CommunityDetect{MinSim: minSim, MinSize: minSize}
}

// Name implements core.Algorithm.
func (*CommunityDetect) Name() string { return "cd" }

// EncodeContext implements core.ContextCodec: the context is the seed's
// attribute vector, carried with the task so migrated tasks can still
// apply the similarity filter.
func (*CommunityDetect) EncodeContext(w *wire.Writer, ctx any) {
	attrs, _ := ctx.([]int32)
	w.Int32Slice(attrs)
}

// DecodeContext implements core.ContextCodec.
func (*CommunityDetect) DecodeContext(r *wire.Reader) any {
	return r.Int32Slice()
}

// Seed implements core.Algorithm.
func (a *CommunityDetect) Seed(v *graph.Vertex, spawn func(*core.Task)) {
	if len(v.Attrs) == 0 {
		return
	}
	var cands []graph.VertexID
	for _, u := range v.Adj {
		if u > v.ID {
			cands = append(cands, u)
		}
	}
	if len(cands)+1 < a.MinSize {
		return
	}
	t := &core.Task{Context: append([]int32(nil), v.Attrs...)}
	t.Subgraph.AddVertex(v.ID)
	t.Cands = cands
	spawn(t)
}

// Update implements core.Algorithm: round 1 filters the pulled candidates
// by attribute similarity to the seed (the CD filtering condition) and
// then searches the maximum clique among the survivors.
func (a *CommunityDetect) Update(t *core.Task, cands []*graph.Vertex, env core.Env) {
	seedID := t.Subgraph.Vertices()[0]
	seedAttrs, _ := t.Context.([]int32)
	// Attribute filter on newly added candidates.
	var keepIDs []graph.VertexID
	var keepObjs []*graph.Vertex
	for i, obj := range cands {
		if obj == nil || len(obj.Attrs) == 0 {
			continue
		}
		if seedAttrs != nil && attrSimilarity(seedAttrs, obj.Attrs) < a.MinSim {
			continue
		}
		keepIDs = append(keepIDs, t.Cands[i])
		keepObjs = append(keepObjs, obj)
	}
	if len(keepIDs)+1 < a.MinSize {
		return
	}
	cg := buildCliqueGraph(keepIDs, keepObjs)
	all := make([]int, len(keepIDs))
	for i := range all {
		all[i] = i
	}
	search := &maxCliqueSearch{g: cg, base: 1}
	best, members := search.run(all)
	if best >= a.MinSize && len(members) > 0 {
		community := []graph.VertexID{seedID}
		for _, i := range members {
			community = append(community, cg.ids[i])
		}
		env.Emit(fmt.Sprintf("community size=%d: %s", best, formatIDs(sortedIDs(community))))
	}
}
