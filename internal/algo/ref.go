package algo

import (
	"fmt"
	"sort"

	"gminer/internal/graph"
	"gminer/internal/kernels"
)

// This file holds optimized sequential implementations of the five
// applications. They serve two purposes: the "Single-thread"
// baseline of Table 1 and the COST comparison of Figure 7, and as
// independent correctness oracles for the distributed algorithms (every
// distributed result is cross-checked against these in tests).

// RefTriangles counts triangles sequentially.
func RefTriangles(g *graph.Graph) int64 {
	var count int64
	g.ForEach(func(v *graph.Vertex) bool {
		// For each u ∈ Γ(v), u > v: count common neighbors w > u.
		for _, u := range v.Adj {
			if u <= v.ID {
				continue
			}
			uv := g.Vertex(u)
			if uv == nil {
				continue
			}
			// Intersect the suffixes of both adjacency lists above u.
			count += int64(countCommonAbove(v.Adj, uv.Adj, u))
		}
		return true
	})
	return count
}

// countCommonAbove counts elements > floor present in both sorted lists
// (the kernel layer's suffix intersection).
func countCommonAbove(a, b []graph.VertexID, floor graph.VertexID) int {
	return kernels.CountAbove(a, b, floor)
}

// RefMaxClique returns the maximum clique size (0 for the empty graph, 1
// for an edgeless graph) using the same Tomita-style search the
// distributed MCF runs per seed, applied per vertex with the v < P
// ordering.
func RefMaxClique(g *graph.Graph) int {
	best := 0
	g.ForEach(func(v *graph.Vertex) bool {
		if best < 1 {
			best = 1
		}
		if len(v.Adj) > 0 && best < 2 {
			best = 2
		}
		var ids []graph.VertexID
		for _, u := range v.Adj {
			if u > v.ID {
				ids = append(ids, u)
			}
		}
		if 1+len(ids) <= best {
			return true
		}
		verts := make([]*graph.Vertex, len(ids))
		for i, id := range ids {
			verts[i] = g.Vertex(id)
		}
		cg := buildCliqueGraph(ids, verts)
		all := make([]int, len(ids))
		for i := range all {
			all[i] = i
		}
		search := &maxCliqueSearch{g: cg, base: 1, bound: func() int { return best }}
		if b, _ := search.run(all); b > best {
			best = b
		}
		return true
	})
	return best
}

// RefMatchCount counts tree-pattern homomorphisms with a bottom-up
// dynamic program over the whole graph:
//
//	h(p, v) = ∏_{c ∈ children(p)} Σ_{w ∈ Γ(v), label(w) = label(c)} h(c, w)
func RefMatchCount(g *graph.Graph, p *Pattern) int64 {
	// Process pattern nodes deepest-first.
	order := make([]int, 0, len(p.Labels))
	for d := p.Depth(); d >= 0; d-- {
		order = append(order, p.Levels()[d]...)
	}
	h := make([]map[graph.VertexID]int64, len(p.Labels))
	for _, pn := range order {
		h[pn] = make(map[graph.VertexID]int64)
		g.ForEach(func(v *graph.Vertex) bool {
			if v.Label != p.Labels[pn] {
				return true
			}
			var out int64 = 1
			for _, c := range p.Children(pn) {
				var sum int64
				for _, w := range v.Adj {
					if cnt, ok := h[c][w]; ok {
						sum += cnt
					}
				}
				out *= sum
				if out == 0 {
					break
				}
			}
			if out > 0 {
				h[pn][v.ID] = out
			}
			return true
		})
	}
	var total int64
	for _, cnt := range h[0] {
		total += cnt
	}
	return total
}

// RefCommunities runs the CD logic sequentially and returns the emitted
// records (sorted), mirroring CommunityDetect exactly.
func RefCommunities(g *graph.Graph, a *CommunityDetect) []string {
	var out []string
	g.ForEach(func(v *graph.Vertex) bool {
		if len(v.Attrs) == 0 {
			return true
		}
		var cands []graph.VertexID
		for _, u := range v.Adj {
			if u > v.ID {
				cands = append(cands, u)
			}
		}
		if len(cands)+1 < a.MinSize {
			return true
		}
		var keepIDs []graph.VertexID
		var keepObjs []*graph.Vertex
		for _, id := range cands {
			obj := g.Vertex(id)
			if obj == nil || len(obj.Attrs) == 0 {
				continue
			}
			if attrSimilarity(v.Attrs, obj.Attrs) < a.MinSim {
				continue
			}
			keepIDs = append(keepIDs, id)
			keepObjs = append(keepObjs, obj)
		}
		if len(keepIDs)+1 < a.MinSize {
			return true
		}
		cg := buildCliqueGraph(keepIDs, keepObjs)
		all := make([]int, len(keepIDs))
		for i := range all {
			all[i] = i
		}
		search := &maxCliqueSearch{g: cg, base: 1}
		best, members := search.run(all)
		if best >= a.MinSize && len(members) > 0 {
			community := []graph.VertexID{v.ID}
			for _, i := range members {
				community = append(community, cg.ids[i])
			}
			out = append(out, fmt.Sprintf("community size=%d: %s", best, formatIDs(sortedIDs(community))))
		}
		return true
	})
	sort.Strings(out)
	return out
}

// RefClusters runs the GC growth sequentially from every focus seed with
// identical batch semantics to GraphCluster and returns the emitted
// records (sorted).
func RefClusters(g *graph.Graph, a *GraphCluster) []string {
	var out []string
	g.ForEach(func(v *graph.Vertex) bool {
		if !a.focused(v.Attrs) {
			return true
		}
		members := []graph.VertexID{v.ID}
		memberSet := map[graph.VertexID]bool{v.ID: true}
		rejected := map[graph.VertexID]bool{}
		frontier := append([]graph.VertexID(nil), v.Adj...)
		for round := 1; round <= a.MaxRounds; round++ {
			var joined []*graph.Vertex
			for _, id := range frontier {
				if memberSet[id] || rejected[id] {
					continue
				}
				obj := g.Vertex(id)
				if obj == nil {
					continue
				}
				conn := float64(intersectSorted(obj.Adj, members)) / float64(len(members))
				if a.focused(obj.Attrs) && conn >= a.MinConn {
					joined = append(joined, obj)
				} else {
					rejected[id] = true
				}
			}
			if len(joined) == 0 {
				break
			}
			nextSet := map[graph.VertexID]bool{}
			for _, obj := range joined {
				members = insertSorted(members, obj.ID)
				memberSet[obj.ID] = true
				for _, nb := range obj.Adj {
					nextSet[nb] = true
				}
			}
			frontier = frontier[:0]
			for id := range nextSet {
				if !memberSet[id] && !rejected[id] {
					frontier = append(frontier, id)
				}
			}
			if len(frontier) == 0 {
				break
			}
			sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
		}
		if len(members) >= a.MinSize && members[0] == v.ID {
			out = append(out, fmt.Sprintf("cluster size=%d: %s", len(members), formatIDs(members)))
		}
		return true
	})
	sort.Strings(out)
	return out
}
