package algo

import (
	"sort"

	"gminer/internal/core"
	"gminer/internal/graph"
)

// SeqRun executes an Algorithm sequentially over the whole graph with
// direct memory access — no partitions, no pulls, no queues. This is the
// "optimized single-threaded implementation" baseline of Table 1 and the
// COST comparison (Figure 7) for algorithms whose reference oracle uses a
// different algorithmic strategy (e.g. GM's bottom-up dynamic program):
// COST must compare the system against a single-threaded version of the
// *same* computation, or it measures the algorithm, not the system.
type SeqResult struct {
	Records   []string
	AggGlobal any
	Tasks     int64
}

// SeqRun runs algoImpl to completion over g.
func SeqRun(g *graph.Graph, algoImpl core.Algorithm) *SeqResult {
	env := &seqEnv{g: g}
	if ap, ok := algoImpl.(core.AggregatorProvider); ok {
		env.agg = ap.Aggregator()
		env.partial = env.agg.Zero()
	}
	var queue []*core.Task
	spawn := func(t *core.Task) { queue = append(queue, t) }
	g.ForEach(func(v *graph.Vertex) bool {
		algoImpl.Seed(v, spawn)
		return true
	})
	var done int64
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		for {
			if t.Round == 0 {
				t.Round = 1
			}
			cands := make([]*graph.Vertex, len(t.Cands))
			for i, id := range t.Cands {
				cands[i] = g.Vertex(id)
			}
			algoImpl.Update(t, cands, env)
			next, children := t.TakeTransition()
			queue = append(queue, children...)
			if next == nil {
				done++
				break
			}
			t.Advance(next)
		}
	}
	sort.Strings(env.records)
	return &SeqResult{Records: env.records, AggGlobal: env.partial, Tasks: done}
}

// seqEnv is the trivial single-threaded core.Env.
type seqEnv struct {
	g       *graph.Graph
	agg     core.Aggregator
	partial any
	records []string
}

// WorkerID implements core.Env.
func (*seqEnv) WorkerID() int { return 0 }

// NumWorkers implements core.Env.
func (*seqEnv) NumWorkers() int { return 1 }

// Emit implements core.Env.
func (e *seqEnv) Emit(record string) { e.records = append(e.records, record) }

// AggUpdate implements core.Env.
func (e *seqEnv) AggUpdate(v any) {
	if e.agg != nil {
		e.partial = e.agg.Add(e.partial, v)
	}
}

// AggGlobal implements core.Env.
func (e *seqEnv) AggGlobal() any { return e.partial }

// LocalVertex implements core.Env.
func (e *seqEnv) LocalVertex(id graph.VertexID) *graph.Vertex { return e.g.Vertex(id) }
