package algo

import (
	"gminer/internal/core"
	"gminer/internal/graph"
	"gminer/internal/wire"
)

// GraphletCensus implements size-3 graphlet counting, the "size-k
// graphlets [2]" member of the paper's subgraph/graphlet enumeration
// category (§4.1): it counts the two connected 3-vertex graphlets —
// triangles and open wedges (paths of length two) — in one pass.
//
// Wedges centered at v are C(deg(v), 2) and need no communication;
// triangles use the same one-pull-round scheme as TC. Each triangle
// closes three wedges, so open wedges = wedges − 3·triangles.
type GraphletCensus struct {
	core.NoContext
}

// NewGraphletCensus returns the GL application.
func NewGraphletCensus() *GraphletCensus { return &GraphletCensus{} }

// Name implements core.Algorithm.
func (*GraphletCensus) Name() string { return "gl3" }

// Census is the aggregate result: connected 3-vertex graphlet counts.
type Census struct {
	Triangles  int64
	OpenWedges int64
}

// censusAggregator sums Census values; OpenWedges carries raw wedge
// counts during the run and is fixed up by Finalize.
type censusAggregator struct{}

// Aggregator implements core.AggregatorProvider.
func (*GraphletCensus) Aggregator() core.Aggregator { return censusAggregator{} }

// Zero implements core.Aggregator.
func (censusAggregator) Zero() any { return Census{} }

// Add implements core.Aggregator.
func (censusAggregator) Add(p, v any) any {
	a, b := p.(Census), v.(Census)
	return Census{Triangles: a.Triangles + b.Triangles, OpenWedges: a.OpenWedges + b.OpenWedges}
}

// Merge implements core.Aggregator.
func (c censusAggregator) Merge(a, b any) any { return c.Add(a, b) }

// Encode implements core.Aggregator.
func (censusAggregator) Encode(w *wire.Writer, v any) {
	cv := v.(Census)
	w.Varint(cv.Triangles)
	w.Varint(cv.OpenWedges)
}

// Decode implements core.Aggregator.
func (censusAggregator) Decode(r *wire.Reader) any {
	return Census{Triangles: r.Varint(), OpenWedges: r.Varint()}
}

// Finalize converts the raw aggregate (triangles, total wedges) into the
// census (triangles, open wedges).
func Finalize(raw Census) Census {
	return Census{
		Triangles:  raw.Triangles,
		OpenWedges: raw.OpenWedges - 3*raw.Triangles,
	}
}

// Seed implements core.Algorithm.
func (*GraphletCensus) Seed(v *graph.Vertex, spawn func(*core.Task)) {
	deg := int64(v.Degree())
	if deg < 2 {
		return
	}
	t := &core.Task{}
	t.Subgraph.AddVertex(v.ID)
	// Stash the wedge count: it is derivable from the seed alone.
	t.Context = Census{OpenWedges: deg * (deg - 1) / 2}
	var cands []graph.VertexID
	for _, u := range v.Adj {
		if u > v.ID {
			cands = append(cands, u)
		}
	}
	t.Cands = cands
	spawn(t)
}

// Update implements core.Algorithm.
func (*GraphletCensus) Update(t *core.Task, cands []*graph.Vertex, env core.Env) {
	out, _ := t.Context.(Census)
	set := t.Cands
	for i, u := range cands {
		if u == nil {
			continue
		}
		uid := t.Cands[i]
		for _, w := range u.Adj {
			if w > uid && containsSorted(set, w) {
				out.Triangles++
			}
		}
	}
	if out.Triangles > 0 || out.OpenWedges > 0 {
		env.AggUpdate(out)
	}
}

// EncodeContext implements core.ContextCodec.
func (*GraphletCensus) EncodeContext(w *wire.Writer, ctx any) {
	c, _ := ctx.(Census)
	w.Varint(c.Triangles)
	w.Varint(c.OpenWedges)
}

// DecodeContext implements core.ContextCodec.
func (*GraphletCensus) DecodeContext(r *wire.Reader) any {
	return Census{Triangles: r.Varint(), OpenWedges: r.Varint()}
}

// RefCensus is the sequential oracle.
func RefCensus(g *graph.Graph) Census {
	var wedges int64
	g.ForEach(func(v *graph.Vertex) bool {
		d := int64(v.Degree())
		wedges += d * (d - 1) / 2
		return true
	})
	return Finalize(Census{Triangles: RefTriangles(g), OpenWedges: wedges})
}
