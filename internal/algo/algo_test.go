package algo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gminer/internal/gen"
	"gminer/internal/graph"
)

// bruteTriangles enumerates all vertex triples — the independent oracle
// for RefTriangles.
func bruteTriangles(g *graph.Graph) int64 {
	ids := g.IDs()
	var count int64
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if !g.Vertex(ids[i]).HasNeighbor(ids[j]) {
				continue
			}
			for k := j + 1; k < len(ids); k++ {
				if g.Vertex(ids[i]).HasNeighbor(ids[k]) && g.Vertex(ids[j]).HasNeighbor(ids[k]) {
					count++
				}
			}
		}
	}
	return count
}

// bruteMaxClique checks every vertex subset (tiny graphs only).
func bruteMaxClique(g *graph.Graph) int {
	ids := g.IDs()
	n := len(ids)
	best := 0
	if n == 0 {
		return 0
	}
	for mask := 1; mask < (1 << n); mask++ {
		var members []graph.VertexID
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				members = append(members, ids[i])
			}
		}
		ok := true
		for i := 0; i < len(members) && ok; i++ {
			for j := i + 1; j < len(members); j++ {
				if !g.Vertex(members[i]).HasNeighbor(members[j]) {
					ok = false
					break
				}
			}
		}
		if ok && len(members) > best {
			best = len(members)
		}
	}
	return best
}

// bruteMatchCount enumerates homomorphisms recursively.
func bruteMatchCount(g *graph.Graph, p *Pattern) int64 {
	var count int64
	assign := make([]graph.VertexID, len(p.Labels))
	var rec func(node int)
	rec = func(node int) {
		if node == len(p.Labels) {
			count++
			return
		}
		g.ForEach(func(v *graph.Vertex) bool {
			if v.Label != p.Labels[node] {
				return true
			}
			if par := p.Parent[node]; par >= 0 && !v.HasNeighbor(assign[par]) {
				return true
			}
			assign[node] = v.ID
			rec(node + 1)
			return true
		})
	}
	rec(0)
	return count
}

func randomGraph(seed int64, n, m int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddVertex(graph.VertexID(i))
	}
	for e := 0; e < m; e++ {
		g.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)))
	}
	g.Freeze()
	return g
}

func TestRefTrianglesAgainstBruteForce(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := randomGraph(seed, 12, 30)
		if got, want := RefTriangles(g), bruteTriangles(g); got != want {
			t.Fatalf("seed %d: got %d want %d", seed, got, want)
		}
	}
}

func TestRefMaxCliqueAgainstBruteForce(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := randomGraph(seed, 12, 40)
		if got, want := RefMaxClique(g), bruteMaxClique(g); got != want {
			t.Fatalf("seed %d: got %d want %d", seed, got, want)
		}
	}
}

func TestRefMatchCountAgainstBruteForce(t *testing.T) {
	p := FigurePattern()
	for seed := int64(0); seed < 15; seed++ {
		g := randomGraph(seed, 14, 40)
		gen.AssignLabels(g, 5, seed)
		if got, want := RefMatchCount(g, p), bruteMatchCount(g, p); got != want {
			t.Fatalf("seed %d: got %d want %d", seed, got, want)
		}
	}
}

func TestRefMatchCountPathPattern(t *testing.T) {
	p := PathPattern(0, 1, 0)
	for seed := int64(20); seed < 30; seed++ {
		g := randomGraph(seed, 10, 25)
		gen.AssignLabels(g, 3, seed)
		if got, want := RefMatchCount(g, p), bruteMatchCount(g, p); got != want {
			t.Fatalf("seed %d: got %d want %d", seed, got, want)
		}
	}
}

func TestRefMaxCliqueEdgeCases(t *testing.T) {
	empty := graph.New(0)
	empty.Freeze()
	if RefMaxClique(empty) != 0 {
		t.Fatal("empty graph clique should be 0")
	}
	single := graph.New(1)
	single.AddVertex(1)
	single.Freeze()
	if RefMaxClique(single) != 1 {
		t.Fatal("single vertex clique should be 1")
	}
	edge := graph.New(2)
	edge.AddEdge(1, 2)
	edge.Freeze()
	if RefMaxClique(edge) != 2 {
		t.Fatal("single edge clique should be 2")
	}
}

func TestSearchMaxCliqueExported(t *testing.T) {
	// K4 with a pendant.
	g := graph.New(5)
	for i := 1; i <= 4; i++ {
		for j := i + 1; j <= 4; j++ {
			g.AddEdge(graph.VertexID(i), graph.VertexID(j))
		}
	}
	g.AddEdge(4, 5)
	g.Freeze()
	ids := []graph.VertexID{2, 3, 4, 5}
	verts := make([]*graph.Vertex, len(ids))
	for i, id := range ids {
		verts[i] = g.Vertex(id)
	}
	best, members := SearchMaxClique(ids, verts, 1, nil)
	if best != 4 || len(members) != 3 {
		t.Fatalf("best=%d members=%v", best, members)
	}
}

func TestPatternValidation(t *testing.T) {
	if _, err := NewPattern(nil, nil); err == nil {
		t.Fatal("empty pattern accepted")
	}
	if _, err := NewPattern([]int32{0}, []int{0}); err == nil {
		t.Fatal("non-root node 0 accepted")
	}
	if _, err := NewPattern([]int32{0, 1}, []int{-1, 5}); err == nil {
		t.Fatal("forward parent accepted")
	}
	p := FigurePattern()
	if p.Depth() != 2 || len(p.Levels()[0]) != 1 || len(p.Levels()[1]) != 2 {
		t.Fatalf("figure pattern structure wrong: %+v", p.Levels())
	}
	if len(p.Children(2)) != 2 {
		t.Fatalf("children of c: %v", p.Children(2))
	}
}

func TestSimilarityHelpers(t *testing.T) {
	if s := attrSimilarity([]int32{1, 2, 3}, []int32{1, 2, 4}); s < 0.66 || s > 0.67 {
		t.Fatalf("sim=%f", s)
	}
	if attrSimilarity(nil, []int32{1}) != 0 {
		t.Fatal("empty sim should be 0")
	}
	w := weightedSimilarity([]int32{1, 2}, []int32{1, 9}, []float64{1, 0})
	if w != 1.0 {
		t.Fatalf("weighted sim=%f (zero-weight dim must not count)", w)
	}
}

func TestIntersectSorted(t *testing.T) {
	a := []graph.VertexID{1, 3, 5, 7}
	b := []graph.VertexID{2, 3, 5, 8}
	if intersectSorted(a, b) != 2 {
		t.Fatal("intersect wrong")
	}
	if intersectSorted(a, nil) != 0 {
		t.Fatal("empty intersect")
	}
}

func TestRefCommunitiesFindPlanted(t *testing.T) {
	g, _ := gen.Community(gen.CommunityConfig{
		Communities: 8, MinSize: 6, MaxSize: 8, PIn: 0.9, Bridges: 20, Seed: 3,
	})
	out := RefCommunities(g, NewCommunityDetect(0.6, 4))
	if len(out) < 4 {
		t.Fatalf("found only %d communities in a strongly planted graph", len(out))
	}
}

func TestRefClustersFindFocused(t *testing.T) {
	g, _ := gen.Community(gen.CommunityConfig{
		Communities: 8, MinSize: 8, MaxSize: 10, PIn: 0.9, Bridges: 10, Seed: 5,
	})
	ex := g.VertexAt(0).Attrs
	out := RefClusters(g, NewGraphCluster([][]int32{ex}, 0.8, 0.3, 3))
	if len(out) == 0 {
		t.Fatal("no focused clusters found")
	}
}

// Property: triangle reference matches brute force on arbitrary small
// graphs.
func TestQuickTriangles(t *testing.T) {
	f := func(edges []uint8) bool {
		g := graph.New(10)
		for i := 0; i < 10; i++ {
			g.AddVertex(graph.VertexID(i))
		}
		for i := 0; i+1 < len(edges); i += 2 {
			g.AddEdge(graph.VertexID(edges[i]%10), graph.VertexID(edges[i+1]%10))
		}
		g.Freeze()
		return RefTriangles(g) == bruteTriangles(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: clique search matches brute force on arbitrary small graphs.
func TestQuickMaxClique(t *testing.T) {
	f := func(edges []uint8) bool {
		g := graph.New(9)
		for i := 0; i < 9; i++ {
			g.AddVertex(graph.VertexID(i))
		}
		for i := 0; i+1 < len(edges); i += 2 {
			g.AddEdge(graph.VertexID(edges[i]%9), graph.VertexID(edges[i+1]%9))
		}
		g.Freeze()
		return RefMaxClique(g) == bruteMaxClique(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: GM DP matches brute-force homomorphism counting for random
// patterns.
func TestQuickMatchCount(t *testing.T) {
	f := func(seed int64, patSeed uint8) bool {
		rng := rand.New(rand.NewSource(int64(patSeed)))
		// Random tree pattern with 2..5 nodes, labels in [0,3).
		n := 2 + rng.Intn(4)
		labels := make([]int32, n)
		parent := make([]int, n)
		parent[0] = -1
		for i := 0; i < n; i++ {
			labels[i] = rng.Int31n(3)
			if i > 0 {
				parent[i] = rng.Intn(i)
			}
		}
		// NewPattern requires BFS order (parent depth increasing) — random
		// parents of earlier nodes satisfy parent[i] < i, which is enough.
		p, err := NewPattern(labels, parent)
		if err != nil {
			return false
		}
		g := randomGraph(seed, 10, 22)
		gen.AssignLabels(g, 3, seed)
		return RefMatchCount(g, p) == bruteMatchCount(g, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
