package algo

import (
	"fmt"
	"sort"

	"gminer/internal/core"
	"gminer/internal/graph"
	"gminer/internal/wire"
)

// GraphCluster implements GC (§8.1) following the FocusCO algorithm of
// Perozzi et al. [21]: group *focused clusters* from an attributed graph
// based on user preference. The user supplies exemplar attribute vectors;
// dimensions on which the exemplars agree receive high weight (the
// inferred focus attributes). Vertices similar to the exemplar under the
// weighted measure become focus seeds, and each seed grows a cluster by
// iteratively absorbing neighbors that are (a) attribute-similar and
// (b) well connected to the current cluster — "an expensive subgraph
// dynamic update until convergence".
//
// A cluster converges when a round adds no vertex; it is emitted if it
// reaches MinSize, by the smallest focus member only (dedup).
type GraphCluster struct {
	// Exemplars are the user-preference attribute vectors.
	Exemplars [][]int32
	// MinSim is the weighted-similarity threshold for focus membership.
	MinSim float64
	// MinConn is the minimum fraction of the current cluster a joining
	// vertex must neighbor.
	MinConn float64
	// MinSize is the smallest cluster to report.
	MinSize int
	// MaxRounds caps the growth iterations (convergence usually occurs
	// far earlier).
	MaxRounds int

	weights  []float64
	exemplar []int32
}

// NewGraphCluster returns GC configured with exemplars (at least one).
func NewGraphCluster(exemplars [][]int32, minSim, minConn float64, minSize int) *GraphCluster {
	g := &GraphCluster{
		Exemplars: exemplars,
		MinSim:    minSim,
		MinConn:   minConn,
		MinSize:   minSize,
		MaxRounds: 32,
	}
	if g.MinSim <= 0 {
		g.MinSim = 0.8
	}
	if g.MinConn <= 0 {
		g.MinConn = 0.34
	}
	if g.MinSize <= 0 {
		g.MinSize = 4
	}
	g.inferWeights()
	return g
}

// inferWeights learns the focus-attribute weights from the exemplars:
// dimensions where the exemplars agree get weight 1, others get weight
// proportional to agreement (FocusCO learns a Mahalanobis weighting; with
// categorical attributes, agreement frequency is the analogue).
func (g *GraphCluster) inferWeights() {
	if len(g.Exemplars) == 0 {
		return
	}
	dim := len(g.Exemplars[0])
	g.exemplar = append([]int32(nil), g.Exemplars[0]...)
	g.weights = make([]float64, dim)
	for d := 0; d < dim; d++ {
		agree := 0
		for _, ex := range g.Exemplars {
			if d < len(ex) && ex[d] == g.exemplar[d] {
				agree++
			}
		}
		g.weights[d] = float64(agree) / float64(len(g.Exemplars))
	}
}

// Name implements core.Algorithm.
func (*GraphCluster) Name() string { return "gc" }

// focused reports whether attrs passes the weighted focus filter.
func (g *GraphCluster) focused(attrs []int32) bool {
	if len(attrs) == 0 || g.exemplar == nil {
		return false
	}
	return weightedSimilarity(attrs, g.exemplar, g.weights) >= g.MinSim
}

// gcContext carries the growth frontier and bookkeeping between rounds.
type gcContext struct {
	// seed is the vertex this task grew from (dedup key).
	seed graph.VertexID
	// rejected: vertices already evaluated and declined (skip forever).
	rejected []graph.VertexID // sorted
}

// EncodeContext implements core.ContextCodec.
func (*GraphCluster) EncodeContext(w *wire.Writer, ctxAny any) {
	ctx, ok := ctxAny.(*gcContext)
	if !ok {
		wire.EncodeIDs(w, nil)
		w.Varint(-1)
		return
	}
	wire.EncodeIDs(w, ctx.rejected)
	w.Varint(int64(ctx.seed))
}

// DecodeContext implements core.ContextCodec.
func (*GraphCluster) DecodeContext(r *wire.Reader) any {
	ctx := &gcContext{}
	ctx.rejected = wire.DecodeIDs(r)
	ctx.seed = graph.VertexID(r.Varint())
	return ctx
}

// Seed implements core.Algorithm: focus vertices start clusters.
func (g *GraphCluster) Seed(v *graph.Vertex, spawn func(*core.Task)) {
	if !g.focused(v.Attrs) {
		return
	}
	t := &core.Task{Context: &gcContext{seed: v.ID}}
	t.Subgraph.AddVertex(v.ID)
	t.Cands = append([]graph.VertexID(nil), v.Adj...)
	spawn(t)
}

// Update implements core.Algorithm: one growth iteration. Candidates that
// pass the focus filter and the connectivity test join the cluster; their
// unseen neighbors become the next frontier. No joins → converged.
func (g *GraphCluster) Update(t *core.Task, cands []*graph.Vertex, env core.Env) {
	ctx, ok := t.Context.(*gcContext)
	if !ok {
		return
	}
	members := t.Subgraph.Vertices()
	var joined []*graph.Vertex
	for i, obj := range cands {
		if obj == nil {
			continue
		}
		id := t.Cands[i]
		if t.Subgraph.Has(id) || containsSorted(ctx.rejected, id) {
			continue
		}
		conn := float64(intersectSorted(obj.Adj, members)) / float64(len(members))
		if g.focused(obj.Attrs) && conn >= g.MinConn {
			joined = append(joined, obj)
		} else {
			ctx.rejected = insertSorted(ctx.rejected, id)
		}
	}
	if len(joined) == 0 {
		g.report(t, ctx, env)
		return
	}
	next := make(map[graph.VertexID]struct{})
	for _, obj := range joined {
		t.Subgraph.AddVertex(obj.ID)
		for _, nb := range obj.Adj {
			next[nb] = struct{}{}
		}
	}
	if t.Round >= g.MaxRounds {
		g.report(t, ctx, env)
		return
	}
	var ids []graph.VertexID
	for id := range next {
		if !t.Subgraph.Has(id) && !containsSorted(ctx.rejected, id) {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		g.report(t, ctx, env)
		return
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	t.Pull(ids...)
}

// report emits the converged cluster if large enough. Deduplication: a
// cluster is reported only by the task whose seed is the cluster's
// smallest member (every member is a focus vertex and thus seeded a
// task). Seeds whose growth converged onto a set they do not lead stay
// silent, so each emitted record is unique.
func (g *GraphCluster) report(t *core.Task, ctx *gcContext, env core.Env) {
	if t.Subgraph.Len() < g.MinSize {
		return
	}
	members := t.Subgraph.Vertices()
	if members[0] != ctx.seed {
		return
	}
	env.Emit(fmt.Sprintf("cluster size=%d: %s", len(members), formatIDs(members)))
}

func insertSorted(ids []graph.VertexID, x graph.VertexID) []graph.VertexID {
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= x })
	if i < len(ids) && ids[i] == x {
		return ids
	}
	ids = append(ids, 0)
	copy(ids[i+1:], ids[i:])
	ids[i] = x
	return ids
}
