package algo

import (
	"reflect"
	"testing"

	"gminer/internal/gen"
	"gminer/internal/graph"
	"gminer/internal/kernels"
)

// This file pins the kernel rewiring of the algo hot loops: the three
// formerly hand-rolled intersection loops (GM parent matching, TC
// counting, MCF split) now run on internal/kernels, and the compiled-plan
// paths must produce results identical to the generic scalar paths — with
// exact counts pinned so a silent semantic drift in either path fails
// loudly rather than both drifting together.

// pinnedGraph is the fixed workload: ER graph, 200 vertices, 1400 edges,
// seed 7, labels cycling over {0..3}.
func pinnedGraph(t testing.TB) *graph.Graph {
	t.Helper()
	src := gen.ErdosRenyi(200, 1400, 7)
	// The generator freezes its output; rebuild with labels attached.
	g := graph.New(src.NumVertices())
	src.ForEach(func(v *graph.Vertex) bool {
		g.AddVertex(v.ID)
		g.SetLabel(v.ID, int32(v.ID%4))
		return true
	})
	src.ForEach(func(v *graph.Vertex) bool {
		for _, u := range v.Adj {
			if u > v.ID {
				g.AddEdge(v.ID, u)
			}
		}
		return true
	})
	g.Freeze()
	return g
}

func TestTCKernelVsGenericPinned(t *testing.T) {
	g := pinnedGraph(t)
	want := RefTriangles(g)
	if want == 0 {
		t.Fatalf("pinned graph has no triangles; workload is degenerate")
	}

	genericTC := NewTriangleCount()
	genericTC.Generic = true
	genRes := SeqRun(g, genericTC)

	csr := kernels.MustBuild(g)
	planTC := NewTriangleCount()
	planTC.ConfigureKernels(csr, false)
	planRes := SeqRun(g, planTC)

	if genRes.AggGlobal.(int64) != want {
		t.Errorf("generic TC = %d, ref = %d", genRes.AggGlobal, want)
	}
	if planRes.AggGlobal.(int64) != want {
		t.Errorf("kernel TC = %d, ref = %d", planRes.AggGlobal, want)
	}
	if len(genRes.Records) != 0 || len(planRes.Records) != 0 {
		t.Errorf("TC emitted records: generic=%d plan=%d, want none", len(genRes.Records), len(planRes.Records))
	}
}

func TestGMKernelVsGenericPinned(t *testing.T) {
	g := pinnedGraph(t)
	for _, pat := range []struct {
		name string
		p    *Pattern
	}{
		{"figure", FigurePattern()},
		{"path3", PathPattern(0, 1, 2)},
		{"path4", PathPattern(1, 2, 3, 0)},
		{"star", MustPattern([]int32{0, 1, 1, 2}, []int{-1, 0, 0, 0})},
	} {
		want := RefMatchCount(g, pat.p)

		genericGM := NewGraphMatch(pat.p)
		genericGM.Generic = true
		genRes := SeqRun(g, genericGM)

		planGM := NewGraphMatch(pat.p)
		planGM.ConfigureKernels(nil, false)
		planRes := SeqRun(g, planGM)

		if genRes.AggGlobal.(int64) != want {
			t.Errorf("%s: generic GM = %d, ref = %d", pat.name, genRes.AggGlobal, want)
		}
		if planRes.AggGlobal.(int64) != want {
			t.Errorf("%s: plan GM = %d, ref = %d", pat.name, planRes.AggGlobal, want)
		}
		if !reflect.DeepEqual(genRes.Records, planRes.Records) {
			t.Errorf("%s: records differ between generic and plan paths", pat.name)
		}
	}
}

func TestMCFSplitKernelPinned(t *testing.T) {
	g := pinnedGraph(t)
	want := RefMaxClique(g)

	plain := NewMaxClique()
	plainRes := SeqRun(g, plain)
	split := NewMaxClique()
	split.SplitThreshold = 4
	splitRes := SeqRun(g, split)

	if plainRes.AggGlobal.(int) != want {
		t.Errorf("MCF = %d, ref = %d", plainRes.AggGlobal, want)
	}
	if splitRes.AggGlobal.(int) != want {
		t.Errorf("MCF with kernel split = %d, ref = %d", splitRes.AggGlobal, want)
	}
}

// TestTCDagSeedingTaskShape pins the structural effect of DAG seeding:
// candidate sets bounded by DAG out-degree, total candidate volume across
// seeds equal to the generic path's pair coverage guarantee (each edge
// appears in exactly one seed's candidate set).
func TestTCDagSeedingTaskShape(t *testing.T) {
	g := pinnedGraph(t)
	csr := kernels.MustBuild(g)

	var genericEdges, dagEdges int64
	g.ForEach(func(v *graph.Vertex) bool {
		dagEdges += int64(len(csr.AppendDagNeighborIDs(nil, v.ID)))
		for _, u := range v.Adj {
			if u > v.ID {
				genericEdges++
			}
		}
		return true
	})
	if genericEdges != dagEdges {
		t.Errorf("seeding covers %d edges generically but %d via DAG; each edge must appear exactly once", genericEdges, dagEdges)
	}
	if genericEdges != g.NumEdges() {
		t.Errorf("generic seeding covers %d of %d edges", genericEdges, g.NumEdges())
	}
}
