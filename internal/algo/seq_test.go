package algo

import (
	"testing"

	"gminer/internal/gen"
)

func TestSeqRunTCMatchesReference(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 8, Edges: 2500, Seed: 201})
	res := SeqRun(g, NewTriangleCount())
	if got, want := res.AggGlobal.(int64), RefTriangles(g); got != want {
		t.Fatalf("got %d want %d", got, want)
	}
	if res.Tasks == 0 {
		t.Fatal("no tasks executed")
	}
}

func TestSeqRunGMMatchesReference(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 7, Edges: 1500, Seed: 203})
	gen.AssignLabels(g, 5, 3)
	p := FigurePattern()
	res := SeqRun(g, NewGraphMatch(p))
	if got, want := res.AggGlobal.(int64), RefMatchCount(g, p); got != want {
		t.Fatalf("got %d want %d", got, want)
	}
}

func TestSeqRunMCFMatchesReference(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 7, Edges: 2200, Seed: 205})
	res := SeqRun(g, NewMaxClique())
	if got, want := res.AggGlobal.(int), RefMaxClique(g); got != want {
		t.Fatalf("got %d want %d", got, want)
	}
}

func TestSeqRunMultiRoundAlgorithm(t *testing.T) {
	// GC is multi-round and spawns pulls every round; the sequential
	// driver must run rounds to convergence.
	g, _ := gen.Community(gen.CommunityConfig{
		Communities: 10, MinSize: 6, MaxSize: 9, PIn: 0.8, Bridges: 60, Seed: 207,
	})
	gc := NewGraphCluster([][]int32{g.VertexAt(0).Attrs}, 0.8, 0.3, 3)
	res := SeqRun(g, gc)
	want := RefClusters(g, gc)
	if len(res.Records) != len(want) {
		t.Fatalf("got %d records want %d", len(res.Records), len(want))
	}
	for i := range want {
		if res.Records[i] != want[i] {
			t.Fatalf("record %d: %q vs %q", i, res.Records[i], want[i])
		}
	}
}

func TestSeqRunSpawnedChildren(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 7, Edges: 2200, Seed: 209})
	mc := NewMaxClique()
	mc.SplitThreshold = 8
	res := SeqRun(g, mc)
	if got, want := res.AggGlobal.(int), RefMaxClique(g); got != want {
		t.Fatalf("split seq: got %d want %d", got, want)
	}
}
