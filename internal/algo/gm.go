package algo

import (
	"sort"

	"gminer/internal/core"
	"gminer/internal/graph"
	"gminer/internal/kernels"
	"gminer/internal/plan"
	"gminer/internal/wire"
)

// GraphMatch implements GM (§8.1, Listing 2): count all occurrences
// (homomorphisms) of a rooted labeled tree pattern in the data graph,
// matched level by level exactly as in the paper's Figure 1 example. Each
// vertex whose label matches the pattern root seeds a task; round r pulls
// the frontier vertices matched at level r-1's neighborhoods and matches
// level r by label and adjacency; after the deepest level, the matched
// count is computed bottom-up and folded into a global sum aggregator.
//
// Matching is homomorphic (two pattern nodes may map to one data vertex),
// the standard semantics for label-tree matching; the sequential oracle
// RefMatchCount uses the same semantics.
type GraphMatch struct {
	P *Pattern
	// Generic forces the scalar HasNeighbor matching loop instead of the
	// compiled plan + intersection kernels (the differential baseline).
	Generic bool

	// plan is the compiled ModeHom execution plan: the level schedule the
	// kernel path walks. Matching stays in ID space (candidates may live on
	// remote partitions), so the CSR index is not needed — only the plan's
	// schedule and the set kernels.
	plan *plan.Plan
}

// NewGraphMatch returns GM for the given pattern (nil: Figure 1 pattern).
func NewGraphMatch(p *Pattern) *GraphMatch {
	if p == nil {
		p = FigurePattern()
	}
	a := &GraphMatch{P: p}
	// Oversize patterns (beyond plan.MaxTreeNodes) fall back to generic.
	a.plan, _ = plan.Compile(p.Labels, p.Parent)
	return a
}

// ConfigureKernels implements core.KernelConfigurable. GM ignores the CSR
// (matching runs in ID space against pulled candidates); the flag selects
// between the compiled-plan path and the generic baseline.
func (a *GraphMatch) ConfigureKernels(_ *kernels.CSR, generic bool) {
	a.Generic = a.Generic || generic
}

// Name implements core.Algorithm.
func (*GraphMatch) Name() string { return "gm" }

// Aggregator implements core.AggregatorProvider: the global count of
// matched patterns (the paper's sum aggregation over context.count).
func (*GraphMatch) Aggregator() core.Aggregator { return core.SumInt64Aggregator{} }

// gmContext is the task context: per pattern node, the matched data
// vertices, and per (pattern node, matched parent vertex), the matched
// child vertices — the "topology of the intermediate subgraph".
type gmContext struct {
	// matched[p] = sorted data vertices matched to pattern node p.
	matched map[int][]graph.VertexID
	// edges[p][v] = data vertices matched to p whose pattern parent
	// matched v (adjacency realized in the data graph).
	edges map[int]map[graph.VertexID][]graph.VertexID
}

func newGMContext() *gmContext {
	return &gmContext{
		matched: make(map[int][]graph.VertexID),
		edges:   make(map[int]map[graph.VertexID][]graph.VertexID),
	}
}

// Seed implements core.Algorithm.
func (a *GraphMatch) Seed(v *graph.Vertex, spawn func(*core.Task)) {
	if v.Label != a.P.Labels[0] {
		return
	}
	ctx := newGMContext()
	ctx.matched[0] = []graph.VertexID{v.ID}
	t := &core.Task{Context: ctx}
	t.Subgraph.AddVertex(v.ID)
	if a.P.Depth() == 0 {
		// Single-node pattern: count 1 per matching vertex at update time.
		spawn(t)
		return
	}
	t.Cands = append([]graph.VertexID(nil), v.Adj...)
	spawn(t)
}

// Update implements core.Algorithm: match pattern level t.Round against
// the pulled candidate objects.
func (a *GraphMatch) Update(t *core.Task, cands []*graph.Vertex, env core.Env) {
	ctx, ok := t.Context.(*gmContext)
	if !ok {
		return
	}
	if a.P.Depth() == 0 {
		env.AggUpdate(int64(1))
		return
	}
	level := t.Round // rounds start at 1 = pattern depth 1
	if level > a.P.Depth() {
		return
	}
	// Match every pattern node at this level: label match + adjacency to
	// a matched parent vertex. The compiled-plan path intersects the
	// candidate's adjacency with the matched-parent set through the
	// strategy-selected kernels; the generic path probes parent by parent.
	// Both walk parents in ascending ID order, so the recorded context is
	// byte-identical between paths.
	usePlan := a.plan != nil && !a.Generic
	var buf []graph.VertexID
	for _, st := range a.levelSteps(level) {
		p := st.Node
		parents := ctx.matched[st.Parent]
		for i, obj := range cands {
			if obj == nil || obj.Label != st.Label {
				continue
			}
			w := t.Cands[i]
			if usePlan {
				buf = kernels.Intersect(buf[:0], obj.Adj, parents)
				for _, pv := range buf {
					if ctx.edges[p] == nil {
						ctx.edges[p] = make(map[graph.VertexID][]graph.VertexID)
					}
					ctx.edges[p][pv] = append(ctx.edges[p][pv], w)
					ctx.matched[p] = appendUnique(ctx.matched[p], w)
				}
				continue
			}
			for _, pv := range parents {
				if obj.HasNeighbor(pv) {
					if ctx.edges[p] == nil {
						ctx.edges[p] = make(map[graph.VertexID][]graph.VertexID)
					}
					// ctx.edges IS the task's intermediate-subgraph
					// topology (§4.2); mirroring it into t.Subgraph would
					// double the bookkeeping on the hottest path.
					ctx.edges[p][pv] = append(ctx.edges[p][pv], w)
					ctx.matched[p] = appendUnique(ctx.matched[p], w)
				}
			}
		}
		if len(ctx.matched[p]) == 0 {
			return // no match is possible; die with count 0
		}
	}
	if level == a.P.Depth() {
		count := a.countMatches(ctx)
		if count > 0 {
			env.AggUpdate(count)
		}
		return
	}
	// Next round: pull the distinct neighbors of this level's matches
	// (the filter step of §4.2 excludes already-known non-frontier IDs).
	next := make(map[graph.VertexID]struct{})
	for _, p := range a.P.Levels()[level] {
		for i, w := range t.Cands {
			if cands[i] == nil || !containsSorted(ctx.matched[p], w) {
				continue
			}
			for _, nb := range cands[i].Adj {
				next[nb] = struct{}{}
			}
		}
	}
	if len(next) == 0 {
		return
	}
	ids := make([]graph.VertexID, 0, len(next))
	for id := range next {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	t.Pull(ids...)
}

// levelSteps returns the matching schedule for one level: the compiled
// plan's steps when available, otherwise the equivalent schedule read off
// the pattern (both list nodes in ascending index order).
func (a *GraphMatch) levelSteps(level int) []plan.TreeStep {
	if a.plan != nil {
		return a.plan.Level(level)
	}
	nodes := a.P.Levels()[level]
	steps := make([]plan.TreeStep, len(nodes))
	for i, n := range nodes {
		steps[i] = plan.TreeStep{Node: n, Parent: a.P.Parent[n], Label: a.P.Labels[n]}
	}
	return steps
}

// countMatches runs the bottom-up dynamic program over the recorded
// edges: h(p, v) = ∏_{c ∈ children(p)} Σ_{w ∈ edges[c][v]} h(c, w).
func (a *GraphMatch) countMatches(ctx *gmContext) int64 {
	memo := make(map[[2]int64]int64)
	var h func(p int, v graph.VertexID) int64
	h = func(p int, v graph.VertexID) int64 {
		key := [2]int64{int64(p), int64(v)}
		if c, ok := memo[key]; ok {
			return c
		}
		var out int64 = 1
		for _, c := range a.P.Children(p) {
			var sum int64
			for _, w := range ctx.edges[c][v] {
				sum += h(c, w)
			}
			out *= sum
			if out == 0 {
				break
			}
		}
		memo[key] = out
		return out
	}
	var total int64
	for _, v := range ctx.matched[0] {
		total += h(0, v)
	}
	return total
}

func appendUnique(ids []graph.VertexID, x graph.VertexID) []graph.VertexID {
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= x })
	if i < len(ids) && ids[i] == x {
		return ids
	}
	ids = append(ids, 0)
	copy(ids[i+1:], ids[i:])
	ids[i] = x
	return ids
}

// EncodeContext implements core.ContextCodec.
func (*GraphMatch) EncodeContext(w *wire.Writer, ctxAny any) {
	ctx, ok := ctxAny.(*gmContext)
	if !ok {
		w.Uvarint(0)
		w.Uvarint(0)
		return
	}
	w.Uvarint(uint64(len(ctx.matched)))
	for _, p := range sortedKeys(ctx.matched) {
		w.Int(p)
		wire.EncodeIDs(w, ctx.matched[p])
	}
	w.Uvarint(uint64(len(ctx.edges)))
	for _, p := range sortedKeys(ctx.edges) {
		w.Int(p)
		m := ctx.edges[p]
		w.Uvarint(uint64(len(m)))
		vs := make([]graph.VertexID, 0, len(m))
		for v := range m {
			vs = append(vs, v)
		}
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		for _, v := range vs {
			w.Varint(int64(v))
			wire.EncodeIDs(w, m[v])
		}
	}
}

// DecodeContext implements core.ContextCodec.
func (*GraphMatch) DecodeContext(r *wire.Reader) any {
	ctx := newGMContext()
	nm := r.Uvarint()
	for i := uint64(0); i < nm; i++ {
		p := r.Int()
		ctx.matched[p] = wire.DecodeIDs(r)
	}
	ne := r.Uvarint()
	for i := uint64(0); i < ne; i++ {
		p := r.Int()
		cnt := r.Uvarint()
		m := make(map[graph.VertexID][]graph.VertexID, cnt)
		for j := uint64(0); j < cnt; j++ {
			v := graph.VertexID(r.Varint())
			m[v] = wire.DecodeIDs(r)
		}
		ctx.edges[p] = m
	}
	return ctx
}

func sortedKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
