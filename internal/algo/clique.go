package algo

import (
	"sort"

	"gminer/internal/graph"
)

// cliqueGraph is the induced candidate subgraph a clique search runs on:
// vertices 0..n-1 with bitset-free sorted adjacency (indices).
type cliqueGraph struct {
	ids []graph.VertexID // index → vertex ID
	adj [][]int          // index → sorted neighbor indices (within the set)
}

// buildCliqueGraph maps a candidate set and their (global) adjacency lists
// into an induced index graph. verts[i] may be nil (dangling candidate);
// such entries get no edges.
func buildCliqueGraph(ids []graph.VertexID, verts []*graph.Vertex) *cliqueGraph {
	cg := &cliqueGraph{ids: ids, adj: make([][]int, len(ids))}
	index := make(map[graph.VertexID]int, len(ids))
	for i, id := range ids {
		index[id] = i
	}
	for i, v := range verts {
		if v == nil {
			continue
		}
		for _, nb := range v.Adj {
			if j, ok := index[nb]; ok && j != i {
				cg.adj[i] = append(cg.adj[i], j)
			}
		}
		sort.Ints(cg.adj[i])
	}
	return cg
}

// maxCliqueSearch is a Tomita-style branch and bound (the paper cites
// Tomita & Seki [33] and Bomze et al. [5]): pivoted expansion with greedy
// coloring upper bounds, pruned against the best clique size seen so far.
// bound() supplies the externally known best (the global aggregator value
// in the distributed setting), enabling the parallel pruning that §3
// credits for G-thinker's superlinear speedup.
type maxCliqueSearch struct {
	g     *cliqueGraph
	base  int        // |R0|: vertices already fixed in the clique
	best  int        // best |R| found (including base)
	bestR []int      // members (indices) of the best clique found locally
	bound func() int // external best-size hint; may be nil
	steps int        // nodes expanded, for periodic bound refresh
}

// run returns the best clique size found (including base) and its member
// indices (excluding the base vertices).
func (s *maxCliqueSearch) run(candidates []int) (int, []int) {
	s.best = s.base
	if s.bound != nil {
		if b := s.bound(); b > s.best {
			s.best = b
		}
	}
	s.expand(nil, candidates)
	return s.best, s.bestR
}

func (s *maxCliqueSearch) expand(r []int, p []int) {
	if len(p) == 0 {
		if s.base+len(r) > s.best {
			s.best = s.base + len(r)
			s.bestR = append([]int(nil), r...)
		}
		return
	}
	// Refresh the external bound occasionally: parallel pruning.
	s.steps++
	if s.bound != nil && s.steps%256 == 0 {
		if b := s.bound(); b > s.best {
			s.best = b
		}
	}
	if s.base+len(r)+len(p) <= s.best {
		return
	}
	// Greedy coloring bound: order p by color, expand highest color first.
	order, colors := s.color(p)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		if s.base+len(r)+colors[i] <= s.best {
			return // every remaining vertex has an even smaller bound
		}
		// P for the child: candidates before v in the order ∩ Γ(v).
		var np []int
		for _, u := range order[:i] {
			if containsInt(s.g.adj[v], u) {
				np = append(np, u)
			}
		}
		s.expand(append(r, v), np)
	}
}

// color greedily colors p (ascending degree order heuristic) and returns
// the vertices sorted by color along with each vertex's color number
// (1-based); color count bounds the clique size within p.
func (s *maxCliqueSearch) color(p []int) (order []int, colors []int) {
	// classes[c] = vertices of color c (mutually non-adjacent).
	var classes [][]int
	for _, v := range p {
		placed := false
		for c := range classes {
			ok := true
			for _, u := range classes[c] {
				if containsInt(s.g.adj[v], u) {
					ok = false
					break
				}
			}
			if ok {
				classes[c] = append(classes[c], v)
				placed = true
				break
			}
		}
		if !placed {
			classes = append(classes, []int{v})
		}
	}
	for c, class := range classes {
		for _, v := range class {
			order = append(order, v)
			colors = append(colors, c+1)
		}
	}
	return order, colors
}

// SearchMaxClique finds the maximum clique of the subgraph induced on ids
// (whose adjacency comes from verts, aligned with ids; nil entries are
// isolated), assuming `base` vertices are already fixed in the clique and
// adjacent to everything in ids. bound, if non-nil, supplies an external
// best-size hint for pruning. Returns the best total size and the member
// IDs drawn from ids (excluding the base). Exported for the baseline
// engines, which run the identical search so engine comparisons measure
// the runtime, not the algorithm.
func SearchMaxClique(ids []graph.VertexID, verts []*graph.Vertex, base int, bound func() int) (int, []graph.VertexID) {
	cg := buildCliqueGraph(ids, verts)
	all := make([]int, len(ids))
	for i := range all {
		all[i] = i
	}
	search := &maxCliqueSearch{g: cg, base: base, bound: bound}
	best, members := search.run(all)
	out := make([]graph.VertexID, len(members))
	for i, m := range members {
		out[i] = cg.ids[m]
	}
	return best, out
}

func containsInt(sorted []int, x int) bool {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case sorted[mid] < x:
			lo = mid + 1
		case sorted[mid] > x:
			hi = mid
		default:
			return true
		}
	}
	return false
}
