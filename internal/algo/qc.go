package algo

import (
	"fmt"
	"sort"

	"gminer/internal/core"
	"gminer/internal/graph"
)

// QuasiClique implements γ-quasi-clique finding, the "quasi-cliques [1]"
// member of the paper's enumeration category (§4.1): a vertex set S is a
// γ-quasi-clique if every member has at least ⌈γ·(|S|−1)⌉ neighbors
// inside S. Exact enumeration is intractable, so — as in the massive
// quasi-clique detection literature the paper cites — each seed grows a
// quasi-clique greedily inside its 1-hop neighborhood: after one pull
// round the task holds the induced neighborhood subgraph and repeatedly
// admits the candidate with the most internal connections while the
// γ-constraint holds.
//
// Deduplication: a grown set is emitted only by the task seeded at its
// smallest member, so results form a set.
type QuasiClique struct {
	core.NoContext
	// Gamma is the density threshold in (0, 1]; 1.0 degenerates to cliques.
	Gamma float64
	// MinSize is the smallest quasi-clique to report.
	MinSize int
}

// NewQuasiClique returns QC with the given parameters (defaults: γ=0.7,
// MinSize=5).
func NewQuasiClique(gamma float64, minSize int) *QuasiClique {
	if gamma <= 0 || gamma > 1 {
		gamma = 0.7
	}
	if minSize <= 0 {
		minSize = 5
	}
	return &QuasiClique{Gamma: gamma, MinSize: minSize}
}

// Name implements core.Algorithm.
func (*QuasiClique) Name() string { return "qc" }

// Seed implements core.Algorithm: the whole 1-hop neighborhood is the
// candidate pool (no >v restriction — quasi-cliques are not closed under
// minimum-vertex rooting; dedup happens at emission instead).
func (a *QuasiClique) Seed(v *graph.Vertex, spawn func(*core.Task)) {
	if v.Degree()+1 < a.MinSize {
		return
	}
	t := &core.Task{}
	t.Subgraph.AddVertex(v.ID)
	t.Cands = append([]graph.VertexID(nil), v.Adj...)
	spawn(t)
}

// Update implements core.Algorithm: one pull round, then the greedy
// growth entirely in-memory.
func (a *QuasiClique) Update(t *core.Task, cands []*graph.Vertex, env core.Env) {
	seed := t.Subgraph.Vertices()[0]
	members := a.grow(seed, t.Cands, cands)
	if len(members) < a.MinSize {
		return
	}
	if members[0] != seed {
		return // dedup: only the smallest member's task reports
	}
	env.Emit(fmt.Sprintf("quasiclique gamma=%.2f size=%d: %s", a.Gamma, len(members), formatIDs(members)))
}

// grow runs the deterministic greedy expansion and returns the sorted
// member set. Exposed via RefQuasiCliques for the sequential oracle.
func (a *QuasiClique) grow(seed graph.VertexID, candIDs []graph.VertexID, cands []*graph.Vertex) []graph.VertexID {
	// adjacency among {seed} ∪ candidates, restricted to that set.
	adj := map[graph.VertexID]map[graph.VertexID]bool{seed: {}}
	for _, id := range candIDs {
		adj[seed][id] = true // candidates are Γ(seed)
	}
	for i, obj := range cands {
		if obj == nil {
			continue
		}
		id := candIDs[i]
		m := map[graph.VertexID]bool{seed: true}
		for _, nb := range obj.Adj {
			if _, ok := adj[seed][nb]; ok && nb != id {
				m[nb] = true
			}
		}
		adj[id] = m
	}

	members := []graph.VertexID{seed}
	inSet := map[graph.VertexID]bool{seed: true}
	internal := map[graph.VertexID]int{} // member → degree inside S

	for {
		// Pick the candidate with the most connections into S (ties: the
		// smallest ID, keeping growth deterministic).
		var best graph.VertexID = -1
		bestConn := -1
		for _, id := range candIDs {
			if inSet[id] || adj[id] == nil {
				continue
			}
			conn := 0
			for _, m := range members {
				if adj[id][m] {
					conn++
				}
			}
			if conn > bestConn || (conn == bestConn && best >= 0 && id < best) {
				best, bestConn = id, conn
			}
		}
		if best < 0 || bestConn == 0 {
			break
		}
		// Check the γ-constraint for S ∪ {best}.
		size := len(members) + 1
		need := int(a.Gamma*float64(size-1) + 0.9999999)
		if bestConn < need {
			break // greedy order ⇒ no remaining candidate can satisfy it
		}
		ok := true
		for _, m := range members {
			d := internal[m]
			if adj[best][m] {
				d++
			}
			if d < need {
				ok = false
				break
			}
		}
		if !ok {
			break
		}
		for _, m := range members {
			if adj[best][m] {
				internal[m]++
			}
		}
		internal[best] = bestConn
		members = append(members, best)
		inSet[best] = true
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	return members
}

// RefQuasiCliques runs the identical growth sequentially from every seed
// and returns the emitted records (sorted).
func RefQuasiCliques(g *graph.Graph, a *QuasiClique) []string {
	var out []string
	g.ForEach(func(v *graph.Vertex) bool {
		if v.Degree()+1 < a.MinSize {
			return true
		}
		candIDs := v.Adj
		cands := make([]*graph.Vertex, len(candIDs))
		for i, id := range candIDs {
			cands[i] = g.Vertex(id)
		}
		members := a.grow(v.ID, candIDs, cands)
		if len(members) >= a.MinSize && members[0] == v.ID {
			out = append(out, fmt.Sprintf("quasiclique gamma=%.2f size=%d: %s", a.Gamma, len(members), formatIDs(members)))
		}
		return true
	})
	sort.Strings(out)
	return out
}
