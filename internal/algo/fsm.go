package algo

import (
	"fmt"
	"sort"

	"gminer/internal/core"
	"gminer/internal/graph"
	"gminer/internal/wire"
)

// FreqSubgraph implements a frequent-subgraph-mining workload from the
// paper's "subgraph mining (e.g., frequent graph mining [43])" category
// (§4.1): count, over a labeled graph, the occurrences of every
// 3-vertex labeled path pattern (label(a)–label(b)–label(c), center b),
// and report the patterns whose support reaches MinSupport. Three-node
// paths are the unit gSpan-style miners start from; the workload
// exercises a *keyed* global aggregator (pattern → count), unlike the
// scalar aggregators of TC/GM/MCF.
//
// Canonicalization: a path a–b–c equals c–b–a, so the endpoint labels
// are ordered; each concrete occurrence is counted once (center vertex
// owns it, endpoints ordered by ID when labels tie).
type FreqSubgraph struct {
	core.NoContext
	// MinSupport is the minimum occurrence count for a pattern to be
	// reported.
	MinSupport int64
}

// NewFreqSubgraph returns FSM with the given support threshold
// (default 100).
func NewFreqSubgraph(minSupport int64) *FreqSubgraph {
	if minSupport <= 0 {
		minSupport = 100
	}
	return &FreqSubgraph{MinSupport: minSupport}
}

// Name implements core.Algorithm.
func (*FreqSubgraph) Name() string { return "fsm" }

// PatternKey identifies a canonical 3-vertex path pattern.
type PatternKey struct {
	End1, Center, End2 int32 // End1 <= End2
}

func (k PatternKey) String() string {
	return fmt.Sprintf("%d-%d-%d", k.End1, k.Center, k.End2)
}

// PatternCounts is the aggregator value: canonical pattern → support.
type PatternCounts map[PatternKey]int64

// patternAggregator merges pattern-count maps.
type patternAggregator struct{}

// Aggregator implements core.AggregatorProvider.
func (*FreqSubgraph) Aggregator() core.Aggregator { return patternAggregator{} }

// Zero implements core.Aggregator.
func (patternAggregator) Zero() any { return PatternCounts{} }

// Add implements core.Aggregator.
func (patternAggregator) Add(p, v any) any {
	out := p.(PatternCounts)
	for k, c := range v.(PatternCounts) {
		out[k] += c
	}
	return out
}

// Merge implements core.Aggregator. Partials must not be mutated in
// place across merge rounds (the master re-merges the latest partials
// each sync), so Merge builds a fresh map.
func (patternAggregator) Merge(a, b any) any {
	out := PatternCounts{}
	for k, c := range a.(PatternCounts) {
		out[k] += c
	}
	for k, c := range b.(PatternCounts) {
		out[k] += c
	}
	return out
}

// Encode implements core.Aggregator.
func (patternAggregator) Encode(w *wire.Writer, v any) {
	pc := v.(PatternCounts)
	keys := make([]PatternKey, 0, len(pc))
	for k := range pc {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.End1 != b.End1 {
			return a.End1 < b.End1
		}
		if a.Center != b.Center {
			return a.Center < b.Center
		}
		return a.End2 < b.End2
	})
	w.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.Varint(int64(k.End1))
		w.Varint(int64(k.Center))
		w.Varint(int64(k.End2))
		w.Varint(pc[k])
	}
}

// Decode implements core.Aggregator.
func (patternAggregator) Decode(r *wire.Reader) any {
	n := r.Uvarint()
	out := make(PatternCounts, n)
	for i := uint64(0); i < n; i++ {
		k := PatternKey{
			End1:   int32(r.Varint()),
			Center: int32(r.Varint()),
			End2:   int32(r.Varint()),
		}
		out[k] = r.Varint()
	}
	return out
}

// Seed implements core.Algorithm: every vertex with degree >= 2 is the
// center of some paths; its neighbors are the candidates.
func (a *FreqSubgraph) Seed(v *graph.Vertex, spawn func(*core.Task)) {
	if v.Degree() < 2 || v.Label == graph.NoLabel {
		return
	}
	t := &core.Task{Context: v.Label}
	t.Subgraph.AddVertex(v.ID)
	t.Cands = append([]graph.VertexID(nil), v.Adj...)
	spawn(t)
}

// Update implements core.Algorithm: one pull round delivers the labels
// of the neighbors; count every unordered endpoint pair.
func (a *FreqSubgraph) Update(t *core.Task, cands []*graph.Vertex, env core.Env) {
	center, ok := t.Context.(int32)
	if !ok {
		return
	}
	local := PatternCounts{}
	for i := 0; i < len(cands); i++ {
		if cands[i] == nil || cands[i].Label == graph.NoLabel {
			continue
		}
		for j := i + 1; j < len(cands); j++ {
			if cands[j] == nil || cands[j].Label == graph.NoLabel {
				continue
			}
			l1, l2 := cands[i].Label, cands[j].Label
			if l1 > l2 {
				l1, l2 = l2, l1
			}
			local[PatternKey{End1: l1, Center: center, End2: l2}]++
		}
	}
	if len(local) > 0 {
		env.AggUpdate(local)
	}
}

// EncodeContext implements core.ContextCodec (the center label).
func (*FreqSubgraph) EncodeContext(w *wire.Writer, ctx any) {
	label, _ := ctx.(int32)
	w.Varint(int64(label))
}

// DecodeContext implements core.ContextCodec.
func (*FreqSubgraph) DecodeContext(r *wire.Reader) any {
	return int32(r.Varint())
}

// Frequent filters an aggregate down to the patterns meeting MinSupport,
// rendered as stable record strings.
func (a *FreqSubgraph) Frequent(counts PatternCounts) []string {
	var out []string
	for k, c := range counts {
		if c >= a.MinSupport {
			out = append(out, fmt.Sprintf("pattern %s support=%d", k, c))
		}
	}
	sort.Strings(out)
	return out
}

// RefFreqSubgraph is the sequential oracle: the full pattern-count map.
func RefFreqSubgraph(g *graph.Graph) PatternCounts {
	out := PatternCounts{}
	g.ForEach(func(v *graph.Vertex) bool {
		if v.Degree() < 2 || v.Label == graph.NoLabel {
			return true
		}
		adj := v.Adj
		for i := 0; i < len(adj); i++ {
			vi := g.Vertex(adj[i])
			if vi == nil || vi.Label == graph.NoLabel {
				continue
			}
			for j := i + 1; j < len(adj); j++ {
				vj := g.Vertex(adj[j])
				if vj == nil || vj.Label == graph.NoLabel {
					continue
				}
				l1, l2 := vi.Label, vj.Label
				if l1 > l2 {
					l1, l2 = l2, l1
				}
				out[PatternKey{End1: l1, Center: v.Label, End2: l2}]++
			}
		}
		return true
	})
	return out
}
