package algo

import (
	"gminer/internal/core"
	"gminer/internal/graph"
	"gminer/internal/kernels"
)

// MaxClique implements MCF (§8.1): maximum clique finding with an
// optimized pruning strategy following Bomze et al. [5] / Tomita & Seki
// [33]. Each vertex v seeds a task over the candidate set
// P = {u ∈ Γ(v) : u > v} (the ordering makes search spaces disjoint);
// after one pull round the task holds the induced subgraph on P and runs
// a branch-and-bound search. A global maximum aggregator shares the best
// clique size across all workers, so every task prunes against the global
// frontier — the "parallel pruning" §3 identifies as the source of
// superlinear speedup.
//
// With SplitThreshold > 0, oversized tasks recursively split into child
// tasks instead of searching locally (the paper's §9 future-work
// "recursive task splitting"), which shrinks the unit of stealing.
type MaxClique struct {
	core.NoContext
	// SplitThreshold splits tasks whose candidate set exceeds it; 0
	// disables splitting.
	SplitThreshold int
	// SplitDepth bounds how deep splitting recurses: a task splits only
	// while |R| <= SplitDepth (default 1: only seed-level tasks split).
	// Unbounded splitting would trade away the branch-and-bound pruning
	// that makes the search tractable.
	SplitDepth int
}

// NewMaxClique returns the MCF application.
func NewMaxClique() *MaxClique { return &MaxClique{} }

// Name implements core.Algorithm.
func (*MaxClique) Name() string { return "mcf" }

// Aggregator implements core.AggregatorProvider: the global
// currently-maximum clique size (§5.1's example aggregator).
func (*MaxClique) Aggregator() core.Aggregator { return core.MaxIntAggregator{} }

// Seed implements core.Algorithm.
func (*MaxClique) Seed(v *graph.Vertex, spawn func(*core.Task)) {
	var cands []graph.VertexID
	for _, u := range v.Adj {
		if u > v.ID {
			cands = append(cands, u)
		}
	}
	t := &core.Task{}
	t.Subgraph.AddVertex(v.ID)
	// A candidate-less task only reports |R|; fold one (necessarily lower)
	// neighbor into R so such tasks report the size-2 clique they witness.
	// Tasks with candidates must keep R = {v}: candidates are only
	// guaranteed adjacent to v.
	if len(cands) == 0 && len(v.Adj) > 0 {
		t.Subgraph.AddVertex(v.Adj[0])
	}
	t.Cands = cands
	spawn(t)
}

// Update implements core.Algorithm. R = t.Subgraph vertices (a clique),
// P = t.Cands (common neighbors of R succeeding the seed).
func (m *MaxClique) Update(t *core.Task, cands []*graph.Vertex, env core.Env) {
	globalBest := func() int {
		if g, ok := env.AggGlobal().(int); ok {
			return g
		}
		return 0
	}
	r := t.Subgraph.Len()
	env.AggUpdate(r) // R itself is a clique
	// Prune: even taking all of P cannot beat the global best.
	if r+len(t.Cands) <= globalBest() {
		return
	}

	maxSplitDepth := m.SplitDepth
	if maxSplitDepth <= 0 {
		maxSplitDepth = 1
	}
	if m.SplitThreshold > 0 && len(t.Cands) > m.SplitThreshold && r <= maxSplitDepth {
		m.split(t, cands)
		return
	}

	cg := buildCliqueGraph(t.Cands, cands)
	all := make([]int, len(t.Cands))
	for i := range all {
		all[i] = i
	}
	search := &maxCliqueSearch{g: cg, base: r, bound: globalBest}
	best, members := search.run(all)
	if best > globalBest() {
		env.AggUpdate(best)
		if len(members) > 0 {
			clique := append([]graph.VertexID(nil), t.Subgraph.Vertices()...)
			for _, i := range members {
				clique = append(clique, cg.ids[i])
			}
			env.Emit("clique size=" + itoa(best) + ": " + formatIDs(sortedIDs(clique)))
		}
	}
	// No Pull: the task dies.
}

// split spawns one child task per candidate u_i with
// R' = R ∪ {u_i}, P' = {u_j : j > i} ∩ Γ(u_i); the parent dies. Children
// with empty P' report |R'| directly.
func (m *MaxClique) split(t *core.Task, cands []*graph.Vertex) {
	for i, u := range cands {
		if u == nil {
			continue
		}
		// P' = {u_j : j > i} ∩ Γ(u_i): both operands sorted, so the kernel
		// intersection replaces the per-element HasNeighbor probes.
		np := kernels.Intersect([]graph.VertexID(nil), t.Cands[i+1:], u.Adj)
		child := &core.Task{Subgraph: t.Subgraph.Clone()}
		child.Subgraph.AddVertex(t.Cands[i])
		child.Cands = np // empty: the child just reports |R'|
		t.Spawn(child)
	}
}

func sortedIDs(ids []graph.VertexID) []graph.VertexID {
	out := append([]graph.VertexID(nil), ids...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func itoa(x int) string {
	if x == 0 {
		return "0"
	}
	neg := x < 0
	if neg {
		x = -x
	}
	var buf [20]byte
	i := len(buf)
	for x > 0 {
		i--
		buf[i] = byte('0' + x%10)
		x /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
