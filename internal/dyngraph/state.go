package dyngraph

import (
	"fmt"

	"gminer/internal/graph"
	"gminer/internal/partition"
)

// State is the incremental repartitioning state of a dynamic Session: the
// Blocked partition aggregates maintained mutation by mutation, the
// current block assignment, and the graph epoch. It is not concurrency
// safe — the Session serializes Apply against running jobs.
//
// Invariant (checked by the differential suite): after any sequence of
// Apply calls, s.agg equals partition.CollectBlocks of the mutated graph
// and s.Assignment() equals a from-scratch Blocked.Partition — byte
// identical owners, sizes and local tables.
type State struct {
	k      int
	agg    *partition.BlockAgg
	assign *partition.Assignment
	epoch  int64
}

// NewState collects the block aggregates of g from scratch and places
// them; the resulting assignment is identical to Blocked{Shift:
// shift}.Partition(g, k). Epoch starts at 0.
func NewState(g *graph.Graph, k int, shift uint) (*State, error) {
	if k < 1 {
		return nil, fmt.Errorf("dyngraph: k must be >= 1, got %d", k)
	}
	if shift == 0 {
		shift = partition.DefaultBlockShift
	}
	agg := partition.CollectBlocks(g, shift)
	return &State{k: k, agg: agg, assign: agg.Assign(k)}, nil
}

// Assignment returns the current block assignment.
func (s *State) Assignment() *partition.Assignment { return s.assign }

// Epoch returns the current graph epoch (0 = the loaded snapshot).
func (s *State) Epoch() int64 { return s.epoch }

// ApplyInfo describes one epoch transition.
type ApplyInfo struct {
	Epoch        int64      // epoch after the batch
	Stats        ApplyStats // what the batch did
	DirtyBlocks  int        // blocks containing a structurally-changed vertex
	MovedBlocks  int        // blocks whose owner changed in re-placement
	DirtyWorkers []bool     // workers whose local tables must be rebuilt
}

// Apply mutates g in place, maintains the block aggregates, re-runs the
// greedy placement on the updated aggregates, and advances the epoch. The
// returned DirtyWorkers marks exactly the workers whose local vertex set
// or vertex structure changed: owners (old and new) of every touched
// vertex, plus both sides of every block that moved.
func (s *State) Apply(g *graph.Graph, b Batch) (*ApplyInfo, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if err := s.checkNotEmptying(g, b); err != nil {
		return nil, err
	}

	touched := make(map[graph.VertexID]struct{}, 2*len(b.Ops))
	old := s.assign
	stats := applyBatch(g, b, s.agg, touched)
	s.assign = s.agg.Assign(s.k)
	s.epoch++

	dirty := make([]bool, s.k)
	markW := func(w int) {
		if w >= 0 && w < s.k {
			dirty[w] = true
		}
	}
	dirtyBlocks := make(map[int64]struct{})
	for id := range touched {
		dirtyBlocks[int64(id)>>s.aggShift()] = struct{}{}
		markW(old.Owner(id))
		markW(s.assign.Owner(id))
	}
	moved := 0
	newOwners := s.assign.BlockOwners()
	for blk, w := range old.BlockOwners() {
		nw, ok := newOwners[blk]
		if !ok {
			moved++ // block emptied out
			markW(w)
		} else if nw != w {
			moved++
			markW(w)
			markW(nw)
		}
	}
	for blk, nw := range newOwners {
		if _, ok := old.BlockOwners()[blk]; !ok {
			moved++ // brand-new block
			markW(nw)
		}
	}

	return &ApplyInfo{
		Epoch:        s.epoch,
		Stats:        stats,
		DirtyBlocks:  len(dirtyBlocks),
		MovedBlocks:  moved,
		DirtyWorkers: dirty,
	}, nil
}

func (s *State) aggShift() uint { return s.agg.Shift }

// checkNotEmptying rejects a batch that would delete every vertex: several
// consumers (jobspec exemplar lookups, CSR seeding) assume a non-empty
// resident graph, and an operator emptying the graph is a mistake, not a
// workload. Only batches that could possibly empty the graph pay for the
// simulation.
func (s *State) checkNotEmptying(g *graph.Graph, b Batch) error {
	dels := 0
	for _, m := range b.Ops {
		if m.Op == OpDelVertex {
			dels++
		}
	}
	if dels < g.NumVertices() {
		return nil
	}
	alive := make(map[graph.VertexID]struct{}, g.NumVertices())
	g.ForEach(func(v *graph.Vertex) bool {
		alive[v.ID] = struct{}{}
		return true
	})
	for _, m := range b.Ops {
		switch m.Op {
		case OpAddVertex:
			alive[m.ID] = struct{}{}
		case OpAddEdge:
			alive[m.U] = struct{}{}
			alive[m.W] = struct{}{}
		case OpDelVertex:
			delete(alive, m.ID)
		}
	}
	if len(alive) == 0 {
		return fmt.Errorf("dyngraph: batch would delete every vertex")
	}
	return nil
}
