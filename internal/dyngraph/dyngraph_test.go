package dyngraph

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"gminer/internal/graph"
)

func i32(v int32) *int32 { return &v }

func pathGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(graph.VertexID(i), graph.VertexID(i+1))
	}
	g.Freeze()
	return g
}

func TestDecodeBatch(t *testing.T) {
	cases := []struct {
		name, in string
		wantErr  string
		wantOps  int
	}{
		{"add edge", `{"ops":[{"op":"add-edge","u":1,"w":2}]}`, "", 1},
		{"all ops", `{"ops":[{"op":"add-edge","u":1,"w":2},{"op":"del-edge","u":1,"w":2},{"op":"add-vertex","id":9,"label":3,"attrs":[1,2]},{"op":"del-vertex","id":4}]}`, "", 4},
		{"empty", `{"ops":[]}`, "empty batch", 0},
		{"no ops field", `{}`, "empty batch", 0},
		{"unknown op", `{"ops":[{"op":"rename","id":1}]}`, "unknown op", 0},
		{"self loop", `{"ops":[{"op":"add-edge","u":3,"w":3}]}`, "self-loop", 0},
		{"negative attr", `{"ops":[{"op":"add-vertex","id":1,"attrs":[-1]}]}`, "negative attr", 0},
		{"bad label", `{"ops":[{"op":"add-vertex","id":1,"label":-9}]}`, "invalid label", 0},
		{"trailing data", `{"ops":[{"op":"del-vertex","id":1}]}{"ops":[]}`, "trailing data", 0},
		{"not json", `ops: go`, "bad batch", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, err := DecodeBatch(strings.NewReader(tc.in))
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("DecodeBatch: %v", err)
				}
				if len(b.Ops) != tc.wantOps {
					t.Fatalf("got %d ops, want %d", len(b.Ops), tc.wantOps)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestDecodeBatchOpClamp(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(`{"ops":[`)
	for i := 0; i <= MaxBatchOps; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"op":"del-vertex","id":%d}`, i)
	}
	sb.WriteString(`]}`)
	if _, err := DecodeBatch(strings.NewReader(sb.String())); err == nil {
		t.Fatal("expected op-count clamp error")
	}
}

func TestApplySemantics(t *testing.T) {
	g := pathGraph(4) // 0-1-2-3
	b := Batch{Ops: []Mutation{
		{Op: OpAddEdge, U: 0, W: 3},             // close the cycle
		{Op: OpAddEdge, U: 0, W: 3},             // duplicate → no-op
		{Op: OpDelEdge, U: 1, W: 2},             // cut the middle
		{Op: OpDelEdge, U: 1, W: 2},             // already gone → no-op
		{Op: OpAddVertex, ID: 9, Label: i32(2)}, // fresh labeled vertex
		{Op: OpAddVertex, ID: 9},                // exists → no-op
		{Op: OpAddEdge, U: 9, W: 0},
		{Op: OpAddEdge, U: 100, W: 0}, // implicit endpoint creation
		{Op: OpDelVertex, ID: 3},      // takes edges {2,3} was cut... {0,3} and {2,3}
		{Op: OpDelVertex, ID: 77},     // absent → no-op
	}}
	stats := ApplyToGraph(g, b)
	if err := g.Validate(); err != nil {
		t.Fatalf("invariants broken after apply: %v", err)
	}
	want := ApplyStats{Ops: 10, EdgesAdded: 3, EdgesRemoved: 3, VerticesAdded: 2, VerticesRemoved: 1, NoOps: 4}
	if stats != want {
		t.Fatalf("stats = %+v, want %+v", stats, want)
	}
	if g.Has(3) || !g.Has(9) || !g.Has(100) {
		t.Fatalf("wrong vertex set after apply")
	}
	if v := g.Vertex(9); v.Label != 2 || !v.HasNeighbor(0) {
		t.Fatalf("vertex 9 = %+v, want label 2 adjacent to 0", v)
	}
	if g.Vertex(1).HasNeighbor(2) {
		t.Fatal("edge {1,2} should be gone")
	}
	// Insertion order of survivors is preserved across the tombstone compact.
	wantIDs := []graph.VertexID{0, 1, 2, 9, 100}
	if got := g.IDs(); !reflect.DeepEqual(got, wantIDs) {
		t.Fatalf("IDs after compact = %v, want %v", got, wantIDs)
	}
}

func TestApplyRejectsEmptying(t *testing.T) {
	g := pathGraph(3)
	st, err := NewState(g, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	b := Batch{Ops: []Mutation{
		{Op: OpDelVertex, ID: 0}, {Op: OpDelVertex, ID: 1}, {Op: OpDelVertex, ID: 2},
	}}
	if _, err := st.Apply(g, b); err == nil {
		t.Fatal("expected rejection of graph-emptying batch")
	}
	if g.NumVertices() != 3 || st.Epoch() != 0 {
		t.Fatalf("rejected batch must not mutate: |V|=%d epoch=%d", g.NumVertices(), st.Epoch())
	}
}

func TestDirtyIDsCoverChangedEdges(t *testing.T) {
	b := Batch{Ops: []Mutation{
		{Op: OpAddEdge, U: 5, W: 2},
		{Op: OpDelVertex, ID: 7},
		{Op: OpAddVertex, ID: 40},
		{Op: OpDelEdge, U: 2, W: 3},
	}}
	want := []graph.VertexID{2, 3, 5, 7, 40}
	if got := b.DirtyIDs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("DirtyIDs = %v, want %v", got, want)
	}
}
