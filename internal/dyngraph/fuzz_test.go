package dyngraph

import (
	"bytes"
	"testing"

	"gminer/internal/graph"
)

// FuzzDecodeBatch hammers the mutation-batch decoder behind
// POST /graph/mutations: any body must either produce a batch that passes
// Validate and applies to a graph without breaking its invariants, or an
// error — never a panic.
func FuzzDecodeBatch(f *testing.F) {
	seeds := []string{
		`{"ops":[{"op":"add-edge","u":1,"w":2}]}`,
		`{"ops":[{"op":"del-edge","u":0,"w":3},{"op":"del-vertex","id":3}]}`,
		`{"ops":[{"op":"add-vertex","id":9,"label":3,"attrs":[1,2,3]}]}`,
		`{"ops":[{"op":"add-vertex","id":-5},{"op":"add-edge","u":-5,"w":0}]}`,
		`{"ops":[{"op":"add-edge","u":7,"w":7}]}`,
		`{"ops":[{"op":"rm","id":1}]}`,
		`{"ops":[]}`,
		`{"ops":[{"op":"add-vertex","id":1,"label":-2}]}`,
		`not json`,
		``,
		`{"ops":[{"op":"add-edge","u":9e18,"w":1}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		b, err := DecodeBatch(bytes.NewReader(body))
		if err != nil {
			return
		}
		if verr := b.Validate(); verr != nil {
			t.Fatalf("decoded batch fails Validate: %v (body %q)", verr, body)
		}
		g := graph.New(4)
		g.AddEdge(0, 1)
		g.AddEdge(1, 2)
		g.AddEdge(2, 3)
		g.Freeze()
		ApplyToGraph(g, b)
		if err := g.Validate(); err != nil {
			t.Fatalf("graph invariants broken by decoded batch: %v (body %q)", err, body)
		}
	})
}
