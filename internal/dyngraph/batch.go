// Package dyngraph is the dynamic-graph subsystem: a batched mutation
// model over the frozen resident graph, incremental maintenance of the
// Blocked partition aggregates, and the dirty-vertex machinery standing
// mining jobs use to compute per-epoch match deltas.
//
// The unit of change is a Batch of edge/vertex insertions and deletions.
// Each applied batch advances the graph epoch by exactly one; ops inside a
// batch apply in order and are individually idempotent (inserting a
// present edge or deleting an absent vertex is a counted no-op), so a
// mutation stream is replayable: applying the same batches to an
// identically built graph reproduces the same graph, byte for byte.
package dyngraph

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"gminer/internal/graph"
	"gminer/internal/partition"
)

// Op kinds accepted in a mutation batch.
const (
	OpAddEdge   = "add-edge"
	OpDelEdge   = "del-edge"
	OpAddVertex = "add-vertex"
	OpDelVertex = "del-vertex"
)

// Decoder clamps: a batch is a control-plane message, not a bulk-load
// path, so the limits are deliberately tight.
const (
	MaxBatchBytes = 4 << 20 // wire size of one batch
	MaxBatchOps   = 65536   // ops per batch
	MaxOpAttrs    = 64      // attribute values on an add-vertex
)

// Mutation is one op. Edge ops use U/W; vertex ops use ID. Label is a
// pointer so that "no label" (graph.NoLabel) is distinguishable from the
// valid label 0.
type Mutation struct {
	Op    string         `json:"op"`
	U     graph.VertexID `json:"u,omitempty"`
	W     graph.VertexID `json:"w,omitempty"`
	ID    graph.VertexID `json:"id,omitempty"`
	Label *int32         `json:"label,omitempty"`
	Attrs []int32        `json:"attrs,omitempty"`
}

// Batch is an ordered list of mutations applied atomically under one
// graph epoch.
type Batch struct {
	Ops []Mutation `json:"ops"`
}

// Validate checks structural well-formedness (op kinds, self-loops,
// clamps). It does not consult a graph: presence/absence is resolved at
// apply time.
func (b *Batch) Validate() error {
	if len(b.Ops) == 0 {
		return fmt.Errorf("dyngraph: empty batch")
	}
	if len(b.Ops) > MaxBatchOps {
		return fmt.Errorf("dyngraph: batch has %d ops (max %d)", len(b.Ops), MaxBatchOps)
	}
	for i, m := range b.Ops {
		switch m.Op {
		case OpAddEdge, OpDelEdge:
			if m.U == m.W {
				return fmt.Errorf("dyngraph: op %d: self-loop {%d,%d}", i, m.U, m.W)
			}
		case OpAddVertex:
			if len(m.Attrs) > MaxOpAttrs {
				return fmt.Errorf("dyngraph: op %d: %d attrs (max %d)", i, len(m.Attrs), MaxOpAttrs)
			}
			for j, a := range m.Attrs {
				if a < 0 {
					return fmt.Errorf("dyngraph: op %d: negative attr %d at %d", i, a, j)
				}
			}
			if m.Label != nil && *m.Label < graph.NoLabel {
				return fmt.Errorf("dyngraph: op %d: invalid label %d", i, *m.Label)
			}
		case OpDelVertex:
			// ID-only, nothing further to check.
		default:
			return fmt.Errorf("dyngraph: op %d: unknown op %q", i, m.Op)
		}
	}
	return nil
}

// DecodeBatch reads one JSON batch from r, enforcing the wire clamps. It
// is the decoder behind POST /graph/mutations and is fuzzed.
func DecodeBatch(r io.Reader) (Batch, error) {
	var b Batch
	dec := json.NewDecoder(io.LimitReader(r, MaxBatchBytes+1))
	if err := dec.Decode(&b); err != nil {
		return Batch{}, fmt.Errorf("dyngraph: bad batch: %w", err)
	}
	if dec.More() {
		return Batch{}, fmt.Errorf("dyngraph: trailing data after batch")
	}
	if err := b.Validate(); err != nil {
		return Batch{}, err
	}
	return b, nil
}

// DirtyIDs returns the sorted, deduplicated set of vertex IDs named by the
// batch: edge endpoints and vertex-op targets. Every edge changed by the
// batch — including edges dropped by a vertex deletion — has at least one
// endpoint in this set, which is the soundness condition the dirty-rooted
// delta path relies on.
func (b *Batch) DirtyIDs() []graph.VertexID {
	seen := make(map[graph.VertexID]struct{}, 2*len(b.Ops))
	for _, m := range b.Ops {
		switch m.Op {
		case OpAddEdge, OpDelEdge:
			seen[m.U] = struct{}{}
			seen[m.W] = struct{}{}
		case OpAddVertex, OpDelVertex:
			seen[m.ID] = struct{}{}
		}
	}
	out := make([]graph.VertexID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ApplyStats summarizes what a batch actually did to the graph.
type ApplyStats struct {
	Ops             int `json:"ops"`
	EdgesAdded      int `json:"edges_added"`
	EdgesRemoved    int `json:"edges_removed"`
	VerticesAdded   int `json:"vertices_added"`
	VerticesRemoved int `json:"vertices_removed"`
	NoOps           int `json:"noops"`
}

// applyBatch applies b to the frozen graph g in op order, mirroring every
// effective change into agg (when non-nil) and recording every vertex
// whose structure changed into touched (when non-nil): edge endpoints,
// created/deleted vertices, and the surviving neighbors of deleted
// vertices (their adjacency shrank too).
func applyBatch(g *graph.Graph, b Batch, agg *partition.BlockAgg, touched map[graph.VertexID]struct{}) ApplyStats {
	stats := ApplyStats{Ops: len(b.Ops)}
	mark := func(id graph.VertexID) {
		if touched != nil {
			touched[id] = struct{}{}
		}
	}
	ensure := func(id graph.VertexID) {
		if g.DynAddVertex(id, graph.NoLabel, nil) {
			stats.VerticesAdded++
			if agg != nil {
				agg.AddVertex(id)
			}
			mark(id)
		}
	}
	for _, m := range b.Ops {
		switch m.Op {
		case OpAddEdge:
			if m.U == m.W {
				stats.NoOps++
				continue
			}
			// Missing endpoints are created implicitly, unlabeled — the
			// streaming analogue of the builder's AddEdge.
			ensure(m.U)
			ensure(m.W)
			if g.DynAddEdge(m.U, m.W) {
				stats.EdgesAdded++
				if agg != nil {
					agg.AddEdge(m.U, m.W)
				}
				mark(m.U)
				mark(m.W)
			} else {
				stats.NoOps++
			}
		case OpDelEdge:
			if g.DynDelEdge(m.U, m.W) {
				stats.EdgesRemoved++
				if agg != nil {
					agg.DelEdge(m.U, m.W)
				}
				mark(m.U)
				mark(m.W)
			} else {
				stats.NoOps++
			}
		case OpAddVertex:
			label := graph.NoLabel
			if m.Label != nil {
				label = *m.Label
			}
			if g.DynAddVertex(m.ID, label, m.Attrs) {
				stats.VerticesAdded++
				if agg != nil {
					agg.AddVertex(m.ID)
				}
				mark(m.ID)
			} else {
				stats.NoOps++
			}
		case OpDelVertex:
			if removed, ok := g.DynDelVertex(m.ID); ok {
				stats.VerticesRemoved++
				stats.EdgesRemoved += len(removed)
				if agg != nil {
					agg.DelVertex(m.ID)
				}
				mark(m.ID)
				for _, nb := range removed {
					if agg != nil {
						agg.DelEdge(m.ID, nb)
					}
					mark(nb)
				}
			} else {
				stats.NoOps++
			}
		}
	}
	g.DynCompact()
	return stats
}

// ApplyToGraph applies b to a frozen graph with no aggregate maintenance —
// the replay path used to build from-scratch comparison graphs in the
// differential suites and by cmd/bench.
func ApplyToGraph(g *graph.Graph, b Batch) ApplyStats {
	return applyBatch(g, b, nil, nil)
}
