package dyngraph_test

import (
	"reflect"
	"testing"

	"gminer/internal/dyngraph"
	"gminer/internal/gen"
	"gminer/internal/graph"
	"gminer/internal/partition"
)

// localIDs snapshots Assignment.Local for every worker.
func localIDs(g *graph.Graph, a *partition.Assignment, k int) [][]graph.VertexID {
	out := make([][]graph.VertexID, k)
	for w := 0; w < k; w++ {
		out[w] = a.Local(g, w)
	}
	return out
}

// TestStateMatchesScratch is the incremental-repartitioning differential
// gate: after every batch of several seeded mutation streams on ER and
// RMAT graphs, the incrementally maintained assignment must be identical
// to a from-scratch Blocked.Partition of a replayed graph — same owner for
// every vertex, same sizes, same per-worker local ID lists.
func TestStateMatchesScratch(t *testing.T) {
	const k = 4
	const shift = 4 // small blocks → plenty of blocks → real movement
	builders := map[string]func() *graph.Graph{
		"er":   func() *graph.Graph { return gen.ErdosRenyi(400, 1200, 11) },
		"rmat": func() *graph.Graph { return gen.RMAT(gen.RMATConfig{Scale: 9, Edges: 2048, Seed: 7}) },
	}
	for name, build := range builders {
		for _, seed := range []int64{1, 2, 3} {
			g := build()
			st, err := dyngraph.NewState(g, k, shift)
			if err != nil {
				t.Fatal(err)
			}
			// Epoch 0: incremental state must equal the partitioner.
			scratch, err := partition.Blocked{Shift: shift}.Partition(g, k)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(localIDs(g, st.Assignment(), k), localIDs(g, scratch, k)) {
				t.Fatalf("%s/seed%d: epoch 0 state != Blocked.Partition", name, seed)
			}

			batches := gen.Deltas(g, gen.DeltasConfig{Batches: 4, Ops: 48, Seed: seed})
			replay := build() // from-scratch comparator, fed the same stream
			for bi, b := range batches {
				info, err := st.Apply(g, b)
				if err != nil {
					t.Fatalf("%s/seed%d batch %d: %v", name, seed, bi, err)
				}
				if info.Epoch != int64(bi+1) {
					t.Fatalf("epoch = %d, want %d", info.Epoch, bi+1)
				}
				dyngraph.ApplyToGraph(replay, b)

				// The mutated graph must equal the replayed graph exactly.
				if err := g.Validate(); err != nil {
					t.Fatalf("%s/seed%d batch %d: %v", name, seed, bi, err)
				}
				if !reflect.DeepEqual(g.IDs(), replay.IDs()) {
					t.Fatalf("%s/seed%d batch %d: vertex sets diverged", name, seed, bi)
				}
				same := true
				g.ForEach(func(v *graph.Vertex) bool {
					r := replay.Vertex(v.ID)
					if r == nil || !reflect.DeepEqual(v.Adj, r.Adj) || v.Label != r.Label || !reflect.DeepEqual(v.Attrs, r.Attrs) {
						same = false
						return false
					}
					return true
				})
				if !same {
					t.Fatalf("%s/seed%d batch %d: adjacency diverged", name, seed, bi)
				}

				// Incremental assignment == from-scratch partition of the
				// mutated graph.
				scratch, err := partition.Blocked{Shift: shift}.Partition(replay, k)
				if err != nil {
					t.Fatal(err)
				}
				if got, want := st.Assignment().Sizes(), scratch.Sizes(); !reflect.DeepEqual(got, want) {
					t.Fatalf("%s/seed%d batch %d: sizes %v != scratch %v", name, seed, bi, got, want)
				}
				if !reflect.DeepEqual(localIDs(g, st.Assignment(), k), localIDs(replay, scratch, k)) {
					t.Fatalf("%s/seed%d batch %d: local tables diverged from scratch", name, seed, bi)
				}
			}
		}
	}
}

// TestDirtyWorkersAreExact checks the contract the Session relies on: a
// worker NOT marked dirty by Apply has an unchanged local ID list and
// unchanged vertex structure (footprints), so skipping its table rebuild
// is lossless.
func TestDirtyWorkersAreExact(t *testing.T) {
	const k = 4
	const shift = 4
	g := gen.ErdosRenyi(400, 1200, 5)
	st, err := dyngraph.NewState(g, k, shift)
	if err != nil {
		t.Fatal(err)
	}
	batches := gen.Deltas(g, gen.DeltasConfig{Batches: 5, Ops: 24, Seed: 9})
	for bi, b := range batches {
		before := localIDs(g, st.Assignment(), k)
		foot := make(map[graph.VertexID]int64)
		g.ForEach(func(v *graph.Vertex) bool {
			foot[v.ID] = v.FootprintBytes()
			return true
		})
		info, err := st.Apply(g, b)
		if err != nil {
			t.Fatalf("batch %d: %v", bi, err)
		}
		after := localIDs(g, st.Assignment(), k)
		for w := 0; w < k; w++ {
			if info.DirtyWorkers[w] {
				continue
			}
			if !reflect.DeepEqual(before[w], after[w]) {
				t.Fatalf("batch %d: worker %d not dirty but local set changed", bi, w)
			}
			for _, id := range after[w] {
				if g.Vertex(id).FootprintBytes() != foot[id] {
					t.Fatalf("batch %d: worker %d not dirty but vertex %d structure changed", bi, w, id)
				}
			}
		}
	}
}

func TestTrianglesTouchingMatchesNaive(t *testing.T) {
	g := gen.ErdosRenyi(200, 1400, 3)
	st, err := dyngraph.NewState(g, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	total, _ := countTriangles(g, nil)
	for bi, b := range gen.Deltas(g, gen.DeltasConfig{Batches: 4, Ops: 32, Seed: 17}) {
		dirty := b.DirtyIDs()
		pre := dyngraph.TrianglesTouching(g, dirty)
		if _, err := st.Apply(g, b); err != nil {
			t.Fatalf("batch %d: %v", bi, err)
		}
		post := dyngraph.TrianglesTouching(g, dirty)

		ds := make(map[graph.VertexID]bool, len(dirty))
		for _, d := range dirty {
			ds[d] = true
		}
		wantTotal, wantTouch := countTriangles(g, ds)
		if post != wantTouch {
			t.Fatalf("batch %d: TrianglesTouching = %d, naive = %d", bi, post, wantTouch)
		}
		// The incremental identity behind the standing TC path.
		total = total - pre + post
		if total != wantTotal {
			t.Fatalf("batch %d: incremental count %d != naive %d", bi, total, wantTotal)
		}
	}
}

func countTriangles(g *graph.Graph, dirty map[graph.VertexID]bool) (total, touching int64) {
	g.ForEach(func(v *graph.Vertex) bool {
		for i, u := range v.Adj {
			if u < v.ID {
				continue
			}
			vu := g.Vertex(u)
			for _, w := range v.Adj[i+1:] {
				if vu.HasNeighbor(w) {
					total++
					if dirty == nil || dirty[v.ID] || dirty[u] || dirty[w] {
						touching++
					}
				}
			}
		}
		return true
	})
	return
}
