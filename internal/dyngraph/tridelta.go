package dyngraph

import (
	"gminer/internal/graph"
)

// TrianglesTouching counts the triangles of g that contain at least one
// vertex from dirty, each triangle exactly once.
//
// This is the dirty-rooted exploration behind the incremental standing TC
// path: a triangle's count can only change if one of its edges changed,
// and every changed edge has an endpoint in the batch's DirtyIDs set — so
//
//	count(after) = count(before) − touching(before) + touching(after)
//
// evaluated over the same dirty set is exact, at the cost of exploring
// only the 2-hop neighborhoods of dirty vertices instead of the graph.
//
// Deduplication: a triangle with several dirty vertices is counted at its
// minimum dirty vertex only.
func TrianglesTouching(g *graph.Graph, dirty []graph.VertexID) int64 {
	ds := make(map[graph.VertexID]bool, len(dirty))
	for _, d := range dirty {
		if g.Has(d) {
			ds[d] = true
		}
	}
	var count int64
	for d := range ds {
		v := g.Vertex(d)
		adj := v.Adj
		for i, u := range adj {
			if ds[u] && u < d {
				continue // counted at the smaller dirty vertex u
			}
			vu := g.Vertex(u)
			for _, w := range adj[i+1:] { // adjacency sorted → u < w
				if ds[w] && w < d {
					continue
				}
				if vu.HasNeighbor(w) {
					count++
				}
			}
		}
	}
	return count
}
