package qos

import (
	"container/list"
	"sync"
)

// CacheKey identifies one cacheable workload: the resident graph's
// fingerprint and epoch plus the canonical form of the workload spec
// (jobspec.Spec.CacheKey — QoS hints excluded, because tenant, priority
// and deadlines change when a job runs, never what it computes).
//
// Epoch is the graph epoch the result was computed at. The fingerprint of
// a dynamic session already folds the epoch in, but the key carries it
// explicitly too: a cached result can never survive a mutation even if a
// fingerprint is computed lazily or stamped before the epoch advanced.
type CacheKey struct {
	Fingerprint uint64
	Epoch       int64
	Spec        string
}

// CacheStats is the cache's counter snapshot.
type CacheStats struct {
	Hits    int64
	Misses  int64
	Entries int
}

// ResultCache is a bounded LRU of finished results. The value type is
// generic so the package stays independent of the engine; the serving
// layer stores *cluster.Result. Safe for concurrent use.
type ResultCache[V any] struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // front = most recently used
	items  map[CacheKey]*list.Element
	hits   int64
	misses int64
}

type cacheEntry[V any] struct {
	key CacheKey
	val V
}

// NewResultCache returns an LRU holding at most capacity entries
// (capacity < 1 is clamped to 1 — use a nil *ResultCache to disable
// caching entirely; every method is nil-safe and a nil cache never hits).
func NewResultCache[V any](capacity int) *ResultCache[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &ResultCache[V]{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[CacheKey]*list.Element),
	}
}

// Get returns the cached value for k and marks it most recently used.
func (c *ResultCache[V]) Get(k CacheKey) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses++
		return zero, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry[V]).val, true
}

// Put stores v under k, evicting the least recently used entry beyond
// capacity. Re-putting an existing key replaces its value.
func (c *ResultCache[V]) Put(k CacheKey, v V) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*cacheEntry[V]).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&cacheEntry[V]{key: k, val: v})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry[V]).key)
	}
}

// Invalidate drops every entry. The serving layer calls it whenever the
// resident graph changes (reload, mutation epoch) — the fingerprint in
// the key already isolates graphs, so this is belt-and-braces plus
// memory release.
func (c *ResultCache[V]) Invalidate() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[CacheKey]*list.Element)
}

// Stats returns hit/miss counters and the current entry count.
func (c *ResultCache[V]) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: len(c.items)}
}
