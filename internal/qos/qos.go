// Package qos is the serving-grade quality-of-service layer of the job
// server: it decides what a job costs, whose job runs next, and whether
// a job needs to run at all.
//
// Three cooperating pieces, deliberately engine-owned (the Khuzdul
// argument: scheduling policy belongs in a layer the engine controls,
// not in per-application code):
//
//   - Meter: an opMeter-style per-task-type cost meter. Every finished
//     job feeds it the per-phase counts and cumulative exec times the
//     tracer already collects (trace.PhaseSummary), plus its total
//     compute cost; the meter keeps an EWMA cost estimate per app and a
//     running spend per tenant. Estimates price queued work before it
//     runs; spend is what dashboards bill tenants by.
//
//   - FairQueue: a weighted-fair admission queue across tenants using
//     virtual-time scheduling (start-time fair queueing). Each dequeue
//     charges the winning tenant estimatedCost/weight of virtual time,
//     so a hog tenant's backlog cannot starve a light tenant: the light
//     tenant's virtual clock lags and it wins the next slot. Within a
//     tenant, jobs with deadlines dispatch earliest-deadline-first ahead
//     of deadline-less FIFO work. Under pressure the queue sheds the
//     cheapest-to-recompute entry first — dropping cheap work loses the
//     least, because the client can resubmit it for almost nothing.
//
//   - ResultCache: an LRU of finished results keyed by (resident-graph
//     fingerprint, normalized workload spec). Identical repeat queries
//     — the common shape of production read traffic — are answered in
//     O(1), byte-identical to the computed result, without touching the
//     cluster.
//
// The package has no dependency on the cluster engine: costs are plain
// float64 compute-seconds, queue entries are IDs plus hints, and the
// cache is generic over its value type. The serving layer
// (internal/server) owns the wiring: it feeds the meter from job
// results, prices queue entries with meter estimates, and preempts
// over-budget jobs at round boundaries through the engine's cooperative
// cancel path.
package qos

import "errors"

// Sentinel causes for QoS-initiated job terminations. The serving layer
// wraps these into the engine's cancellation error so the API can report
// a distinct terminal status ("preempted", "shed") instead of a generic
// "cancelled".
var (
	// ErrOverBudget marks a job preempted at a round boundary because its
	// measured compute spend exceeded its budget hint.
	ErrOverBudget = errors.New("qos: job exceeded its compute budget")
	// ErrDeadline marks a job stopped (or never started) because its
	// deadline hint expired.
	ErrDeadline = errors.New("qos: job deadline expired")
	// ErrShed marks queued work dropped by load shedding to admit other
	// work under queue pressure.
	ErrShed = errors.New("qos: job shed under queue pressure")
)
