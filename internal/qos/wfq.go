package qos

import (
	"sort"
	"sync"
	"time"
)

// Entry is one queued unit of admission work. Cost is the meter's
// estimate at enqueue time (compute-seconds); Weight is the job's
// priority (≥1, higher = larger share); a zero Deadline means none.
type Entry struct {
	ID       string
	Tenant   string
	Weight   int
	Cost     float64
	Deadline time.Time
}

// tenantQueue is one tenant's backlog plus its virtual clock.
type tenantQueue struct {
	vtime float64
	seq   []uint64 // admission order, parallel to entries
	queue []Entry
}

// FairQueue is a weighted-fair admission queue across tenants (start-time
// fair queueing on virtual time). Pop picks the tenant with the smallest
// virtual clock and charges it Cost/Weight, so tenants share dispatch
// slots proportionally to their weights regardless of how deep any one
// tenant's backlog is. Within a tenant, entries with deadlines dispatch
// earliest-first ahead of deadline-less FIFO work. All methods are safe
// for concurrent use; all tie-breaks are deterministic (tenant name,
// then admission order).
type FairQueue struct {
	mu      sync.Mutex
	tenants map[string]*tenantQueue
	vnow    float64 // virtual clock of the last dispatch
	nextSeq uint64
	size    int
}

// NewFairQueue returns an empty queue.
func NewFairQueue() *FairQueue {
	return &FairQueue{tenants: make(map[string]*tenantQueue)}
}

// Len returns the number of queued entries across all tenants.
func (q *FairQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// Push enqueues one entry. A tenant going from idle to backlogged joins
// at the current virtual time — idle periods never bank credit, which is
// what keeps a returning tenant from monopolizing the next N slots.
func (q *FairQueue) Push(e Entry) {
	if e.Weight < 1 {
		e.Weight = 1
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	t := q.tenants[e.Tenant]
	if t == nil {
		t = &tenantQueue{vtime: q.vnow}
		q.tenants[e.Tenant] = t
	} else if len(t.queue) == 0 && t.vtime < q.vnow {
		t.vtime = q.vnow
	}
	// Insertion sort by (deadline, admission order): deadline-carrying
	// entries first, earliest first; within equal deadlines (incl. the
	// deadline-less tail) strict FIFO.
	seq := q.nextSeq
	q.nextSeq++
	pos := len(t.queue)
	for i := range t.queue {
		if entryBefore(e, seq, t.queue[i], t.seq[i]) {
			pos = i
			break
		}
	}
	t.queue = append(t.queue, Entry{})
	t.seq = append(t.seq, 0)
	copy(t.queue[pos+1:], t.queue[pos:])
	copy(t.seq[pos+1:], t.seq[pos:])
	t.queue[pos] = e
	t.seq[pos] = seq
	q.size++
}

// entryBefore reports whether (a, aSeq) dispatches before (b, bSeq)
// within one tenant's queue.
func entryBefore(a Entry, aSeq uint64, b Entry, bSeq uint64) bool {
	switch {
	case a.Deadline.IsZero() != b.Deadline.IsZero():
		return !a.Deadline.IsZero() // deadlines ahead of FIFO work
	case !a.Deadline.IsZero() && !a.Deadline.Equal(b.Deadline):
		return a.Deadline.Before(b.Deadline)
	default:
		return aSeq < bSeq
	}
}

// Pop dequeues the next entry in weighted-fair order: the head of the
// backlogged tenant with the smallest virtual clock (ties broken by
// tenant name), charging that tenant Cost/Weight of virtual time.
func (q *FairQueue) Pop() (Entry, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var names []string
	for name, t := range q.tenants {
		if len(t.queue) > 0 {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return Entry{}, false
	}
	sort.Strings(names)
	best := names[0]
	for _, name := range names[1:] {
		if q.tenants[name].vtime < q.tenants[best].vtime {
			best = name
		}
	}
	t := q.tenants[best]
	e := t.queue[0]
	t.queue = t.queue[1:]
	t.seq = t.seq[1:]
	q.size--
	q.vnow = t.vtime
	t.vtime += e.Cost / float64(e.Weight)
	if len(t.queue) == 0 {
		// Keep the tenant's clock (it matters if it returns before vnow
		// advances past it) but let an empty long-idle tenant be GC'd
		// once the global clock has overtaken it.
		if t.vtime <= q.vnow {
			delete(q.tenants, best)
		}
	}
	return e, true
}

// Remove deletes the entry with the given ID, wherever it is queued.
// Returns false if no such entry exists. Removal frees the entry's queue
// slot immediately — this is what lets a DELETE of a still-queued job
// return capacity without waiting for the entry to reach the head.
func (q *FairQueue) Remove(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for name, t := range q.tenants {
		for i := range t.queue {
			if t.queue[i].ID == id {
				q.deleteAt(name, t, i)
				return true
			}
		}
	}
	return false
}

// Shed removes and returns the cheapest-to-recompute queued entry (ties:
// the most recently admitted goes first — it has waited the least).
// Returns false on an empty queue.
func (q *FairQueue) Shed() (Entry, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var (
		bestName string
		bestT    *tenantQueue
		bestI    = -1
	)
	for _, name := range q.sortedTenantsLocked() {
		t := q.tenants[name]
		for i := range t.queue {
			if bestI < 0 ||
				t.queue[i].Cost < bestT.queue[bestI].Cost ||
				(t.queue[i].Cost == bestT.queue[bestI].Cost && t.seq[i] > bestT.seq[bestI]) {
				bestName, bestT, bestI = name, t, i
			}
		}
	}
	if bestI < 0 {
		return Entry{}, false
	}
	e := bestT.queue[bestI]
	q.deleteAt(bestName, bestT, bestI)
	return e, true
}

// MinCost returns the smallest estimated cost among queued entries, or
// false on an empty queue. Admission uses it to decide whether incoming
// work is itself the cheapest (reject it) or something queued is (shed).
func (q *FairQueue) MinCost() (float64, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	found := false
	min := 0.0
	for _, t := range q.tenants {
		for i := range t.queue {
			if !found || t.queue[i].Cost < min {
				min, found = t.queue[i].Cost, true
			}
		}
	}
	return min, found
}

// Position returns the 1-based position of the entry within its tenant's
// dispatch order, or 0 if the ID is not queued.
func (q *FairQueue) Position(id string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, t := range q.tenants {
		for i := range t.queue {
			if t.queue[i].ID == id {
				return i + 1
			}
		}
	}
	return 0
}

// PerTenant returns the queued-entry count per tenant.
func (q *FairQueue) PerTenant() map[string]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]int, len(q.tenants))
	for name, t := range q.tenants {
		if len(t.queue) > 0 {
			out[name] = len(t.queue)
		}
	}
	return out
}

// Clear empties the queue (drain path) and returns the removed entries.
func (q *FairQueue) Clear() []Entry {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []Entry
	for _, name := range q.sortedTenantsLocked() {
		out = append(out, q.tenants[name].queue...)
	}
	q.tenants = make(map[string]*tenantQueue)
	q.size = 0
	return out
}

func (q *FairQueue) deleteAt(name string, t *tenantQueue, i int) {
	t.queue = append(t.queue[:i], t.queue[i+1:]...)
	t.seq = append(t.seq[:i], t.seq[i+1:]...)
	q.size--
	if len(t.queue) == 0 && t.vtime <= q.vnow {
		delete(q.tenants, name)
	}
}

func (q *FairQueue) sortedTenantsLocked() []string {
	names := make([]string, 0, len(q.tenants))
	for name := range q.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
