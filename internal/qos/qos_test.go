package qos

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"gminer/internal/trace"
)

func TestMeterEstimateAndSpend(t *testing.T) {
	m := NewMeter()
	if got := m.Estimate("tc"); got != DefaultEstimate {
		t.Fatalf("unseen app estimate: got %g want %g", got, DefaultEstimate)
	}
	m.ObserveJob("tc", "alice", 2.0, nil)
	if got := m.Estimate("tc"); got != 2.0 {
		t.Fatalf("first observation must seed the estimate: got %g", got)
	}
	m.ObserveJob("tc", "alice", 4.0, nil)
	want := 2.0 + estimateAlpha*(4.0-2.0)
	if got := m.Estimate("tc"); math.Abs(got-want) > 1e-9 {
		t.Fatalf("EWMA estimate: got %g want %g", got, want)
	}
	m.ObserveJob("mcf", "bob", 10.0, nil)
	if got := m.TenantSpend("alice"); got != 6.0 {
		t.Fatalf("alice spend: got %g want 6", got)
	}
	if got := m.TenantSpend("bob"); got != 10.0 {
		t.Fatalf("bob spend: got %g want 10", got)
	}
	if got := m.TenantSpend("nobody"); got != 0 {
		t.Fatalf("unknown tenant spend: got %g want 0", got)
	}
}

func TestMeterPhaseAccumulation(t *testing.T) {
	m := NewMeter()
	phases := []trace.PhaseSummary{
		{Metric: "task_round", Component: "executor", Count: 100, Total: 2 * time.Second},
		{Metric: "pull_rtt", Component: "retriever", Count: 40, Total: time.Second},
	}
	m.ObserveJob("gm", "t", 3.0, phases)
	m.ObserveJob("gm", "t", 3.0, phases)
	apps, tenants := m.Snapshot()
	if len(apps) != 1 || apps[0].App != "gm" || apps[0].Jobs != 2 {
		t.Fatalf("snapshot apps: %+v", apps)
	}
	ps := apps[0].Phases["executor/task_round"]
	if ps.Count != 200 || math.Abs(ps.Seconds-4.0) > 1e-9 {
		t.Fatalf("phase accumulation: %+v", ps)
	}
	if len(tenants) != 1 || tenants[0].Tenant != "t" || tenants[0].Spend != 6.0 {
		t.Fatalf("snapshot tenants: %+v", tenants)
	}
}

// TestFairQueueInterleavesTenants: a hog tenant with a deep backlog must
// not starve a light tenant — after the hog's first dispatch, the light
// tenant's entry goes next.
func TestFairQueueInterleavesTenants(t *testing.T) {
	q := NewFairQueue()
	for i := 0; i < 4; i++ {
		q.Push(Entry{ID: fmt.Sprintf("hog-%d", i), Tenant: "hog", Weight: 1, Cost: 1})
	}
	e, ok := q.Pop()
	if !ok || e.ID != "hog-0" {
		t.Fatalf("first pop: %+v", e)
	}
	q.Push(Entry{ID: "light-0", Tenant: "light", Weight: 1, Cost: 1})
	var order []string
	for {
		e, ok := q.Pop()
		if !ok {
			break
		}
		order = append(order, e.ID)
	}
	want := []string{"light-0", "hog-1", "hog-2", "hog-3"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("dispatch order: got %v want %v", order, want)
	}
}

// TestFairQueueWeights: a tenant with weight 2 gets twice the dispatch
// share of a weight-1 tenant at equal cost.
func TestFairQueueWeights(t *testing.T) {
	q := NewFairQueue()
	for i := 0; i < 6; i++ {
		q.Push(Entry{ID: fmt.Sprintf("a-%d", i), Tenant: "a", Weight: 2, Cost: 1})
		q.Push(Entry{ID: fmt.Sprintf("b-%d", i), Tenant: "b", Weight: 1, Cost: 1})
	}
	counts := map[string]int{}
	for i := 0; i < 6; i++ {
		e, _ := q.Pop()
		counts[e.Tenant]++
	}
	// First 6 dispatches: a's virtual clock advances at half b's rate, so
	// a gets 4 slots to b's 2.
	if counts["a"] != 4 || counts["b"] != 2 {
		t.Fatalf("weighted share over 6 dispatches: %v", counts)
	}
}

// TestFairQueueDeterministic: same pushes, same pops — twice.
func TestFairQueueDeterministic(t *testing.T) {
	run := func() []string {
		q := NewFairQueue()
		for i := 0; i < 5; i++ {
			q.Push(Entry{ID: fmt.Sprintf("x-%d", i), Tenant: "x", Weight: 1, Cost: 2})
			q.Push(Entry{ID: fmt.Sprintf("y-%d", i), Tenant: "y", Weight: 3, Cost: 2})
			q.Push(Entry{ID: fmt.Sprintf("z-%d", i), Tenant: "z", Weight: 2, Cost: 1})
		}
		var order []string
		for {
			e, ok := q.Pop()
			if !ok {
				return order
			}
			order = append(order, e.ID)
		}
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("non-deterministic dispatch:\n%v\n%v", a, b)
	}
}

func TestFairQueueDeadlineOrdering(t *testing.T) {
	q := NewFairQueue()
	base := time.Now()
	q.Push(Entry{ID: "fifo-1", Tenant: "t", Weight: 1, Cost: 1})
	q.Push(Entry{ID: "late", Tenant: "t", Weight: 1, Cost: 1, Deadline: base.Add(time.Hour)})
	q.Push(Entry{ID: "soon", Tenant: "t", Weight: 1, Cost: 1, Deadline: base.Add(time.Minute)})
	q.Push(Entry{ID: "fifo-2", Tenant: "t", Weight: 1, Cost: 1})
	var order []string
	for {
		e, ok := q.Pop()
		if !ok {
			break
		}
		order = append(order, e.ID)
	}
	want := []string{"soon", "late", "fifo-1", "fifo-2"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("deadline ordering: got %v want %v", order, want)
	}
}

func TestFairQueueRemoveAndPosition(t *testing.T) {
	q := NewFairQueue()
	q.Push(Entry{ID: "a", Tenant: "t", Weight: 1, Cost: 1})
	q.Push(Entry{ID: "b", Tenant: "t", Weight: 1, Cost: 1})
	q.Push(Entry{ID: "c", Tenant: "t", Weight: 1, Cost: 1})
	if pos := q.Position("b"); pos != 2 {
		t.Fatalf("position of b: got %d want 2", pos)
	}
	if !q.Remove("b") {
		t.Fatal("remove b failed")
	}
	if q.Remove("b") {
		t.Fatal("double remove must report false")
	}
	if q.Len() != 2 {
		t.Fatalf("len after remove: %d", q.Len())
	}
	if pos := q.Position("c"); pos != 2 {
		t.Fatalf("position of c after remove: got %d want 2", pos)
	}
	e, _ := q.Pop()
	if e.ID != "a" {
		t.Fatalf("pop after remove: %s", e.ID)
	}
}

func TestFairQueueShedsCheapestFirst(t *testing.T) {
	q := NewFairQueue()
	q.Push(Entry{ID: "pricey", Tenant: "a", Weight: 1, Cost: 10})
	q.Push(Entry{ID: "cheap-old", Tenant: "b", Weight: 1, Cost: 1})
	q.Push(Entry{ID: "cheap-new", Tenant: "a", Weight: 1, Cost: 1})
	if min, ok := q.MinCost(); !ok || min != 1 {
		t.Fatalf("MinCost: %g %v", min, ok)
	}
	e, ok := q.Shed()
	if !ok || e.ID != "cheap-new" { // equal cost: newest sheds first
		t.Fatalf("first shed: %+v", e)
	}
	e, _ = q.Shed()
	if e.ID != "cheap-old" {
		t.Fatalf("second shed: %+v", e)
	}
	e, _ = q.Shed()
	if e.ID != "pricey" {
		t.Fatalf("third shed: %+v", e)
	}
	if _, ok := q.Shed(); ok {
		t.Fatal("shed on empty queue must report false")
	}
}

func TestFairQueuePerTenantAndClear(t *testing.T) {
	q := NewFairQueue()
	q.Push(Entry{ID: "a1", Tenant: "a", Weight: 1, Cost: 1})
	q.Push(Entry{ID: "a2", Tenant: "a", Weight: 1, Cost: 1})
	q.Push(Entry{ID: "b1", Tenant: "b", Weight: 1, Cost: 1})
	per := q.PerTenant()
	if per["a"] != 2 || per["b"] != 1 {
		t.Fatalf("per tenant: %v", per)
	}
	cleared := q.Clear()
	if len(cleared) != 3 || q.Len() != 0 {
		t.Fatalf("clear: %d entries left %d", len(cleared), q.Len())
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop after clear must report false")
	}
}

// TestFairQueueNoIdleCredit: a tenant that sat idle while others were
// dispatched must rejoin at the current virtual time, not at its stale
// clock — otherwise it would monopolize the next several slots.
func TestFairQueueNoIdleCredit(t *testing.T) {
	q := NewFairQueue()
	// Tenant a runs up its clock.
	for i := 0; i < 3; i++ {
		q.Push(Entry{ID: fmt.Sprintf("a-%d", i), Tenant: "a", Weight: 1, Cost: 1})
	}
	for i := 0; i < 3; i++ {
		q.Pop()
	}
	// b arrives fresh: it must NOT be entitled to 3 back-to-back slots
	// against a's new work — only to alternation from now on.
	q.Push(Entry{ID: "b-0", Tenant: "b", Weight: 1, Cost: 1})
	q.Push(Entry{ID: "b-1", Tenant: "b", Weight: 1, Cost: 1})
	q.Push(Entry{ID: "a-3", Tenant: "a", Weight: 1, Cost: 1})
	e1, _ := q.Pop()
	e2, _ := q.Pop()
	if e1.Tenant == e2.Tenant {
		t.Fatalf("expected alternation after idle rejoin, got %s then %s", e1.ID, e2.ID)
	}
}

func TestResultCacheLRU(t *testing.T) {
	c := NewResultCache[string](2)
	k := func(i int) CacheKey { return CacheKey{Fingerprint: 7, Spec: fmt.Sprintf("s%d", i)} }
	c.Put(k(1), "one")
	c.Put(k(2), "two")
	if v, ok := c.Get(k(1)); !ok || v != "one" {
		t.Fatalf("get 1: %q %v", v, ok)
	}
	c.Put(k(3), "three") // evicts 2 (LRU), not 1 (just touched)
	if _, ok := c.Get(k(2)); ok {
		t.Fatal("entry 2 should have been evicted")
	}
	if v, ok := c.Get(k(1)); !ok || v != "one" {
		t.Fatalf("entry 1 lost: %q %v", v, ok)
	}
	st := c.Stats()
	if st.Entries != 2 || st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// Different fingerprint is a different key even with an equal spec.
	if _, ok := c.Get(CacheKey{Fingerprint: 8, Spec: "s1"}); ok {
		t.Fatal("fingerprint must partition the key space")
	}
	c.Invalidate()
	if c.Stats().Entries != 0 {
		t.Fatal("invalidate left entries behind")
	}
	if _, ok := c.Get(k(1)); ok {
		t.Fatal("get after invalidate must miss")
	}
}

func TestResultCacheNilSafe(t *testing.T) {
	var c *ResultCache[string]
	c.Put(CacheKey{}, "x")
	if _, ok := c.Get(CacheKey{}); ok {
		t.Fatal("nil cache must never hit")
	}
	c.Invalidate()
	if st := c.Stats(); st != (CacheStats{}) {
		t.Fatalf("nil stats: %+v", st)
	}
}

// TestQosRace exercises the meter, queue and cache concurrently for the
// -race job.
func TestQosRace(t *testing.T) {
	m, q, c := NewMeter(), NewFairQueue(), NewResultCache[int](8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", g%2)
			for i := 0; i < 200; i++ {
				m.ObserveJob("tc", tenant, 0.01, nil)
				m.Estimate("tc")
				q.Push(Entry{ID: fmt.Sprintf("%d-%d", g, i), Tenant: tenant, Weight: 1 + g, Cost: 1})
				if i%3 == 0 {
					q.Pop()
				}
				if i%5 == 0 {
					q.Shed()
				}
				key := CacheKey{Fingerprint: uint64(i % 4), Spec: "s"}
				c.Put(key, i)
				c.Get(key)
			}
		}(g)
	}
	wg.Wait()
	m.Snapshot()
	q.Clear()
	c.Stats()
}
