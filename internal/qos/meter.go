package qos

import (
	"sort"
	"sync"

	"gminer/internal/trace"
)

// estimateAlpha is the EWMA smoothing factor for per-app cost estimates:
// heavy enough that a regime change (graph reload, new pattern) re-prices
// an app within a few jobs, light enough that one outlier does not.
const estimateAlpha = 0.3

// DefaultEstimate is the cost assumed for an app the meter has never seen
// finish. Any positive constant works — until the first observation every
// unseen app is priced equally, which degrades weighted-fair scheduling
// to plain fair scheduling, never to starvation.
const DefaultEstimate = 1.0

// PhaseStat is the opMeter cell: how many times a pipeline phase ran for
// one task type and how long it ran cumulatively.
type PhaseStat struct {
	Count   int64
	Seconds float64
}

// appMeter accumulates one task type's (app's) cost profile.
type appMeter struct {
	jobs     int64
	costSum  float64
	estimate float64
	phases   map[string]PhaseStat // "component/metric" → count + time
}

// Meter is the per-task-type cost meter and per-tenant spend ledger.
// All methods are safe for concurrent use.
type Meter struct {
	mu      sync.Mutex
	apps    map[string]*appMeter
	tenants map[string]float64 // completed compute-seconds per tenant
}

// NewMeter returns an empty meter.
func NewMeter() *Meter {
	return &Meter{apps: make(map[string]*appMeter), tenants: make(map[string]float64)}
}

// ObserveJob folds one finished job into the meter: cost is the job's
// total compute spend in seconds (busy thread time summed over workers),
// phases the tracer's per-phase digest. The app's estimate moves by EWMA;
// the tenant's spend grows by cost. Cancelled and preempted jobs should
// be observed too — their partial spend is real spend.
func (m *Meter) ObserveJob(app, tenant string, cost float64, phases []trace.PhaseSummary) {
	if cost < 0 {
		cost = 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	am := m.apps[app]
	if am == nil {
		am = &appMeter{estimate: cost, phases: make(map[string]PhaseStat)}
		m.apps[app] = am
	} else {
		am.estimate += estimateAlpha * (cost - am.estimate)
	}
	am.jobs++
	am.costSum += cost
	for _, p := range phases {
		key := p.Component + "/" + p.Metric
		ps := am.phases[key]
		ps.Count += p.Count
		ps.Seconds += p.Total.Seconds()
		am.phases[key] = ps
	}
	m.tenants[tenant] += cost
}

// Estimate prices one job of the given app in compute-seconds. Unseen
// apps cost DefaultEstimate.
func (m *Meter) Estimate(app string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if am := m.apps[app]; am != nil {
		if am.estimate > 0 {
			return am.estimate
		}
	}
	return DefaultEstimate
}

// TenantSpend returns one tenant's completed compute spend in seconds.
func (m *Meter) TenantSpend(tenant string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tenants[tenant]
}

// AppCost is one task type's metered profile.
type AppCost struct {
	App      string
	Jobs     int64
	CostSum  float64
	Estimate float64
	Phases   map[string]PhaseStat
}

// TenantSpendEntry is one tenant's ledger row.
type TenantSpendEntry struct {
	Tenant string
	Spend  float64
}

// Snapshot returns the meter's state sorted by app and tenant name, for
// the Prometheus exposition and tests.
func (m *Meter) Snapshot() (apps []AppCost, tenants []TenantSpendEntry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, am := range m.apps {
		phases := make(map[string]PhaseStat, len(am.phases))
		for k, v := range am.phases {
			phases[k] = v
		}
		apps = append(apps, AppCost{
			App: name, Jobs: am.jobs, CostSum: am.costSum,
			Estimate: am.estimate, Phases: phases,
		})
	}
	for name, spend := range m.tenants {
		tenants = append(tenants, TenantSpendEntry{Tenant: name, Spend: spend})
	}
	sort.Slice(apps, func(i, j int) bool { return apps[i].App < apps[j].App })
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].Tenant < tenants[j].Tenant })
	return apps, tenants
}
