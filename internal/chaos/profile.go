package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseProfile builds a Profile from a CLI spec. Named profiles:
//
//	off        — zero profile (inject nothing)
//	default    — Default(seed)
//	heavy      — Heavy(seed)
//	heartbeat  — HeartbeatFlaky(seed), for a worker's heartbeat path
//
// Anything else is a comma-separated key=value list:
//
//	drop=0.05,dup=0.01,delay=0.2,delaymin=200us,delaymax=2ms,reorder=0.02
//	crash=1@15ms           crash worker 1 at t=15ms (failure-detector recovery)
//	crash=1@15ms+40ms      ... and respawn it 40ms after the kill
//	partition=0@30ms-45ms  black-hole node 0 between t=30ms and t=45ms
//
// crash= and partition= may repeat. The seed argument is applied to the
// returned profile in all cases.
func ParseProfile(spec string, seed uint64) (Profile, error) {
	switch strings.ToLower(strings.TrimSpace(spec)) {
	case "", "off", "none":
		return Profile{Seed: seed}, nil
	case "default", "mild":
		return Default(seed), nil
	case "heavy":
		return Heavy(seed), nil
	case "heartbeat", "heartbeat-flaky":
		return HeartbeatFlaky(seed), nil
	}
	p := Profile{Seed: seed}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Profile{}, fmt.Errorf("chaos: bad profile field %q (want key=value)", field)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		var err error
		switch key {
		case "drop":
			p.Drop, err = parseRate(val)
		case "dup":
			p.Dup, err = parseRate(val)
		case "delay":
			p.Delay, err = parseRate(val)
		case "reorder":
			p.Reorder, err = parseRate(val)
		case "delaymin":
			p.DelayMin, err = time.ParseDuration(val)
		case "delaymax":
			p.DelayMax, err = time.ParseDuration(val)
		case "crash":
			var c Crash
			c, err = parseCrash(val)
			p.Crashes = append(p.Crashes, c)
		case "partition":
			var w Window
			w, err = parseWindow(val)
			p.Partitions = append(p.Partitions, w)
		default:
			return Profile{}, fmt.Errorf("chaos: unknown profile key %q", key)
		}
		if err != nil {
			return Profile{}, fmt.Errorf("chaos: field %q: %w", field, err)
		}
	}
	return p, nil
}

func parseRate(s string) (float64, error) {
	x, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if x < 0 || x > 1 {
		return 0, fmt.Errorf("rate %v outside [0, 1]", x)
	}
	return x, nil
}

// parseCrash parses NODE@AT or NODE@AT+RECOVER.
func parseCrash(s string) (Crash, error) {
	nodeStr, rest, ok := strings.Cut(s, "@")
	if !ok {
		return Crash{}, fmt.Errorf("want NODE@AT[+RECOVER], got %q", s)
	}
	node, err := strconv.Atoi(nodeStr)
	if err != nil || node < 0 {
		return Crash{}, fmt.Errorf("bad node %q", nodeStr)
	}
	atStr, recStr, hasRec := strings.Cut(rest, "+")
	at, err := time.ParseDuration(atStr)
	if err != nil {
		return Crash{}, err
	}
	c := Crash{Node: node, At: at}
	if hasRec {
		if c.RecoverAfter, err = time.ParseDuration(recStr); err != nil {
			return Crash{}, err
		}
	}
	return c, nil
}

// parseWindow parses NODE@FROM-TO.
func parseWindow(s string) (Window, error) {
	nodeStr, rest, ok := strings.Cut(s, "@")
	if !ok {
		return Window{}, fmt.Errorf("want NODE@FROM-TO, got %q", s)
	}
	node, err := strconv.Atoi(nodeStr)
	if err != nil || node < 0 {
		return Window{}, fmt.Errorf("bad node %q", nodeStr)
	}
	fromStr, toStr, ok := strings.Cut(rest, "-")
	if !ok {
		return Window{}, fmt.Errorf("want NODE@FROM-TO, got %q", s)
	}
	from, err := time.ParseDuration(fromStr)
	if err != nil {
		return Window{}, err
	}
	to, err := time.ParseDuration(toStr)
	if err != nil {
		return Window{}, err
	}
	if to <= from {
		return Window{}, fmt.Errorf("empty window %v-%v", from, to)
	}
	return Window{Node: node, From: from, To: to}, nil
}

// String renders stats for the CLI exit summary.
func (s Stats) String() string {
	return fmt.Sprintf("%d sends: %d dropped, %d delayed, %d duplicated, %d reordered, %d partitioned",
		s.Sends, s.Drops, s.Delays, s.Dups, s.Reorders, s.Partitions)
}
