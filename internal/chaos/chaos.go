// Package chaos is a deterministic fault-injection layer for the
// transport: Wrap decorates any transport.Endpoint so that sends are
// dropped, delayed, duplicated, reordered or black-holed during node
// partition windows, according to a seeded Profile. Every decision comes
// from a per-node RNG derived from Profile.Seed, so a failure run is
// reproducible given the same seed and workload.
//
// The paper's fault-tolerance story (§7: "we do not need to checkpoint
// any message") and the stealing protocol (§6.2) both assume the engine
// survives message loss to crashed workers; this package exists to
// exercise those paths for real. The cluster integrates it through
// Config.Chaos: every endpoint (workers + master) is wrapped, crash
// entries in the profile are executed against live workers, and each
// injected fault is recorded as an EvFaultInjected trace event so chaos
// runs show up in the Chrome/Prometheus sinks.
package chaos

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"gminer/internal/trace"
	"gminer/internal/transport"
)

// Kind labels one injected fault; it is the high byte of the
// EvFaultInjected trace argument and the Stats index.
type Kind uint8

const (
	KindDrop Kind = iota
	KindDelay
	KindDup
	KindReorder
	KindPartition

	numKinds
)

// String returns the snake_case fault name.
func (k Kind) String() string {
	switch k {
	case KindDrop:
		return "drop"
	case KindDelay:
		return "delay"
	case KindDup:
		return "dup"
	case KindReorder:
		return "reorder"
	case KindPartition:
		return "partition"
	}
	return "unknown"
}

// Window makes node Node unreachable (all messages to and from it are
// dropped) between From and To, measured from Controller.Begin.
type Window struct {
	Node     int
	From, To time.Duration
}

// Crash kills worker Node at time At (measured from job start). The
// cluster executes crashes by abandoning the worker's state and wiping
// its mailbox, exactly like a machine failure; recovery re-seeds the
// worker from its last checkpoint. RecoverAfter > 0 respawns the worker
// after that delay; 0 leaves recovery to the master's failure detector.
type Crash struct {
	Node         int
	At           time.Duration
	RecoverAfter time.Duration
}

// Profile describes what to inject. Rates are per-message probabilities
// in [0, 1]; delayed messages wait a uniform duration in
// [DelayMin, DelayMax]. The zero Profile injects nothing.
type Profile struct {
	// Seed drives every injection decision. Two runs with the same seed,
	// workload and message sequence inject the same faults.
	Seed uint64

	Drop    float64 // silently lose the message
	Delay   float64 // hold the message for a random duration
	Dup     float64 // deliver the message twice
	Reorder float64 // hold the message so later sends overtake it

	DelayMin time.Duration
	DelayMax time.Duration

	// Partitions are node-unreachability windows.
	Partitions []Window
	// Crashes are worker kill (+ optional recover) events, executed by
	// the cluster runtime, not by the endpoint wrapper.
	Crashes []Crash
}

// Default is the profile used by the chaos CI soak: light loss, frequent
// small delays, occasional duplication and reordering, and one worker
// crash mid-job (worker 1 at 15ms, recovered from its last checkpoint).
func Default(seed uint64) Profile {
	return Profile{
		Seed:     seed,
		Drop:     0.03,
		Delay:    0.15,
		Dup:      0.02,
		Reorder:  0.03,
		DelayMin: 100 * time.Microsecond,
		DelayMax: 1500 * time.Microsecond,
		Crashes:  []Crash{{Node: 1, At: 15 * time.Millisecond}},
	}
}

// Heavy is the nightly-soak profile: an order of magnitude more loss and
// delay, two crash events and a partition window.
func Heavy(seed uint64) Profile {
	return Profile{
		Seed:     seed,
		Drop:     0.10,
		Delay:    0.30,
		Dup:      0.05,
		Reorder:  0.10,
		DelayMin: 200 * time.Microsecond,
		DelayMax: 4 * time.Millisecond,
		Partitions: []Window{
			{Node: 0, From: 30 * time.Millisecond, To: 45 * time.Millisecond},
		},
		Crashes: []Crash{
			{Node: 1, At: 15 * time.Millisecond},
			{Node: 2, At: 60 * time.Millisecond},
		},
	}
}

// HeartbeatFlaky is the fencing-soak profile: aimed at a worker's
// heartbeat path only (WorkerOptions.HeartbeatChaos), it loses most
// beats and delays the rest well past typical failure timeouts. The
// worker stays alive and mining — only its liveness signal degrades —
// which is exactly the split-brain setup generation fencing must
// survive: the coordinator reclaims the "silent" slot, and the delayed
// beats that later trickle in must be refused, not re-admit the zombie.
func HeartbeatFlaky(seed uint64) Profile {
	return Profile{
		Seed:     seed,
		Drop:     0.95,
		Delay:    0.05,
		DelayMin: 200 * time.Millisecond,
		DelayMax: 600 * time.Millisecond,
	}
}

// Active reports whether the profile injects anything at all.
func (p Profile) Active() bool {
	return p.Drop > 0 || p.Delay > 0 || p.Dup > 0 || p.Reorder > 0 ||
		len(p.Partitions) > 0 || len(p.Crashes) > 0
}

// MaxDelay is the longest time any single message can be held back
// (delay or reorder hold). Termination detectors must widen their
// stability windows by at least this much.
func (p Profile) MaxDelay() time.Duration {
	if p.Delay <= 0 && p.Reorder <= 0 {
		return 0
	}
	return p.delayMax()
}

func (p Profile) delayMax() time.Duration {
	if p.DelayMax > 0 {
		return p.DelayMax
	}
	return 2 * time.Millisecond
}

func (p Profile) delayMin() time.Duration {
	if p.DelayMin > 0 && p.DelayMin <= p.delayMax() {
		return p.DelayMin
	}
	return 0
}

// Stats counts delivered and injected-fault messages across all wrapped
// endpoints of one Controller.
type Stats struct {
	Sends      int64 // messages offered to wrapped endpoints
	Drops      int64
	Delays     int64
	Dups       int64
	Reorders   int64
	Partitions int64 // messages black-holed by partition windows
}

// Injected is the total number of injected faults.
func (s Stats) Injected() int64 {
	return s.Drops + s.Delays + s.Dups + s.Reorders + s.Partitions
}

// Controller owns one profile instance: the shared clock for windows and
// crashes, the fault counters, and the tracer faults are reported to.
// A nil *Controller is inert (methods are nil-safe).
type Controller struct {
	p      Profile
	exempt [256]atomic.Bool
	tracer atomic.Pointer[trace.Tracer]

	startMu sync.Mutex
	start   time.Time

	counts [numKinds]atomic.Int64
	sends  atomic.Int64
}

// New builds a controller for p.
func New(p Profile) *Controller { return &Controller{p: p} }

// Wrap is the one-shot convenience form: decorate ep with a fresh
// controller for p.
func Wrap(ep transport.Endpoint, p Profile) transport.Endpoint {
	return New(p).Wrap(ep)
}

// Profile returns the controller's profile (zero Profile for nil).
func (c *Controller) Profile() Profile {
	if c == nil {
		return Profile{}
	}
	return c.p
}

// MaxDelay is Profile.MaxDelay, nil-safe.
func (c *Controller) MaxDelay() time.Duration {
	if c == nil {
		return 0
	}
	return c.p.MaxDelay()
}

// Crashes returns the profile's crash schedule, nil-safe.
func (c *Controller) Crashes() []Crash {
	if c == nil {
		return nil
	}
	return c.p.Crashes
}

// Exempt excludes message types from all injection. The cluster exempts
// task-migration payloads: a migrated task lives nowhere else, so the
// protocol (like the paper's) assumes reliable delivery for that one
// message; everything else has a retry or is idempotent.
func (c *Controller) Exempt(types ...uint8) *Controller {
	if c == nil {
		return nil
	}
	for _, t := range types {
		c.exempt[t].Store(true)
	}
	return c
}

// SetTracer attaches the tracer EvFaultInjected events are recorded to.
func (c *Controller) SetTracer(t *trace.Tracer) {
	if c != nil {
		c.tracer.Store(t)
	}
}

// Begin marks t0 for partition windows and crash times. Idempotent; the
// cluster calls it right before the workers start. Wrap calls it lazily
// if the caller never does.
func (c *Controller) Begin() {
	if c == nil {
		return
	}
	c.startMu.Lock()
	if c.start.IsZero() {
		c.start = time.Now()
	}
	c.startMu.Unlock()
}

func (c *Controller) sinceStart() time.Duration {
	c.startMu.Lock()
	s := c.start
	c.startMu.Unlock()
	if s.IsZero() {
		return 0
	}
	return time.Since(s)
}

// Stats returns the running fault counters (zero for nil).
func (c *Controller) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Sends:      c.sends.Load(),
		Drops:      c.counts[KindDrop].Load(),
		Delays:     c.counts[KindDelay].Load(),
		Dups:       c.counts[KindDup].Load(),
		Reorders:   c.counts[KindReorder].Load(),
		Partitions: c.counts[KindPartition].Load(),
	}
}

// Wrap decorates ep with the controller's fault profile. The wrapper
// owns its own RNG stream, derived from (Profile.Seed, ep.Node()), so
// per-node decision sequences do not depend on cross-node interleaving.
// Recv, Node and Close pass through. Nil controller returns ep as is.
func (c *Controller) Wrap(ep transport.Endpoint) transport.Endpoint {
	if c == nil || !c.p.Active() {
		return ep
	}
	c.Begin()
	return &endpoint{
		inner: ep,
		c:     c,
		rng:   rand.New(rand.NewSource(int64(splitmix(c.p.Seed, uint64(ep.Node()))))),
	}
}

// splitmix64 finalizer: decorrelates (seed, node) pairs into RNG seeds.
func splitmix(seed, node uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15*(node+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

type endpoint struct {
	inner transport.Endpoint
	c     *Controller

	mu  sync.Mutex
	rng *rand.Rand
}

// decision is one sampled injection plan for a message.
type decision struct {
	kind Kind
	hold time.Duration // for delay/reorder
	hit  bool          // a fault applies to this message
}

// Send applies the fault profile and forwards to the inner endpoint.
// Dropped messages return nil: a lossy network gives the sender no
// error, which is exactly what the retry paths must survive.
func (e *endpoint) Send(to int, typ uint8, payload []byte) error {
	c := e.c
	c.sends.Add(1)
	if c.exempt[typ].Load() {
		return e.inner.Send(to, typ, payload)
	}
	now := c.sinceStart()
	for _, w := range c.p.Partitions {
		if (w.Node == to || w.Node == e.inner.Node()) && now >= w.From && now < w.To {
			c.inject(e.inner.Node(), KindPartition, typ)
			return nil
		}
	}
	d := e.sample()
	if !d.hit {
		return e.inner.Send(to, typ, payload)
	}
	switch d.kind {
	case KindDrop:
		c.inject(e.inner.Node(), KindDrop, typ)
		return nil
	case KindDup:
		c.inject(e.inner.Node(), KindDup, typ)
		if err := e.inner.Send(to, typ, payload); err != nil {
			return err
		}
		return e.inner.Send(to, typ, payload)
	case KindDelay, KindReorder:
		c.inject(e.inner.Node(), d.kind, typ)
		// Senders reuse encode buffers, so the payload must be copied
		// before the deferred delivery.
		var cp []byte
		if len(payload) > 0 {
			cp = append([]byte(nil), payload...)
		}
		inner := e.inner
		time.AfterFunc(d.hold, func() {
			_ = inner.Send(to, typ, cp)
		})
		return nil
	}
	return e.inner.Send(to, typ, payload)
}

// sample draws one injection decision. The fault classes are evaluated
// in a fixed order (drop, dup, delay, reorder) against a single uniform
// draw, so their rates are exact and mutually exclusive.
func (e *endpoint) sample() decision {
	p := e.c.p
	e.mu.Lock()
	u := e.rng.Float64()
	var hold time.Duration
	lo, hi := p.delayMin(), p.delayMax()
	if hi > lo {
		hold = lo + time.Duration(e.rng.Int63n(int64(hi-lo)))
	} else {
		hold = hi
	}
	e.mu.Unlock()

	switch {
	case u < p.Drop:
		return decision{kind: KindDrop, hit: true}
	case u < p.Drop+p.Dup:
		return decision{kind: KindDup, hit: true}
	case u < p.Drop+p.Dup+p.Delay:
		return decision{kind: KindDelay, hold: hold, hit: true}
	case u < p.Drop+p.Dup+p.Delay+p.Reorder:
		return decision{kind: KindReorder, hold: hold, hit: true}
	}
	return decision{}
}

func (c *Controller) inject(node int, kind Kind, typ uint8) {
	c.counts[kind].Add(1)
	if t := c.tracer.Load(); t.Enabled() {
		t.Handle(node, trace.CompNet).Event(trace.EvFaultInjected, uint64(kind)<<8|uint64(typ))
	}
}

func (e *endpoint) Recv() (transport.Message, bool) { return e.inner.Recv() }

func (e *endpoint) RecvTimeout(d time.Duration) (transport.Message, bool) {
	return e.inner.RecvTimeout(d)
}

func (e *endpoint) Node() int { return e.inner.Node() }

func (e *endpoint) Close() error { return e.inner.Close() }
