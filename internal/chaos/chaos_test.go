package chaos

import (
	"testing"
	"time"

	"gminer/internal/trace"
	"gminer/internal/transport"
)

func twoNodeNet(t *testing.T) *transport.LocalNetwork {
	t.Helper()
	net := transport.NewLocal(transport.LocalConfig{Nodes: 2})
	t.Cleanup(net.Close)
	return net
}

// drain receives until the box goes quiet for `idle` and returns the
// payload bytes seen, in arrival order.
func drain(ep transport.Endpoint, idle time.Duration) [][]byte {
	var got [][]byte
	for {
		m, ok := ep.RecvTimeout(idle)
		if !ok {
			return got
		}
		got = append(got, m.Payload)
	}
}

func TestZeroProfilePassesThrough(t *testing.T) {
	net := twoNodeNet(t)
	c := New(Profile{})
	ep := c.Wrap(net.Endpoint(0))
	if _, wrapped := ep.(*endpoint); wrapped {
		t.Fatal("inactive profile should not wrap the endpoint")
	}
	if err := ep.Send(1, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := drain(net.Endpoint(1), 20*time.Millisecond); len(got) != 1 {
		t.Fatalf("got %d messages, want 1", len(got))
	}
}

func TestDropRateIsApproximatelyHonored(t *testing.T) {
	net := twoNodeNet(t)
	c := New(Profile{Seed: 1, Drop: 0.25})
	ep := c.Wrap(net.Endpoint(0))
	const n = 4000
	for i := 0; i < n; i++ {
		_ = ep.Send(1, 1, []byte{byte(i)})
	}
	got := drain(net.Endpoint(1), 20*time.Millisecond)
	st := c.Stats()
	if st.Sends != n {
		t.Fatalf("sends=%d want %d", st.Sends, n)
	}
	if int64(len(got))+st.Drops != n {
		t.Fatalf("delivered %d + dropped %d != %d", len(got), st.Drops, n)
	}
	// 4000 Bernoulli(0.25) trials: expect ~1000, allow a wide band.
	if st.Drops < 800 || st.Drops > 1200 {
		t.Fatalf("drops=%d, want ≈1000", st.Drops)
	}
}

func TestSameSeedSameFaultSequence(t *testing.T) {
	run := func() []int {
		net := transport.NewLocal(transport.LocalConfig{Nodes: 2})
		defer net.Close()
		c := New(Profile{Seed: 99, Drop: 0.3})
		ep := c.Wrap(net.Endpoint(0))
		var delivered []int
		for i := 0; i < 200; i++ {
			_ = ep.Send(1, 1, []byte{byte(i)})
		}
		for _, p := range drain(net.Endpoint(1), 20*time.Millisecond) {
			delivered = append(delivered, int(p[0]))
		}
		return delivered
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestDuplicationDeliversTwice(t *testing.T) {
	net := twoNodeNet(t)
	c := New(Profile{Seed: 5, Dup: 1})
	ep := c.Wrap(net.Endpoint(0))
	if err := ep.Send(1, 1, []byte("m")); err != nil {
		t.Fatal(err)
	}
	if got := drain(net.Endpoint(1), 20*time.Millisecond); len(got) != 2 {
		t.Fatalf("got %d copies, want 2", len(got))
	}
	if c.Stats().Dups != 1 {
		t.Fatalf("dups=%d", c.Stats().Dups)
	}
}

func TestDelayHoldsAndStillDelivers(t *testing.T) {
	net := twoNodeNet(t)
	c := New(Profile{Seed: 7, Delay: 1, DelayMin: 5 * time.Millisecond, DelayMax: 10 * time.Millisecond})
	ep := c.Wrap(net.Endpoint(0))
	start := time.Now()
	_ = ep.Send(1, 1, []byte("late"))
	m, ok := net.Endpoint(1).RecvTimeout(time.Second)
	if !ok {
		t.Fatal("delayed message never delivered")
	}
	if since := time.Since(start); since < 4*time.Millisecond {
		t.Fatalf("message arrived after %v, expected ≥5ms hold", since)
	}
	if string(m.Payload) != "late" {
		t.Fatalf("payload %q", m.Payload)
	}
}

func TestDelayedPayloadIsCopied(t *testing.T) {
	net := twoNodeNet(t)
	c := New(Profile{Seed: 7, Delay: 1, DelayMin: 5 * time.Millisecond, DelayMax: 10 * time.Millisecond})
	ep := c.Wrap(net.Endpoint(0))
	buf := []byte("good")
	_ = ep.Send(1, 1, buf)
	copy(buf, "evil") // sender reuses its encode buffer immediately
	m, ok := net.Endpoint(1).RecvTimeout(time.Second)
	if !ok || string(m.Payload) != "good" {
		t.Fatalf("delayed payload corrupted: %q ok=%v", m.Payload, ok)
	}
}

func TestPartitionWindowBlackholes(t *testing.T) {
	net := twoNodeNet(t)
	c := New(Profile{Seed: 3, Partitions: []Window{{Node: 1, From: 0, To: 50 * time.Millisecond}}})
	ep := c.Wrap(net.Endpoint(0))
	_ = ep.Send(1, 1, []byte("lost"))
	if got := drain(net.Endpoint(1), 10*time.Millisecond); len(got) != 0 {
		t.Fatalf("partitioned node received %d messages", len(got))
	}
	if c.Stats().Partitions != 1 {
		t.Fatalf("partitions=%d", c.Stats().Partitions)
	}
	// After the window closes, traffic flows again.
	time.Sleep(55 * time.Millisecond)
	_ = ep.Send(1, 1, []byte("ok"))
	if got := drain(net.Endpoint(1), 100*time.Millisecond); len(got) != 1 {
		t.Fatalf("post-window delivery failed: %d messages", len(got))
	}
}

func TestExemptTypesAreNeverFaulted(t *testing.T) {
	net := twoNodeNet(t)
	c := New(Profile{Seed: 11, Drop: 1}).Exempt(6)
	ep := c.Wrap(net.Endpoint(0))
	for i := 0; i < 50; i++ {
		_ = ep.Send(1, 6, []byte{byte(i)})
	}
	if got := drain(net.Endpoint(1), 20*time.Millisecond); len(got) != 50 {
		t.Fatalf("exempt type lost messages: %d/50 delivered", len(got))
	}
	if d := c.Stats().Drops; d != 0 {
		t.Fatalf("drops=%d on an exempt type", d)
	}
}

func TestFaultsAreTraced(t *testing.T) {
	net := twoNodeNet(t)
	c := New(Profile{Seed: 13, Drop: 1})
	tr := trace.New(2, 64).EnableEvents()
	c.SetTracer(tr)
	ep := c.Wrap(net.Endpoint(0))
	_ = ep.Send(1, 9, nil)
	if n := tr.EventCount(trace.EvFaultInjected); n != 1 {
		t.Fatalf("EvFaultInjected count=%d", n)
	}
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Type != trace.EvFaultInjected {
		t.Fatalf("events: %+v", evs)
	}
	if kind, typ := Kind(evs[0].Arg>>8), uint8(evs[0].Arg&0xff); kind != KindDrop || typ != 9 {
		t.Fatalf("arg decodes to kind=%v typ=%d", kind, typ)
	}
}

func TestParseProfileNamedAndCustom(t *testing.T) {
	p, err := ParseProfile("default", 42)
	if err != nil || !p.Active() || p.Seed != 42 || len(p.Crashes) != 1 {
		t.Fatalf("default: %+v err=%v", p, err)
	}
	if p, err = ParseProfile("off", 1); err != nil || p.Active() {
		t.Fatalf("off: %+v err=%v", p, err)
	}
	p, err = ParseProfile("drop=0.1,delay=0.2,delaymin=1ms,delaymax=5ms,crash=2@10ms+20ms,partition=0@5ms-9ms", 7)
	if err != nil {
		t.Fatal(err)
	}
	if p.Drop != 0.1 || p.Delay != 0.2 || p.DelayMin != time.Millisecond || p.DelayMax != 5*time.Millisecond {
		t.Fatalf("rates: %+v", p)
	}
	if len(p.Crashes) != 1 || p.Crashes[0] != (Crash{Node: 2, At: 10 * time.Millisecond, RecoverAfter: 20 * time.Millisecond}) {
		t.Fatalf("crash: %+v", p.Crashes)
	}
	if len(p.Partitions) != 1 || p.Partitions[0] != (Window{Node: 0, From: 5 * time.Millisecond, To: 9 * time.Millisecond}) {
		t.Fatalf("partition: %+v", p.Partitions)
	}
	for _, bad := range []string{"drop=2", "nope=1", "crash=x@1ms", "partition=0@9ms-5ms", "drop"} {
		if _, err := ParseProfile(bad, 0); err == nil {
			t.Fatalf("ParseProfile(%q) accepted invalid spec", bad)
		}
	}
}

func TestMaxDelay(t *testing.T) {
	if d := (Profile{}).MaxDelay(); d != 0 {
		t.Fatalf("zero profile MaxDelay=%v", d)
	}
	p := Profile{Delay: 0.1, DelayMax: 7 * time.Millisecond}
	if d := p.MaxDelay(); d != 7*time.Millisecond {
		t.Fatalf("MaxDelay=%v", d)
	}
	var nilC *Controller
	if nilC.MaxDelay() != 0 || nilC.Stats() != (Stats{}) || nilC.Crashes() != nil {
		t.Fatal("nil controller not inert")
	}
}
