// Package metrics collects the resource counters the paper reports:
// computing-thread busy time (→ CPU utilization, Figs. 5–6 and Tables 1/4),
// network bytes (Tables 1/4, Fig. 11), disk I/O bytes (Figs. 5–6) and a
// live-memory estimate (peak memory columns).
//
// All counters are lock-free atomics so the hot paths (executor loop,
// transport send) stay cheap. A Sampler snapshots the counters on a fixed
// period to produce the utilization timelines of Figures 5 and 6.
package metrics

import (
	"sync"
	"sync/atomic"
	"time"
)

// Counters aggregates resource usage for one engine run (one worker or a
// whole cluster, depending on how it is shared).
type Counters struct {
	// busyNanos accumulates computing-thread busy time.
	busyNanos atomic.Int64
	// netBytes accumulates payload bytes crossing the (possibly simulated)
	// network; netMsgs counts messages.
	netBytes atomic.Int64
	netMsgs  atomic.Int64
	// diskRead/diskWrite accumulate task-store spill traffic.
	diskRead  atomic.Int64
	diskWrite atomic.Int64
	// liveBytes tracks the current estimated live memory; peakBytes its max.
	liveBytes atomic.Int64
	peakBytes atomic.Int64
	// tasksDone counts completed (dead) tasks; results counts emitted records.
	tasksDone atomic.Int64
	results   atomic.Int64
	// cacheHits / cacheMisses for the RCV cache.
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	// stolen counts tasks migrated by work stealing.
	stolen atomic.Int64
	// ckptFails counts checkpoint epochs a worker failed to snapshot or
	// persist (each one degraded durability and abandoned the epoch).
	ckptFails atomic.Int64
}

// AddBusy records d of computing-thread busy time.
func (c *Counters) AddBusy(d time.Duration) { c.busyNanos.Add(int64(d)) }

// AddNet records one network message of n payload bytes.
func (c *Counters) AddNet(n int64) {
	c.netBytes.Add(n)
	c.netMsgs.Add(1)
}

// AddDiskRead / AddDiskWrite record spill traffic.
func (c *Counters) AddDiskRead(n int64)  { c.diskRead.Add(n) }
func (c *Counters) AddDiskWrite(n int64) { c.diskWrite.Add(n) }

// AddLive adjusts the live-memory estimate by delta (may be negative) and
// updates the peak.
func (c *Counters) AddLive(delta int64) {
	v := c.liveBytes.Add(delta)
	for {
		p := c.peakBytes.Load()
		if v <= p || c.peakBytes.CompareAndSwap(p, v) {
			return
		}
	}
}

// ObserveLive sets the live-memory estimate to an absolute value (used by
// components that recompute their footprint periodically) and updates the
// peak.
func (c *Counters) ObserveLive(v int64) {
	c.liveBytes.Store(v)
	for {
		p := c.peakBytes.Load()
		if v <= p || c.peakBytes.CompareAndSwap(p, v) {
			return
		}
	}
}

// TaskDone records task completions; EmitResult records output records.
func (c *Counters) TaskDone()   { c.tasksDone.Add(1) }
func (c *Counters) EmitResult() { c.results.Add(1) }

// CacheHit / CacheMiss record RCV cache outcomes.
func (c *Counters) CacheHit()  { c.cacheHits.Add(1) }
func (c *Counters) CacheMiss() { c.cacheMisses.Add(1) }

// TaskStolen records a migrated task.
func (c *Counters) TaskStolen() { c.stolen.Add(1) }

// CheckpointFailed records a failed checkpoint attempt.
func (c *Counters) CheckpointFailed() { c.ckptFails.Add(1) }

// Snapshot is a point-in-time copy of all counters.
type Snapshot struct {
	Busy        time.Duration
	NetBytes    int64
	NetMsgs     int64
	DiskRead    int64
	DiskWrite   int64
	LiveBytes   int64
	PeakBytes   int64
	TasksDone   int64
	Results     int64
	CacheHits   int64
	CacheMisses int64
	Stolen      int64
	CkptFails   int64
}

// Snapshot returns the current counter values.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		Busy:        time.Duration(c.busyNanos.Load()),
		NetBytes:    c.netBytes.Load(),
		NetMsgs:     c.netMsgs.Load(),
		DiskRead:    c.diskRead.Load(),
		DiskWrite:   c.diskWrite.Load(),
		LiveBytes:   c.liveBytes.Load(),
		PeakBytes:   c.peakBytes.Load(),
		TasksDone:   c.tasksDone.Load(),
		Results:     c.results.Load(),
		CacheHits:   c.cacheHits.Load(),
		CacheMisses: c.cacheMisses.Load(),
		Stolen:      c.stolen.Load(),
		CkptFails:   c.ckptFails.Load(),
	}
}

// Add returns the field-wise sum of two snapshots (peaks and lives sum,
// which is the right semantics for aggregate cluster memory).
func (s Snapshot) Add(o Snapshot) Snapshot {
	return Snapshot{
		Busy:        s.Busy + o.Busy,
		NetBytes:    s.NetBytes + o.NetBytes,
		NetMsgs:     s.NetMsgs + o.NetMsgs,
		DiskRead:    s.DiskRead + o.DiskRead,
		DiskWrite:   s.DiskWrite + o.DiskWrite,
		LiveBytes:   s.LiveBytes + o.LiveBytes,
		PeakBytes:   s.PeakBytes + o.PeakBytes,
		TasksDone:   s.TasksDone + o.TasksDone,
		Results:     s.Results + o.Results,
		CacheHits:   s.CacheHits + o.CacheHits,
		CacheMisses: s.CacheMisses + o.CacheMisses,
		Stolen:      s.Stolen + o.Stolen,
		CkptFails:   s.CkptFails + o.CkptFails,
	}
}

// CacheHitRate returns hits / (hits+misses), or 0 with no lookups.
func (s Snapshot) CacheHitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// CostSeconds is the snapshot's compute spend in the serving layer's cost
// unit: busy computing-thread seconds. The QoS meter prices jobs in it,
// budgets are expressed in it, and tenant spend ledgers sum it.
func (s Snapshot) CostSeconds() float64 { return s.Busy.Seconds() }

// CPUUtil returns the average CPU utilization over elapsed wall time given
// `threads` computing threads: busy / (elapsed × threads), clamped to [0,1].
func (s Snapshot) CPUUtil(elapsed time.Duration, threads int) float64 {
	if elapsed <= 0 || threads <= 0 {
		return 0
	}
	u := float64(s.Busy) / (float64(elapsed) * float64(threads))
	if u > 1 {
		u = 1
	}
	return u
}

// TimelinePoint is one sample of the Figure 5/6 utilization plot.
type TimelinePoint struct {
	At time.Duration // since sampler start
	// CPUUtil is the busy fraction of computing threads over the sample
	// period; NetBytes and DiskBytes are per-period deltas.
	CPUUtil   float64
	NetBytes  int64
	DiskBytes int64
}

// Sampler periodically snapshots one or more Counters (summed) to build a
// timeline. With per-worker counters, passing all of them yields the
// cluster-wide utilization the paper plots.
type Sampler struct {
	cs      []*Counters
	period  time.Duration
	threads int

	mu     sync.Mutex
	points []TimelinePoint
	stop   chan struct{}
	done   chan struct{}
	start  time.Time
	prev   Snapshot
	prevAt time.Time
}

// NewSampler samples the summed counters every period, assuming `threads`
// total computing threads across all counters. A non-positive period or
// thread count is clamped so the sampler can never divide by zero (or
// panic in time.NewTicker) on a degenerate configuration.
func NewSampler(period time.Duration, threads int, cs ...*Counters) *Sampler {
	if period <= 0 {
		period = 100 * time.Millisecond
	}
	if threads <= 0 {
		threads = 1
	}
	return &Sampler{cs: cs, period: period, threads: threads}
}

// sumSnapshot sums snapshots across all counters.
func (s *Sampler) sumSnapshot() Snapshot {
	var out Snapshot
	for _, c := range s.cs {
		out = out.Add(c.Snapshot())
	}
	return out
}

// Start begins sampling until Stop is called.
func (s *Sampler) Start() {
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	s.start = time.Now()
	s.prev = s.sumSnapshot()
	s.prevAt = s.start
	go func() {
		defer close(s.done)
		t := time.NewTicker(s.period)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.sample()
			}
		}
	}()
}

func (s *Sampler) sample() {
	now := s.sumSnapshot()
	at := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	// Ticker firings can bunch up on a loaded machine; normalize by the
	// actual interval and drop degenerate back-to-back samples. The dt
	// guard doubles as the divide-by-zero guard: an empty sample window
	// (dt <= 0, possible under clock steps) must not produce NaN points.
	dt := at.Sub(s.prevAt)
	if dt <= 0 || dt < s.period/4 {
		return
	}
	dBusy := now.Busy - s.prev.Busy
	util := float64(dBusy) / (float64(dt) * float64(s.threads))
	if util > 1 {
		util = 1
	}
	if util < 0 {
		util = 0
	}
	s.points = append(s.points, TimelinePoint{
		At:        at.Sub(s.start),
		CPUUtil:   util,
		NetBytes:  now.NetBytes - s.prev.NetBytes,
		DiskBytes: (now.DiskRead + now.DiskWrite) - (s.prev.DiskRead + s.prev.DiskWrite),
	})
	s.prev = now
	s.prevAt = at
}

// Stop halts sampling and returns the collected timeline.
func (s *Sampler) Stop() []TimelinePoint {
	if s.stop != nil {
		close(s.stop)
		<-s.done
		s.stop = nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]TimelinePoint(nil), s.points...)
}
