package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestCountersBasics(t *testing.T) {
	c := &Counters{}
	c.AddBusy(time.Second)
	c.AddNet(100)
	c.AddNet(50)
	c.AddDiskRead(10)
	c.AddDiskWrite(20)
	c.TaskDone()
	c.EmitResult()
	c.CacheHit()
	c.CacheHit()
	c.CacheMiss()
	c.TaskStolen()
	s := c.Snapshot()
	if s.Busy != time.Second || s.NetBytes != 150 || s.NetMsgs != 2 ||
		s.DiskRead != 10 || s.DiskWrite != 20 || s.TasksDone != 1 ||
		s.Results != 1 || s.CacheHits != 2 || s.CacheMisses != 1 || s.Stolen != 1 {
		t.Fatalf("snapshot wrong: %+v", s)
	}
	if s.CacheHitRate() < 0.66 || s.CacheHitRate() > 0.67 {
		t.Fatalf("hit rate %f", s.CacheHitRate())
	}
}

func TestLivePeak(t *testing.T) {
	c := &Counters{}
	c.AddLive(100)
	c.AddLive(50)
	c.AddLive(-120)
	s := c.Snapshot()
	if s.LiveBytes != 30 || s.PeakBytes != 150 {
		t.Fatalf("live=%d peak=%d", s.LiveBytes, s.PeakBytes)
	}
	c.ObserveLive(500)
	c.ObserveLive(10)
	s = c.Snapshot()
	if s.LiveBytes != 10 || s.PeakBytes != 500 {
		t.Fatalf("observe: live=%d peak=%d", s.LiveBytes, s.PeakBytes)
	}
}

func TestCPUUtil(t *testing.T) {
	var s Snapshot
	s.Busy = 2 * time.Second
	if u := s.CPUUtil(time.Second, 4); u != 0.5 {
		t.Fatalf("util=%f", u)
	}
	if u := s.CPUUtil(time.Second, 1); u != 1.0 { // clamped
		t.Fatalf("clamp=%f", u)
	}
	if s.CPUUtil(0, 4) != 0 {
		t.Fatal("zero elapsed")
	}
}

func TestSnapshotAdd(t *testing.T) {
	a := Snapshot{Busy: time.Second, NetBytes: 10, TasksDone: 1}
	b := Snapshot{Busy: time.Second, NetBytes: 5, TasksDone: 2}
	sum := a.Add(b)
	if sum.Busy != 2*time.Second || sum.NetBytes != 15 || sum.TasksDone != 3 {
		t.Fatalf("%+v", sum)
	}
}

func TestSamplerTimeline(t *testing.T) {
	c1, c2 := &Counters{}, &Counters{}
	s := NewSampler(2*time.Millisecond, 2, c1, c2)
	s.Start()
	for i := 0; i < 5; i++ {
		c1.AddBusy(time.Millisecond)
		c2.AddNet(1000)
		time.Sleep(3 * time.Millisecond)
	}
	points := s.Stop()
	if len(points) < 3 {
		t.Fatalf("too few samples: %d", len(points))
	}
	var totalNet int64
	anyCPU := false
	for i, p := range points {
		if i > 0 && p.At <= points[i-1].At {
			t.Fatal("timeline not monotonic")
		}
		totalNet += p.NetBytes
		if p.CPUUtil > 0 {
			anyCPU = true
		}
		if p.CPUUtil < 0 || p.CPUUtil > 1 {
			t.Fatalf("util out of range: %f", p.CPUUtil)
		}
	}
	if totalNet == 0 || !anyCPU {
		t.Fatalf("deltas missing: net=%d cpu=%v", totalNet, anyCPU)
	}
}

func TestSamplerStopIdempotentish(t *testing.T) {
	c := &Counters{}
	s := NewSampler(time.Millisecond, 1, c)
	s.Start()
	time.Sleep(3 * time.Millisecond)
	a := s.Stop()
	b := s.Stop() // second stop must not panic and returns same data
	if len(b) < len(a) {
		t.Fatal("second stop lost points")
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := &Counters{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.AddNet(1)
				c.AddLive(1)
				c.AddLive(-1)
				c.TaskDone()
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.NetBytes != 8000 || s.TasksDone != 8000 || s.LiveBytes != 0 {
		t.Fatalf("%+v", s)
	}
}

func TestCacheHitRateEmptyWindow(t *testing.T) {
	var s Snapshot
	if got := s.CacheHitRate(); got != 0 {
		t.Fatalf("empty window hit rate = %v, want 0", got)
	}
	s.CacheHits = 3
	if got := s.CacheHitRate(); got != 1 {
		t.Fatalf("hit-only rate = %v, want 1", got)
	}
}

func TestCPUUtilDegenerateInputs(t *testing.T) {
	s := Snapshot{Busy: time.Second}
	for _, tc := range []struct {
		elapsed time.Duration
		threads int
	}{
		{0, 4}, {-time.Second, 4}, {time.Second, 0}, {time.Second, -1}, {0, 0},
	} {
		got := s.CPUUtil(tc.elapsed, tc.threads)
		if got != 0 || math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("CPUUtil(%v, %d) = %v, want 0", tc.elapsed, tc.threads, got)
		}
	}
	// Over-subscribed busy time clamps to 1, never exceeds it.
	if got := (Snapshot{Busy: 10 * time.Second}).CPUUtil(time.Second, 2); got != 1 {
		t.Fatalf("clamped util = %v, want 1", got)
	}
}

// TestSamplerDegenerateConfig checks the NewSampler clamps: a zero or
// negative period must not panic time.NewTicker, and zero threads must
// not divide by zero in sample().
func TestSamplerDegenerateConfig(t *testing.T) {
	var c Counters
	for _, tc := range []struct {
		period  time.Duration
		threads int
	}{
		{0, 0}, {-time.Second, -3}, {0, 4}, {time.Millisecond, 0},
	} {
		s := NewSampler(tc.period, tc.threads, &c)
		s.Start()
		c.AddBusy(10 * time.Millisecond)
		time.Sleep(5 * time.Millisecond)
		pts := s.Stop()
		for _, p := range pts {
			if math.IsNaN(p.CPUUtil) || math.IsInf(p.CPUUtil, 0) || p.CPUUtil < 0 || p.CPUUtil > 1 {
				t.Fatalf("NewSampler(%v, %d): bad util %v", tc.period, tc.threads, p.CPUUtil)
			}
		}
	}
}

func TestSamplerNoCounters(t *testing.T) {
	s := NewSampler(time.Millisecond, 2)
	s.Start()
	time.Sleep(5 * time.Millisecond)
	for _, p := range s.Stop() {
		if math.IsNaN(p.CPUUtil) || p.CPUUtil != 0 {
			t.Fatalf("counter-less sampler util = %v", p.CPUUtil)
		}
	}
}
