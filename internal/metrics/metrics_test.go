package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCountersBasics(t *testing.T) {
	c := &Counters{}
	c.AddBusy(time.Second)
	c.AddNet(100)
	c.AddNet(50)
	c.AddDiskRead(10)
	c.AddDiskWrite(20)
	c.TaskDone()
	c.EmitResult()
	c.CacheHit()
	c.CacheHit()
	c.CacheMiss()
	c.TaskStolen()
	s := c.Snapshot()
	if s.Busy != time.Second || s.NetBytes != 150 || s.NetMsgs != 2 ||
		s.DiskRead != 10 || s.DiskWrite != 20 || s.TasksDone != 1 ||
		s.Results != 1 || s.CacheHits != 2 || s.CacheMisses != 1 || s.Stolen != 1 {
		t.Fatalf("snapshot wrong: %+v", s)
	}
	if s.CacheHitRate() < 0.66 || s.CacheHitRate() > 0.67 {
		t.Fatalf("hit rate %f", s.CacheHitRate())
	}
}

func TestLivePeak(t *testing.T) {
	c := &Counters{}
	c.AddLive(100)
	c.AddLive(50)
	c.AddLive(-120)
	s := c.Snapshot()
	if s.LiveBytes != 30 || s.PeakBytes != 150 {
		t.Fatalf("live=%d peak=%d", s.LiveBytes, s.PeakBytes)
	}
	c.ObserveLive(500)
	c.ObserveLive(10)
	s = c.Snapshot()
	if s.LiveBytes != 10 || s.PeakBytes != 500 {
		t.Fatalf("observe: live=%d peak=%d", s.LiveBytes, s.PeakBytes)
	}
}

func TestCPUUtil(t *testing.T) {
	var s Snapshot
	s.Busy = 2 * time.Second
	if u := s.CPUUtil(time.Second, 4); u != 0.5 {
		t.Fatalf("util=%f", u)
	}
	if u := s.CPUUtil(time.Second, 1); u != 1.0 { // clamped
		t.Fatalf("clamp=%f", u)
	}
	if s.CPUUtil(0, 4) != 0 {
		t.Fatal("zero elapsed")
	}
}

func TestSnapshotAdd(t *testing.T) {
	a := Snapshot{Busy: time.Second, NetBytes: 10, TasksDone: 1}
	b := Snapshot{Busy: time.Second, NetBytes: 5, TasksDone: 2}
	sum := a.Add(b)
	if sum.Busy != 2*time.Second || sum.NetBytes != 15 || sum.TasksDone != 3 {
		t.Fatalf("%+v", sum)
	}
}

func TestSamplerTimeline(t *testing.T) {
	c1, c2 := &Counters{}, &Counters{}
	s := NewSampler(2*time.Millisecond, 2, c1, c2)
	s.Start()
	for i := 0; i < 5; i++ {
		c1.AddBusy(time.Millisecond)
		c2.AddNet(1000)
		time.Sleep(3 * time.Millisecond)
	}
	points := s.Stop()
	if len(points) < 3 {
		t.Fatalf("too few samples: %d", len(points))
	}
	var totalNet int64
	anyCPU := false
	for i, p := range points {
		if i > 0 && p.At <= points[i-1].At {
			t.Fatal("timeline not monotonic")
		}
		totalNet += p.NetBytes
		if p.CPUUtil > 0 {
			anyCPU = true
		}
		if p.CPUUtil < 0 || p.CPUUtil > 1 {
			t.Fatalf("util out of range: %f", p.CPUUtil)
		}
	}
	if totalNet == 0 || !anyCPU {
		t.Fatalf("deltas missing: net=%d cpu=%v", totalNet, anyCPU)
	}
}

func TestSamplerStopIdempotentish(t *testing.T) {
	c := &Counters{}
	s := NewSampler(time.Millisecond, 1, c)
	s.Start()
	time.Sleep(3 * time.Millisecond)
	a := s.Stop()
	b := s.Stop() // second stop must not panic and returns same data
	if len(b) < len(a) {
		t.Fatal("second stop lost points")
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := &Counters{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.AddNet(1)
				c.AddLive(1)
				c.AddLive(-1)
				c.TaskDone()
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.NetBytes != 8000 || s.TasksDone != 8000 || s.LiveBytes != 0 {
		t.Fatalf("%+v", s)
	}
}
