package baseline

import (
	"time"

	"gminer/internal/algo"
	"gminer/internal/graph"
)

// Single is the optimized single-threaded implementation used as the
// baseline of Table 1 and the COST comparison (Figure 7). It wraps the
// sequential reference algorithms.
type Single struct{}

// Name implements the engine naming convention of the harness.
func (Single) Name() string { return "single-thread" }

// TC counts triangles.
func (Single) TC(g *graph.Graph, cfg Config) (int64, Stats, error) {
	start := time.Now()
	count := algo.RefTriangles(g)
	return count, Stats{
		Elapsed: time.Since(start),
		PeakMem: g.FootprintBytes(),
		CPUUtil: 1.0,
	}, nil
}

// MCF finds the maximum clique size.
func (Single) MCF(g *graph.Graph, cfg Config) (int, Stats, error) {
	start := time.Now()
	best := algo.RefMaxClique(g)
	return best, Stats{
		Elapsed: time.Since(start),
		PeakMem: g.FootprintBytes(),
		CPUUtil: 1.0,
	}, nil
}

// GM counts pattern matches.
func (Single) GM(g *graph.Graph, p *algo.Pattern, cfg Config) (int64, Stats, error) {
	start := time.Now()
	count := algo.RefMatchCount(g, p)
	return count, Stats{
		Elapsed: time.Since(start),
		PeakMem: 2 * g.FootprintBytes(), // graph + DP tables
		CPUUtil: 1.0,
	}, nil
}
