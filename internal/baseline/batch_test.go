package baseline

import (
	"testing"
	"time"

	"gminer/internal/algo"
	"gminer/internal/gen"
	"gminer/internal/graph"
)

// White-box tests for the batch engine's internals.

func TestLRUBasics(t *testing.T) {
	c := newLRU(2)
	v1 := &graph.Vertex{ID: 1}
	v2 := &graph.Vertex{ID: 2}
	v3 := &graph.Vertex{ID: 3}
	c.put(v1)
	c.put(v2)
	if _, ok := c.get(1); !ok {
		t.Fatal("miss on resident entry")
	}
	// put is pin-friendly: no eviction until trim.
	c.put(v3)
	if len(c.entries) != 3 {
		t.Fatalf("entries=%d; put should overflow until trim", len(c.entries))
	}
	c.trim()
	if len(c.entries) != 2 {
		t.Fatalf("trim left %d", len(c.entries))
	}
	// 1 was touched most recently before v3's insert; 2 is the LRU victim.
	if _, ok := c.get(2); ok {
		t.Fatal("LRU victim survived trim")
	}
	if _, ok := c.get(1); !ok {
		t.Fatal("recently used entry evicted")
	}
}

func TestLRUDuplicatePut(t *testing.T) {
	c := newLRU(4)
	v := &graph.Vertex{ID: 7, Adj: []graph.VertexID{1}}
	c.put(v)
	before := c.bytes
	c.put(v)
	if c.bytes != before || len(c.entries) != 1 {
		t.Fatalf("duplicate put corrupted accounting: bytes=%d entries=%d", c.bytes, len(c.entries))
	}
}

func TestBatchRoundsCounted(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 7, Edges: 1000, Seed: 61})
	res, stats, err := Batch{}.Run(g, algo.NewTriangleCount(), Config{Workers: 3, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds < 2 {
		t.Fatalf("expected >=2 compute/communicate rounds, got %d", res.Rounds)
	}
	if stats.Supersteps != res.Rounds {
		t.Fatalf("stats rounds mismatch: %d vs %d", stats.Supersteps, res.Rounds)
	}
}

func TestBatchTimelineSampling(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 9, Edges: 12000, Seed: 67})
	cfg := Config{Workers: 3, Threads: 2, SampleEvery: time.Millisecond,
		Latency: 2 * time.Millisecond, BandwidthBps: 8 << 20}
	_, stats, err := Batch{}.Run(g, algo.NewMaxClique(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Timeline) == 0 {
		t.Fatal("no timeline samples collected")
	}
}

func TestBatchTimeout(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 10, Edges: 40000, Seed: 71})
	cfg := Config{Workers: 2, Threads: 1, Timeout: time.Millisecond}
	_, _, err := Batch{}.Run(g, algo.NewMaxClique(), cfg)
	if err == nil {
		t.Fatal("expected timeout")
	}
}

func TestBatchAggGlobalVisible(t *testing.T) {
	// The batch engine syncs aggregator globals at barriers; a worker's
	// AggGlobal must at least include its own partial immediately.
	g := gen.RMAT(gen.RMATConfig{Scale: 7, Edges: 1500, Seed: 73})
	res, _, err := Batch{}.Run(g, algo.NewMaxClique(), Config{Workers: 2, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.AggGlobal.(int), algo.RefMaxClique(g); got != want {
		t.Fatalf("agg: got %d want %d", got, want)
	}
}
