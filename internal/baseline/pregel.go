package baseline

import (
	"sync"
	"sync/atomic"
	"time"

	"gminer/internal/graph"
	"gminer/internal/lsh"
	"gminer/internal/memctl"
	"gminer/internal/metrics"
)

// This file is a miniature Pregel: the vertex-centric, bulk-synchronous
// substrate that Giraph-class systems provide (§2 "Vertex/Edge-centric
// Systems"). The BSP engine runs graph mining on top of it, which forces
// exactly the pathologies §3 measures: synchronization barriers between
// supersteps and up-front materialization of neighborhood subgraphs in
// message buffers.

// Message is a Pregel message: an ID payload (adjacency fragments — what
// mining algorithms ship) plus a scalar.
type Message struct {
	To  graph.VertexID
	Src graph.VertexID
	IDs []graph.VertexID
	Val int64
}

func (m *Message) footprint() int64 { return int64(24 + 8*len(m.IDs)) }

// ComputeCtx is the per-vertex compute context.
type ComputeCtx struct {
	Superstep int
	outbox    []Message
	halted    bool
	agg       int64
	aggSet    bool
}

// Send enqueues a message for the next superstep.
func (c *ComputeCtx) Send(m Message) { c.outbox = append(c.outbox, m) }

// VoteHalt deactivates the vertex until a message wakes it.
func (c *ComputeCtx) VoteHalt() { c.halted = true }

// Aggregate folds a value into the global sum aggregator.
func (c *ComputeCtx) Aggregate(v int64) { c.agg += v; c.aggSet = true }

// VertexProgram is the user algorithm of the mini-Pregel.
type VertexProgram interface {
	// Compute runs once per active vertex per superstep. state is the
	// previous return value (nil in superstep 0).
	Compute(ctx *ComputeCtx, v *graph.Vertex, state any, msgs []Message) any
}

// pregelResult carries the engine outcome.
type pregelResult struct {
	AggSum     int64
	Supersteps int
}

// runPregel executes the program to quiescence under the config's memory
// budget, worker/thread layout and network model.
func runPregel(g *graph.Graph, prog VertexProgram, cfg Config, counters *metrics.Counters) (pregelResult, Stats, error) {
	cfg = cfg.defaults()
	budget := memctl.NewBudget(cfg.MemBudget)
	dl := newDeadline(cfg.Timeout)
	start := time.Now()

	n := g.NumVertices()
	states := make([]any, n)
	halted := make([]bool, n)
	inbox := make(map[graph.VertexID][]Message)
	index := make(map[graph.VertexID]int, n)
	owner := make([]int, n)
	for i := 0; i < n; i++ {
		id := g.VertexAt(i).ID
		index[id] = i
		owner[i] = int(lsh.HashID(uint64(id)) % uint64(cfg.Workers))
	}
	if err := budget.Charge(g.FootprintBytes()); err != nil {
		return pregelResult{}, statsNow(start, budget, counters, 0), err
	}

	var busy atomic.Int64
	var aggSum int64
	superstep := 0
	for {
		if dl.exceeded() {
			return pregelResult{}, statsNow(start, budget, counters, superstep), ErrTimeout
		}
		// Active set: not halted, or has messages.
		active := make([]int, 0, n)
		for i := 0; i < n; i++ {
			if !halted[i] || len(inbox[g.VertexAt(i).ID]) > 0 {
				active = append(active, i)
			}
		}
		if len(active) == 0 {
			break
		}

		// Compute phase: all workers' threads in parallel, then barrier.
		threads := cfg.Workers * cfg.Threads
		outboxes := make([][]Message, threads)
		aggParts := make([]int64, threads)
		var wg sync.WaitGroup
		var oomErr error
		var oomMu sync.Mutex
		for t := 0; t < threads; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				tStart := time.Now()
				defer func() { busy.Add(int64(time.Since(tStart))) }()
				for k := t; k < len(active); k += threads {
					i := active[k]
					v := g.VertexAt(i)
					ctx := &ComputeCtx{Superstep: superstep}
					states[i] = prog.Compute(ctx, v, states[i], inbox[v.ID])
					halted[i] = ctx.halted
					outboxes[t] = append(outboxes[t], ctx.outbox...)
					if ctx.aggSet {
						aggParts[t] += ctx.agg
					}
				}
				var bytes int64
				for _, m := range outboxes[t] {
					bytes += m.footprint()
				}
				if err := budget.Charge(bytes); err != nil {
					oomMu.Lock()
					if oomErr == nil {
						oomErr = err
					}
					oomMu.Unlock()
				}
			}(t)
		}
		wg.Wait()
		if counters != nil {
			counters.AddBusy(time.Duration(busy.Swap(0)))
		}
		if oomErr != nil {
			return pregelResult{}, statsNow(start, budget, counters, superstep), oomErr
		}
		for _, p := range aggParts {
			aggSum += p
		}

		// Communication phase (barrier): deliver messages, count the
		// cross-worker bytes, sleep for the simulated transfer.
		var releaseBytes int64
		for id := range inbox {
			msgs := inbox[id]
			for i := range msgs {
				releaseBytes += msgs[i].footprint()
			}
			delete(inbox, id)
		}
		budget.Release(releaseBytes)

		var crossBytes int64
		delivered := 0
		for _, ob := range outboxes {
			for i := range ob {
				m := ob[i]
				j, ok := index[m.To]
				if !ok {
					continue
				}
				inbox[m.To] = append(inbox[m.To], m)
				delivered++
				if si, ok2 := index[m.Src]; !ok2 || owner[si] != owner[j] {
					crossBytes += m.footprint()
				}
			}
		}
		if counters != nil && crossBytes > 0 {
			counters.AddNet(crossBytes)
		}
		commSleep(cfg, crossBytes)

		if cfg.Dataflow {
			// Dataflow engines (the GraphX model) materialize the full
			// vertex/edge datasets every superstep: charge and pay for it.
			if err := budget.Charge(g.FootprintBytes()); err != nil {
				return pregelResult{}, statsNow(start, budget, counters, superstep), err
			}
			commSleep(cfg, g.FootprintBytes()/8)
			budget.Release(g.FootprintBytes())
		}

		superstep++
		if delivered == 0 {
			// No messages: remaining activity is only non-halted vertices;
			// loop once more (they may halt) — but guard against programs
			// that never halt.
			allHalted := true
			for _, i := range active {
				if !halted[i] {
					allHalted = false
					break
				}
			}
			if allHalted {
				break
			}
		}
		if superstep > 10000 {
			return pregelResult{}, statsNow(start, budget, counters, superstep), ErrTimeout
		}
	}
	return pregelResult{AggSum: aggSum, Supersteps: superstep},
		statsNow(start, budget, counters, superstep), nil
}

func statsNow(start time.Time, budget *memctl.Budget, counters *metrics.Counters, steps int) Stats {
	s := Stats{
		Elapsed:    time.Since(start),
		PeakMem:    budget.Peak(),
		Supersteps: steps,
	}
	if counters != nil {
		snap := counters.Snapshot()
		s.NetBytes = snap.NetBytes
		s.CPUUtil = snap.CPUUtil(s.Elapsed, 1)
	}
	return s
}
