package baseline

import (
	"sync"
	"sync/atomic"
	"time"

	"gminer/internal/graph"
	"gminer/internal/memctl"
	"gminer/internal/metrics"
)

// Embed is the Arabesque-like embedding-exploration engine (§2): mining
// proceeds in synchronous rounds; each round expands every embedding by
// one neighboring vertex, and only *afterwards* a filter prunes invalid
// candidates — "the pruning step is only executed after the exploration
// steps, which can generate a large number of candidates and thus waste a
// substantial amount of computation and memory on invalid embeddings."
// Candidate embeddings are charged against the memory budget at
// generation time, before filtering, which is what makes this engine OOM
// or crawl on workloads G-Miner handles (Tables 1 and 3).
type Embed struct{}

// Name identifies the engine.
func (Embed) Name() string { return "arabesque-like" }

// embedding is a candidate subgraph: its vertices in discovery order.
type embedding []graph.VertexID

func (e embedding) footprint() int64 { return int64(24 + 8*len(e)) }

func (e embedding) contains(x graph.VertexID) bool {
	for _, v := range e {
		if v == x {
			return true
		}
	}
	return false
}

// explore runs the generic expand-then-filter loop: start from single
// vertices accepted by seed, expand each embedding with every neighbor of
// every member, keep those accepted by filter, for `levels` rounds.
// Returns the number of surviving embeddings per level.
func explore(g *graph.Graph, cfg Config, counters *metrics.Counters,
	seed func(v *graph.Vertex) bool,
	filter func(emb embedding, next graph.VertexID) bool,
	levels int,
	visit func(emb embedding),
) (Stats, error) {
	cfg = cfg.defaults()
	budget := memctl.NewBudget(cfg.MemBudget)
	dl := newDeadline(cfg.Timeout)
	start := time.Now()
	threads := cfg.Workers * cfg.Threads

	if err := budget.Charge(g.FootprintBytes()); err != nil {
		return statsNow(start, budget, counters, 0), err
	}

	// Level 1: single-vertex embeddings.
	var current []embedding
	g.ForEach(func(v *graph.Vertex) bool {
		if seed(v) {
			current = append(current, embedding{v.ID})
		}
		return true
	})
	var curBytes int64
	for _, e := range current {
		curBytes += e.footprint()
	}
	if err := budget.Charge(curBytes); err != nil {
		return statsNow(start, budget, counters, 1), err
	}
	for _, e := range current {
		visit(e)
	}

	level := 1
	for level < levels && len(current) > 0 {
		if dl.exceeded() {
			return statsNow(start, budget, counters, level), ErrTimeout
		}
		// Expansion phase: generate ALL candidates first (no pruning).
		var mu sync.Mutex
		var next []embedding
		var nextBytes atomic.Int64
		var oomErr error
		var busy atomic.Int64
		var aborted atomic.Bool
		var wg sync.WaitGroup
		for t := 0; t < threads; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				tStart := time.Now()
				defer func() { busy.Add(int64(time.Since(tStart))) }()
				var local []embedding
				var localBytes int64
				iter := 0
				for k := t; k < len(current); k += threads {
					iter++
					if iter%128 == 0 && (dl.exceeded() ||
						(budget.Limit() > 0 && budget.Used()+nextBytes.Load() > budget.Limit())) {
						aborted.Store(true)
						break
					}
					emb := current[k]
					for _, member := range emb {
						mv := g.Vertex(member)
						if mv == nil {
							continue
						}
						for _, w := range mv.Adj {
							if emb.contains(w) {
								continue
							}
							cand := append(append(embedding{}, emb...), w)
							local = append(local, cand)
							localBytes += cand.footprint()
						}
					}
					if localBytes > 1<<20 {
						// Publish partial charges so the budget check
						// above sees memory pressure mid-expansion.
						nextBytes.Add(localBytes)
						localBytes = 0
					}
				}
				nextBytes.Add(localBytes)
				mu.Lock()
				next = append(next, local...)
				mu.Unlock()
			}(t)
		}
		wg.Wait()
		if counters != nil {
			counters.AddBusy(time.Duration(busy.Load()))
		}
		// Candidates are materialized BEFORE filtering: charge them all.
		if err := budget.Charge(nextBytes.Load()); err != nil {
			oomErr = err
		}
		if oomErr != nil {
			return statsNow(start, budget, counters, level), oomErr
		}
		if aborted.Load() {
			budget.Release(nextBytes.Load())
			if dl.exceeded() {
				return statsNow(start, budget, counters, level), ErrTimeout
			}
			return statsNow(start, budget, counters, level),
				budget.Charge(budget.Limit()) // force the OOM error
		}

		// Filter phase (after exploration, as in Arabesque).
		var kept []embedding
		var keptBytes int64
		seen := make(map[string]bool, len(next))
		for fi, cand := range next {
			if fi%4096 == 0 && dl.exceeded() {
				return statsNow(start, budget, counters, level), ErrTimeout
			}
			last := cand[len(cand)-1]
			if !filter(cand[:len(cand)-1], last) {
				continue
			}
			key := canonicalKey(cand)
			if seen[key] {
				continue
			}
			seen[key] = true
			kept = append(kept, cand)
			keptBytes += cand.footprint()
			visit(cand)
		}
		// Shuffle barrier: Arabesque redistributes embeddings each round.
		if counters != nil && nextBytes.Load() > 0 {
			counters.AddNet(nextBytes.Load() / 2)
		}
		commSleep(cfg, nextBytes.Load()/2)

		budget.Release(nextBytes.Load())
		budget.Release(curBytes)
		if err := budget.Charge(keptBytes); err != nil {
			return statsNow(start, budget, counters, level), err
		}
		current, curBytes = kept, keptBytes
		level++
	}
	return statsNow(start, budget, counters, level), nil
}

// canonicalKey dedups embeddings that differ only in discovery order.
func canonicalKey(e embedding) string {
	ids := append([]graph.VertexID(nil), e...)
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	buf := make([]byte, 0, 10*len(ids))
	for _, id := range ids {
		for s := 0; s < 64; s += 8 {
			buf = append(buf, byte(id>>s))
		}
	}
	return string(buf)
}

// TC counts triangles by exploring to 3-vertex embeddings and filtering
// for mutual adjacency.
func (Embed) TC(g *graph.Graph, cfg Config) (int64, Stats, error) {
	counters := &metrics.Counters{}
	var count atomic.Int64
	stats, err := explore(g, cfg, counters,
		func(v *graph.Vertex) bool { return len(v.Adj) >= 2 },
		func(emb embedding, next graph.VertexID) bool {
			nv := g.Vertex(next)
			if nv == nil {
				return false
			}
			for _, m := range emb {
				if !nv.HasNeighbor(m) {
					return false
				}
			}
			return true
		},
		3,
		func(emb embedding) {
			if len(emb) == 3 {
				count.Add(1)
			}
		})
	stats.CPUUtil = counters.Snapshot().CPUUtil(stats.Elapsed, cfg.defaults().Workers*cfg.defaults().Threads)
	stats.NetBytes = counters.Snapshot().NetBytes
	if err != nil {
		return 0, stats, err
	}
	return count.Load(), stats, nil
}

// MCF grows cliques level by level until none survive; the largest level
// reached is the maximum clique size.
func (Embed) MCF(g *graph.Graph, cfg Config) (int, Stats, error) {
	counters := &metrics.Counters{}
	var best atomic.Int64
	stats, err := explore(g, cfg, counters,
		func(v *graph.Vertex) bool { return true },
		func(emb embedding, next graph.VertexID) bool {
			nv := g.Vertex(next)
			if nv == nil {
				return false
			}
			for _, m := range emb {
				if !nv.HasNeighbor(m) {
					return false
				}
			}
			return true
		},
		g.NumVertices(), // until no embeddings survive
		func(emb embedding) {
			for {
				cur := best.Load()
				if int64(len(emb)) <= cur || best.CompareAndSwap(cur, int64(len(emb))) {
					break
				}
			}
		})
	stats.CPUUtil = counters.Snapshot().CPUUtil(stats.Elapsed, cfg.defaults().Workers*cfg.defaults().Threads)
	stats.NetBytes = counters.Snapshot().NetBytes
	if err != nil {
		return 0, stats, err
	}
	return int(best.Load()), stats, nil
}
