package baseline_test

import (
	"errors"
	"testing"
	"time"

	"gminer/internal/algo"
	"gminer/internal/baseline"
	"gminer/internal/gen"
	"gminer/internal/graph"
)

func testGraph(seed int64) *graph.Graph {
	return gen.RMAT(gen.RMATConfig{Scale: 7, Edges: 1200, Seed: seed})
}

func cfg() baseline.Config {
	return baseline.Config{Workers: 3, Threads: 2}
}

func TestSingleEngineMatchesReference(t *testing.T) {
	g := testGraph(3)
	wantTC := algo.RefTriangles(g)
	gotTC, _, err := baseline.Single{}.TC(g, cfg())
	if err != nil || gotTC != wantTC {
		t.Fatalf("single TC: got %d want %d err %v", gotTC, wantTC, err)
	}
	wantMCF := algo.RefMaxClique(g)
	gotMCF, _, err := baseline.Single{}.MCF(g, cfg())
	if err != nil || gotMCF != wantMCF {
		t.Fatalf("single MCF: got %d want %d err %v", gotMCF, wantMCF, err)
	}
}

func TestBSPEngineTC(t *testing.T) {
	g := testGraph(5)
	want := algo.RefTriangles(g)
	got, stats, err := baseline.BSP{}.TC(g, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("bsp TC: got %d want %d", got, want)
	}
	if stats.Supersteps < 2 {
		t.Fatalf("bsp TC: expected >=2 supersteps, got %d", stats.Supersteps)
	}
}

func TestBSPEngineMCF(t *testing.T) {
	g := testGraph(7)
	want := algo.RefMaxClique(g)
	got, _, err := baseline.BSP{}.MCF(g, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("bsp MCF: got %d want %d", got, want)
	}
}

func TestBSPOOMOnTightBudget(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 9, Edges: 15000, Seed: 9})
	c := cfg()
	c.MemBudget = g.FootprintBytes() + 1024 // graph fits, messages do not
	_, _, err := baseline.BSP{}.MCF(g, c)
	if !errors.Is(err, baseline.ErrOOM) {
		t.Fatalf("expected OOM, got %v", err)
	}
}

func TestGraphXLikeSlowerThanGiraphLike(t *testing.T) {
	g := testGraph(11)
	c := cfg()
	// Pick the bandwidth so the dataflow engine's per-superstep dataset
	// materialization costs a deterministic ~5ms of simulated transfer —
	// far above scheduler noise — and compare best-of-3 runs.
	c.BandwidthBps = g.FootprintBytes() / 8 * 200 // (footprint/8)/bw = 5ms
	if c.BandwidthBps < 1 {
		c.BandwidthBps = 1
	}
	min := func(dataflow bool) time.Duration {
		best := time.Duration(1<<62 - 1)
		for i := 0; i < 3; i++ {
			_, s, err := baseline.BSP{Dataflow: dataflow}.TC(g, c)
			if err != nil {
				t.Fatal(err)
			}
			if s.Elapsed < best {
				best = s.Elapsed
			}
		}
		return best
	}
	giraph, graphx := min(false), min(true)
	if graphx <= giraph {
		t.Fatalf("dataflow overhead missing: graphx %v <= giraph %v", graphx, giraph)
	}
}

func TestEmbedEngineTC(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 6, Edges: 400, Seed: 13})
	want := algo.RefTriangles(g)
	got, _, err := baseline.Embed{}.TC(g, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("embed TC: got %d want %d", got, want)
	}
}

func TestEmbedEngineMCF(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 5, Edges: 150, Seed: 17})
	want := algo.RefMaxClique(g)
	got, _, err := baseline.Embed{}.MCF(g, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("embed MCF: got %d want %d", got, want)
	}
}

func TestEmbedOOMOnTightBudget(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 9, Edges: 15000, Seed: 19})
	c := cfg()
	c.MemBudget = g.FootprintBytes() + 4096
	_, _, err := baseline.Embed{}.MCF(g, c)
	if !errors.Is(err, baseline.ErrOOM) {
		t.Fatalf("expected OOM, got %v", err)
	}
}

func TestEmbedTimeout(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 10, Edges: 60000, Seed: 23})
	c := cfg()
	c.Timeout = 10 * time.Millisecond
	_, _, err := baseline.Embed{}.MCF(g, c)
	if !errors.Is(err, baseline.ErrTimeout) && !errors.Is(err, baseline.ErrOOM) {
		t.Fatalf("expected timeout or OOM on huge exploration, got %v", err)
	}
}

func TestBatchEngineRunsAllAlgorithms(t *testing.T) {
	g := testGraph(29)
	// TC
	res, _, err := baseline.Batch{}.Run(g, algo.NewTriangleCount(), cfg())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.AggGlobal.(int64), algo.RefTriangles(g); got != want {
		t.Fatalf("batch TC: got %d want %d", got, want)
	}
	// MCF
	res, _, err = baseline.Batch{}.Run(g, algo.NewMaxClique(), cfg())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.AggGlobal.(int), algo.RefMaxClique(g); got != want {
		t.Fatalf("batch MCF: got %d want %d", got, want)
	}
	// GM
	lg := testGraph(31)
	gen.AssignLabels(lg, 7, 5)
	p := algo.FigurePattern()
	res, _, err = baseline.Batch{}.Run(lg, algo.NewGraphMatch(p), cfg())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.AggGlobal.(int64), algo.RefMatchCount(lg, p); got != want {
		t.Fatalf("batch GM: got %d want %d", got, want)
	}
}

func TestBatchEngineCD(t *testing.T) {
	g, _ := gen.Community(gen.CommunityConfig{
		Communities: 12, MinSize: 5, MaxSize: 9, PIn: 0.6, Bridges: 100, Seed: 37,
	})
	cd := algo.NewCommunityDetect(0.6, 4)
	want := algo.RefCommunities(g, cd)
	res, _, err := baseline.Batch{}.Run(g, cd, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != len(want) {
		t.Fatalf("batch CD: got %d records want %d", len(res.Records), len(want))
	}
	for i := range want {
		if res.Records[i] != want[i] {
			t.Fatalf("batch CD record %d: got %q want %q", i, res.Records[i], want[i])
		}
	}
}

func TestBatchEngineSmallCacheStillCorrect(t *testing.T) {
	g := testGraph(41)
	c := cfg()
	c.CacheVertices = 4 // brutal eviction pressure
	res, _, err := baseline.Batch{}.Run(g, algo.NewTriangleCount(), c)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.AggGlobal.(int64), algo.RefTriangles(g); got != want {
		t.Fatalf("batch TC small cache: got %d want %d", got, want)
	}
}
