package baseline

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gminer/internal/core"
	"gminer/internal/graph"
	"gminer/internal/lsh"
	"gminer/internal/memctl"
	"gminer/internal/metrics"
)

// Batch is the G-thinker-like subgraph-centric engine (§2): it executes
// the exact same core.Algorithm implementations as the G-Miner runtime,
// but "follows a batch processing framework to execute the computation
// and communication parts of a job in batches, which makes it hard to
// fully utilize the CPU and network resources":
//
//   - all seed tasks are spawned up front (no streaming, no disk spill);
//   - execution alternates a whole-batch COMPUTE phase and a whole-batch
//     COMMUNICATE phase with a barrier in between, so CPU idles while
//     vertices are pulled and the network idles while tasks compute
//     (the sawtooth of Figure 5);
//   - remote vertices live in a plain LRU cache with no reference
//     counting, and tasks run in FIFO order with no LSH clustering, so
//     the hit rate is whatever locality happens to exist;
//   - there is no task stealing and no fault tolerance.
type Batch struct{}

// Name identifies the engine.
func (Batch) Name() string { return "gthinker-like" }

// BatchResult carries the outcome of a Batch run.
type BatchResult struct {
	Records   []string
	AggGlobal any
	Rounds    int
}

// batchWorker is one simulated node.
type batchWorker struct {
	id      int
	local   map[graph.VertexID]*graph.Vertex
	pending []*core.Task // tasks waiting for the next comm phase
	ready   []*core.Task
	cache   *lruCache
	partial any

	results []string
	resMu   sync.Mutex

	engine *batchEngine
}

type batchEngine struct {
	cfg      Config
	g        *graph.Graph
	admitMu  sync.Mutex
	algo     core.Algorithm
	agg      core.Aggregator
	workers  []*batchWorker
	owner    func(graph.VertexID) int
	global   atomic.Value // aggregator global, synced at barriers
	budget   *memctl.Budget
	counters *metrics.Counters
	taskMem  atomic.Int64
}

// Run executes the algorithm and returns its merged outputs.
func (b Batch) Run(g *graph.Graph, algoImpl core.Algorithm, cfg Config) (*BatchResult, Stats, error) {
	cfg = cfg.defaults()
	start := time.Now()
	counters := &metrics.Counters{}
	var sampler *metrics.Sampler
	if cfg.SampleEvery > 0 {
		sampler = metrics.NewSampler(cfg.SampleEvery, cfg.Workers*cfg.Threads, counters)
		sampler.Start()
	}
	eng := &batchEngine{
		cfg:      cfg,
		g:        g,
		algo:     algoImpl,
		budget:   memctl.NewBudget(cfg.MemBudget),
		counters: counters,
	}
	if ap, ok := algoImpl.(core.AggregatorProvider); ok {
		eng.agg = ap.Aggregator()
		eng.global.Store(eng.agg.Zero())
	}
	if err := eng.budget.Charge(g.FootprintBytes()); err != nil {
		return nil, statsNow(start, eng.budget, counters, 0), err
	}
	eng.owner = func(id graph.VertexID) int {
		return int(lsh.HashID(uint64(id)) % uint64(cfg.Workers))
	}
	eng.workers = make([]*batchWorker, cfg.Workers)
	for i := range eng.workers {
		eng.workers[i] = &batchWorker{
			id:     i,
			local:  make(map[graph.VertexID]*graph.Vertex),
			cache:  newLRU(cfg.CacheVertices),
			engine: eng,
		}
		if eng.agg != nil {
			eng.workers[i].partial = eng.agg.Zero()
		}
	}
	g.ForEach(func(v *graph.Vertex) bool {
		w := eng.workers[eng.owner(v.ID)]
		w.local[v.ID] = v
		return true
	})

	// Spawn ALL tasks up front (batch framework).
	dl := newDeadline(cfg.Timeout)
	for _, w := range eng.workers {
		w := w
		for _, v := range w.local {
			algoImpl.Seed(v, func(t *core.Task) {
				eng.chargeTask(t)
				w.admit(t)
			})
		}
	}

	rounds := 0
	for {
		if dl.exceeded() {
			if sampler != nil {
				sampler.Stop()
			}
			return nil, statsNow(start, eng.budget, counters, rounds), ErrTimeout
		}
		if eng.budget.Limit() > 0 && eng.budget.Used() > eng.budget.Limit() {
			if sampler != nil {
				sampler.Stop()
			}
			return nil, statsNow(start, eng.budget, counters, rounds), memctl.ErrOOM
		}
		work := 0
		for _, w := range eng.workers {
			work += len(w.ready) + len(w.pending)
		}
		if work == 0 {
			break
		}
		rounds++

		// COMPUTE phase: every worker's threads drain its ready queue.
		// (Busy time is charged per task inside runTask so utilization
		// timelines see compute as it happens, not at phase barriers.)
		var wg sync.WaitGroup
		for _, w := range eng.workers {
			w := w
			tasks := w.ready
			w.ready = nil
			var next atomic.Int64
			for t := 0; t < cfg.Threads; t++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := int(next.Add(1)) - 1
						if i >= len(tasks) {
							return
						}
						w.runTask(tasks[i])
					}
				}()
			}
		}
		wg.Wait()
		// Compute done: restore the cache capacity bound before pulling
		// the next batch (pins from the previous comm phase expire here).
		for _, w := range eng.workers {
			w.cache.trim()
		}

		// BARRIER + aggregator sync.
		if eng.agg != nil {
			merged := eng.agg.Zero()
			for _, w := range eng.workers {
				merged = eng.agg.Merge(merged, w.partial)
			}
			eng.global.Store(merged)
		}

		// COMMUNICATE phase: batch-pull every missing vertex; CPU idles.
		var commBytes int64
		for _, w := range eng.workers {
			commBytes += w.fillCache()
		}
		if commBytes > 0 {
			counters.AddNet(commBytes)
		}
		commSleep(cfg, commBytes)
		for _, w := range eng.workers {
			w.ready = append(w.ready, w.pending...)
			w.pending = nil
		}
		eng.observeMemory()
	}

	res := &BatchResult{Rounds: rounds}
	for _, w := range eng.workers {
		res.Records = append(res.Records, w.results...)
	}
	sort.Strings(res.Records)
	if eng.agg != nil {
		merged := eng.agg.Zero()
		for _, w := range eng.workers {
			merged = eng.agg.Merge(merged, w.partial)
		}
		res.AggGlobal = merged
	}
	stats := statsNow(start, eng.budget, counters, rounds)
	stats.CPUUtil = counters.Snapshot().CPUUtil(stats.Elapsed, cfg.Workers*cfg.Threads)
	stats.NetBytes = counters.Snapshot().NetBytes
	if sampler != nil {
		stats.Timeline = sampler.Stop()
	}
	return res, stats, nil
}

func (e *batchEngine) chargeTask(t *core.Task) {
	f := t.FootprintBytes()
	e.taskMem.Add(f)
	_ = e.budget.Charge(f) // checked per round in the main loop
}

func (e *batchEngine) releaseTask(t *core.Task) {
	f := t.FootprintBytes()
	e.taskMem.Add(-f)
	e.budget.Release(f)
}

func (e *batchEngine) observeMemory() {
	var cacheBytes int64
	for _, w := range e.workers {
		cacheBytes += w.cache.bytes
	}
	e.counters.ObserveLive(e.taskMem.Load() + cacheBytes)
}

// admit routes a task to ready or pending depending on whether its
// candidates are all resolvable locally right now.
func (w *batchWorker) admit(t *core.Task) {
	if w.missing(t) == nil {
		w.mu().Lock()
		w.ready = append(w.ready, t)
		w.mu().Unlock()
	} else {
		w.mu().Lock()
		w.pending = append(w.pending, t)
		w.mu().Unlock()
	}
}

func (w *batchWorker) mu() *sync.Mutex { return &w.engine.admitMu }

// missing returns the candidate IDs not in the local partition or cache.
func (w *batchWorker) missing(t *core.Task) []graph.VertexID {
	var out []graph.VertexID
	for _, id := range t.Cands {
		if _, ok := w.local[id]; ok {
			continue
		}
		if _, ok := w.cache.get(id); ok {
			continue
		}
		if !w.engine.g.Has(id) {
			continue // dangling candidate: resolves to nil forever
		}
		out = append(out, id)
	}
	return out
}

// runTask executes update rounds until the task dies or needs a pull.
func (w *batchWorker) runTask(t *core.Task) {
	for {
		if w.missing(t) != nil {
			// A needed vertex was evicted since the last comm phase;
			// requeue for the next batch pull.
			w.mu().Lock()
			w.pending = append(w.pending, t)
			w.mu().Unlock()
			return
		}
		if t.Round == 0 {
			t.Round = 1
		}
		cands := make([]*graph.Vertex, len(t.Cands))
		for i, id := range t.Cands {
			if v, ok := w.local[id]; ok {
				cands[i] = v
			} else if v, ok := w.cache.get(id); ok {
				cands[i] = v
			}
		}
		start := time.Now()
		w.engine.algo.Update(t, cands, w)
		w.engine.counters.AddBusy(time.Since(start))
		next, children := t.TakeTransition()
		for _, c := range children {
			w.engine.chargeTask(c)
			w.admit(c)
		}
		if next == nil {
			w.engine.releaseTask(t)
			w.engine.counters.TaskDone()
			return
		}
		t.Advance(next)
		if w.missing(t) != nil {
			w.mu().Lock()
			w.pending = append(w.pending, t)
			w.mu().Unlock()
			return
		}
	}
}

// fillCache pulls every vertex the pending tasks miss, in one batch, and
// returns the simulated byte volume.
func (w *batchWorker) fillCache() int64 {
	need := make(map[graph.VertexID]bool)
	for _, t := range w.pending {
		for _, id := range w.missing(t) {
			need[id] = true
		}
	}
	var bytes int64
	for id := range need {
		owner := w.engine.workers[w.engine.owner(id)]
		v, ok := owner.local[id]
		if !ok {
			continue // dangling: stays a nil candidate
		}
		w.cache.put(v)
		bytes += v.FootprintBytes()
	}
	return bytes
}

// core.Env implementation for batch workers.

// WorkerID implements core.Env.
func (w *batchWorker) WorkerID() int { return w.id }

// NumWorkers implements core.Env.
func (w *batchWorker) NumWorkers() int { return w.engine.cfg.Workers }

// Emit implements core.Env.
func (w *batchWorker) Emit(record string) {
	w.resMu.Lock()
	w.results = append(w.results, record)
	w.resMu.Unlock()
}

// AggUpdate implements core.Env.
func (w *batchWorker) AggUpdate(v any) {
	if w.engine.agg == nil {
		return
	}
	w.resMu.Lock()
	w.partial = w.engine.agg.Add(w.partial, v)
	w.resMu.Unlock()
}

// AggGlobal implements core.Env: the last barrier-synced global merged
// with the local partial.
func (w *batchWorker) AggGlobal() any {
	if w.engine.agg == nil {
		return nil
	}
	w.resMu.Lock()
	defer w.resMu.Unlock()
	return w.engine.agg.Merge(w.engine.global.Load(), w.partial)
}

// LocalVertex implements core.Env.
func (w *batchWorker) LocalVertex(id graph.VertexID) *graph.Vertex {
	return w.local[id]
}

// lruCache is the plain LRU vertex cache (no reference counting — the
// contrast to G-Miner's RCV cache).
type lruCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[graph.VertexID]*lruEntry
	head     *lruEntry // most recent
	tail     *lruEntry // least recent
	bytes    int64
}

type lruEntry struct {
	v          *graph.Vertex
	prev, next *lruEntry
}

func newLRU(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{capacity: capacity, entries: make(map[graph.VertexID]*lruEntry)}
}

func (c *lruCache) get(id graph.VertexID) (*graph.Vertex, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok {
		return nil, false
	}
	c.moveFront(e)
	return e.v, true
}

// put inserts without evicting: a communication phase must be able to pin
// everything the next compute phase needs even beyond nominal capacity
// (the engine hoards memory, which is part of what Table 4 measures).
// trim restores the capacity bound between rounds.
func (c *lruCache) put(v *graph.Vertex) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[v.ID]; ok {
		c.moveFront(e)
		return
	}
	e := &lruEntry{v: v}
	c.entries[v.ID] = e
	c.bytes += v.FootprintBytes()
	c.pushFront(e)
}

// trim evicts least-recently-used entries down to capacity.
func (c *lruCache) trim() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.entries) > c.capacity && c.tail != nil {
		victim := c.tail
		c.unlink(victim)
		delete(c.entries, victim.v.ID)
		c.bytes -= victim.v.FootprintBytes()
	}
}

func (c *lruCache) moveFront(e *lruEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *lruCache) pushFront(e *lruEntry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *lruCache) unlink(e *lruEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
