package baseline

import (
	"errors"
	"testing"

	"gminer/internal/gen"
	"gminer/internal/graph"
	"gminer/internal/metrics"
)

// echoProgram floods each vertex's ID one hop per superstep for `hops`
// supersteps and aggregates the number of deliveries — enough to check
// the engine's superstep/halt/message semantics precisely.
type echoProgram struct {
	hops int
}

func (p echoProgram) Compute(ctx *ComputeCtx, v *graph.Vertex, state any, msgs []Message) any {
	ctx.Aggregate(int64(len(msgs)))
	if ctx.Superstep < p.hops {
		for _, u := range v.Adj {
			ctx.Send(Message{To: u, Src: v.ID})
		}
	}
	ctx.VoteHalt()
	return nil
}

func TestPregelMessageDelivery(t *testing.T) {
	// Triangle: each vertex sends to 2 neighbors for 1 hop → 6 deliveries.
	g := graph.New(3)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(1, 3)
	g.Freeze()
	res, _, err := runPregel(g, echoProgram{hops: 1}, Config{Workers: 2, Threads: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.AggSum != 6 {
		t.Fatalf("deliveries=%d want 6", res.AggSum)
	}
	if res.Supersteps < 2 {
		t.Fatalf("supersteps=%d", res.Supersteps)
	}
}

func TestPregelHaltTerminates(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 6, Edges: 200, Seed: 1})
	res, _, err := runPregel(g, echoProgram{hops: 3}, Config{Workers: 2, Threads: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// hops supersteps of sends + one final round to drain messages.
	if res.Supersteps > 5 {
		t.Fatalf("engine did not quiesce: %d supersteps", res.Supersteps)
	}
}

func TestPregelMessageMemoryChargedAndReleased(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 8, Edges: 4000, Seed: 2})
	cfg := Config{Workers: 2, Threads: 2}
	cfg.MemBudget = g.FootprintBytes() + 512 // no room for message buffers
	_, _, err := runPregel(g, echoProgram{hops: 1}, cfg, nil)
	if !errors.Is(err, ErrOOM) {
		t.Fatalf("expected OOM from message buffers, got %v", err)
	}
	// With a budget that fits one superstep's messages, release must make
	// multi-superstep runs succeed.
	cfg.MemBudget = g.FootprintBytes() + 64*int64(g.NumEdges())*3
	if _, _, err := runPregel(g, echoProgram{hops: 3}, cfg, nil); err != nil {
		t.Fatalf("messages not released between supersteps: %v", err)
	}
}

func TestPregelCrossWorkerBytesCounted(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 7, Edges: 800, Seed: 3})
	counters := &metrics.Counters{}
	_, _, err := runPregel(g, echoProgram{hops: 1}, Config{Workers: 4, Threads: 1}, counters)
	if err != nil {
		t.Fatal(err)
	}
	if counters.Snapshot().NetBytes == 0 {
		t.Fatal("cross-worker messages not counted")
	}
}

func TestPregelSingleWorkerNoNetwork(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 7, Edges: 800, Seed: 3})
	counters := &metrics.Counters{}
	_, _, err := runPregel(g, echoProgram{hops: 1}, Config{Workers: 1, Threads: 2}, counters)
	if err != nil {
		t.Fatal(err)
	}
	if counters.Snapshot().NetBytes != 0 {
		t.Fatal("single-worker run should have zero cross-worker bytes")
	}
}

func TestPregelEmptyGraph(t *testing.T) {
	g := graph.New(0)
	g.Freeze()
	res, _, err := runPregel(g, echoProgram{hops: 1}, Config{}, nil)
	if err != nil || res.AggSum != 0 {
		t.Fatalf("empty graph: %+v %v", res, err)
	}
}

func TestPregelTimeout(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 6, Edges: 300, Seed: 4})
	cfg := Config{Workers: 1, Threads: 1, Timeout: 1} // 1ns
	_, _, err := runPregel(g, echoProgram{hops: 1000000}, cfg, nil)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("expected timeout, got %v", err)
	}
}
