package baseline

import (
	"sync/atomic"

	"gminer/internal/algo"
	"gminer/internal/graph"
	"gminer/internal/metrics"
)

// BSP is the Giraph-like vertex-centric engine (the "Giraph" rows of
// Tables 1/3, Figure 10); with Dataflow set it models GraphX's dataflow
// overhead. Both run on the mini-Pregel substrate of pregel.go.
type BSP struct {
	Dataflow bool
}

// Name identifies the engine in harness output.
func (b BSP) Name() string {
	if b.Dataflow {
		return "graphx-like"
	}
	return "giraph-like"
}

// tcProgram counts triangles vertex-centrically: in superstep 0 each
// vertex v sends, to every higher neighbor u, the still-higher suffix of
// Γ(v); in superstep 1 each u intersects the received lists with Γ(u).
type tcProgram struct{}

// Compute implements VertexProgram.
func (tcProgram) Compute(ctx *ComputeCtx, v *graph.Vertex, state any, msgs []Message) any {
	switch ctx.Superstep {
	case 0:
		adj := v.Adj
		for i, u := range adj {
			if u <= v.ID {
				continue
			}
			// Neighbors after u (sorted) are the possible third vertices.
			if i+1 < len(adj) {
				ctx.Send(Message{To: u, Src: v.ID, IDs: adj[i+1:]})
			}
		}
		return nil
	default:
		var count int64
		for _, m := range msgs {
			for _, w := range m.IDs {
				if v.HasNeighbor(w) {
					count++
				}
			}
		}
		if count > 0 {
			ctx.Aggregate(count)
		}
		ctx.VoteHalt()
		return nil
	}
}

// TC runs triangle counting.
func (b BSP) TC(g *graph.Graph, cfg Config) (int64, Stats, error) {
	cfg.Dataflow = b.Dataflow
	counters := &metrics.Counters{}
	res, stats, err := runPregel(g, tcProgram{}, cfg, counters)
	stats.CPUUtil = counters.Snapshot().CPUUtil(stats.Elapsed, cfg.defaults().Workers*cfg.defaults().Threads)
	if err != nil {
		return 0, stats, err
	}
	return res.AggSum, stats, nil
}

// mcfProgram finds the maximum clique vertex-centrically. Superstep 0:
// every vertex u broadcasts Γ(u) to its lower neighbors — i.e. the engine
// materializes every 1-hop neighborhood subgraph in message buffers,
// the memory blowup §3 blames for Giraph's OOM in Table 1. Superstep 1:
// each v runs the branch-and-bound search on its materialized
// neighborhood, pruned by a process-wide best (a charitable stand-in for
// Giraph's per-superstep aggregator).
type mcfProgram struct {
	best *atomic.Int64
}

// Compute implements VertexProgram.
func (p mcfProgram) Compute(ctx *ComputeCtx, v *graph.Vertex, state any, msgs []Message) any {
	switch ctx.Superstep {
	case 0:
		maxStore := int64(1)
		if len(v.Adj) > 0 {
			maxStore = 2
		}
		for {
			cur := p.best.Load()
			if cur >= maxStore || p.best.CompareAndSwap(cur, maxStore) {
				break
			}
		}
		for _, u := range v.Adj {
			if u < v.ID {
				ctx.Send(Message{To: u, Src: v.ID, IDs: v.Adj})
			}
		}
		return nil
	default:
		// Materialized neighborhood: adjacency of every higher neighbor.
		var ids []graph.VertexID
		verts := make([]*graph.Vertex, 0, len(msgs))
		for _, m := range msgs {
			ids = append(ids, m.Src)
			verts = append(verts, &graph.Vertex{ID: m.Src, Adj: m.IDs})
		}
		if int64(1+len(ids)) > p.best.Load() {
			bound := func() int { return int(p.best.Load()) }
			if b, _ := algo.SearchMaxClique(ids, verts, 1, bound); int64(b) > p.best.Load() {
				for {
					cur := p.best.Load()
					if cur >= int64(b) || p.best.CompareAndSwap(cur, int64(b)) {
						break
					}
				}
			}
		}
		ctx.VoteHalt()
		return nil
	}
}

// MCF runs maximum clique finding; expect ErrOOM on dense graphs with a
// realistic budget (the Table 1 Giraph row).
func (b BSP) MCF(g *graph.Graph, cfg Config) (int, Stats, error) {
	cfg.Dataflow = b.Dataflow
	counters := &metrics.Counters{}
	prog := mcfProgram{best: &atomic.Int64{}}
	_, stats, err := runPregel(g, prog, cfg, counters)
	stats.CPUUtil = counters.Snapshot().CPUUtil(stats.Elapsed, cfg.defaults().Workers*cfg.defaults().Threads)
	if err != nil {
		return 0, stats, err
	}
	return int(prog.best.Load()), stats, nil
}
