// Package baseline reimplements the systems the paper compares G-Miner
// against (§2, §3, §8.2), each preserving exactly the design property the
// paper identifies as its bottleneck:
//
//   - Single: the optimized single-threaded implementation (Table 1,
//     Figure 7's COST baseline) — just the sequential reference algorithms.
//   - BSP: a Giraph-like vertex-centric engine with bulk-synchronous
//     supersteps; graph mining on it must materialize 1-hop neighborhood
//     subgraphs up front, which exhausts the memory budget (Table 1's
//     OOM row). A Dataflow flag adds the per-superstep materialization
//     overhead of dataflow engines (the GraphX row).
//   - Embed: an Arabesque-like embedding-exploration engine that expands
//     all embeddings one level per round and filters only afterwards,
//     wasting memory and compute on invalid candidates.
//   - Batch: a G-thinker-like subgraph-centric engine executing the SAME
//     core.Algorithm implementations as G-Miner, but in alternating
//     whole-batch compute and communicate phases with an LRU (not
//     reference-counting) cache and no LSH ordering — so CPU idles during
//     pulls and vice versa (Figure 5), and there is no disk spilling, no
//     task stealing.
//
// Every engine charges its dominant allocations against a memctl.Budget
// and counts simulated network bytes, so Table 1/3/4 rows are comparable
// with the G-Miner runtime's metrics.
package baseline

import (
	"errors"
	"time"

	"gminer/internal/memctl"
	"gminer/internal/metrics"
)

// ErrTimeout marks a run that exceeded its deadline (the paper's ">24h"
// table entries).
var ErrTimeout = errors.New("baseline: run exceeded deadline")

// ErrOOM re-exports the budget error for callers.
var ErrOOM = memctl.ErrOOM

// Config controls a baseline engine run.
type Config struct {
	// Workers is the simulated node count; Threads the compute threads
	// per worker.
	Workers int
	Threads int
	// MemBudget bounds the engine's charged allocations; 0 = unlimited.
	MemBudget int64
	// Latency and BandwidthBps shape the simulated communication phases.
	Latency      time.Duration
	BandwidthBps int64
	// Timeout aborts the run (0 = none).
	Timeout time.Duration
	// CacheVertices is the Batch engine's LRU cache capacity per worker.
	CacheVertices int
	// Dataflow adds the per-superstep dataset-materialization overhead of
	// dataflow engines (the GraphX model) to the BSP engine.
	Dataflow bool
	// SampleEvery enables utilization timeline sampling (Figure 5) with
	// the given period; 0 disables.
	SampleEvery time.Duration
}

func (c Config) defaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Threads <= 0 {
		c.Threads = 4
	}
	if c.CacheVertices <= 0 {
		c.CacheVertices = 8192
	}
	return c
}

// Stats reports a run's resource usage in the units the paper's tables
// use.
type Stats struct {
	Elapsed    time.Duration
	PeakMem    int64
	NetBytes   int64
	CPUUtil    float64 // busy fraction of compute threads
	Timeline   []metrics.TimelinePoint
	Supersteps int
}

// deadline tracks a run's timeout.
type deadline struct {
	at time.Time
}

func newDeadline(timeout time.Duration) deadline {
	if timeout <= 0 {
		return deadline{}
	}
	return deadline{at: time.Now().Add(timeout)}
}

func (d deadline) exceeded() bool {
	return !d.at.IsZero() && time.Now().After(d.at)
}

// commSleep simulates one communication phase moving `bytes` across the
// network: full latency plus serialization at the configured bandwidth.
func commSleep(cfg Config, bytes int64) {
	var dur time.Duration
	if cfg.Latency > 0 {
		dur += cfg.Latency
	}
	if cfg.BandwidthBps > 0 {
		dur += time.Duration(bytes * int64(time.Second) / cfg.BandwidthBps)
	}
	if dur > 0 {
		time.Sleep(dur)
	}
}
