package monitor

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"gminer/internal/metrics"
)

type fakeSource struct {
	snaps []metrics.Snapshot
	done  bool
}

func (f *fakeSource) WorkerSnapshots() []metrics.Snapshot { return f.snaps }
func (f *fakeSource) Done() bool                          { return f.done }

func startServer(t *testing.T, src Source) (*Server, string) {
	t.Helper()
	s := New(src)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s, addr
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestStatusJSON(t *testing.T) {
	src := &fakeSource{snaps: []metrics.Snapshot{
		{Busy: time.Second, NetBytes: 100, TasksDone: 5},
		{Busy: 2 * time.Second, NetBytes: 200, TasksDone: 7},
	}}
	_, addr := startServer(t, src)
	var st Status
	if err := json.Unmarshal([]byte(get(t, "http://"+addr+"/status")), &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Workers) != 2 || st.Done {
		t.Fatalf("status: %+v", st)
	}
	if st.Totals.TasksDone != 12 || st.Totals.NetBytes != 300 {
		t.Fatalf("totals: %+v", st.Totals)
	}
	if st.Workers[1].BusySeconds != 2.0 {
		t.Fatalf("worker 1: %+v", st.Workers[1])
	}
}

func TestHealthz(t *testing.T) {
	src := &fakeSource{}
	_, addr := startServer(t, src)
	if got := get(t, "http://"+addr+"/healthz"); !strings.Contains(got, "running") {
		t.Fatalf("healthz: %q", got)
	}
	src.done = true
	if got := get(t, "http://"+addr+"/healthz"); !strings.Contains(got, "done") {
		t.Fatalf("healthz after done: %q", got)
	}
}

func TestTextSummary(t *testing.T) {
	src := &fakeSource{snaps: []metrics.Snapshot{{TasksDone: 3}}}
	_, addr := startServer(t, src)
	got := get(t, "http://"+addr+"/")
	if !strings.Contains(got, "worker") || !strings.Contains(got, "total") {
		t.Fatalf("text: %q", got)
	}
}

func TestStopClosesListener(t *testing.T) {
	s, addr := startServer(t, &fakeSource{})
	s.Stop()
	if _, err := http.Get("http://" + addr + "/status"); err == nil {
		t.Fatal("server still reachable after Stop")
	}
}
