package monitor

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"gminer/internal/metrics"
	"gminer/internal/trace"
)

type fakeSource struct {
	snaps []metrics.Snapshot
	done  bool
}

func (f *fakeSource) WorkerSnapshots() []metrics.Snapshot { return f.snaps }
func (f *fakeSource) Done() bool                          { return f.done }

func startServer(t *testing.T, src Source) (*Server, string) {
	t.Helper()
	s := New(src)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s, addr
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestStatusJSON(t *testing.T) {
	src := &fakeSource{snaps: []metrics.Snapshot{
		{Busy: time.Second, NetBytes: 100, TasksDone: 5},
		{Busy: 2 * time.Second, NetBytes: 200, TasksDone: 7},
	}}
	_, addr := startServer(t, src)
	var st Status
	if err := json.Unmarshal([]byte(get(t, "http://"+addr+"/status")), &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Workers) != 2 || st.Done {
		t.Fatalf("status: %+v", st)
	}
	if st.Totals.TasksDone != 12 || st.Totals.NetBytes != 300 {
		t.Fatalf("totals: %+v", st.Totals)
	}
	if st.Workers[1].BusySeconds != 2.0 {
		t.Fatalf("worker 1: %+v", st.Workers[1])
	}
}

func TestHealthz(t *testing.T) {
	src := &fakeSource{}
	_, addr := startServer(t, src)
	if got := get(t, "http://"+addr+"/healthz"); !strings.Contains(got, "running") {
		t.Fatalf("healthz: %q", got)
	}
	src.done = true
	if got := get(t, "http://"+addr+"/healthz"); !strings.Contains(got, "done") {
		t.Fatalf("healthz after done: %q", got)
	}
}

func TestTextSummary(t *testing.T) {
	src := &fakeSource{snaps: []metrics.Snapshot{{TasksDone: 3}}}
	_, addr := startServer(t, src)
	got := get(t, "http://"+addr+"/")
	if !strings.Contains(got, "worker") || !strings.Contains(got, "total") {
		t.Fatalf("text: %q", got)
	}
}

func TestStopClosesListener(t *testing.T) {
	s, addr := startServer(t, &fakeSource{})
	s.Stop()
	if _, err := http.Get("http://" + addr + "/status"); err == nil {
		t.Fatal("server still reachable after Stop")
	}
}

// validatePromText is a line-oriented validator for the Prometheus text
// exposition format (0.0.4): every line must be a HELP/TYPE comment or a
// `name{labels} value` sample with a legal metric name; histogram buckets
// must be cumulative. Returns the parsed samples keyed by full series.
func validatePromText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	bucketCum := make(map[string]float64)
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) < 4 {
				t.Fatalf("line %d: malformed comment %q", ln+1, line)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: bare comment %q", ln+1, line)
		}
		idx := strings.LastIndex(line, " ")
		if idx < 0 {
			t.Fatalf("line %d: no value in %q", ln+1, line)
		}
		series, valStr := line[:idx], line[idx+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
		}
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			name = series[:i]
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("line %d: unterminated labels %q", ln+1, series)
			}
		}
		for _, r := range name {
			if !(r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')) {
				t.Fatalf("line %d: bad metric name %q", ln+1, name)
			}
		}
		if strings.HasSuffix(name, "_bucket") {
			if val < bucketCum[name] {
				t.Fatalf("line %d: %s buckets not cumulative", ln+1, name)
			}
			bucketCum[name] = val
		}
		samples[series] = val
	}
	return samples
}

func TestMetricsEndpoint(t *testing.T) {
	src := &fakeSource{snaps: []metrics.Snapshot{
		{Busy: time.Second, NetBytes: 100, TasksDone: 5, CacheHits: 9, CacheMisses: 1},
		{Busy: 2 * time.Second, NetBytes: 200, TasksDone: 7},
	}}
	_, addr := startServer(t, src)
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := validatePromText(t, string(body))
	if samples[`gminer_tasks_done_total{worker="0"}`] != 5 {
		t.Fatalf("worker 0 tasks: %v", samples[`gminer_tasks_done_total{worker="0"}`])
	}
	if samples[`gminer_net_bytes_total{worker="1"}`] != 200 {
		t.Fatalf("worker 1 net bytes: %v", samples[`gminer_net_bytes_total{worker="1"}`])
	}
	if samples["gminer_job_done"] != 0 {
		t.Fatalf("job done gauge: %v", samples["gminer_job_done"])
	}
}

func TestMetricsWithTracer(t *testing.T) {
	src := &fakeSource{snaps: []metrics.Snapshot{{TasksDone: 1}}, done: true}
	tr := trace.New(1, 8).Enable()
	h := tr.Handle(0, trace.CompExecutor)
	for i := 0; i < 10; i++ {
		h.Observe(trace.MetricTaskRound, time.Millisecond)
		h.Event(trace.EvTaskDead, 1)
	}
	s := New(src)
	s.SetTracer(tr)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	body := get(t, "http://"+addr+"/metrics")
	samples := validatePromText(t, body)
	if samples["gminer_task_round_seconds_count"] != 10 {
		t.Fatalf("histogram count: %v", samples["gminer_task_round_seconds_count"])
	}
	if samples[`gminer_task_round_seconds_bucket{le="+Inf"}`] != 10 {
		t.Fatalf("+Inf bucket: %v", samples[`gminer_task_round_seconds_bucket{le="+Inf"}`])
	}
	if samples[`gminer_trace_events_total{event="task_dead"}`] != 10 {
		t.Fatalf("event counter: %v", samples[`gminer_trace_events_total{event="task_dead"}`])
	}
	if samples["gminer_job_done"] != 1 {
		t.Fatalf("job done gauge: %v", samples["gminer_job_done"])
	}
}
