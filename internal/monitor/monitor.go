// Package monitor exposes a running job's progress over HTTP — the
// operational view a cluster operator would have of the master's progress
// table (§5.1's progress collector made visible). It serves JSON
// snapshots of per-worker counters plus a plain-text summary, suitable
// for curl, dashboards or scrapers.
package monitor

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"gminer/internal/metrics"
	"gminer/internal/trace"
)

// Source is what the monitor samples: per-worker counters and job
// metadata. cluster.Job satisfies this via a small adapter (see Attach).
type Source interface {
	// WorkerSnapshots returns one snapshot per worker.
	WorkerSnapshots() []metrics.Snapshot
	// Done reports whether the job has terminated.
	Done() bool
}

// Status is the JSON document served at /status.
type Status struct {
	Uptime  string         `json:"uptime"`
	Done    bool           `json:"done"`
	Workers []WorkerStatus `json:"workers"`
	Totals  WorkerStatus   `json:"totals"`
}

// WorkerStatus is one worker's externally visible state.
type WorkerStatus struct {
	Worker      int     `json:"worker"`
	BusySeconds float64 `json:"busy_seconds"`
	NetBytes    int64   `json:"net_bytes"`
	DiskBytes   int64   `json:"disk_bytes"`
	TasksDone   int64   `json:"tasks_done"`
	Results     int64   `json:"results"`
	CacheHit    float64 `json:"cache_hit_rate"`
	Stolen      int64   `json:"tasks_stolen"`
}

// Server serves job status over HTTP.
type Server struct {
	src    Source
	tracer *trace.Tracer // optional; adds histograms to /metrics
	start  time.Time

	mu  sync.Mutex
	srv *http.Server
	ln  net.Listener
}

// New creates a monitor server over src.
func New(src Source) *Server {
	return &Server{src: src, start: time.Now()}
}

// SetTracer attaches a tracer whose latency histograms and event counters
// are appended to the /metrics exposition. Call before Start.
func (s *Server) SetTracer(t *trace.Tracer) { s.tracer = t }

// Start listens on addr (e.g. "127.0.0.1:0") and serves until Stop.
// Returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("monitor: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/status", s.handleStatus)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/", s.handleText)
	srv := &http.Server{Handler: mux}
	s.mu.Lock()
	s.srv = srv
	s.ln = ln
	s.mu.Unlock()
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Stop shuts the server down.
func (s *Server) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.srv != nil {
		_ = s.srv.Close()
		s.srv = nil
	}
}

func (s *Server) status() Status {
	snaps := s.src.WorkerSnapshots()
	st := Status{
		Uptime: time.Since(s.start).Round(time.Millisecond).String(),
		Done:   s.src.Done(),
	}
	var total metrics.Snapshot
	for i, snap := range snaps {
		st.Workers = append(st.Workers, workerStatus(i, snap))
		total = total.Add(snap)
	}
	st.Totals = workerStatus(-1, total)
	return st
}

func workerStatus(i int, s metrics.Snapshot) WorkerStatus {
	return WorkerStatus{
		Worker:      i,
		BusySeconds: s.Busy.Seconds(),
		NetBytes:    s.NetBytes,
		DiskBytes:   s.DiskRead + s.DiskWrite,
		TasksDone:   s.TasksDone,
		Results:     s.Results,
		CacheHit:    s.CacheHitRate(),
		Stolen:      s.Stolen,
	}
}

// promCounter describes one per-worker counter family on /metrics.
type promCounter struct {
	name  string
	help  string
	typ   string // "counter" or "gauge"
	value func(metrics.Snapshot) float64
}

var promCounters = []promCounter{
	{"gminer_busy_seconds_total", "Computing-thread busy time.", "counter",
		func(s metrics.Snapshot) float64 { return s.Busy.Seconds() }},
	{"gminer_net_bytes_total", "Payload bytes sent over the network.", "counter",
		func(s metrics.Snapshot) float64 { return float64(s.NetBytes) }},
	{"gminer_net_messages_total", "Messages sent over the network.", "counter",
		func(s metrics.Snapshot) float64 { return float64(s.NetMsgs) }},
	{"gminer_disk_read_bytes_total", "Task-store spill bytes read.", "counter",
		func(s metrics.Snapshot) float64 { return float64(s.DiskRead) }},
	{"gminer_disk_write_bytes_total", "Task-store spill bytes written.", "counter",
		func(s metrics.Snapshot) float64 { return float64(s.DiskWrite) }},
	{"gminer_tasks_done_total", "Completed (dead) tasks.", "counter",
		func(s metrics.Snapshot) float64 { return float64(s.TasksDone) }},
	{"gminer_results_total", "Emitted output records.", "counter",
		func(s metrics.Snapshot) float64 { return float64(s.Results) }},
	{"gminer_cache_hits_total", "RCV cache hits.", "counter",
		func(s metrics.Snapshot) float64 { return float64(s.CacheHits) }},
	{"gminer_cache_misses_total", "RCV cache misses.", "counter",
		func(s metrics.Snapshot) float64 { return float64(s.CacheMisses) }},
	{"gminer_tasks_stolen_total", "Tasks migrated by work stealing.", "counter",
		func(s metrics.Snapshot) float64 { return float64(s.Stolen) }},
	{"gminer_checkpoint_failures_total", "Checkpoint epochs a worker failed to snapshot or persist.", "counter",
		func(s metrics.Snapshot) float64 { return float64(s.CkptFails) }},
	{"gminer_live_bytes", "Estimated live memory.", "gauge",
		func(s metrics.Snapshot) float64 { return float64(s.LiveBytes) }},
	{"gminer_peak_bytes", "Peak estimated live memory.", "gauge",
		func(s metrics.Snapshot) float64 { return float64(s.PeakBytes) }},
}

// JobSnapshots labels one job's per-worker snapshots for a multi-job
// Prometheus exposition (the gminerd daemon serves many jobs from one
// /metrics endpoint).
type JobSnapshots struct {
	// Job is the job-scoped ID; empty emits plain single-job series with
	// no job label, which keeps the single-shot CLI exposition unchanged.
	Job     string
	Workers []metrics.Snapshot
}

// WriteProm writes the standard gminer counter families for the given
// jobs, one series per (job, worker) pair. The single-job monitor and the
// multi-job daemon share this table, so serving mode exposes exactly the
// metric names dashboards already scrape, with an extra job label.
func WriteProm(w io.Writer, jobs []JobSnapshots) {
	for _, c := range promCounters {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", c.name, c.help, c.name, c.typ)
		for _, js := range jobs {
			for i, snap := range js.Workers {
				if js.Job == "" {
					fmt.Fprintf(w, "%s{worker=\"%d\"} %s\n", c.name, i,
						strconv.FormatFloat(c.value(snap), 'g', -1, 64))
				} else {
					fmt.Fprintf(w, "%s{job=%q,worker=\"%d\"} %s\n", c.name, js.Job, i,
						strconv.FormatFloat(c.value(snap), 'g', -1, 64))
				}
			}
		}
	}
}

// TenantStat is one tenant's QoS aggregate for the daemon's multi-tenant
// /metrics exposition: admission-queue depth, queue-wait summary and
// completed compute spend.
type TenantStat struct {
	Tenant string
	// Queued is the tenant's current admission-queue depth.
	Queued int
	// WaitSumSeconds / WaitCount summarize the queue wait of every job of
	// this tenant that has left the queue (dispatched, shed or cancelled).
	WaitSumSeconds float64
	WaitCount      int64
	// SpendSeconds is the tenant's completed compute spend (busy
	// thread-seconds summed over workers, over all its finished jobs).
	SpendSeconds float64
}

// WriteTenantProm writes the per-tenant QoS families. Callers pass the
// stats sorted by tenant so the exposition is deterministic.
func WriteTenantProm(w io.Writer, stats []TenantStat) {
	fmt.Fprintf(w, "# HELP gminer_jobs_queued Jobs waiting in the admission queue, per tenant.\n# TYPE gminer_jobs_queued gauge\n")
	for _, ts := range stats {
		fmt.Fprintf(w, "gminer_jobs_queued{tenant=%q} %d\n", ts.Tenant, ts.Queued)
	}
	fmt.Fprintf(w, "# HELP gminer_job_queue_wait_seconds Time jobs spent in the admission queue before dispatch, shed or cancel.\n# TYPE gminer_job_queue_wait_seconds summary\n")
	for _, ts := range stats {
		fmt.Fprintf(w, "gminer_job_queue_wait_seconds_sum{tenant=%q} %s\n", ts.Tenant,
			strconv.FormatFloat(ts.WaitSumSeconds, 'g', -1, 64))
		fmt.Fprintf(w, "gminer_job_queue_wait_seconds_count{tenant=%q} %d\n", ts.Tenant, ts.WaitCount)
	}
	fmt.Fprintf(w, "# HELP gminer_tenant_spend_seconds_total Completed compute spend per tenant (busy thread-seconds).\n# TYPE gminer_tenant_spend_seconds_total counter\n")
	for _, ts := range stats {
		fmt.Fprintf(w, "gminer_tenant_spend_seconds_total{tenant=%q} %s\n", ts.Tenant,
			strconv.FormatFloat(ts.SpendSeconds, 'g', -1, 64))
	}
}

// handleMetrics serves the Prometheus text exposition: per-worker counter
// families from the progress table plus the tracer's latency histograms
// and event counters when a tracer is attached.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.writeMetrics(w)
}

func (s *Server) writeMetrics(w io.Writer) {
	WriteProm(w, []JobSnapshots{{Workers: s.src.WorkerSnapshots()}})
	done := 0.0
	if s.src.Done() {
		done = 1
	}
	fmt.Fprintf(w, "# HELP gminer_job_done Whether the job has terminated.\n# TYPE gminer_job_done gauge\ngminer_job_done %g\n", done)
	fmt.Fprintf(w, "# HELP gminer_uptime_seconds Time since the monitor started.\n# TYPE gminer_uptime_seconds gauge\ngminer_uptime_seconds %s\n",
		strconv.FormatFloat(time.Since(s.start).Seconds(), 'g', -1, 64))
	if s.tracer != nil {
		_ = s.tracer.WritePrometheus(w)
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.status())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.src.Done() {
		fmt.Fprintln(w, "done")
		return
	}
	fmt.Fprintln(w, "running")
}

func (s *Server) handleText(w http.ResponseWriter, r *http.Request) {
	st := s.status()
	fmt.Fprintf(w, "gminer job — uptime %s done=%v\n", st.Uptime, st.Done)
	fmt.Fprintf(w, "%-8s %12s %12s %12s %10s %8s\n",
		"worker", "busy(s)", "net(B)", "tasks", "results", "stolen")
	for _, ws := range st.Workers {
		fmt.Fprintf(w, "%-8d %12.3f %12d %12d %10d %8d\n",
			ws.Worker, ws.BusySeconds, ws.NetBytes, ws.TasksDone, ws.Results, ws.Stolen)
	}
	t := st.Totals
	fmt.Fprintf(w, "%-8s %12.3f %12d %12d %10d %8d\n",
		"total", t.BusySeconds, t.NetBytes, t.TasksDone, t.Results, t.Stolen)
}
