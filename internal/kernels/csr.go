package kernels

import (
	"fmt"
	"sort"
	"sync"

	"gminer/internal/graph"
)

// CSR is the packed, degree-ranked adjacency index compiled plans run on.
// It is built once per resident graph (at Session prepare, or lazily at
// job start) and shared read-only by every job and executor thread:
//
//   - vertices are re-ranked by (degree ascending, ID ascending); rank
//     space is dense [0, n), which is what lets the bitset strategy and
//     the plan executor's per-level arrays work without hash lookups;
//   - each row is the neighbor ranks sorted ascending, packed into one
//     edges array (CSR layout: offsets[r] .. offsets[r+1]);
//   - dagStart[r] marks where the row's higher-ranked suffix begins: the
//     out-neighborhood of the degree-oriented DAG (G2Miner's orientation,
//     u→v iff (deg(u), id(u)) < (deg(v), id(v))), which bounds expansion
//     work at every triangle/clique core by the arboricity instead of the
//     max degree.
//
// The ranking changes only *where* exploration starts, never *what* it
// finds: every count produced through a CSR equals the count produced in
// ID space (the differential suite in internal/plan pins this).
type CSR struct {
	n       int
	ids     []graph.VertexID          // rank → vertex ID
	labels  []int32                   // rank → label (graph.NoLabel if none)
	rank    map[graph.VertexID]uint32 // vertex ID → rank
	offsets []int64                   // len n+1
	edges   []uint32                  // neighbor ranks, ascending per row
	dag     []int64                   // absolute edge index of the first higher-ranked neighbor

	scratch sync.Pool
}

// Build compiles the CSR index from a frozen graph. It is a pure function
// of the graph: two builds from equal graphs produce identical indexes.
func Build(g *graph.Graph) (*CSR, error) {
	if !g.Frozen() {
		return nil, fmt.Errorf("kernels: CSR requires a frozen graph")
	}
	n := g.NumVertices()
	if int64(n) > int64(^uint32(0)) {
		return nil, fmt.Errorf("kernels: graph too large for 32-bit ranks (%d vertices)", n)
	}
	c := &CSR{
		n:      n,
		ids:    make([]graph.VertexID, n),
		labels: make([]int32, n),
		rank:   make(map[graph.VertexID]uint32, n),
	}
	type vd struct {
		id  graph.VertexID
		deg int32
	}
	order := make([]vd, 0, n)
	g.ForEach(func(v *graph.Vertex) bool {
		order = append(order, vd{v.ID, int32(len(v.Adj))})
		return true
	})
	sort.Slice(order, func(i, j int) bool {
		if order[i].deg != order[j].deg {
			return order[i].deg < order[j].deg
		}
		return order[i].id < order[j].id
	})
	var edgeTotal int64
	for r, o := range order {
		c.ids[r] = o.id
		c.rank[o.id] = uint32(r)
		edgeTotal += int64(o.deg)
	}
	c.offsets = make([]int64, n+1)
	c.edges = make([]uint32, 0, edgeTotal)
	c.dag = make([]int64, n)
	row := make([]uint32, 0, 64)
	for r := 0; r < n; r++ {
		v := g.Vertex(c.ids[r])
		c.labels[r] = v.Label
		row = row[:0]
		for _, nb := range v.Adj {
			row = append(row, c.rank[nb])
		}
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
		c.offsets[r] = int64(len(c.edges))
		c.edges = append(c.edges, row...)
		c.dag[r] = c.offsets[r] + int64(SearchSorted(row, uint32(r)+1))
	}
	c.offsets[n] = int64(len(c.edges))
	c.scratch.New = func() any { return NewScratch(n) }
	return c, nil
}

// MustBuild is Build for graphs known frozen; it panics on error.
func MustBuild(g *graph.Graph) *CSR {
	c, err := Build(g)
	if err != nil {
		panic(err)
	}
	return c
}

// N returns the number of vertices (the rank universe size).
func (c *CSR) N() int { return c.n }

// NumEdges returns the number of directed adjacency entries (2|E|).
func (c *CSR) NumEdges() int64 { return int64(len(c.edges)) }

// Row returns the full neighbor ranks of rank r, ascending.
func (c *CSR) Row(r uint32) []uint32 {
	return c.edges[c.offsets[r]:c.offsets[r+1]]
}

// DagRow returns the higher-ranked suffix of Row(r): the out-neighbors of
// r in the degree-oriented DAG.
func (c *CSR) DagRow(r uint32) []uint32 {
	return c.edges[c.dag[r]:c.offsets[r+1]]
}

// Degree returns |Γ(r)|.
func (c *CSR) Degree(r uint32) int {
	return int(c.offsets[r+1] - c.offsets[r])
}

// Label returns the label of rank r.
func (c *CSR) Label(r uint32) int32 { return c.labels[r] }

// IDOf maps a rank back to its vertex ID.
func (c *CSR) IDOf(r uint32) graph.VertexID { return c.ids[r] }

// Rank maps a vertex ID to its rank.
func (c *CSR) Rank(id graph.VertexID) (uint32, bool) {
	r, ok := c.rank[id]
	return r, ok
}

// AppendDagNeighborIDs appends the IDs of id's neighbors with strictly
// higher (degree, ID) rank to dst, sorted ascending by ID — the candidate
// set of a degree-oriented seed task. Unknown IDs append nothing.
func (c *CSR) AppendDagNeighborIDs(dst []graph.VertexID, id graph.VertexID) []graph.VertexID {
	r, ok := c.rank[id]
	if !ok {
		return dst
	}
	base := len(dst)
	for _, nb := range c.DagRow(r) {
		dst = append(dst, c.ids[nb])
	}
	out := dst[base:]
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return dst
}

// GetScratch borrows a scratch bitmap sized to the rank universe; return
// it with PutScratch. Pooled so concurrent executor threads each get
// their own without per-call allocation.
func (c *CSR) GetScratch() *Scratch { return c.scratch.Get().(*Scratch) }

// PutScratch returns a scratch to the pool (it must be Reset, which every
// kernel leaves it as).
func (c *CSR) PutScratch(s *Scratch) { c.scratch.Put(s) }

// FootprintBytes estimates the index's resident size for memory planning.
func (c *CSR) FootprintBytes() int64 {
	return int64(8*len(c.ids)) + int64(4*len(c.labels)) + int64(16*len(c.rank)) +
		int64(8*len(c.offsets)) + int64(4*len(c.edges)) + int64(8*len(c.dag))
}
