package kernels

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"gminer/internal/gen"
	"gminer/internal/graph"
)

// intersectOracle is the trivially correct map-based reference every
// kernel must agree with.
func intersectOracle(a, b []uint32) []uint32 {
	in := make(map[uint32]bool, len(a))
	for _, x := range a {
		in[x] = true
	}
	out := []uint32{}
	for _, x := range b {
		if in[x] {
			out = append(out, x)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// kernelCases are the adversarial shapes the satellite task names: empty
// operands, disjoint ranges, fully nested, interleaved, singletons at the
// boundaries, and skewed sizes that cross the gallop threshold.
var kernelCases = []struct {
	name string
	a, b []uint32
}{
	{"both_empty", nil, nil},
	{"a_empty", nil, []uint32{1, 2, 3}},
	{"b_empty", []uint32{1, 2, 3}, nil},
	{"disjoint_low_high", []uint32{1, 2, 3}, []uint32{10, 11, 12}},
	{"disjoint_interleaved", []uint32{0, 2, 4, 6}, []uint32{1, 3, 5, 7}},
	{"equal", []uint32{2, 4, 8, 16}, []uint32{2, 4, 8, 16}},
	{"nested", []uint32{5, 6, 7}, []uint32{1, 3, 5, 6, 7, 9, 11}},
	{"single_hit_first", []uint32{0}, []uint32{0, 100, 200}},
	{"single_hit_last", []uint32{200}, []uint32{0, 100, 200}},
	{"single_miss", []uint32{150}, []uint32{0, 100, 200}},
	{"partial_overlap", []uint32{1, 4, 9, 16, 25}, []uint32{4, 5, 16, 17, 25}},
	{"skewed", []uint32{500, 5000}, seqU32(0, 10000, 1)},
	{"skewed_sparse_hits", []uint32{0, 9999}, seqU32(0, 10000, 1)},
	{"strided", seqU32(0, 1024, 3), seqU32(0, 1024, 7)},
}

func seqU32(from, to, step uint32) []uint32 {
	var out []uint32
	for x := from; x < to; x += step {
		out = append(out, x)
	}
	return out
}

func TestKernelAgreement(t *testing.T) {
	sc := NewScratch(16384)
	for _, tc := range kernelCases {
		want := intersectOracle(tc.a, tc.b)
		checks := []struct {
			name string
			got  []uint32
			n    int
		}{
			{"merge", intersectMerge(nil, tc.a, tc.b), CountMerge(tc.a, tc.b)},
			{"gallop", intersectGallop(nil, tc.a, tc.b), CountGallop(tc.a, tc.b)},
			{"bitset", IntersectScratchForced(sc, nil, tc.a, tc.b), CountBitset(sc, tc.a, tc.b)},
			{"auto", Intersect(nil, tc.a, tc.b), Count(tc.a, tc.b)},
			{"auto_scratch", IntersectScratch(sc, nil, tc.a, tc.b), CountScratch(sc, tc.a, tc.b)},
		}
		for _, ck := range checks {
			if ck.n != len(want) {
				t.Errorf("%s/%s: count %d, want %d", tc.name, ck.name, ck.n, len(want))
			}
			if len(ck.got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(ck.got, want)) {
				t.Errorf("%s/%s: intersection %v, want %v", tc.name, ck.name, ck.got, want)
			}
		}
	}
}

// IntersectScratchForced exercises the bitset path regardless of size
// thresholds (test-only helper).
func IntersectScratchForced(sc *Scratch, dst, a, b []uint32) []uint32 {
	small, large := a, b
	if len(small) > len(large) {
		small, large = large, small
	}
	for _, x := range small {
		sc.Mark(x)
	}
	for _, x := range large {
		if sc.Has(x) {
			dst = append(dst, x)
		}
	}
	sc.Reset()
	return dst
}

func TestCountAbove(t *testing.T) {
	a := []uint32{1, 3, 5, 7, 9, 11}
	b := []uint32{3, 5, 6, 9, 11, 13}
	for _, tc := range []struct {
		floor uint32
		want  int
	}{
		{0, 4}, {3, 3}, {5, 2}, {9, 1}, {11, 0}, {100, 0},
	} {
		if got := CountAbove(a, b, tc.floor); got != tc.want {
			t.Errorf("CountAbove(floor=%d) = %d, want %d", tc.floor, got, tc.want)
		}
		if got := len(IntersectAbove(nil, a, b, tc.floor)); got != tc.want {
			t.Errorf("IntersectAbove(floor=%d) len = %d, want %d", tc.floor, got, tc.want)
		}
	}
}

func TestCountGenericIDTypes(t *testing.T) {
	a := []graph.VertexID{1, 5, 9, 12}
	b := []graph.VertexID{5, 6, 12, 40}
	if got := Count(a, b); got != 2 {
		t.Fatalf("Count over VertexID = %d, want 2", got)
	}
	if got := Intersect(nil, a, b); !reflect.DeepEqual(got, []graph.VertexID{5, 12}) {
		t.Fatalf("Intersect over VertexID = %v", got)
	}
}

func TestChoose(t *testing.T) {
	for _, tc := range []struct {
		la, lb  int
		scratch bool
		want    Strategy
	}{
		{0, 100, false, StrategyMerge},
		{10, 10, false, StrategyMerge},
		{10, 10 * GallopRatio, false, StrategyGallop},
		{10 * GallopRatio, 10, false, StrategyGallop},
		{BitsetMinLen, BitsetMinLen + 1, false, StrategyMerge},
		{BitsetMinLen, BitsetMinLen + 1, true, StrategyBitset},
		{BitsetMinLen - 1, BitsetMinLen, true, StrategyMerge},
	} {
		if got := Choose(tc.la, tc.lb, tc.scratch); got != tc.want {
			t.Errorf("Choose(%d, %d, %v) = %v, want %v", tc.la, tc.lb, tc.scratch, got, tc.want)
		}
	}
}

func TestScratchReuse(t *testing.T) {
	sc := NewScratch(256)
	a, b := []uint32{1, 2, 3, 250}, []uint32{2, 250}
	for i := 0; i < 3; i++ {
		if n := CountBitset(sc, a, b); n != 2 {
			t.Fatalf("round %d: CountBitset = %d, want 2 (stale bits?)", i, n)
		}
	}
	// A different pair after Reset must not see leftover marks.
	if n := CountBitset(sc, []uint32{7}, []uint32{1, 2, 3}); n != 0 {
		t.Fatalf("CountBitset after reuse = %d, want 0", n)
	}
}

func TestGallopLowerBound(t *testing.T) {
	b := seqU32(0, 1000, 10) // 0, 10, ..., 990
	lo := 0
	for _, x := range []uint32{0, 5, 10, 995, 990} {
		got := gallop(b, 0, x)
		want := sort.Search(len(b), func(i int) bool { return b[i] >= x })
		if got != want {
			t.Errorf("gallop(%d) = %d, want %d", x, got, want)
		}
		// Also from a moving cursor, as the kernels use it.
		if g2 := gallop(b, lo, x); x >= b[lo] && g2 != want {
			t.Errorf("gallop(lo=%d, %d) = %d, want %d", lo, x, g2, want)
		}
	}
}

func TestCSRBuild(t *testing.T) {
	g := graph.New(8)
	// Star center 0 (deg 4) + a triangle {1,2,5} hanging off.
	for _, e := range [][2]graph.VertexID{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 5}, {2, 5}} {
		g.AddEdge(e[0], e[1])
	}
	g.Freeze()
	csr, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	if csr.N() != 6 {
		t.Fatalf("N = %d, want 6", csr.N())
	}
	// Ranks ascend by (degree, ID): degrees 0:4 1:3 2:3 3:1 4:1 5:2.
	wantOrder := []graph.VertexID{3, 4, 5, 1, 2, 0}
	for r, id := range wantOrder {
		if got := csr.IDOf(uint32(r)); got != id {
			t.Fatalf("rank %d = vertex %d, want %d", r, got, id)
		}
	}
	// Every row must be ascending and mirror the graph adjacency.
	for r := uint32(0); int(r) < csr.N(); r++ {
		row := csr.Row(r)
		v := g.Vertex(csr.IDOf(r))
		if len(row) != len(v.Adj) {
			t.Fatalf("rank %d: row len %d, want %d", r, len(row), len(v.Adj))
		}
		for i, nb := range row {
			if i > 0 && row[i-1] >= nb {
				t.Fatalf("rank %d: row not ascending", r)
			}
			if !v.HasNeighbor(csr.IDOf(nb)) {
				t.Fatalf("rank %d: row entry %d not a graph neighbor", r, nb)
			}
		}
		// DagRow is exactly the suffix above r.
		dag := csr.DagRow(r)
		if want := above(row, r); !reflect.DeepEqual(append([]uint32{}, dag...), append([]uint32{}, want...)) {
			t.Fatalf("rank %d: DagRow %v, want %v", r, dag, want)
		}
	}
	// Sum of DAG out-degrees is |E|: every edge oriented exactly once.
	var dagEdges int64
	for r := uint32(0); int(r) < csr.N(); r++ {
		dagEdges += int64(len(csr.DagRow(r)))
	}
	if dagEdges != g.NumEdges() {
		t.Fatalf("DAG edges %d, want |E| = %d", dagEdges, g.NumEdges())
	}
}

func TestCSRDeterministic(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 7, Edges: 600, Seed: 7})
	a := MustBuild(g)
	b := MustBuild(g)
	if !reflect.DeepEqual(a.ids, b.ids) || !reflect.DeepEqual(a.edges, b.edges) ||
		!reflect.DeepEqual(a.offsets, b.offsets) || !reflect.DeepEqual(a.dag, b.dag) {
		t.Fatal("two CSR builds of the same graph differ")
	}
}

func TestCSRDagNeighborIDs(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 6, Edges: 300, Seed: 3})
	csr := MustBuild(g)
	g.ForEach(func(v *graph.Vertex) bool {
		ids := csr.AppendDagNeighborIDs(nil, v.ID)
		r, _ := csr.Rank(v.ID)
		if len(ids) != len(csr.DagRow(r)) {
			t.Fatalf("vertex %d: %d DAG neighbor IDs, want %d", v.ID, len(ids), len(csr.DagRow(r)))
		}
		for i, id := range ids {
			if i > 0 && ids[i-1] >= id {
				t.Fatalf("vertex %d: DAG neighbor IDs not ascending", v.ID)
			}
			if !v.HasNeighbor(id) {
				t.Fatalf("vertex %d: %d not a neighbor", v.ID, id)
			}
			nr, _ := csr.Rank(id)
			if nr <= r {
				t.Fatalf("vertex %d: neighbor %d rank %d not above %d", v.ID, id, nr, r)
			}
		}
		return true
	})
}

// TestRandomAgreement drives all strategies against the oracle on random
// sorted sets of varied sizes and densities — the deterministic cousin of
// FuzzIntersectKernels.
func TestRandomAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	sc := NewScratch(1 << 16)
	for trial := 0; trial < 200; trial++ {
		a := randomSet(rng, rng.Intn(200), 1<<16)
		b := randomSet(rng, rng.Intn(2000), 1<<16)
		want := intersectOracle(a, b)
		if got := Intersect(nil, a, b); !reflect.DeepEqual(pad(got), pad(want)) {
			t.Fatalf("trial %d: auto %v vs oracle %v", trial, got, want)
		}
		if n := CountBitset(sc, a, b); n != len(want) {
			t.Fatalf("trial %d: bitset count %d, want %d", trial, n, len(want))
		}
		if n := CountGallop(a, b); n != len(want) {
			t.Fatalf("trial %d: gallop count %d, want %d", trial, n, len(want))
		}
	}
}

func randomSet(rng *rand.Rand, n, universe int) []uint32 {
	seen := map[uint32]bool{}
	for len(seen) < n {
		seen[uint32(rng.Intn(universe))] = true
	}
	out := make([]uint32, 0, n)
	for x := range seen {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func pad(s []uint32) []uint32 {
	if s == nil {
		return []uint32{}
	}
	return s
}
