package kernels

import (
	"reflect"
	"sort"
	"testing"
)

// FuzzIntersectKernels cross-checks every intersection strategy — merge,
// gallop, bitset and the adaptive entry points — against a map-based
// oracle on arbitrary byte-derived operands. The raw bytes are first
// normalized into the sorted duplicate-free form the kernels require, so
// the fuzzer explores operand *shapes* (sizes, densities, overlaps),
// which is where intersection bugs live.
func FuzzIntersectKernels(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{1, 2, 3}, []byte{2, 3, 4})
	f.Add([]byte{0, 0, 0, 255}, []byte{255})
	f.Add([]byte{1, 1, 2, 3, 5, 8, 13, 21}, []byte{2, 4, 8, 16, 32, 64})
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		a := setFromBytes(rawA)
		b := setFromBytes(rawB)
		want := intersectOracle(a, b)

		if got := intersectMerge(nil, a, b); !sameSet(got, want) {
			t.Fatalf("merge %v, oracle %v (a=%v b=%v)", got, want, a, b)
		}
		if got := intersectGallop(nil, a, b); !sameSet(got, want) {
			t.Fatalf("gallop %v, oracle %v (a=%v b=%v)", got, want, a, b)
		}
		if got := Intersect(nil, a, b); !sameSet(got, want) {
			t.Fatalf("auto %v, oracle %v (a=%v b=%v)", got, want, a, b)
		}
		sc := NewScratch(1 << 17)
		if got := IntersectScratchForced(sc, nil, a, b); !sameSet(got, want) {
			t.Fatalf("bitset %v, oracle %v (a=%v b=%v)", got, want, a, b)
		}
		for name, n := range map[string]int{
			"CountMerge":  CountMerge(a, b),
			"CountGallop": CountGallop(a, b),
			"Count":       Count(a, b),
			"CountBitset": CountBitset(sc, a, b),
			"CountAuto":   CountScratch(sc, a, b),
		} {
			if n != len(want) {
				t.Fatalf("%s = %d, oracle %d (a=%v b=%v)", name, n, len(want), a, b)
			}
		}
		if len(a) > 0 {
			floor := a[len(a)/2]
			wantAbove := 0
			for _, x := range want {
				if x > floor {
					wantAbove++
				}
			}
			if n := CountAbove(a, b, floor); n != wantAbove {
				t.Fatalf("CountAbove(floor=%d) = %d, want %d", floor, n, wantAbove)
			}
		}
	})
}

// setFromBytes turns fuzzer bytes into a sorted duplicate-free uint32
// slice, pairing bytes so the universe exceeds one byte of range.
func setFromBytes(raw []byte) []uint32 {
	seen := map[uint32]bool{}
	for i := 0; i+1 < len(raw); i += 2 {
		seen[uint32(raw[i])<<8|uint32(raw[i+1])] = true
	}
	if len(raw)%2 == 1 {
		seen[uint32(raw[len(raw)-1])] = true
	}
	out := make([]uint32, 0, len(seen))
	for x := range seen {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sameSet(got, want []uint32) bool {
	if len(got) == 0 && len(want) == 0 {
		return true
	}
	return reflect.DeepEqual(got, want)
}
