package kernels

// Scratch is a reusable dense bitmap over a rank universe [0, n), the
// working memory of the bitset intersection strategy. Marking remembers
// the touched words so Reset costs O(marked), not O(n) — a Scratch can be
// reused across thousands of intersections without re-zeroing the map.
// A Scratch is single-goroutine state; CSR pools them per index so
// concurrent executor threads never share one.
type Scratch struct {
	words []uint64
	dirty []int32 // word indices with at least one bit set
}

// NewScratch returns a scratch bitmap for ranks in [0, n).
func NewScratch(n int) *Scratch {
	return &Scratch{words: make([]uint64, (n+63)/64)}
}

// Len returns the universe size the scratch covers (rounded up to the
// word it was allocated for).
func (s *Scratch) Len() int { return len(s.words) * 64 }

// Mark sets bit r.
func (s *Scratch) Mark(r uint32) {
	w := int32(r >> 6)
	if s.words[w] == 0 {
		s.dirty = append(s.dirty, w)
	}
	s.words[w] |= 1 << (r & 63)
}

// Has reports whether bit r is set.
func (s *Scratch) Has(r uint32) bool {
	return s.words[r>>6]&(1<<(r&63)) != 0
}

// Reset clears every marked bit in O(marked words).
func (s *Scratch) Reset() {
	for _, w := range s.dirty {
		s.words[w] = 0
	}
	s.dirty = s.dirty[:0]
}

// CountScratch returns |a ∩ b| using the bitset strategy when Choose
// selects it (both operands long enough to amortize the bitmap) and the
// merge/gallop kernels otherwise. All elements must lie inside the
// scratch universe. The scratch is left clean.
func CountScratch(sc *Scratch, a, b []uint32) int {
	if sc == nil || Choose(len(a), len(b), true) != StrategyBitset {
		return Count(a, b)
	}
	return CountBitset(sc, a, b)
}

// CountBitset counts |a ∩ b| by marking the smaller operand and probing
// with the larger, unconditionally (benchmarks and tests select it
// directly; adaptive callers go through CountScratch).
func CountBitset(sc *Scratch, a, b []uint32) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	for _, x := range a {
		sc.Mark(x)
	}
	n := 0
	for _, x := range b {
		if sc.Has(x) {
			n++
		}
	}
	sc.Reset()
	return n
}

// IntersectScratch appends a ∩ b to dst, picking bitset/gallop/merge by
// operand size. The result is ascending regardless of strategy.
func IntersectScratch(sc *Scratch, dst, a, b []uint32) []uint32 {
	if sc == nil || Choose(len(a), len(b), true) != StrategyBitset {
		return Intersect(dst, a, b)
	}
	// Mark the smaller operand, scan the larger — but emit in the order of
	// the *larger* scan only if it is the probe side; either way the probe
	// side is ascending, so the output is ascending.
	small, large := a, b
	if len(small) > len(large) {
		small, large = large, small
	}
	for _, x := range small {
		sc.Mark(x)
	}
	for _, x := range large {
		if sc.Has(x) {
			dst = append(dst, x)
		}
	}
	sc.Reset()
	return dst
}
