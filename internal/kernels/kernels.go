// Package kernels provides the set-intersection primitives every
// exploration hot loop in this system reduces to: candidate expansion,
// triangle counting, clique-graph construction and compiled-plan
// execution (internal/plan) all intersect sorted vertex sets. The paper's
// executors used one scalar merge loop everywhere; following G2Miner, the
// strategy is instead chosen per call from the operand sizes:
//
//   - merge: branch-free two-pointer merge, best when |a| ≈ |b|. The loop
//     body has no data-dependent three-way branch — both cursors advance
//     by comparison results the compiler lowers to conditional moves.
//   - gallop: exponential (galloping) binary search of the larger operand
//     for each element of the smaller, best when the sizes are skewed
//     (|b|/|a| ≥ GallopRatio). O(|a| · log |b|).
//   - bitset: mark the smaller operand in a dense bitmap and probe it with
//     the larger, best when both operands are high-degree and a Scratch
//     bitmap over the (dense) rank universe is available (see CSR).
//
// All strategies are pure functions of their operands: they return the
// same result on the same input, so swapping strategy never changes any
// job output (the determinism contract DESIGN.md §12 pins, and the
// property FuzzIntersectKernels cross-checks against a map oracle).
package kernels

// ID is the element constraint for the generic kernels: the vertex-ID and
// rank types the system intersects. Operands must be sorted ascending and
// duplicate-free; results are undefined otherwise (the graph layer's
// Freeze/Validate establish the invariant).
type ID interface {
	~int32 | ~uint32 | ~int64 | ~uint64 | ~int
}

// GallopRatio is the operand-size ratio from which the galloping search
// beats the linear merge: below it, the merge's branch-free body wins on
// real hardware even though it touches more elements. Chosen from the
// cmd/bench kernel sweep (ratios 8–16 are the crossover on amd64).
const GallopRatio = 16

// BitsetMinLen is the smaller-operand length from which the bitset
// strategy is considered when a Scratch is supplied: below it, building
// the bitmap costs more than the merge it replaces.
const BitsetMinLen = 512

// Strategy identifies which kernel Choose selects; exported so benchmarks
// and tests can sweep strategies explicitly.
type Strategy uint8

const (
	// StrategyMerge is the branch-free sorted merge.
	StrategyMerge Strategy = iota
	// StrategyGallop is the galloping binary search.
	StrategyGallop
	// StrategyBitset is the dense-bitmap probe.
	StrategyBitset
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case StrategyMerge:
		return "merge"
	case StrategyGallop:
		return "gallop"
	case StrategyBitset:
		return "bitset"
	}
	return "unknown"
}

// Choose picks the strategy for operand lengths la, lb given whether a
// scratch bitmap is available. It is the single decision point every
// adaptive entry point below shares.
func Choose(la, lb int, scratch bool) Strategy {
	lo, hi := la, lb
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo == 0 {
		return StrategyMerge // nothing to do; merge exits immediately
	}
	if hi >= GallopRatio*lo {
		return StrategyGallop
	}
	if scratch && lo >= BitsetMinLen {
		return StrategyBitset
	}
	return StrategyMerge
}

// Count returns |a ∩ b| for sorted duplicate-free slices, choosing the
// strategy from the operand sizes (no bitset — callers with a Scratch use
// CountScratch).
func Count[T ID](a, b []T) int {
	if Choose(len(a), len(b), false) == StrategyGallop {
		return CountGallop(a, b)
	}
	return CountMerge(a, b)
}

// CountMerge is the branch-free sorted merge count. The loop advances
// each cursor by a comparison result instead of branching three ways, so
// mispredicted-branch stalls do not scale with the output.
func CountMerge[T ID](a, b []T) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		va, vb := a[i], b[j]
		if va == vb {
			n++
		}
		if va <= vb {
			i++
		}
		if vb <= va {
			j++
		}
	}
	return n
}

// CountGallop counts |a ∩ b| by galloping through the larger operand for
// each element of the smaller one.
func CountGallop[T ID](a, b []T) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	n, lo := 0, 0
	for _, x := range a {
		lo = gallop(b, lo, x)
		if lo == len(b) {
			break
		}
		if b[lo] == x {
			n++
			lo++
		}
	}
	return n
}

// CountAbove returns |{x ∈ a ∩ b : x > floor}| — the suffix intersection
// the triangle kernels use (count common neighbors above the current
// vertex), strategy-selected like Count.
func CountAbove[T ID](a, b []T, floor T) int {
	a = above(a, floor)
	b = above(b, floor)
	return Count(a, b)
}

// Intersect appends a ∩ b to dst (which may be nil or a reused buffer
// with dst[:0]) and returns it, choosing merge or gallop by operand size.
// The result is ascending, like the operands.
func Intersect[T ID](dst, a, b []T) []T {
	if Choose(len(a), len(b), false) == StrategyGallop {
		return intersectGallop(dst, a, b)
	}
	return intersectMerge(dst, a, b)
}

// IntersectAbove appends {x ∈ a ∩ b : x > floor} to dst and returns it.
func IntersectAbove[T ID](dst, a, b []T, floor T) []T {
	return Intersect(dst, above(a, floor), above(b, floor))
}

func intersectMerge[T ID](dst, a, b []T) []T {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		va, vb := a[i], b[j]
		if va == vb {
			dst = append(dst, va)
		}
		if va <= vb {
			i++
		}
		if vb <= va {
			j++
		}
	}
	return dst
}

func intersectGallop[T ID](dst, a, b []T) []T {
	if len(a) > len(b) {
		a, b = b, a
	}
	lo := 0
	for _, x := range a {
		lo = gallop(b, lo, x)
		if lo == len(b) {
			break
		}
		if b[lo] == x {
			dst = append(dst, x)
			lo++
		}
	}
	return dst
}

// gallop returns the smallest index i in [lo, len(b)] with b[i] >= x,
// probing exponentially from lo before binary-searching the bracketed
// range — O(log d) where d is the distance advanced, which is what makes
// repeated searches over one operand linear overall.
func gallop[T ID](b []T, lo int, x T) int {
	if lo >= len(b) || b[lo] >= x {
		return lo
	}
	step := 1
	hi := lo + 1
	for hi < len(b) && b[hi] < x {
		lo = hi
		step <<= 1
		hi += step
	}
	if hi > len(b) {
		hi = len(b)
	}
	// Invariant: b[lo] < x <= b[hi] (if hi < len). Binary search (lo, hi].
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if b[mid] < x {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// above returns the suffix of sorted s strictly greater than floor.
func above[T ID](s []T, floor T) []T {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] <= floor {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return s[lo:]
}

// SearchSorted returns the smallest index i with s[i] >= x (len(s) if
// none) — the shared lower-bound everything in this package and the plan
// executor uses to slice candidate ranges.
func SearchSorted[T ID](s []T, x T) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
