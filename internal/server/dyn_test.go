package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"sort"
	"strings"
	"testing"

	"gminer/internal/cluster"
	"gminer/internal/dyngraph"
	"gminer/internal/gen"
	"gminer/internal/graph"
	"gminer/internal/jobspec"
	"gminer/internal/partition"
)

func dynServingGraph() *graph.Graph {
	g := gen.RMAT(gen.RMATConfig{Scale: 8, Edges: 2500, Seed: 13})
	jobspec.Prepare(g, jobspec.Spec{App: "gm"}.Normalize())
	jobspec.Prepare(g, jobspec.Spec{App: "cd"}.Normalize())
	return g
}

// startDynServer brings up a daemon over a dynamic warm session.
func startDynServer(t *testing.T, scfg Config) (*Server, string) {
	t.Helper()
	ccfg := testClusterConfig()
	ccfg.Dynamic = true
	ccfg.Partitioner = partition.Blocked{Shift: 4}
	sess, err := cluster.NewSession(dynServingGraph(), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(sess, scfg)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		sess.Close()
		t.Fatal(err)
	}
	return srv, "http://" + addr
}

// mutate POSTs one batch and decodes the response.
func mutate(t *testing.T, base string, b dyngraph.Batch) (int, MutationResult) {
	t.Helper()
	body, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/graph/mutations", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out MutationResult
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, out
}

func resultRecords(t *testing.T, base, id string) JobResult {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result %s: status %d", id, resp.StatusCode)
	}
	var jr JobResult
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	return jr
}

// TestResultCacheInvalidatedByEpoch is the cache regression for dynamic
// graphs: an identical resubmit hits the cache before a mutation and
// misses after it (the key carries the graph epoch), and the post-epoch
// result reflects the mutated graph.
func TestResultCacheInvalidatedByEpoch(t *testing.T) {
	srv, base := startDynServer(t, Config{MaxConcurrentJobs: 2})
	defer srv.Shutdown()

	spec := `{"app":"cd"}`
	_, st := submit(t, base, spec)
	awaitState(t, base, st.ID, StateDone)
	if st.GraphEpoch != 0 {
		t.Fatalf("first job stamped epoch %d, want 0", st.GraphEpoch)
	}
	before := resultRecords(t, base, st.ID)

	resp, st2 := submit(t, base, spec)
	if resp.StatusCode != http.StatusAccepted || !st2.Cached {
		t.Fatalf("identical resubmit at the same epoch not cache-served (status %d cached %v)",
			resp.StatusCode, st2.Cached)
	}

	code, mres := mutate(t, base, dyngraph.Batch{Ops: []dyngraph.Mutation{
		{Op: dyngraph.OpAddEdge, U: 2, W: 97},
		{Op: dyngraph.OpAddEdge, U: 3, W: 111},
	}})
	if code != http.StatusOK || mres.Epoch != 1 {
		t.Fatalf("mutation: status %d epoch %d", code, mres.Epoch)
	}

	_, st3 := submit(t, base, spec)
	done := awaitState(t, base, st3.ID, StateDone)
	if done.Cached {
		t.Fatal("resubmit AFTER a mutation was cache-served (stale epoch)")
	}
	if done.GraphEpoch != 1 {
		t.Fatalf("post-mutation job stamped epoch %d, want 1", done.GraphEpoch)
	}
	after := resultRecords(t, base, st3.ID)
	if reflect.DeepEqual(before.Records, after.Records) && before.Aggregate == after.Aggregate {
		// The two added edges touch communities; identical output would
		// mean the job saw the old graph.
		t.Log("warning: mutation did not change cd output (graph-dependent)")
	}

	// Epoch surfaces: /healthz and /metrics.
	_, health := fetchText(t, base+"/healthz")
	if !strings.Contains(health, `"graph_epoch":1`) {
		t.Fatalf("healthz missing graph_epoch=1: %s", health)
	}
	_, metricsOut := fetchText(t, base+"/metrics")
	if !strings.Contains(metricsOut, "gminer_graph_epoch 1") {
		t.Fatalf("metrics missing gminer_graph_epoch 1")
	}
}

// TestMutationsRequireDynamic: a static daemon answers 501 to mutations
// and standing submits.
func TestMutationsRequireDynamic(t *testing.T) {
	srv, base := startServer(t, testClusterConfig(), Config{})
	defer srv.Shutdown()

	code, _ := mutate(t, base, dyngraph.Batch{Ops: []dyngraph.Mutation{{Op: dyngraph.OpAddEdge, U: 0, W: 5}}})
	if code != http.StatusNotImplemented {
		t.Fatalf("mutation on static daemon: status %d, want 501", code)
	}
	resp, _ := submit(t, base, `{"app":"tc","standing":true}`)
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("standing submit on static daemon: status %d, want 501", resp.StatusCode)
	}
}

// TestEpochPin: a spec pinned to a stale epoch is rejected with 409; a
// matching pin is admitted.
func TestEpochPin(t *testing.T) {
	srv, base := startDynServer(t, Config{})
	defer srv.Shutdown()

	if resp, _ := submit(t, base, `{"app":"tc","epoch":3}`); resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale epoch pin: status %d, want 409", resp.StatusCode)
	}
	code, _ := mutate(t, base, dyngraph.Batch{Ops: []dyngraph.Mutation{{Op: dyngraph.OpAddEdge, U: 1, W: 60}}})
	if code != http.StatusOK {
		t.Fatalf("mutation: status %d", code)
	}
	resp, st := submit(t, base, `{"app":"tc","epoch":1}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("matching epoch pin: status %d, want 202", resp.StatusCode)
	}
	awaitState(t, base, st.ID, StateDone)
}

// applyDelta folds one delta document into a sorted match set.
func applyDelta(set []string, d DeltaDoc) []string {
	drop := make(map[string]bool, len(d.Retracted))
	for _, rec := range d.Retracted {
		drop[rec] = true
	}
	out := set[:0:0]
	for _, rec := range set {
		if !drop[rec] {
			out = append(out, rec)
		}
	}
	out = append(out, d.Added...)
	sort.Strings(out)
	return out
}

// TestStandingQueryDifferential is the server half of the differential
// gate: a standing cd job's delta stream, folded into its baseline, must
// equal a full recomputation at every epoch; a standing tc job's
// incremental aggregate must equal a full recount.
func TestStandingQueryDifferential(t *testing.T) {
	srv, base := startDynServer(t, Config{MaxConcurrentJobs: 2})
	defer srv.Shutdown()

	_, cdSt := submit(t, base, `{"app":"cd","standing":true,"id":"stand-cd"}`)
	_, tcSt := submit(t, base, `{"app":"tc","standing":true,"id":"stand-tc"}`)
	awaitState(t, base, cdSt.ID, StateStanding)
	awaitState(t, base, tcSt.ID, StateStanding)

	// Baseline == ad-hoc result at epoch 0.
	accum := append([]string(nil), resultRecords(t, base, cdSt.ID).Records...)
	sort.Strings(accum)

	seed := dynServingGraph()
	batches := gen.Deltas(seed, gen.DeltasConfig{Batches: 3, Ops: 24, Seed: 5})
	for bi, b := range batches {
		code, mres := mutate(t, base, b)
		if code != http.StatusOK {
			t.Fatalf("batch %d: status %d", bi, code)
		}
		if mres.Epoch != int64(bi+1) {
			t.Fatalf("batch %d: epoch %d", bi, mres.Epoch)
		}
		if len(mres.Standing) != 2 {
			t.Fatalf("batch %d: %d standing rounds, want 2", bi, len(mres.Standing))
		}

		var cdDelta, tcDelta *DeltaDoc
		for i := range mres.Standing {
			switch mres.Standing[i].JobID {
			case "stand-cd":
				cdDelta = &mres.Standing[i]
			case "stand-tc":
				tcDelta = &mres.Standing[i]
			}
		}
		if cdDelta == nil || tcDelta == nil {
			t.Fatalf("batch %d: missing standing round (cd %v tc %v)", bi, cdDelta, tcDelta)
		}
		if !tcDelta.Incremental {
			t.Fatalf("batch %d: tc round was not dirty-rooted incremental", bi)
		}

		// Client-side reconstruction from the delta...
		accum = applyDelta(accum, *cdDelta)

		// ...must equal a full ad-hoc recomputation at this epoch.
		_, snapSt := submit(t, base, fmt.Sprintf(`{"app":"cd","id":"snap-cd-%d"}`, bi))
		awaitState(t, base, snapSt.ID, StateDone)
		full := append([]string(nil), resultRecords(t, base, snapSt.ID).Records...)
		sort.Strings(full)
		if !reflect.DeepEqual(accum, full) {
			t.Fatalf("batch %d: reconstructed cd set (%d) != full recompute (%d)",
				bi, len(accum), len(full))
		}
		// The server-side accumulated result must agree too.
		servedNow := append([]string(nil), resultRecords(t, base, cdSt.ID).Records...)
		sort.Strings(servedNow)
		if !reflect.DeepEqual(servedNow, full) {
			t.Fatalf("batch %d: server-side standing set diverged from full recompute", bi)
		}

		// tc: incremental aggregate == full recount.
		_, tcSnap := submit(t, base, fmt.Sprintf(`{"app":"tc","id":"snap-tc-%d"}`, bi))
		awaitState(t, base, tcSnap.ID, StateDone)
		fullTC := resultRecords(t, base, tcSnap.ID)
		if tcDelta.Aggregate != fullTC.Aggregate {
			t.Fatalf("batch %d: incremental tc %s != full recount %s",
				bi, tcDelta.Aggregate, fullTC.Aggregate)
		}
	}

	// Status carries the standing view.
	st := awaitState(t, base, cdSt.ID, StateStanding)
	if st.GraphEpoch != int64(len(batches)) || st.DeltaRounds != len(batches) {
		t.Fatalf("standing status: epoch %d rounds %d, want %d/%d",
			st.GraphEpoch, st.DeltaRounds, len(batches), len(batches))
	}

	// DELETE ends the subscription.
	req, _ := http.NewRequest(http.MethodDelete, base+"/jobs/stand-cd", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	awaitState(t, base, "stand-cd", StateCancelled)
}

// TestDeltasStream: the NDJSON stream opens with a snapshot and carries
// each subsequent epoch's delta; folding them reconstructs the exact
// match set.
func TestDeltasStream(t *testing.T) {
	srv, base := startDynServer(t, Config{})
	defer srv.Shutdown()

	_, st := submit(t, base, `{"app":"cd","standing":true,"id":"watch-cd"}`)
	awaitState(t, base, st.ID, StateStanding)

	resp, err := http.Get(base + "/jobs/watch-cd/deltas")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)

	if !sc.Scan() {
		t.Fatal("stream closed before snapshot")
	}
	var snap snapshotDoc
	if err := json.Unmarshal(sc.Bytes(), &snap); err != nil || snap.Type != "snapshot" {
		t.Fatalf("first line not a snapshot: %v %q", err, sc.Text())
	}
	set := append([]string(nil), snap.Records...)
	sort.Strings(set)

	seed := dynServingGraph()
	batches := gen.Deltas(seed, gen.DeltasConfig{Batches: 2, Ops: 16, Seed: 9})
	go func() {
		// No t.Fatal off the test goroutine; a failed POST surfaces as a
		// stream timeout below.
		for _, b := range batches {
			body, err := json.Marshal(b)
			if err != nil {
				return
			}
			resp, err := http.Post(base+"/graph/mutations", "application/json", bytes.NewReader(body))
			if err != nil {
				return
			}
			resp.Body.Close()
		}
	}()

	for i := 0; i < len(batches); i++ {
		if !sc.Scan() {
			t.Fatalf("stream ended after %d deltas: %v", i, sc.Err())
		}
		var d DeltaDoc
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil || d.Type != "delta" {
			t.Fatalf("line %d not a delta: %v %q", i, err, sc.Text())
		}
		if d.Epoch != snap.Epoch+int64(i)+1 {
			t.Fatalf("delta %d at epoch %d, want %d", i, d.Epoch, snap.Epoch+int64(i)+1)
		}
		set = applyDelta(set, d)
		if len(set) != d.Matches {
			t.Fatalf("delta %d: reconstructed %d records, doc says %d", i, len(set), d.Matches)
		}
	}

	// Reconstruction matches the server's accumulated set.
	served := append([]string(nil), resultRecords(t, base, "watch-cd").Records...)
	sort.Strings(served)
	if !reflect.DeepEqual(set, served) {
		t.Fatal("client reconstruction diverged from server-side match set")
	}
}
