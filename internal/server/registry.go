package server

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"gminer/internal/cluster"
	"gminer/internal/jobspec"
	"gminer/internal/trace"
)

// Job states. A job moves queued → running → {done, failed, cancelled};
// a queued job may jump straight to cancelled.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Admission and lookup errors, mapped onto HTTP statuses by the handlers.
var (
	ErrQueueFull   = errors.New("server: admission queue full")         // 429
	ErrDraining    = errors.New("server: draining, not accepting jobs") // 503
	ErrDuplicateID = errors.New("server: job id already in use")        // 409
	ErrUnknownJob  = errors.New("server: no such job")                  // 404
)

// Config tunes the admission controller and job retention.
type Config struct {
	// MaxConcurrentJobs bounds how many jobs mine simultaneously on the
	// warm cluster. Default 2.
	MaxConcurrentJobs int
	// MaxQueueDepth bounds the admission queue; a submit beyond it gets
	// HTTP 429 with a Retry-After hint. Default 8.
	MaxQueueDepth int
	// DefaultMemBudgetBytes is the per-job memory budget applied when a
	// request does not set its own. 0 means unlimited.
	DefaultMemBudgetBytes int64
	// RetryAfter is the hint returned with 429 responses. Default 1s.
	RetryAfter time.Duration
	// MaxRetainedJobs bounds how many finished jobs (and their result
	// records) stay queryable; the oldest are evicted first. Default 64.
	MaxRetainedJobs int
	// DrainTimeout bounds how long Shutdown waits for running jobs to
	// finish before cancelling them. Default 30s.
	DrainTimeout time.Duration
}

func (c Config) defaults() Config {
	if c.MaxConcurrentJobs <= 0 {
		c.MaxConcurrentJobs = 2
	}
	if c.MaxQueueDepth <= 0 {
		c.MaxQueueDepth = 8
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxRetainedJobs <= 0 {
		c.MaxRetainedJobs = 64
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	return c
}

// job is one registry entry through its whole lifecycle.
type job struct {
	id        string
	req       JobRequest
	state     string
	err       error
	submitted time.Time
	started   time.Time
	finished  time.Time
	tracer    *trace.Tracer
	cj        *cluster.Job    // non-nil once launched
	result    *cluster.Result // non-nil once done
}

// registry is the job table plus the admission controller: a bounded FIFO
// queue feeding at most MaxConcurrentJobs session launches.
type registry struct {
	sess *cluster.Session
	cfg  Config

	mu       sync.Mutex
	cond     *sync.Cond // signalled whenever running drops or states settle
	jobs     map[string]*job
	order    []string // submission order, for List and retention eviction
	queue    []*job
	running  int
	seq      uint64
	draining bool
}

func newRegistry(sess *cluster.Session, cfg Config) *registry {
	r := &registry{sess: sess, cfg: cfg.defaults(), jobs: make(map[string]*job)}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// submit admits one job request: validates the spec against the resident
// graph, enqueues, and pumps the scheduler. The returned job is a
// snapshot-safe pointer (fields guarded by r.mu).
func (r *registry) submit(req JobRequest) (*job, error) {
	// Validate buildability up front so a spec the resident graph cannot
	// serve (e.g. gm on an unlabeled graph) fails the submit with 400
	// instead of a queued job that dies later.
	if _, err := jobspec.Build(r.sess.Graph(), req.Spec); err != nil {
		return nil, err
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.draining {
		return nil, ErrDraining
	}
	if len(r.queue) >= r.cfg.MaxQueueDepth {
		return nil, fmt.Errorf("%w (depth %d)", ErrQueueFull, r.cfg.MaxQueueDepth)
	}
	id := req.ID
	if id == "" {
		for {
			r.seq++
			id = fmt.Sprintf("job-%d", r.seq)
			if _, taken := r.jobs[id]; !taken {
				break
			}
		}
	} else if _, taken := r.jobs[id]; taken {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateID, id)
	}
	j := &job{id: id, req: req, state: StateQueued, submitted: time.Now()}
	r.jobs[id] = j
	r.order = append(r.order, id)
	r.queue = append(r.queue, j)
	r.evictLocked()
	r.pumpLocked()
	return j, nil
}

// pumpLocked launches queued jobs while concurrency slots are free.
// Callers hold r.mu.
func (r *registry) pumpLocked() {
	for r.running < r.cfg.MaxConcurrentJobs && len(r.queue) > 0 && !r.draining {
		j := r.queue[0]
		r.queue = r.queue[1:]
		if j.state != StateQueued { // cancelled while queued
			continue
		}
		a, err := jobspec.Build(r.sess.Graph(), j.req.Spec)
		if err != nil {
			j.state, j.err, j.finished = StateFailed, err, time.Now()
			continue
		}
		budget := j.req.MemBudgetBytes
		if budget == 0 {
			budget = r.cfg.DefaultMemBudgetBytes
		}
		tracer := trace.New(r.sess.Config().Workers+1, 0).Enable()
		opt := cluster.JobOptions{
			ID:             j.id,
			Tracer:         tracer,
			MemBudgetBytes: budget,
			CheckpointEvery: time.Duration(
				j.req.CheckpointEverySeconds * float64(time.Second)),
		}
		cj, err := r.sess.Launch(a, opt)
		if err != nil {
			j.state, j.err, j.finished = StateFailed, err, time.Now()
			continue
		}
		j.state, j.started, j.tracer, j.cj = StateRunning, time.Now(), tracer, cj
		r.running++
		go r.reap(j, cj)
	}
}

// reap waits out one launched job and folds its terminal state back into
// the registry, freeing a concurrency slot.
func (r *registry) reap(j *job, cj *cluster.Job) {
	res, err := cj.Wait()
	r.mu.Lock()
	defer r.mu.Unlock()
	j.result, j.err, j.finished = res, err, time.Now()
	switch {
	case err == nil:
		j.state = StateDone
	case errors.Is(err, cluster.ErrCancelled):
		j.state = StateCancelled
	default:
		j.state = StateFailed
	}
	r.running--
	r.pumpLocked()
	r.cond.Broadcast()
}

// cancel requests cooperative cancellation. A queued job is dropped on
// the spot; a running one drains asynchronously (its state settles when
// the reaper returns). Terminal jobs are left untouched.
func (r *registry) cancel(id string) (*job, error) {
	r.mu.Lock()
	j, ok := r.jobs[id]
	if !ok {
		r.mu.Unlock()
		return nil, ErrUnknownJob
	}
	var cj *cluster.Job
	switch j.state {
	case StateQueued:
		j.state, j.err, j.finished = StateCancelled, cluster.ErrCancelled, time.Now()
		r.cond.Broadcast()
	case StateRunning:
		cj = j.cj
	}
	r.mu.Unlock()
	if cj != nil {
		cj.Cancel()
	}
	return j, nil
}

func (r *registry) get(id string) (*job, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	if !ok {
		return nil, ErrUnknownJob
	}
	return j, nil
}

// evictLocked drops the oldest terminal jobs beyond the retention cap so
// a long-lived daemon's result store cannot grow without bound.
func (r *registry) evictLocked() {
	terminal := 0
	for _, id := range r.order {
		if isTerminal(r.jobs[id].state) {
			terminal++
		}
	}
	if terminal <= r.cfg.MaxRetainedJobs {
		return
	}
	kept := r.order[:0]
	for _, id := range r.order {
		if terminal > r.cfg.MaxRetainedJobs && isTerminal(r.jobs[id].state) {
			delete(r.jobs, id)
			terminal--
			continue
		}
		kept = append(kept, id)
	}
	r.order = kept
}

func isTerminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

// counts returns (queued, running, per-terminal-state totals) for /metrics
// and /healthz.
func (r *registry) counts() (queued, running int, terminal map[string]int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	terminal = map[string]int{StateDone: 0, StateFailed: 0, StateCancelled: 0}
	for _, j := range r.jobs {
		switch {
		case j.state == StateQueued:
			queued++
		case j.state == StateRunning:
			running++
		default:
			terminal[j.state]++
		}
	}
	return queued, running, terminal
}

// drain refuses new submissions, cancels everything still queued, then
// waits up to timeout for running jobs to finish on their own (their
// periodic checkpoints keep landing while they run out). Jobs still
// running at the deadline are cancelled and waited out.
func (r *registry) drain(timeout time.Duration) {
	r.mu.Lock()
	r.draining = true
	for _, j := range r.queue {
		if j.state == StateQueued {
			j.state, j.err, j.finished = StateCancelled, cluster.ErrCancelled, time.Now()
		}
	}
	r.queue = nil
	r.mu.Unlock()

	deadline := time.Now().Add(timeout)
	done := make(chan struct{})
	go func() {
		r.mu.Lock()
		for r.running > 0 {
			r.cond.Wait()
		}
		r.mu.Unlock()
		close(done)
	}()
	select {
	case <-done:
		return
	case <-time.After(time.Until(deadline)):
	}

	// Deadline passed: cancel stragglers and wait for their reapers.
	r.mu.Lock()
	var live []*cluster.Job
	for _, j := range r.jobs {
		if j.state == StateRunning && j.cj != nil {
			live = append(live, j.cj)
		}
	}
	r.mu.Unlock()
	for _, cj := range live {
		cj.Cancel()
	}
	<-done
}
