package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gminer/internal/cluster"
	"gminer/internal/core"
	"gminer/internal/jobspec"
	"gminer/internal/qos"
	"gminer/internal/trace"
)

// Job states. A job moves queued → running → {done, failed, cancelled,
// preempted}; a queued job may jump straight to cancelled (DELETE) or
// shed (load shedding, expired deadline). A cache-served job is born done.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
	// StatePreempted marks a job the QoS layer stopped at a round boundary
	// because it ran past its compute budget or deadline. Distinct from
	// cancelled so clients can tell "operator/user stopped it" from "it
	// cost too much".
	StatePreempted = "preempted"
	// StateShed marks queued work the admission controller dropped —
	// cheapest-to-recompute first — to absorb queue pressure, or whose
	// deadline expired before a slot freed.
	StateShed = "shed"
	// StateStanding marks a standing query whose baseline finished: the
	// job is parked holding its match set and emits a delta every graph
	// epoch until cancelled. Not terminal — DELETE ends it.
	StateStanding = "standing"
)

// Admission and lookup errors, mapped onto HTTP statuses by the handlers.
var (
	ErrQueueFull   = errors.New("server: admission queue full")         // 429
	ErrDraining    = errors.New("server: draining, not accepting jobs") // 503
	ErrDuplicateID = errors.New("server: job id already in use")        // 409
	ErrUnknownJob  = errors.New("server: no such job")                  // 404
	// ErrEpochMismatch rejects a spec pinned to a graph epoch the resident
	// graph has moved past (optimistic concurrency for read-your-graph
	// clients).
	ErrEpochMismatch = errors.New("server: graph epoch moved past the spec's pin") // 409
	// ErrNotDynamic rejects standing queries (and mutations) on a daemon
	// whose session was not started with -dynamic.
	ErrNotDynamic = errors.New("server: resident graph is not dynamic") // 501
)

// Config tunes the admission controller, QoS layer and job retention.
type Config struct {
	// MaxConcurrentJobs bounds how many jobs mine simultaneously on the
	// warm cluster. Default 2.
	MaxConcurrentJobs int
	// MaxQueueDepth bounds the admission queue. A submit beyond it either
	// sheds the cheapest-to-recompute queued job to make room, or — when
	// the incoming job is itself the cheapest — gets HTTP 429 with a
	// Retry-After hint. Default 8.
	MaxQueueDepth int
	// DefaultMemBudgetBytes is the per-job memory budget applied when a
	// request does not set its own. 0 means unlimited.
	DefaultMemBudgetBytes int64
	// DefaultBudgetSeconds is the per-job compute budget (busy
	// thread-seconds summed over workers) applied when a request does not
	// set budget_seconds. 0 means unlimited.
	DefaultBudgetSeconds float64
	// ResultCacheEntries bounds the serving result cache (finished record
	// sets keyed by graph fingerprint + normalized spec). 0 means the
	// default 256; negative disables caching.
	ResultCacheEntries int
	// RetryAfter is the hint returned with 429 responses. Default 1s.
	RetryAfter time.Duration
	// MaxRetainedJobs bounds how many finished jobs (and their result
	// records) stay queryable; the oldest are evicted first. Default 64.
	MaxRetainedJobs int
	// DrainTimeout bounds how long Shutdown waits for running jobs to
	// finish before cancelling them. Default 30s.
	DrainTimeout time.Duration
}

func (c Config) defaults() Config {
	if c.MaxConcurrentJobs <= 0 {
		c.MaxConcurrentJobs = 2
	}
	if c.MaxQueueDepth <= 0 {
		c.MaxQueueDepth = 8
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxRetainedJobs <= 0 {
		c.MaxRetainedJobs = 64
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	return c
}

// job is one registry entry through its whole lifecycle.
type job struct {
	id        string
	req       JobRequest
	state     string
	err       error
	submitted time.Time
	started   time.Time
	finished  time.Time
	tracer    *trace.Tracer
	cj        *cluster.Job                // non-nil once launched (guarded by registry.mu)
	cjAtomic  atomic.Pointer[cluster.Job] // same handle, for the lock-free round hook
	result    *cluster.Result             // non-nil once done

	// QoS bookkeeping. tenant and priority are the normalized hints;
	// deadline/budget the effective limits (zero means none); estimate the
	// meter's price at admission; queueWait the recorded time from submit
	// to leaving the queue; costSeconds the measured compute spend once
	// terminal; cached marks a job answered from the result cache.
	tenant      string
	priority    int
	deadline    time.Time
	budget      float64
	estimate    float64
	queueWait   time.Duration
	costSeconds float64
	cached      bool

	// Standing-query state (guarded by registry.mu). epoch is the graph
	// epoch the job computed against (stamped at dispatch; rolls forward
	// with every delta round for standing jobs). matchSet is the sorted
	// accumulated record set, aggregate the latest aggregate value, deltas
	// the full per-epoch history the /deltas stream replays, and notify is
	// closed-and-replaced whenever deltas grows or the state changes so
	// streamers wake without polling.
	epoch     int64
	baseEpoch int64
	matchSet  []string
	aggregate any
	deltas    []DeltaDoc
	notify    chan struct{}
}

// tenantWait accumulates one tenant's queue-wait observations for the
// gminer_job_queue_wait_seconds summary.
type tenantWait struct {
	sum   float64
	count int64
}

// registry is the job table plus the admission controller: a bounded
// weighted-fair queue across tenants feeding at most MaxConcurrentJobs
// session launches, a cost meter pricing admission, and a result cache
// short-circuiting repeat queries.
type registry struct {
	sess Cluster
	cfg  Config

	meter *qos.Meter
	cache *qos.ResultCache[*cluster.Result] // nil when caching is disabled
	fp    uint64                            // session fingerprint, the cache key prefix

	mu       sync.Mutex
	cond     *sync.Cond // signalled whenever running drops or states settle
	jobs     map[string]*job
	order    []string // submission order, for List and retention eviction
	queue    *qos.FairQueue
	waits    map[string]*tenantWait
	running  int
	seq      uint64
	draining bool

	// standingRoundsRun counts delta rounds completed, for /metrics.
	standingRoundsRun int64
}

func newRegistry(sess Cluster, cfg Config) *registry {
	r := &registry{
		sess:  sess,
		cfg:   cfg.defaults(),
		meter: qos.NewMeter(),
		fp:    sess.Fingerprint(),
		jobs:  make(map[string]*job),
		queue: qos.NewFairQueue(),
		waits: make(map[string]*tenantWait),
	}
	if entries := cfg.ResultCacheEntries; entries >= 0 {
		if entries == 0 {
			entries = 256
		}
		r.cache = qos.NewResultCache[*cluster.Result](entries)
	}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// cacheKey is the identity of req's workload on the resident graph AT ITS
// CURRENT EPOCH. The fingerprint was frozen at registry construction (it
// identifies the graph as loaded); the live epoch rides in its own field,
// so every mutation batch implicitly retires all previously cached
// results without a scan.
func (r *registry) cacheKey(req JobRequest) qos.CacheKey {
	return r.cacheKeyAt(req, r.sess.GraphEpoch())
}

// cacheKeyAt pins the key to a specific epoch. The reaper uses the epoch
// the job actually computed against — a mutation can land between the
// job's last round and the reaper folding its result in, and the result
// must not be filed under the newer epoch.
func (r *registry) cacheKeyAt(req JobRequest, epoch int64) qos.CacheKey {
	return qos.CacheKey{Fingerprint: r.fp, Epoch: epoch, Spec: req.Spec.CacheKey()}
}

// invalidateCache drops every cached result. Must be called whenever the
// resident graph is replaced or mutated (the fingerprint+epoch in the key
// already isolates graphs and epochs, but invalidating releases the dead
// entries' memory at once).
func (r *registry) invalidateCache() { r.cache.Invalidate() }

// dynamic reports whether the backing session accepts mutation batches.
// Only the in-process cluster.Session started with Config.Dynamic does.
func (r *registry) dynamic() bool {
	d, ok := r.sess.(interface{ Dynamic() bool })
	return ok && d.Dynamic()
}

// submit admits one job request: validates the spec against the resident
// graph, serves it from the result cache when possible, otherwise
// enqueues into the weighted-fair queue and pumps the scheduler. The
// returned job is a snapshot-safe pointer (fields guarded by r.mu).
func (r *registry) submit(req JobRequest) (*job, error) {
	// Validate buildability up front so a spec the resident graph cannot
	// serve (e.g. gm on an unlabeled graph) fails the submit with 400
	// instead of a queued job that dies later. Under the graph-read guard:
	// a mutation batch may be rewriting adjacency right now.
	var buildErr error
	r.sess.WithGraphRead(func() { _, buildErr = jobspec.Build(r.sess.Graph(), req.Spec) })
	if buildErr != nil {
		return nil, buildErr
	}
	if req.Spec.Standing && !r.dynamic() {
		return nil, fmt.Errorf("%w: standing queries need a -dynamic daemon", ErrNotDynamic)
	}
	if req.Spec.Epoch > 0 {
		if cur := r.sess.GraphEpoch(); req.Spec.Epoch != cur {
			return nil, fmt.Errorf("%w: pinned %d, resident %d", ErrEpochMismatch, req.Spec.Epoch, cur)
		}
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.draining {
		return nil, ErrDraining
	}
	id := req.ID
	if id == "" {
		for {
			r.seq++
			id = fmt.Sprintf("job-%d", r.seq)
			if _, taken := r.jobs[id]; !taken {
				break
			}
		}
	} else if _, taken := r.jobs[id]; taken {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateID, id)
	}

	now := time.Now()
	j := &job{
		id:        id,
		req:       req,
		submitted: now,
		tenant:    req.Spec.Tenant,
		priority:  req.Spec.Priority,
	}
	if req.Spec.DeadlineSeconds > 0 {
		j.deadline = now.Add(time.Duration(req.Spec.DeadlineSeconds * float64(time.Second)))
	}
	j.budget = req.Spec.BudgetSeconds
	if j.budget == 0 {
		j.budget = r.cfg.DefaultBudgetSeconds
	}

	// Result cache: an identical workload already computed on this graph
	// AND epoch is served instantly — the job is born done and consumes no
	// slot. Standing queries never consult the cache: their value is the
	// subscription, not the baseline records.
	if !req.Spec.Standing {
		if res, ok := r.cache.Get(r.cacheKey(req)); ok {
			j.state, j.result, j.cached = StateDone, res, true
			j.started, j.finished = now, now
			j.epoch = r.sess.GraphEpoch()
			r.jobs[id] = j
			r.order = append(r.order, id)
			r.evictLocked()
			return j, nil
		}
	}

	// Admission control with load shedding. When the queue is full, the
	// cheapest-to-recompute work loses: if something queued is strictly
	// cheaper than the incoming job, shed it to make room; if the incoming
	// job is itself cheapest (ties included), reject it with 429 — the
	// client resubmits for almost nothing.
	j.estimate = r.meter.Estimate(req.Spec.App)
	if r.queue.Len() >= r.cfg.MaxQueueDepth {
		minCost, ok := r.queue.MinCost()
		if !ok || j.estimate <= minCost {
			return nil, fmt.Errorf("%w (depth %d)", ErrQueueFull, r.cfg.MaxQueueDepth)
		}
		if e, ok := r.queue.Shed(); ok {
			r.finishQueuedLocked(r.jobs[e.ID], StateShed, qos.ErrShed)
		}
	}
	j.state = StateQueued
	r.jobs[id] = j
	r.order = append(r.order, id)
	r.queue.Push(qos.Entry{
		ID:       id,
		Tenant:   j.tenant,
		Weight:   j.priority,
		Cost:     j.estimate,
		Deadline: j.deadline,
	})
	r.evictLocked()
	r.pumpLocked()
	return j, nil
}

// finishQueuedLocked moves a still-queued job (already removed from the
// fair queue by the caller) to a terminal state, recording its queue wait.
// Callers hold r.mu.
func (r *registry) finishQueuedLocked(j *job, state string, cause error) {
	if j == nil || j.state != StateQueued {
		return
	}
	j.state, j.finished = state, time.Now()
	j.err = fmt.Errorf("%w: %w", cluster.ErrCancelled, cause)
	r.recordWaitLocked(j)
	r.cond.Broadcast()
}

// recordWaitLocked folds a job's time-in-queue into its tenant's wait
// summary the moment it leaves the queue (dispatch, shed or cancel).
func (r *registry) recordWaitLocked(j *job) {
	j.queueWait = time.Since(j.submitted)
	tw := r.waits[j.tenant]
	if tw == nil {
		tw = &tenantWait{}
		r.waits[j.tenant] = tw
	}
	tw.sum += j.queueWait.Seconds()
	tw.count++
}

// pumpLocked launches jobs in weighted-fair order while concurrency slots
// are free. Callers hold r.mu.
func (r *registry) pumpLocked() {
	for r.running < r.cfg.MaxConcurrentJobs && !r.draining {
		e, ok := r.queue.Pop()
		if !ok {
			return
		}
		j := r.jobs[e.ID]
		if j == nil || j.state != StateQueued {
			continue
		}
		// A job whose deadline expired while it waited is shed here: there
		// is no point paying its startup cost only to preempt it at the
		// first round boundary.
		if !j.deadline.IsZero() && time.Now().After(j.deadline) {
			r.finishQueuedLocked(j, StateShed, qos.ErrDeadline)
			continue
		}
		var a core.Algorithm
		var err error
		r.sess.WithGraphRead(func() { a, err = jobspec.Build(r.sess.Graph(), j.req.Spec) })
		if err != nil {
			j.state, j.err, j.finished = StateFailed, err, time.Now()
			r.recordWaitLocked(j)
			continue
		}
		budget := j.req.MemBudgetBytes
		if budget == 0 {
			budget = r.cfg.DefaultMemBudgetBytes
		}
		tracer := trace.New(r.sess.Config().Workers+1, 0).Enable()
		// The spec rides along for multi-process clusters: worker processes
		// rebuild the algorithm from it (an in-process Session ignores it).
		sp := j.req.Spec
		opt := cluster.JobOptions{
			ID:             j.id,
			Spec:           &sp,
			Tracer:         tracer,
			MemBudgetBytes: budget,
			CheckpointEvery: time.Duration(
				j.req.CheckpointEverySeconds * float64(time.Second)),
			RoundHook: roundHook(j, j.budget, j.deadline),
		}
		cj, err := r.sess.Launch(a, opt)
		if err != nil {
			j.state, j.err, j.finished = StateFailed, err, time.Now()
			r.recordWaitLocked(j)
			continue
		}
		r.recordWaitLocked(j)
		j.state, j.started, j.tracer, j.cj = StateRunning, time.Now(), tracer, cj
		j.epoch = r.sess.GraphEpoch()
		j.cjAtomic.Store(cj)
		r.running++
		go r.reap(j, cj)
	}
}

// roundHook builds the QoS enforcement point for one job: called by the
// job's master once per scheduling round, it preempts the job — always at
// a round boundary, via the cooperative cancel path — when its measured
// compute spend exceeds its budget or its deadline has passed. Budget and
// deadline are captured by value (immutable after admission); the cluster
// job handle is read from the registry entry, which pumpLocked stores
// before any round can observe meaningful spend.
func roundHook(j *job, budget float64, deadline time.Time) func(int64) {
	if budget <= 0 && deadline.IsZero() {
		return nil
	}
	return func(round int64) {
		cj := j.cjAtomic.Load()
		if cj == nil {
			return // the window between Launch and pumpLocked storing cj
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			cj.CancelCause(qos.ErrDeadline)
			return
		}
		if budget > 0 {
			var cost float64
			for _, snap := range cj.WorkerSnapshots() {
				cost += snap.CostSeconds()
			}
			if cost > budget {
				cj.CancelCause(qos.ErrOverBudget)
			}
		}
	}
}

// reap waits out one launched job and folds its terminal state back into
// the registry: meter the spend, cache a successful result, free the
// concurrency slot.
func (r *registry) reap(j *job, cj *cluster.Job) {
	res, err := cj.Wait()
	var cost float64
	if res != nil {
		for _, snap := range res.PerWorker {
			cost += snap.CostSeconds()
		}
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	j.result, j.err, j.finished, j.costSeconds = res, err, time.Now(), cost
	switch {
	case err == nil && j.req.Spec.Standing:
		// Baseline done: park the job standing with its epoch-stamped match
		// set. From here each mutation batch appends one DeltaDoc. Never
		// cached — two standing jobs must each hold a live subscription.
		j.state = StateStanding
		j.finished = time.Time{}
		j.baseEpoch = j.epoch
		if res != nil {
			j.matchSet = append([]string(nil), res.Records...)
			sort.Strings(j.matchSet)
			j.aggregate = res.AggGlobal
		}
		j.bumpDeltas()
	case err == nil:
		j.state = StateDone
		if res != nil {
			r.cache.Put(r.cacheKeyAt(j.req, j.epoch), res)
		}
	case errors.Is(err, qos.ErrOverBudget) || errors.Is(err, qos.ErrDeadline):
		j.state = StatePreempted
	case errors.Is(err, cluster.ErrCancelled):
		j.state = StateCancelled
	default:
		j.state = StateFailed
	}
	// Cancelled and preempted jobs are metered too: their partial spend is
	// real spend, and pricing an app by what its jobs actually burned —
	// even truncated ones — keeps admission estimates honest.
	r.meter.ObserveJob(j.req.Spec.App, j.tenant, cost, resPhases(res))
	j.bumpDeltas() // wake any deltas stream waiting out the baseline
	r.running--
	r.pumpLocked()
	r.cond.Broadcast()
}

func resPhases(res *cluster.Result) []trace.PhaseSummary {
	if res == nil {
		return nil
	}
	return res.Phases
}

// cancel requests cooperative cancellation. A queued job is removed from
// the admission queue on the spot — its slot is reusable immediately, not
// when the dead entry would have reached the head; a running one drains
// asynchronously (its state settles when the reaper returns). Terminal
// jobs are left untouched.
func (r *registry) cancel(id string) (*job, error) {
	r.mu.Lock()
	j, ok := r.jobs[id]
	if !ok {
		r.mu.Unlock()
		return nil, ErrUnknownJob
	}
	var cj *cluster.Job
	switch j.state {
	case StateQueued:
		r.queue.Remove(id)
		j.state, j.err, j.finished = StateCancelled, cluster.ErrCancelled, time.Now()
		r.recordWaitLocked(j)
		r.cond.Broadcast()
	case StateRunning:
		cj = j.cj
	case StateStanding:
		// Ending a standing query is a plain state flip — there is no
		// cluster job to stop between rounds. Streamers wake and see the
		// terminal state.
		j.state, j.err, j.finished = StateCancelled, cluster.ErrCancelled, time.Now()
		j.bumpDeltas()
		r.cond.Broadcast()
	}
	r.mu.Unlock()
	if cj != nil {
		cj.Cancel()
	}
	return j, nil
}

func (r *registry) get(id string) (*job, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	if !ok {
		return nil, ErrUnknownJob
	}
	return j, nil
}

// evictLocked drops the oldest terminal jobs beyond the retention cap so
// a long-lived daemon's result store cannot grow without bound.
func (r *registry) evictLocked() {
	terminal := 0
	for _, id := range r.order {
		if isTerminal(r.jobs[id].state) {
			terminal++
		}
	}
	if terminal <= r.cfg.MaxRetainedJobs {
		return
	}
	kept := r.order[:0]
	for _, id := range r.order {
		if terminal > r.cfg.MaxRetainedJobs && isTerminal(r.jobs[id].state) {
			delete(r.jobs, id)
			terminal--
			continue
		}
		kept = append(kept, id)
	}
	r.order = kept
}

func isTerminal(state string) bool {
	switch state {
	case StateDone, StateFailed, StateCancelled, StatePreempted, StateShed:
		return true
	}
	return false
}

// terminalStates lists every terminal state in exposition order.
var terminalStates = []string{StateDone, StateFailed, StateCancelled, StatePreempted, StateShed}

// counts returns (queued, running, standing, per-terminal-state totals)
// for /metrics and /healthz.
func (r *registry) counts() (queued, running, standing int, terminal map[string]int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	terminal = make(map[string]int, len(terminalStates))
	for _, st := range terminalStates {
		terminal[st] = 0
	}
	for _, j := range r.jobs {
		switch {
		case j.state == StateQueued:
			queued++
		case j.state == StateRunning:
			running++
		case j.state == StateStanding:
			standing++
		default:
			terminal[j.state]++
		}
	}
	return queued, running, standing, terminal
}

// tenantStats snapshots the per-tenant QoS view (queue depth, wait
// summary, completed spend) for the /metrics exposition.
func (r *registry) tenantStats() map[string]*tenantStat {
	out := make(map[string]*tenantStat)
	at := func(tenant string) *tenantStat {
		ts := out[tenant]
		if ts == nil {
			ts = &tenantStat{}
			out[tenant] = ts
		}
		return ts
	}
	r.mu.Lock()
	for tenant, n := range r.queue.PerTenant() {
		at(tenant).queued = n
	}
	for tenant, tw := range r.waits {
		ts := at(tenant)
		ts.waitSum, ts.waitCount = tw.sum, tw.count
	}
	r.mu.Unlock()
	_, tenants := r.meter.Snapshot()
	for _, te := range tenants {
		at(te.Tenant).spend = te.Spend
	}
	return out
}

type tenantStat struct {
	queued    int
	waitSum   float64
	waitCount int64
	spend     float64
}

// drain refuses new submissions, cancels everything still queued, then
// waits up to timeout for running jobs to finish on their own (their
// periodic checkpoints keep landing while they run out). Jobs still
// running at the deadline are cancelled and waited out.
func (r *registry) drain(timeout time.Duration) {
	r.mu.Lock()
	r.draining = true
	for _, e := range r.queue.Clear() {
		if j := r.jobs[e.ID]; j != nil && j.state == StateQueued {
			j.state, j.err, j.finished = StateCancelled, cluster.ErrCancelled, time.Now()
			r.recordWaitLocked(j)
		}
	}
	// Standing queries end with the daemon: flip them terminal so their
	// delta streams close instead of hanging on a session that is about to
	// tear down.
	for _, j := range r.jobs {
		if j.state == StateStanding {
			j.state, j.err, j.finished = StateCancelled, cluster.ErrCancelled, time.Now()
			j.bumpDeltas()
		}
	}
	r.mu.Unlock()

	deadline := time.Now().Add(timeout)
	done := make(chan struct{})
	go func() {
		r.mu.Lock()
		for r.running > 0 {
			r.cond.Wait()
		}
		r.mu.Unlock()
		close(done)
	}()
	select {
	case <-done:
		return
	case <-time.After(time.Until(deadline)):
	}

	// Deadline passed: cancel stragglers and wait for their reapers.
	r.mu.Lock()
	var live []*cluster.Job
	for _, j := range r.jobs {
		if j.state == StateRunning && j.cj != nil {
			live = append(live, j.cj)
		}
	}
	r.mu.Unlock()
	for _, cj := range live {
		cj.Cancel()
	}
	<-done
}
