package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"gminer/internal/dyngraph"
)

// dyngraphDecode parses a POST /graph/mutations body into a validated
// batch (size- and op-clamped by DecodeBatch).
func dyngraphDecode(r *http.Request) (dyngraph.Batch, error) {
	defer func() { _ = r.Body.Close() }()
	return dyngraph.DecodeBatch(r.Body)
}

// writeNDJSON emits one stream document and flushes it to the client;
// false means the connection is gone.
func writeNDJSON(w http.ResponseWriter, v any) bool {
	if err := json.NewEncoder(w).Encode(v); err != nil {
		return false
	}
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
	return true
}

// deltaPollFallback bounds how long a deltas stream sleeps before
// re-checking job state. The notify channel wakes it immediately on the
// common paths; the ticker covers rare settle paths that do not bump it.
const deltaPollFallback = 500 * time.Millisecond

// handleMutate is POST /graph/mutations: decode one batch, apply it as
// one epoch on the warm session, retire the result cache, then run every
// standing job's delta round — all under mutMu, so concurrent mutation
// POSTs serialize and the response describes a settled state. Running
// ad-hoc jobs are not disturbed: the session's epoch lock waits for their
// read leases before the graph moves.
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	mc, ok := s.sess.(MutableCluster)
	if !ok || !mc.Dynamic() {
		writeErr(w, http.StatusNotImplemented,
			fmt.Errorf("%w: start gminerd with -dynamic", ErrNotDynamic))
		return
	}
	b, err := dyngraphDecode(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}

	s.mutMu.Lock()
	defer s.mutMu.Unlock()

	// Pre-reads on the old graph (tc's incremental identity needs the
	// triangles touching the dirty set BEFORE the batch lands).
	dirty := b.DirtyIDs()
	pre := s.reg.standingPrepare(dirty)

	epr, err := mc.ApplyMutations(b)
	if err != nil {
		// The batch was syntactically valid but semantically rejected
		// (e.g. it would empty the graph): conflict, nothing changed.
		writeErr(w, http.StatusConflict, err)
		return
	}
	// Every cached result now describes a dead epoch. The epoch in the
	// cache key already makes them unreachable; dropping them returns the
	// memory immediately.
	s.reg.invalidateCache()

	rounds := s.reg.runStandingRounds(epr.Epoch, dirty, pre)

	out := MutationResult{
		Epoch:          epr.Epoch,
		Stats:          epr.Stats,
		DirtyBlocks:    epr.DirtyBlocks,
		MovedBlocks:    epr.MovedBlocks,
		RebuiltWorkers: epr.RebuiltWorkers,
		ApplySeconds:   epr.ApplyTime.Seconds(),
		Standing:       rounds,
	}
	writeJSON(w, out)
}

// handleDeltas is GET /jobs/{id}/deltas: an NDJSON stream opening with a
// snapshot of the standing job's current match set, followed by one delta
// document per graph epoch until the job ends or the client disconnects.
// A client folds added/retracted into the snapshot to track the exact
// match set without recomputing anything.
func (s *Server) handleDeltas(w http.ResponseWriter, r *http.Request) {
	j, err := s.reg.get(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	if !j.req.Spec.Standing {
		writeErr(w, http.StatusConflict,
			fmt.Errorf("server: job %s is not a standing query", j.id))
		return
	}

	// Wait out the baseline: the stream only makes sense once there is a
	// match set to snapshot.
	for {
		s.reg.mu.Lock()
		state := j.state
		ch := j.notify
		s.reg.mu.Unlock()
		if state != StateQueued && state != StateRunning {
			break
		}
		if !waitBump(r, ch) {
			return
		}
	}

	s.reg.mu.Lock()
	state := j.state
	snap := snapshotDoc{
		Type:    "snapshot",
		JobID:   j.id,
		Epoch:   j.baseEpoch,
		Records: append([]string{}, j.matchSet...),
	}
	if j.aggregate != nil {
		snap.Aggregate = fmt.Sprintf("%v", j.aggregate)
	}
	// The snapshot reflects every delta so far; the stream resumes after
	// them.
	idx := len(j.deltas)
	jerr := j.err
	s.reg.mu.Unlock()

	if state != StateStanding {
		writeErr(w, http.StatusConflict,
			fmt.Errorf("job %s is %s: %v", j.id, state, jerr))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	if !writeNDJSON(w, snap) {
		return
	}

	for {
		s.reg.mu.Lock()
		pending := append([]DeltaDoc(nil), j.deltas[idx:]...)
		idx = len(j.deltas)
		state = j.state
		ch := j.notify
		s.reg.mu.Unlock()
		for _, d := range pending {
			if !writeNDJSON(w, d) {
				return
			}
		}
		if state != StateStanding {
			return
		}
		if !waitBump(r, ch) {
			return
		}
	}
}

// waitBump sleeps until the job's notify channel closes, the fallback
// ticker fires, or the client goes away (returns false).
func waitBump(r *http.Request, ch <-chan struct{}) bool {
	if ch == nil {
		ch = make(chan struct{}) // pre-baseline; rely on the fallback
	}
	select {
	case <-ch:
		return true
	case <-time.After(deltaPollFallback):
		return true
	case <-r.Context().Done():
		return false
	}
}
