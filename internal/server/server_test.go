package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"gminer/internal/cluster"
	"gminer/internal/gen"
	"gminer/internal/graph"
	"gminer/internal/jobspec"
)

func servingGraph() *graph.Graph {
	g := gen.RMAT(gen.RMATConfig{Scale: 8, Edges: 2500, Seed: 13})
	// The daemon prepares every annotation family once at startup; jobs
	// must never mutate the shared graph.
	jobspec.Prepare(g, jobspec.Spec{App: "gm"}.Normalize())
	jobspec.Prepare(g, jobspec.Spec{App: "cd"}.Normalize())
	return g
}

func testClusterConfig() cluster.Config {
	return cluster.Config{
		Workers:          3,
		Threads:          2,
		CacheCapacity:    512,
		StoreMemCapacity: 256,
		UseLSH:           true,
		ProgressInterval: time.Millisecond,
	}
}

// startServer brings up a daemon over a fresh warm session and returns
// its base URL plus a teardown.
func startServer(t *testing.T, ccfg cluster.Config, scfg Config) (*Server, string) {
	t.Helper()
	sess, err := cluster.NewSession(servingGraph(), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(sess, scfg)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		sess.Close()
		t.Fatal(err)
	}
	return srv, "http://" + addr
}

func submit(t *testing.T, base string, body string) (*http.Response, JobStatus) {
	t.Helper()
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return resp, st
}

func awaitState(t *testing.T, base, id string, want ...string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range want {
			if st.State == w {
				return st
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %v", id, want)
	return JobStatus{}
}

func fetchText(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestSubmitResultByteIdentical: a job served over HTTP must return the
// byte-identical record stream a single-shot cluster.Run produces for the
// same graph and spec.
func TestSubmitResultByteIdentical(t *testing.T) {
	g := servingGraph()
	spec := jobspec.Spec{App: "gm"}.Normalize()
	a, err := jobspec.Build(g, spec)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := cluster.Run(g, a, testClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	for _, rec := range ref.Records {
		want.WriteString(rec)
		want.WriteByte('\n')
	}

	srv, base := startServer(t, testClusterConfig(), Config{})
	defer srv.Shutdown()

	resp, st := submit(t, base, `{"app":"gm"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	fin := awaitState(t, base, st.ID, StateDone, StateFailed)
	if fin.State != StateDone {
		t.Fatalf("job finished %s: %s", fin.State, fin.Error)
	}
	code, body := fetchText(t, base+"/jobs/"+st.ID+"/result?format=text")
	if code != http.StatusOK {
		t.Fatalf("result: status %d", code)
	}
	if body != want.String() {
		t.Fatalf("served records diverge from single-shot run (%d vs %d bytes)", len(body), want.Len())
	}

	// The JSON form must agree with the text form and carry the aggregate.
	resp2, err := http.Get(base + "/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var jr JobResult
	if err := json.NewDecoder(resp2.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if len(jr.Records) != len(ref.Records) {
		t.Fatalf("JSON records: got %d want %d", len(jr.Records), len(ref.Records))
	}
	if jr.Aggregate != fmt.Sprintf("%v", ref.AggGlobal) {
		t.Fatalf("aggregate: got %q want %q", jr.Aggregate, fmt.Sprintf("%v", ref.AggGlobal))
	}
}

// TestConcurrentJobsOverHTTP submits the smoke trio concurrently and
// checks every one lands byte-identical to its single-shot reference.
func TestConcurrentJobsOverHTTP(t *testing.T) {
	g := servingGraph()
	refs := map[string]string{}
	for _, app := range []string{"tc", "gm", "cd"} {
		a, err := jobspec.Build(g, jobspec.Spec{App: app}.Normalize())
		if err != nil {
			t.Fatal(err)
		}
		res, err := cluster.Run(g, a, testClusterConfig())
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, rec := range res.Records {
			b.WriteString(rec)
			b.WriteByte('\n')
		}
		refs[app] = b.String()
	}

	srv, base := startServer(t, testClusterConfig(), Config{MaxConcurrentJobs: 3})
	defer srv.Shutdown()

	ids := map[string]string{}
	for _, app := range []string{"tc", "gm", "cd"} {
		resp, st := submit(t, base, fmt.Sprintf(`{"app":%q,"id":%q}`, app, app))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %s: status %d", app, resp.StatusCode)
		}
		ids[app] = st.ID
	}
	for app, id := range ids {
		fin := awaitState(t, base, id, StateDone, StateFailed)
		if fin.State != StateDone {
			t.Fatalf("job %s finished %s: %s", app, fin.State, fin.Error)
		}
		_, body := fetchText(t, base+"/jobs/"+id+"/result?format=text")
		if body != refs[app] {
			t.Errorf("job %s diverges from single-shot reference", app)
		}
	}
}

// metricGauge scrapes one plain gauge value from /metrics.
func metricGauge(t *testing.T, base, name string) float64 {
	t.Helper()
	_, body := fetchText(t, base+"/metrics")
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(line, name+" %g", &v); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in /metrics", name)
	return 0
}

// TestCancelMidJobReleasesResources cancels a running job over HTTP and
// checks it drains, gminer_jobs_active returns to 0, and a co-resident
// job is unaffected.
func TestCancelMidJobReleasesResources(t *testing.T) {
	ccfg := testClusterConfig()
	ccfg.Latency = 500 * time.Microsecond // slow the rounds so Cancel lands mid-flight
	srv, base := startServer(t, ccfg, Config{MaxConcurrentJobs: 2})
	defer srv.Shutdown()

	_, victim := submit(t, base, `{"app":"mcf","id":"victim"}`)
	_, bystander := submit(t, base, `{"app":"tc","id":"bystander"}`)
	awaitState(t, base, victim.ID, StateRunning, StateDone)

	req, _ := http.NewRequest(http.MethodDelete, base+"/jobs/victim", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}

	fin := awaitState(t, base, victim.ID, StateCancelled, StateDone)
	if fin.State == StateCancelled {
		if code, _ := fetchText(t, base+"/jobs/victim/result"); code != http.StatusConflict {
			t.Fatalf("result of cancelled job: status %d, want 409", code)
		}
	}
	if st := awaitState(t, base, bystander.ID, StateDone, StateFailed); st.State != StateDone {
		t.Fatalf("bystander finished %s: %s", st.State, st.Error)
	}
	if v := metricGauge(t, base, "gminer_jobs_active"); v != 0 {
		t.Fatalf("gminer_jobs_active after drain: got %g want 0", v)
	}
	if n := srv.sess.ActiveJobs(); n != 0 {
		t.Fatalf("session still holds %d jobs after cancel+finish", n)
	}
}

// TestAdmissionQueueFull fills the concurrency slots and the queue, then
// expects HTTP 429 with a Retry-After hint.
func TestAdmissionQueueFull(t *testing.T) {
	ccfg := testClusterConfig()
	ccfg.Latency = time.Millisecond // keep the slot-holders running
	srv, base := startServer(t, ccfg, Config{MaxConcurrentJobs: 1, MaxQueueDepth: 1})
	defer srv.Shutdown()

	if resp, _ := submit(t, base, `{"app":"mcf","id":"slot"}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	awaitState(t, base, "slot", StateRunning, StateDone)
	if resp, _ := submit(t, base, `{"app":"mcf","id":"queued"}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: %d", resp.StatusCode)
	}
	resp, _ := submit(t, base, `{"app":"mcf","id":"rejected"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit: got %d want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	// Unblock the test quickly.
	for _, id := range []string{"slot", "queued"} {
		req, _ := http.NewRequest(http.MethodDelete, base+"/jobs/"+id, nil)
		if r, err := http.DefaultClient.Do(req); err == nil {
			r.Body.Close()
		}
	}
}

// TestBadRequests: malformed and invalid submissions get 400, unknown
// jobs 404, duplicate IDs 409.
func TestBadRequests(t *testing.T) {
	srv, base := startServer(t, testClusterConfig(), Config{})
	defer srv.Shutdown()

	for _, body := range []string{``, `{`, `{"app":"bogus"}`, `{"app":"tc","minsim":7}`, `{"app":"tc","id":"../etc"}`} {
		if resp, _ := submit(t, base, body); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: got %d want 400", body, resp.StatusCode)
		}
	}
	if code, _ := fetchText(t, base+"/jobs/nope"); code != http.StatusNotFound {
		t.Errorf("unknown job status: got %d want 404", code)
	}
	if resp, _ := submit(t, base, `{"app":"tc","id":"dup"}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("dup setup: %d", resp.StatusCode)
	}
	if resp, _ := submit(t, base, `{"app":"tc","id":"dup"}`); resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate id: got %d want 409", resp.StatusCode)
	}
	awaitState(t, base, "dup", StateDone, StateFailed)
}

// TestGracefulShutdownReleasesPort: Shutdown must drain running jobs and
// free the listen port so a restarted daemon can bind the same address —
// the SIGTERM contract.
func TestGracefulShutdownReleasesPort(t *testing.T) {
	srv, base := startServer(t, testClusterConfig(), Config{DrainTimeout: 30 * time.Second})
	addr := srv.Addr()

	if resp, _ := submit(t, base, `{"app":"tc","id":"inflight"}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	srv.Shutdown() // must wait for "inflight" to finish, then close the port

	sess2, err := cluster.NewSession(servingGraph(), testClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv2 := New(sess2, Config{})
	addr2, err := srv2.Start(addr)
	if err != nil {
		t.Fatalf("rebind %s after shutdown: %v", addr, err)
	}
	defer srv2.Shutdown()
	if addr2 != addr {
		t.Fatalf("rebound address %s != %s", addr2, addr)
	}
	// The shared client holds a keep-alive connection to the dead process
	// instance; a restarted daemon means a fresh connection.
	http.DefaultClient.CloseIdleConnections()
	if resp, _ := submit(t, "http://"+addr2, `{"app":"tc"}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit after restart: %d", resp.StatusCode)
	}
}

// TestDrainRefusesNewJobs: once draining, submissions get 503 and healthz
// flips to draining.
func TestDrainRefusesNewJobs(t *testing.T) {
	srv, base := startServer(t, testClusterConfig(), Config{})
	defer srv.Shutdown()

	srv.reg.drain(time.Second)
	resp, _ := submit(t, base, `{"app":"tc"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: got %d want 503", resp.StatusCode)
	}
	code, body := fetchText(t, base+"/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("healthz while draining: code %d body %q", code, body)
	}
}

// TestMetricsPerJobLabels: /metrics must expose the monitor's counter
// families labeled per job.
func TestMetricsPerJobLabels(t *testing.T) {
	srv, base := startServer(t, testClusterConfig(), Config{})
	defer srv.Shutdown()

	if resp, _ := submit(t, base, `{"app":"tc","id":"metrics-probe"}`); resp.StatusCode != http.StatusAccepted {
		t.Fatal("submit failed")
	}
	awaitState(t, base, "metrics-probe", StateDone)
	_, body := fetchText(t, base+"/metrics")
	if !strings.Contains(body, `gminer_tasks_done_total{job="metrics-probe",worker="0"}`) {
		t.Fatalf("per-job labeled series missing from /metrics:\n%s", body[:min(len(body), 800)])
	}
}
