package server

import (
	"fmt"
	"sort"
	"time"

	"gminer/internal/cluster"
	"gminer/internal/dyngraph"
	"gminer/internal/graph"
	"gminer/internal/jobspec"
)

// Standing mining queries (§13). A job submitted with "standing": true
// runs its baseline through the normal admission path, then — instead of
// going terminal — parks in the "standing" state holding its match set.
// Every mutation batch afterwards triggers one delta round per standing
// job, run synchronously inside POST /graph/mutations (under the server's
// mutation mutex), so by the time the mutation response is written every
// standing job's match set reflects the new epoch. A delta round produces
// the per-epoch added/retracted record sets a `gminer watch` client folds
// into its snapshot.
//
// The default round is deliberately conservative: recompute the workload
// on the warm session (the session already migrated only dirty blocks, so
// the prepare cost is paid) and merge-diff the sorted record sets. That is
// always sound — it satisfies the differential gate by construction for
// any algorithm. Triangle counting additionally gets a true dirty-rooted
// incremental round: the new aggregate is derived from the previous one
// plus the triangles touching the batch's dirty vertices before/after,
// with no cluster launch at all.

// DeltaDoc is one epoch's output for one standing job: the records that
// appeared, the records that vanished, and the aggregate movement. It is
// both an element of the GET /jobs/{id}/deltas NDJSON stream and part of
// the POST /graph/mutations response.
type DeltaDoc struct {
	Type  string `json:"type"` // "delta" on the wire
	JobID string `json:"job_id"`
	Epoch int64  `json:"epoch"`
	// Added and Retracted are sorted record sets; a client holding the
	// previous epoch's match set reconstructs the new one exactly.
	Added     []string `json:"added"`
	Retracted []string `json:"retracted"`
	// Matches is the match-set size after this epoch.
	Matches int `json:"matches"`
	// Aggregate / PrevAggregate carry aggregate movement for
	// aggregate-producing workloads (tc), formatted like JobResult's.
	Aggregate     string `json:"aggregate,omitempty"`
	PrevAggregate string `json:"prev_aggregate,omitempty"`
	// Incremental marks a round served by the dirty-rooted path instead of
	// a full recomputation.
	Incremental    bool    `json:"incremental,omitempty"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
}

// snapshotDoc heads the deltas stream: the full match set at the epoch
// the subscriber attached, so reconstruction needs no other endpoint.
type snapshotDoc struct {
	Type      string   `json:"type"` // "snapshot"
	JobID     string   `json:"job_id"`
	Epoch     int64    `json:"epoch"`
	Records   []string `json:"records"`
	Aggregate string   `json:"aggregate,omitempty"`
}

// standingPre holds per-job values that must be read off the OLD graph,
// before the batch lands. Today that is the triangles touching the dirty
// set, feeding tc's incremental identity
//
//	count' = count − touching(G, dirty) + touching(G', dirty)
//
// which is exact because every changed edge has an endpoint in dirty.
type standingPre struct {
	triTouching map[string]int64 // standing tc job id → touching(G, dirty)
}

// standingIDs snapshots the ids of jobs currently parked standing.
func (r *registry) standingIDs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var ids []string
	for _, id := range r.order {
		if j := r.jobs[id]; j != nil && j.state == StateStanding {
			ids = append(ids, id)
		}
	}
	return ids
}

// standingPrepare reads the pre-mutation values every standing job's
// round needs. Called by the mutation handler with the batch decoded but
// NOT yet applied; WithGraphRead excludes it from racing a mutation.
func (r *registry) standingPrepare(dirty []graph.VertexID) standingPre {
	pre := standingPre{triTouching: make(map[string]int64)}
	for _, id := range r.standingIDs() {
		r.mu.Lock()
		j := r.jobs[id]
		isTC := j != nil && j.state == StateStanding && j.req.Spec.App == "tc"
		r.mu.Unlock()
		if !isTC {
			continue
		}
		var touching int64
		r.sess.WithGraphRead(func() {
			touching = dyngraph.TrianglesTouching(r.sess.Graph(), dirty)
		})
		pre.triTouching[id] = touching
	}
	return pre
}

// runStandingRounds runs one delta round for every standing job at the
// freshly applied epoch. The caller holds the server's mutation mutex, so
// rounds are serialized against other mutations; each round's compute is
// metered like any job so standing queries pay their way in the QoS
// ledger.
func (r *registry) runStandingRounds(epoch int64, dirty []graph.VertexID, pre standingPre) []DeltaDoc {
	var docs []DeltaDoc
	for _, id := range r.standingIDs() {
		doc, err := r.standingRound(id, epoch, dirty, pre)
		if err != nil {
			// A round that cannot compute (e.g. the mutation stripped the
			// labels the spec needs) fails the standing job rather than
			// silently gapping its stream.
			r.mu.Lock()
			if j := r.jobs[id]; j != nil && j.state == StateStanding {
				j.state, j.err, j.finished = StateFailed, err, time.Now()
				j.bumpDeltas()
				r.cond.Broadcast()
			}
			r.mu.Unlock()
			continue
		}
		docs = append(docs, doc)
	}
	return docs
}

// standingRound computes one job's delta at one epoch.
func (r *registry) standingRound(id string, epoch int64, dirty []graph.VertexID, pre standingPre) (DeltaDoc, error) {
	r.mu.Lock()
	j := r.jobs[id]
	if j == nil || j.state != StateStanding {
		r.mu.Unlock()
		return DeltaDoc{}, fmt.Errorf("server: job %s no longer standing", id)
	}
	spec := j.req.Spec
	prevSet := j.matchSet
	prevAgg := j.aggregate
	tenant := j.tenant
	r.mu.Unlock()

	started := time.Now()
	doc := DeltaDoc{Type: "delta", JobID: id, Epoch: epoch, Added: []string{}, Retracted: []string{}}

	var newSet []string
	var newAgg any
	if touch, ok := pre.triTouching[id]; ok {
		// Incremental tc: no cluster launch. Count triangles touching the
		// dirty set on the new graph and roll the previous aggregate
		// forward. tc emits no records, so the match set stays empty.
		prev, isInt := prevAgg.(int64)
		if !isInt {
			return DeltaDoc{}, fmt.Errorf("server: standing tc job %s has no integer aggregate", id)
		}
		var post int64
		r.sess.WithGraphRead(func() {
			post = dyngraph.TrianglesTouching(r.sess.Graph(), dirty)
		})
		newAgg = prev - touch + post
		doc.Incremental = true
	} else {
		a, err := jobspec.Build(r.sess.Graph(), spec)
		if err != nil {
			return DeltaDoc{}, err
		}
		cj, err := r.sess.Launch(a, cluster.JobOptions{ID: fmt.Sprintf("%s.e%d", id, epoch)})
		if err != nil {
			return DeltaDoc{}, err
		}
		res, err := cj.Wait()
		if err != nil {
			return DeltaDoc{}, err
		}
		newSet = append([]string(nil), res.Records...)
		sort.Strings(newSet)
		newAgg = res.AggGlobal
		var cost float64
		for _, snap := range res.PerWorker {
			cost += snap.CostSeconds()
		}
		r.meter.ObserveJob(spec.App, tenant, cost, resPhases(res))
	}

	doc.Added, doc.Retracted = diffSorted(prevSet, newSet)
	doc.Matches = len(newSet)
	doc.ElapsedSeconds = time.Since(started).Seconds()
	if newAgg != nil {
		doc.Aggregate = fmt.Sprintf("%v", newAgg)
	}
	if prevAgg != nil {
		doc.PrevAggregate = fmt.Sprintf("%v", prevAgg)
	}

	r.mu.Lock()
	if j.state == StateStanding {
		j.matchSet = newSet
		j.aggregate = newAgg
		j.baseEpoch = epoch
		j.epoch = epoch
		j.deltas = append(j.deltas, doc)
		if j.result != nil {
			// Keep GET /jobs/{id}/result serving the CURRENT accumulated
			// match set, not the baseline's.
			res := *j.result
			res.Records = newSet
			res.AggGlobal = newAgg
			j.result = &res
		}
		j.bumpDeltas()
		r.standingRoundsRun++
	}
	r.mu.Unlock()
	return doc, nil
}

// diffSorted merge-diffs two sorted string sets into (added, retracted).
// Both outputs are non-nil so they serialize as [] rather than null.
func diffSorted(prev, next []string) (added, retracted []string) {
	added, retracted = []string{}, []string{}
	i, k := 0, 0
	for i < len(prev) && k < len(next) {
		switch {
		case prev[i] == next[k]:
			i++
			k++
		case prev[i] < next[k]:
			retracted = append(retracted, prev[i])
			i++
		default:
			added = append(added, next[k])
			k++
		}
	}
	retracted = append(retracted, prev[i:]...)
	added = append(added, next[k:]...)
	return added, retracted
}

// bumpDeltas wakes every deltas-stream subscriber. Callers hold r.mu.
func (j *job) bumpDeltas() {
	if j.notify != nil {
		close(j.notify)
	}
	j.notify = make(chan struct{})
}
