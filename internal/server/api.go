package server

import (
	"encoding/json"
	"fmt"
	"time"

	"gminer/internal/dyngraph"
	"gminer/internal/jobspec"
	"gminer/internal/trace"
)

// JobRequest is the JSON body of POST /jobs: the workload spec plus
// serving-side knobs.
type JobRequest struct {
	jobspec.Spec
	// ID optionally names the job. Empty lets the server pick one. A name
	// colliding with a live or retained job is rejected with 409.
	ID string `json:"id,omitempty"`
	// MemBudgetBytes caps this job's owned memory (task store + RCV
	// cache). 0 inherits the server's per-job default.
	MemBudgetBytes int64 `json:"mem_budget_bytes,omitempty"`
	// CheckpointEverySeconds overrides the server's checkpoint interval
	// for this job; 0 inherits it.
	CheckpointEverySeconds float64 `json:"checkpoint_every_seconds,omitempty"`
}

// maxJobRequestBytes bounds a POST /jobs body; a spec is a handful of
// scalar fields, so anything near the limit is garbage or abuse.
const maxJobRequestBytes = 1 << 16

// decodeJobRequest parses and validates a POST /jobs body. It is the
// fuzzed attack surface of the daemon: any input either yields a
// normalised, Validate-clean request or an error — never a panic and
// never a half-valid spec.
func decodeJobRequest(body []byte) (JobRequest, error) {
	var req JobRequest
	if len(body) == 0 {
		return req, fmt.Errorf("empty request body")
	}
	if len(body) > maxJobRequestBytes {
		return req, fmt.Errorf("request body exceeds %d bytes", maxJobRequestBytes)
	}
	if err := json.Unmarshal(body, &req); err != nil {
		return req, fmt.Errorf("malformed JSON: %w", err)
	}
	req.Spec = req.Spec.Normalize()
	if err := req.Spec.Validate(); err != nil {
		return req, err
	}
	if len(req.ID) > 128 {
		return req, fmt.Errorf("job id longer than 128 bytes")
	}
	for _, r := range req.ID {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' ||
			r == '-' || r == '_' || r == '.' {
			continue
		}
		return req, fmt.Errorf("job id may only contain [a-zA-Z0-9._-], got %q", req.ID)
	}
	if req.MemBudgetBytes < 0 {
		return req, fmt.Errorf("mem_budget_bytes must be >= 0")
	}
	if req.CheckpointEverySeconds < 0 {
		return req, fmt.Errorf("checkpoint_every_seconds must be >= 0")
	}
	return req, nil
}

// JobStatus is the JSON document of GET /jobs/{id} (and the elements of
// GET /jobs).
type JobStatus struct {
	ID        string       `json:"id"`
	App       string       `json:"app"`
	State     string       `json:"state"` // queued | running | standing | done | failed | cancelled | preempted | shed
	Error     string       `json:"error,omitempty"`
	Submitted time.Time    `json:"submitted"`
	Started   *time.Time   `json:"started,omitempty"`
	Finished  *time.Time   `json:"finished,omitempty"`
	Progress  *JobProgress `json:"progress,omitempty"`
	// QoS view. Tenant and Priority echo the normalized hints. Cached
	// marks a job answered from the result cache without computing.
	// QueueWaitSeconds is the time spent in the admission queue — live and
	// growing while queued, frozen at dispatch otherwise — and
	// QueuePosition the 1-based place in the tenant's dispatch order (0
	// once no longer queued). CostSeconds is the measured compute spend
	// (terminal jobs); CostEstimateSeconds the meter's admission-time
	// price.
	Tenant   string `json:"tenant,omitempty"`
	Priority int    `json:"priority,omitempty"`
	Cached   bool   `json:"cached,omitempty"`
	// GraphEpoch is the graph epoch the job computed against (rolls
	// forward with each delta round for standing jobs). DeltaRounds counts
	// a standing job's completed per-epoch rounds.
	GraphEpoch          int64   `json:"graph_epoch"`
	DeltaRounds         int     `json:"delta_rounds,omitempty"`
	QueueWaitSeconds    float64 `json:"queue_wait_seconds"`
	QueuePosition       int     `json:"queue_position,omitempty"`
	CostSeconds         float64 `json:"cost_seconds,omitempty"`
	CostEstimateSeconds float64 `json:"cost_estimate_seconds,omitempty"`
	// Phases holds the job's pipeline latency percentiles (task rounds,
	// pull RTTs, spills, migrations, checkpoints) — live while running,
	// final once done.
	Phases []trace.PhaseSummary `json:"phases,omitempty"`
}

// JobProgress is the live counter view of a running (or finished) job.
type JobProgress struct {
	TasksDone      int64   `json:"tasks_done"`
	Results        int64   `json:"results"`
	NetBytes       int64   `json:"net_bytes"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
}

// JobResult is the JSON document of GET /jobs/{id}/result.
type JobResult struct {
	ID             string   `json:"id"`
	App            string   `json:"app"`
	State          string   `json:"state"`
	Aggregate      string   `json:"aggregate,omitempty"`
	Records        []string `json:"records"`
	ElapsedSeconds float64  `json:"elapsed_seconds"`
	EdgeCut        float64  `json:"edge_cut"`
	TasksDone      int64    `json:"tasks_done"`
	// Cached marks a result served from the result cache: the records are
	// byte-identical to the original computation's, but this job burned no
	// compute (CostSeconds 0).
	Cached      bool    `json:"cached,omitempty"`
	CostSeconds float64 `json:"cost_seconds,omitempty"`
}

// MutationResult is the JSON document of POST /graph/mutations: the new
// epoch, what the batch did, how little of the partition had to move, and
// every standing job's delta for the epoch (the same documents their
// /deltas streams carry).
type MutationResult struct {
	Epoch          int64               `json:"epoch"`
	Stats          dyngraph.ApplyStats `json:"stats"`
	DirtyBlocks    int                 `json:"dirty_blocks"`
	MovedBlocks    int                 `json:"moved_blocks"`
	RebuiltWorkers []int               `json:"rebuilt_workers"`
	ApplySeconds   float64             `json:"apply_seconds"`
	Standing       []DeltaDoc          `json:"standing,omitempty"`
}

type errorBody struct {
	Error string `json:"error"`
}
