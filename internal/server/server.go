// Package server is the job-serving subsystem behind the gminerd daemon:
// a long-lived process that loads and BDG-partitions the graph once,
// keeps the cluster warm (worker tables, transport, partition
// assignment), and serves concurrent mining jobs over HTTP/JSON. It
// layers a job registry and an admission controller (bounded queue,
// concurrency cap, per-job memory budgets) on cluster.Session, which
// supplies the isolation and byte-identical-to-single-shot guarantees.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"gminer/internal/cluster"
	"gminer/internal/core"
	"gminer/internal/dyngraph"
	"gminer/internal/graph"
	"gminer/internal/metrics"
	"gminer/internal/monitor"
)

// Cluster is the warm-session surface the daemon serves over. Both the
// in-process cluster.Session and the multi-process cluster.RemoteSession
// satisfy it; the registry and handlers are agnostic to which one backs
// them.
type Cluster interface {
	Launch(a core.Algorithm, opt cluster.JobOptions) (*cluster.Job, error)
	Graph() *graph.Graph
	Config() cluster.Config
	PartitionTime() time.Duration
	EdgeCut() float64
	Fingerprint() uint64
	ActiveJobs() int
	DroppedMessages() int64
	// GraphEpoch is the resident graph's mutation epoch (0 on a static or
	// remote session, monotonic on a dynamic one).
	GraphEpoch() int64
	// WithGraphRead runs fn while the resident graph is guaranteed not to
	// mutate. On static sessions it is a plain call.
	WithGraphRead(fn func())
	Close()
}

// MutableCluster is the optional dynamic-graph extension of Cluster: only
// the in-process cluster.Session started with Config.Dynamic implements a
// true ApplyMutations (remote sessions reject Config.Dynamic at build
// time, so POST /graph/mutations answers 501 there).
type MutableCluster interface {
	Cluster
	Dynamic() bool
	ApplyMutations(b dyngraph.Batch) (*cluster.EpochResult, error)
}

// WorkerHealthReporter is the optional multi-process extension of
// Cluster: per-worker-process liveness for /healthz and /metrics. The
// in-process Session does not implement it (its workers are goroutines —
// alive iff the daemon is).
type WorkerHealthReporter interface {
	Ready() bool
	WorkerHealth() []cluster.WorkerStatus
}

// Server serves mining jobs over one warm cluster session.
type Server struct {
	sess  Cluster
	reg   *registry
	cfg   Config
	start time.Time

	// mutMu serializes mutation batches end to end: pre-reads on the old
	// graph, the epoch apply, cache invalidation and every standing job's
	// delta round happen as one unit, so the state visible when POST
	// /graph/mutations returns is deterministic.
	mutMu sync.Mutex

	srv *http.Server
	ln  net.Listener
}

// New builds a Server over an already-warm session. The caller keeps
// ownership of the session's graph (it must be fully prepared — labels,
// attributes — before any job runs; see jobspec.Prepare).
func New(sess Cluster, cfg Config) *Server {
	return &Server{
		sess:  sess,
		reg:   newRegistry(sess, cfg),
		cfg:   cfg.defaults(),
		start: time.Now(),
	}
}

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /graph/mutations", s.handleMutate)
	mux.HandleFunc("GET /jobs/{id}/deltas", s.handleDeltas)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// Start listens on addr (e.g. "127.0.0.1:7077", ":0") and serves until
// Shutdown. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("server: %w", err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler()}
	go func() { _ = s.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Addr returns the bound listen address ("" before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// SubmitJob enqueues a job through the same admission path as POST /jobs.
// The daemon uses it to resubmit held jobs after a coordinator `-resume`
// restart; keeping the IDs identical lets the cluster layer match each
// job to its on-disk JOBSPEC + MANIFEST and restore instead of recompute.
func (s *Server) SubmitJob(req JobRequest) error {
	_, err := s.reg.submit(req)
	return err
}

// InvalidateResultCache drops every cached result. Any future path that
// replaces or mutates the resident graph must call it — the graph
// fingerprint in the cache key already isolates graphs, so this is
// correctness belt-and-braces plus immediate memory release.
func (s *Server) InvalidateResultCache() { s.reg.invalidateCache() }

// Shutdown is the graceful stop behind SIGINT/SIGTERM: refuse new jobs,
// cancel the queue, give running jobs up to the drain timeout to finish
// (checkpointing as they go), cancel stragglers, then close the listener
// — releasing the port — and tear the warm cluster down.
func (s *Server) Shutdown() {
	s.reg.drain(s.cfg.defaults().DrainTimeout)
	if s.srv != nil {
		_ = s.srv.Close()
		s.srv = nil
	}
	s.sess.Close()
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxJobRequestBytes+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	req, err := decodeJobRequest(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	j, err := s.reg.submit(req)
	switch {
	case err == nil:
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After",
			strconv.Itoa(int(s.cfg.RetryAfter/time.Second)+1))
		writeErr(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining):
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrDuplicateID), errors.Is(err, ErrEpochMismatch):
		writeErr(w, http.StatusConflict, err)
		return
	case errors.Is(err, ErrNotDynamic):
		writeErr(w, http.StatusNotImplemented, err)
		return
	default:
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSONCode(w, http.StatusAccepted, s.statusOf(j))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.reg.mu.Lock()
	ids := append([]string(nil), s.reg.order...)
	s.reg.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if j, err := s.reg.get(id); err == nil {
			out = append(out, s.statusOf(j))
		}
	}
	writeJSON(w, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, err := s.reg.get(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, s.statusOf(j))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, err := s.reg.get(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	s.reg.mu.Lock()
	state, res, jerr := j.state, j.result, j.err
	app, id := j.req.App, j.id
	cached, cost := j.cached, j.costSeconds
	s.reg.mu.Unlock()
	switch state {
	case StateQueued, StateRunning:
		// Not done yet: 202 tells pollers to come back.
		writeJSONCode(w, http.StatusAccepted, s.statusOf(j))
		return
	case StateDone:
	case StateStanding:
		// A standing job's result is its CURRENT accumulated match set —
		// the registry rolls j.result forward with every delta round.
	default: // failed, cancelled, preempted, shed
		writeErr(w, http.StatusConflict,
			fmt.Errorf("job %s is %s: %v", id, state, jerr))
		return
	}
	if r.URL.Query().Get("format") == "text" {
		// One record per line, byte-identical to the single-shot CLI's
		// -out file for the same graph and spec.
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, rec := range res.Records {
			_, _ = io.WriteString(w, rec)
			_, _ = io.WriteString(w, "\n")
		}
		return
	}
	records := res.Records
	if records == nil {
		records = []string{}
	}
	out := JobResult{
		ID:             id,
		App:            app,
		State:          state,
		Records:        records,
		ElapsedSeconds: res.Elapsed.Seconds(),
		EdgeCut:        res.EdgeCut,
		TasksDone:      res.Total.TasksDone,
		Cached:         cached,
		CostSeconds:    cost,
	}
	if res.AggGlobal != nil {
		out.Aggregate = fmt.Sprintf("%v", res.AggGlobal)
	}
	writeJSON(w, out)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.reg.cancel(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, s.statusOf(j))
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	queued, running, standing, _ := s.reg.counts()
	s.reg.mu.Lock()
	draining := s.reg.draining
	s.reg.mu.Unlock()
	status, code := "ok", http.StatusOK
	var vertices int
	s.sess.WithGraphRead(func() { vertices = s.sess.Graph().NumVertices() })
	doc := map[string]any{
		"uptime":      time.Since(s.start).Round(time.Millisecond).String(),
		"graph":       map[string]int{"vertices": vertices},
		"graph_epoch": s.sess.GraphEpoch(),
		"dynamic":     s.reg.dynamic(),
		"queued":      queued,
		"running":     running,
		"standing":    standing,
		"sessions":    1,
	}
	if hr, ok := s.sess.(WorkerHealthReporter); ok {
		// Multi-process mode: the daemon is degraded (still 503, like
		// draining — load balancers should not route here) until every
		// worker slot has a live process attached.
		workers := hr.WorkerHealth()
		ws := make([]map[string]any, len(workers))
		allUp := true
		for i, st := range workers {
			ws[i] = map[string]any{
				"node":       st.Node,
				"joined":     st.Joined,
				"addr":       st.Addr,
				"generation": st.Generation,
				"draining":   st.Draining,
			}
			if !st.LastSeen.IsZero() {
				ws[i]["heartbeat_age_seconds"] = time.Since(st.LastSeen).Seconds()
			}
			if !st.Joined {
				allUp = false
			}
		}
		doc["workers"] = ws
		if !allUp {
			status, code = "degraded", http.StatusServiceUnavailable
		}
	}
	if draining {
		status, code = "draining", http.StatusServiceUnavailable
	}
	doc["status"] = status
	writeJSONCode(w, code, doc)
}

// handleMetrics reuses the monitor package's Prometheus family table with
// per-job labels, plus daemon-level job gauges.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	s.reg.mu.Lock()
	var labeled []monitor.JobSnapshots
	for _, id := range s.reg.order {
		j := s.reg.jobs[id]
		var snaps []metrics.Snapshot
		switch {
		case j.cj != nil && j.state == StateRunning:
			snaps = j.cj.WorkerSnapshots()
		case j.result != nil:
			snaps = j.result.PerWorker
		}
		if snaps != nil {
			labeled = append(labeled, monitor.JobSnapshots{Job: id, Workers: snaps})
		}
	}
	s.reg.mu.Unlock()
	monitor.WriteProm(w, labeled)

	// Per-tenant QoS families: queue depth, wait summary, spend ledger.
	byTenant := s.reg.tenantStats()
	tenants := make([]string, 0, len(byTenant))
	for tenant := range byTenant {
		tenants = append(tenants, tenant)
	}
	sort.Strings(tenants)
	stats := make([]monitor.TenantStat, 0, len(tenants))
	for _, tenant := range tenants {
		ts := byTenant[tenant]
		stats = append(stats, monitor.TenantStat{
			Tenant:         tenant,
			Queued:         ts.queued,
			WaitSumSeconds: ts.waitSum,
			WaitCount:      ts.waitCount,
			SpendSeconds:   ts.spend,
		})
	}
	monitor.WriteTenantProm(w, stats)

	// Per-app cost meter: EWMA price estimates plus the opMeter phase
	// table (count + cumulative seconds per pipeline phase per task type).
	apps, _ := s.reg.meter.Snapshot()
	fmt.Fprintf(w, "# HELP gminer_app_cost_estimate_seconds EWMA compute-cost estimate per task type, used to price admission.\n# TYPE gminer_app_cost_estimate_seconds gauge\n")
	for _, ac := range apps {
		fmt.Fprintf(w, "gminer_app_cost_estimate_seconds{app=%q} %s\n", ac.App, promFloat(ac.Estimate))
	}
	fmt.Fprintf(w, "# HELP gminer_app_cost_seconds_total Metered compute spend per task type.\n# TYPE gminer_app_cost_seconds_total counter\n")
	for _, ac := range apps {
		fmt.Fprintf(w, "gminer_app_cost_seconds_total{app=%q} %s\n", ac.App, promFloat(ac.CostSum))
	}
	fmt.Fprintf(w, "# HELP gminer_app_jobs_total Metered finished jobs per task type.\n# TYPE gminer_app_jobs_total counter\n")
	for _, ac := range apps {
		fmt.Fprintf(w, "gminer_app_jobs_total{app=%q} %d\n", ac.App, ac.Jobs)
	}
	fmt.Fprintf(w, "# HELP gminer_app_phase_seconds_total Cumulative pipeline-phase time per task type.\n# TYPE gminer_app_phase_seconds_total counter\n")
	for _, ac := range apps {
		for _, phase := range sortedKeys(ac.Phases) {
			fmt.Fprintf(w, "gminer_app_phase_seconds_total{app=%q,phase=%q} %s\n",
				ac.App, phase, promFloat(ac.Phases[phase].Seconds))
		}
	}

	// Result cache.
	cs := s.reg.cache.Stats()
	fmt.Fprintf(w, "# HELP gminer_result_cache_hits_total Jobs answered from the result cache.\n# TYPE gminer_result_cache_hits_total counter\ngminer_result_cache_hits_total %d\n", cs.Hits)
	fmt.Fprintf(w, "# HELP gminer_result_cache_misses_total Submits that had to compute.\n# TYPE gminer_result_cache_misses_total counter\ngminer_result_cache_misses_total %d\n", cs.Misses)
	fmt.Fprintf(w, "# HELP gminer_result_cache_entries Result-cache entries resident.\n# TYPE gminer_result_cache_entries gauge\ngminer_result_cache_entries %d\n", cs.Entries)

	// Multi-process cluster membership.
	if hr, ok := s.sess.(WorkerHealthReporter); ok {
		workers := hr.WorkerHealth()
		fmt.Fprintf(w, "# HELP gminer_cluster_workers Worker-process slots in the multi-process cluster.\n# TYPE gminer_cluster_workers gauge\ngminer_cluster_workers %d\n", len(workers))
		fmt.Fprintf(w, "# HELP gminer_cluster_worker_up Whether a live worker process holds the slot (by node index).\n# TYPE gminer_cluster_worker_up gauge\n")
		for _, st := range workers {
			up := 0
			if st.Joined {
				up = 1
			}
			fmt.Fprintf(w, "gminer_cluster_worker_up{node=\"%d\"} %d\n", st.Node, up)
		}
		fmt.Fprintf(w, "# HELP gminer_cluster_worker_generation Fencing generation of the process holding the slot (rises on every reclaim).\n# TYPE gminer_cluster_worker_generation gauge\n")
		for _, st := range workers {
			fmt.Fprintf(w, "gminer_cluster_worker_generation{node=\"%d\"} %d\n", st.Node, st.Generation)
		}
		fmt.Fprintf(w, "# HELP gminer_cluster_worker_heartbeat_age_seconds Time since the slot's last heartbeat.\n# TYPE gminer_cluster_worker_heartbeat_age_seconds gauge\n")
		for _, st := range workers {
			if !st.LastSeen.IsZero() {
				fmt.Fprintf(w, "gminer_cluster_worker_heartbeat_age_seconds{node=\"%d\"} %s\n", st.Node, promFloat(time.Since(st.LastSeen).Seconds()))
			}
		}
		fmt.Fprintf(w, "# HELP gminer_cluster_worker_draining Whether the slot's process is draining for a rolling restart.\n# TYPE gminer_cluster_worker_draining gauge\n")
		for _, st := range workers {
			d := 0
			if st.Draining {
				d = 1
			}
			fmt.Fprintf(w, "gminer_cluster_worker_draining{node=\"%d\"} %d\n", st.Node, d)
		}
	}

	// Dynamic-graph families: the resident epoch, live standing queries
	// and completed delta rounds.
	fmt.Fprintf(w, "# HELP gminer_graph_epoch Mutation epoch of the resident graph (0 = as loaded).\n# TYPE gminer_graph_epoch gauge\ngminer_graph_epoch %d\n", s.sess.GraphEpoch())
	s.reg.mu.Lock()
	roundsRun := s.reg.standingRoundsRun
	s.reg.mu.Unlock()
	fmt.Fprintf(w, "# HELP gminer_standing_rounds_total Per-epoch delta rounds completed across all standing jobs.\n# TYPE gminer_standing_rounds_total counter\ngminer_standing_rounds_total %d\n", roundsRun)

	queued, running, standing, terminal := s.reg.counts()
	fmt.Fprintf(w, "# HELP gminer_jobs_standing Standing queries live on the resident graph.\n# TYPE gminer_jobs_standing gauge\ngminer_jobs_standing %d\n", standing)
	fmt.Fprintf(w, "# HELP gminer_jobs_active Jobs currently mining on the warm cluster.\n# TYPE gminer_jobs_active gauge\ngminer_jobs_active %d\n", running)
	fmt.Fprintf(w, "# HELP gminer_jobs_queued_total Jobs waiting in the admission queue across all tenants.\n# TYPE gminer_jobs_queued_total gauge\ngminer_jobs_queued_total %d\n", queued)
	fmt.Fprintf(w, "# HELP gminer_jobs_finished_total Retained jobs by terminal state.\n# TYPE gminer_jobs_finished_total counter\n")
	for _, st := range terminalStates {
		fmt.Fprintf(w, "gminer_jobs_finished_total{state=%q} %d\n", st, terminal[st])
	}
	fmt.Fprintf(w, "# HELP gminer_uptime_seconds Time since the daemon started.\n# TYPE gminer_uptime_seconds gauge\ngminer_uptime_seconds %s\n",
		promFloat(time.Since(s.start).Seconds()))
}

func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// statusOf snapshots one job into its API document.
func (s *Server) statusOf(j *job) JobStatus {
	s.reg.mu.Lock()
	st := JobStatus{
		ID:                  j.id,
		App:                 j.req.App,
		State:               j.state,
		Submitted:           j.submitted,
		Tenant:              j.tenant,
		Priority:            j.priority,
		Cached:              j.cached,
		CostSeconds:         j.costSeconds,
		CostEstimateSeconds: j.estimate,
		GraphEpoch:          j.epoch,
		DeltaRounds:         len(j.deltas),
	}
	if j.state == StateQueued {
		// Live view: the wait grows until dispatch, and the position is
		// the job's place in its tenant's dispatch order.
		st.QueueWaitSeconds = time.Since(j.submitted).Seconds()
		st.QueuePosition = s.reg.queue.Position(j.id)
	} else {
		st.QueueWaitSeconds = j.queueWait.Seconds()
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	cj, tracer, res, started := j.cj, j.tracer, j.result, j.started
	s.reg.mu.Unlock()

	switch {
	case res != nil:
		st.Progress = &JobProgress{
			TasksDone:      res.Total.TasksDone,
			Results:        res.Total.Results,
			NetBytes:       res.Total.NetBytes,
			CacheHitRate:   res.Total.CacheHitRate(),
			ElapsedSeconds: res.Elapsed.Seconds(),
		}
		st.Phases = res.Phases
	case cj != nil:
		var total metrics.Snapshot
		for _, snap := range cj.WorkerSnapshots() {
			total = total.Add(snap)
		}
		st.Progress = &JobProgress{
			TasksDone:      total.TasksDone,
			Results:        total.Results,
			NetBytes:       total.NetBytes,
			CacheHitRate:   total.CacheHitRate(),
			ElapsedSeconds: time.Since(started).Seconds(),
		}
		st.Phases = tracer.Summary()
	}
	return st
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func writeJSONCode(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorBody{Error: err.Error()})
}
