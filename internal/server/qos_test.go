package server

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

func cancelJob(t *testing.T, base, id string) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodDelete, base+"/jobs/"+id, nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
}

// TestWeightedFairNoStarvation: one hog tenant floods the queue with four
// jobs; a light tenant submits one. Under FIFO the light job would start
// last; under weighted-fair queueing its virtual clock lags the hog's, so
// it must win the very next dispatch slot after the hog's first job.
func TestWeightedFairNoStarvation(t *testing.T) {
	ccfg := testClusterConfig()
	ccfg.Latency = time.Millisecond // the slot-holder must outlive the submission burst
	srv, base := startServer(t, ccfg, Config{MaxConcurrentJobs: 1, ResultCacheEntries: -1})
	defer srv.Shutdown()

	// The hog's first job holds the only slot (mcf + latency runs until
	// cancelled, so dispatch decisions below are timing-independent); its
	// next three build a backlog, then the light tenant submits one job.
	if resp, _ := submit(t, base, `{"app":"mcf","id":"h1","tenant":"hog"}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit h1: %d", resp.StatusCode)
	}
	for _, id := range []string{"h2", "h3", "h4"} {
		resp, _ := submit(t, base, fmt.Sprintf(`{"app":"tc","id":%q,"tenant":"hog"}`, id))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %s: %d", id, resp.StatusCode)
		}
	}
	if resp, _ := submit(t, base, `{"app":"tc","id":"light-1","tenant":"light"}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit light-1: %d", resp.StatusCode)
	}

	// Free the slot. The light tenant's virtual clock lags the hog's (the
	// hog already spent its h1 dispatch), so light-1 must win the next
	// slot ahead of the hog's h2..h4 backlog; FIFO would run it last.
	cancelJob(t, base, "h1")

	started := map[string]time.Time{}
	for _, id := range []string{"h2", "h3", "h4", "light-1"} {
		st := awaitState(t, base, id, StateDone, StateFailed)
		if st.State != StateDone {
			t.Fatalf("job %s finished %s: %s", id, st.State, st.Error)
		}
		if st.Started == nil {
			t.Fatalf("job %s has no start time", id)
		}
		started[id] = *st.Started
		if st.Tenant == "" {
			t.Fatalf("job %s status carries no tenant", id)
		}
	}
	for _, id := range []string{"h2", "h3", "h4"} {
		if !started["light-1"].Before(started[id]) {
			t.Fatalf("light tenant starved: %s started before light-1", id)
		}
	}
}

// TestResultCacheServesByteIdentical: a repeated identical workload —
// even from a different tenant — must be answered from the result cache,
// marked cached, and byte-identical in the text form.
func TestResultCacheServesByteIdentical(t *testing.T) {
	srv, base := startServer(t, testClusterConfig(), Config{})
	defer srv.Shutdown()

	if resp, _ := submit(t, base, `{"app":"gm","id":"one","tenant":"alice"}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	fin := awaitState(t, base, "one", StateDone, StateFailed)
	if fin.State != StateDone {
		t.Fatalf("first job finished %s: %s", fin.State, fin.Error)
	}
	if fin.Cached {
		t.Fatal("first computation claims to be cached")
	}
	_, want := fetchText(t, base+"/jobs/one/result?format=text")

	// Same workload, different tenant and QoS hints: the cache key excludes
	// them, so this must hit.
	resp, st := submit(t, base, `{"app":"gm","id":"two","tenant":"bob","priority":5}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: %d", resp.StatusCode)
	}
	if st.State != StateDone || !st.Cached {
		t.Fatalf("repeat submit: state %s cached %v, want instant cached done", st.State, st.Cached)
	}
	code, got := fetchText(t, base+"/jobs/two/result?format=text")
	if code != http.StatusOK {
		t.Fatalf("cached result: status %d", code)
	}
	if got != want {
		t.Fatalf("cached result not byte-identical (%d vs %d bytes)", len(got), len(want))
	}
	code, body := fetchText(t, base+"/jobs/two/result")
	if code != http.StatusOK || !strings.Contains(body, `"cached":true`) {
		t.Fatalf("cached JSON result: code %d body %.200s", code, body)
	}

	// A different workload must miss and compute.
	resp2, st2 := submit(t, base, `{"app":"tc","id":"miss"}`)
	if resp2.StatusCode != http.StatusAccepted || st2.Cached {
		t.Fatalf("different workload: code %d cached %v", resp2.StatusCode, st2.Cached)
	}
	awaitState(t, base, "miss", StateDone, StateFailed)

	_, metricsBody := fetchText(t, base+"/metrics")
	if !strings.Contains(metricsBody, "gminer_result_cache_hits_total 1") {
		t.Fatalf("cache hit not counted on /metrics")
	}
}

// TestQueuedDeleteFreesSlot is the satellite bugfix regression: DELETE of
// a still-queued job must remove it from the admission queue immediately
// and return its slot — an instant resubmit gets 202, not 429.
func TestQueuedDeleteFreesSlot(t *testing.T) {
	ccfg := testClusterConfig()
	ccfg.Latency = time.Millisecond // keep the slot-holder running
	srv, base := startServer(t, ccfg, Config{MaxConcurrentJobs: 1, MaxQueueDepth: 1, ResultCacheEntries: -1})
	defer srv.Shutdown()

	if resp, _ := submit(t, base, `{"app":"mcf","id":"slot"}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("slot submit: %d", resp.StatusCode)
	}
	awaitState(t, base, "slot", StateRunning, StateDone)
	if resp, _ := submit(t, base, `{"app":"mcf","id":"stuck"}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued submit: %d", resp.StatusCode)
	}

	cancelJob(t, base, "stuck")
	st := awaitState(t, base, "stuck", StateCancelled)
	if st.State != StateCancelled {
		t.Fatalf("deleted queued job state: %s", st.State)
	}
	// The freed queue slot must be usable immediately, not once the dead
	// entry would have reached the head.
	resp, _ := submit(t, base, `{"app":"mcf","id":"after"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit after queued delete: got %d want 202", resp.StatusCode)
	}
	cancelJob(t, base, "after")
	cancelJob(t, base, "slot")
}

// TestLoadSheddingCheapestFirst: under queue pressure, admission sheds
// the cheapest-to-recompute queued job in favour of expensive incoming
// work — and rejects incoming work that is itself the cheapest.
func TestLoadSheddingCheapestFirst(t *testing.T) {
	ccfg := testClusterConfig()
	ccfg.Latency = time.Millisecond
	srv, base := startServer(t, ccfg, Config{MaxConcurrentJobs: 1, MaxQueueDepth: 1, ResultCacheEntries: -1})
	defer srv.Shutdown()

	// Prime the meter so tc is known-cheap and mcf known-expensive; the
	// estimates drive the shed-vs-reject decision deterministically.
	srv.reg.meter.ObserveJob("tc", "default", 0.01, nil)
	srv.reg.meter.ObserveJob("mcf", "default", 5.0, nil)

	if resp, _ := submit(t, base, `{"app":"mcf","id":"slot"}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("slot submit: %d", resp.StatusCode)
	}
	awaitState(t, base, "slot", StateRunning, StateDone)
	if resp, _ := submit(t, base, `{"app":"tc","id":"cheap"}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cheap submit: %d", resp.StatusCode)
	}

	// Expensive incoming beats cheap queued: cheap is shed, expensive admitted.
	resp, _ := submit(t, base, `{"app":"mcf","id":"expensive"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("expensive submit under pressure: got %d want 202", resp.StatusCode)
	}
	st := awaitState(t, base, "cheap", StateShed)
	if st.State != StateShed {
		t.Fatalf("cheap job state: %s, want shed", st.State)
	}
	if code, _ := fetchText(t, base+"/jobs/cheap/result"); code != http.StatusConflict {
		t.Fatalf("shed job result: status %d, want 409", code)
	}

	// Cheap incoming loses to expensive queued: 429, nothing shed.
	resp2, _ := submit(t, base, `{"app":"tc","id":"cheap2"}`)
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("cheap submit under pressure: got %d want 429", resp2.StatusCode)
	}

	_, metricsBody := fetchText(t, base+"/metrics")
	if !strings.Contains(metricsBody, `gminer_jobs_finished_total{state="shed"} 1`) {
		t.Fatal("shed terminal state missing from /metrics")
	}
	cancelJob(t, base, "expensive")
	cancelJob(t, base, "slot")
}

// TestOverBudgetPreemptedAtRoundBoundary: a job whose measured compute
// spend exceeds its budget hint must be stopped via the cooperative
// cancel path with the distinct "preempted" terminal state.
func TestOverBudgetPreemptedAtRoundBoundary(t *testing.T) {
	ccfg := testClusterConfig()
	ccfg.Latency = 500 * time.Microsecond // slow rounds so the hook fires mid-job
	srv, base := startServer(t, ccfg, Config{ResultCacheEntries: -1})
	defer srv.Shutdown()

	resp, _ := submit(t, base, `{"app":"mcf","id":"burner","budget_seconds":0.0002}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	st := awaitState(t, base, "burner", StatePreempted, StateDone, StateFailed)
	if st.State != StatePreempted {
		t.Fatalf("job finished %s (%s), want preempted", st.State, st.Error)
	}
	if !strings.Contains(st.Error, "budget") {
		t.Fatalf("preempted job error %q does not name the budget", st.Error)
	}
	if st.CostSeconds <= 0 {
		t.Fatalf("preempted job reports no measured cost: %v", st.CostSeconds)
	}
	if code, _ := fetchText(t, base+"/jobs/burner/result"); code != http.StatusConflict {
		t.Fatalf("preempted job result: status %d, want 409", code)
	}
	_, metricsBody := fetchText(t, base+"/metrics")
	if !strings.Contains(metricsBody, `gminer_jobs_finished_total{state="preempted"} 1`) {
		t.Fatal("preempted terminal state missing from /metrics")
	}
}

// TestQueuedDeadlineSheds: a job still queued when its deadline passes is
// shed at dispatch time instead of being started doomed.
func TestQueuedDeadlineSheds(t *testing.T) {
	ccfg := testClusterConfig()
	ccfg.Latency = time.Millisecond
	srv, base := startServer(t, ccfg, Config{MaxConcurrentJobs: 1, ResultCacheEntries: -1})
	defer srv.Shutdown()

	if resp, _ := submit(t, base, `{"app":"mcf","id":"slot"}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("slot submit: %d", resp.StatusCode)
	}
	awaitState(t, base, "slot", StateRunning, StateDone)
	if resp, _ := submit(t, base, `{"app":"tc","id":"late","deadline_seconds":0.01}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("deadline submit: %d", resp.StatusCode)
	}
	time.Sleep(20 * time.Millisecond) // let the deadline lapse while queued
	cancelJob(t, base, "slot")        // free the slot; the pump must shed "late"
	st := awaitState(t, base, "late", StateShed)
	if !strings.Contains(st.Error, "deadline") {
		t.Fatalf("shed job error %q does not name the deadline", st.Error)
	}
}

// TestQueueWaitAndPositionInStatus: queued jobs expose a live queue wait
// and their per-tenant dispatch position; /metrics carries the tenant
// queue-depth gauge and wait summary.
func TestQueueWaitAndPositionInStatus(t *testing.T) {
	ccfg := testClusterConfig()
	ccfg.Latency = 2 * time.Millisecond // slot-holder must outlive the status probes below
	srv, base := startServer(t, ccfg, Config{MaxConcurrentJobs: 1, ResultCacheEntries: -1})
	defer srv.Shutdown()

	if resp, _ := submit(t, base, `{"app":"mcf","id":"slot"}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("slot submit: %d", resp.StatusCode)
	}
	for _, id := range []string{"q1", "q2"} {
		if resp, _ := submit(t, base, fmt.Sprintf(`{"app":"mcf","id":%q}`, id)); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("%s submit: %d", id, resp.StatusCode)
		}
	}

	st := awaitState(t, base, "q2", StateQueued)
	if st.QueuePosition != 2 {
		t.Fatalf("q2 queue position: got %d want 2", st.QueuePosition)
	}
	if st.QueueWaitSeconds <= 0 {
		t.Fatalf("queued job reports no wait: %v", st.QueueWaitSeconds)
	}
	if st.CostEstimateSeconds <= 0 {
		t.Fatalf("queued job reports no cost estimate: %v", st.CostEstimateSeconds)
	}

	_, metricsBody := fetchText(t, base+"/metrics")
	if !strings.Contains(metricsBody, `gminer_jobs_queued{tenant="default"} 2`) {
		t.Fatal("per-tenant queue depth missing from /metrics")
	}
	if !strings.Contains(metricsBody, `gminer_job_queue_wait_seconds_count{tenant="default"} 1`) {
		t.Fatal("queue wait summary missing from /metrics (slot dispatch should have recorded one wait)")
	}

	for _, id := range []string{"q2", "q1", "slot"} {
		cancelJob(t, base, id)
	}
	// Cancelled queued jobs freeze their recorded wait.
	fin := awaitState(t, base, "q2", StateCancelled)
	if fin.QueueWaitSeconds <= 0 {
		t.Fatalf("cancelled queued job lost its recorded wait: %v", fin.QueueWaitSeconds)
	}
}
