package server

import (
	"encoding/json"
	"testing"
)

// FuzzDecodeJobRequest hammers the daemon's submission decoder: any body
// must either produce a fully validated request or an error — never a
// panic, and never an accepted request whose spec fails validation.
func FuzzDecodeJobRequest(f *testing.F) {
	seeds := []string{
		`{"app":"tc"}`,
		`{"app":"gm","pattern":"0,1,2,1,3;-1,0,0,2,2","id":"gm-1"}`,
		`{"app":"cd","minsim":0.5,"minsize":3}`,
		`{"app":"mcf","split":64,"mem_budget_bytes":1048576}`,
		`{"app":"fsm","labels":9,"seed":42}`,
		`{"app":"TC","checkpoint_every_seconds":0.5}`,
		`{"app":"qc","minsim":1}`,
		`{"id":"missing-app"}`,
		`{"app":"tc","id":"bad id with spaces"}`,
		`{"app":"gm","pattern":";"}`,
		`{"app":"tc","mem_budget_bytes":-1}`,
		`not json`,
		``,
		`[]`,
		`{"app":"tc","minsim":1e309}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := decodeJobRequest(body)
		if err != nil {
			return
		}
		if verr := req.Spec.Validate(); verr != nil {
			t.Fatalf("accepted request fails validation: %v (body %q)", verr, body)
		}
		if req.Spec.Normalize() != req.Spec {
			t.Fatalf("accepted spec not normalised: %+v", req.Spec)
		}
		if req.MemBudgetBytes < 0 || req.CheckpointEverySeconds < 0 {
			t.Fatalf("accepted negative resource knobs: %+v", req)
		}
		// An accepted request must round-trip through JSON (the client and
		// server agree on the wire form).
		if _, err := json.Marshal(req); err != nil {
			t.Fatalf("accepted request not re-encodable: %v", err)
		}
	})
}
