package graph

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary graph format: a compact snapshot for fast reloads (the text
// formats exist for interchange; this one for storage). Layout:
//
//	magic "GMG1" | uvarint |V| | per vertex: id, label (zigzag varints),
//	attr count + attrs, adjacency as delta varints
//
// Only frozen graphs can be written; loading yields a frozen graph.

var binaryMagic = [4]byte{'G', 'M', 'G', '1'}

// WriteBinary writes the graph in the binary snapshot format.
func WriteBinary(w io.Writer, g *Graph) error {
	if !g.Frozen() {
		return fmt.Errorf("graph: WriteBinary requires a frozen graph")
	}
	buf := make([]byte, 0, 64)
	if _, err := w.Write(binaryMagic[:]); err != nil {
		return fmt.Errorf("graph: %w", err)
	}
	buf = binary.AppendUvarint(buf, uint64(g.NumVertices()))
	var werr error
	flush := func() {
		if werr == nil && len(buf) > 0 {
			_, werr = w.Write(buf)
			buf = buf[:0]
		}
	}
	g.ForEach(func(v *Vertex) bool {
		buf = binary.AppendVarint(buf, int64(v.ID))
		buf = binary.AppendVarint(buf, int64(v.Label))
		buf = binary.AppendUvarint(buf, uint64(len(v.Attrs)))
		for _, a := range v.Attrs {
			buf = binary.AppendVarint(buf, int64(a))
		}
		buf = binary.AppendUvarint(buf, uint64(len(v.Adj)))
		var prev int64
		for _, n := range v.Adj {
			buf = binary.AppendVarint(buf, int64(n)-prev)
			prev = int64(n)
		}
		if len(buf) >= 1<<16 {
			flush()
		}
		return werr == nil
	})
	flush()
	if werr != nil {
		return fmt.Errorf("graph: %w", werr)
	}
	return nil
}

// ReadBinary loads a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := &byteReader{r: r}
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graph: binary header: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic[:])
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("graph: vertex count: %w", err)
	}
	if n > 1<<34 {
		return nil, fmt.Errorf("graph: implausible vertex count %d", n)
	}
	g := New(int(n))
	for i := uint64(0); i < n; i++ {
		id, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("graph: vertex %d id: %w", i, err)
		}
		label, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("graph: vertex %d label: %w", i, err)
		}
		v := g.AddVertex(VertexID(id))
		v.Label = int32(label)
		na, err := binary.ReadUvarint(br)
		if err != nil || na > 1<<24 {
			return nil, fmt.Errorf("graph: vertex %d attrs: %w", i, err)
		}
		if na > 0 {
			attrs := make([]int32, na)
			for j := range attrs {
				a, err := binary.ReadVarint(br)
				if err != nil {
					return nil, fmt.Errorf("graph: vertex %d attr %d: %w", i, j, err)
				}
				attrs[j] = int32(a)
			}
			v.Attrs = attrs
		}
		deg, err := binary.ReadUvarint(br)
		if err != nil || deg > 1<<30 {
			return nil, fmt.Errorf("graph: vertex %d degree: %w", i, err)
		}
		if deg > 0 {
			adj := make([]VertexID, deg)
			var prev int64
			for j := range adj {
				d, err := binary.ReadVarint(br)
				if err != nil {
					return nil, fmt.Errorf("graph: vertex %d adj %d: %w", i, j, err)
				}
				prev += d
				adj[j] = VertexID(prev)
			}
			v.Adj = adj
		}
	}
	g.Freeze()
	return g, nil
}

// SaveBinaryFile / LoadBinaryFile are file-path conveniences.
func SaveBinaryFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("graph: %w", err)
	}
	if err := WriteBinary(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadBinaryFile reads a binary snapshot from a file.
func LoadBinaryFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	defer f.Close()
	return ReadBinary(f)
}

// byteReader adapts an io.Reader for binary.ReadUvarint with buffering.
type byteReader struct {
	r   io.Reader
	buf [4096]byte
	pos int
	end int
}

func (b *byteReader) ReadByte() (byte, error) {
	if b.pos >= b.end {
		n, err := b.r.Read(b.buf[:])
		if n == 0 {
			if err == nil {
				err = io.ErrUnexpectedEOF
			}
			return 0, err
		}
		b.pos, b.end = 0, n
	}
	c := b.buf[b.pos]
	b.pos++
	return c, nil
}

func (b *byteReader) Read(p []byte) (int, error) {
	// Serve from the buffer first.
	if b.pos < b.end {
		n := copy(p, b.buf[b.pos:b.end])
		b.pos += n
		return n, nil
	}
	return b.r.Read(p)
}
