// Package graph provides the in-memory graph model used throughout the
// G-Miner reproduction: vertices with an ID, an adjacency list, an optional
// label and an optional attribute vector (§4 of the paper, "Graph
// notations").
//
// The model is deliberately simple and value-oriented: a Graph owns a slice
// of Vertex structs plus an index from VertexID to position. Algorithms and
// the runtime always work with sorted adjacency lists so that neighborhood
// intersections are linear.
package graph

import (
	"fmt"
	"sort"
)

// VertexID identifies a vertex. IDs need not be dense or contiguous.
type VertexID int64

// NoLabel is the label value of an unlabeled vertex.
const NoLabel int32 = -1

// Vertex holds one vertex: its ID id(v), adjacency list Γ(v), and the
// optional label / attribute list a(v) used by the attributed-graph
// applications (GM, CD, GC).
type Vertex struct {
	ID    VertexID
	Adj   []VertexID
	Label int32
	Attrs []int32
}

// Degree returns |Γ(v)|.
func (v *Vertex) Degree() int { return len(v.Adj) }

// HasNeighbor reports whether u ∈ Γ(v). Adjacency must be sorted.
func (v *Vertex) HasNeighbor(u VertexID) bool {
	i := sort.Search(len(v.Adj), func(i int) bool { return v.Adj[i] >= u })
	return i < len(v.Adj) && v.Adj[i] == u
}

// Clone returns a deep copy of the vertex.
func (v *Vertex) Clone() *Vertex {
	c := &Vertex{ID: v.ID, Label: v.Label}
	c.Adj = append([]VertexID(nil), v.Adj...)
	if v.Attrs != nil {
		c.Attrs = append([]int32(nil), v.Attrs...)
	}
	return c
}

// FootprintBytes estimates the in-memory size of the vertex, used by the
// memory accounting in internal/memctl and by cache sizing.
func (v *Vertex) FootprintBytes() int64 {
	return int64(8 + 4 + 8*len(v.Adj) + 4*len(v.Attrs) + 48)
}

// Graph is an undirected (by default) graph. Edges are stored in both
// endpoints' adjacency lists. The zero value is an empty graph ready to use.
//
// Vertices are heap-allocated individually so that *Vertex pointers handed
// out by Vertex/VertexAt/ForEach stay valid across later vertex insertions
// and deletions — the warm cluster Session's per-worker local tables hold
// such pointers across graph epochs (see internal/dyngraph).
type Graph struct {
	verts []*Vertex
	index map[VertexID]int

	// dead counts tombstoned slots (verts[i] == nil) left by DynDelVertex
	// until the next DynCompact.
	dead int

	// frozen is set once Freeze has sorted and deduplicated adjacency
	// lists; mutating methods panic afterwards to catch misuse. Live
	// mutation of a frozen graph goes through the Dyn* methods, which
	// preserve the frozen invariants op by op.
	frozen bool
}

// New returns an empty graph with capacity hint n.
func New(n int) *Graph {
	return &Graph{
		verts: make([]*Vertex, 0, n),
		index: make(map[VertexID]int, n),
	}
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.verts) - g.dead }

// NumEdges returns |E| (each undirected edge counted once). Requires a
// frozen graph for an exact count; on an unfrozen graph duplicates may be
// double counted.
func (g *Graph) NumEdges() int64 {
	var total int64
	for _, v := range g.verts {
		if v != nil {
			total += int64(len(v.Adj))
		}
	}
	return total / 2
}

// AddVertex inserts a vertex with the given ID if absent and returns its
// slot. Label defaults to NoLabel.
func (g *Graph) AddVertex(id VertexID) *Vertex {
	if g.frozen {
		panic("graph: AddVertex on frozen graph")
	}
	if i, ok := g.index[id]; ok {
		return g.verts[i]
	}
	g.index[id] = len(g.verts)
	v := &Vertex{ID: id, Label: NoLabel}
	g.verts = append(g.verts, v)
	return v
}

// AddEdge inserts the undirected edge {u, w}, creating endpoints as needed.
// Self-loops are ignored. Duplicate edges are removed by Freeze.
func (g *Graph) AddEdge(u, w VertexID) {
	if u == w {
		return
	}
	vu := g.AddVertex(u)
	vu.Adj = append(vu.Adj, w)
	vw := g.AddVertex(w)
	vw.Adj = append(vw.Adj, u)
}

// SetLabel sets the label of vertex id, creating it if absent.
func (g *Graph) SetLabel(id VertexID, label int32) {
	g.AddVertex(id).Label = label
}

// SetAttrs sets the attribute list of vertex id, creating it if absent.
func (g *Graph) SetAttrs(id VertexID, attrs []int32) {
	g.AddVertex(id).Attrs = attrs
}

// Freeze sorts and deduplicates every adjacency list and marks the graph
// immutable. All runtime components require a frozen graph.
func (g *Graph) Freeze() {
	if g.frozen {
		return
	}
	for _, v := range g.verts {
		adj := v.Adj
		sort.Slice(adj, func(a, b int) bool { return adj[a] < adj[b] })
		out := adj[:0]
		var prev VertexID = -1
		for _, id := range adj {
			if id != prev {
				out = append(out, id)
				prev = id
			}
		}
		v.Adj = out
	}
	g.frozen = true
}

// Frozen reports whether Freeze has been called.
func (g *Graph) Frozen() bool { return g.frozen }

// Vertex returns the vertex with the given ID, or nil if absent. The
// returned pointer aliases graph storage; callers must not mutate it after
// Freeze.
func (g *Graph) Vertex(id VertexID) *Vertex {
	if i, ok := g.index[id]; ok {
		return g.verts[i]
	}
	return nil
}

// Has reports whether the graph contains vertex id.
func (g *Graph) Has(id VertexID) bool {
	_, ok := g.index[id]
	return ok
}

// VertexAt returns the i-th vertex in insertion order. Between a
// DynDelVertex and the next DynCompact it may return nil for tombstoned
// slots.
func (g *Graph) VertexAt(i int) *Vertex { return g.verts[i] }

// IDs returns all vertex IDs in insertion order.
func (g *Graph) IDs() []VertexID {
	ids := make([]VertexID, 0, len(g.verts))
	for _, v := range g.verts {
		if v != nil {
			ids = append(ids, v.ID)
		}
	}
	return ids
}

// ForEach calls fn for every vertex in insertion order, stopping early if
// fn returns false.
func (g *Graph) ForEach(fn func(v *Vertex) bool) {
	for _, v := range g.verts {
		if v == nil {
			continue
		}
		if !fn(v) {
			return
		}
	}
}

// MaxDegree returns the maximum degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for _, v := range g.verts {
		if v == nil {
			continue
		}
		if d := len(v.Adj); d > max {
			max = d
		}
	}
	return max
}

// AvgDegree returns the average degree, or 0 for an empty graph.
func (g *Graph) AvgDegree() float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	var total int64
	for _, v := range g.verts {
		if v != nil {
			total += int64(len(v.Adj))
		}
	}
	return float64(total) / float64(n)
}

// NumAttrs returns the size of the attribute universe: the max attribute
// value + 1 across all vertices, or 0 if the graph is non-attributed.
func (g *Graph) NumAttrs() int {
	var max int32 = -1
	for _, v := range g.verts {
		if v == nil {
			continue
		}
		for _, a := range v.Attrs {
			if a > max {
				max = a
			}
		}
	}
	return int(max + 1)
}

// Attributed reports whether any vertex carries an attribute list.
func (g *Graph) Attributed() bool {
	for _, v := range g.verts {
		if v != nil && len(v.Attrs) > 0 {
			return true
		}
	}
	return false
}

// Labeled reports whether any vertex carries a label.
func (g *Graph) Labeled() bool {
	for _, v := range g.verts {
		if v != nil && v.Label != NoLabel {
			return true
		}
	}
	return false
}

// FootprintBytes estimates the total in-memory size of the graph.
func (g *Graph) FootprintBytes() int64 {
	var total int64
	for _, v := range g.verts {
		if v != nil {
			total += v.FootprintBytes()
		}
	}
	return total
}

// Validate checks structural invariants on a frozen graph: sorted,
// deduplicated, symmetric adjacency referring only to existing vertices.
func (g *Graph) Validate() error {
	if !g.frozen {
		return fmt.Errorf("graph: not frozen")
	}
	for _, v := range g.verts {
		if v == nil {
			continue
		}
		for j, u := range v.Adj {
			if j > 0 && v.Adj[j-1] >= u {
				return fmt.Errorf("graph: vertex %d adjacency not sorted/unique at %d", v.ID, j)
			}
			if u == v.ID {
				return fmt.Errorf("graph: vertex %d has self loop", v.ID)
			}
			w := g.Vertex(u)
			if w == nil {
				return fmt.Errorf("graph: vertex %d has dangling neighbor %d", v.ID, u)
			}
			if !w.HasNeighbor(v.ID) {
				return fmt.Errorf("graph: edge {%d,%d} not symmetric", v.ID, u)
			}
		}
	}
	return nil
}

// Stats summarizes a graph in the format of Table 2 of the paper.
type Stats struct {
	Name     string
	V        int
	E        int64
	MaxDeg   int
	AvgDeg   float64
	NumAttrs int
}

// ComputeStats returns the Table 2 row for g.
func ComputeStats(name string, g *Graph) Stats {
	return Stats{
		Name:     name,
		V:        g.NumVertices(),
		E:        g.NumEdges(),
		MaxDeg:   g.MaxDegree(),
		AvgDeg:   g.AvgDegree(),
		NumAttrs: g.NumAttrs(),
	}
}

func (s Stats) String() string {
	attrs := "-"
	if s.NumAttrs > 0 {
		attrs = fmt.Sprintf("%d", s.NumAttrs)
	}
	return fmt.Sprintf("%-14s |V|=%-9d |E|=%-10d Max.Deg=%-7d Avg.Deg=%-8.3f |Attr|=%s",
		s.Name, s.V, s.E, s.MaxDeg, s.AvgDeg, attrs)
}
