package graph

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func buildTriangle() *Graph {
	g := New(3)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(1, 3)
	g.Freeze()
	return g
}

func TestAddEdgeSymmetry(t *testing.T) {
	g := buildTriangle()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestSelfLoopsIgnored(t *testing.T) {
	g := New(1)
	g.AddEdge(5, 5)
	g.AddEdge(5, 6)
	g.Freeze()
	if g.Vertex(5).Degree() != 1 {
		t.Fatalf("self loop not ignored: %v", g.Vertex(5).Adj)
	}
}

func TestDuplicateEdgesDeduped(t *testing.T) {
	g := New(2)
	for i := 0; i < 5; i++ {
		g.AddEdge(1, 2)
	}
	g.Freeze()
	if g.NumEdges() != 1 {
		t.Fatalf("got %d edges, want 1", g.NumEdges())
	}
}

func TestFreezeSortsAdjacency(t *testing.T) {
	g := New(4)
	g.AddEdge(1, 9)
	g.AddEdge(1, 3)
	g.AddEdge(1, 7)
	g.Freeze()
	adj := g.Vertex(1).Adj
	for i := 1; i < len(adj); i++ {
		if adj[i-1] >= adj[i] {
			t.Fatalf("adjacency not sorted: %v", adj)
		}
	}
}

func TestMutateAfterFreezePanics(t *testing.T) {
	g := buildTriangle()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on AddVertex after Freeze")
		}
	}()
	g.AddVertex(99)
}

func TestHasNeighbor(t *testing.T) {
	g := buildTriangle()
	v := g.Vertex(1)
	if !v.HasNeighbor(2) || !v.HasNeighbor(3) || v.HasNeighbor(4) {
		t.Fatalf("HasNeighbor wrong: %v", v.Adj)
	}
}

func TestStats(t *testing.T) {
	g := buildTriangle()
	s := ComputeStats("tri", g)
	if s.V != 3 || s.E != 3 || s.MaxDeg != 2 || s.AvgDeg != 2.0 {
		t.Fatalf("bad stats: %+v", s)
	}
	if !strings.Contains(s.String(), "tri") {
		t.Fatalf("stats string: %q", s.String())
	}
}

func TestLabelsAndAttrs(t *testing.T) {
	g := New(2)
	g.SetLabel(1, 4)
	g.SetAttrs(1, []int32{3, 1, 4})
	g.AddEdge(1, 2)
	g.Freeze()
	v := g.Vertex(1)
	if v.Label != 4 || !reflect.DeepEqual(v.Attrs, []int32{3, 1, 4}) {
		t.Fatalf("label/attrs lost: %+v", v)
	}
	if !g.Labeled() || !g.Attributed() || g.NumAttrs() != 5 {
		t.Fatalf("labeled=%v attributed=%v numattrs=%d", g.Labeled(), g.Attributed(), g.NumAttrs())
	}
}

func TestVertexClone(t *testing.T) {
	v := &Vertex{ID: 1, Adj: []VertexID{2, 3}, Label: 7, Attrs: []int32{1}}
	c := v.Clone()
	c.Adj[0] = 99
	c.Attrs[0] = 99
	if v.Adj[0] != 2 || v.Attrs[0] != 1 {
		t.Fatal("clone aliases original storage")
	}
}

func TestTextRoundTripPlain(t *testing.T) {
	g := buildTriangle()
	var buf bytes.Buffer
	if err := WriteText(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, g2)
}

func TestTextRoundTripAttributed(t *testing.T) {
	g := New(3)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.SetLabel(1, 0)
	g.SetLabel(2, 1)
	g.SetLabel(3, 2)
	g.SetAttrs(2, []int32{5, 9})
	g.Freeze()
	var buf bytes.Buffer
	if err := WriteText(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, g2)
	if g2.Vertex(2).Attrs[1] != 9 {
		t.Fatal("attrs lost in round trip")
	}
}

func TestReadTextComments(t *testing.T) {
	in := "# a comment\n1 2 3\n\n2 3\n"
	g, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestReadTextBadInput(t *testing.T) {
	for _, in := range []string{"abc def", "1\tx\t-\t2", "1\t0\tnope\t2"} {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestLoadSaveFile(t *testing.T) {
	g := buildTriangle()
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := SaveFile(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, g2)
}

func assertGraphsEqual(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("size mismatch: V %d/%d E %d/%d",
			a.NumVertices(), b.NumVertices(), a.NumEdges(), b.NumEdges())
	}
	a.ForEach(func(v *Vertex) bool {
		w := b.Vertex(v.ID)
		if w == nil {
			t.Fatalf("vertex %d missing", v.ID)
		}
		if !reflect.DeepEqual(v.Adj, w.Adj) {
			t.Fatalf("vertex %d adjacency mismatch: %v vs %v", v.ID, v.Adj, w.Adj)
		}
		return true
	})
}

// Property: any random graph survives a text round trip unchanged.
func TestQuickTextRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8, m uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New(int(n) + 2)
		for i := 0; i < int(m)+1; i++ {
			u := VertexID(rng.Intn(int(n) + 2))
			w := VertexID(rng.Intn(int(n) + 2))
			g.AddEdge(u, w)
		}
		g.AddVertex(VertexID(int(n) + 5)) // isolated vertex
		g.Freeze()
		var buf bytes.Buffer
		if err := WriteText(&buf, g); err != nil {
			return false
		}
		g2, err := ReadText(&buf)
		if err != nil {
			return false
		}
		if g.NumVertices() != g2.NumVertices() || g.NumEdges() != g2.NumEdges() {
			return false
		}
		ok := true
		g.ForEach(func(v *Vertex) bool {
			w := g2.Vertex(v.ID)
			if w == nil || !reflect.DeepEqual(v.Adj, w.Adj) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Freeze yields a valid graph for arbitrary edge multisets.
func TestQuickValidateAfterFreeze(t *testing.T) {
	f := func(edges []uint16) bool {
		g := New(16)
		for i := 0; i+1 < len(edges); i += 2 {
			g.AddEdge(VertexID(edges[i]%64), VertexID(edges[i+1]%64))
		}
		g.Freeze()
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
