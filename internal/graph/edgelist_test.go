package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := "# SNAP-style comment\n% konect-style comment\n1 2\n2 3\n1 3\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadEdgeListExtraColumns(t *testing.T) {
	// Weighted edge lists carry a third column; it is ignored.
	g, err := ReadEdgeList(strings.NewReader("1 2 0.5\n2 3 1.0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("E=%d", g.NumEdges())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, in := range []string{"1\n", "a b\n", "1 b\n"} {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := New(8)
	g.AddEdge(1, 2)
	g.AddEdge(2, 5)
	g.AddEdge(5, 9)
	g.AddEdge(1, 9)
	g.Freeze()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() || g2.NumVertices() != g.NumVertices() {
		t.Fatalf("round trip: V %d/%d E %d/%d",
			g.NumVertices(), g2.NumVertices(), g.NumEdges(), g2.NumEdges())
	}
	g.ForEach(func(v *Vertex) bool {
		for _, u := range v.Adj {
			if !g2.Vertex(v.ID).HasNeighbor(u) {
				t.Fatalf("edge {%d,%d} lost", v.ID, u)
			}
		}
		return true
	})
}

func TestEdgeListEachEdgeOnce(t *testing.T) {
	g := New(4)
	g.AddEdge(1, 2)
	g.Freeze()
	var buf bytes.Buffer
	_ = WriteEdgeList(&buf, g)
	if got := strings.TrimSpace(buf.String()); got != "1 2" {
		t.Fatalf("got %q", got)
	}
}
