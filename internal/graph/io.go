package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Text formats.
//
// Plain (non-attributed) format, one vertex per line, mirroring the
// adjacency-list files the paper loads from HDFS:
//
//	id  n1 n2 n3 ...
//
// Attributed format (label + attribute vector + neighbors):
//
//	id \t label \t a1,a2,a3 \t n1 n2 n3 ...
//
// Lines starting with '#' are comments. The reader accepts one-sided edge
// lists; Freeze symmetrizes nothing, so WriteText always emits both
// directions and ReadText adds the reverse edge defensively.

// ReadText parses a graph in either text format, auto-detected per line by
// the presence of tabs.
func ReadText(r io.Reader) (*Graph, error) {
	g := New(1024)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Contains(line, "\t") {
			if err := parseAttributedLine(g, line); err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
		} else {
			if err := parsePlainLine(g, line); err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: scan: %w", err)
	}
	g.Freeze()
	return g, nil
}

func parsePlainLine(g *Graph, line string) error {
	fields := strings.Fields(line)
	id, err := parseID(fields[0])
	if err != nil {
		return err
	}
	v := g.AddVertex(id)
	for _, f := range fields[1:] {
		n, err := parseID(f)
		if err != nil {
			return err
		}
		if n == id {
			continue
		}
		v = g.Vertex(id) // AddVertex below may grow the slice
		v.Adj = append(v.Adj, n)
		w := g.AddVertex(n)
		w.Adj = append(w.Adj, id)
	}
	return nil
}

func parseAttributedLine(g *Graph, line string) error {
	parts := strings.Split(line, "\t")
	if len(parts) < 3 {
		return fmt.Errorf("attributed line needs >=3 tab fields, got %d", len(parts))
	}
	id, err := parseID(strings.TrimSpace(parts[0]))
	if err != nil {
		return err
	}
	label64, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 32)
	if err != nil {
		return fmt.Errorf("label: %w", err)
	}
	var attrs []int32
	if s := strings.TrimSpace(parts[2]); s != "" && s != "-" {
		for _, a := range strings.Split(s, ",") {
			x, err := strconv.ParseInt(strings.TrimSpace(a), 10, 32)
			if err != nil {
				return fmt.Errorf("attr: %w", err)
			}
			attrs = append(attrs, int32(x))
		}
	}
	v := g.AddVertex(id)
	v.Label = int32(label64)
	v.Attrs = attrs
	if len(parts) >= 4 {
		for _, f := range strings.Fields(parts[3]) {
			n, err := parseID(f)
			if err != nil {
				return err
			}
			if n == id {
				continue
			}
			v = g.Vertex(id)
			v.Adj = append(v.Adj, n)
			w := g.AddVertex(n)
			w.Adj = append(w.Adj, id)
		}
	}
	return nil
}

func parseID(s string) (VertexID, error) {
	x, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("vertex id %q: %w", s, err)
	}
	return VertexID(x), nil
}

// WriteText writes the graph in the attributed format when it carries
// labels or attributes, otherwise in the plain format.
func WriteText(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	attributed := g.Labeled() || g.Attributed()
	var err error
	g.ForEach(func(v *Vertex) bool {
		if attributed {
			attrs := "-"
			if len(v.Attrs) > 0 {
				parts := make([]string, len(v.Attrs))
				for i, a := range v.Attrs {
					parts[i] = strconv.FormatInt(int64(a), 10)
				}
				attrs = strings.Join(parts, ",")
			}
			if _, err = fmt.Fprintf(bw, "%d\t%d\t%s\t", v.ID, v.Label, attrs); err != nil {
				return false
			}
		} else {
			if _, err = fmt.Fprintf(bw, "%d ", v.ID); err != nil {
				return false
			}
		}
		for i, n := range v.Adj {
			if i > 0 {
				if err = bw.WriteByte(' '); err != nil {
					return false
				}
			}
			if _, err = bw.WriteString(strconv.FormatInt(int64(n), 10)); err != nil {
				return false
			}
		}
		if err = bw.WriteByte('\n'); err != nil {
			return false
		}
		return true
	})
	if err != nil {
		return fmt.Errorf("graph: write: %w", err)
	}
	return bw.Flush()
}

// LoadFile reads a graph from a text file.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	defer f.Close()
	return ReadText(f)
}

// SaveFile writes a graph to a text file.
func SaveFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("graph: %w", err)
	}
	if err := WriteText(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
