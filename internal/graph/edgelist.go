package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// ReadEdgeList parses the SNAP-style edge-list format — one "u v" pair
// per line, '#' comments — which is how most public graph datasets (the
// paper's Skitter, Orkut, Friendster downloads included) are distributed.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	g := New(1024)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: edge list line %d: need two fields, got %q", lineNo, line)
		}
		u, err := parseID(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: edge list line %d: %w", lineNo, err)
		}
		v, err := parseID(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: edge list line %d: %w", lineNo, err)
		}
		g.AddEdge(u, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: scan: %w", err)
	}
	g.Freeze()
	return g, nil
}

// WriteEdgeList writes the graph as an edge list (each undirected edge
// once, smaller endpoint first).
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	var err error
	g.ForEach(func(v *Vertex) bool {
		for _, u := range v.Adj {
			if u > v.ID {
				if _, err = fmt.Fprintf(bw, "%d %d\n", v.ID, u); err != nil {
					return false
				}
			}
		}
		return true
	})
	if err != nil {
		return fmt.Errorf("graph: write edge list: %w", err)
	}
	return bw.Flush()
}

// LoadEdgeListFile reads an edge-list file.
func LoadEdgeListFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	defer f.Close()
	return ReadEdgeList(f)
}
