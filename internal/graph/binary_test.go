package graph

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	g := New(4)
	g.AddEdge(1, 2)
	g.AddEdge(2, 30000)
	g.SetLabel(1, 5)
	g.SetAttrs(2, []int32{7, -3, 9})
	g.AddVertex(99) // isolated
	g.Freeze()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, g2)
	if g2.Vertex(1).Label != 5 || !reflect.DeepEqual(g2.Vertex(2).Attrs, []int32{7, -3, 9}) {
		t.Fatal("labels/attrs lost")
	}
	if !g2.Frozen() {
		t.Fatal("loaded graph not frozen")
	}
}

func TestBinaryRejectsUnfrozen(t *testing.T) {
	g := New(1)
	g.AddEdge(1, 2)
	if err := WriteBinary(&bytes.Buffer{}, g); err == nil {
		t.Fatal("unfrozen graph accepted")
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("NOPE....")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestBinaryTruncated(t *testing.T) {
	g := buildTriangle()
	var buf bytes.Buffer
	_ = WriteBinary(&buf, g)
	full := buf.Bytes()
	for cut := 0; cut < len(full)-1; cut += 3 {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("cut=%d: truncated input accepted", cut)
		}
	}
}

func TestBinaryFile(t *testing.T) {
	g := buildTriangle()
	path := t.TempDir() + "/g.bin"
	if err := SaveBinaryFile(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, g2)
}

func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(edges []uint16, labelSeed uint8) bool {
		g := New(32)
		for i := 0; i+1 < len(edges); i += 2 {
			g.AddEdge(VertexID(edges[i]%64), VertexID(edges[i+1]%64))
		}
		g.ForEach(func(v *Vertex) bool {
			v.Label = int32(labelSeed) % 7
			return true
		})
		g.Freeze()
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			return false
		}
		g2, err := ReadBinary(&buf)
		if err != nil || g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
			return false
		}
		ok := true
		g.ForEach(func(v *Vertex) bool {
			w := g2.Vertex(v.ID)
			if w == nil || !reflect.DeepEqual(v.Adj, w.Adj) || v.Label != w.Label {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
