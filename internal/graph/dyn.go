package graph

import "sort"

// Live mutation of a frozen graph.
//
// The Dyn* methods mutate a frozen graph in place while preserving every
// Freeze/Validate invariant op by op: adjacency stays sorted, deduplicated,
// symmetric and self-loop free. They exist for the dynamic-graph subsystem
// (internal/dyngraph), which serializes them against running jobs at the
// Session layer; the methods themselves are not concurrency safe.
//
// Vertex deletion tombstones the slot (verts[i] = nil) so that positions of
// surviving vertices — and therefore insertion order, annotation assignment
// and graph fingerprints — are untouched until DynCompact reclaims the
// slots once per mutation batch.

// adjInsert inserts id into a sorted adjacency list, reporting whether it
// was absent.
func adjInsert(adj []VertexID, id VertexID) ([]VertexID, bool) {
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= id })
	if i < len(adj) && adj[i] == id {
		return adj, false
	}
	adj = append(adj, 0)
	copy(adj[i+1:], adj[i:])
	adj[i] = id
	return adj, true
}

// adjRemove removes id from a sorted adjacency list, reporting whether it
// was present.
func adjRemove(adj []VertexID, id VertexID) ([]VertexID, bool) {
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= id })
	if i >= len(adj) || adj[i] != id {
		return adj, false
	}
	return append(adj[:i], adj[i+1:]...), true
}

func (g *Graph) requireFrozen(op string) {
	if !g.frozen {
		panic("graph: " + op + " on unfrozen graph (use AddVertex/AddEdge before Freeze)")
	}
}

// DynAddVertex inserts an isolated vertex with the given label and
// attributes into a frozen graph. It reports whether the vertex was absent;
// an existing vertex is left untouched (annotations are never rewritten by
// the mutation path — they are fixed at creation, like Prepare fixes them
// at load).
func (g *Graph) DynAddVertex(id VertexID, label int32, attrs []int32) bool {
	g.requireFrozen("DynAddVertex")
	if _, ok := g.index[id]; ok {
		return false
	}
	v := &Vertex{ID: id, Label: label}
	if len(attrs) > 0 {
		v.Attrs = append([]int32(nil), attrs...)
	}
	g.index[id] = len(g.verts)
	g.verts = append(g.verts, v)
	return true
}

// DynDelVertex removes vertex id and every edge incident to it, returning
// the former neighbor list (callers maintaining edge aggregates need it).
// The slot is tombstoned until DynCompact. Returns (nil, false) if the
// vertex does not exist.
func (g *Graph) DynDelVertex(id VertexID) ([]VertexID, bool) {
	g.requireFrozen("DynDelVertex")
	i, ok := g.index[id]
	if !ok {
		return nil, false
	}
	v := g.verts[i]
	removed := append([]VertexID(nil), v.Adj...)
	for _, nb := range removed {
		w := g.Vertex(nb)
		w.Adj, _ = adjRemove(w.Adj, id)
	}
	delete(g.index, id)
	g.verts[i] = nil
	g.dead++
	return removed, true
}

// DynAddEdge inserts the undirected edge {u, w} between two existing
// vertices of a frozen graph, reporting whether it was absent. Self-loops
// and edges with a missing endpoint are rejected (no-op, false).
func (g *Graph) DynAddEdge(u, w VertexID) bool {
	g.requireFrozen("DynAddEdge")
	if u == w {
		return false
	}
	vu, vw := g.Vertex(u), g.Vertex(w)
	if vu == nil || vw == nil {
		return false
	}
	var added bool
	if vu.Adj, added = adjInsert(vu.Adj, w); !added {
		return false
	}
	vw.Adj, _ = adjInsert(vw.Adj, u)
	return true
}

// DynDelEdge removes the undirected edge {u, w} from a frozen graph,
// reporting whether it was present.
func (g *Graph) DynDelEdge(u, w VertexID) bool {
	g.requireFrozen("DynDelEdge")
	vu, vw := g.Vertex(u), g.Vertex(w)
	if vu == nil || vw == nil {
		return false
	}
	var removed bool
	if vu.Adj, removed = adjRemove(vu.Adj, w); !removed {
		return false
	}
	vw.Adj, _ = adjRemove(vw.Adj, u)
	return true
}

// DynCompact reclaims tombstoned slots left by DynDelVertex, preserving the
// insertion order of surviving vertices. Cheap no-op when nothing is dead.
func (g *Graph) DynCompact() {
	if g.dead == 0 {
		return
	}
	out := g.verts[:0]
	for _, v := range g.verts {
		if v == nil {
			continue
		}
		g.index[v.ID] = len(out)
		out = append(out, v)
	}
	for i := len(out); i < len(g.verts); i++ {
		g.verts[i] = nil
	}
	g.verts = out
	g.dead = 0
}
