package wire

import (
	"bytes"
	"runtime"
	"testing"
)

// writeAll exercises every Writer field type in a fixed order driven by
// the given values, so a fresh writer and a reused writer can be compared
// byte for byte.
func writeAll(w *Writer, ints []int64, blob []byte, s string) {
	w.Uvarint(uint64(len(ints)))
	for _, x := range ints {
		w.Varint(x)
	}
	w.Int(len(blob))
	w.Bool(len(ints)%2 == 0)
	w.Byte(0xAB)
	w.Float64(float64(len(s)) * 1.5)
	w.BytesField(blob)
	w.String(s)
	w.Int64Slice(ints)
	xs32 := make([]int32, len(ints))
	for i, x := range ints {
		xs32[i] = int32(x)
	}
	w.Int32Slice(xs32)
}

// readAll decodes what writeAll wrote and reports whether every field
// round-tripped; used by the fuzz target to prove a reused buffer decodes
// identically to a fresh one.
func readAll(t *testing.T, buf []byte, ints []int64, blob []byte, s string) {
	t.Helper()
	r := NewReader(buf)
	if got := r.Uvarint(); got != uint64(len(ints)) {
		t.Fatalf("count: got %d want %d", got, len(ints))
	}
	for i, want := range ints {
		if got := r.Varint(); got != want {
			t.Fatalf("varint %d: got %d want %d", i, got, want)
		}
	}
	if got := r.Int(); got != len(blob) {
		t.Fatalf("int: got %d want %d", got, len(blob))
	}
	if got := r.Bool(); got != (len(ints)%2 == 0) {
		t.Fatalf("bool mismatch")
	}
	if got := r.Byte(); got != 0xAB {
		t.Fatalf("byte: got %x", got)
	}
	if got := r.Float64(); got != float64(len(s))*1.5 {
		t.Fatalf("float64: got %v", got)
	}
	if got := r.BytesField(); !bytes.Equal(got, blob) {
		t.Fatalf("bytes field mismatch")
	}
	if got := r.String(); got != s {
		t.Fatalf("string: got %q want %q", got, s)
	}
	got64 := r.Int64Slice()
	if len(got64) != len(ints) {
		t.Fatalf("int64 slice len: got %d want %d", len(got64), len(ints))
	}
	for i := range ints {
		if got64[i] != ints[i] {
			t.Fatalf("int64 slice %d: got %d want %d", i, got64[i], ints[i])
		}
	}
	got32 := r.Int32Slice()
	for i := range ints {
		if got32[i] != int32(ints[i]) {
			t.Fatalf("int32 slice %d: got %d want %d", i, got32[i], ints[i])
		}
	}
	if r.Err() != nil {
		t.Fatalf("decode error: %v", r.Err())
	}
}

// TestWriterReuseMatchesFresh: a writer that went through garbage writes,
// Reset, and a pool round-trip must encode exactly like a fresh one.
func TestWriterReuseMatchesFresh(t *testing.T) {
	ints := []int64{0, 1, -1, 1 << 40, -(1 << 40), 63, -64}
	blob := []byte{0, 255, 1, 2, 3}
	const s = "pooled"

	fresh := NewWriter(16)
	writeAll(fresh, ints, blob, s)

	reused := GetWriter(8)
	reused.String("garbage that must vanish on reset")
	reused.Reset()
	writeAll(reused, ints, blob, s)
	if !bytes.Equal(fresh.Bytes(), reused.Bytes()) {
		t.Fatalf("reset-reused writer differs from fresh:\n%x\n%x", fresh.Bytes(), reused.Bytes())
	}
	PutWriter(reused)

	again := GetWriter(8)
	writeAll(again, ints, blob, s)
	if !bytes.Equal(fresh.Bytes(), again.Bytes()) {
		t.Fatalf("pool round-tripped writer differs from fresh:\n%x\n%x", fresh.Bytes(), again.Bytes())
	}
	readAll(t, again.Bytes(), ints, blob, s)
	PutWriter(again)
}

// TestGetWriterCapacityAndEmptiness: pooled writers always come back
// empty with at least the requested capacity.
func TestGetWriterCapacityAndEmptiness(t *testing.T) {
	w := GetWriter(4096)
	if w.Len() != 0 {
		t.Fatalf("pooled writer not empty: %d bytes", w.Len())
	}
	w.Uvarint(1 << 62)
	PutWriter(w)
	for i := 0; i < 4; i++ {
		w2 := GetWriter(64)
		if w2.Len() != 0 {
			t.Fatalf("pooled writer carried %d stale bytes", w2.Len())
		}
		PutWriter(w2)
	}
}

// TestLeakedWriterIsSafe: a writer that is never Put back must not
// corrupt the pool or later writers — it is simply garbage.
func TestLeakedWriterIsSafe(t *testing.T) {
	leaked := GetWriter(128)
	leaked.String("held hostage")
	snapshot := append([]byte(nil), leaked.Bytes()...)

	for i := 0; i < 100; i++ {
		w := GetWriter(128)
		w.Uvarint(uint64(i))
		PutWriter(w)
	}
	runtime.GC()

	// The leaked writer's bytes are still intact and usable.
	if !bytes.Equal(leaked.Bytes(), snapshot) {
		t.Fatal("leaked writer's buffer was clobbered by pool reuse")
	}
	leaked.Uvarint(7) // still writable
	if leaked.Len() != len(snapshot)+1 {
		t.Fatalf("leaked writer append broken: len=%d", leaked.Len())
	}
}

// TestPutWriterDropsOversizedBuffers: giant buffers are not retained.
func TestPutWriterDropsOversizedBuffers(t *testing.T) {
	w := GetWriter(maxPooledCapacity + 1)
	PutWriter(w) // must not panic; buffer is left to the GC
	PutWriter(nil)
}

// FuzzWriterReuse: for arbitrary field values, encoding with a reused
// (Reset + pool round-tripped) writer must match a fresh writer byte for
// byte, and the encoding must decode back to the same values.
func FuzzWriterReuse(f *testing.F) {
	f.Add(int64(0), int64(-1), []byte{}, "")
	f.Add(int64(1<<40), int64(-(1 << 62)), []byte{0, 1, 255}, "seed")
	f.Add(int64(63), int64(-64), bytes.Repeat([]byte{0xAA}, 300), "長い文字列")
	f.Fuzz(func(t *testing.T, a, b int64, blob []byte, s string) {
		ints := []int64{a, b, a + b, a - b}
		fresh := NewWriter(16)
		writeAll(fresh, ints, blob, s)

		reused := GetWriter(1)
		reused.Int64Slice(ints) // garbage
		reused.Reset()
		writeAll(reused, ints, blob, s)
		if !bytes.Equal(fresh.Bytes(), reused.Bytes()) {
			t.Fatalf("reused writer encoding diverged")
		}
		readAll(t, reused.Bytes(), ints, blob, s)
		PutWriter(reused)

		roundTripped := GetWriter(1)
		writeAll(roundTripped, ints, blob, s)
		if !bytes.Equal(fresh.Bytes(), roundTripped.Bytes()) {
			t.Fatalf("pool round-tripped writer encoding diverged")
		}
		readAll(t, roundTripped.Bytes(), ints, blob, s)
		PutWriter(roundTripped)
	})
}
