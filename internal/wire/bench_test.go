package wire

import (
	"testing"

	"gminer/internal/graph"
)

func benchVertex(deg int) *graph.Vertex {
	v := &graph.Vertex{ID: 123456, Label: 3, Attrs: []int32{1, 2, 3, 4, 5}}
	for i := 0; i < deg; i++ {
		v.Adj = append(v.Adj, graph.VertexID(1000+i*3))
	}
	return v
}

func BenchmarkEncodeVertexDeg32(b *testing.B) {
	v := benchVertex(32)
	w := NewWriter(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Reset()
		EncodeVertex(w, v)
	}
	b.SetBytes(int64(w.Len()))
}

func BenchmarkDecodeVertexDeg32(b *testing.B) {
	v := benchVertex(32)
	w := NewWriter(512)
	EncodeVertex(w, v)
	buf := w.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if DecodeVertex(NewReader(buf)) == nil {
			b.Fatal("decode failed")
		}
	}
	b.SetBytes(int64(len(buf)))
}

func BenchmarkEncodeIDs(b *testing.B) {
	ids := make([]graph.VertexID, 256)
	for i := range ids {
		ids[i] = graph.VertexID(i * 17)
	}
	w := NewWriter(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Reset()
		EncodeIDs(w, ids)
	}
}
