package wire

import (
	"gminer/internal/graph"
)

// EncodeVertex appends a vertex (id, label, attrs, adjacency) to w. This is
// the payload of a pull response: the paper pulls "v with the associated
// data (e.g., Γ(v), a(v))" from remote machines (§4.2).
func EncodeVertex(w *Writer, v *graph.Vertex) {
	w.Varint(int64(v.ID))
	w.Varint(int64(v.Label))
	w.Int32Slice(v.Attrs)
	EncodeIDs(w, v.Adj)
}

// DecodeVertex reads a vertex encoded by EncodeVertex.
func DecodeVertex(r *Reader) *graph.Vertex {
	v := &graph.Vertex{
		ID:    graph.VertexID(r.Varint()),
		Label: int32(r.Varint()),
	}
	v.Attrs = r.Int32Slice()
	if adj := DecodeIDs(r); len(adj) > 0 {
		v.Adj = adj
	}
	if r.Err() != nil {
		return nil
	}
	return v
}

// EncodeIDs appends a slice of vertex IDs, delta varints with the exact
// byte format of Writer.Int64Slice but without the temporary []int64 the
// conversion used to allocate per message — this runs once per pull
// request, task-batch member and pull-response adjacency list.
func EncodeIDs(w *Writer, ids []graph.VertexID) {
	w.Uvarint(uint64(len(ids)))
	var prev int64
	for _, id := range ids {
		w.Varint(int64(id) - prev)
		prev = int64(id)
	}
}

// DecodeIDs reads a slice written by EncodeIDs.
func DecodeIDs(r *Reader) []graph.VertexID {
	n := r.Uvarint()
	if r.Err() != nil {
		return nil
	}
	if n > uint64(r.Remaining()) { // each element needs >=1 byte
		r.fail()
		return nil
	}
	ids := make([]graph.VertexID, n)
	var prev int64
	for i := range ids {
		prev += r.Varint()
		ids[i] = graph.VertexID(prev)
	}
	if r.Err() != nil {
		return nil
	}
	return ids
}
