package wire

import (
	"gminer/internal/graph"
)

// EncodeVertex appends a vertex (id, label, attrs, adjacency) to w. This is
// the payload of a pull response: the paper pulls "v with the associated
// data (e.g., Γ(v), a(v))" from remote machines (§4.2).
func EncodeVertex(w *Writer, v *graph.Vertex) {
	w.Varint(int64(v.ID))
	w.Varint(int64(v.Label))
	w.Int32Slice(v.Attrs)
	adj := make([]int64, len(v.Adj))
	for i, n := range v.Adj {
		adj[i] = int64(n)
	}
	w.Int64Slice(adj)
}

// DecodeVertex reads a vertex encoded by EncodeVertex.
func DecodeVertex(r *Reader) *graph.Vertex {
	v := &graph.Vertex{
		ID:    graph.VertexID(r.Varint()),
		Label: int32(r.Varint()),
	}
	v.Attrs = r.Int32Slice()
	adj := r.Int64Slice()
	if len(adj) > 0 {
		v.Adj = make([]graph.VertexID, len(adj))
		for i, n := range adj {
			v.Adj[i] = graph.VertexID(n)
		}
	}
	if r.Err() != nil {
		return nil
	}
	return v
}

// EncodeIDs appends a slice of vertex IDs (delta varints).
func EncodeIDs(w *Writer, ids []graph.VertexID) {
	xs := make([]int64, len(ids))
	for i, id := range ids {
		xs[i] = int64(id)
	}
	w.Int64Slice(xs)
}

// DecodeIDs reads a slice written by EncodeIDs.
func DecodeIDs(r *Reader) []graph.VertexID {
	xs := r.Int64Slice()
	if xs == nil {
		return nil
	}
	ids := make([]graph.VertexID, len(xs))
	for i, x := range xs {
		ids[i] = graph.VertexID(x)
	}
	return ids
}
