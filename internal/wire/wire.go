// Package wire provides the compact binary encoding used for everything
// that crosses the (possibly simulated) network or is spilled to disk:
// pulled vertices, migrated tasks, progress reports, aggregator values and
// checkpoints. Keeping one codec makes the byte counts reported in the
// evaluation (Tables 1 and 4, Figure 11) meaningful even on the in-process
// transport.
//
// The format is a simple length-delimited varint encoding, little
// machinery on purpose: unsigned varints (LEB128), zigzag for signed,
// length-prefixed byte strings.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
)

// ErrCorrupt is returned when decoding runs off the end of the buffer or
// meets malformed data.
var ErrCorrupt = errors.New("wire: corrupt data")

// Writer appends encoded values to an internal buffer.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer with the given capacity hint.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// writerPool recycles encode buffers for the hot send paths (pull
// responses, pull requests, task batches, spill blocks): a steady-state
// worker encodes thousands of messages per second, and without pooling
// each one re-grows a buffer from its capacity hint.
var writerPool = sync.Pool{New: func() any { return &Writer{} }}

// maxPooledCapacity bounds the buffers the pool retains. One giant
// migration batch must not pin megabytes for the rest of the job; larger
// buffers are left to the garbage collector on PutWriter.
const maxPooledCapacity = 1 << 20

// GetWriter returns an empty pooled writer with at least the given
// capacity. Return it with PutWriter when the encoded bytes have been
// consumed (transports copy payloads during Send, so putting the writer
// back right after Send is safe). A writer that is never put back is
// simply collected as garbage — leaking one is safe, reusing its Bytes
// after PutWriter is not.
func GetWriter(capacity int) *Writer {
	w := writerPool.Get().(*Writer)
	if cap(w.buf) < capacity {
		w.buf = make([]byte, 0, capacity)
	} else {
		w.buf = w.buf[:0]
	}
	return w
}

// PutWriter resets w and returns it to the pool. The caller must not use
// w or any slice obtained from w.Bytes() afterwards.
func PutWriter(w *Writer) {
	if w == nil || cap(w.buf) > maxPooledCapacity {
		return
	}
	w.buf = w.buf[:0]
	writerPool.Put(w)
}

// Bytes returns the encoded buffer. The slice aliases internal storage.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of encoded bytes.
func (w *Writer) Len() int { return len(w.buf) }

// Reset clears the buffer for reuse.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(x uint64) {
	w.buf = binary.AppendUvarint(w.buf, x)
}

// Varint appends a zigzag-encoded signed varint.
func (w *Writer) Varint(x int64) {
	w.buf = binary.AppendVarint(w.buf, x)
}

// Int appends an int as a signed varint.
func (w *Writer) Int(x int) { w.Varint(int64(x)) }

// Bool appends a boolean byte.
func (w *Writer) Bool(b bool) {
	if b {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// Byte appends a raw byte.
func (w *Writer) Byte(b byte) { w.buf = append(w.buf, b) }

// Float64 appends an IEEE-754 float64.
func (w *Writer) Float64(f float64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(f))
	w.buf = append(w.buf, tmp[:]...)
}

// Bytes appends a length-prefixed byte string.
func (w *Writer) BytesField(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Int64Slice appends a length-prefixed slice of signed varints,
// delta-encoded when sorted-ish data is common (adjacency lists), plain
// otherwise. We always delta-encode: decoding reverses it, and for sorted
// ID lists this roughly halves the bytes.
func (w *Writer) Int64Slice(xs []int64) {
	w.Uvarint(uint64(len(xs)))
	var prev int64
	for _, x := range xs {
		w.Varint(x - prev)
		prev = x
	}
}

// Int32Slice appends a length-prefixed slice of int32 varints.
func (w *Writer) Int32Slice(xs []int32) {
	w.Uvarint(uint64(len(xs)))
	for _, x := range xs {
		w.Varint(int64(x))
	}
}

// Reader decodes values appended by Writer. Decoding methods set an error
// state on malformed input; check Err (or use the error-returning
// variants) after a decode batch.
type Reader struct {
	buf []byte
	pos int
	err error
}

// NewReader returns a reader over buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.pos }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("%w at offset %d", ErrCorrupt, r.pos)
	}
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	x, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.pos += n
	return x
}

// Varint reads a signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	x, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.pos += n
	return x
}

// Int reads an int.
func (r *Reader) Int() int { return int(r.Varint()) }

// Bool reads a boolean byte.
func (r *Reader) Bool() bool { return r.Byte() != 0 }

// Byte reads one raw byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.buf) {
		r.fail()
		return 0
	}
	b := r.buf[r.pos]
	r.pos++
	return b
}

// Float64 reads an IEEE-754 float64.
func (r *Reader) Float64() float64 {
	if r.err != nil {
		return 0
	}
	if r.pos+8 > len(r.buf) {
		r.fail()
		return 0
	}
	f := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.pos:]))
	r.pos += 8
	return f
}

// BytesField reads a length-prefixed byte string (copied).
func (r *Reader) BytesField() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if uint64(r.Remaining()) < n {
		r.fail()
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[r.pos:r.pos+int(n)])
	r.pos += int(n)
	return out
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	return string(r.BytesField())
}

// Count reads a length prefix for a sequence whose elements each occupy
// at least elemSize encoded bytes and validates it against the bytes
// actually remaining. Decoders size allocations with it so malformed
// (e.g. fuzzed) input cannot demand arbitrarily large buffers.
func (r *Reader) Count(elemSize int) int {
	n := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if elemSize < 1 {
		elemSize = 1
	}
	if n > uint64(r.Remaining()/elemSize) {
		r.fail()
		return 0
	}
	return int(n)
}

// Int64Slice reads a delta-encoded slice written by Writer.Int64Slice.
func (r *Reader) Int64Slice() []int64 {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.Remaining()) { // each element needs >=1 byte
		r.fail()
		return nil
	}
	out := make([]int64, n)
	var prev int64
	for i := range out {
		prev += r.Varint()
		out[i] = prev
	}
	if r.err != nil {
		return nil
	}
	return out
}

// Int32Slice reads a slice written by Writer.Int32Slice.
func (r *Reader) Int32Slice() []int32 {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.Remaining()) {
		r.fail()
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(r.Varint())
	}
	if r.err != nil {
		return nil
	}
	return out
}
