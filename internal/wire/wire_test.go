package wire

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"gminer/internal/graph"
)

func TestScalarRoundTrip(t *testing.T) {
	w := NewWriter(64)
	w.Uvarint(0)
	w.Uvarint(math.MaxUint64)
	w.Varint(-1)
	w.Varint(math.MinInt64)
	w.Int(42)
	w.Bool(true)
	w.Bool(false)
	w.Byte(0xAB)
	w.Float64(3.14159)
	w.String("hello")
	w.BytesField([]byte{1, 2, 3})

	r := NewReader(w.Bytes())
	if r.Uvarint() != 0 || r.Uvarint() != math.MaxUint64 {
		t.Fatal("uvarint")
	}
	if r.Varint() != -1 || r.Varint() != math.MinInt64 {
		t.Fatal("varint")
	}
	if r.Int() != 42 || !r.Bool() || r.Bool() || r.Byte() != 0xAB {
		t.Fatal("int/bool/byte")
	}
	if r.Float64() != 3.14159 {
		t.Fatal("float64")
	}
	if r.String() != "hello" {
		t.Fatal("string")
	}
	if !reflect.DeepEqual(r.BytesField(), []byte{1, 2, 3}) {
		t.Fatal("bytes")
	}
	if r.Err() != nil || r.Remaining() != 0 {
		t.Fatalf("err=%v remaining=%d", r.Err(), r.Remaining())
	}
}

func TestSliceRoundTrip(t *testing.T) {
	w := NewWriter(64)
	xs := []int64{5, -3, 5, 100, math.MaxInt64, math.MinInt64}
	w.Int64Slice(xs)
	ys := []int32{-1, 0, 1, math.MaxInt32}
	w.Int32Slice(ys)
	r := NewReader(w.Bytes())
	if got := r.Int64Slice(); !reflect.DeepEqual(got, xs) {
		t.Fatalf("int64: %v", got)
	}
	if got := r.Int32Slice(); !reflect.DeepEqual(got, ys) {
		t.Fatalf("int32: %v", got)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestEmptySlices(t *testing.T) {
	w := NewWriter(8)
	w.Int64Slice(nil)
	w.Int32Slice(nil)
	r := NewReader(w.Bytes())
	if got := r.Int64Slice(); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
	if got := r.Int32Slice(); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestCorruptInput(t *testing.T) {
	// Truncated buffers must produce ErrCorrupt, never panic.
	w := NewWriter(64)
	w.String("a long enough string")
	w.Int64Slice([]int64{1, 2, 3})
	full := w.Bytes()
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		_ = r.String()
		_ = r.Int64Slice()
		_ = r.Float64()
		if r.Err() == nil {
			t.Fatalf("cut=%d: expected error", cut)
		}
	}
}

func TestSliceLengthBomb(t *testing.T) {
	// A huge declared length with a tiny buffer must fail, not allocate.
	w := NewWriter(16)
	w.Uvarint(1 << 40)
	r := NewReader(w.Bytes())
	if r.Int64Slice() != nil || r.Err() == nil {
		t.Fatal("length bomb not rejected")
	}
	r2 := NewReader(w.Bytes())
	if r2.BytesField() != nil || r2.Err() == nil {
		t.Fatal("bytes length bomb not rejected")
	}
}

func TestVertexRoundTrip(t *testing.T) {
	v := &graph.Vertex{
		ID:    12345,
		Label: 6,
		Attrs: []int32{1, 5, 9},
		Adj:   []graph.VertexID{1, 2, 99, 12344},
	}
	w := NewWriter(64)
	EncodeVertex(w, v)
	got := DecodeVertex(NewReader(w.Bytes()))
	if got == nil || !reflect.DeepEqual(got, v) {
		t.Fatalf("got %+v want %+v", got, v)
	}
}

func TestVertexNoAttrs(t *testing.T) {
	v := &graph.Vertex{ID: 7, Label: graph.NoLabel}
	w := NewWriter(16)
	EncodeVertex(w, v)
	got := DecodeVertex(NewReader(w.Bytes()))
	if got.ID != 7 || got.Label != graph.NoLabel || len(got.Adj) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestQuickScalars(t *testing.T) {
	f := func(u uint64, i int64, f64 float64, s string, b []byte) bool {
		w := NewWriter(32)
		w.Uvarint(u)
		w.Varint(i)
		w.Float64(f64)
		w.String(s)
		w.BytesField(b)
		r := NewReader(w.Bytes())
		gu := r.Uvarint()
		gi := r.Varint()
		gf := r.Float64()
		gs := r.String()
		gb := r.BytesField()
		if r.Err() != nil {
			return false
		}
		sameF := gf == f64 || (math.IsNaN(gf) && math.IsNaN(f64))
		return gu == u && gi == i && sameF && gs == s &&
			(len(gb) == 0 && len(b) == 0 || reflect.DeepEqual(gb, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIDSlices(t *testing.T) {
	f := func(raw []int64) bool {
		ids := make([]graph.VertexID, len(raw))
		for i, x := range raw {
			ids[i] = graph.VertexID(x)
		}
		w := NewWriter(32)
		EncodeIDs(w, ids)
		got := DecodeIDs(NewReader(w.Bytes()))
		if len(ids) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, ids)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
