package wire

import (
	"testing"

	"gminer/internal/graph"
)

// FuzzDecodeVertex throws arbitrary bytes at the pull-response vertex
// decoder: it must either return a vertex or set the reader's error, and
// never allocate storage for more elements than the payload can encode.
func FuzzDecodeVertex(f *testing.F) {
	w := NewWriter(64)
	EncodeVertex(w, &graph.Vertex{ID: 5, Label: 2, Attrs: []int32{1, 2}, Adj: []graph.VertexID{7, 9}})
	f.Add(w.Bytes())
	f.Add([]byte{5, 0, 0xff, 0xff, 0xff, 0xff, 0x0f}) // huge attr count
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		v := DecodeVertex(r)
		if v == nil && r.Err() == nil {
			t.Fatal("nil vertex without reader error")
		}
		if v != nil && r.Err() != nil {
			t.Fatal("vertex returned despite reader error")
		}
	})
}

func FuzzDecodeIDs(f *testing.F) {
	w := NewWriter(32)
	EncodeIDs(w, []graph.VertexID{3, 1, 4, 1, 5})
	f.Add(w.Bytes())
	f.Add([]byte{0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		ids := DecodeIDs(r)
		if r.Err() == nil && len(data) > 0 && ids == nil && data[0] != 0 {
			// nil is only valid for an empty list or an error.
			if n := NewReader(data).Uvarint(); n != 0 {
				t.Fatalf("lost %d ids without error", n)
			}
		}
	})
}
