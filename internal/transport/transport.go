// Package transport carries messages between the master and the workers.
//
// Two implementations are provided: an in-process network (the default)
// whose per-message byte accounting and optional latency/bandwidth model
// stand in for the paper's Gigabit Ethernet, and a real TCP loopback
// transport (tcp.go) demonstrating that the engine runs over sockets.
// Every payload byte is charged to the sender's metrics counters, which is
// what the "Net. (GB)" columns of Tables 1 and 4 report.
package transport

import (
	"sync"
	"time"
)

// Message is one network message. Type values are defined by the cluster
// protocol (internal/cluster); the transport treats them as opaque.
type Message struct {
	From    int
	To      int
	Type    uint8
	Payload []byte
}

// headerBytes approximates per-message framing overhead for accounting.
const headerBytes = 16

// Endpoint is one node's connection to the network.
type Endpoint interface {
	// Send delivers a message asynchronously. It never blocks on the
	// receiver (inboxes are unbounded), so the cluster protocol cannot
	// deadlock on transport backpressure.
	Send(to int, typ uint8, payload []byte) error
	// Recv blocks for the next message; ok=false after Close.
	Recv() (Message, bool)
	// RecvTimeout waits up to d; ok=false on timeout or close.
	RecvTimeout(d time.Duration) (Message, bool)
	// Node returns this endpoint's node index.
	Node() int
	// Close shuts the endpoint; pending and future Recv calls return false.
	Close() error
}

// mailbox is an unbounded FIFO with optional not-before delivery times
// (latency simulation).
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []timedMessage
	closed bool
}

type timedMessage struct {
	m       Message
	readyAt time.Time
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) push(m Message, readyAt time.Time) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return
	}
	mb.queue = append(mb.queue, timedMessage{m: m, readyAt: readyAt})
	mb.cond.Broadcast()
}

// pop blocks until a message is deliverable or the box closes. deadline
// zero means wait forever.
func (mb *mailbox) pop(deadline time.Time) (Message, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		if len(mb.queue) > 0 {
			head := mb.queue[0]
			wait := time.Until(head.readyAt)
			if wait <= 0 {
				mb.queue = mb.queue[1:]
				return head.m, true
			}
			// Latency simulation: sleep outside the lock until the head
			// message becomes deliverable, then retry.
			mb.mu.Unlock()
			if !deadline.IsZero() && time.Until(deadline) < wait {
				time.Sleep(time.Until(deadline))
				mb.mu.Lock()
				if len(mb.queue) > 0 && time.Now().After(mb.queue[0].readyAt) {
					continue
				}
				return Message{}, false
			}
			time.Sleep(wait)
			mb.mu.Lock()
			continue
		}
		if mb.closed {
			return Message{}, false
		}
		if !deadline.IsZero() {
			if !time.Now().Before(deadline) {
				return Message{}, false
			}
			// Condition variables have no timed wait; poll with a short
			// sleep. Timeouts are only used on control paths, so the poll
			// cost is irrelevant.
			mb.mu.Unlock()
			time.Sleep(200 * time.Microsecond)
			mb.mu.Lock()
			continue
		}
		mb.cond.Wait()
	}
}

func (mb *mailbox) close() {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.closed = true
	mb.queue = nil
	mb.cond.Broadcast()
}
