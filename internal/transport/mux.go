package transport

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gminer/internal/metrics"
	"gminer/internal/trace"
)

// Mux multiplexes many logical jobs over one resident node set. Every node
// of the underlying network gets one demux goroutine; each job ("channel")
// gets a full set of virtual endpoints whose messages carry a channel-ID
// envelope (one uvarint prepended to the payload), so concurrent jobs share
// the warm transport without ever seeing each other's traffic.
//
// Messages for a channel that is not open — a job that finished, was
// cancelled, or never existed — are counted and dropped. That is exactly
// the stale-mailbox semantics a job-serving daemon needs: tearing a job
// down cannot strand undeliverable messages in a live mailbox, and a
// late-arriving response cannot leak into the next job's pipeline.
type Mux struct {
	under []Endpoint

	mu       sync.Mutex
	channels map[uint64]*muxChannel
	closed   bool

	wg      sync.WaitGroup
	dropped atomic.Int64
}

// muxChannel is one job's view of the network: a mailbox per node.
type muxChannel struct {
	boxes []*mailbox
}

// NewMux wraps the underlying endpoints (one per node, workers + master)
// and starts one demux goroutine per node. In a multi-process cluster
// each process's mux holds only its OWN node's underlying endpoint; the
// other entries are nil — no demux is spawned for them and sending
// through their virtual endpoints errors.
func NewMux(under []Endpoint) *Mux {
	m := NewMuxPaused(under)
	m.StartDemux()
	return m
}

// NewMuxPaused builds the mux without starting its demux goroutines; call
// StartDemux once the initial channels are open. A process joining a
// cluster mid-job needs this: control messages may already be queued in
// the underlying mailbox, and a demux racing the control channel's Open
// would drop them as unknown-channel traffic.
func NewMuxPaused(under []Endpoint) *Mux {
	return &Mux{under: under, channels: make(map[uint64]*muxChannel)}
}

// StartDemux launches one demux goroutine per non-nil underlying endpoint.
// Call exactly once on a paused mux.
func (m *Mux) StartDemux() {
	for node, ep := range m.under {
		if ep == nil {
			continue
		}
		m.wg.Add(1)
		go m.demux(node, ep)
	}
}

// demux routes one node's incoming messages to the owning channel's
// mailbox for that node.
func (m *Mux) demux(node int, ep Endpoint) {
	defer m.wg.Done()
	for {
		msg, ok := ep.Recv()
		if !ok {
			return
		}
		ch, n := binary.Uvarint(msg.Payload)
		if n <= 0 {
			m.dropped.Add(1)
			continue
		}
		msg.Payload = msg.Payload[n:]
		m.mu.Lock()
		c := m.channels[ch]
		m.mu.Unlock()
		if c == nil {
			m.dropped.Add(1)
			continue
		}
		c.boxes[node].push(msg, time.Now())
	}
}

// Open registers channel ch and returns one virtual endpoint per node.
// counters, if non-nil, holds one metrics sink per node: sends through a
// virtual endpoint are charged there (the underlying network should then be
// built without counters, or bytes would be double-counted). tracer, if
// non-nil, records per-job EvNetSend events.
func (m *Mux) Open(ch uint64, counters []*metrics.Counters, tracer *trace.Tracer) ([]Endpoint, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, fmt.Errorf("transport: mux closed")
	}
	if _, dup := m.channels[ch]; dup {
		return nil, fmt.Errorf("transport: mux channel %d already open", ch)
	}
	c := &muxChannel{boxes: make([]*mailbox, len(m.under))}
	for i := range c.boxes {
		c.boxes[i] = newMailbox()
	}
	m.channels[ch] = c
	eps := make([]Endpoint, len(m.under))
	for i := range eps {
		e := &muxEndpoint{mux: m, ch: ch, node: i, box: c.boxes[i], tracer: tracer}
		if counters != nil && i < len(counters) {
			e.counters = counters[i]
		}
		eps[i] = e
	}
	return eps, nil
}

// CloseChannel unregisters ch and closes its mailboxes: blocked receivers
// unblock with ok=false and later arrivals for the channel are dropped.
func (m *Mux) CloseChannel(ch uint64) {
	m.mu.Lock()
	c := m.channels[ch]
	delete(m.channels, ch)
	m.mu.Unlock()
	if c == nil {
		return
	}
	for _, b := range c.boxes {
		b.close()
	}
}

// Close shuts every channel down. The underlying network must be closed by
// its owner afterwards (that is what unblocks the demux goroutines).
func (m *Mux) Close() {
	m.mu.Lock()
	m.closed = true
	chans := make([]*muxChannel, 0, len(m.channels))
	for ch, c := range m.channels {
		chans = append(chans, c)
		delete(m.channels, ch)
	}
	m.mu.Unlock()
	for _, c := range chans {
		for _, b := range c.boxes {
			b.close()
		}
	}
}

// WaitDemux blocks until every demux goroutine has exited (after the
// underlying network is closed). Used by leak-checked teardown.
func (m *Mux) WaitDemux() { m.wg.Wait() }

// Dropped returns how many messages arrived for unknown or closed channels
// (stale traffic from torn-down jobs) or with a torn envelope.
func (m *Mux) Dropped() int64 { return m.dropped.Load() }

// Channels returns the number of open channels.
func (m *Mux) Channels() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.channels)
}

// muxEndpoint is one node's endpoint within one channel.
type muxEndpoint struct {
	mux      *Mux
	ch       uint64
	node     int
	box      *mailbox
	counters *metrics.Counters
	tracer   *trace.Tracer
}

// Send prepends the channel envelope and forwards on the underlying
// endpoint. Accounting is per channel: the payload (plus framing estimate)
// is charged to this job's counters, not the shared network's.
func (e *muxEndpoint) Send(to int, typ uint8, payload []byte) error {
	buf := make([]byte, 0, binary.MaxVarintLen64+len(payload))
	buf = binary.AppendUvarint(buf, e.ch)
	buf = append(buf, payload...)
	bytes := int64(len(payload) + headerBytes)
	if e.counters != nil {
		e.counters.AddNet(bytes)
	}
	if e.tracer.Enabled() {
		e.tracer.Handle(e.node, trace.CompNet).Event(trace.EvNetSend, uint64(bytes))
	}
	und := e.mux.under[e.node]
	if und == nil {
		return fmt.Errorf("transport: mux node %d is remote (no local underlying endpoint)", e.node)
	}
	return und.Send(to, typ, buf)
}

func (e *muxEndpoint) Recv() (Message, bool) {
	return e.box.pop(time.Time{})
}

func (e *muxEndpoint) RecvTimeout(d time.Duration) (Message, bool) {
	return e.box.pop(time.Now().Add(d))
}

func (e *muxEndpoint) Node() int { return e.node }

func (e *muxEndpoint) Close() error {
	e.box.close()
	return nil
}
