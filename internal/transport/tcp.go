package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"gminer/internal/metrics"
	"gminer/internal/trace"
)

// TCPNetwork runs the same message protocol over real loopback TCP
// sockets: every node listens on 127.0.0.1 and lazily dials persistent
// connections to peers. Frames are length-prefixed:
//
//	[4B big-endian frame length][1B type][4B from][payload]
//
// This transport exists to demonstrate the engine is transport-agnostic;
// the evaluation uses LocalNetwork for determinism.
type TCPNetwork struct {
	nodes    int
	counters []*metrics.Counters
	tracer   *trace.Tracer

	// dialTimeout bounds connection establishment; sendTimeout bounds each
	// frame write so a wedged peer cannot block a sender forever.
	dialTimeout time.Duration
	sendTimeout time.Duration
	// redial bounds how long a sender keeps re-attempting an unreachable
	// peer (default: single attempt, the historical behaviour).
	redial RedialPolicy

	mu        sync.Mutex
	addrs     []string
	listeners []net.Listener
	endpoints []*tcpEndpoint
	closed    bool
}

// NewTCP starts listeners for `nodes` endpoints on ephemeral loopback
// ports. counters may be nil or hold one sink per node.
func NewTCP(nodes int, counters []*metrics.Counters) (*TCPNetwork, error) {
	n := &TCPNetwork{
		nodes:       nodes,
		counters:    counters,
		dialTimeout: 5 * time.Second,
		sendTimeout: 5 * time.Second,
		addrs:       make([]string, nodes),
		listeners:   make([]net.Listener, nodes),
		endpoints:   make([]*tcpEndpoint, nodes),
	}
	for i := 0; i < nodes; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			n.Close()
			return nil, fmt.Errorf("transport: listen node %d: %w", i, err)
		}
		n.listeners[i] = l
		n.addrs[i] = l.Addr().String()
		ep := &tcpEndpoint{
			net: n, node: i, box: newMailbox(),
			conns:    make(map[int]net.Conn),
			accepted: make(map[net.Conn]struct{}),
			stop:     make(chan struct{}),
		}
		n.endpoints[i] = ep
		go ep.acceptLoop(l)
	}
	return n, nil
}

// SetTracer attaches a tracer recording one EvNetSend per frame sent;
// call before the network is shared. Nil is allowed.
func (n *TCPNetwork) SetTracer(t *trace.Tracer) { n.tracer = t }

// SetTimeouts overrides the dial and per-frame write timeouts (both
// default to 5s). Zero disables the corresponding deadline. Call before
// the network is shared.
func (n *TCPNetwork) SetTimeouts(dial, send time.Duration) {
	n.dialTimeout = dial
	n.sendTimeout = send
}

// SetRedial gives senders a redial budget with backoff for unreachable
// peers, instead of the default single dial attempt. SetTimeouts' one
// bounded redial is enough for a peer whose listener never went away, but
// a restarting worker process is gone for whole seconds — with a budget,
// senders keep knocking until it is back. Call before the network is
// shared. Note the retry holds the sending endpoint's lock, so other
// sends from the same node queue behind it for up to the budget.
func (n *TCPNetwork) SetRedial(p RedialPolicy) { n.redial = p }

// Endpoint returns node i's endpoint.
func (n *TCPNetwork) Endpoint(node int) Endpoint { return n.endpoints[node] }

// Reset severs a node's connections and replaces its mailbox, simulating
// a process restart on that node (worker recovery): queued and in-flight
// messages to it are lost, receivers blocked on the old mailbox unblock
// with ok=false, and peers' cached connections to it die — their next
// send's one-shot redial reaches the still-listening socket, so the
// replacement worker is reachable without any peer-side bookkeeping.
func (n *TCPNetwork) Reset(node int) {
	n.endpoints[node].reset()
}

// Close shuts down all listeners, connections and mailboxes.
func (n *TCPNetwork) Close() {
	n.mu.Lock()
	n.closed = true
	n.mu.Unlock()
	for _, l := range n.listeners {
		if l != nil {
			_ = l.Close()
		}
	}
	for _, ep := range n.endpoints {
		if ep != nil {
			ep.close()
		}
	}
}

type tcpEndpoint struct {
	net  *TCPNetwork
	node int

	// stop aborts in-flight dial retries; closed (via stopOnce) before
	// close() takes e.mu, because a retrying sender holds that lock.
	stop     chan struct{}
	stopOnce sync.Once

	mu       sync.Mutex
	box      *mailbox         // swapped by reset; access via mailbox()
	conns    map[int]net.Conn // outbound, by peer
	accepted map[net.Conn]struct{}
	closed   bool
}

// mailbox returns the current inbox (reset swaps it for a fresh one).
func (e *tcpEndpoint) mailbox() *mailbox {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.box
}

func (e *tcpEndpoint) acceptLoop(l net.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			_ = conn.Close()
			return
		}
		e.accepted[conn] = struct{}{}
		e.mu.Unlock()
		go e.readLoop(conn)
	}
}

func (e *tcpEndpoint) readLoop(conn net.Conn) {
	defer func() {
		_ = conn.Close()
		e.mu.Lock()
		delete(e.accepted, conn)
		e.mu.Unlock()
	}()
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		frameLen := binary.BigEndian.Uint32(hdr[:])
		if frameLen < 5 || frameLen > 1<<30 {
			return
		}
		frame := make([]byte, frameLen)
		if _, err := io.ReadFull(conn, frame); err != nil {
			return
		}
		typ := frame[0]
		from := int(int32(binary.BigEndian.Uint32(frame[1:5])))
		// A message that raced a reset lands in the already-closed old
		// mailbox and is dropped — exactly a crashed process's in-flight
		// traffic.
		e.mailbox().push(Message{From: from, To: e.node, Type: typ, Payload: frame[5:]}, time.Time{})
	}
}

func (e *tcpEndpoint) Send(to int, typ uint8, payload []byte) error {
	if to < 0 || to >= e.net.nodes {
		return fmt.Errorf("transport: invalid destination node %d", to)
	}
	frame := make([]byte, 4+5+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(5+len(payload)))
	frame[4] = typ
	binary.BigEndian.PutUint32(frame[5:9], uint32(int32(e.node)))
	copy(frame[9:], payload)

	e.mu.Lock()
	defer e.mu.Unlock()
	// A cached connection may have died since the last send (peer restart,
	// timed-out write): retry exactly once on a fresh dial before surfacing
	// the failure, so a transient disconnect is invisible to callers while
	// a truly dead peer still fails fast.
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		conn, err := e.connLocked(to)
		if err != nil {
			return err
		}
		if d := e.net.sendTimeout; d > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(d))
		}
		if _, err := conn.Write(frame); err != nil {
			lastErr = err
			_ = conn.Close()
			delete(e.conns, to)
			continue
		}
		if e.net.counters != nil && e.node < len(e.net.counters) && e.net.counters[e.node] != nil {
			e.net.counters[e.node].AddNet(int64(len(frame)))
		}
		if e.net.tracer.Enabled() {
			e.net.tracer.Handle(e.node, trace.CompNet).Event(trace.EvNetSend, uint64(len(frame)))
		}
		return nil
	}
	return fmt.Errorf("transport: send to node %d: %w", to, lastErr)
}

// connLocked returns the cached connection to peer `to`, dialing one if
// needed. Caller holds e.mu.
func (e *tcpEndpoint) connLocked(to int) (net.Conn, error) {
	if e.closed {
		return nil, fmt.Errorf("transport: endpoint %d closed", e.node)
	}
	if c, ok := e.conns[to]; ok {
		return c, nil
	}
	addr := e.net.addrs[to]
	c, err := dialRetry(func() string { return addr }, e.net.dialTimeout, e.net.redial, e.stop)
	if err != nil {
		return nil, fmt.Errorf("transport: dial node %d: %w", to, err)
	}
	e.conns[to] = c
	return c, nil
}

func (e *tcpEndpoint) Recv() (Message, bool) { return e.mailbox().pop(time.Time{}) }

func (e *tcpEndpoint) RecvTimeout(d time.Duration) (Message, bool) {
	return e.mailbox().pop(time.Now().Add(d))
}

func (e *tcpEndpoint) Node() int { return e.node }

func (e *tcpEndpoint) Close() error {
	e.close()
	return nil
}

func (e *tcpEndpoint) close() {
	e.stopOnce.Do(func() { close(e.stop) })
	e.mu.Lock()
	e.closed = true
	box := e.box
	e.severLocked()
	e.mu.Unlock()
	box.close()
}

// reset simulates a process restart: sever every connection and start an
// empty mailbox. The listener keeps running, so peers reconnect via their
// send-retry redial.
func (e *tcpEndpoint) reset() {
	e.mu.Lock()
	old := e.box
	e.box = newMailbox()
	e.severLocked()
	e.mu.Unlock()
	old.close()
}

// severLocked closes all outbound and accepted connections. Caller holds
// e.mu; the readLoops' deferred deregistration re-acquires it after we
// return.
func (e *tcpEndpoint) severLocked() {
	for _, c := range e.conns {
		_ = c.Close()
	}
	e.conns = make(map[int]net.Conn)
	for c := range e.accepted {
		_ = c.Close()
	}
	e.accepted = make(map[net.Conn]struct{})
}
