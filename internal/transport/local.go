package transport

import (
	"fmt"
	"sync"
	"time"

	"gminer/internal/metrics"
	"gminer/internal/trace"
)

// LocalConfig configures the in-process network.
type LocalConfig struct {
	// Nodes is the total node count (workers + master).
	Nodes int
	// Latency is the simulated one-way delivery latency per message.
	Latency time.Duration
	// BandwidthBps simulates a shared per-receiver link: each message adds
	// payload/bandwidth of serialization delay behind earlier messages to
	// the same node. 0 = infinite.
	BandwidthBps int64
	// Counters, if non-nil, holds one metrics sink per node; sends are
	// charged to the sender's counters.
	Counters []*metrics.Counters
	// Tracer, if non-nil, records one EvNetSend per message, attributed
	// to the sending node.
	Tracer *trace.Tracer
}

// LocalNetwork is the in-process transport: unbounded per-node mailboxes
// with optional latency and bandwidth simulation.
type LocalNetwork struct {
	cfg   LocalConfig
	boxes []*mailbox

	mu sync.Mutex
	// lastArrival models per-receiver link serialization for bandwidth.
	lastArrival []time.Time
}

// NewLocal creates an in-process network with cfg.Nodes endpoints.
func NewLocal(cfg LocalConfig) *LocalNetwork {
	n := &LocalNetwork{
		cfg:         cfg,
		boxes:       make([]*mailbox, cfg.Nodes),
		lastArrival: make([]time.Time, cfg.Nodes),
	}
	for i := range n.boxes {
		n.boxes[i] = newMailbox()
	}
	return n
}

// Endpoint returns node i's endpoint.
func (n *LocalNetwork) Endpoint(node int) Endpoint {
	return &localEndpoint{net: n, node: node}
}

// Reset replaces node i's mailbox with a fresh one, closing the old box
// (its blocked receivers unblock with ok=false) and dropping any queued
// messages. Used by failure simulation: killing a worker loses whatever
// was in flight to it, exactly like a crashed machine.
func (n *LocalNetwork) Reset(node int) {
	n.mu.Lock()
	old := n.boxes[node]
	n.boxes[node] = newMailbox()
	n.mu.Unlock()
	old.close()
}

// Close shuts every endpoint.
func (n *LocalNetwork) Close() {
	n.mu.Lock()
	boxes := append([]*mailbox(nil), n.boxes...)
	n.mu.Unlock()
	for _, b := range boxes {
		b.close()
	}
}

func (n *LocalNetwork) box(node int) *mailbox {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.boxes[node]
}

func (n *LocalNetwork) send(from, to int, typ uint8, payload []byte) error {
	if to < 0 || to >= len(n.boxes) {
		return fmt.Errorf("transport: invalid destination node %d", to)
	}
	bytes := int64(len(payload) + headerBytes)
	if n.cfg.Counters != nil && from >= 0 && from < len(n.cfg.Counters) && n.cfg.Counters[from] != nil {
		n.cfg.Counters[from].AddNet(bytes)
	}
	if n.cfg.Tracer.Enabled() {
		n.cfg.Tracer.Handle(from, trace.CompNet).Event(trace.EvNetSend, uint64(bytes))
	}
	readyAt := time.Now()
	if n.cfg.Latency > 0 || n.cfg.BandwidthBps > 0 {
		readyAt = readyAt.Add(n.cfg.Latency)
		if n.cfg.BandwidthBps > 0 {
			ser := time.Duration(bytes * int64(time.Second) / n.cfg.BandwidthBps)
			n.mu.Lock()
			start := readyAt
			if n.lastArrival[to].After(start) {
				start = n.lastArrival[to]
			}
			readyAt = start.Add(ser)
			n.lastArrival[to] = readyAt
			n.mu.Unlock()
		}
	}
	// Copy the payload: senders reuse encode buffers.
	var cp []byte
	if len(payload) > 0 {
		cp = append([]byte(nil), payload...)
	}
	n.box(to).push(Message{From: from, To: to, Type: typ, Payload: cp}, readyAt)
	return nil
}

type localEndpoint struct {
	net  *LocalNetwork
	node int
}

func (e *localEndpoint) Send(to int, typ uint8, payload []byte) error {
	return e.net.send(e.node, to, typ, payload)
}

func (e *localEndpoint) Recv() (Message, bool) {
	return e.net.box(e.node).pop(time.Time{})
}

func (e *localEndpoint) RecvTimeout(d time.Duration) (Message, bool) {
	return e.net.box(e.node).pop(time.Now().Add(d))
}

func (e *localEndpoint) Node() int { return e.node }

func (e *localEndpoint) Close() error {
	e.net.box(e.node).close()
	return nil
}
