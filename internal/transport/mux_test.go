package transport

import (
	"sync"
	"testing"
	"time"

	"gminer/internal/metrics"
)

func newTestMux(nodes int) (*Mux, *LocalNetwork) {
	net := NewLocal(LocalConfig{Nodes: nodes})
	under := make([]Endpoint, nodes)
	for i := range under {
		under[i] = net.Endpoint(i)
	}
	return NewMux(under), net
}

func TestMuxRoutesPerChannel(t *testing.T) {
	mux, net := newTestMux(2)
	defer func() { mux.Close(); net.Close(); mux.WaitDemux() }()

	a, err := mux.Open(1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mux.Open(2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	if err := a[0].Send(1, 7, []byte("chan-a")); err != nil {
		t.Fatal(err)
	}
	if err := b[0].Send(1, 7, []byte("chan-b")); err != nil {
		t.Fatal(err)
	}

	m, ok := a[1].RecvTimeout(time.Second)
	if !ok || string(m.Payload) != "chan-a" || m.From != 0 || m.Type != 7 {
		t.Fatalf("channel 1 recv: %+v ok=%v", m, ok)
	}
	m, ok = b[1].RecvTimeout(time.Second)
	if !ok || string(m.Payload) != "chan-b" {
		t.Fatalf("channel 2 recv: %+v ok=%v", m, ok)
	}
	// Nothing crossed channels.
	if _, ok := a[1].RecvTimeout(10 * time.Millisecond); ok {
		t.Fatal("channel 1 saw a second message")
	}
}

func TestMuxDropsStaleChannelTraffic(t *testing.T) {
	mux, net := newTestMux(2)
	defer func() { mux.Close(); net.Close(); mux.WaitDemux() }()

	a, err := mux.Open(1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	keep, err := mux.Open(2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	mux.CloseChannel(1)
	if _, ok := a[1].Recv(); ok {
		t.Fatal("recv on closed channel succeeded")
	}
	// A message sent into the torn-down channel is dropped, not delivered.
	_ = a[0].Send(1, 7, []byte("stale"))
	// Drive a live message through the same node so we know the demux loop
	// has consumed the stale one.
	_ = keep[0].Send(1, 7, []byte("live"))
	if m, ok := keep[1].RecvTimeout(time.Second); !ok || string(m.Payload) != "live" {
		t.Fatalf("live recv: %+v ok=%v", m, ok)
	}
	if got := mux.Dropped(); got != 1 {
		t.Fatalf("dropped = %d, want 1", got)
	}
	if got := mux.Channels(); got != 1 {
		t.Fatalf("channels = %d, want 1", got)
	}
}

func TestMuxReopenSameChannelIDRejected(t *testing.T) {
	mux, net := newTestMux(1)
	defer func() { mux.Close(); net.Close(); mux.WaitDemux() }()
	if _, err := mux.Open(9, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := mux.Open(9, nil, nil); err == nil {
		t.Fatal("duplicate Open succeeded")
	}
	mux.CloseChannel(9)
	if _, err := mux.Open(9, nil, nil); err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
}

func TestMuxPerChannelAccounting(t *testing.T) {
	mux, net := newTestMux(2)
	defer func() { mux.Close(); net.Close(); mux.WaitDemux() }()
	ca := []*metrics.Counters{{}, {}}
	cb := []*metrics.Counters{{}, {}}
	a, _ := mux.Open(1, ca, nil)
	b, _ := mux.Open(2, cb, nil)
	_ = a[0].Send(1, 1, make([]byte, 100))
	_ = b[1].Send(0, 1, make([]byte, 10))
	if got := ca[0].Snapshot().NetBytes; got != 100+16 {
		t.Fatalf("channel 1 node 0 bytes = %d", got)
	}
	if got := cb[1].Snapshot().NetBytes; got != 10+16 {
		t.Fatalf("channel 2 node 1 bytes = %d", got)
	}
	if got := ca[1].Snapshot().NetBytes; got != 0 {
		t.Fatalf("cross-charged bytes = %d", got)
	}
}

func TestMuxConcurrentChannels(t *testing.T) {
	const chans, msgs = 8, 200
	mux, net := newTestMux(3)
	defer func() { mux.Close(); net.Close(); mux.WaitDemux() }()

	var wg sync.WaitGroup
	for c := uint64(1); c <= chans; c++ {
		eps, err := mux.Open(c, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(2)
		go func(eps []Endpoint, c uint64) {
			defer wg.Done()
			payload := []byte{byte(c)}
			for i := 0; i < msgs; i++ {
				_ = eps[0].Send(2, 5, payload)
			}
		}(eps, c)
		go func(eps []Endpoint, c uint64) {
			defer wg.Done()
			for i := 0; i < msgs; i++ {
				m, ok := eps[2].RecvTimeout(5 * time.Second)
				if !ok {
					t.Errorf("channel %d: recv %d timed out", c, i)
					return
				}
				if len(m.Payload) != 1 || m.Payload[0] != byte(c) {
					t.Errorf("channel %d: foreign payload %v", c, m.Payload)
					return
				}
			}
		}(eps, c)
	}
	wg.Wait()
	if mux.Dropped() != 0 {
		t.Fatalf("dropped %d messages", mux.Dropped())
	}
}
