package transport

import (
	"fmt"
	"net"
	"testing"
	"time"
)

// reserveAddr grabs an ephemeral loopback port and releases it, returning
// an address nothing is listening on (yet).
func reserveAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("reserve: %v", err)
	}
	addr := l.Addr().String()
	_ = l.Close()
	return addr
}

// Regression for the redial budget: a single bounded redial (SetTimeouts)
// cannot bridge a restarting worker process. Here the peer is unreachable
// for 2s before it starts accepting; a sender with a redial budget must
// still get the connection.
func TestDialRetryWaitsForLateListener(t *testing.T) {
	addr := reserveAddr(t)
	go func() {
		time.Sleep(2 * time.Second)
		l, err := net.Listen("tcp", addr)
		if err != nil {
			return
		}
		defer l.Close()
		c, err := l.Accept()
		if err == nil {
			_ = c.Close()
		}
	}()
	start := time.Now()
	c, err := dialRetry(func() string { return addr }, time.Second,
		RedialPolicy{Budget: 10 * time.Second, Base: 20 * time.Millisecond}, nil)
	if err != nil {
		t.Fatalf("dialRetry should outlast a 2s-unreachable peer: %v", err)
	}
	_ = c.Close()
	if e := time.Since(start); e < 1500*time.Millisecond {
		t.Fatalf("connected after %v; the listener only came up at 2s", e)
	}
}

func TestDialRetryBudgetExhausted(t *testing.T) {
	addr := reserveAddr(t)
	start := time.Now()
	_, err := dialRetry(func() string { return addr }, time.Second,
		RedialPolicy{Budget: 200 * time.Millisecond, Base: 20 * time.Millisecond}, nil)
	if err == nil {
		t.Fatal("dial to a dead address must fail once the budget is spent")
	}
	if e := time.Since(start); e > 3*time.Second {
		t.Fatalf("budget of 200ms took %v to give up", e)
	}
}

func TestDialRetryZeroBudgetSingleAttempt(t *testing.T) {
	addr := reserveAddr(t)
	start := time.Now()
	if _, err := dialRetry(func() string { return addr }, time.Second, RedialPolicy{}, nil); err == nil {
		t.Fatal("zero policy must fail on the first refused dial")
	}
	if e := time.Since(start); e > time.Second {
		t.Fatalf("zero policy retried for %v; want a single attempt", e)
	}
}

// The same regression at the RemoteNetwork layer: frames queued to a peer
// whose process has not started yet must be delivered once it begins
// accepting 2s later, in order.
func TestRemoteDeliversAfterLateAccept(t *testing.T) {
	peerAddr := reserveAddr(t)
	a, err := NewRemote(RemoteConfig{
		Nodes: 2, Local: 0, Listen: "127.0.0.1:0",
		Redial: RedialPolicy{Budget: 10 * time.Second, Base: 20 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.SetPeer(1, peerAddr)
	for i := 0; i < 3; i++ {
		if err := a.Endpoint().Send(1, 7, []byte{byte(i)}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}

	time.Sleep(2 * time.Second)
	b, err := NewRemote(RemoteConfig{Nodes: 2, Local: 1, Listen: peerAddr})
	if err != nil {
		t.Fatalf("late listener: %v", err)
	}
	defer b.Close()
	for i := 0; i < 3; i++ {
		m, ok := b.Endpoint().RecvTimeout(10 * time.Second)
		if !ok {
			t.Fatalf("frame %d never arrived after the peer came up", i)
		}
		if m.From != 0 || m.Type != 7 || len(m.Payload) != 1 || m.Payload[0] != byte(i) {
			t.Fatalf("frame %d: got from=%d type=%d payload=%v", i, m.From, m.Type, m.Payload)
		}
	}
	if d := a.Dropped(); d != 0 {
		t.Fatalf("sender dropped %d frames despite the budget", d)
	}
}

func TestRemoteBidirectionalAndSelfSend(t *testing.T) {
	a, err := NewRemote(RemoteConfig{Nodes: 2, Local: 0, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewRemote(RemoteConfig{Nodes: 2, Local: 1, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.SetPeer(1, b.Addr())
	b.SetPeer(0, a.Addr())

	if err := a.Endpoint().Send(1, 3, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	m, ok := b.Endpoint().RecvTimeout(5 * time.Second)
	if !ok || string(m.Payload) != "ping" || m.From != 0 {
		t.Fatalf("b got %+v ok=%v", m, ok)
	}
	if err := b.Endpoint().Send(0, 4, []byte("pong")); err != nil {
		t.Fatal(err)
	}
	m, ok = a.Endpoint().RecvTimeout(5 * time.Second)
	if !ok || string(m.Payload) != "pong" || m.From != 1 {
		t.Fatalf("a got %+v ok=%v", m, ok)
	}

	// Self-send loops back through the local inbox without a socket.
	if err := a.Endpoint().Send(0, 5, []byte("self")); err != nil {
		t.Fatal(err)
	}
	m, ok = a.Endpoint().RecvTimeout(5 * time.Second)
	if !ok || string(m.Payload) != "self" || m.From != 0 {
		t.Fatalf("self-send got %+v ok=%v", m, ok)
	}
}

func TestJoinClusterHelloWelcome(t *testing.T) {
	coord, err := NewRemote(RemoteConfig{
		Nodes: 2, Local: 1, Listen: "127.0.0.1:0",
		Hello: func(payload []byte) []byte {
			return append([]byte("welcome:"), payload...)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	reply, err := JoinCluster(coord.Addr(), []byte("node-a"), 2*time.Second, RedialPolicy{Budget: 5 * time.Second}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "welcome:node-a" {
		t.Fatalf("welcome payload %q", reply)
	}
}

// JoinCluster must keep knocking while the coordinator is still starting.
func TestJoinClusterRetriesUntilCoordinatorUp(t *testing.T) {
	addr := reserveAddr(t)
	go func() {
		time.Sleep(1 * time.Second)
		_, _ = NewRemote(RemoteConfig{
			Nodes: 2, Local: 1, Listen: addr,
			Hello: func(payload []byte) []byte { return []byte("ok") },
		})
	}()
	reply, err := JoinCluster(addr, []byte("x"), 2*time.Second,
		RedialPolicy{Budget: 10 * time.Second, Base: 20 * time.Millisecond}, nil)
	if err != nil {
		t.Fatalf("join should retry until the coordinator is up: %v", err)
	}
	if string(reply) != "ok" {
		t.Fatalf("welcome payload %q", reply)
	}
}

// A mux over a remote network has only its own node's underlying
// endpoint; the other entries are nil and must neither demux nor send.
func TestMuxNilUnderEntries(t *testing.T) {
	a, err := NewRemote(RemoteConfig{Nodes: 2, Local: 0, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRemote(RemoteConfig{Nodes: 2, Local: 1, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	a.SetPeer(1, b.Addr())
	b.SetPeer(0, a.Addr())

	muxA := NewMux([]Endpoint{a.Endpoint(), nil})
	muxB := NewMux([]Endpoint{nil, b.Endpoint()})
	epsA, err := muxA.Open(9, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	epsB, err := muxB.Open(9, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	if err := epsA[0].Send(1, 2, []byte("hi")); err != nil {
		t.Fatalf("send via local node: %v", err)
	}
	m, ok := epsB[1].RecvTimeout(5 * time.Second)
	if !ok || string(m.Payload) != "hi" {
		t.Fatalf("muxed frame: %+v ok=%v", m, ok)
	}
	if err := epsA[1].Send(0, 2, nil); err == nil {
		t.Fatal("send through a nil-under virtual endpoint must error")
	}

	muxA.Close()
	muxB.Close()
	a.Close()
	b.Close()
	muxA.WaitDemux()
	muxB.WaitDemux()
}

func TestRemoteSetPeerRedirects(t *testing.T) {
	a, err := NewRemote(RemoteConfig{Nodes: 2, Local: 0, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	first, err := NewRemote(RemoteConfig{Nodes: 2, Local: 1, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	a.SetPeer(1, first.Addr())
	if err := a.Endpoint().Send(1, 1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if m, ok := first.Endpoint().RecvTimeout(5 * time.Second); !ok || string(m.Payload) != "one" {
		t.Fatalf("first incarnation got %+v ok=%v", m, ok)
	}
	// The first incarnation dies; a replacement comes up elsewhere.
	first.Close()
	second, err := NewRemote(RemoteConfig{Nodes: 2, Local: 1, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	a.SetPeer(1, second.Addr())
	if err := a.Endpoint().Send(1, 1, []byte("two")); err != nil {
		t.Fatal(err)
	}
	if m, ok := second.Endpoint().RecvTimeout(5 * time.Second); !ok || string(m.Payload) != "two" {
		t.Fatalf("replacement got %+v ok=%v", m, ok)
	}
}

func TestTCPSetRedialBridgesGap(t *testing.T) {
	// The TCP loopback network's listeners never go away, so exercise the
	// shared dial path through a RemoteNetwork standing in for a TCP peer
	// that is down: SetRedial on TCPNetwork shares dialRetry with it, and
	// the policy plumbing is what this test pins down.
	n, err := NewTCP(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.SetRedial(RedialPolicy{Budget: 2 * time.Second, Base: 10 * time.Millisecond})
	if err := n.Endpoint(0).Send(1, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if m, ok := n.Endpoint(1).RecvTimeout(5 * time.Second); !ok || string(m.Payload) != "x" {
		t.Fatalf("got %+v ok=%v", m, ok)
	}
}

func TestRemoteDropsAfterBudget(t *testing.T) {
	dead := reserveAddr(t)
	a, err := NewRemote(RemoteConfig{
		Nodes: 2, Local: 0, Listen: "127.0.0.1:0",
		Redial: RedialPolicy{Budget: 100 * time.Millisecond, Base: 20 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.SetPeer(1, dead)
	if err := a.Endpoint().Send(1, 1, []byte("gone")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for a.Dropped() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("frame to a dead peer was never dropped after the budget")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func ExampleRemoteNetwork() {
	coord, _ := NewRemote(RemoteConfig{Nodes: 2, Local: 1, Listen: "127.0.0.1:0"})
	worker, _ := NewRemote(RemoteConfig{Nodes: 2, Local: 0, Listen: "127.0.0.1:0"})
	coord.SetPeer(0, worker.Addr())
	worker.SetPeer(1, coord.Addr())
	_ = worker.Endpoint().Send(1, 9, []byte("report"))
	m, _ := coord.Endpoint().RecvTimeout(5 * time.Second)
	fmt.Printf("%d -> %d: %s\n", m.From, m.To, m.Payload)
	worker.Close()
	coord.Close()
	// Output: 0 -> 1: report
}
