package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Transport-reserved frame types used during connection setup of a
// RemoteNetwork. Cluster protocol message types must stay below these.
const (
	// FrameHello carries a join request from a worker process to the
	// coordinator's RemoteConfig.Hello handler.
	FrameHello uint8 = 0xFF
	// FrameWelcome carries the handler's reply back on the same
	// connection.
	FrameWelcome uint8 = 0xFE
)

// helloReplyLimit bounds a welcome frame read by JoinCluster.
const helloReplyLimit = 1 << 20

// RemoteConfig configures one process's node in a multi-process cluster.
type RemoteConfig struct {
	Nodes     int    // total nodes (workers + coordinator)
	Local     int    // this process's node index; -1 until SetLocal (a joining worker)
	Listen    string // TCP listen address, e.g. "127.0.0.1:0"
	Advertise string // address peers should dial; defaults to the bound listen address

	Dial   time.Duration // per-attempt dial timeout (default 5s)
	Send   time.Duration // per-frame write deadline (default 5s)
	Redial RedialPolicy  // dial retry budget (default 10s — a peer process restart takes seconds)

	// Hello, when set, answers FrameHello payloads received on accepted
	// connections (the coordinator's join handshake); the reply is written
	// back as a FrameWelcome on the same connection. Nil drops hellos.
	Hello func(payload []byte) []byte

	// OnFenced, when set, is invoked (from the read loop) for every inbound
	// frame refused because its generation is below the sender's fencing
	// floor (FencePeer). Keep it fast.
	OnFenced func(from int, typ uint8, gen, min uint32)
}

// RemoteNetwork is the multi-process sibling of TCPNetwork: where NewTCP
// hosts every node's listener inside one process, a RemoteNetwork hosts
// exactly ONE node and reaches the others through a peer address table
// (SetPeer) over the same length-prefixed frame protocol:
//
//	[4B big-endian frame length][1B type][4B from][4B generation][payload]
//
// The generation field is the sender's fencing token: a cluster
// coordinator assigns each admitted process a monotonically increasing
// slot generation, the process stamps it on every outbound frame
// (SetGeneration), and every receiver refuses frames from a node whose
// generation fell below the fencing floor installed by FencePeer — so a
// network-partitioned zombie process cannot ack, pull or push anything
// once its replacement has been admitted. Generation 0 (the default) is
// unfenced: single-process transports and handshake frames carry it.
//
// Sends are asynchronous: each peer has an unbounded outbound queue
// drained by its own sender goroutine, so Send never blocks the caller on
// a slow or restarting peer (the Endpoint contract). The sender dials
// lazily with the configured redial budget and backoff; a frame whose
// peer stays unreachable past the budget is dropped and counted — the
// same at-most-once semantics the cluster protocol already tolerates from
// chaos tests (pull retries and periodic progress reports recover).
type RemoteNetwork struct {
	cfg   RemoteConfig
	ln    net.Listener
	box   *mailbox
	local atomic.Int32

	stop     chan struct{}
	stopOnce sync.Once

	gen    atomic.Uint32   // fencing token stamped on outbound frames
	floor  []atomic.Uint32 // per-sender minimum accepted generation
	fenced atomic.Int64    // inbound frames refused as fenced

	mu       sync.Mutex
	peers    []*remotePeer
	accepted map[net.Conn]struct{}
	closed   bool
	dropped  atomic.Int64
}

// NewRemote binds the listener and starts the accept loop and per-peer
// senders. cfg.Local may be -1 for a worker that learns its node index
// from the join handshake (SetLocal).
func NewRemote(cfg RemoteConfig) (*RemoteNetwork, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("transport: remote network needs nodes > 0")
	}
	if cfg.Dial <= 0 {
		cfg.Dial = 5 * time.Second
	}
	if cfg.Send <= 0 {
		cfg.Send = 5 * time.Second
	}
	if cfg.Redial == (RedialPolicy{}) {
		cfg.Redial = RedialPolicy{Budget: 10 * time.Second}
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", cfg.Listen, err)
	}
	if cfg.Advertise == "" {
		cfg.Advertise = ln.Addr().String()
	}
	n := &RemoteNetwork{
		cfg:      cfg,
		ln:       ln,
		box:      newMailbox(),
		stop:     make(chan struct{}),
		floor:    make([]atomic.Uint32, cfg.Nodes),
		peers:    make([]*remotePeer, cfg.Nodes),
		accepted: make(map[net.Conn]struct{}),
	}
	n.local.Store(int32(cfg.Local))
	for i := range n.peers {
		p := &remotePeer{n: n, node: i}
		p.cond = sync.NewCond(&p.mu)
		n.peers[i] = p
		go p.run()
	}
	go n.acceptLoop()
	return n, nil
}

// Addr returns the address peers should dial to reach this process.
func (n *RemoteNetwork) Addr() string { return n.cfg.Advertise }

// LocalNode returns this process's node index (-1 before SetLocal).
func (n *RemoteNetwork) LocalNode() int { return int(n.local.Load()) }

// SetLocal records this process's node index once the join handshake has
// assigned it.
func (n *RemoteNetwork) SetLocal(node int) { n.local.Store(int32(node)) }

// SetGeneration installs the fencing token this process stamps on every
// outbound frame — the slot generation the coordinator assigned at
// admission. 0 (the default) means unfenced.
func (n *RemoteNetwork) SetGeneration(gen uint32) { n.gen.Store(gen) }

// Generation returns the outbound fencing token.
func (n *RemoteNetwork) Generation() uint32 { return n.gen.Load() }

// FencePeer raises the fencing floor for frames claiming to come from
// node: anything stamped with a generation below min is dropped by the
// read loop (counted by Fenced, reported through OnFenced). The floor is
// monotonic — a lower min than the current floor is ignored, so a
// reordered topology update can never un-fence a zombie.
func (n *RemoteNetwork) FencePeer(node int, min uint32) {
	if node < 0 || node >= n.cfg.Nodes {
		return
	}
	for {
		cur := n.floor[node].Load()
		if min <= cur || n.floor[node].CompareAndSwap(cur, min) {
			return
		}
	}
}

// Fenced returns how many inbound frames were refused for carrying a
// fenced-out generation.
func (n *RemoteNetwork) Fenced() int64 { return n.fenced.Load() }

// SetPeer installs (or replaces) the dial address for a peer node. A
// change severs any cached connection so the sender redials the new
// address — how a replacement worker process takes over a node slot.
// Re-announcing an unchanged address is a no-op and keeps the connection.
func (n *RemoteNetwork) SetPeer(node int, addr string) {
	if node < 0 || node >= n.cfg.Nodes {
		return
	}
	p := n.peers[node]
	p.mu.Lock()
	if p.addr == addr {
		p.mu.Unlock()
		return
	}
	p.addr = addr
	old := p.conn
	p.conn = nil
	p.cond.Broadcast()
	p.mu.Unlock()
	if old != nil {
		_ = old.Close()
	}
}

// Peer returns the currently installed dial address for node ("" if
// unknown).
func (n *RemoteNetwork) Peer(node int) string {
	if node < 0 || node >= n.cfg.Nodes {
		return ""
	}
	p := n.peers[node]
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.addr
}

// Dropped returns how many outbound frames were abandoned because their
// peer stayed unreachable past the redial budget.
func (n *RemoteNetwork) Dropped() int64 { return n.dropped.Load() }

// Endpoint returns this process's node endpoint.
func (n *RemoteNetwork) Endpoint() Endpoint { return &remoteEndpoint{n: n} }

// Close shuts the listener, all connections, sender goroutines and the
// inbox. Queued undelivered frames are dropped.
func (n *RemoteNetwork) Close() {
	n.stopOnce.Do(func() { close(n.stop) })
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	accepted := n.accepted
	n.accepted = make(map[net.Conn]struct{})
	n.mu.Unlock()
	_ = n.ln.Close()
	for c := range accepted {
		_ = c.Close()
	}
	for _, p := range n.peers {
		p.close()
	}
	n.box.close()
}

func (n *RemoteNetwork) acceptLoop() {
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			_ = conn.Close()
			return
		}
		n.accepted[conn] = struct{}{}
		n.mu.Unlock()
		go n.readLoop(conn)
	}
}

func (n *RemoteNetwork) readLoop(conn net.Conn) {
	defer func() {
		_ = conn.Close()
		n.mu.Lock()
		delete(n.accepted, conn)
		n.mu.Unlock()
	}()
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		frameLen := binary.BigEndian.Uint32(hdr[:])
		if frameLen < frameHeader || frameLen > 1<<30 {
			return
		}
		frame := make([]byte, frameLen)
		if _, err := io.ReadFull(conn, frame); err != nil {
			return
		}
		typ := frame[0]
		from := int(int32(binary.BigEndian.Uint32(frame[1:5])))
		gen := binary.BigEndian.Uint32(frame[5:9])
		switch typ {
		case FrameHello:
			h := n.cfg.Hello
			if h == nil {
				n.dropped.Add(1)
				continue
			}
			reply := buildFrame(FrameWelcome, n.LocalNode(), 0, h(frame[frameHeader:]))
			_ = conn.SetWriteDeadline(time.Now().Add(n.cfg.Send))
			if _, err := conn.Write(reply); err != nil {
				return
			}
			_ = conn.SetWriteDeadline(time.Time{})
		case FrameWelcome:
			// Only meaningful as a reply on a joiner's own dial-out
			// connection (JoinCluster); stray ones are dropped.
			n.dropped.Add(1)
		default:
			if from >= 0 && from < n.cfg.Nodes {
				if min := n.floor[from].Load(); gen < min {
					// A frame from a fenced-out generation: the sender was
					// replaced after this frame was stamped. Refuse it — a
					// zombie must not ack, pull or deliver anything.
					n.fenced.Add(1)
					if f := n.cfg.OnFenced; f != nil {
						f(from, typ, gen, min)
					}
					continue
				}
			}
			n.box.push(Message{From: from, To: n.LocalNode(), Type: typ, Payload: frame[frameHeader:]}, time.Time{})
		}
	}
}

func (n *RemoteNetwork) send(to int, typ uint8, payload []byte) error {
	if to < 0 || to >= n.cfg.Nodes {
		return fmt.Errorf("transport: invalid destination node %d", to)
	}
	local := n.LocalNode()
	if to == local {
		n.box.push(Message{From: local, To: local, Type: typ, Payload: payload}, time.Time{})
		return nil
	}
	n.peers[to].enqueue(buildFrame(typ, local, n.gen.Load(), payload))
	return nil
}

// frameHeader is the byte count of [type][from][generation] inside a
// frame (the length prefix is not counted by the frame length either).
const frameHeader = 9

// buildFrame encodes one wire frame: length prefix, type, sender node,
// sender generation, payload.
func buildFrame(typ uint8, from int, gen uint32, payload []byte) []byte {
	frame := make([]byte, 4+frameHeader+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(frameHeader+len(payload)))
	frame[4] = typ
	binary.BigEndian.PutUint32(frame[5:9], uint32(int32(from)))
	binary.BigEndian.PutUint32(frame[9:13], gen)
	copy(frame[13:], payload)
	return frame
}

// remotePeer owns the outbound path to one node: an unbounded frame queue
// and a sender goroutine that dials lazily within the redial budget.
type remotePeer struct {
	n    *RemoteNetwork
	node int

	mu     sync.Mutex
	cond   *sync.Cond
	addr   string
	queue  [][]byte
	conn   net.Conn // dialed by the sender; severed by SetPeer/close
	closed bool
}

func (p *remotePeer) enqueue(frame []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.queue = append(p.queue, frame)
	p.cond.Broadcast()
}

func (p *remotePeer) close() {
	p.mu.Lock()
	p.closed = true
	old := p.conn
	p.conn = nil
	p.queue = nil
	p.cond.Broadcast()
	p.mu.Unlock()
	if old != nil {
		_ = old.Close()
	}
}

func (p *remotePeer) run() {
	for {
		frame, ok := p.next()
		if !ok {
			return
		}
		if !p.deliver(frame) {
			p.n.dropped.Add(1)
		}
	}
}

// next blocks until a frame is queued and the peer's address is known, or
// the peer closes.
func (p *remotePeer) next() ([]byte, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.closed {
			return nil, false
		}
		if len(p.queue) > 0 && p.addr != "" {
			f := p.queue[0]
			p.queue = p.queue[1:]
			return f, true
		}
		p.cond.Wait()
	}
}

// deliver writes the frame, dialing within the redial budget as needed.
// Like tcpEndpoint.Send, a failed write gets exactly one retry on a fresh
// connection before the frame is given up.
func (p *remotePeer) deliver(frame []byte) bool {
	for attempt := 0; attempt < 2; attempt++ {
		conn, err := p.ensureConn()
		if err != nil {
			return false
		}
		_ = conn.SetWriteDeadline(time.Now().Add(p.n.cfg.Send))
		if _, err := conn.Write(frame); err != nil {
			p.dropConn(conn)
			continue
		}
		return true
	}
	return false
}

func (p *remotePeer) ensureConn() (net.Conn, error) {
	p.mu.Lock()
	if c := p.conn; c != nil {
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()
	c, err := dialRetry(p.currentAddr, p.n.cfg.Dial, p.n.cfg.Redial, p.n.stop)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		_ = c.Close()
		return nil, fmt.Errorf("transport: peer %d closed", p.node)
	}
	p.conn = c
	p.mu.Unlock()
	return c, nil
}

func (p *remotePeer) currentAddr() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.addr
}

func (p *remotePeer) dropConn(c net.Conn) {
	p.mu.Lock()
	if p.conn == c {
		p.conn = nil
	}
	p.mu.Unlock()
	_ = c.Close()
}

// remoteEndpoint adapts a RemoteNetwork to the Endpoint interface.
type remoteEndpoint struct{ n *RemoteNetwork }

func (e *remoteEndpoint) Send(to int, typ uint8, payload []byte) error {
	return e.n.send(to, typ, payload)
}
func (e *remoteEndpoint) Recv() (Message, bool) { return e.n.box.pop(time.Time{}) }
func (e *remoteEndpoint) RecvTimeout(d time.Duration) (Message, bool) {
	return e.n.box.pop(time.Now().Add(d))
}
func (e *remoteEndpoint) Node() int { return e.n.LocalNode() }
func (e *remoteEndpoint) Close() error {
	e.n.Close()
	return nil
}

// JoinCluster dials a coordinator (retrying within the policy), sends one
// FrameHello carrying hello, and returns the coordinator's FrameWelcome
// payload. The connection is handshake-only and closed before returning;
// cluster traffic flows over the peer table afterwards.
func JoinCluster(addr string, hello []byte, dialTimeout time.Duration, p RedialPolicy, cancel <-chan struct{}) ([]byte, error) {
	if dialTimeout <= 0 {
		dialTimeout = 5 * time.Second
	}
	conn, err := dialRetry(func() string { return addr }, dialTimeout, p, cancel)
	if err != nil {
		return nil, fmt.Errorf("transport: join %s: %w", addr, err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(dialTimeout))
	if _, err := conn.Write(buildFrame(FrameHello, -1, 0, hello)); err != nil {
		return nil, fmt.Errorf("transport: join %s: send hello: %w", addr, err)
	}
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, fmt.Errorf("transport: join %s: read welcome: %w", addr, err)
	}
	frameLen := binary.BigEndian.Uint32(hdr[:])
	if frameLen < frameHeader || frameLen > helloReplyLimit {
		return nil, fmt.Errorf("transport: join %s: bad welcome frame length %d", addr, frameLen)
	}
	frame := make([]byte, frameLen)
	if _, err := io.ReadFull(conn, frame); err != nil {
		return nil, fmt.Errorf("transport: join %s: read welcome: %w", addr, err)
	}
	if frame[0] != FrameWelcome {
		return nil, fmt.Errorf("transport: join %s: expected welcome frame, got type %d", addr, frame[0])
	}
	return frame[frameHeader:], nil
}
