package transport

import (
	"fmt"
	"net"
	"time"
)

// RedialPolicy bounds how long a sender keeps re-attempting to dial an
// unreachable peer before giving the frame up. The zero policy keeps the
// historical behaviour: one dial attempt, no retry — right for an
// in-process network where every listener exists for the network's whole
// lifetime, but not for a worker *process* that is restarting: a restart
// takes seconds (exec, graph load, partition, join), so peers must keep
// knocking with backoff instead of failing on the first refused dial.
type RedialPolicy struct {
	// Budget is the total time to keep re-attempting the dial. Zero means
	// a single attempt.
	Budget time.Duration
	// Base is the first backoff sleep (default 50ms). Doubles per attempt.
	Base time.Duration
	// Max caps the backoff (default 1s).
	Max time.Duration
}

func (p RedialPolicy) withDefaults() RedialPolicy {
	if p.Base <= 0 {
		p.Base = 50 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = time.Second
	}
	return p
}

// dialRetry dials the address returned by addrOf, re-attempting with
// exponential backoff until the policy's budget is spent. addrOf is
// re-evaluated before every attempt so an address update (a replacement
// worker advertising a new port) takes effect mid-retry. A close of
// cancel aborts the wait immediately.
func dialRetry(addrOf func() string, dialTimeout time.Duration, p RedialPolicy, cancel <-chan struct{}) (net.Conn, error) {
	p = p.withDefaults()
	deadline := time.Now().Add(p.Budget)
	backoff := p.Base
	var lastErr error
	for {
		if addr := addrOf(); addr == "" {
			lastErr = fmt.Errorf("transport: peer address unknown")
		} else {
			c, err := net.DialTimeout("tcp", addr, dialTimeout)
			if err == nil {
				return c, nil
			}
			lastErr = err
		}
		if p.Budget <= 0 || !time.Now().Before(deadline) {
			return nil, lastErr
		}
		sleep := backoff
		if rest := time.Until(deadline); rest < sleep {
			sleep = rest
		}
		select {
		case <-cancel:
			return nil, fmt.Errorf("transport: dial cancelled: %w", lastErr)
		case <-time.After(sleep):
		}
		backoff *= 2
		if backoff > p.Max {
			backoff = p.Max
		}
	}
}
