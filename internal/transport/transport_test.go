package transport

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"gminer/internal/metrics"
	"gminer/internal/trace"
)

func TestLocalSendRecv(t *testing.T) {
	n := NewLocal(LocalConfig{Nodes: 3})
	defer n.Close()
	a, b := n.Endpoint(0), n.Endpoint(1)
	if err := a.Send(1, 7, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	m, ok := b.Recv()
	if !ok || m.From != 0 || m.To != 1 || m.Type != 7 || string(m.Payload) != "ping" {
		t.Fatalf("got %+v ok=%v", m, ok)
	}
}

func TestLocalPayloadCopied(t *testing.T) {
	n := NewLocal(LocalConfig{Nodes: 2})
	defer n.Close()
	buf := []byte("abc")
	_ = n.Endpoint(0).Send(1, 1, buf)
	buf[0] = 'X' // sender reuses the buffer
	m, _ := n.Endpoint(1).Recv()
	if string(m.Payload) != "abc" {
		t.Fatal("payload aliased sender buffer")
	}
}

func TestLocalOrderingPerSender(t *testing.T) {
	n := NewLocal(LocalConfig{Nodes: 2})
	defer n.Close()
	ep := n.Endpoint(0)
	for i := 0; i < 100; i++ {
		_ = ep.Send(1, 1, []byte{byte(i)})
	}
	rx := n.Endpoint(1)
	for i := 0; i < 100; i++ {
		m, ok := rx.Recv()
		if !ok || m.Payload[0] != byte(i) {
			t.Fatalf("message %d out of order: %v", i, m.Payload)
		}
	}
}

func TestLocalRecvTimeout(t *testing.T) {
	n := NewLocal(LocalConfig{Nodes: 1})
	defer n.Close()
	start := time.Now()
	_, ok := n.Endpoint(0).RecvTimeout(5 * time.Millisecond)
	if ok {
		t.Fatal("unexpected message")
	}
	if time.Since(start) < 4*time.Millisecond {
		t.Fatal("timeout returned early")
	}
}

func TestLocalLatency(t *testing.T) {
	n := NewLocal(LocalConfig{Nodes: 2, Latency: 10 * time.Millisecond})
	defer n.Close()
	start := time.Now()
	_ = n.Endpoint(0).Send(1, 1, nil)
	_, ok := n.Endpoint(1).Recv()
	if !ok {
		t.Fatal("recv failed")
	}
	if d := time.Since(start); d < 9*time.Millisecond {
		t.Fatalf("latency not applied: %v", d)
	}
}

func TestLocalBandwidth(t *testing.T) {
	// 1 MB at 10 MB/s must take >= ~90ms.
	n := NewLocal(LocalConfig{Nodes: 2, BandwidthBps: 10 << 20})
	defer n.Close()
	start := time.Now()
	_ = n.Endpoint(0).Send(1, 1, make([]byte, 1<<20))
	_, _ = n.Endpoint(1).Recv()
	if d := time.Since(start); d < 90*time.Millisecond {
		t.Fatalf("bandwidth not simulated: %v", d)
	}
}

func TestLocalByteAccounting(t *testing.T) {
	cs := []*metrics.Counters{{}, {}}
	n := NewLocal(LocalConfig{Nodes: 2, Counters: cs})
	defer n.Close()
	_ = n.Endpoint(0).Send(1, 1, make([]byte, 100))
	snap := cs[0].Snapshot()
	if snap.NetBytes < 100 || snap.NetMsgs != 1 {
		t.Fatalf("accounting: %+v", snap)
	}
	if cs[1].Snapshot().NetBytes != 0 {
		t.Fatal("receiver charged for send")
	}
}

func TestLocalReset(t *testing.T) {
	n := NewLocal(LocalConfig{Nodes: 2})
	defer n.Close()
	_ = n.Endpoint(0).Send(1, 1, []byte("lost"))
	recvDone := make(chan bool)
	go func() {
		// Drain the first message, then block on the second Recv.
		n.Endpoint(1).Recv()
		_, ok := n.Endpoint(1).Recv()
		recvDone <- ok
	}()
	time.Sleep(2 * time.Millisecond)
	n.Reset(1) // old blocked Recv unblocks with ok=false
	select {
	case ok := <-recvDone:
		if ok {
			t.Fatal("old receiver got a message after reset")
		}
	case <-time.After(time.Second):
		t.Fatal("old receiver never unblocked")
	}
	// New mailbox works.
	_ = n.Endpoint(0).Send(1, 1, []byte("fresh"))
	m, ok := n.Endpoint(1).Recv()
	if !ok || string(m.Payload) != "fresh" {
		t.Fatalf("post-reset delivery broken: %+v", m)
	}
}

func TestLocalInvalidDestination(t *testing.T) {
	n := NewLocal(LocalConfig{Nodes: 2})
	defer n.Close()
	if err := n.Endpoint(0).Send(5, 1, nil); err == nil {
		t.Fatal("expected error for invalid node")
	}
}

func TestLocalConcurrentSenders(t *testing.T) {
	n := NewLocal(LocalConfig{Nodes: 4})
	defer n.Close()
	const per = 200
	var wg sync.WaitGroup
	for s := 0; s < 3; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			ep := n.Endpoint(s)
			for i := 0; i < per; i++ {
				_ = ep.Send(3, 1, []byte(fmt.Sprintf("%d-%d", s, i)))
			}
		}(s)
	}
	rx := n.Endpoint(3)
	got := 0
	for got < 3*per {
		if _, ok := rx.Recv(); !ok {
			t.Fatal("recv failed")
		}
		got++
	}
	wg.Wait()
}

func TestTCPSendRecv(t *testing.T) {
	n, err := NewTCP(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.Endpoint(0).Send(2, 9, []byte("over tcp")); err != nil {
		t.Fatal(err)
	}
	m, ok := n.Endpoint(2).RecvTimeout(2 * time.Second)
	if !ok || m.From != 0 || m.Type != 9 || string(m.Payload) != "over tcp" {
		t.Fatalf("got %+v ok=%v", m, ok)
	}
}

func TestTCPBidirectional(t *testing.T) {
	n, err := NewTCP(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	_ = n.Endpoint(0).Send(1, 1, []byte("hi"))
	m, _ := n.Endpoint(1).RecvTimeout(2 * time.Second)
	_ = n.Endpoint(1).Send(0, 2, append([]byte("re:"), m.Payload...))
	m2, ok := n.Endpoint(0).RecvTimeout(2 * time.Second)
	if !ok || string(m2.Payload) != "re:hi" {
		t.Fatalf("got %+v", m2)
	}
}

func TestTCPLargePayload(t *testing.T) {
	n, err := NewTCP(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i)
	}
	_ = n.Endpoint(0).Send(1, 1, payload)
	m, ok := n.Endpoint(1).RecvTimeout(5 * time.Second)
	if !ok || len(m.Payload) != len(payload) {
		t.Fatalf("len=%d", len(m.Payload))
	}
	for i := range payload {
		if m.Payload[i] != payload[i] {
			t.Fatalf("corruption at %d", i)
		}
	}
}

func TestTCPByteAccounting(t *testing.T) {
	cs := []*metrics.Counters{{}, {}}
	n, err := NewTCP(2, cs)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	_ = n.Endpoint(0).Send(1, 1, make([]byte, 256))
	n.Endpoint(1).RecvTimeout(2 * time.Second)
	if cs[0].Snapshot().NetBytes < 256 {
		t.Fatal("tcp bytes not counted")
	}
}

// TestTCPConcurrentCloseVsSend hammers Send from many goroutines while
// Close races in: no panic, sends after close fail cleanly, and all
// transport goroutines (accept/read loops) exit — no leak.
func TestTCPConcurrentCloseVsSend(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 5; round++ {
		n, err := NewTCP(4, nil)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for src := 0; src < 4; src++ {
			wg.Add(1)
			go func(src int) {
				defer wg.Done()
				ep := n.Endpoint(src)
				payload := make([]byte, 512)
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					// Errors are expected once Close lands; panics are not.
					_ = ep.Send((src+1+i)%4, 7, payload)
				}
			}(src)
		}
		// Let traffic build, then yank the network out from under the senders.
		time.Sleep(5 * time.Millisecond)
		n.Close()
		close(stop)
		wg.Wait()
		if err := n.Endpoint(0).Send(1, 7, nil); err == nil {
			t.Fatal("send succeeded after Close")
		}
	}
	// Read/accept loops unwind asynchronously after Close; give them a
	// bounded settle window before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d before, %d after close\n%s",
				before, now, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestTCPDoubleCloseAndEndpointClose(t *testing.T) {
	n, err := NewTCP(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = n.Endpoint(0).Send(1, 1, []byte("x"))
	n.Close()
	n.Close() // idempotent
	if err := n.Endpoint(0).Close(); err != nil {
		t.Fatalf("endpoint close after network close: %v", err)
	}
	if _, ok := n.Endpoint(1).RecvTimeout(50 * time.Millisecond); ok {
		// A message delivered before close may still be buffered; drain it
		// and ensure the mailbox then reports closed.
		if _, ok := n.Endpoint(1).RecvTimeout(50 * time.Millisecond); ok {
			t.Fatal("mailbox still delivering after close")
		}
	}
}

func TestTCPTracerCountsSends(t *testing.T) {
	n, err := NewTCP(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	tr := trace.New(2, 16).EnableEvents()
	n.SetTracer(tr)
	if err := n.Endpoint(0).Send(1, 1, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	n.Endpoint(1).RecvTimeout(2 * time.Second)
	if got := tr.EventCount(trace.EvNetSend); got != 1 {
		t.Fatalf("net_send events = %d, want 1", got)
	}
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Arg < 100 {
		t.Fatalf("events: %+v", evs)
	}
}

func TestLocalTracerCountsSends(t *testing.T) {
	tr := trace.New(2, 16).EnableEvents()
	n := NewLocal(LocalConfig{Nodes: 2, Tracer: tr})
	if err := n.Endpoint(0).Send(1, 1, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if got := tr.EventCount(trace.EvNetSend); got != 1 {
		t.Fatalf("net_send events = %d, want 1", got)
	}
}

// TestTCPReconnectAfterConnDrop kills the cached outbound connection
// between two sends; the bounded-retry path in Send must redial and
// deliver the second message without surfacing an error.
func TestTCPReconnectAfterConnDrop(t *testing.T) {
	n, err := NewTCP(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.Endpoint(0).Send(1, 1, []byte("before")); err != nil {
		t.Fatal(err)
	}
	// Sever the cached connection out from under the sender (simulates a
	// peer-side disconnect the sender has not noticed yet).
	ep := n.endpoints[0]
	ep.mu.Lock()
	for _, c := range ep.conns {
		_ = c.Close()
	}
	ep.mu.Unlock()
	if err := n.Endpoint(0).Send(1, 2, []byte("after")); err != nil {
		t.Fatalf("send after conn drop: %v", err)
	}
	got := map[uint8]string{}
	for len(got) < 2 {
		m, ok := n.Endpoint(1).RecvTimeout(2 * time.Second)
		if !ok {
			t.Fatalf("timed out, received %v", got)
		}
		got[m.Type] = string(m.Payload)
	}
	if got[1] != "before" || got[2] != "after" {
		t.Fatalf("got %v", got)
	}
}

// TestTCPSendFailsWhenPeerGone verifies the retry is bounded: once the
// peer's listener is gone and no cached connection exists, Send returns
// an error instead of retrying forever.
func TestTCPSendFailsWhenPeerGone(t *testing.T) {
	n, err := NewTCP(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.SetTimeouts(200*time.Millisecond, 200*time.Millisecond)
	_ = n.listeners[1].Close()
	ep := n.endpoints[0]
	ep.mu.Lock()
	for to, c := range ep.conns {
		_ = c.Close()
		delete(ep.conns, to)
	}
	ep.mu.Unlock()
	if err := n.Endpoint(0).Send(1, 1, []byte("x")); err == nil {
		t.Fatal("send to dead peer succeeded")
	}
}
