package dfs

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"gminer/internal/gen"
	"gminer/internal/metrics"
)

func mustCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func writeFile(t *testing.T, c *Cluster, path string, data []byte) {
	t.Helper()
	w, err := c.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func readFile(t *testing.T, c *Cluster, path string, hint int) []byte {
	t.Helper()
	r, err := c.Open(path, hint)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestWriteReadSmall(t *testing.T) {
	c := mustCluster(t, Config{})
	writeFile(t, c, "/a", []byte("hello dfs"))
	if got := readFile(t, c, "/a", 0); string(got) != "hello dfs" {
		t.Fatalf("got %q", got)
	}
}

func TestMultiBlockFile(t *testing.T) {
	c := mustCluster(t, Config{BlockSize: 64})
	data := bytes.Repeat([]byte("0123456789"), 100) // 1000 bytes → 16 blocks
	writeFile(t, c, "/big", data)
	if got := readFile(t, c, "/big", 1); !bytes.Equal(got, data) {
		t.Fatal("multi-block round trip corrupt")
	}
	size, err := c.Stat("/big")
	if err != nil || size != 1000 {
		t.Fatalf("size=%d err=%v", size, err)
	}
}

func TestReplicationSurvivesDataNodeFailure(t *testing.T) {
	c := mustCluster(t, Config{DataNodes: 3, Replication: 2, BlockSize: 32})
	data := bytes.Repeat([]byte("abc"), 100)
	writeFile(t, c, "/r", data)
	// Kill any single datanode: every block still has a live replica.
	for i := 0; i < 3; i++ {
		c.KillDataNode(i)
		if got := readFile(t, c, "/r", 0); !bytes.Equal(got, data) {
			t.Fatalf("data lost with dn-%d down", i)
		}
		c.Revive(i)
	}
}

func TestReplicationExhausted(t *testing.T) {
	c := mustCluster(t, Config{DataNodes: 2, Replication: 2, BlockSize: 32})
	writeFile(t, c, "/r", []byte("payload"))
	c.KillDataNode(0)
	c.KillDataNode(1)
	r, err := c.Open("/r", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(r); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("expected ErrNoReplica, got %v", err)
	}
}

func TestOverwriteReplacesContent(t *testing.T) {
	c := mustCluster(t, Config{BlockSize: 8})
	writeFile(t, c, "/f", []byte("first version, long enough for blocks"))
	writeFile(t, c, "/f", []byte("second"))
	if got := readFile(t, c, "/f", 0); string(got) != "second" {
		t.Fatalf("got %q", got)
	}
}

func TestDeleteAndNotFound(t *testing.T) {
	c := mustCluster(t, Config{})
	writeFile(t, c, "/x", []byte("x"))
	if err := c.Delete("/x"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open("/x", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expected not found, got %v", err)
	}
	if err := c.Delete("/x"); !errors.Is(err, ErrNotFound) {
		t.Fatal("double delete should report not found")
	}
}

func TestList(t *testing.T) {
	c := mustCluster(t, Config{})
	writeFile(t, c, "/jobs/1/out", []byte("a"))
	writeFile(t, c, "/jobs/2/out", []byte("b"))
	writeFile(t, c, "/other", []byte("c"))
	got := c.List("/jobs/")
	if len(got) != 2 || got[0] != "/jobs/1/out" || got[1] != "/jobs/2/out" {
		t.Fatalf("list: %v", got)
	}
}

func TestDiskBackedDataNodes(t *testing.T) {
	c := mustCluster(t, Config{Dir: t.TempDir(), BlockSize: 128})
	data := bytes.Repeat([]byte{0xEE}, 1000)
	writeFile(t, c, "/disk", data)
	if got := readFile(t, c, "/disk", 2); !bytes.Equal(got, data) {
		t.Fatal("disk-backed round trip corrupt")
	}
}

func TestAccounting(t *testing.T) {
	m := &metrics.Counters{}
	c := mustCluster(t, Config{Counters: m, Replication: 2, BlockSize: 64})
	writeFile(t, c, "/acc", make([]byte, 256))
	_ = readFile(t, c, "/acc", 0)
	snap := m.Snapshot()
	if snap.DiskWrite < 512 { // 256 bytes x 2 replicas
		t.Fatalf("writes under-counted: %d", snap.DiskWrite)
	}
	if snap.DiskRead < 256 {
		t.Fatalf("reads under-counted: %d", snap.DiskRead)
	}
}

func TestGraphRoundTripThroughDFS(t *testing.T) {
	c := mustCluster(t, Config{BlockSize: 256})
	g := gen.RMAT(gen.RMATConfig{Scale: 7, Edges: 600, Seed: 3})
	if err := SaveGraph(c, "/graphs/g", g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadGraph(c, "/graphs/g", 1)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("graph mismatch: V %d/%d E %d/%d",
			g.NumVertices(), g2.NumVertices(), g.NumEdges(), g2.NumEdges())
	}
}

func TestRecordsRoundTrip(t *testing.T) {
	c := mustCluster(t, Config{BlockSize: 16})
	recs := []string{"clique size=3: 1 2 3", "clique size=4: 4 5 6 7"}
	if err := SaveRecords(c, "/out", recs); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRecords(c, "/out")
	if err != nil || len(got) != 2 || got[0] != recs[0] || got[1] != recs[1] {
		t.Fatalf("got %v err %v", got, err)
	}
}

// Property: any payload survives a write/read cycle at any block size.
func TestQuickRoundTrip(t *testing.T) {
	f := func(data []byte, bs8 uint8) bool {
		c, err := New(Config{BlockSize: int(bs8%63) + 1})
		if err != nil {
			return false
		}
		w, _ := c.Create("/q")
		if _, err := w.Write(data); err != nil {
			return false
		}
		if w.Close() != nil {
			return false
		}
		r, err := c.Open("/q", 0)
		if err != nil {
			return false
		}
		got, err := io.ReadAll(r)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
