package dfs

import (
	"fmt"
	"io"

	"gminer/internal/graph"
)

// SaveGraph writes a graph to the DFS in the text adjacency-list format —
// the paper's job input path ("Each worker Wi loads a piece of graph data
// Pi by the graph loader" from HDFS).
func SaveGraph(c *Cluster, path string, g *graph.Graph) error {
	w, err := c.Create(path)
	if err != nil {
		return err
	}
	if err := graph.WriteText(w, g); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// LoadGraph reads a graph from the DFS, preferring replicas on the hinted
// datanode.
func LoadGraph(c *Cluster, path string, localHint int) (*graph.Graph, error) {
	r, err := c.Open(path, localHint)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return graph.ReadText(r)
}

// SaveRecords dumps job output records one per line (Worker::output in
// Listing 1 "dump results to HDFS").
func SaveRecords(c *Cluster, path string, records []string) error {
	w, err := c.Create(path)
	if err != nil {
		return err
	}
	for _, rec := range records {
		if _, err := io.WriteString(w, rec+"\n"); err != nil {
			w.Close()
			return err
		}
	}
	return w.Close()
}

// LoadRecords reads records written by SaveRecords.
func LoadRecords(c *Cluster, path string) ([]string, error) {
	r, err := c.Open(path, -1)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var out []string
	start := 0
	for i, b := range data {
		if b == '\n' {
			out = append(out, string(data[start:i]))
			start = i + 1
		}
	}
	if start < len(data) {
		return nil, fmt.Errorf("dfs: records file not newline-terminated")
	}
	return out, nil
}
