// Package dfs is a miniature distributed file system standing in for the
// HDFS deployment the paper uses as persistent storage (§5.1: "We use
// HDFS as the underlying persistent storage"; graphs are loaded from it,
// results are dumped to it, and checkpoints are stored on it).
//
// The design mirrors HDFS at the block level: a namenode maps each file
// to a sequence of fixed-size blocks, each block is replicated on R
// datanodes, writers stream through a replication pipeline, and readers
// prefer a local replica (locality hint) with automatic failover to other
// replicas when a datanode is down. Everything runs in process; datanodes
// persist to directories when configured, or to memory for tests.
package dfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"gminer/internal/metrics"
)

// ErrNotFound is returned for missing files.
var ErrNotFound = errors.New("dfs: file not found")

// ErrNoReplica is returned when every datanode holding a block is down.
var ErrNoReplica = errors.New("dfs: no live replica")

// Config configures a DFS cluster.
type Config struct {
	// DataNodes is the number of datanodes (default 3).
	DataNodes int
	// Replication is the replica count per block (default 2, capped at
	// DataNodes).
	Replication int
	// BlockSize is the block size in bytes (default 1 MiB).
	BlockSize int
	// Dir, when set, persists datanode blocks under Dir/dn-<i>/;
	// otherwise blocks live in memory.
	Dir string
	// Counters, if non-nil, receives disk-traffic accounting.
	Counters *metrics.Counters
}

func (c Config) defaults() Config {
	if c.DataNodes <= 0 {
		c.DataNodes = 3
	}
	if c.Replication <= 0 {
		c.Replication = 2
	}
	if c.Replication > c.DataNodes {
		c.Replication = c.DataNodes
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 1 << 20
	}
	return c
}

// blockID identifies one stored block.
type blockID struct {
	file string
	seq  int
}

// fileEntry is the namenode's record of one file.
type fileEntry struct {
	blocks   int
	size     int64
	replicas map[int][]int // block seq → datanode ids
}

// Cluster is an in-process DFS: one namenode plus N datanodes.
type Cluster struct {
	cfg Config

	mu    sync.Mutex
	files map[string]*fileEntry
	nodes []*datanode
	next  int // round-robin placement cursor
}

// New creates a DFS cluster.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.defaults()
	c := &Cluster{cfg: cfg, files: make(map[string]*fileEntry)}
	for i := 0; i < cfg.DataNodes; i++ {
		dn := &datanode{id: i, counters: cfg.Counters}
		if cfg.Dir != "" {
			dn.dir = filepath.Join(cfg.Dir, fmt.Sprintf("dn-%d", i))
			if err := os.MkdirAll(dn.dir, 0o755); err != nil {
				return nil, fmt.Errorf("dfs: %w", err)
			}
		} else {
			dn.mem = make(map[string][]byte)
		}
		c.nodes = append(c.nodes, dn)
	}
	return c, nil
}

// Create opens a file for writing, replacing any existing file.
func (c *Cluster) Create(path string) (io.WriteCloser, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.files[path]; ok {
		c.deleteLocked(path, old)
	}
	c.files[path] = &fileEntry{replicas: make(map[int][]int)}
	return &fileWriter{c: c, path: path}, nil
}

// Open opens a file for reading. localHint, if in range, names the
// datanode whose replicas should be preferred (HDFS short-circuit reads).
func (c *Cluster) Open(path string, localHint int) (io.ReadCloser, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	entry, ok := c.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return &fileReader{c: c, path: path, blocks: entry.blocks, hint: localHint}, nil
}

// Delete removes a file and its blocks.
func (c *Cluster) Delete(path string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	entry, ok := c.files[path]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	c.deleteLocked(path, entry)
	return nil
}

func (c *Cluster) deleteLocked(path string, entry *fileEntry) {
	for seq, nodes := range entry.replicas {
		for _, n := range nodes {
			c.nodes[n].delete(blockKey(path, seq))
		}
	}
	delete(c.files, path)
}

// List returns all file paths with the given prefix, sorted.
func (c *Cluster) List(prefix string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for p := range c.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Stat returns a file's size.
func (c *Cluster) Stat(path string) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	entry, ok := c.files[path]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return entry.size, nil
}

// KillDataNode simulates a datanode crash: its blocks become unreadable
// until Revive.
func (c *Cluster) KillDataNode(i int) { c.nodes[i].setDown(true) }

// Revive brings a killed datanode back (its stored blocks reappear).
func (c *Cluster) Revive(i int) { c.nodes[i].setDown(false) }

// placeBlock picks Replication distinct datanodes round-robin, skipping
// downed nodes when possible (HDFS placement is rack-aware; round-robin
// preserves the load-spreading property that matters here).
func (c *Cluster) placeBlock() []int {
	var out []int
	tried := 0
	for len(out) < c.cfg.Replication && tried < 2*len(c.nodes) {
		n := c.next % len(c.nodes)
		c.next++
		tried++
		if c.nodes[n].isDown() && tried <= len(c.nodes) {
			continue
		}
		dup := false
		for _, o := range out {
			if o == n {
				dup = true
			}
		}
		if !dup {
			out = append(out, n)
		}
	}
	return out
}

func blockKey(path string, seq int) string {
	return fmt.Sprintf("%s#%d", path, seq)
}

// fileWriter streams data into fixed-size replicated blocks.
type fileWriter struct {
	c      *Cluster
	path   string
	buf    []byte
	closed bool
}

// Write implements io.Writer.
func (w *fileWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("dfs: write after close")
	}
	w.buf = append(w.buf, p...)
	for len(w.buf) >= w.c.cfg.BlockSize {
		if err := w.flushBlock(w.buf[:w.c.cfg.BlockSize]); err != nil {
			return 0, err
		}
		w.buf = w.buf[w.c.cfg.BlockSize:]
	}
	return len(p), nil
}

// Close flushes the trailing partial block and seals the file.
func (w *fileWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if len(w.buf) > 0 {
		if err := w.flushBlock(w.buf); err != nil {
			return err
		}
	}
	return nil
}

func (w *fileWriter) flushBlock(data []byte) error {
	c := w.c
	c.mu.Lock()
	entry, ok := c.files[w.path]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s deleted during write", ErrNotFound, w.path)
	}
	seq := entry.blocks
	nodes := c.placeBlock()
	entry.blocks++
	entry.size += int64(len(data))
	entry.replicas[seq] = nodes
	c.mu.Unlock()

	// Replication pipeline: every replica receives the block.
	key := blockKey(w.path, seq)
	for _, n := range nodes {
		if err := c.nodes[n].put(key, data); err != nil {
			return err
		}
	}
	return nil
}

// fileReader streams a file's blocks, preferring the hinted replica.
type fileReader struct {
	c      *Cluster
	path   string
	blocks int
	hint   int
	seq    int
	cur    []byte
}

// Read implements io.Reader.
func (r *fileReader) Read(p []byte) (int, error) {
	for len(r.cur) == 0 {
		if r.seq >= r.blocks {
			return 0, io.EOF
		}
		data, err := r.readBlock(r.seq)
		if err != nil {
			return 0, err
		}
		r.cur = data
		r.seq++
	}
	n := copy(p, r.cur)
	r.cur = r.cur[n:]
	return n, nil
}

// Close implements io.Closer.
func (r *fileReader) Close() error { return nil }

func (r *fileReader) readBlock(seq int) ([]byte, error) {
	c := r.c
	c.mu.Lock()
	entry, ok := c.files[r.path]
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNotFound, r.path)
	}
	nodes := append([]int(nil), entry.replicas[seq]...)
	c.mu.Unlock()

	// Locality: try the hinted node first, then the other replicas.
	sort.SliceStable(nodes, func(i, j int) bool {
		return nodes[i] == r.hint && nodes[j] != r.hint
	})
	key := blockKey(r.path, seq)
	for _, n := range nodes {
		data, err := c.nodes[n].get(key)
		if err == nil {
			return data, nil
		}
	}
	return nil, fmt.Errorf("dfs: block %s: %w", key, ErrNoReplica)
}

// datanode stores blocks in memory or under a directory.
type datanode struct {
	id       int
	dir      string
	counters *metrics.Counters

	mu   sync.Mutex
	mem  map[string][]byte
	down bool
}

var errDown = errors.New("dfs: datanode down")

func (d *datanode) setDown(v bool) {
	d.mu.Lock()
	d.down = v
	d.mu.Unlock()
}

func (d *datanode) isDown() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.down
}

func (d *datanode) put(key string, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.down {
		return errDown
	}
	if d.counters != nil {
		d.counters.AddDiskWrite(int64(len(data)))
	}
	if d.mem != nil {
		d.mem[key] = append([]byte(nil), data...)
		return nil
	}
	return os.WriteFile(d.path(key), data, 0o644)
}

func (d *datanode) get(key string) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.down {
		return nil, errDown
	}
	var data []byte
	var err error
	if d.mem != nil {
		b, ok := d.mem[key]
		if !ok {
			err = fmt.Errorf("dfs: dn-%d: block %s missing", d.id, key)
		}
		data = b
	} else {
		data, err = os.ReadFile(d.path(key))
	}
	if err != nil {
		return nil, err
	}
	if d.counters != nil {
		d.counters.AddDiskRead(int64(len(data)))
	}
	return data, nil
}

func (d *datanode) delete(key string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.mem != nil {
		delete(d.mem, key)
		return
	}
	_ = os.Remove(d.path(key))
}

func (d *datanode) path(key string) string {
	safe := strings.NewReplacer("/", "_", "#", "_").Replace(key)
	return filepath.Join(d.dir, safe)
}
