package cluster

import (
	"time"

	"gminer/internal/cache"
	"gminer/internal/chaos"
	"gminer/internal/memctl"
	"gminer/internal/partition"
	"gminer/internal/trace"
)

// Config controls a G-Miner job. Zero values are filled by Defaults.
type Config struct {
	// Workers is the number of worker nodes (the paper's slaves).
	Workers int
	// Threads is the number of computing threads per worker (the task
	// executor's thread pool, §4.3).
	Threads int

	// JobID namespaces everything a job owns when many jobs share a
	// process: spill and checkpoint directories, metrics labels and log
	// lines. Sessions assign one automatically; empty means single-shot
	// mode, whose on-disk layout is unchanged.
	JobID string

	// MemBudget, if non-nil, bounds the job-owned memory across all
	// workers (task store + RCV cache; the resident graph is not charged —
	// in a serving deployment it is shared by every job). Exceeding the
	// budget cancels the job with an error wrapping memctl.ErrOOM instead
	// of letting one greedy job take down co-resident ones.
	MemBudget *memctl.Budget

	// CacheCapacity is the RCV cache size in vertices per worker.
	CacheCapacity int
	// CacheShards is the RCV cache shard count per worker (rounded down
	// to a power of two). 1 reproduces the paper's single-lock cache;
	// higher counts let executor threads and the pull-response path work
	// on disjoint shards without contending. Default cache.DefaultShards.
	CacheShards int
	// StoreMemCapacity is the number of inactive tasks a worker keeps in
	// memory before the task store spills blocks to disk.
	StoreMemCapacity int
	// StoreBlockCapacity is the number of tasks per spilled block.
	StoreBlockCapacity int
	// SpillDir is the directory for spilled task blocks; empty keeps
	// blocks in accounted memory buffers (tests, benchmarks).
	SpillDir string

	// UseLSH orders the task priority queue by minhash signatures of
	// to_pull sets (§7). Disabling reproduces Dis-LSH in Figure 12.
	UseLSH bool
	// LSHDims is the signature dimension (default 4).
	LSHDims int

	// Stealing enables dynamic load balancing by task stealing (§6.2).
	Stealing bool
	// StealBatch is Tnum, the number of tasks migrated per MIGRATE.
	StealBatch int
	// StealCostMax is Tc: only tasks with c(t) = |subG|+|cand| < Tc move.
	StealCostMax int
	// StealLocalityMax is Tr: only tasks with lr(t) < Tr move.
	StealLocalityMax float64
	// StealPolicy overrides the Eq. 2/3 cost model (nil: CostPolicy built
	// from StealCostMax/StealLocalityMax). Policies implementing
	// TaskObserver are fed completed-task costs.
	StealPolicy StealPolicy

	// DisablePlans forces algorithms onto their generic exploration paths
	// instead of compiled execution plans + intersection kernels: no CSR
	// index is built and KernelConfigurable algorithms are told to stay
	// generic. The generic path is the differential baseline — results must
	// be byte-identical either way; this flag exists for that comparison
	// and as an escape hatch.
	DisablePlans bool

	// EagerSeeding generates every seed task before processing starts
	// (the paper's behavior; §9 lists it as an overhead). When false,
	// seeds stream into the pipeline with backpressure.
	EagerSeeding bool

	// ProgressInterval is the progress-report period.
	ProgressInterval time.Duration
	// CheckpointEvery takes a checkpoint each interval; 0 disables.
	CheckpointEvery time.Duration
	// CheckpointDir stores checkpoint files (empty: in-memory snapshots).
	CheckpointDir string
	// CheckpointQuiesceTimeout bounds how long a worker waits for its
	// pipeline to quiesce before skipping a checkpoint epoch (default 10s).
	CheckpointQuiesceTimeout time.Duration
	// Resume restores the whole job from the newest committed epoch in
	// CheckpointDir instead of starting from scratch. The manifest's job
	// fingerprint (graph, algorithm, worker count, partitioner) must match
	// or Start refuses.
	Resume bool
	// FailTimeout marks a worker dead after this silence; 0 disables
	// failure detection.
	FailTimeout time.Duration

	// PullRetryBase is the initial wait before re-issuing an unanswered
	// pull request; retries back off exponentially (with jitter) up to
	// PullRetryMax. Defaults scale with ProgressInterval.
	PullRetryBase time.Duration
	PullRetryMax  time.Duration

	// Chaos, if non-nil, wraps every node's endpoint with the seeded
	// fault-injection layer (internal/chaos) and executes the profile's
	// crash schedule against live workers. Crash entries require the
	// local transport (UseTCP false).
	Chaos *chaos.Controller

	// Partitioner distributes vertices to workers; default BDG (§6.1).
	Partitioner partition.Partitioner

	// Dynamic enables graph mutations on a Session (ApplyMutations and
	// the graph-epoch machinery). Requires the block-decomposable
	// partition.Blocked partitioner — the only one whose incremental
	// re-placement provably equals a from-scratch partition. Single-shot
	// jobs and RemoteSessions reject it.
	Dynamic bool
	// GraphEpoch stamps the graph epoch a job runs at. Sessions set it at
	// Launch; it folds into the job fingerprint so a checkpoint taken
	// against one epoch can never resume against another shape of the
	// graph, and the serving result cache dies with the epoch.
	GraphEpoch int64

	// Latency and BandwidthBps configure the simulated network.
	Latency      time.Duration
	BandwidthBps int64
	// UseTCP runs the job over real loopback TCP sockets instead of the
	// in-process network.
	UseTCP bool

	// SampleEvery enables utilization timeline sampling (Figures 5–6)
	// with the given period; 0 disables.
	SampleEvery time.Duration

	// Tracer records structured pipeline events and latency histograms
	// (internal/trace). Nil disables all tracing at zero hot-path cost;
	// a constructed-but-disabled tracer costs one atomic load per probe.
	// Create it with trace.New(Workers+1, ...) so the master has a ring.
	Tracer *trace.Tracer

	// RoundHook, if non-nil, is called by the master once per scheduling
	// round (every ProgressInterval tick) with the round number, from the
	// master goroutine. It is the cooperative-preemption point the serving
	// layer uses to stop over-budget or past-deadline jobs at a round
	// boundary: the hook may call Job.CancelCause, which only closes a
	// channel, so it is safe from here. Keep it fast — it runs on the
	// master's control loop.
	RoundHook func(round int64)

	// PullServeWorkers is the size of the per-worker pool serving
	// incoming pull requests. With 1, responses are encoded inline on the
	// communication loop (the paper's request listener); more workers
	// stop one large neighborhood read from head-of-line-blocking every
	// other requester's response.
	PullServeWorkers int

	// MaxPendingPulls bounds tasks waiting in the CMQ per worker.
	MaxPendingPulls int
	// CPQHighWater bounds the ready-task computation queue per worker.
	CPQHighWater int
	// BufferFlush is the task-buffer batch size (§4.3: "inserted into the
	// task store in batches").
	BufferFlush int
}

// Defaults fills unset fields with production defaults.
func (c Config) Defaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Threads <= 0 {
		c.Threads = 4
	}
	if c.CacheCapacity <= 0 {
		c.CacheCapacity = 8192
	}
	if c.CacheShards <= 0 {
		c.CacheShards = cache.DefaultShards
	}
	if c.PullServeWorkers <= 0 {
		c.PullServeWorkers = 4
	}
	if c.StoreMemCapacity <= 0 {
		c.StoreMemCapacity = 8192
	}
	if c.StoreBlockCapacity <= 0 {
		c.StoreBlockCapacity = c.StoreMemCapacity / 4
	}
	if c.LSHDims <= 0 {
		c.LSHDims = 4
	}
	if c.StealBatch <= 0 {
		c.StealBatch = 32
	}
	if c.StealCostMax <= 0 {
		c.StealCostMax = 4096
	}
	if c.StealLocalityMax <= 0 {
		c.StealLocalityMax = 0.9
	}
	if c.ProgressInterval <= 0 {
		c.ProgressInterval = 2 * time.Millisecond
	}
	if c.CheckpointQuiesceTimeout <= 0 {
		c.CheckpointQuiesceTimeout = 10 * time.Second
	}
	if c.PullRetryBase <= 0 {
		// First retry after ~30 report periods: late enough that a slow
		// response usually wins the race, early enough that a lost batch
		// does not stall the CMQ window for long.
		c.PullRetryBase = 30 * c.ProgressInterval
	}
	if c.PullRetryMax <= 0 {
		c.PullRetryMax = 16 * c.PullRetryBase
	}
	if c.Partitioner == nil {
		c.Partitioner = partition.BDG{}
	}
	if c.MaxPendingPulls <= 0 {
		// The CMQ window pins remote candidates in the cache; it must stay
		// a fraction of the cache or the RCV ordering cannot pay off.
		c.MaxPendingPulls = c.CacheCapacity / 16
		if c.MaxPendingPulls < 16 {
			c.MaxPendingPulls = 16
		}
		if c.MaxPendingPulls > 256 {
			c.MaxPendingPulls = 256
		}
	}
	if c.CPQHighWater <= 0 {
		c.CPQHighWater = 4 * c.Threads * 8
		if max := c.CacheCapacity / 16; c.CPQHighWater > max && max >= 8 {
			c.CPQHighWater = max
		}
	}
	if c.BufferFlush <= 0 {
		c.BufferFlush = 64
	}
	return c
}
