package cluster

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"gminer/internal/chaos"
	"gminer/internal/core"
	"gminer/internal/graph"
	"gminer/internal/metrics"
	"gminer/internal/partition"
	"gminer/internal/trace"
	"gminer/internal/transport"
)

// Result summarizes a finished job.
type Result struct {
	// Records are all emitted output records, merged across workers and
	// sorted for determinism.
	Records []string
	// AggGlobal is the final merged aggregator value (nil if none).
	AggGlobal any
	// Elapsed is the mining time (excludes partitioning).
	Elapsed time.Duration
	// PartitionTime is the static partitioning time (Figure 11 reports it
	// separately from job time).
	PartitionTime time.Duration
	// PerWorker holds each worker's final counters; Total is their sum
	// (plus the master's traffic).
	PerWorker []metrics.Snapshot
	Total     metrics.Snapshot
	// Timeline is the cluster-wide utilization timeline when sampling was
	// enabled (Figures 5–6).
	Timeline []metrics.TimelinePoint
	// EdgeCut is the partitioning edge-cut fraction.
	EdgeCut float64
	// Recovered counts worker recoveries during the run.
	Recovered int
	// Phases holds the tracer's per-phase latency percentiles (task
	// round, pull RTT, spill I/O, migration, checkpoint) when a tracer
	// was attached via Config.Tracer; nil otherwise.
	Phases []trace.PhaseSummary
}

// CPUUtil returns the average computing-thread utilization of the run.
func (r *Result) CPUUtil(cfg Config) float64 {
	return r.Total.CPUUtil(r.Elapsed, cfg.Workers*cfg.Threads)
}

// Job is a running G-Miner job.
type Job struct {
	cfg    Config
	g      *graph.Graph
	algo   core.Algorithm
	assign *partition.Assignment

	netLocal *transport.LocalNetwork
	netTCP   *transport.TCPNetwork

	workers  []*Worker
	workerMu sync.Mutex
	master   *master
	sink     *snapshotSink

	counters []*metrics.Counters // one per node (workers + master)
	sampler  *metrics.Sampler

	partitionTime time.Duration
	started       time.Time
	failures      chan int
	recovered     int
	autoRecover   bool

	waitOnce sync.Once
	result   *Result
	err      error
}

// Start partitions the graph and launches the cluster. The graph must be
// frozen.
func Start(g *graph.Graph, algo core.Algorithm, cfg Config) (*Job, error) {
	cfg = cfg.Defaults()
	if !g.Frozen() {
		return nil, fmt.Errorf("cluster: graph must be frozen")
	}
	j := &Job{cfg: cfg, g: g, algo: algo, failures: make(chan int, cfg.Workers)}

	pStart := time.Now()
	assign, err := cfg.Partitioner.Partition(g, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("cluster: partition: %w", err)
	}
	j.partitionTime = time.Since(pStart)
	j.assign = assign

	nodes := cfg.Workers + 1 // + master
	j.counters = make([]*metrics.Counters, nodes)
	for i := range j.counters {
		j.counters[i] = &metrics.Counters{}
	}

	endpoints := make([]transport.Endpoint, nodes)
	if cfg.UseTCP {
		tn, err := transport.NewTCP(nodes, j.counters)
		if err != nil {
			return nil, err
		}
		tn.SetTracer(cfg.Tracer)
		j.netTCP = tn
		for i := 0; i < nodes; i++ {
			endpoints[i] = tn.Endpoint(i)
		}
	} else {
		ln := transport.NewLocal(transport.LocalConfig{
			Nodes:        nodes,
			Latency:      cfg.Latency,
			BandwidthBps: cfg.BandwidthBps,
			Counters:     j.counters,
			Tracer:       cfg.Tracer,
		})
		j.netLocal = ln
		for i := 0; i < nodes; i++ {
			endpoints[i] = ln.Endpoint(i)
		}
	}

	if cfg.Chaos != nil && cfg.Chaos.Profile().Active() {
		if cfg.UseTCP && len(cfg.Chaos.Crashes()) > 0 {
			return nil, fmt.Errorf("cluster: chaos crash windows require the local transport")
		}
		// Task migration payloads carry the tasks themselves: the protocol
		// has no ack/retransmit for them, so a dropped or duplicated
		// msgTasks would lose or double-count work with no recovery path
		// (the same hole the paper's checkpointing closes for crashes).
		// Fault everything else.
		cfg.Chaos.Exempt(msgTasks)
		cfg.Chaos.SetTracer(cfg.Tracer)
		cfg.Chaos.Begin()
		for i := range endpoints {
			endpoints[i] = cfg.Chaos.Wrap(endpoints[i])
		}
	}

	sink, err := newSnapshotSink(cfg.CheckpointDir)
	if err != nil {
		return nil, err
	}
	j.sink = sink

	var agg core.Aggregator
	if ap, ok := algo.(core.AggregatorProvider); ok {
		agg = ap.Aggregator()
	}
	j.master = newMaster(cfg, endpoints[cfg.Workers], agg, j.counters[cfg.Workers], j.failures)

	j.workers = make([]*Worker, cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		w, err := newWorker(i, cfg, algo, g, assign, endpoints[i], j.counters[i], sink, nil)
		if err != nil {
			return nil, err
		}
		j.workers[i] = w
	}

	if cfg.SampleEvery > 0 {
		j.sampler = metrics.NewSampler(cfg.SampleEvery, cfg.Workers*cfg.Threads, j.counters[:cfg.Workers]...)
		j.sampler.Start()
	}

	j.started = time.Now()
	for _, w := range j.workers {
		w.start()
	}
	go j.master.run()
	if cfg.FailTimeout > 0 {
		j.autoRecover = true
		go j.recoveryLoop()
	}
	if cfg.Chaos != nil {
		for _, cr := range cfg.Chaos.Crashes() {
			if cr.Node < 0 || cr.Node >= cfg.Workers {
				continue
			}
			go j.runCrash(cr)
		}
	}
	return j, nil
}

// runCrash executes one scheduled chaos crash: kill the worker at cr.At,
// then bring it back — after cr.RecoverAfter if set, via the failure
// detector's recovery loop if one is running, or after a short fallback
// delay so an unattended run still terminates.
func (j *Job) runCrash(cr chaos.Crash) {
	t := time.NewTimer(cr.At)
	defer t.Stop()
	select {
	case <-j.master.doneCh:
		return
	case <-t.C:
	}
	j.KillWorker(cr.Node)
	wait := cr.RecoverAfter
	if wait <= 0 {
		if j.autoRecover {
			return
		}
		wait = 25 * j.cfg.ProgressInterval
	}
	t2 := time.NewTimer(wait)
	defer t2.Stop()
	select {
	case <-j.master.doneCh:
		return
	case <-t2.C:
	}
	_ = j.RecoverWorker(cr.Node)
}

// Run starts a job and waits for its result.
func Run(g *graph.Graph, algo core.Algorithm, cfg Config) (*Result, error) {
	j, err := Start(g, algo, cfg)
	if err != nil {
		return nil, err
	}
	return j.Wait()
}

// KillWorker simulates a crash of worker i: its goroutines stop without
// flushing anything, its mailbox is wiped (in-flight messages to it are
// lost) and it stops serving pull requests until recovered. Only
// supported on the local transport.
func (j *Job) KillWorker(i int) {
	j.workerMu.Lock()
	w := j.workers[i]
	j.workerMu.Unlock()
	w.kill()
	if j.netLocal != nil {
		j.netLocal.Reset(i)
	}
}

// RecoverWorker replaces a killed worker with a fresh one restored from
// its last checkpoint (or from scratch if none was taken).
func (j *Job) RecoverWorker(i int) error {
	snap, err := j.sink.get(i)
	if err != nil {
		return err
	}
	var ep transport.Endpoint
	if j.netLocal != nil {
		ep = j.netLocal.Endpoint(i)
	} else {
		return fmt.Errorf("cluster: recovery requires the local transport")
	}
	// The replacement worker must see the same faulty network the rest of
	// the cluster does.
	if j.cfg.Chaos != nil {
		ep = j.cfg.Chaos.Wrap(ep)
	}
	w, err := newWorker(i, j.cfg, j.algo, j.g, j.assign, ep, j.counters[i], j.sink, snap)
	if err != nil {
		return err
	}
	j.workerMu.Lock()
	j.workers[i] = w
	j.recovered++
	j.workerMu.Unlock()
	w.start()
	return nil
}

// recoveryLoop respawns workers flagged dead by the master's failure
// detector.
func (j *Job) recoveryLoop() {
	for {
		select {
		case <-j.master.doneCh:
			return
		case i := <-j.failures:
			j.workerMu.Lock()
			alreadyDead := j.workers[i].killed.Load()
			j.workerMu.Unlock()
			if alreadyDead {
				_ = j.RecoverWorker(i)
			}
		}
	}
}

// Wait blocks until the job terminates and returns the merged result.
func (j *Job) Wait() (*Result, error) {
	j.waitOnce.Do(func() {
		<-j.master.doneCh
		elapsed := time.Since(j.started)

		j.workerMu.Lock()
		workers := append([]*Worker(nil), j.workers...)
		recovered := j.recovered
		j.workerMu.Unlock()

		for _, w := range workers {
			w.stop()
		}
		if j.netLocal != nil {
			j.netLocal.Close()
		}
		if j.netTCP != nil {
			j.netTCP.Close()
		}
		for _, w := range workers {
			w.wg.Wait()
			w.spiller.Close()
		}

		res := &Result{
			Elapsed:       elapsed,
			PartitionTime: j.partitionTime,
			EdgeCut:       j.assign.EdgeCut(j.g),
			AggGlobal:     j.master.globalAgg(),
			Recovered:     recovered,
		}
		for _, w := range workers {
			res.Records = append(res.Records, w.takeResults()...)
		}
		sort.Strings(res.Records)
		for i := 0; i <= j.cfg.Workers; i++ {
			snap := j.counters[i].Snapshot()
			if i < j.cfg.Workers {
				res.PerWorker = append(res.PerWorker, snap)
			}
			res.Total = res.Total.Add(snap)
		}
		if j.sampler != nil {
			res.Timeline = j.sampler.Stop()
		}
		res.Phases = j.cfg.Tracer.Summary()
		j.result = res
	})
	return j.result, j.err
}

// Stop aborts a running job.
func (j *Job) Stop() {
	j.master.stop()
}

// WorkerSnapshots returns the current per-worker counters (live view for
// monitoring; implements monitor.Source).
func (j *Job) WorkerSnapshots() []metrics.Snapshot {
	out := make([]metrics.Snapshot, j.cfg.Workers)
	for i := 0; i < j.cfg.Workers; i++ {
		out[i] = j.counters[i].Snapshot()
	}
	return out
}

// Tracer returns the tracer attached via Config.Tracer (nil if none).
func (j *Job) Tracer() *trace.Tracer { return j.cfg.Tracer }

// Done reports whether the job has terminated.
func (j *Job) Done() bool {
	select {
	case <-j.master.doneCh:
		return true
	default:
		return false
	}
}
