package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"gminer/internal/chaos"
	"gminer/internal/core"
	"gminer/internal/graph"
	"gminer/internal/kernels"
	"gminer/internal/metrics"
	"gminer/internal/partition"
	"gminer/internal/trace"
	"gminer/internal/transport"
)

// ErrCancelled is returned by Wait when the job was cancelled (Cancel, a
// serving-layer admission decision, or a memory-budget abort — the latter
// also wraps memctl.ErrOOM).
var ErrCancelled = errors.New("cluster: job cancelled")

// Result summarizes a finished job.
type Result struct {
	// Records are all emitted output records, merged across workers and
	// sorted for determinism.
	Records []string
	// AggGlobal is the final merged aggregator value (nil if none).
	AggGlobal any
	// Elapsed is the mining time (excludes partitioning).
	Elapsed time.Duration
	// PartitionTime is the static partitioning time (Figure 11 reports it
	// separately from job time).
	PartitionTime time.Duration
	// PerWorker holds each worker's final counters; Total is their sum
	// (plus the master's traffic).
	PerWorker []metrics.Snapshot
	Total     metrics.Snapshot
	// Timeline is the cluster-wide utilization timeline when sampling was
	// enabled (Figures 5–6).
	Timeline []metrics.TimelinePoint
	// EdgeCut is the partitioning edge-cut fraction.
	EdgeCut float64
	// Recovered counts worker recoveries during the run.
	Recovered int
	// LastCheckpointErr is the most recent checkpoint persist/commit
	// failure observed during the run (nil when every epoch landed). The
	// job still completes — durability degraded, correctness did not — but
	// callers relying on -resume must know their snapshots may be stale.
	LastCheckpointErr error
	// Phases holds the tracer's per-phase latency percentiles (task
	// round, pull RTT, spill I/O, migration, checkpoint) when a tracer
	// was attached via Config.Tracer; nil otherwise.
	Phases []trace.PhaseSummary
}

// CPUUtil returns the average computing-thread utilization of the run.
func (r *Result) CPUUtil(cfg Config) float64 {
	return r.Total.CPUUtil(r.Elapsed, cfg.Workers*cfg.Threads)
}

// Job is a running G-Miner job.
type Job struct {
	cfg    Config
	g      *graph.Graph
	algo   core.Algorithm
	assign *partition.Assignment
	locals []*localTable // prebuilt partition views (session jobs); nil entries are built on demand

	netLocal *transport.LocalNetwork
	netTCP   *transport.TCPNetwork
	// release tears down transport state the job borrowed rather than owns
	// (a Session's mux channel); called during Wait after the workers stop.
	release func()
	// retire runs at the very end of Wait's teardown, after the result —
	// which still reads the shared graph — has been assembled. A dynamic
	// Session drops the job's graph-epoch read lease here, so a pending
	// mutation batch can only apply once no job is touching the graph.
	retire func()

	workers  []*Worker
	workerMu sync.Mutex
	master   *master
	sink     *snapshotSink

	counters []*metrics.Counters // one per node (workers + master)
	sampler  *metrics.Sampler

	// remote is set when the job's workers live in other processes
	// (RemoteSession): no local Worker structs exist and the final records
	// arrive over the control channel instead of takeResults.
	remote *remoteJobState
	// fence is the coordinator's fencing-token ledger (nil outside
	// multi-process mode), shared with the master and snapshot sink.
	fence *fenceTable

	partitionTime time.Duration
	started       time.Time
	failures      chan int
	recovered     int
	autoRecover   bool

	cancelOnce sync.Once
	cancelMu   sync.Mutex
	cancelErr  error

	waitOnce sync.Once
	result   *Result
	err      error
}

// launchEnv carries resources a Session already holds warm, so a job can
// launch without re-partitioning the graph, rebuilding per-worker vertex
// tables, or creating its own network. nil means single-shot mode: the job
// builds (and owns) everything itself.
type launchEnv struct {
	assign        *partition.Assignment
	partitionTime time.Duration
	locals        []*localTable
	endpoints     []transport.Endpoint
	counters      []*metrics.Counters
	release       func()
	// csr is the session's prebuilt degree-ranked adjacency index, shared
	// read-only by every job on the resident graph (nil when the session
	// disabled plans; a single-shot job builds its own).
	csr *kernels.CSR
	// remote, when non-nil, marks the workers as living in other
	// processes: startWithEnv builds only the master and Wait collects
	// worker results through this state instead of local Worker structs.
	remote *remoteJobState
	// fence is the coordinator's fencing-token ledger (nil outside
	// multi-process mode): the master and snapshot sink consult it to
	// refuse checkpoint acks from fenced-out worker generations.
	fence *fenceTable
	// retire, see Job.retire.
	retire func()
}

// remoteJobState gathers the per-worker results a multi-process job ships
// over the control channel when each worker-process finishes the job.
type remoteJobState struct {
	timeout time.Duration
	// fence, when set, gates completion on result generations: a draining
	// worker ships a partial result at detach, and the job must not look
	// complete until the replacement (at a later generation) supersedes it.
	fence *fenceTable

	mu       sync.Mutex
	records  map[int][]string
	counters map[int]metrics.Snapshot
	ckptErrs map[int]string
	gens     map[int]int64 // generation each worker's delivery arrived with
	need     int
	done     chan struct{}
}

// remoteStateWithFence builds the collector with the coordinator's
// fencing ledger attached (the multi-process session path).
func remoteStateWithFence(workers int, timeout time.Duration, fence *fenceTable) *remoteJobState {
	r := newRemoteJobState(workers, timeout)
	r.fence = fence
	return r
}

func newRemoteJobState(workers int, timeout time.Duration) *remoteJobState {
	return &remoteJobState{
		timeout:  timeout,
		records:  make(map[int][]string),
		counters: make(map[int]metrics.Snapshot),
		ckptErrs: make(map[int]string),
		gens:     make(map[int]int64),
		need:     workers,
		done:     make(chan struct{}),
	}
}

// deliver records one worker's shipped result. A replacement worker for
// the same node supersedes an earlier delivery (the engine's termination
// rule guarantees the final, complete instance reports last). Completion
// requires a delivery from every worker AND that none of them has since
// been fenced out — a detaching worker's partial result holds its slot's
// place but can never satisfy the job by itself.
func (r *remoteJobState) deliver(m *jobResultMsg) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.records[m.Worker] = m.Records
	r.counters[m.Worker] = m.Counters
	r.ckptErrs[m.Worker] = m.CkptErr
	r.gens[m.Worker] = m.Gen
	if len(r.records) == r.need {
		for w, g := range r.gens {
			if r.fence.stale(w, g) {
				return
			}
		}
		select {
		case <-r.done:
		default:
			close(r.done)
		}
	}
}

// await blocks until every worker delivered or the timeout passes. The
// returned maps are safe to read: delivery is over once done is closed,
// and on timeout the caller is failing the job anyway.
func (r *remoteJobState) await() error {
	select {
	case <-r.done:
		return nil
	case <-time.After(r.timeout):
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	missing := make([]int, 0, r.need)
	for i := 0; i < r.need; i++ {
		if _, ok := r.records[i]; !ok {
			missing = append(missing, i)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	return fmt.Errorf("cluster: remote job: no result from workers %v within %s", missing, r.timeout)
}

// Start partitions the graph and launches the cluster. The graph must be
// frozen.
func Start(g *graph.Graph, algo core.Algorithm, cfg Config) (*Job, error) {
	return startWithEnv(g, algo, cfg, nil)
}

func startWithEnv(g *graph.Graph, algo core.Algorithm, cfg Config, env *launchEnv) (*Job, error) {
	cfg = cfg.Defaults()
	if !g.Frozen() {
		return nil, fmt.Errorf("cluster: graph must be frozen")
	}
	if cfg.Dynamic && env == nil {
		return nil, fmt.Errorf("cluster: graph mutations need a warm Session (Config.Dynamic is meaningless for a single-shot job)")
	}
	j := &Job{cfg: cfg, g: g, algo: algo, failures: make(chan int, cfg.Workers)}

	// Configure the kernel layer before any seeding: plan-capable
	// algorithms get the CSR index (session-shared, or built here for
	// single-shot jobs) unless the config forces the generic baseline.
	if kc, ok := algo.(core.KernelConfigurable); ok {
		switch {
		case cfg.DisablePlans:
			kc.ConfigureKernels(nil, true)
		case env != nil && env.csr != nil:
			kc.ConfigureKernels(env.csr, false)
		default:
			csr, err := kernels.Build(g)
			if err != nil {
				return nil, fmt.Errorf("cluster: build CSR index: %w", err)
			}
			kc.ConfigureKernels(csr, false)
		}
	}
	if env != nil && env.remote != nil {
		j.remote = env.remote
		if cfg.Chaos != nil {
			return nil, fmt.Errorf("cluster: remote jobs do not support chaos injection")
		}
	}

	if env != nil && env.assign != nil {
		j.assign = env.assign
		j.partitionTime = env.partitionTime
		j.locals = env.locals
	} else {
		pStart := time.Now()
		assign, err := cfg.Partitioner.Partition(g, cfg.Workers)
		if err != nil {
			return nil, fmt.Errorf("cluster: partition: %w", err)
		}
		j.partitionTime = time.Since(pStart)
		j.assign = assign
	}

	nodes := cfg.Workers + 1 // + master
	if env != nil && env.counters != nil {
		j.counters = env.counters
	} else {
		j.counters = make([]*metrics.Counters, nodes)
		for i := range j.counters {
			j.counters[i] = &metrics.Counters{}
		}
	}

	var endpoints []transport.Endpoint
	switch {
	case env != nil && env.endpoints != nil:
		endpoints = env.endpoints
		j.release = env.release
		j.retire = env.retire
	case cfg.UseTCP:
		tn, err := transport.NewTCP(nodes, j.counters)
		if err != nil {
			return nil, err
		}
		tn.SetTracer(cfg.Tracer)
		j.netTCP = tn
		endpoints = make([]transport.Endpoint, nodes)
		for i := 0; i < nodes; i++ {
			endpoints[i] = tn.Endpoint(i)
		}
	default:
		ln := transport.NewLocal(transport.LocalConfig{
			Nodes:        nodes,
			Latency:      cfg.Latency,
			BandwidthBps: cfg.BandwidthBps,
			Counters:     j.counters,
			Tracer:       cfg.Tracer,
		})
		j.netLocal = ln
		endpoints = make([]transport.Endpoint, nodes)
		for i := 0; i < nodes; i++ {
			endpoints[i] = ln.Endpoint(i)
		}
	}

	if cfg.Chaos != nil && cfg.Chaos.Profile().Active() {
		// Task migration payloads carry the tasks themselves: the protocol
		// has no ack/retransmit for them, so a dropped or duplicated
		// msgTasks would lose or double-count work with no recovery path
		// (the same hole the paper's checkpointing closes for crashes).
		// Fault everything else.
		cfg.Chaos.Exempt(msgTasks)
		cfg.Chaos.SetTracer(cfg.Tracer)
		cfg.Chaos.Begin()
		for i := range endpoints {
			endpoints[i] = cfg.Chaos.Wrap(endpoints[i])
		}
	}

	if cfg.Resume && cfg.CheckpointDir == "" {
		return nil, fmt.Errorf("cluster: resume requires a checkpoint directory")
	}
	fingerprint := jobFingerprint(g, algo.Name(), cfg)
	sink, err := newSnapshotSink(cfg.CheckpointDir, cfg.Workers, fingerprint, 0, cfg.Resume)
	if err != nil {
		return nil, err
	}
	if env != nil && env.fence != nil {
		j.fence = env.fence
		sink.fence = env.fence
	}
	j.sink = sink

	resumeEpoch := noEpoch
	if cfg.Resume {
		man := sink.manifestView()
		if man == nil {
			return nil, fmt.Errorf("cluster: resume: no committed checkpoint in %s", cfg.CheckpointDir)
		}
		if man.Fingerprint != fingerprint {
			return nil, fmt.Errorf("cluster: resume: checkpoint fingerprint %016x does not match this job (%016x): "+
				"the graph, algorithm, worker count or partitioner changed since the checkpoint was taken",
				man.Fingerprint, fingerprint)
		}
		resumeEpoch = man.Epoch
	}

	var agg core.Aggregator
	if ap, ok := algo.(core.AggregatorProvider); ok {
		agg = ap.Aggregator()
	}
	j.master = newMaster(cfg, endpoints[cfg.Workers], agg, j.counters[cfg.Workers], j.failures, sink, j.fence)
	if resumeEpoch != noEpoch {
		// New epochs must supersede every committed one or the manifest's
		// newest-first ordering breaks.
		j.master.epoch = resumeEpoch
	}

	switch {
	case j.remote != nil:
		// The workers are other processes: the coordinator runs only the
		// master. They are told to start via the control channel after this
		// returns; their early traffic queues in the mux mailboxes.
	case cfg.Resume:
		j.workers, err = j.restoreAllWorkers(endpoints)
	default:
		j.workers, err = j.freshWorkers(endpoints)
	}
	if err != nil {
		return nil, err
	}

	if cfg.SampleEvery > 0 {
		j.sampler = metrics.NewSampler(cfg.SampleEvery, cfg.Workers*cfg.Threads, j.counters[:cfg.Workers]...)
		j.sampler.Start()
	}

	j.started = time.Now()
	for _, w := range j.workers {
		w.start()
	}
	go j.master.run()
	if cfg.FailTimeout > 0 && j.remote == nil {
		// In-process recovery respawns local Worker structs. A remote job
		// has none: the master still detects the failure, and recovery is a
		// replacement worker process rejoining through the coordinator.
		j.autoRecover = true
		go j.recoveryLoop()
	}
	if cfg.Chaos != nil {
		for _, cr := range cfg.Chaos.Crashes() {
			if cr.Node < 0 || cr.Node >= cfg.Workers {
				continue
			}
			go j.runCrash(cr)
		}
	}
	return j, nil
}

// localFor returns worker i's prebuilt partition view, nil if the job has
// none (single-shot mode builds the table inside newWorker).
func (j *Job) localFor(i int) *localTable {
	if j.locals != nil && i < len(j.locals) {
		return j.locals[i]
	}
	return nil
}

// budgetAbort cancels the job when a worker's memory charge exceeded the
// job's budget; co-resident jobs in the same session are untouched.
func (j *Job) budgetAbort(err error) {
	j.cancelWith(fmt.Errorf("%w: %w", ErrCancelled, err))
}

// freshWorkers builds every worker from scratch.
func (j *Job) freshWorkers(endpoints []transport.Endpoint) ([]*Worker, error) {
	ws := make([]*Worker, j.cfg.Workers)
	for i := 0; i < j.cfg.Workers; i++ {
		w, err := newWorker(i, j.cfg, j.algo, j.g, j.assign, j.localFor(i), endpoints[i], j.counters[i], j.sink, nil)
		if err != nil {
			releaseWorkers(ws)
			return nil, err
		}
		w.oomFn = j.budgetAbort
		ws[i] = w
	}
	return ws, nil
}

// restoreAllWorkers rebuilds the whole cluster from one committed epoch: a
// full-job resume must restore every worker from the SAME epoch (task
// stealing migrates tasks between epochs, so mixing epochs across workers
// could lose or duplicate tasks). The newest committed epoch whose every
// snapshot verifies and decodes wins; any bad file fails the epoch over to
// the previous committed one.
func (j *Job) restoreAllWorkers(endpoints []transport.Endpoint) ([]*Worker, error) {
	var lastErr error
	for _, epoch := range j.sink.committedEpochs() {
		ws := make([]*Worker, j.cfg.Workers)
		ok := true
		for i := 0; i < j.cfg.Workers; i++ {
			snap, err := j.sink.load(i, epoch)
			if err == nil {
				ws[i], err = newWorker(i, j.cfg, j.algo, j.g, j.assign, j.localFor(i), endpoints[i], j.counters[i], j.sink, snap)
			}
			if err != nil {
				j.cfg.Tracer.Handle(i, trace.CompCheckpoint).Event(trace.EvRestoreFail, uint64(epoch))
				lastErr = err
				ok = false
				break
			}
			ws[i].oomFn = j.budgetAbort
		}
		if ok {
			return ws, nil
		}
		releaseWorkers(ws)
	}
	return nil, fmt.Errorf("cluster: resume: no usable committed epoch: %w", lastErr)
}

// releaseWorkers tears down never-started workers from an abandoned build.
func releaseWorkers(ws []*Worker) {
	for _, w := range ws {
		if w != nil {
			w.stop()
			w.spiller.Close()
		}
	}
}

// runCrash executes one scheduled chaos crash: kill the worker at cr.At,
// then bring it back — after cr.RecoverAfter if set, via the failure
// detector's recovery loop if one is running, or after a short fallback
// delay so an unattended run still terminates.
func (j *Job) runCrash(cr chaos.Crash) {
	t := time.NewTimer(cr.At)
	defer t.Stop()
	select {
	case <-j.master.doneCh:
		return
	case <-t.C:
	}
	j.KillWorker(cr.Node)
	wait := cr.RecoverAfter
	if wait <= 0 {
		if j.autoRecover {
			return
		}
		wait = 25 * j.cfg.ProgressInterval
	}
	t2 := time.NewTimer(wait)
	defer t2.Stop()
	select {
	case <-j.master.doneCh:
		return
	case <-t2.C:
	}
	_ = j.RecoverWorker(cr.Node)
}

// Run starts a job and waits for its result.
func Run(g *graph.Graph, algo core.Algorithm, cfg Config) (*Result, error) {
	j, err := Start(g, algo, cfg)
	if err != nil {
		return nil, err
	}
	return j.Wait()
}

// KillWorker simulates a crash of worker i: its goroutines stop without
// flushing anything, its mailbox is wiped (in-flight messages to it are
// lost) and it stops serving pull requests until recovered.
func (j *Job) KillWorker(i int) {
	j.workerMu.Lock()
	if j.workers == nil {
		// Remote job: kill the worker's process, not a local struct.
		j.workerMu.Unlock()
		return
	}
	w := j.workers[i]
	j.workerMu.Unlock()
	w.kill()
	if j.netLocal != nil {
		j.netLocal.Reset(i)
	}
	if j.netTCP != nil {
		j.netTCP.Reset(i)
	}
}

// RecoverWorker replaces a killed worker with a fresh one restored from
// the newest committed epoch. A torn or corrupt snapshot falls back to the
// previous committed epoch (traced as EvRestoreFail); with no usable
// committed checkpoint the worker restarts from scratch, which is safe
// because its un-checkpointed results died with it. On the TCP transport
// the node's endpoint is reset first: peers' cached connections die and
// their send-retry redials reach the replacement.
func (j *Job) RecoverWorker(i int) error {
	if j.remote != nil {
		return fmt.Errorf("cluster: remote job: recovery is a replacement worker process rejoining the coordinator")
	}
	var ep transport.Endpoint
	if j.netLocal != nil {
		ep = j.netLocal.Endpoint(i)
	} else {
		j.netTCP.Reset(i)
		ep = j.netTCP.Endpoint(i)
	}
	// The replacement worker must see the same faulty network the rest of
	// the cluster does.
	if j.cfg.Chaos != nil {
		ep = j.cfg.Chaos.Wrap(ep)
	}
	tr := j.cfg.Tracer.Handle(i, trace.CompCheckpoint)
	var w *Worker
	for _, epoch := range j.sink.committedEpochs() {
		snap, err := j.sink.load(i, epoch)
		if err == nil {
			w, err = newWorker(i, j.cfg, j.algo, j.g, j.assign, j.localFor(i), ep, j.counters[i], j.sink, snap)
		}
		if err != nil {
			tr.Event(trace.EvRestoreFail, uint64(epoch))
			w = nil
			continue
		}
		break
	}
	if w == nil {
		var err error
		w, err = newWorker(i, j.cfg, j.algo, j.g, j.assign, j.localFor(i), ep, j.counters[i], j.sink, nil)
		if err != nil {
			return err
		}
	}
	w.oomFn = j.budgetAbort
	j.workerMu.Lock()
	j.workers[i] = w
	j.recovered++
	j.workerMu.Unlock()
	w.start()
	return nil
}

// noteRecovered counts a worker recovery performed outside the job (a
// replacement worker process re-admitted by the coordinator).
func (j *Job) noteRecovered() {
	j.workerMu.Lock()
	j.recovered++
	j.workerMu.Unlock()
}

// requestBarrier asks the job's master to checkpoint on its next periodic
// pass (no-op when checkpointing is disabled). The coordinator uses it to
// commit a draining worker's state before letting the process detach.
func (j *Job) requestBarrier() {
	j.master.requestBarrier()
}

// committedEpoch returns the newest committed epoch (noEpoch if none).
func (j *Job) committedEpoch() int64 {
	return j.master.committedEpoch()
}

// checkpointing reports whether the job runs with periodic checkpoints.
func (j *Job) checkpointing() bool {
	return j.cfg.CheckpointEvery > 0 && j.cfg.CheckpointDir != ""
}

// recoveryLoop respawns workers flagged dead by the master's failure
// detector.
func (j *Job) recoveryLoop() {
	for {
		select {
		case <-j.master.doneCh:
			return
		case i := <-j.failures:
			j.workerMu.Lock()
			alreadyDead := j.workers[i].killed.Load()
			j.workerMu.Unlock()
			if alreadyDead {
				_ = j.RecoverWorker(i)
			}
		}
	}
}

// Wait blocks until the job terminates and returns the merged result.
func (j *Job) Wait() (*Result, error) {
	j.waitOnce.Do(func() {
		<-j.master.doneCh
		elapsed := time.Since(j.started)

		// Remote job: the master has terminated (or been stopped), which
		// broadcast msgStop to the worker processes; each ships its final
		// records over the control channel. Collect them before tearing the
		// mux channel down. The session's control loop keeps routing results
		// to j.remote until release() runs below.
		var remoteErr error
		if j.remote != nil {
			remoteErr = j.remote.await()
		}

		j.workerMu.Lock()
		workers := append([]*Worker(nil), j.workers...)
		recovered := j.recovered
		j.workerMu.Unlock()

		for _, w := range workers {
			w.stop()
		}
		if j.netLocal != nil {
			j.netLocal.Close()
		}
		if j.netTCP != nil {
			j.netTCP.Close()
		}
		if j.release != nil {
			// Session job: close the borrowed mux channel so blocked comm
			// loops unblock; the shared network stays up for other jobs.
			j.release()
		}
		for _, w := range workers {
			w.wg.Wait()
			w.spiller.Close()
		}

		res := &Result{
			Elapsed:       elapsed,
			PartitionTime: j.partitionTime,
			EdgeCut:       j.assign.EdgeCut(j.g),
			AggGlobal:     j.master.globalAgg(),
			Recovered:     recovered,
		}
		for _, w := range workers {
			if err := w.lastCheckpointErr(); err != nil {
				res.LastCheckpointErr = err
			}
		}
		if j.master.ckptErr != nil {
			res.LastCheckpointErr = j.master.ckptErr
		}
		if j.remote != nil {
			// Records, per-worker counters and checkpoint errors were
			// shipped by the worker processes; the master's own counters are
			// the coordinator's node K.
			j.remote.mu.Lock()
			for i := 0; i < j.cfg.Workers; i++ {
				res.Records = append(res.Records, j.remote.records[i]...)
				snap := j.remote.counters[i]
				res.PerWorker = append(res.PerWorker, snap)
				res.Total = res.Total.Add(snap)
				if e := j.remote.ckptErrs[i]; e != "" {
					res.LastCheckpointErr = errors.New(e)
				}
			}
			j.remote.mu.Unlock()
			res.Total = res.Total.Add(j.counters[j.cfg.Workers].Snapshot())
		} else {
			for _, w := range workers {
				res.Records = append(res.Records, w.takeResults()...)
			}
			for i := 0; i <= j.cfg.Workers; i++ {
				snap := j.counters[i].Snapshot()
				if i < j.cfg.Workers {
					res.PerWorker = append(res.PerWorker, snap)
				}
				res.Total = res.Total.Add(snap)
			}
		}
		sort.Strings(res.Records)
		if j.sampler != nil {
			res.Timeline = j.sampler.Stop()
		}
		res.Phases = j.cfg.Tracer.Summary()
		j.result = res
		j.cancelMu.Lock()
		j.err = j.cancelErr
		if j.err == nil && remoteErr != nil {
			j.err = remoteErr
		}
		j.cancelMu.Unlock()
		if j.retire != nil {
			j.retire()
		}
	})
	return j.result, j.err
}

// Stop aborts a running job.
func (j *Job) Stop() {
	j.master.stop()
}

// Cancel cooperatively cancels a running job: the master broadcasts stop,
// workers drain their queues without running further task rounds, and Wait
// returns ErrCancelled alongside whatever partial state was merged. A job
// that already terminated is unaffected (Wait keeps its nil error).
func (j *Job) Cancel() { j.cancelWith(ErrCancelled) }

// CancelCause cancels like Cancel but attributes a cause: Wait's error
// wraps both ErrCancelled and cause, so callers can distinguish a user
// cancel from, say, a QoS preemption with errors.Is. A nil cause is a
// plain Cancel. Safe to call from Config.RoundHook.
func (j *Job) CancelCause(cause error) {
	if cause == nil {
		j.Cancel()
		return
	}
	j.cancelWith(fmt.Errorf("%w: %w", ErrCancelled, cause))
}

func (j *Job) cancelWith(err error) {
	j.cancelOnce.Do(func() {
		if !j.Done() {
			j.cancelMu.Lock()
			j.cancelErr = err
			j.cancelMu.Unlock()
		}
		j.master.stop()
	})
}

// Err returns the job's terminal error without blocking (nil while running
// or after a clean finish; ErrCancelled after cancellation).
func (j *Job) Err() error {
	j.cancelMu.Lock()
	defer j.cancelMu.Unlock()
	return j.cancelErr
}

// ID returns the job-scoped identifier (empty in single-shot mode).
func (j *Job) ID() string { return j.cfg.JobID }

// WorkerSnapshots returns the current per-worker counters (live view for
// monitoring; implements monitor.Source).
func (j *Job) WorkerSnapshots() []metrics.Snapshot {
	out := make([]metrics.Snapshot, j.cfg.Workers)
	for i := 0; i < j.cfg.Workers; i++ {
		out[i] = j.counters[i].Snapshot()
	}
	return out
}

// Tracer returns the tracer attached via Config.Tracer (nil if none).
func (j *Job) Tracer() *trace.Tracer { return j.cfg.Tracer }

// Done reports whether the job has terminated.
func (j *Job) Done() bool {
	select {
	case <-j.master.doneCh:
		return true
	default:
		return false
	}
}
