package cluster_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"gminer/internal/algo"
	"gminer/internal/cluster"
	"gminer/internal/gen"
	"gminer/internal/graph"
	"gminer/internal/partition"
)

// Property: for arbitrary random graphs and worker/thread/partitioner
// configurations, the distributed triangle count equals the sequential
// reference. This is the whole-system invariant everything else hangs on.
func TestQuickClusterTriangles(t *testing.T) {
	f := func(seed int64, workers8, threads4, partPick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New(64)
		n := 24 + rng.Intn(64)
		for i := 0; i < n; i++ {
			g.AddVertex(graph.VertexID(i))
		}
		m := 2 * n
		for e := 0; e < m; e++ {
			g.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)))
		}
		g.Freeze()

		cfg := cluster.Config{
			Workers:          int(workers8%4) + 1,
			Threads:          int(threads4%3) + 1,
			ProgressInterval: time.Millisecond,
			CacheCapacity:    32,
			StoreMemCapacity: 16,
			UseLSH:           seed%2 == 0,
			Stealing:         seed%3 == 0,
		}
		switch partPick % 3 {
		case 0:
			cfg.Partitioner = partition.Hash{}
		case 1:
			cfg.Partitioner = partition.BDG{Seed: seed}
		default:
			cfg.Partitioner = partition.Skewed{Bias: 0.6}
		}
		res, err := cluster.Run(g, algo.NewTriangleCount(), cfg)
		if err != nil {
			return false
		}
		got, _ := res.AggGlobal.(int64)
		return got == algo.RefTriangles(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: killing and recovering a worker at an arbitrary point never
// loses or duplicates output records.
func TestQuickRecoveryExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized recovery is slow")
	}
	for trial := 0; trial < 5; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			g := gen.RMAT(gen.RMATConfig{Scale: 8, Edges: 1500, Seed: int64(500 + trial)})
			want := expectedMarks(g)
			cfg := smallConfig()
			cfg.CheckpointEvery = 2 * time.Millisecond
			cfg.CheckpointDir = t.TempDir()
			cfg.Partitioner = partition.Hash{}
			cfg.Stealing = false

			job, err := cluster.Start(g, &slowMark{delay: 80 * time.Microsecond}, cfg)
			if err != nil {
				t.Fatal(err)
			}
			victim := trial % 3
			time.Sleep(time.Duration(1+trial*3) * time.Millisecond)
			job.KillWorker(victim)
			time.Sleep(time.Millisecond)
			if err := job.RecoverWorker(victim); err != nil {
				t.Fatal(err)
			}
			res, err := job.Wait()
			if err != nil {
				t.Fatal(err)
			}
			assertSameRecords(t, res.Records, want)
		})
	}
}
