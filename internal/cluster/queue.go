package cluster

import (
	"sync"

	"gminer/internal/core"
)

// taskQueue is the CPQ of Figure 2: an unbounded FIFO of ready tasks
// consumed by the executor's computing threads. A high-water mark lets the
// candidate retriever apply backpressure (WaitBelow) so ready tasks — and
// the cache references they hold — stay bounded.
type taskQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*core.Task
	closed bool
}

func newTaskQueue() *taskQueue {
	q := &taskQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push appends a ready task.
func (q *taskQueue) push(t *core.Task) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.queue = append(q.queue, t)
	q.cond.Broadcast()
}

// pop blocks for the next task; ok=false once closed and drained.
func (q *taskQueue) pop() (*core.Task, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if len(q.queue) > 0 {
			t := q.queue[0]
			q.queue = q.queue[1:]
			q.cond.Broadcast() // wake WaitBelow waiters
			return t, true
		}
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
}

// waitBelow blocks while the queue holds >= n tasks (and is not closed).
func (q *taskQueue) waitBelow(n int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.queue) >= n && !q.closed {
		q.cond.Wait()
	}
}

func (q *taskQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.queue)
}

func (q *taskQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// taskBuffer is the executor-side buffer of Figure 2: inactive tasks
// accumulate here and are flushed to the task store in batches so tasks
// with common remote candidates are gathered before LSH signing.
type taskBuffer struct {
	mu    sync.Mutex
	tasks []*core.Task
	limit int
}

func newTaskBuffer(limit int) *taskBuffer {
	return &taskBuffer{limit: limit}
}

// add buffers a task; returns a batch to flush when the buffer is full.
func (b *taskBuffer) add(t *core.Task) []*core.Task {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tasks = append(b.tasks, t)
	if len(b.tasks) >= b.limit {
		out := b.tasks
		b.tasks = nil
		return out
	}
	return nil
}

// drain removes and returns everything buffered.
func (b *taskBuffer) drain() []*core.Task {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := b.tasks
	b.tasks = nil
	return out
}

func (b *taskBuffer) len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.tasks)
}
