package cluster_test

import (
	"testing"

	"gminer/internal/algo"
	"gminer/internal/cluster"
	"gminer/internal/dfs"
	"gminer/internal/gen"
)

// TestEndToEndThroughDFS exercises the paper's full job flow: the input
// graph lives on the (mini-)distributed filesystem, the job runs on the
// cluster runtime, and the output records are dumped back to the DFS.
func TestEndToEndThroughDFS(t *testing.T) {
	fs, err := dfs.New(dfs.Config{DataNodes: 3, Replication: 2, BlockSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := gen.Community(gen.CommunityConfig{
		Communities: 15, MinSize: 6, MaxSize: 10, PIn: 0.7, Bridges: 150, Seed: 301,
	})
	if err := dfs.SaveGraph(fs, "/input/graph", orig); err != nil {
		t.Fatal(err)
	}

	// A datanode dies between ingest and load; replication covers it.
	fs.KillDataNode(1)
	g, err := dfs.LoadGraph(fs, "/input/graph", 0)
	if err != nil {
		t.Fatal(err)
	}

	cd := algo.NewCommunityDetect(0.6, 4)
	want := algo.RefCommunities(g, cd)
	res, err := cluster.Run(g, cd, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	assertSameRecords(t, res.Records, want)

	if err := dfs.SaveRecords(fs, "/output/communities", res.Records); err != nil {
		t.Fatal(err)
	}
	back, err := dfs.LoadRecords(fs, "/output/communities")
	if err != nil {
		t.Fatal(err)
	}
	assertSameRecords(t, back, want)
}

// TestDeterministicResults: with stealing disabled the record set is a
// pure function of (graph, algorithm, partitioning) — repeated runs agree
// exactly even though execution interleavings differ.
func TestDeterministicResults(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 8, Edges: 3200, Seed: 307})
	qc := algo.NewQuasiClique(0.7, 4)
	cfg := smallConfig()
	cfg.Stealing = false
	first, err := cluster.Run(g, qc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		res, err := cluster.Run(g, qc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertSameRecords(t, res.Records, first.Records)
	}
}

// TestMonitorSourceMethods checks the Job-side monitoring contract.
func TestMonitorSourceMethods(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 7, Edges: 1000, Seed: 311})
	job, err := cluster.Start(g, algo.NewTriangleCount(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	snaps := job.WorkerSnapshots()
	if len(snaps) != 3 {
		t.Fatalf("snapshots: %d", len(snaps))
	}
	if _, err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	if !job.Done() {
		t.Fatal("job should report done after Wait")
	}
}
