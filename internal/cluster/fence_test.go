package cluster

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFenceTableMonotonic(t *testing.T) {
	f := newFenceTable(2)
	if f.current(0) != 0 || f.current(1) != 0 {
		t.Fatal("fresh table not at generation 0")
	}
	f.raise(0, 3)
	if got := f.current(0); got != 3 {
		t.Fatalf("current(0) = %d after raise(0, 3)", got)
	}
	// A raise can never lower the fence: a late duplicate of an old
	// welcome must not re-admit a fenced-out generation.
	f.raise(0, 2)
	if got := f.current(0); got != 3 {
		t.Fatalf("raise(0, 2) lowered the fence to %d", got)
	}
	f.raise(0, 7)
	if got := f.current(0); got != 7 {
		t.Fatalf("current(0) = %d after raise(0, 7)", got)
	}
	if f.current(1) != 0 {
		t.Fatal("raising slot 0 moved slot 1")
	}
}

func TestFenceTableStale(t *testing.T) {
	f := newFenceTable(2)
	// Generation 0 (single-process, pre-fencing) is never stale.
	if f.stale(0, 0) {
		t.Fatal("generation 0 stale against a fresh table")
	}
	f.raise(0, 2)
	if !f.stale(0, 1) {
		t.Fatal("generation 1 not stale after slot 0 raised to 2")
	}
	if f.stale(0, 2) || f.stale(0, 3) {
		t.Fatal("current/future generation reported stale")
	}
	// Out-of-range slots and a nil table never fence anything: fencing is
	// an opt-in of the multi-process path, and a nil table must behave
	// exactly like the single-process sessions that never construct one.
	if f.stale(-1, 0) || f.stale(99, 0) {
		t.Fatal("out-of-range slot fenced")
	}
	var nilTable *fenceTable
	if nilTable.stale(0, 0) || nilTable.current(0) != 0 {
		t.Fatal("nil fence table fenced a worker")
	}
	nilTable.raise(0, 5) // must not panic
}

func TestDecodeCtrlBoundsFrameSize(t *testing.T) {
	var hb heartbeatMsg
	huge := make([]byte, maxCtrlPayload+1)
	err := decodeCtrl(huge, &hb)
	if err == nil {
		t.Fatal("oversized control frame accepted")
	}
	if !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized frame rejected for the wrong reason: %v", err)
	}
	if err := decodeCtrl(encodeCtrl(heartbeatMsg{Gen: 4}), &hb); err != nil {
		t.Fatal(err)
	}
	if hb.Gen != 4 {
		t.Fatalf("heartbeat round trip: gen %d", hb.Gen)
	}
}

func TestParseCkptName(t *testing.T) {
	cases := []struct {
		name       string
		worker     int
		epoch, gen int64
		ok         bool
	}{
		{"worker-0.epoch-3.ckpt", 0, 3, 0, true},
		{"worker-2.epoch-11.gen-4.ckpt", 2, 11, 4, true},
		{"worker-1.epoch-0.gen-0.ckpt", 1, 0, 0, true},
		{"MANIFEST", 0, 0, 0, false},
		{"JOBSPEC", 0, 0, 0, false},
		{"worker-x.epoch-3.ckpt", 0, 0, 0, false},
		{"worker-0.epoch-.ckpt", 0, 0, 0, false},
	}
	for _, tc := range cases {
		w, e, g, ok := parseCkptName(tc.name)
		if ok != tc.ok {
			t.Fatalf("parseCkptName(%q): ok=%v want %v", tc.name, ok, tc.ok)
		}
		if ok && (w != tc.worker || e != tc.epoch || g != tc.gen) {
			t.Fatalf("parseCkptName(%q) = (%d, %d, %d), want (%d, %d, %d)",
				tc.name, w, e, g, tc.worker, tc.epoch, tc.gen)
		}
	}
}

// heldEpochsIn must surface epochs from both legacy and gen-suffixed
// snapshot names, deduplicated, newest first — that list is what a
// rejoining worker's hello advertises.
func TestHeldEpochsIn(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{
		"worker-0.epoch-2.ckpt",
		"worker-0.epoch-5.gen-2.ckpt",
		"worker-0.epoch-5.gen-3.ckpt", // same epoch under two generations: one entry
		"worker-0.epoch-9.gen-3.ckpt",
		"worker-1.epoch-4.ckpt", // another worker's file: ignored
		"MANIFEST",
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got := heldEpochsIn(dir, 0)
	want := []int64{9, 5, 2}
	if len(got) != len(want) {
		t.Fatalf("heldEpochsIn = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("heldEpochsIn = %v, want %v", got, want)
		}
	}
	if got := heldEpochsIn(filepath.Join(dir, "missing"), 0); got != nil {
		t.Fatalf("missing dir: %v", got)
	}
}
