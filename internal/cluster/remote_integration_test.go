package cluster_test

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"gminer/internal/cluster"
	"gminer/internal/gen"
	"gminer/internal/graph"
	"gminer/internal/jobspec"
	"gminer/internal/partition"
)

// remoteTestCluster brings up a coordinator and cfg.Workers in-process
// WorkerProcess instances over real TCP sockets.
func remoteTestCluster(t *testing.T, g *graph.Graph, cfg cluster.Config,
	rcfg cluster.RemoteSessionConfig, wopt cluster.WorkerOptions) (*cluster.RemoteSession, []*cluster.WorkerProcess) {
	t.Helper()
	rcfg.Logf = t.Logf
	rs, err := cluster.NewRemoteSession(g, cfg, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rs.Close)
	wps := make([]*cluster.WorkerProcess, cfg.Workers)
	for i := range wps {
		o := wopt
		o.Coordinator = rs.Addr()
		o.Node = i
		o.Logf = t.Logf
		if wopt.CheckpointDir != "" {
			o.CheckpointDir = filepath.Join(wopt.CheckpointDir, fmt.Sprintf("node-%d", i))
		}
		wp, err := cluster.StartWorkerProcess(g, cfg, o)
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		wps[i] = wp
		t.Cleanup(wp.Close)
	}
	if err := rs.WaitReady(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	return rs, wps
}

// A multi-process cluster must serve byte-identical results to a
// single-process run of the same specs — concurrently, over real TCP.
func TestRemoteSessionByteIdentical(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 9, Edges: 4000, Seed: 7})
	// qc and cd only: their record sets are pure per-task functions.
	// mcf's emissions are gated on the global-best aggregate, whose
	// propagation timing differs across process topologies.
	specs := []jobspec.Spec{
		{App: "qc"},
		{App: "cd", MinSim: 0.4, MinSize: 3},
	}
	for _, sp := range specs {
		jobspec.Prepare(g, sp)
	}

	cfg := smallConfig()
	want := make([][]string, len(specs))
	for i, sp := range specs {
		a, err := jobspec.Build(g, sp.Normalize())
		if err != nil {
			t.Fatal(err)
		}
		res, err := cluster.Run(g, a, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Records
		if len(want[i]) == 0 {
			t.Fatalf("degenerate reference for %s: no records", sp.App)
		}
	}

	rs, _ := remoteTestCluster(t, g, cfg,
		cluster.RemoteSessionConfig{ResultTimeout: 60 * time.Second},
		cluster.WorkerOptions{HeartbeatEvery: 20 * time.Millisecond})

	jobs := make([]*cluster.Job, len(specs))
	for i, sp := range specs {
		sp := sp.Normalize()
		a, err := jobspec.Build(g, sp)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i], err = rs.Launch(a, cluster.JobOptions{Spec: &sp})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i, j := range jobs {
		res, err := j.Wait()
		if err != nil {
			t.Fatalf("%s: %v", specs[i].App, err)
		}
		if !reflect.DeepEqual(res.Records, want[i]) {
			t.Fatalf("%s: remote records diverge from single-process run: got %d records, want %d",
				specs[i].App, len(res.Records), len(want[i]))
		}
		if res.Total.TasksDone == 0 {
			t.Fatalf("%s: no shipped worker counters in result", specs[i].App)
		}
	}
	if rs.ActiveJobs() != 0 {
		t.Fatalf("jobs leaked: %d active", rs.ActiveJobs())
	}
}

// Launching without a Spec must be refused: worker processes can only
// rebuild the algorithm from a spec.
func TestRemoteLaunchRequiresSpec(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 7, Edges: 800, Seed: 11})
	cfg := smallConfig()
	rs, err := cluster.NewRemoteSession(g, cfg, cluster.RemoteSessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	sp := jobspec.Spec{App: "tc"}.Normalize()
	a, err := jobspec.Build(g, sp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Launch(a, cluster.JobOptions{}); err == nil {
		t.Fatal("launch without Spec accepted")
	}
}

// A worker process built over a different graph (wrong fingerprint) must
// be refused at the handshake.
func TestRemoteJoinRejectsFingerprintMismatch(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 7, Edges: 800, Seed: 11})
	other := gen.RMAT(gen.RMATConfig{Scale: 7, Edges: 800, Seed: 13})
	cfg := smallConfig()
	rs, err := cluster.NewRemoteSession(g, cfg, cluster.RemoteSessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	_, err = cluster.StartWorkerProcess(other, cfg, cluster.WorkerOptions{
		Coordinator: rs.Addr(),
		Node:        -1,
		JoinTimeout: 5 * time.Second,
	})
	if err == nil {
		t.Fatal("mismatched worker joined")
	}
}

// Kill one worker process mid-job, start a replacement claiming the same
// slot and checkpoint directory, and require the job to complete with
// records byte-identical to a fault-free single-process run: the
// coordinator re-admits the replacement and hands it the committed
// (epoch, crc) pairs to restore from.
func TestRemoteWorkerKillAndRejoin(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second kill/rejoin soak")
	}
	// Sized so the remote run lasts seconds (kill + rejoin fit mid-job)
	// but stays tractable under the race detector on small CI hosts.
	g := gen.RMAT(gen.RMATConfig{Scale: 11, Edges: 40000, Seed: 103})
	// cd: its emissions are a pure function of each task (no global
	// aggregator gate), so a replacement re-mining restored tasks emits
	// exactly what the dead worker would have. mcf would NOT work here —
	// its emission is gated on the racy global-best aggregate.
	sp := jobspec.Spec{App: "cd", MinSim: 0.4, MinSize: 3}.Normalize()
	jobspec.Prepare(g, sp)

	cfg := smallConfig()
	cfg.Partitioner = partition.Hash{}
	// Stealing off: a migration in flight at kill time would be lost (the
	// paper's checkpoint protocol shares the hole); recovery_test.go makes
	// the same choice.
	cfg.Stealing = false

	a, err := jobspec.Build(g, sp)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := cluster.Run(g, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Records) == 0 {
		t.Fatal("degenerate reference: no matches")
	}

	coordDir := t.TempDir()
	workerDir := t.TempDir()
	cfg.CheckpointDir = coordDir
	rs, wps := remoteTestCluster(t, g, cfg,
		cluster.RemoteSessionConfig{
			// Generous: under load, heartbeats and progress share the TCP
			// path with mining traffic, and the race detector can starve
			// the heartbeat goroutine; a tight timeout flaps every slot.
			FailTimeout:   2 * time.Second,
			ResultTimeout: 240 * time.Second,
		},
		cluster.WorkerOptions{
			HeartbeatEvery: 20 * time.Millisecond,
			CheckpointDir:  workerDir,
		})

	a2, err := jobspec.Build(g, sp)
	if err != nil {
		t.Fatal(err)
	}
	j, err := rs.Launch(a2, cluster.JobOptions{
		ID:              "kill-rejoin",
		Spec:            &sp,
		CheckpointEvery: 3 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Wait for the first committed epoch (the coordinator's MANIFEST
	// appears), then crash the process holding one worker slot.
	manifest := filepath.Join(coordDir, "kill-rejoin", "MANIFEST")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(manifest); err == nil {
			break
		}
		if j.Done() {
			t.Fatal("job finished before a checkpoint committed; enlarge the graph")
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint committed within 30s")
		}
		time.Sleep(2 * time.Millisecond)
	}
	victim := wps[1]
	victimNode := victim.Node()
	victim.Kill()
	t.Logf("killed worker process holding node %d", victimNode)
	time.Sleep(20 * time.Millisecond)
	if j.Done() {
		t.Fatal("job finished before the replacement joined; enlarge the graph")
	}

	// The replacement claims the dead process's slot and points at its
	// checkpoint directory: the coordinator vouches for the committed
	// epochs, the local files supply the payloads.
	replacement, err := cluster.StartWorkerProcess(g, cfg, cluster.WorkerOptions{
		Coordinator:    rs.Addr(),
		Node:           victimNode,
		CheckpointDir:  filepath.Join(workerDir, fmt.Sprintf("node-%d", victimNode)),
		HeartbeatEvery: 20 * time.Millisecond,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(replacement.Close)

	res, err := j.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Records, ref.Records) {
		t.Fatalf("records diverge after kill+rejoin: got %d records, want %d",
			len(res.Records), len(ref.Records))
	}
	if res.Recovered == 0 {
		t.Fatal("result does not report the recovery")
	}
	health := rs.WorkerHealth()
	if !health[victimNode].Joined || health[victimNode].Generation < 2 {
		t.Fatalf("slot %d health after rejoin: %+v", victimNode, health[victimNode])
	}
}
