package cluster_test

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"gminer/internal/algo"
	"gminer/internal/cluster"
	"gminer/internal/gen"
	"gminer/internal/graph"
	"gminer/internal/memctl"
)

// servingGraph builds one graph usable by every algorithm family: labels
// for GraphMatch, attrs for the similarity-based miners. The session owns
// a frozen graph, so anything jobs need must be assigned up front.
func servingGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := gen.RMAT(gen.RMATConfig{Scale: 9, Edges: 4000, Seed: 7})
	gen.AssignLabels(g, 7, 99)
	gen.AssignAttrs(g, 5, 10, 2)
	return g
}

func joinRecords(res *cluster.Result) string {
	out := ""
	for _, r := range res.Records {
		out += r + "\n"
	}
	return fmt.Sprintf("agg=%v\n%s", res.AggGlobal, out)
}

// TestSessionJobMatchesSingleShot: a session job must produce the byte-
// identical result a one-shot cluster.Run produces on the same graph.
func TestSessionJobMatchesSingleShot(t *testing.T) {
	g := servingGraph(t)
	ref, err := cluster.Run(g, algo.NewTriangleCount(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}

	s, err := cluster.NewSession(g, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i := 0; i < 2; i++ { // second launch exercises rerun on a warm cluster
		j, err := s.Launch(algo.NewTriangleCount(), cluster.JobOptions{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := j.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if got, want := joinRecords(res), joinRecords(ref); got != want {
			t.Fatalf("launch %d: session result diverges from single-shot:\ngot:  %q\nwant: %q", i, got, want)
		}
	}
	if n := s.ActiveJobs(); n != 0 {
		t.Fatalf("ActiveJobs after Wait: got %d want 0", n)
	}
}

// TestSessionConcurrentJobsByteIdentical runs three different algorithms
// concurrently over one warm cluster and checks each against its own
// single-shot reference — the serving-mode isolation guarantee.
func TestSessionConcurrentJobsByteIdentical(t *testing.T) {
	g := servingGraph(t)
	pattern := algo.FigurePattern()

	// MaxClique is deliberately absent: its record set depends on aggregator
	// propagation timing (branch-and-bound pruning), so only deterministic
	// workloads — TC, GM, CD, the CI smoke trio — are byte-compared.
	cd := func() *algo.CommunityDetect { return algo.NewCommunityDetect(0.2, 3) }
	refs := make(map[string]string)
	for name, a := range map[string]func() (res *cluster.Result, err error){
		"tc": func() (*cluster.Result, error) { return cluster.Run(g, algo.NewTriangleCount(), smallConfig()) },
		"cd": func() (*cluster.Result, error) { return cluster.Run(g, cd(), smallConfig()) },
		"gm": func() (*cluster.Result, error) { return cluster.Run(g, algo.NewGraphMatch(pattern), smallConfig()) },
	} {
		res, err := a()
		if err != nil {
			t.Fatalf("%s reference: %v", name, err)
		}
		refs[name] = joinRecords(res)
	}

	s, err := cluster.NewSession(g, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	var mu sync.Mutex
	got := make(map[string]string)
	errs := make(map[string]error)
	launch := func(name string, j *cluster.Job, err error) {
		if err != nil {
			t.Fatalf("launch %s: %v", name, err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := j.Wait()
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs[name] = err
				return
			}
			got[name] = joinRecords(res)
		}()
	}
	j1, err1 := s.Launch(algo.NewTriangleCount(), cluster.JobOptions{ID: "tc"})
	j2, err2 := s.Launch(cd(), cluster.JobOptions{ID: "cd"})
	j3, err3 := s.Launch(algo.NewGraphMatch(pattern), cluster.JobOptions{ID: "gm"})
	launch("tc", j1, err1)
	launch("cd", j2, err2)
	launch("gm", j3, err3)
	wg.Wait()

	for name, err := range errs {
		t.Fatalf("job %s: %v", name, err)
	}
	for name, want := range refs {
		if got[name] != want {
			t.Errorf("job %s diverges from its single-shot reference", name)
		}
	}
	if n := s.ActiveJobs(); n != 0 {
		t.Fatalf("ActiveJobs after all Waits: got %d want 0", n)
	}
}

// TestSessionCancelMidJob cancels one job mid-flight and checks (a) its
// Wait returns ErrCancelled promptly instead of hanging on queued tasks,
// (b) a co-resident job is unaffected and still byte-identical, (c) the
// session drains to zero active jobs.
func TestSessionCancelMidJob(t *testing.T) {
	g := servingGraph(t)
	ref, err := cluster.Run(g, algo.NewTriangleCount(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}

	// Simulated latency slows the victim's pull rounds enough that Cancel
	// reliably lands mid-round.
	cfg := smallConfig()
	cfg.Latency = 500 * time.Microsecond
	s, err := cluster.NewSession(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	victim, err := s.Launch(algo.NewMaxClique(), cluster.JobOptions{ID: "victim"})
	if err != nil {
		t.Fatal(err)
	}
	survivor, err := s.Launch(algo.NewTriangleCount(), cluster.JobOptions{ID: "survivor"})
	if err != nil {
		t.Fatal(err)
	}

	time.Sleep(5 * time.Millisecond)
	victim.Cancel()

	waitDone := make(chan error, 1)
	go func() {
		_, err := victim.Wait()
		waitDone <- err
	}()
	select {
	case err := <-waitDone:
		if !victim.Done() {
			t.Fatal("victim Wait returned before termination")
		}
		if err != nil && !errors.Is(err, cluster.ErrCancelled) {
			t.Fatalf("victim error: got %v, want ErrCancelled (or nil if it won the race)", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled job failed to drain: Wait hung")
	}

	res, err := survivor.Wait()
	if err != nil {
		t.Fatalf("co-resident job: %v", err)
	}
	if got, want := joinRecords(res), joinRecords(ref); got != want {
		t.Fatal("co-resident job result diverged after a neighbour was cancelled")
	}
	if n := s.ActiveJobs(); n != 0 {
		t.Fatalf("ActiveJobs after cancel+waits: got %d want 0", n)
	}
}

// TestSessionMemBudgetCancelsJob gives a job an impossibly small memory
// budget and expects a cancellation wrapping memctl.ErrOOM, with the
// session still able to serve the next job.
func TestSessionMemBudgetCancelsJob(t *testing.T) {
	g := servingGraph(t)
	s, err := cluster.NewSession(g, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	j, err := s.Launch(algo.NewMaxClique(), cluster.JobOptions{ID: "oom", MemBudgetBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = j.Wait()
	if !errors.Is(err, memctl.ErrOOM) {
		t.Fatalf("budgeted job error: got %v, want wrapped memctl.ErrOOM", err)
	}
	if !errors.Is(err, cluster.ErrCancelled) {
		t.Fatalf("budgeted job error: got %v, want wrapped ErrCancelled", err)
	}

	// The OOM of one job must not poison the warm cluster.
	j2, err := s.Launch(algo.NewTriangleCount(), cluster.JobOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j2.Wait(); err != nil {
		t.Fatalf("job after OOM neighbour: %v", err)
	}
}

// TestSessionRejectsDuplicateLiveID and closed-session launches.
func TestSessionLaunchValidation(t *testing.T) {
	g := servingGraph(t)
	s, err := cluster.NewSession(g, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.Launch(algo.NewTriangleCount(), cluster.JobOptions{ID: "dup"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Launch(algo.NewTriangleCount(), cluster.JobOptions{ID: "dup"}); err == nil {
		t.Fatal("duplicate live job ID accepted")
	}
	if _, err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	// After the first "dup" finished its ID is reusable.
	j2, err := s.Launch(algo.NewTriangleCount(), cluster.JobOptions{ID: "dup"})
	if err != nil {
		t.Fatalf("finished job ID not reusable: %v", err)
	}
	if _, err := j2.Wait(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := s.Launch(algo.NewTriangleCount(), cluster.JobOptions{}); err == nil {
		t.Fatal("closed session accepted a launch")
	}
}

// TestRoundHookCancelCause: the QoS enforcement contract. The per-round
// hook must fire with increasing round numbers while the job runs, and a
// CancelCause issued from it must surface the cause from Wait wrapped in
// ErrCancelled — the signal the serving layer maps to "preempted".
func TestRoundHookCancelCause(t *testing.T) {
	g := servingGraph(t)
	cfg := smallConfig()
	// Slow the rounds down so the job is still mid-flight at round 3.
	cfg.Latency = 500 * time.Microsecond
	s, err := cluster.NewSession(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	overBudget := errors.New("test: over budget")
	fired := make(chan int64, 1)
	var lastRound int64
	hook := func(round int64) {
		if round <= lastRound {
			t.Errorf("round hook went backwards: %d after %d", round, lastRound)
		}
		lastRound = round
		if round == 3 {
			fired <- round
		}
	}
	j, err := s.Launch(algo.NewMaxClique(), cluster.JobOptions{ID: "hooked", RoundHook: hook})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-fired:
	case <-time.After(30 * time.Second):
		t.Fatal("round hook never reached round 3")
	}
	j.CancelCause(overBudget)
	_, err = j.Wait()
	if !errors.Is(err, overBudget) {
		t.Fatalf("Wait error: got %v, want wrapped cause", err)
	}
	if !errors.Is(err, cluster.ErrCancelled) {
		t.Fatalf("Wait error: got %v, want wrapped ErrCancelled", err)
	}

	// nil cause degrades to a plain Cancel.
	j2, err := s.Launch(algo.NewMaxClique(), cluster.JobOptions{ID: "plain"})
	if err != nil {
		t.Fatal(err)
	}
	j2.CancelCause(nil)
	if _, err := j2.Wait(); err != nil && !errors.Is(err, cluster.ErrCancelled) {
		t.Fatalf("nil-cause cancel: got %v, want ErrCancelled (or nil if it won the race)", err)
	}
}

// TestSessionFingerprint: stable across calls, sensitive to the graph.
func TestSessionFingerprint(t *testing.T) {
	g := servingGraph(t)
	s, err := cluster.NewSession(g, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fp := s.Fingerprint()
	if fp == 0 || fp != s.Fingerprint() {
		t.Fatalf("fingerprint unstable: %x vs %x", fp, s.Fingerprint())
	}
	g2 := gen.RMAT(gen.RMATConfig{Scale: 8, Edges: 2000, Seed: 8})
	s2, err := cluster.NewSession(g2, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Fingerprint() == fp {
		t.Fatal("different graphs share a session fingerprint")
	}
}

// TestRerunNoGoroutineLeak is the satellite bugfix check: running jobs
// back to back on the same loaded graph — both single-shot and via a
// session — must not accumulate goroutines (stale mailboxes, untracked
// checkpoint goroutines, spill handles).
func TestRerunNoGoroutineLeak(t *testing.T) {
	g := servingGraph(t)

	// Warm up once so lazily-started runtime goroutines don't count.
	if _, err := cluster.Run(g, algo.NewTriangleCount(), smallConfig()); err != nil {
		t.Fatal(err)
	}
	settle := func() int {
		runtime.GC()
		n := runtime.NumGoroutine()
		for i := 0; i < 50; i++ {
			time.Sleep(10 * time.Millisecond)
			runtime.GC()
			m := runtime.NumGoroutine()
			if m >= n {
				return n
			}
			n = m
		}
		return n
	}
	base := settle()

	for i := 0; i < 3; i++ {
		if _, err := cluster.Run(g, algo.NewTriangleCount(), smallConfig()); err != nil {
			t.Fatal(err)
		}
	}
	s, err := cluster.NewSession(g, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		j, err := s.Launch(algo.NewTriangleCount(), cluster.JobOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := j.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	after := settle()
	// A small slack absorbs runtime background goroutines; a leak of even
	// one mailbox or comm loop per rerun would exceed it.
	if after > base+3 {
		t.Fatalf("goroutines leaked across reruns: baseline %d, after %d", base, after)
	}
}
