package cluster_test

import (
	"testing"

	"gminer/internal/algo"
	"gminer/internal/cluster"
	"gminer/internal/core"
	"gminer/internal/gen"
	"gminer/internal/partition"
)

func TestGraphletCensusMatchesReference(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 8, Edges: 3500, Seed: 113})
	want := algo.RefCensus(g)
	res, err := cluster.Run(g, algo.NewGraphletCensus(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	got := algo.Finalize(res.AggGlobal.(algo.Census))
	if got != want {
		t.Fatalf("census: got %+v want %+v", got, want)
	}
}

func TestQuasiCliqueMatchesReference(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 8, Edges: 4000, Seed: 127})
	qc := algo.NewQuasiClique(0.7, 4)
	want := algo.RefQuasiCliques(g, qc)
	if len(want) == 0 {
		t.Fatal("degenerate test graph: no quasi-cliques")
	}
	res, err := cluster.Run(g, qc, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	assertSameRecords(t, res.Records, want)
}

func TestAdaptiveStealPolicyCorrect(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 8, Edges: 3000, Seed: 131})
	want := algo.RefMaxClique(g)
	cfg := smallConfig()
	cfg.Stealing = true
	cfg.Partitioner = partition.Skewed{Bias: 0.7}
	cfg.StealPolicy = cluster.NewAdaptiveCostPolicy(0.9)
	res, err := cluster.Run(g, algo.NewMaxClique(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.AggGlobal.(int); got != want {
		t.Fatalf("adaptive stealing mcf: got %d want %d", got, want)
	}
}

func TestAdaptivePolicyLearnsBound(t *testing.T) {
	p := cluster.NewAdaptiveCostPolicy(0.9)
	// Before observations: InitialTc applies.
	small := taskWithCost(10)
	huge := taskWithCost(100000)
	if !p.Eligible(small) || p.Eligible(huge) {
		t.Fatal("initial bound wrong")
	}
	// Feed small completions: the learned bound shrinks far below the
	// initial threshold.
	for i := 0; i < 200; i++ {
		p.ObserveCompleted(8)
	}
	if !p.Eligible(taskWithCost(10)) {
		t.Fatal("typical task rejected after learning")
	}
	if p.Eligible(taskWithCost(2000)) {
		t.Fatal("outlier task accepted after learning small costs")
	}
}

func taskWithCost(c int) *core.Task {
	t := &core.Task{}
	for i := 0; i < c; i++ {
		t.Cands = append(t.Cands, 0)
	}
	// All candidates remote: lr(t) = 0, so only the cost bound decides.
	t.ToPull = t.Cands
	return t
}

func TestFreqSubgraphMatchesReference(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 8, Edges: 3000, Seed: 139})
	gen.AssignLabels(g, 4, 17)
	want := algo.RefFreqSubgraph(g)
	fsm := algo.NewFreqSubgraph(50)
	res, err := cluster.Run(g, fsm, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	got, ok := res.AggGlobal.(algo.PatternCounts)
	if !ok {
		t.Fatalf("AggGlobal type %T", res.AggGlobal)
	}
	if len(got) != len(want) {
		t.Fatalf("pattern count: %d vs %d", len(got), len(want))
	}
	for k, c := range want {
		if got[k] != c {
			t.Fatalf("pattern %v: got %d want %d", k, got[k], c)
		}
	}
	if len(fsm.Frequent(got)) == 0 {
		t.Fatal("no frequent patterns at support 50 on a 3k-edge graph")
	}
}
