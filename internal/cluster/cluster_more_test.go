package cluster_test

import (
	"strings"
	"testing"

	"gminer/internal/algo"
	"gminer/internal/cluster"
	"gminer/internal/gen"
	"gminer/internal/graph"
	"gminer/internal/partition"
)

func TestMaxCliqueWithTaskSplitting(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 8, Edges: 3000, Seed: 73})
	want := algo.RefMaxClique(g)
	mc := algo.NewMaxClique()
	mc.SplitThreshold = 16
	res, err := cluster.Run(g, mc, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.AggGlobal.(int); got != want {
		t.Fatalf("split mcf: got %d want %d", got, want)
	}
}

func TestMaxCliqueEmitsWitness(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 7, Edges: 2000, Seed: 79})
	res, err := cluster.Run(g, algo.NewMaxClique(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := res.AggGlobal.(int)
	found := false
	for _, r := range res.Records {
		if strings.Contains(r, "size="+itoa(want)) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no witness record for clique size %d in %v", want, res.Records)
	}
}

func itoa(x int) string {
	if x == 0 {
		return "0"
	}
	var out []byte
	for x > 0 {
		out = append([]byte{byte('0' + x%10)}, out...)
		x /= 10
	}
	return string(out)
}

func TestGraphMatchDeepPattern(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 7, Edges: 1500, Seed: 83})
	gen.AssignLabels(g, 4, 7)
	// Depth-3 path: exercises three pull rounds per task.
	p := algo.PathPattern(0, 1, 2, 3)
	want := algo.RefMatchCount(g, p)
	res, err := cluster.Run(g, algo.NewGraphMatch(p), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.AggGlobal.(int64); got != want {
		t.Fatalf("deep gm: got %d want %d", got, want)
	}
}

func TestGraphMatchStarPattern(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 7, Edges: 1500, Seed: 89})
	gen.AssignLabels(g, 3, 11)
	// Star: root with three children at the same level.
	p := algo.MustPattern([]int32{0, 1, 1, 2}, []int{-1, 0, 0, 0})
	want := algo.RefMatchCount(g, p)
	res, err := cluster.Run(g, algo.NewGraphMatch(p), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.AggGlobal.(int64); got != want {
		t.Fatalf("star gm: got %d want %d", got, want)
	}
}

func TestSpillingUnderTinyStore(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 9, Edges: 4000, Seed: 97})
	want := algo.RefTriangles(g)
	cfg := smallConfig()
	cfg.StoreMemCapacity = 16
	cfg.StoreBlockCapacity = 8
	cfg.SpillDir = t.TempDir()
	res, err := cluster.Run(g, algo.NewTriangleCount(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.AggGlobal.(int64); got != want {
		t.Fatalf("spilled tc: got %d want %d", got, want)
	}
	if res.Total.DiskWrite == 0 {
		t.Fatal("expected spill traffic with a 16-task store")
	}
}

func TestTinyCacheStillCorrect(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 8, Edges: 3000, Seed: 101})
	want := algo.RefMaxClique(g)
	cfg := smallConfig()
	cfg.CacheCapacity = 8 // brutal: forces overflow handling
	cfg.Partitioner = partition.Hash{}
	res, err := cluster.Run(g, algo.NewMaxClique(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.AggGlobal.(int); got != want {
		t.Fatalf("tiny cache mcf: got %d want %d", got, want)
	}
}

func TestLSHImprovesCacheHitRate(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 10, Edges: 12000, Seed: 103})
	base := smallConfig()
	base.Partitioner = partition.Hash{}
	base.CacheCapacity = 64 // small enough that ordering matters

	run := func(lsh bool) float64 {
		cfg := base
		cfg.UseLSH = lsh
		res, err := cluster.Run(g, algo.NewMaxClique(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Total.CacheHitRate()
	}
	withLSH := run(true)
	withoutLSH := run(false)
	t.Logf("cache hit rate: lsh=%.3f fifo=%.3f", withLSH, withoutLSH)
	if withLSH < withoutLSH-0.05 {
		t.Fatalf("LSH ordering hurt the hit rate: %.3f vs %.3f", withLSH, withoutLSH)
	}
}

func TestManyWorkers(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 8, Edges: 2500, Seed: 107})
	want := algo.RefTriangles(g)
	cfg := smallConfig()
	cfg.Workers = 12
	cfg.Threads = 1
	res, err := cluster.Run(g, algo.NewTriangleCount(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.AggGlobal.(int64); got != want {
		t.Fatalf("12 workers: got %d want %d", got, want)
	}
	if len(res.PerWorker) != 12 {
		t.Fatalf("per-worker stats: %d", len(res.PerWorker))
	}
}

func TestResultMetricsPopulated(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 8, Edges: 3000, Seed: 109})
	cfg := smallConfig()
	cfg.Partitioner = partition.Hash{}
	res, err := cluster.Run(g, algo.NewMaxClique(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 || res.PartitionTime < 0 {
		t.Fatal("timings missing")
	}
	if res.Total.Busy <= 0 {
		t.Fatal("busy time missing")
	}
	if res.Total.TasksDone == 0 {
		t.Fatal("tasks missing")
	}
	if res.EdgeCut <= 0 {
		t.Fatal("edge cut missing under hash partitioning")
	}
}

func TestUnfrozenGraphRejected(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(1, 2) // not frozen
	if _, err := cluster.Run(g, algo.NewTriangleCount(), smallConfig()); err == nil {
		t.Fatal("unfrozen graph accepted")
	}
}

func TestSmallWorldGraphEndToEnd(t *testing.T) {
	g := gen.SmallWorld(gen.SmallWorldConfig{N: 400, K: 8, Beta: 0.05, Seed: 137})
	want := algo.RefTriangles(g)
	if want == 0 {
		t.Fatal("ring lattice with K=8 must contain triangles")
	}
	cfg := smallConfig()
	cfg.Partitioner = partition.BDG{Seed: 3}
	res, err := cluster.Run(g, algo.NewTriangleCount(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.AggGlobal.(int64); got != want {
		t.Fatalf("small world tc: got %d want %d", got, want)
	}
	// BDG on a ring should produce a very low edge cut.
	if res.EdgeCut > 0.4 {
		t.Fatalf("BDG edge cut %.2f unexpectedly high on a ring lattice", res.EdgeCut)
	}
}
