package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"gminer/internal/store"
	"gminer/internal/trace"
	"gminer/internal/wire"
)

// Fault tolerance (§7): "G-Miner achieves fault tolerance by saving a
// snapshot periodically. For each checkpoint, the master instructs each
// worker to dump the state of its partition."
//
// A worker checkpoints by quiescing its pipeline: the retriever and seeder
// pause, the task buffer flushes, and in-flight tasks (CMQ, CPQ, active)
// drain back into the task store or die. At that point every alive task is
// inactive in the store, so the snapshot = seed cursor + store contents +
// emitted results + aggregator partial is a consistent cut. Thanks to the
// task model "we do not need to checkpoint any message".
//
// Recovery re-runs the dead worker's tasks from its last snapshot; the
// other workers keep their progress because tasks are independent.

// workerSnapshot is one worker's checkpoint.
type workerSnapshot struct {
	Epoch      int64
	SeedCursor int64
	SeedsDone  bool
	TaskBytes  []byte // store.Snapshot payload
	Results    []string
	AggBytes   []byte // encoded aggregator partial; nil if no aggregator
}

func encodeSnapshot(s *workerSnapshot) []byte {
	w := wire.NewWriter(1024 + len(s.TaskBytes))
	w.Varint(s.Epoch)
	w.Varint(s.SeedCursor)
	w.Bool(s.SeedsDone)
	w.BytesField(s.TaskBytes)
	w.Uvarint(uint64(len(s.Results)))
	for _, r := range s.Results {
		w.String(r)
	}
	w.Bool(s.AggBytes != nil)
	if s.AggBytes != nil {
		w.BytesField(s.AggBytes)
	}
	return w.Bytes()
}

func decodeSnapshot(b []byte) (*workerSnapshot, error) {
	r := wire.NewReader(b)
	s := &workerSnapshot{}
	s.Epoch = r.Varint()
	s.SeedCursor = r.Varint()
	s.SeedsDone = r.Bool()
	s.TaskBytes = r.BytesField()
	n := r.Count(1)
	s.Results = make([]string, 0, n)
	for i := 0; i < n; i++ {
		s.Results = append(s.Results, r.String())
	}
	if r.Bool() {
		s.AggBytes = r.BytesField()
	}
	return s, r.Err()
}

// snapshotSink stores the latest checkpoint per worker: on disk when a
// checkpoint directory is configured, in memory otherwise.
type snapshotSink struct {
	dir string

	mu  sync.Mutex
	mem map[int][]byte
}

func newSnapshotSink(dir string) (*snapshotSink, error) {
	s := &snapshotSink{dir: dir}
	if dir == "" {
		s.mem = make(map[int][]byte)
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return s, nil
}

func (s *snapshotSink) put(worker int, data []byte) error {
	if s.mem != nil {
		s.mu.Lock()
		s.mem[worker] = append([]byte(nil), data...)
		s.mu.Unlock()
		return nil
	}
	tmp := s.path(worker) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return os.Rename(tmp, s.path(worker))
}

func (s *snapshotSink) get(worker int) (*workerSnapshot, error) {
	var data []byte
	if s.mem != nil {
		s.mu.Lock()
		data = s.mem[worker]
		s.mu.Unlock()
		if data == nil {
			return nil, nil // no checkpoint yet: restart from scratch
		}
	} else {
		var err error
		data, err = os.ReadFile(s.path(worker))
		if os.IsNotExist(err) {
			return nil, nil
		}
		if err != nil {
			return nil, fmt.Errorf("checkpoint: %w", err)
		}
	}
	return decodeSnapshot(data)
}

func (s *snapshotSink) path(worker int) string {
	return filepath.Join(s.dir, fmt.Sprintf("worker-%d.ckpt", worker))
}

// checkpoint quiesces the pipeline and persists a snapshot, then notifies
// the master. Runs on its own goroutine (must not block the comm loop,
// which keeps serving pull requests during the global checkpoint).
func (w *Worker) checkpoint(epoch int64) {
	w.paused.Store(true)
	defer w.paused.Store(false)
	var ckptStart time.Time
	if w.trCkpt.Active() {
		ckptStart = time.Now()
		w.trCkpt.Event(trace.EvCheckpointBegin, uint64(epoch))
	}

	// Quiesce: wait until every alive task is inactive in the store.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if w.stopped() {
			return
		}
		w.flushBatch(w.buffer.drain())
		if int64(w.store.Size()) == w.inflight.Load() && w.buffer.len() == 0 {
			break
		}
		if time.Now().After(deadline) {
			// Could not quiesce (pathological pull starvation); skip this
			// checkpoint rather than stall the job.
			return
		}
		time.Sleep(300 * time.Microsecond)
	}

	taskBytes, err := w.store.Snapshot()
	if err != nil {
		return
	}
	snap := &workerSnapshot{
		Epoch:      epoch,
		SeedCursor: w.seedCursor.Load(),
		SeedsDone:  w.seedsDone.Load(),
		TaskBytes:  taskBytes,
		Results:    w.takeResults(),
	}
	if w.agg != nil {
		wr := wire.NewWriter(32)
		w.aggMu.Lock()
		w.agg.Encode(wr, w.aggPartial)
		w.aggMu.Unlock()
		snap.AggBytes = wr.Bytes()
	}
	if w.snapshots != nil {
		if err := w.snapshots.put(w.id, encodeSnapshot(snap)); err != nil {
			return
		}
	}
	w.trCkpt.ObserveSpan(trace.MetricCheckpoint, trace.EvCheckpointEnd, ckptStart, uint64(epoch))
	_ = w.ep.Send(w.masterNode, msgCheckpointDone, encodeEpoch(epoch))
}

// applySnapshot restores worker state from a checkpoint before the
// pipeline starts.
func (w *Worker) applySnapshot(s *workerSnapshot) {
	w.seedCursor.Store(s.SeedCursor)
	w.seedsDone.Store(s.SeedsDone)
	w.results = append(w.results, s.Results...)
	if w.agg != nil && s.AggBytes != nil {
		w.aggPartial = w.agg.Decode(wire.NewReader(s.AggBytes))
	}
	tasks, err := store.DecodeSnapshot(s.TaskBytes, w.algo)
	if err != nil {
		return
	}
	for _, t := range tasks {
		w.intake(t, false)
	}
	w.flushBatch(w.buffer.drain())
}
